#include <cmath>
#include <cstring>

#include "exec/operators.h"
#include "exec/plan_refiner.h"
#include "ext/extensions.h"
#include "storage/attachment.h"

namespace starburst::ext {

using exec::CompiledExprPtr;
using exec::OperatorPtr;
using optimizer::Lolepop;
using optimizer::Plan;
using optimizer::PlanPtr;
using qgm::Expr;

std::string EncodePoint(double x, double y) {
  std::string payload(16, '\0');
  std::memcpy(payload.data(), &x, 8);
  std::memcpy(payload.data() + 8, &y, 8);
  return payload;
}

Result<std::pair<double, double>> DecodePoint(const std::string& payload) {
  if (payload.size() != 16) {
    return Status::Internal("malformed POINT payload");
  }
  double x, y;
  std::memcpy(&x, payload.data(), 8);
  std::memcpy(&y, payload.data() + 8, 8);
  return std::make_pair(x, y);
}

Value MakePointValue(double x, double y) {
  return Value::Extension("POINT", EncodePoint(x, y));
}

namespace {

// ---------------------------------------------------------------------------
// The POINT externally-defined type
// ---------------------------------------------------------------------------

Status RegisterPointType() {
  if (TypeRegistry::Global().Contains("POINT")) return Status::OK();
  ExtensionTypeDef def;
  def.name = "POINT";
  def.compare = [](const std::string& a, const std::string& b) {
    auto pa = DecodePoint(a);
    auto pb = DecodePoint(b);
    if (!pa.ok() || !pb.ok()) return 0;
    if (pa->first != pb->first) return pa->first < pb->first ? -1 : 1;
    if (pa->second != pb->second) return pa->second < pb->second ? -1 : 1;
    return 0;
  };
  def.to_string = [](const std::string& payload) {
    auto p = DecodePoint(payload);
    if (!p.ok()) return std::string("POINT(?)");
    return "POINT(" + std::to_string(p->first) + ", " +
           std::to_string(p->second) + ")";
  };
  return TypeRegistry::Global().Register(std::move(def));
}

Result<double> PointCoord(const Value& v, bool x) {
  if (v.type_id() != TypeId::kExtension || v.ext_value().type_name != "POINT") {
    return Status::TypeError("expected a POINT value");
  }
  STARBURST_ASSIGN_OR_RETURN(auto p, DecodePoint(v.ext_value().payload));
  return x ? p.first : p.second;
}

Status RegisterSpatialFunctions(Catalog* catalog) {
  FunctionRegistry& functions = catalog->functions();

  STARBURST_RETURN_IF_ERROR(functions.RegisterScalar(ScalarFunctionDef{
      "POINT", 2,
      [](const std::vector<DataType>& args) -> Result<DataType> {
        for (const DataType& t : args) {
          if (!t.is_numeric() && t.id != TypeId::kNull) {
            return Status::TypeError("POINT expects numeric coordinates");
          }
        }
        return DataType::Extension("POINT");
      },
      [](const std::vector<Value>& args) -> Result<Value> {
        if (args[0].is_null() || args[1].is_null()) return Value::Null();
        STARBURST_ASSIGN_OR_RETURN(double x, args[0].AsDouble());
        STARBURST_ASSIGN_OR_RETURN(double y, args[1].AsDouble());
        return MakePointValue(x, y);
      }}));

  STARBURST_RETURN_IF_ERROR(functions.RegisterScalar(ScalarFunctionDef{
      "PX", 1,
      [](const std::vector<DataType>& args) -> Result<DataType> {
        if (args[0].id != TypeId::kExtension && args[0].id != TypeId::kNull) {
          return Status::TypeError("PX expects a POINT");
        }
        return DataType::Double();
      },
      [](const std::vector<Value>& args) -> Result<Value> {
        if (args[0].is_null()) return Value::Null();
        STARBURST_ASSIGN_OR_RETURN(double x, PointCoord(args[0], true));
        return Value::Double(x);
      }}));

  STARBURST_RETURN_IF_ERROR(functions.RegisterScalar(ScalarFunctionDef{
      "PY", 1,
      [](const std::vector<DataType>& args) -> Result<DataType> {
        if (args[0].id != TypeId::kExtension && args[0].id != TypeId::kNull) {
          return Status::TypeError("PY expects a POINT");
        }
        return DataType::Double();
      },
      [](const std::vector<Value>& args) -> Result<Value> {
        if (args[0].is_null()) return Value::Null();
        STARBURST_ASSIGN_OR_RETURN(double y, PointCoord(args[0], false));
        return Value::Double(y);
      }}));

  // CONTAINS(point, xmin, ymin, xmax, ymax): window membership — exactly
  // the predicate shape the RTREE access STAR recognizes.
  STARBURST_RETURN_IF_ERROR(functions.RegisterScalar(ScalarFunctionDef{
      "CONTAINS", 5,
      [](const std::vector<DataType>& args) -> Result<DataType> {
        if (args[0].id != TypeId::kExtension && args[0].id != TypeId::kNull) {
          return Status::TypeError("CONTAINS expects a POINT first argument");
        }
        for (size_t i = 1; i < args.size(); ++i) {
          if (!args[i].is_numeric() && args[i].id != TypeId::kNull) {
            return Status::TypeError("CONTAINS window bounds must be numeric");
          }
        }
        return DataType::Bool();
      },
      [](const std::vector<Value>& args) -> Result<Value> {
        for (const Value& v : args) {
          if (v.is_null()) return Value::Null();
        }
        STARBURST_ASSIGN_OR_RETURN(double x, PointCoord(args[0], true));
        STARBURST_ASSIGN_OR_RETURN(double y, PointCoord(args[0], false));
        STARBURST_ASSIGN_OR_RETURN(double xmin, args[1].AsDouble());
        STARBURST_ASSIGN_OR_RETURN(double ymin, args[2].AsDouble());
        STARBURST_ASSIGN_OR_RETURN(double xmax, args[3].AsDouble());
        STARBURST_ASSIGN_OR_RETURN(double ymax, args[4].AsDouble());
        return Value::Bool(x >= xmin && x <= xmax && y >= ymin && y <= ymax);
      }}));

  STARBURST_RETURN_IF_ERROR(functions.RegisterScalar(ScalarFunctionDef{
      "DISTANCE", 2,
      [](const std::vector<DataType>& args) -> Result<DataType> {
        for (const DataType& t : args) {
          if (t.id != TypeId::kExtension && t.id != TypeId::kNull) {
            return Status::TypeError("DISTANCE expects POINT arguments");
          }
        }
        return DataType::Double();
      },
      [](const std::vector<Value>& args) -> Result<Value> {
        if (args[0].is_null() || args[1].is_null()) return Value::Null();
        STARBURST_ASSIGN_OR_RETURN(double x1, PointCoord(args[0], true));
        STARBURST_ASSIGN_OR_RETURN(double y1, PointCoord(args[0], false));
        STARBURST_ASSIGN_OR_RETURN(double x2, PointCoord(args[1], true));
        STARBURST_ASSIGN_OR_RETURN(double y2, PointCoord(args[1], false));
        return Value::Double(std::hypot(x1 - x2, y1 - y2));
      }}));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// The R-tree access-method attachment (§1's DBC example)
// ---------------------------------------------------------------------------

class RTreeAttachment : public Attachment {
 public:
  RTreeAttachment(IndexDef def, size_t key_column)
      : def_(std::move(def)), key_column_(key_column) {}

  const IndexDef& def() const override { return def_; }

  Status OnInsert(const Row& row, Rid rid) override {
    STARBURST_ASSIGN_OR_RETURN(Rect rect, KeyRect(row));
    tree_.Insert(rect, rid);
    return Status::OK();
  }
  Status OnDelete(const Row& row, Rid rid) override {
    STARBURST_ASSIGN_OR_RETURN(Rect rect, KeyRect(row));
    return tree_.Remove(rect, rid);
  }

  uint64_t StatNodeVisits() const override { return tree_.stats().node_visits; }

  RTree& tree() { return tree_; }

 private:
  Result<Rect> KeyRect(const Row& row) const {
    const Value& v = row[key_column_];
    if (v.is_null()) return Rect::Point(0, 0);  // NULL points pile at origin
    STARBURST_ASSIGN_OR_RETURN(double x, PointCoord(v, true));
    STARBURST_ASSIGN_OR_RETURN(double y, PointCoord(v, false));
    return Rect::Point(x, y);
  }

  IndexDef def_;
  size_t key_column_;
  RTree tree_;
};

Status RegisterRTreeAttachmentKind(Database* db) {
  return db->storage().attachment_kinds().Register(
      "RTREE",
      [](const IndexDef& def,
         const TableSchema& schema) -> Result<std::unique_ptr<Attachment>> {
        if (def.key_columns.size() != 1) {
          return Status::InvalidArgument("RTREE indexes take one key column");
        }
        std::optional<size_t> col = schema.FindColumn(def.key_columns[0]);
        if (!col.has_value()) {
          return Status::SemanticError("RTREE index names unknown column '" +
                                       def.key_columns[0] + "'");
        }
        if (schema.column(*col).type != DataType::Extension("POINT")) {
          return Status::InvalidArgument("RTREE indexes require a POINT column");
        }
        return std::unique_ptr<Attachment>(
            new RTreeAttachment(def, *col));
      });
}

// ---------------------------------------------------------------------------
// The RTREE_SCAN QES operator and its TableAccess STAR
// ---------------------------------------------------------------------------

class RTreeScanOp : public exec::Operator {
 public:
  RTreeScanOp(const TableDef* table, const IndexDef* index, Rect window,
              std::vector<size_t> columns,
              std::vector<CompiledExprPtr> predicates)
      : table_(table), index_(index), window_(window),
        columns_(std::move(columns)), predicates_(std::move(predicates)) {}

  Status OpenImpl(exec::ExecContext* ctx) override {
    ctx_ = ctx;
    STARBURST_ASSIGN_OR_RETURN(storage_, ctx->storage()->GetTable(table_->name));
    STARBURST_ASSIGN_OR_RETURN(Attachment * attachment,
                               ctx->storage()->GetIndex(index_->name));
    auto* rtree = dynamic_cast<RTreeAttachment*>(attachment);
    if (rtree == nullptr) {
      return Status::Internal("index '" + index_->name + "' is not an R-tree");
    }
    matches_ = rtree->tree().Search(window_);
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override {
    while (pos_ < matches_.size()) {
      STARBURST_ASSIGN_OR_RETURN(Row full, storage_->Fetch(matches_[pos_++]));
      std::vector<Value> values;
      values.reserve(columns_.size());
      for (size_t c : columns_) values.push_back(full[c]);
      Row projected(std::move(values));
      bool pass = true;
      for (const CompiledExprPtr& p : predicates_) {
        STARBURST_ASSIGN_OR_RETURN(bool ok, p->EvalPredicate(projected, ctx_));
        if (!ok) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      *row = std::move(projected);
      return true;
    }
    return false;
  }

  void CloseImpl() override { matches_.clear(); }

 private:
  const TableDef* table_;
  const IndexDef* index_;
  Rect window_;
  std::vector<size_t> columns_;
  std::vector<CompiledExprPtr> predicates_;
  exec::ExecContext* ctx_ = nullptr;
  TableStorage* storage_ = nullptr;
  std::vector<Rid> matches_;
  size_t pos_ = 0;
};

/// Is `p` CONTAINS(q.col, xmin, ymin, xmax, ymax) with literal bounds?
bool MatchContainsPredicate(const Expr& p, const qgm::Quantifier* q,
                            size_t key_column, Rect* window) {
  if (p.kind != Expr::Kind::kScalarFunc || !IdentEquals(p.func_name, "CONTAINS")) {
    return false;
  }
  if (p.children.size() != 5) return false;
  const Expr& point = *p.children[0];
  if (point.kind != Expr::Kind::kColumnRef || point.quantifier != q ||
      point.column != key_column) {
    return false;
  }
  double bounds[4];
  for (int i = 0; i < 4; ++i) {
    const Expr& b = *p.children[i + 1];
    if (b.kind != Expr::Kind::kLiteral) return false;
    Result<double> d = b.literal.AsDouble();
    if (!d.ok()) return false;
    bounds[i] = *d;
  }
  *window = Rect{bounds[0], bounds[1], bounds[2], bounds[3]};
  return true;
}

/// The DBC's STAR: "Corona must recognize when this access method is
/// useful for a query and when to invoke it" (§1).
Status RTreeScanStar(optimizer::PlanGenerator& gen,
                     const optimizer::StarContext& ctx,
                     std::vector<PlanPtr>* out) {
  const qgm::Box* input = ctx.quantifier->input;
  if (input == nullptr || input->kind != qgm::BoxKind::kBaseTable ||
      input->table == nullptr || gen.catalog() == nullptr) {
    return Status::OK();
  }
  const TableDef* table = input->table;
  for (const IndexDef* index : gen.catalog()->IndexesOnTable(table->name)) {
    if (!IdentEquals(index->access_method, "RTREE")) continue;
    std::optional<size_t> key_col =
        table->schema.FindColumn(index->key_columns[0]);
    if (!key_col.has_value()) continue;
    for (const Expr* p : ctx.local_preds) {
      Rect window;
      if (!MatchContainsPredicate(*p, ctx.quantifier, *key_col, &window)) {
        continue;
      }
      auto scan = optimizer::NewPlan(Lolepop::kExtension);
      scan->ext_name = "RTREE_SCAN";
      scan->quantifier = ctx.quantifier;
      scan->table = table;
      scan->index = index;
      scan->index_predicate = p;
      scan->scan_columns = ctx.needed_columns;
      if (scan->scan_columns.empty()) {
        for (size_t i = 0; i < input->head.size(); ++i) {
          scan->scan_columns.push_back(i);
        }
      }
      for (size_t c : scan->scan_columns) {
        scan->output.push_back(
            optimizer::ColumnBinding{ctx.quantifier, nullptr, c});
      }
      for (const Expr* other : ctx.local_preds) {
        if (other != p) scan->predicates.push_back(other);
      }
      // Window selectivity: without spatial histograms the DBC assumes
      // windows are small (the reason one builds an R-tree at all).
      double rows = gen.cost().TableRows(table);
      double selectivity = 0.01;
      scan->props.cardinality = std::max(rows * selectivity, 1.0);
      scan->props.cost =
          std::log2(std::max(rows, 2.0)) * gen.cost().params().index_level +
          scan->props.cardinality *
              (gen.cost().params().rid_fetch + gen.cost().params().cpu_tuple);
      scan->props.rescan_cost = scan->props.cost;
      gen.CountPlan();
      out->push_back(std::move(scan));
      break;
    }
  }
  return Status::OK();
}

Result<OperatorPtr> BuildRTreeScan(const Plan& plan,
                                   exec::PlanRefiner& refiner) {
  std::optional<size_t> key_col =
      plan.table->schema.FindColumn(plan.index->key_columns[0]);
  if (!key_col.has_value()) {
    return Status::Internal("RTREE index key column vanished");
  }
  Rect window;
  if (!MatchContainsPredicate(*plan.index_predicate, plan.quantifier, *key_col,
                              &window)) {
    return Status::Internal("RTREE_SCAN plan without CONTAINS predicate");
  }
  std::vector<CompiledExprPtr> preds;
  for (const Expr* p : plan.predicates) {
    STARBURST_ASSIGN_OR_RETURN(CompiledExprPtr c,
                               refiner.Compile(*p, plan.output, nullptr));
    preds.push_back(std::move(c));
  }
  return OperatorPtr(new RTreeScanOp(plan.table, plan.index, window,
                                     plan.scan_columns, std::move(preds)));
}

}  // namespace

Status RegisterSpatialExtension(Database* db) {
  STARBURST_RETURN_IF_ERROR(RegisterPointType());
  STARBURST_RETURN_IF_ERROR(RegisterSpatialFunctions(&db->catalog()));
  STARBURST_RETURN_IF_ERROR(RegisterRTreeAttachmentKind(db));
  STARBURST_RETURN_IF_ERROR(db->RegisterStar(optimizer::Star{
      "rtree_scan", "TableAccess", /*rank=*/0, RTreeScanStar}));
  if (!exec::ExtOperatorRegistry::Global().Contains("RTREE_SCAN")) {
    STARBURST_RETURN_IF_ERROR(
        exec::ExtOperatorRegistry::Global().Register("RTREE_SCAN",
                                                     BuildRTreeScan));
  }
  return Status::OK();
}

}  // namespace starburst::ext
