#include "storage/storage_manager.h"

namespace starburst {

StorageManagerRegistry::StorageManagerRegistry() {
  (void)Register(MakeHeapStorageManager());
  (void)Register(MakeFixedStorageManager());
}

Status StorageManagerRegistry::Register(std::unique_ptr<StorageManager> manager) {
  std::string key = IdentUpper(manager->name());
  if (!managers_.emplace(key, std::move(manager)).second) {
    return Status::AlreadyExists("storage manager '" + key + "' exists");
  }
  return Status::OK();
}

Result<StorageManager*> StorageManagerRegistry::Lookup(
    const std::string& name) const {
  auto it = managers_.find(IdentUpper(name));
  if (it == managers_.end()) {
    return Status::NotFound("storage manager '" + IdentUpper(name) +
                            "' not registered");
  }
  return it->second.get();
}

std::vector<std::string> StorageManagerRegistry::Names() const {
  std::vector<std::string> names;
  for (const auto& [name, m] : managers_) names.push_back(name);
  return names;
}

}  // namespace starburst
