
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/attachment.cc" "src/CMakeFiles/starburst_storage.dir/storage/attachment.cc.o" "gcc" "src/CMakeFiles/starburst_storage.dir/storage/attachment.cc.o.d"
  "/root/repo/src/storage/btree.cc" "src/CMakeFiles/starburst_storage.dir/storage/btree.cc.o" "gcc" "src/CMakeFiles/starburst_storage.dir/storage/btree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/starburst_storage.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/starburst_storage.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/fixed_storage.cc" "src/CMakeFiles/starburst_storage.dir/storage/fixed_storage.cc.o" "gcc" "src/CMakeFiles/starburst_storage.dir/storage/fixed_storage.cc.o.d"
  "/root/repo/src/storage/heap_storage.cc" "src/CMakeFiles/starburst_storage.dir/storage/heap_storage.cc.o" "gcc" "src/CMakeFiles/starburst_storage.dir/storage/heap_storage.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/CMakeFiles/starburst_storage.dir/storage/page.cc.o" "gcc" "src/CMakeFiles/starburst_storage.dir/storage/page.cc.o.d"
  "/root/repo/src/storage/record_codec.cc" "src/CMakeFiles/starburst_storage.dir/storage/record_codec.cc.o" "gcc" "src/CMakeFiles/starburst_storage.dir/storage/record_codec.cc.o.d"
  "/root/repo/src/storage/rtree.cc" "src/CMakeFiles/starburst_storage.dir/storage/rtree.cc.o" "gcc" "src/CMakeFiles/starburst_storage.dir/storage/rtree.cc.o.d"
  "/root/repo/src/storage/storage_engine.cc" "src/CMakeFiles/starburst_storage.dir/storage/storage_engine.cc.o" "gcc" "src/CMakeFiles/starburst_storage.dir/storage/storage_engine.cc.o.d"
  "/root/repo/src/storage/storage_manager.cc" "src/CMakeFiles/starburst_storage.dir/storage/storage_manager.cc.o" "gcc" "src/CMakeFiles/starburst_storage.dir/storage/storage_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/starburst_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
