#include "storage/system_storage.h"

#include <utility>

namespace starburst {

namespace {

/// Iterator over one materialized snapshot of a system table. Rids are
/// synthesized as (0, position) — stable within the snapshot, meaningless
/// across snapshots, which is fine because nothing can mutate through them.
class SystemScanIterator : public TableScanIterator {
 public:
  explicit SystemScanIterator(std::vector<Row> rows) : rows_(std::move(rows)) {}

  Result<bool> Next(Row* row, Rid* rid) override {
    if (pos_ >= rows_.size()) return false;
    *row = rows_[pos_];
    rid->page = 0;
    rid->slot = static_cast<uint16_t>(pos_ & 0xffff);
    ++pos_;
    return true;
  }

 private:
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class SystemTableStorage : public TableStorage {
 public:
  SystemTableStorage(std::string name, SystemRowProvider provider)
      : name_(std::move(name)), provider_(std::move(provider)) {}

  Result<Rid> Insert(const Row&) override { return ReadOnly(); }
  Status Delete(Rid) override { return ReadOnly(); }
  Result<Rid> Update(Rid, const Row&) override { return ReadOnly(); }

  Result<Row> Fetch(Rid rid) override {
    std::vector<Row> rows = provider_();
    if (rid.page != 0 || rid.slot >= rows.size()) {
      return Status::NotFound("no such row in system table '" + name_ + "'");
    }
    return rows[rid.slot];
  }

  std::unique_ptr<TableScanIterator> NewScan() override {
    return std::make_unique<SystemScanIterator>(provider_());
  }

  /// System tables report one page, so under parallel execution exactly
  /// the morsel holding page 0 materializes the whole table and every
  /// other morsel is empty — each row still surfaces exactly once.
  std::unique_ptr<TableScanIterator> NewRangeScan(PageNo begin_page,
                                                  PageNo end_page) override {
    if (begin_page == 0 && end_page > 0) return NewScan();
    return std::make_unique<SystemScanIterator>(std::vector<Row>());
  }

  uint64_t row_count() const override { return provider_().size(); }
  uint64_t page_count() const override { return 1; }

 private:
  Status ReadOnly() const {
    return Status::InvalidArgument("system table '" + name_ +
                                   "' is read-only");
  }

  std::string name_;
  SystemRowProvider provider_;
};

}  // namespace

const std::string& SystemStorageManager::name() const {
  static const std::string kName = "SYSTEM";
  return kName;
}

Status SystemStorageManager::ValidateSchema(const TableSchema&) const {
  return Status::InvalidArgument(
      "storage manager SYSTEM is reserved for engine-defined sys.* tables");
}

Result<std::unique_ptr<TableStorage>> SystemStorageManager::CreateTable(
    const TableDef& def, BufferPool*) {
  auto it = providers_.find(IdentUpper(def.name));
  if (it == providers_.end()) {
    return Status::NotFound("no system row provider registered for table '" +
                            def.name + "'");
  }
  return std::unique_ptr<TableStorage>(
      new SystemTableStorage(def.name, it->second));
}

void SystemStorageManager::RegisterTable(const std::string& table_name,
                                         SystemRowProvider provider) {
  providers_[IdentUpper(table_name)] = std::move(provider);
}

std::unique_ptr<SystemStorageManager> MakeSystemStorageManager() {
  return std::make_unique<SystemStorageManager>();
}

bool IsSystemTableName(const std::string& name) {
  const std::string upper = IdentUpper(name);
  return upper.rfind("SYS.", 0) == 0;
}

}  // namespace starburst
