
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/agg_ops.cc" "src/CMakeFiles/starburst_exec.dir/exec/agg_ops.cc.o" "gcc" "src/CMakeFiles/starburst_exec.dir/exec/agg_ops.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/starburst_exec.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/starburst_exec.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/expr_eval.cc" "src/CMakeFiles/starburst_exec.dir/exec/expr_eval.cc.o" "gcc" "src/CMakeFiles/starburst_exec.dir/exec/expr_eval.cc.o.d"
  "/root/repo/src/exec/filter_ops.cc" "src/CMakeFiles/starburst_exec.dir/exec/filter_ops.cc.o" "gcc" "src/CMakeFiles/starburst_exec.dir/exec/filter_ops.cc.o.d"
  "/root/repo/src/exec/join_ops.cc" "src/CMakeFiles/starburst_exec.dir/exec/join_ops.cc.o" "gcc" "src/CMakeFiles/starburst_exec.dir/exec/join_ops.cc.o.d"
  "/root/repo/src/exec/plan_refiner.cc" "src/CMakeFiles/starburst_exec.dir/exec/plan_refiner.cc.o" "gcc" "src/CMakeFiles/starburst_exec.dir/exec/plan_refiner.cc.o.d"
  "/root/repo/src/exec/recursive_ops.cc" "src/CMakeFiles/starburst_exec.dir/exec/recursive_ops.cc.o" "gcc" "src/CMakeFiles/starburst_exec.dir/exec/recursive_ops.cc.o.d"
  "/root/repo/src/exec/scan_ops.cc" "src/CMakeFiles/starburst_exec.dir/exec/scan_ops.cc.o" "gcc" "src/CMakeFiles/starburst_exec.dir/exec/scan_ops.cc.o.d"
  "/root/repo/src/exec/setop_ops.cc" "src/CMakeFiles/starburst_exec.dir/exec/setop_ops.cc.o" "gcc" "src/CMakeFiles/starburst_exec.dir/exec/setop_ops.cc.o.d"
  "/root/repo/src/exec/sort_ops.cc" "src/CMakeFiles/starburst_exec.dir/exec/sort_ops.cc.o" "gcc" "src/CMakeFiles/starburst_exec.dir/exec/sort_ops.cc.o.d"
  "/root/repo/src/exec/stream.cc" "src/CMakeFiles/starburst_exec.dir/exec/stream.cc.o" "gcc" "src/CMakeFiles/starburst_exec.dir/exec/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/starburst_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_qgm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
