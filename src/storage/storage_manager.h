#ifndef STARBURST_STORAGE_STORAGE_MANAGER_H_
#define STARBURST_STORAGE_STORAGE_MANAGER_H_

#include <map>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "common/result.h"
#include "common/row.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace starburst {

/// Pull iterator over a table's records.
class TableScanIterator {
 public:
  virtual ~TableScanIterator() = default;
  /// Advances; false at end. On true, `*row` and `*rid` are filled.
  virtual Result<bool> Next(Row* row, Rid* rid) = 0;
  /// Batched scan: fills up to `max_rows` rows (reusing their storage)
  /// and returns how many were produced; 0 means end of scan. The
  /// default adapter loops Next(); page-structured managers override it
  /// to resolve each page once per block instead of once per record.
  virtual Result<size_t> NextBlock(Row* rows, Rid* rids, size_t max_rows);
};

/// One stored table's data, managed by some storage manager. All I/O goes
/// through the BufferPool so the cost model and benches see page traffic.
class TableStorage {
 public:
  virtual ~TableStorage() = default;

  virtual Result<Rid> Insert(const Row& row) = 0;
  virtual Status Delete(Rid rid) = 0;
  virtual Result<Row> Fetch(Rid rid) = 0;
  /// In-place when possible; otherwise relocates and returns the new Rid.
  virtual Result<Rid> Update(Rid rid, const Row& row) = 0;
  virtual std::unique_ptr<TableScanIterator> NewScan() = 0;

  /// Scan restricted to pages [begin_page, end_page) — the unit of a
  /// parallel morsel. Disjoint ranges covering [0, page_count()) yield
  /// every row exactly once. The default walks a full scan and filters
  /// by the returned Rid's page; page-structured managers override it
  /// with a bounded walk.
  virtual std::unique_ptr<TableScanIterator> NewRangeScan(PageNo begin_page,
                                                          PageNo end_page);

  virtual uint64_t row_count() const = 0;
  virtual uint64_t page_count() const = 0;
};

/// Core's storage-manager extension point (§1: "a DBC could define a new
/// storage manager"). A manager is a named factory for TableStorage.
class StorageManager {
 public:
  virtual ~StorageManager() = default;

  virtual const std::string& name() const = 0;
  /// Rejects schemas the manager cannot store (e.g. FIXED vs. strings).
  virtual Status ValidateSchema(const TableSchema& schema) const = 0;
  /// Instantiates storage for `def`. The full TableDef (not just the
  /// schema) flows in so managers that key behavior off the table's
  /// identity — e.g. the SYSTEM manager choosing a row provider by table
  /// name — can do so.
  virtual Result<std::unique_ptr<TableStorage>> CreateTable(
      const TableDef& def, BufferPool* pool) = 0;
};

/// Registry of storage managers available to CREATE TABLE ... USING <sm>.
/// "HEAP" and "FIXED" are pre-registered.
class StorageManagerRegistry {
 public:
  StorageManagerRegistry();

  Status Register(std::unique_ptr<StorageManager> manager);
  Result<StorageManager*> Lookup(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, std::unique_ptr<StorageManager>> managers_;
};

/// Default variable-length slotted-page manager.
std::unique_ptr<StorageManager> MakeHeapStorageManager();
/// The paper's fixed-length-record example manager.
std::unique_ptr<StorageManager> MakeFixedStorageManager();

}  // namespace starburst

#endif  // STARBURST_STORAGE_STORAGE_MANAGER_H_
