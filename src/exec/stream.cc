#include "exec/stream.h"

#include "obs/trace.h"

namespace starburst::exec {

Status Operator::OpenTimed(ExecContext* ctx) {
  double start = obs::NowUs();
  Status st = OpenImpl(ctx);
  stats_->wall_us += obs::NowUs() - start;
  ++stats_->opens;
  return st;
}

Result<bool> Operator::NextTimed(Row* row) {
  double start = obs::NowUs();
  Result<bool> more = NextImpl(row);
  stats_->wall_us += obs::NowUs() - start;
  ++stats_->next_calls;
  if (more.ok() && *more) ++stats_->rows_out;
  return more;
}

void Operator::CloseTimed() {
  double start = obs::NowUs();
  CloseImpl();
  stats_->wall_us += obs::NowUs() - start;
}

Result<Value> ExecContext::LookupParam(const qgm::Quantifier* q,
                                       size_t column) const {
  for (auto it = param_stack_.rbegin(); it != param_stack_.rend(); ++it) {
    auto found = (*it)->values.find(ParamKey{q, column});
    if (found != (*it)->values.end()) return found->second;
  }
  return Status::Internal("unbound correlation parameter " +
                          (q != nullptr ? q->DisplayName() : std::string("?")) +
                          "." + std::to_string(column));
}

Result<std::vector<Row>> DrainOperator(Operator* op) {
  std::vector<Row> rows;
  Row row;
  while (true) {
    STARBURST_ASSIGN_OR_RETURN(bool more, op->Next(&row));
    if (!more) break;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace starburst::exec
