#include "catalog/catalog.h"

#include <algorithm>

namespace starburst {

bool TableDef::ColumnsContainUniqueKey(
    const std::vector<size_t>& columns) const {
  for (const std::vector<size_t>& key : unique_keys) {
    bool covered = std::all_of(key.begin(), key.end(), [&](size_t k) {
      return std::find(columns.begin(), columns.end(), k) != columns.end();
    });
    if (covered) return true;
  }
  return false;
}

Status Catalog::CreateTable(TableDef def) {
  std::string key = IdentUpper(def.name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::AlreadyExists("table or view '" + key + "' already exists");
  }
  if (def.schema.num_columns() == 0) {
    return Status::InvalidArgument("table '" + key + "' has no columns");
  }
  tables_.emplace(key, std::move(def));
  BumpVersion("T:" + key);
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  std::string key = IdentUpper(name);
  if (tables_.erase(key) == 0) {
    return Status::NotFound("table '" + key + "' does not exist");
  }
  // Drop dependent attachments.
  for (auto it = indexes_.begin(); it != indexes_.end();) {
    if (IdentEquals(it->second.table_name, name)) {
      it = indexes_.erase(it);
    } else {
      ++it;
    }
  }
  BumpVersion("T:" + key);
  return Status::OK();
}

Result<const TableDef*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(IdentUpper(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + IdentUpper(name) + "' does not exist");
  }
  return &it->second;
}

Result<TableDef*> Catalog::GetMutableTable(const std::string& name) {
  auto it = tables_.find(IdentUpper(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + IdentUpper(name) + "' does not exist");
  }
  return &it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(IdentUpper(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [name, def] : tables_) names.push_back(name);
  return names;
}

Status Catalog::CreateView(ViewDef def) {
  std::string key = IdentUpper(def.name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::AlreadyExists("table or view '" + key + "' already exists");
  }
  views_.emplace(key, std::move(def));
  BumpVersion("V:" + key);
  return Status::OK();
}

Status Catalog::DropView(const std::string& name) {
  if (views_.erase(IdentUpper(name)) == 0) {
    return Status::NotFound("view '" + IdentUpper(name) + "' does not exist");
  }
  BumpVersion("V:" + IdentUpper(name));
  return Status::OK();
}

Result<const ViewDef*> Catalog::GetView(const std::string& name) const {
  auto it = views_.find(IdentUpper(name));
  if (it == views_.end()) {
    return Status::NotFound("view '" + IdentUpper(name) + "' does not exist");
  }
  return &it->second;
}

bool Catalog::HasView(const std::string& name) const {
  return views_.count(IdentUpper(name)) > 0;
}

std::vector<std::string> Catalog::ViewNames() const {
  std::vector<std::string> names;
  for (const auto& [name, def] : views_) names.push_back(name);
  return names;
}

Status Catalog::CreateIndex(IndexDef def) {
  std::string key = IdentUpper(def.name);
  if (indexes_.count(key)) {
    return Status::AlreadyExists("index '" + key + "' already exists");
  }
  auto table = GetTable(def.table_name);
  if (!table.ok()) return table.status();
  for (const std::string& col : def.key_columns) {
    if (!(*table)->schema.FindColumn(col).has_value()) {
      return Status::SemanticError("index '" + key + "': no column '" + col +
                                   "' in table " + def.table_name);
    }
  }
  // Attachments change a table's access paths, so plans over the table
  // (whether or not they use this index) must notice: the bump lands on
  // the owning table's key.
  std::string table_key = "T:" + IdentUpper(def.table_name);
  indexes_.emplace(key, std::move(def));
  BumpVersion(table_key);
  return Status::OK();
}

Status Catalog::DropIndex(const std::string& name) {
  auto it = indexes_.find(IdentUpper(name));
  if (it == indexes_.end()) {
    return Status::NotFound("index '" + IdentUpper(name) + "' does not exist");
  }
  std::string table_key = "T:" + IdentUpper(it->second.table_name);
  indexes_.erase(it);
  BumpVersion(table_key);
  return Status::OK();
}

Result<const IndexDef*> Catalog::GetIndex(const std::string& name) const {
  auto it = indexes_.find(IdentUpper(name));
  if (it == indexes_.end()) {
    return Status::NotFound("index '" + IdentUpper(name) + "' does not exist");
  }
  return &it->second;
}

std::vector<const IndexDef*> Catalog::IndexesOnTable(
    const std::string& table_name) const {
  std::vector<const IndexDef*> out;
  for (const auto& [name, def] : indexes_) {
    if (IdentEquals(def.table_name, table_name)) out.push_back(&def);
  }
  return out;
}

Status Catalog::UpdateStats(const std::string& table_name, TableStats stats) {
  STARBURST_ASSIGN_OR_RETURN(TableDef* def, GetMutableTable(table_name));
  def->stats = std::move(stats);
  // Refreshed statistics change optimizer choices, so cached plans over
  // the table are stale (ANALYZE invalidates; plain DML does not route
  // through here).
  BumpVersion("T:" + IdentUpper(table_name));
  return Status::OK();
}

}  // namespace starburst
