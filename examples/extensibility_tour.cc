// A tour of every DBC extension point the paper enumerates, in one
// program: new storage manager, new access method, new scalar /
// aggregate / set-predicate / table functions, a new rewrite rule, a new
// optimizer STAR, and the outer-join extension.

#include <cstdio>

#include "engine/database.h"
#include "ext/extensions.h"

using namespace starburst;  // NOLINT — example brevity

namespace {

void Run(Database& db, const char* sql) {
  std::printf("starburst> %s\n", sql);
  Result<ResultSet> result = db.Execute(sql);
  if (!result.ok()) {
    std::printf("ERROR: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", result->ToString().c_str());
}

}  // namespace

int main() {
  Database db;
  (void)ext::RegisterAllExtensions(&db);

  std::printf("== 1. Data management extension: the FIXED storage manager ==\n");
  Run(db, "CREATE TABLE readings (sensor INT, v DOUBLE) USING FIXED");
  Run(db, "INSERT INTO readings VALUES (1, 20.5), (1, 21.0), (2, 19.8), "
          "(2, 22.1), (2, 20.3)");

  std::printf("== 2. Language extension: DBC aggregate STDDEV (§2) ==\n");
  Run(db, "SELECT sensor, AVG(v), STDDEV(v) FROM readings GROUP BY sensor "
          "ORDER BY sensor");

  std::printf("== 3. Language extension: DBC set predicate MAJORITY (§2) ==\n");
  Run(db, "SELECT sensor FROM readings r GROUP BY sensor "
          "HAVING AVG(v) > 20");
  Run(db, "SELECT 'warm' AS verdict WHERE 20.4 < MAJORITY "
          "(SELECT v FROM readings)");

  std::printf("== 4. Language extension: DBC table function SAMPLE (§2) ==\n");
  Run(db, "SELECT sensor, v FROM SAMPLE(readings, 3) s");

  std::printf("== 5. Internal processing extension: a DBC rewrite rule ==\n");
  // A (toy) rule: log every SELECT box the engine browses.
  int boxes_browsed = 0;
  (void)db.rule_engine().AddRule(rewrite::RewriteRule{
      "tour_box_counter", "tour", 0, 1.0,
      [&boxes_browsed](const rewrite::RuleContext& ctx) {
        if (ctx.box->kind == qgm::BoxKind::kSelect) ++boxes_browsed;
        return false;
      },
      [](rewrite::RuleContext&) { return Status::OK(); }});
  Run(db, "SELECT COUNT(*) FROM readings WHERE v > (SELECT AVG(v) "
          "FROM readings)");
  std::printf("rewrite browsed %d SELECT boxes for that query\n\n",
              boxes_browsed);

  std::printf("== 6. Internal processing extension: a DBC STAR ==\n");
  int star_calls = 0;
  (void)db.RegisterStar(optimizer::Star{
      "tour_access_probe", "TableAccess", 0,
      [&star_calls](optimizer::PlanGenerator&, const optimizer::StarContext&,
                    std::vector<optimizer::PlanPtr>*) {
        ++star_calls;
        return Status::OK();
      }});
  Run(db, "SELECT COUNT(*) FROM readings");
  std::printf("the DBC STAR was consulted %d time(s)\n\n", star_calls);

  std::printf("== 7. New operation: LEFT OUTER JOIN (the §4 example) ==\n");
  Run(db, "CREATE TABLE sensors (id INT PRIMARY KEY, room STRING)");
  Run(db, "INSERT INTO sensors VALUES (1, 'lab'), (3, 'attic')");
  Run(db, "SELECT s.room, r.v FROM sensors s LEFT OUTER JOIN readings r "
          "ON s.id = r.sensor ORDER BY s.room, r.v");

  std::printf("== 8. Data management extension: R-tree access method ==\n");
  Run(db, "CREATE TABLE sites (id INT, loc POINT)");
  Run(db, "INSERT INTO sites VALUES (1, POINT(0,0)), (2, POINT(5,5)), "
          "(3, POINT(9,9))");
  Run(db, "CREATE INDEX sites_loc ON sites (loc) USING RTREE");
  Run(db, "SELECT id FROM sites WHERE CONTAINS(loc, 4, 4, 10, 10) "
          "ORDER BY id");
  return 0;
}
