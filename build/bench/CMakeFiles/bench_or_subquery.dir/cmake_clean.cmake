file(REMOVE_RECURSE
  "CMakeFiles/bench_or_subquery.dir/bench_or_subquery.cc.o"
  "CMakeFiles/bench_or_subquery.dir/bench_or_subquery.cc.o.d"
  "bench_or_subquery"
  "bench_or_subquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_or_subquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
