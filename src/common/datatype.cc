#include "common/datatype.h"

namespace starburst {

const char* TypeIdName(TypeId id) {
  switch (id) {
    case TypeId::kNull: return "NULL";
    case TypeId::kBool: return "BOOL";
    case TypeId::kInt: return "INT";
    case TypeId::kDouble: return "DOUBLE";
    case TypeId::kString: return "STRING";
    case TypeId::kExtension: return "EXTENSION";
  }
  return "?";
}

std::string DataType::ToString() const {
  if (id == TypeId::kExtension) return type_name;
  return TypeIdName(id);
}

TypeRegistry& TypeRegistry::Global() {
  static TypeRegistry* registry = new TypeRegistry();
  return *registry;
}

Status TypeRegistry::Register(ExtensionTypeDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("extension type needs a name");
  }
  if (!def.compare || !def.to_string) {
    return Status::InvalidArgument(
        "extension type '" + def.name + "' must supply compare and to_string");
  }
  auto [it, inserted] = types_.emplace(def.name, std::move(def));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("extension type '" + it->first +
                                 "' already registered");
  }
  return Status::OK();
}

bool TypeRegistry::Contains(const std::string& name) const {
  return types_.count(name) > 0;
}

Result<const ExtensionTypeDef*> TypeRegistry::Lookup(
    const std::string& name) const {
  auto it = types_.find(name);
  if (it == types_.end()) {
    return Status::NotFound("extension type '" + name + "' not registered");
  }
  return &it->second;
}

std::vector<std::string> TypeRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(types_.size());
  for (const auto& [name, def] : types_) names.push_back(name);
  return names;
}

}  // namespace starburst
