# Empty dependencies file for example_spatial.
# This may be replaced when dependencies are built.
