# Empty compiler generated dependencies file for test_sql_surface.
# This may be replaced when dependencies are built.
