#!/usr/bin/env bash
# Full verification: tier-1 build + tests, then the same suite under
# AddressSanitizer + UndefinedBehaviorSanitizer, then under
# ThreadSanitizer (the parallel executor's data-race gate).
#
#   scripts/verify.sh            # tier-1 + sanitize + tsan
#   scripts/verify.sh --fast     # tier-1 only
#
# Uses CMake presets when available (cmake >= 3.21); falls back to
# plain -D flags otherwise.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-4}"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

# Probe must be read-only: never use `--preset ... --fresh` here, which
# deletes the build cache as a side effect.
have_presets() {
  cmake --list-presets >/dev/null 2>&1
}

echo "== tier-1: configure + build + ctest =="
if have_presets; then
  cmake --preset default
  cmake --build --preset default -j "$JOBS"
  ctest --preset default -j "$JOBS"
else
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  (cd build && ctest --output-on-failure -j "$JOBS")
fi

if [[ "$FAST" == "1" ]]; then
  echo "== done (fast mode: sanitize skipped) =="
  exit 0
fi

echo "== sanitize: ASan+UBSan build + ctest =="
if have_presets; then
  cmake --preset sanitize
  cmake --build --preset sanitize -j "$JOBS"
  ctest --preset sanitize -j "$JOBS"
else
  cmake -B build-sanitize -S . -DSTARBURST_SANITIZE=ON
  cmake --build build-sanitize -j "$JOBS"
  (cd build-sanitize && ctest --output-on-failure -j "$JOBS")
fi

echo "== tsan: ThreadSanitizer build + ctest =="
if have_presets; then
  cmake --preset tsan
  cmake --build --preset tsan -j "$JOBS"
  ctest --preset tsan -j "$JOBS"
else
  cmake -B build-tsan -S . -DSTARBURST_TSAN=ON
  cmake --build build-tsan -j "$JOBS"
  (cd build-tsan && ctest --output-on-failure -j "$JOBS")
fi

echo "== verify OK =="
