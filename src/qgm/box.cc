#include "qgm/box.h"

#include <algorithm>

namespace starburst::qgm {

const char* QuantifierTypeName(QuantifierType t) {
  switch (t) {
    case QuantifierType::kForEach: return "ForEach";
    case QuantifierType::kPreservedForEach: return "PreserveForEach";
    case QuantifierType::kExists: return "Exists";
    case QuantifierType::kAll: return "All";
    case QuantifierType::kAntiExists: return "AntiExists";
    case QuantifierType::kScalar: return "Scalar";
    case QuantifierType::kSetPredicate: return "SetPredicate";
  }
  return "?";
}

const char* QuantifierTypeGlyph(QuantifierType t) {
  switch (t) {
    case QuantifierType::kForEach: return "F";
    case QuantifierType::kPreservedForEach: return "PF";
    case QuantifierType::kExists: return "E";
    case QuantifierType::kAll: return "A";
    case QuantifierType::kAntiExists: return "~E";
    case QuantifierType::kScalar: return "S";
    case QuantifierType::kSetPredicate: return "SP";
  }
  return "?";
}

const char* BoxKindName(BoxKind k) {
  switch (k) {
    case BoxKind::kBaseTable: return "BASE";
    case BoxKind::kSelect: return "SELECT";
    case BoxKind::kGroupBy: return "GROUPBY";
    case BoxKind::kSetOp: return "SETOP";
    case BoxKind::kValues: return "VALUES";
    case BoxKind::kTableFunction: return "TABLEFUNC";
    case BoxKind::kChoose: return "CHOOSE";
    case BoxKind::kRecursiveUnion: return "RECURSION";
    case BoxKind::kIterationRef: return "ITERREF";
  }
  return "?";
}

std::string Quantifier::DisplayName() const {
  if (!alias.empty()) return alias;
  return "Q" + std::to_string(id);
}

std::string Quantifier::ColumnName(size_t i) const {
  if (input == nullptr || i >= input->head.size()) {
    return "c" + std::to_string(i);
  }
  return input->head[i].name;
}

DataType Quantifier::ColumnType(size_t i) const {
  if (input == nullptr || i >= input->head.size()) return DataType::Null();
  return input->head[i].type;
}

size_t Quantifier::NumColumns() const {
  return input == nullptr ? 0 : input->head.size();
}

Quantifier* Box::AddQuantifier(std::unique_ptr<Quantifier> q) {
  q->owner = this;
  quantifiers.push_back(std::move(q));
  return quantifiers.back().get();
}

std::unique_ptr<Quantifier> Box::RemoveQuantifier(Quantifier* q) {
  for (auto it = quantifiers.begin(); it != quantifiers.end(); ++it) {
    if (it->get() == q) {
      std::unique_ptr<Quantifier> out = std::move(*it);
      quantifiers.erase(it);
      out->owner = nullptr;
      return out;
    }
  }
  return nullptr;
}

Quantifier* Box::FindQuantifier(int qid) const {
  for (const auto& q : quantifiers) {
    if (q->id == qid) return q.get();
  }
  return nullptr;
}

bool Box::OutputIsDuplicateFree(bool ignore_own_enforcement) const {
  if (distinct_enforced && !ignore_own_enforcement) return true;
  switch (kind) {
    case BoxKind::kGroupBy:
      return true;  // one row per group
    case BoxKind::kSetOp:
      return !setop_all;
    case BoxKind::kBaseTable: {
      if (table == nullptr) return false;
      // Duplicate-free iff the full projection preserves some unique key;
      // base-table boxes emit the whole schema, so any key qualifies.
      return !table->unique_keys.empty();
    }
    case BoxKind::kSelect: {
      // A 1-quantifier select is duplicate-free when its head preserves a
      // unique key of the input: any key of a base table, or (conservative
      // for derived inputs) every input column of a duplicate-free input.
      if (quantifiers.size() != 1 ||
          quantifiers[0]->type != QuantifierType::kForEach) {
        return false;
      }
      const Quantifier* q = quantifiers[0].get();
      if (q->input == nullptr) return false;
      std::vector<size_t> kept_columns;
      std::vector<bool> kept(q->NumColumns(), false);
      for (const HeadColumn& h : head) {
        if (h.expr != nullptr && h.expr->kind == Expr::Kind::kColumnRef &&
            h.expr->quantifier == q) {
          if (!kept[h.expr->column]) kept_columns.push_back(h.expr->column);
          kept[h.expr->column] = true;
        }
      }
      if (q->input->kind == BoxKind::kBaseTable && q->input->table != nullptr) {
        return q->input->table->ColumnsContainUniqueKey(kept_columns);
      }
      return q->input->OutputIsDuplicateFree() &&
             std::all_of(kept.begin(), kept.end(), [](bool b) { return b; });
    }
    default:
      return false;
  }
}

std::string Box::Label() const {
  if (kind == BoxKind::kBaseTable && table != nullptr) {
    return table->name;
  }
  std::string out = "OP" + std::to_string(id);
  out += "(";
  out += BoxKindName(kind);
  if (kind == BoxKind::kSetOp) {
    switch (setop) {
      case ast::SetOpKind::kUnion: out += setop_all ? " UNION ALL" : " UNION"; break;
      case ast::SetOpKind::kIntersect:
        out += setop_all ? " INTERSECT ALL" : " INTERSECT";
        break;
      case ast::SetOpKind::kExcept: out += setop_all ? " EXCEPT ALL" : " EXCEPT"; break;
    }
  }
  if (kind == BoxKind::kTableFunction) out += " " + function_name;
  if (kind == BoxKind::kRecursiveUnion || kind == BoxKind::kIterationRef) {
    out += " " + cte_name;
  }
  out += ")";
  return out;
}

}  // namespace starburst::qgm
