#ifndef STARBURST_STORAGE_ATTACHMENT_H_
#define STARBURST_STORAGE_ATTACHMENT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/row.h"
#include "storage/btree.h"
#include "storage/page.h"

namespace starburst {

/// Core's attachment extension point (§1, [LIND87]): a secondary structure
/// maintained alongside a table. Each table mutation is mirrored into every
/// attachment; query operators downcast to the concrete kind for lookups.
class Attachment {
 public:
  virtual ~Attachment() = default;

  virtual const IndexDef& def() const = 0;
  virtual Status OnInsert(const Row& row, Rid rid) = 0;
  virtual Status OnDelete(const Row& row, Rid rid) = 0;

  /// Cumulative node visits for observability aggregation (the access
  /// method's "I/O" proxy); kinds without such a counter report 0.
  virtual uint64_t StatNodeVisits() const { return 0; }
};

/// The built-in B-tree attachment kind ("BTREE").
class BTreeAttachment : public Attachment {
 public:
  /// `key_columns` are resolved positions into the table schema.
  BTreeAttachment(IndexDef def, std::vector<size_t> key_columns)
      : def_(std::move(def)),
        key_columns_(std::move(key_columns)),
        tree_(def_.unique) {}

  const IndexDef& def() const override { return def_; }

  Status OnInsert(const Row& row, Rid rid) override {
    return tree_.Insert(ExtractKey(row), rid);
  }
  Status OnDelete(const Row& row, Rid rid) override {
    return tree_.Remove(ExtractKey(row), rid);
  }

  uint64_t StatNodeVisits() const override { return tree_.stats().node_visits; }

  BTreeKey ExtractKey(const Row& row) const {
    BTreeKey key;
    key.reserve(key_columns_.size());
    for (size_t c : key_columns_) key.push_back(row[c]);
    return key;
  }

  BTree& tree() { return tree_; }

 private:
  IndexDef def_;
  std::vector<size_t> key_columns_;
  BTree tree_;
};

/// Builds an attachment instance for an index definition on a table with
/// the given schema.
using AttachmentFactory = std::function<Result<std::unique_ptr<Attachment>>(
    const IndexDef&, const TableSchema&)>;

/// Registry of attachment kinds, keyed by IndexDef::access_method. "BTREE"
/// is pre-registered; DBC kinds (e.g. "RTREE" in ext/spatial) add here.
class AttachmentRegistry {
 public:
  AttachmentRegistry();

  Status Register(const std::string& access_method, AttachmentFactory factory);
  Result<const AttachmentFactory*> Lookup(const std::string& access_method) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, AttachmentFactory> factories_;
};

}  // namespace starburst

#endif  // STARBURST_STORAGE_ATTACHMENT_H_
