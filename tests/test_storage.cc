#include <gtest/gtest.h>

#include <random>

#include "storage/attachment.h"
#include "storage/btree.h"
#include "storage/record_codec.h"
#include "storage/rtree.h"
#include "storage/storage_engine.h"

namespace starburst {
namespace {

Row MakeRow(int64_t a, const std::string& s) {
  return Row({Value::Int(a), Value::String(s)});
}

// ---------------------------------------------------------------------------
// Pager / buffer pool
// ---------------------------------------------------------------------------

TEST(BufferPoolTest, HitsAndMisses) {
  Pager pager;
  BufferPool pool(&pager, /*capacity_pages=*/2);
  FileId f = pager.CreateFile();
  PageNo p0 = pool.NewPage(f);
  PageNo p1 = pool.NewPage(f);
  PageNo p2 = pool.NewPage(f);  // evicts p0 (dirty -> write)

  pool.GetPage(f, p2);  // hit
  pool.GetPage(f, p1);  // hit
  pool.GetPage(f, p0);  // miss: was evicted
  const BufferPoolStats& stats = pool.stats();
  EXPECT_GE(stats.disk_writes, 1u);
  EXPECT_EQ(stats.disk_reads, 1u);
  EXPECT_GE(stats.cache_hits, 2u);
}

TEST(BufferPoolTest, LruEvictionOrder) {
  Pager pager;
  BufferPool pool(&pager, 2);
  FileId f = pager.CreateFile();
  PageNo p0 = pool.NewPage(f);
  PageNo p1 = pool.NewPage(f);
  pool.GetPage(f, p0);       // p0 most recent; p1 is LRU
  pool.NewPage(f);           // evicts p1
  pool.ResetStats();
  pool.GetPage(f, p0);       // still resident
  EXPECT_EQ(pool.stats().disk_reads, 0u);
  pool.GetPage(f, p1);       // evicted: miss
  EXPECT_EQ(pool.stats().disk_reads, 1u);
}

TEST(BufferPoolTest, StatsSinceClampsAcrossReset) {
  // Regression: Since() is unsigned-delta arithmetic. If ResetStats() runs
  // between the two snapshots, the later counters are *smaller* and naive
  // subtraction wraps to ~2^64. The clamp reports the post-reset count.
  Pager pager;
  BufferPool pool(&pager, /*capacity_pages=*/2);
  FileId f = pager.CreateFile();
  PageNo p0 = pool.NewPage(f);
  pool.GetPage(f, p0);
  pool.GetPage(f, p0);
  BufferPoolStats before = pool.stats();
  EXPECT_GE(before.logical_reads, 2u);

  pool.ResetStats();
  pool.GetPage(f, p0);  // one post-reset touch
  BufferPoolStats delta = pool.stats().Since(before);
  EXPECT_EQ(delta.logical_reads, 1u);  // not 1 - before.logical_reads (wrapped)
  EXPECT_LT(delta.cache_hits, 1u << 20);
  EXPECT_LT(delta.disk_reads, 1u << 20);
  EXPECT_LT(delta.disk_writes, 1u << 20);

  // Monotone case still subtracts exactly.
  BufferPoolStats base = pool.stats();
  pool.GetPage(f, p0);
  pool.GetPage(f, p0);
  BufferPoolStats d2 = pool.stats().Since(base);
  EXPECT_EQ(d2.logical_reads, 2u);
  EXPECT_EQ(d2.disk_reads, 0u);
}

// ---------------------------------------------------------------------------
// Record codecs
// ---------------------------------------------------------------------------

TEST(VarRecordCodecTest, RoundTripsAllTypes) {
  Row row({Value::Null(), Value::Bool(true), Value::Int(-42),
           Value::Double(2.75), Value::String("hello world"),
           Value::Extension("POINT", std::string("\x01\x02", 2))});
  std::string bytes = VarRecordCodec::Encode(row);
  Result<Row> decoded = VarRecordCodec::Decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, row);
}

TEST(VarRecordCodecTest, RejectsTruncatedInput) {
  Row row({Value::String("abcdef")});
  std::string bytes = VarRecordCodec::Encode(row);
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(VarRecordCodec::Decode(bytes).ok());
}

TEST(FixedRecordCodecTest, RoundTripAndNulls) {
  TableSchema schema({{"a", DataType::Int(), true},
                      {"b", DataType::Double(), true},
                      {"c", DataType::Bool(), true}});
  Result<FixedRecordCodec> codec = FixedRecordCodec::ForSchema(schema);
  ASSERT_TRUE(codec.ok());
  Row row({Value::Int(7), Value::Null(), Value::Bool(true)});
  std::vector<uint8_t> buffer(codec->record_size());
  ASSERT_TRUE(codec->Encode(row, buffer.data()).ok());
  Result<Row> decoded = codec->Decode(buffer.data());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, row);
}

TEST(FixedRecordCodecTest, RejectsVariableWidthColumns) {
  TableSchema schema({{"s", DataType::String(), true}});
  EXPECT_FALSE(FixedRecordCodec::ForSchema(schema).ok());
}

// ---------------------------------------------------------------------------
// Storage managers
// ---------------------------------------------------------------------------

// Wraps a bare schema in the TableDef the manager interface takes.
TableDef DefFor(TableSchema schema) {
  TableDef def;
  def.name = "t";
  def.schema = std::move(schema);
  return def;
}

class StorageManagerTest : public ::testing::TestWithParam<const char*> {
 protected:
  TableSchema IntSchema() {
    return TableSchema({{"a", DataType::Int(), true},
                        {"b", DataType::Double(), true}});
  }
};

TEST_P(StorageManagerTest, InsertFetchScanDeleteUpdate) {
  Pager pager;
  BufferPool pool(&pager, 1024);
  StorageManagerRegistry registry;
  Result<StorageManager*> manager = registry.Lookup(GetParam());
  ASSERT_TRUE(manager.ok());
  Result<std::unique_ptr<TableStorage>> table =
      (*manager)->CreateTable(DefFor(IntSchema()), &pool);
  ASSERT_TRUE(table.ok());
  TableStorage& t = **table;

  std::vector<Rid> rids;
  for (int i = 0; i < 500; ++i) {
    Result<Rid> rid = t.Insert(Row({Value::Int(i), Value::Double(i * 0.5)}));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  EXPECT_EQ(t.row_count(), 500u);

  // Fetch.
  Result<Row> fetched = t.Fetch(rids[123]);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ((*fetched)[0], Value::Int(123));

  // Update in place.
  ASSERT_TRUE(t.Update(rids[10], Row({Value::Int(-10), Value::Double(0)})).ok());
  EXPECT_EQ((*t.Fetch(rids[10]))[0], Value::Int(-10));

  // Delete.
  ASSERT_TRUE(t.Delete(rids[200]).ok());
  EXPECT_EQ(t.row_count(), 499u);
  EXPECT_FALSE(t.Fetch(rids[200]).ok());
  EXPECT_EQ(t.Delete(rids[200]).code(), StatusCode::kNotFound);

  // Scan sees exactly the remaining rows.
  std::unique_ptr<TableScanIterator> scan = t.NewScan();
  size_t count = 0;
  Row row;
  Rid rid;
  while (true) {
    Result<bool> more = scan->Next(&row, &rid);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ++count;
    EXPECT_NE(row[0], Value::Int(200));
  }
  EXPECT_EQ(count, 499u);
  EXPECT_GT(t.page_count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Managers, StorageManagerTest,
                         ::testing::Values("HEAP", "FIXED"));

TEST(HeapStorageTest, VariableLengthGrowthRelocates) {
  Pager pager;
  BufferPool pool(&pager, 64);
  StorageManagerRegistry registry;
  auto table =
      (*registry.Lookup("HEAP"))
          ->CreateTable(DefFor(TableSchema({{"s", DataType::String(), true}})),
                        &pool);
  ASSERT_TRUE(table.ok());
  Result<Rid> rid = (*table)->Insert(Row({Value::String("short")}));
  ASSERT_TRUE(rid.ok());
  // Fill the page so the grown record cannot stay in place.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*table)->Insert(Row({Value::String(std::string(60, 'x'))})).ok());
  }
  Result<Rid> moved =
      (*table)->Update(*rid, Row({Value::String(std::string(3000, 'y'))}));
  ASSERT_TRUE(moved.ok());
  Result<Row> fetched = (*table)->Fetch(*moved);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ((*fetched)[0].string_value().size(), 3000u);
}

TEST(HeapStorageTest, OversizeRecordRejected) {
  Pager pager;
  BufferPool pool(&pager, 64);
  StorageManagerRegistry registry;
  auto table =
      (*registry.Lookup("HEAP"))
          ->CreateTable(DefFor(TableSchema({{"s", DataType::String(), true}})),
                        &pool);
  EXPECT_FALSE(
      (*table)->Insert(Row({Value::String(std::string(5000, 'z'))})).ok());
}

// ---------------------------------------------------------------------------
// B-tree
// ---------------------------------------------------------------------------

TEST(BTreeTest, InsertLookupOrderedScan) {
  BTree tree;
  std::mt19937 rng(7);
  std::vector<int> keys(2000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = static_cast<int>(i);
  std::shuffle(keys.begin(), keys.end(), rng);
  for (int k : keys) {
    ASSERT_TRUE(tree.Insert({Value::Int(k)}, Rid{0, static_cast<uint16_t>(k % 1000)})
                    .ok());
  }
  EXPECT_EQ(tree.size(), 2000u);
  EXPECT_GE(tree.height(), 2u);

  EXPECT_EQ(tree.Lookup({Value::Int(1234)}).size(), 1u);
  EXPECT_EQ(tree.Lookup({Value::Int(99999)}).size(), 0u);

  // Full ordered scan.
  auto it = tree.Scan(nullptr, true, nullptr, true);
  BTreeKey key;
  Rid rid;
  int expected = 0;
  while (it->Next(&key, &rid)) {
    EXPECT_EQ(key[0], Value::Int(expected++));
  }
  EXPECT_EQ(expected, 2000);
}

TEST(BTreeTest, RangeScanBounds) {
  BTree tree;
  for (int k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree.Insert({Value::Int(k)}, Rid{0, 0}).ok());
  }
  BTreeKey lo{Value::Int(10)}, hi{Value::Int(20)};
  auto it = tree.Scan(&lo, true, &hi, false);  // [10, 20)
  BTreeKey key;
  Rid rid;
  int count = 0, first = -1, last = -1;
  while (it->Next(&key, &rid)) {
    if (first < 0) first = static_cast<int>(key[0].int_value());
    last = static_cast<int>(key[0].int_value());
    ++count;
  }
  EXPECT_EQ(count, 10);
  EXPECT_EQ(first, 10);
  EXPECT_EQ(last, 19);
}

TEST(BTreeTest, DuplicatesAndRemoval) {
  BTree tree;
  for (uint16_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(tree.Insert({Value::Int(7)}, Rid{0, i}).ok());
  }
  EXPECT_EQ(tree.Lookup({Value::Int(7)}).size(), 5u);
  ASSERT_TRUE(tree.Remove({Value::Int(7)}, Rid{0, 2}).ok());
  EXPECT_EQ(tree.Lookup({Value::Int(7)}).size(), 4u);
  EXPECT_EQ(tree.Remove({Value::Int(7)}, Rid{0, 2}).code(),
            StatusCode::kNotFound);
}

TEST(BTreeTest, UniqueRejectsDuplicates) {
  BTree tree(/*unique=*/true);
  ASSERT_TRUE(tree.Insert({Value::Int(1)}, Rid{0, 0}).ok());
  EXPECT_EQ(tree.Insert({Value::Int(1)}, Rid{0, 1}).code(),
            StatusCode::kAlreadyExists);
}

TEST(BTreeTest, CompositeKeysAndNullsFirst) {
  BTree tree;
  ASSERT_TRUE(tree.Insert({Value::Int(1), Value::String("b")}, Rid{0, 0}).ok());
  ASSERT_TRUE(tree.Insert({Value::Int(1), Value::String("a")}, Rid{0, 1}).ok());
  ASSERT_TRUE(tree.Insert({Value::Null(), Value::String("z")}, Rid{0, 2}).ok());
  auto it = tree.Scan(nullptr, true, nullptr, true);
  BTreeKey key;
  Rid rid;
  ASSERT_TRUE(it->Next(&key, &rid));
  EXPECT_TRUE(key[0].is_null());  // NULL sorts first
  ASSERT_TRUE(it->Next(&key, &rid));
  EXPECT_EQ(key[1], Value::String("a"));
}

// ---------------------------------------------------------------------------
// R-tree
// ---------------------------------------------------------------------------

TEST(RTreeTest, WindowSearchMatchesBruteForce) {
  RTree tree;
  std::mt19937 rng(13);
  std::uniform_real_distribution<double> coord(0, 1000);
  std::vector<Rect> points;
  for (uint16_t i = 0; i < 3000; ++i) {
    Rect p = Rect::Point(coord(rng), coord(rng));
    points.push_back(p);
    tree.Insert(p, Rid{static_cast<PageNo>(i), 0});
  }
  Rect window{100, 100, 300, 250};
  std::vector<Rid> found = tree.Search(window);
  size_t expected = 0;
  for (const Rect& p : points) {
    if (window.Intersects(p)) ++expected;
  }
  EXPECT_EQ(found.size(), expected);
  EXPECT_GT(expected, 0u);
}

TEST(RTreeTest, RemoveAndRecount) {
  RTree tree;
  Rect p = Rect::Point(5, 5);
  tree.Insert(p, Rid{1, 1});
  tree.Insert(Rect::Point(9, 9), Rid{2, 2});
  EXPECT_EQ(tree.size(), 2u);
  ASSERT_TRUE(tree.Remove(p, Rid{1, 1}).ok());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Remove(p, Rid{1, 1}).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree.Search(Rect{0, 0, 10, 10}).size(), 1u);
}

TEST(RTreeTest, SearchVisitsFewNodesOnSmallWindows) {
  RTree tree;
  std::mt19937 rng(17);
  std::uniform_real_distribution<double> coord(0, 1000);
  for (uint32_t i = 0; i < 5000; ++i) {
    tree.Insert(Rect::Point(coord(rng), coord(rng)), Rid{i, 0});
  }
  tree.ResetStats();
  tree.Search(Rect{10, 10, 12, 12});
  uint64_t small_window = tree.stats().node_visits;
  tree.ResetStats();
  tree.Search(Rect{0, 0, 1000, 1000});
  uint64_t full_window = tree.stats().node_visits;
  EXPECT_LT(small_window * 5, full_window);  // pruning actually prunes
}

// ---------------------------------------------------------------------------
// Storage engine + attachments
// ---------------------------------------------------------------------------

TEST(StorageEngineTest, AttachmentMaintenance) {
  StorageEngine engine;
  TableDef def;
  def.name = "t";
  def.schema = TableSchema({{"k", DataType::Int(), true},
                            {"v", DataType::String(), true}});
  ASSERT_TRUE(engine.CreateTable(def).ok());

  IndexDef index;
  index.name = "t_k";
  index.table_name = "t";
  index.key_columns = {"k"};
  ASSERT_TRUE(engine.CreateIndex(index, def.schema).ok());

  Result<Rid> r1 = engine.InsertRow("t", MakeRow(1, "one"));
  Result<Rid> r2 = engine.InsertRow("t", MakeRow(2, "two"));
  ASSERT_TRUE(r1.ok() && r2.ok());

  auto* btree = dynamic_cast<BTreeAttachment*>(*engine.GetIndex("t_k"));
  ASSERT_NE(btree, nullptr);
  EXPECT_EQ(btree->tree().Lookup({Value::Int(1)}).size(), 1u);

  // Update moves the key in the index.
  ASSERT_TRUE(engine.UpdateRow("t", *r1, MakeRow(10, "ten")).ok());
  EXPECT_EQ(btree->tree().Lookup({Value::Int(1)}).size(), 0u);
  EXPECT_EQ(btree->tree().Lookup({Value::Int(10)}).size(), 1u);

  // Delete removes it.
  ASSERT_TRUE(engine.DeleteRow("t", *r2).ok());
  EXPECT_EQ(btree->tree().Lookup({Value::Int(2)}).size(), 0u);
}

TEST(StorageEngineTest, BackfillExistingRows) {
  StorageEngine engine;
  TableDef def;
  def.name = "t";
  def.schema = TableSchema({{"k", DataType::Int(), true}});
  ASSERT_TRUE(engine.CreateTable(def).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine.InsertRow("t", Row({Value::Int(i)})).ok());
  }
  IndexDef index;
  index.name = "late";
  index.table_name = "t";
  index.key_columns = {"k"};
  ASSERT_TRUE(engine.CreateIndex(index, def.schema).ok());
  auto* btree = dynamic_cast<BTreeAttachment*>(*engine.GetIndex("late"));
  EXPECT_EQ(btree->tree().size(), 50u);
}

TEST(StorageEngineTest, UniqueAttachmentRollsBackBaseInsert) {
  StorageEngine engine;
  TableDef def;
  def.name = "t";
  def.schema = TableSchema({{"k", DataType::Int(), true}});
  ASSERT_TRUE(engine.CreateTable(def).ok());
  IndexDef index;
  index.name = "uk";
  index.table_name = "t";
  index.key_columns = {"k"};
  index.unique = true;
  ASSERT_TRUE(engine.CreateIndex(index, def.schema).ok());
  ASSERT_TRUE(engine.InsertRow("t", Row({Value::Int(1)})).ok());
  EXPECT_FALSE(engine.InsertRow("t", Row({Value::Int(1)})).ok());
  EXPECT_EQ((*engine.GetTable("t"))->row_count(), 1u);
}

TEST(BufferPoolTest, FlushWritesDirtyOnce) {
  Pager pager;
  BufferPool pool(&pager, 8);
  FileId f = pager.CreateFile();
  pool.NewPage(f);
  pool.NewPage(f);
  pool.ResetStats();
  pool.FlushAll();
  EXPECT_EQ(pool.stats().disk_writes, 2u);
  pool.FlushAll();  // now clean
  EXPECT_EQ(pool.stats().disk_writes, 2u);
}

TEST(BufferPoolTest, CapacityResizeTakesEffect) {
  Pager pager;
  BufferPool pool(&pager, 100);
  FileId f = pager.CreateFile();
  for (int i = 0; i < 50; ++i) pool.NewPage(f);
  pool.set_capacity(4);
  pool.ResetStats();
  // Touch a page to trigger eviction down to capacity.
  pool.GetPage(f, 0);
  for (PageNo p = 0; p < 50; ++p) pool.GetPage(f, p);
  // With capacity 4 and a sequential sweep of 50 pages, most are misses.
  EXPECT_GT(pool.stats().disk_reads, 40u);
}

TEST(FixedStorageTest, SlotsReusedAfterDelete) {
  Pager pager;
  BufferPool pool(&pager, 64);
  StorageManagerRegistry registry;
  auto table =
      (*registry.Lookup("FIXED"))
          ->CreateTable(DefFor(TableSchema({{"a", DataType::Int(), true}})),
                        &pool);
  ASSERT_TRUE(table.ok());
  std::vector<Rid> rids;
  for (int i = 0; i < 1000; ++i) {
    rids.push_back(*(*table)->Insert(Row({Value::Int(i)})));
  }
  uint64_t pages_before = (*table)->page_count();
  for (int i = 0; i < 1000; i += 2) {
    ASSERT_TRUE((*table)->Delete(rids[i]).ok());
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*table)->Insert(Row({Value::Int(10000 + i)})).ok());
  }
  // Freed slots were reused: no (significant) file growth.
  EXPECT_LE((*table)->page_count(), pages_before + 1);
  EXPECT_EQ((*table)->row_count(), 1000u);
}

TEST(BTreeTest, StatsTrackWork) {
  BTree tree;
  for (int k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree.Insert({Value::Int(k)}, Rid{0, 0}).ok());
  }
  EXPECT_GT(tree.stats().splits, 0u);
  tree.ResetStats();
  tree.Lookup({Value::Int(500)});
  // A point lookup visits height-many nodes, not the whole tree.
  EXPECT_LE(tree.stats().node_visits, tree.height() + 1);
  EXPECT_GE(tree.stats().node_visits, tree.height());
}

TEST(StorageEngineTest, UnknownStorageManagerFails) {
  StorageEngine engine;
  TableDef def;
  def.name = "t";
  def.schema = TableSchema({{"k", DataType::Int(), true}});
  def.storage_manager = "NO_SUCH";
  EXPECT_EQ(engine.CreateTable(def).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace starburst
