#ifndef STARBURST_STORAGE_BUFFER_POOL_H_
#define STARBURST_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "storage/page.h"

namespace starburst {

/// I/O accounting exposed to the cost model and the benchmark harness.
struct BufferPoolStats {
  uint64_t logical_reads = 0;
  uint64_t cache_hits = 0;
  uint64_t disk_reads = 0;   // misses
  uint64_t disk_writes = 0;  // dirty evictions + flushes

  double HitRate() const {
    return logical_reads == 0
               ? 1.0
               : static_cast<double>(cache_hits) / static_cast<double>(logical_reads);
  }

  /// Counter deltas since an earlier snapshot (per-phase accounting).
  /// If a counter went backwards (ResetStats() ran between the snapshots),
  /// the pre-reset activity is unrecoverable; report the post-reset count
  /// instead of letting the unsigned subtraction wrap to ~2^64.
  BufferPoolStats Since(const BufferPoolStats& before) const {
    auto delta = [](uint64_t now, uint64_t then) {
      return now >= then ? now - then : now;
    };
    BufferPoolStats d;
    d.logical_reads = delta(logical_reads, before.logical_reads);
    d.cache_hits = delta(cache_hits, before.cache_hits);
    d.disk_reads = delta(disk_reads, before.disk_reads);
    d.disk_writes = delta(disk_writes, before.disk_writes);
    return d;
  }
};

/// An LRU buffer pool over the Pager. Pages are always memory-resident
/// (the Pager is the simulated disk); the pool's job is to *account*: a
/// touch of a non-resident page is a disk read, eviction of a dirty page
/// is a disk write. `capacity_pages` bounds residency.
///
/// Thread safety: all accounting state (LRU list, residency map, stats)
/// is guarded by an internal mutex so parallel morsel scans can share the
/// pool. Returned Page pointers stay valid across eviction because pages
/// live in the Pager, never in pool frames.
class BufferPool {
 public:
  using Stats = BufferPoolStats;

  explicit BufferPool(Pager* pager, size_t capacity_pages = 1024)
      : pager_(pager), capacity_(capacity_pages) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches a page for reading; registers hit/miss.
  const Page* GetPage(FileId file, PageNo page);
  /// Fetches a page for writing; registers hit/miss and marks it dirty.
  Page* GetMutablePage(FileId file, PageNo page);

  /// Appends a fresh page to `file`, resident and dirty.
  PageNo NewPage(FileId file);

  /// Writes back every dirty page (counts writes) and keeps residency.
  void FlushAll();

  /// Returns a consistent snapshot (by value: the counters may keep
  /// moving under concurrent scans).
  BufferPoolStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = BufferPoolStats{};
  }

  size_t capacity() const { return capacity_; }
  /// Shrinking evicts immediately (dirty victims count as writes).
  void set_capacity(size_t capacity_pages);

  Pager* pager() { return pager_; }

 private:
  struct Key {
    FileId file;
    PageNo page;
    bool operator==(const Key& o) const {
      return file == o.file && page == o.page;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return (static_cast<size_t>(k.file) << 32) ^ k.page;
    }
  };
  struct Frame {
    std::list<Key>::iterator lru_pos;
    bool dirty = false;
  };

  /// Makes (file,page) resident; returns whether it was already (hit).
  /// Caller must hold mu_.
  bool Touch(FileId file, PageNo page, bool dirty);
  /// Caller must hold mu_.
  void EvictIfNeeded();

  Pager* pager_;
  size_t capacity_;
  mutable std::mutex mu_;
  std::list<Key> lru_;  // front = most recent
  std::unordered_map<Key, Frame, KeyHash> resident_;
  BufferPoolStats stats_;
};

}  // namespace starburst

#endif  // STARBURST_STORAGE_BUFFER_POOL_H_
