#ifndef STARBURST_BENCH_BENCH_UTIL_H_
#define STARBURST_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction harness. Each bench binary
// regenerates one artifact or quantified claim from the paper (see
// DESIGN.md's per-experiment index) and prints a small table whose
// *shape* — who wins, where the crossover falls — is the result.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "engine/database.h"

namespace starburst::bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Median wall time of `fn` over `reps` runs, in microseconds.
inline double MedianUs(const std::function<void()>& fn, int reps = 3) {
  std::vector<double> times;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    times.push_back(t.ElapsedUs());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Minimum wall time of `fn` over `reps` runs, in microseconds. Preferred for
/// CPU-bound sections on contended machines: interference only ever adds
/// time, so the minimum is the robust estimate of the true cost.
inline double MinUs(const std::function<void()>& fn, int reps = 5) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    double us = t.ElapsedUs();
    if (i == 0 || us < best) best = us;
  }
  return best;
}

inline void Must(const Result<ResultSet>& r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what, r.status().ToString().c_str());
    std::exit(1);
  }
}

inline void MustExec(Database* db, const std::string& sql) {
  Result<ResultSet> r = db->Execute(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL: %s\n  in: %s\n", r.status().ToString().c_str(),
                 sql.c_str());
    std::exit(1);
  }
}

inline size_t MustRows(Database* db, const std::string& sql) {
  Result<std::vector<Row>> r = db->Query(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL: %s\n  in: %s\n", r.status().ToString().c_str(),
                 sql.c_str());
    std::exit(1);
  }
  return r->size();
}

/// Machine-readable bench results. Construct with argv and a bench name;
/// when the binary was invoked with `--json`, every Add()ed record is
/// written to `BENCH_<name>.json` in the working directory on Flush()
/// (or destruction). Without the flag the reporter is inert, so benches
/// can call Add() unconditionally next to their printf tables.
class JsonReporter {
 public:
  JsonReporter(std::string bench_name, int argc, char** argv)
      : name_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--json") enabled_ = true;
    }
  }
  ~JsonReporter() { Flush(); }
  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  bool enabled() const { return enabled_; }

  /// Records one measurement: a series label, the parameter point it was
  /// taken at (name -> numeric value), and the two canonical metrics.
  void Add(std::string series,
           std::vector<std::pair<std::string, double>> params, double wall_ms,
           double rows_per_sec) {
    if (!enabled_) return;
    records_.push_back(Record{std::move(series), std::move(params), wall_ms,
                              rows_per_sec});
  }

  void Flush() {
    if (!enabled_ || flushed_) return;
    flushed_ = true;
    std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "WARN: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [", name_.c_str());
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f, "%s\n    {\"series\": \"%s\", \"params\": {",
                   i == 0 ? "" : ",", r.series.c_str());
      for (size_t p = 0; p < r.params.size(); ++p) {
        std::fprintf(f, "%s\"%s\": %s", p == 0 ? "" : ", ",
                     r.params[p].first.c_str(), Num(r.params[p].second).c_str());
      }
      std::fprintf(f, "}, \"wall_ms\": %s, \"rows_per_sec\": %s}",
                   Num(r.wall_ms).c_str(), Num(r.rows_per_sec).c_str());
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu records)\n", path.c_str(), records_.size());
  }

 private:
  struct Record {
    std::string series;
    std::vector<std::pair<std::string, double>> params;
    double wall_ms;
    double rows_per_sec;
  };

  /// JSON-safe number: plain integers stay integral, everything else gets
  /// enough digits to round-trip a measurement.
  static std::string Num(double v) {
    char buf[64];
    if (v == static_cast<int64_t>(v)) {
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(static_cast<int64_t>(v)));
    } else {
      std::snprintf(buf, sizeof(buf), "%.6g", v);
    }
    return buf;
  }

  std::string name_;
  bool enabled_ = false;
  bool flushed_ = false;
  std::vector<Record> records_;
};

/// The paper's quotations/inventory schema at a given scale factor:
/// |inventory| = 5·scale parts (unique partno), |quotations| = 5·scale
/// quotations referencing them.
inline std::unique_ptr<Database> MakePartsDb(int scale, uint32_t seed = 7) {
  auto db = std::make_unique<Database>();
  MustExec(db.get(),
           "CREATE TABLE quotations (partno INT, price DOUBLE, order_qty INT)");
  MustExec(db.get(),
           "CREATE TABLE inventory (partno INT PRIMARY KEY, onhand_qty INT, "
           "type STRING)");
  std::mt19937 rng(seed);
  const char* types[] = {"CPU", "DISK", "RAM", "TAPE"};
  int parts = 5 * scale;
  for (int base = 0; base < parts; base += 500) {
    std::string sql = "INSERT INTO inventory VALUES ";
    int hi = std::min(base + 500, parts);
    for (int i = base; i < hi; ++i) {
      if (i > base) sql += ", ";
      sql += "(" + std::to_string(i) + ", " +
             std::to_string(static_cast<int>(rng() % 200)) + ", '" +
             types[rng() % 4] + "')";
    }
    MustExec(db.get(), sql);
  }
  for (int base = 0; base < parts; base += 500) {
    std::string sql = "INSERT INTO quotations VALUES ";
    int hi = std::min(base + 500, parts);
    for (int i = base; i < hi; ++i) {
      if (i > base) sql += ", ";
      sql += "(" + std::to_string(static_cast<int>(rng() % parts)) + ", " +
             std::to_string(1.0 + (rng() % 10000) / 100.0) + ", " +
             std::to_string(static_cast<int>(rng() % 250)) + ")";
    }
    MustExec(db.get(), sql);
  }
  if (!db->AnalyzeAll().ok()) std::exit(1);
  return db;
}

/// A generic integer table `name(k INT, v INT, w STRING)` with `rows`
/// rows; k in [0, rows), v in [0, ndv_v).
inline void MakeIntTable(Database* db, const std::string& name, int rows,
                         int ndv_v, uint32_t seed = 11) {
  MustExec(db, "CREATE TABLE " + name + " (k INT, v INT, w STRING)");
  std::mt19937 rng(seed);
  for (int base = 0; base < rows; base += 500) {
    std::string sql = "INSERT INTO " + name + " VALUES ";
    int hi = std::min(base + 500, rows);
    for (int i = base; i < hi; ++i) {
      if (i > base) sql += ", ";
      sql += "(" + std::to_string(i) + ", " +
             std::to_string(static_cast<int>(rng() % ndv_v)) + ", 'w" +
             std::to_string(rng() % 100) + "')";
    }
    MustExec(db, sql);
  }
}

}  // namespace starburst::bench

#endif  // STARBURST_BENCH_BENCH_UTIL_H_
