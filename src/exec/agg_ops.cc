#include <map>
#include <set>
#include <unordered_map>

#include "exec/operators.h"

namespace starburst::exec {

namespace {

struct ValueTotalLess {
  bool operator()(const Value& a, const Value& b) const {
    return a.CompareTotal(b) < 0;
  }
};

/// Hash aggregation. With zero group keys there is exactly one group —
/// even over empty input (SQL scalar-aggregate semantics).
class GroupAggOp : public Operator {
 public:
  GroupAggOp(OperatorPtr input, std::vector<CompiledExprPtr> group_keys,
             std::vector<AggSpec> aggregates, std::vector<GroupHeadItem> head)
      : input_(std::move(input)), group_keys_(std::move(group_keys)),
        aggregates_(std::move(aggregates)), head_(std::move(head)) {}

  Status OpenImpl(ExecContext* ctx) override {
    ctx_ = ctx;
    results_.clear();
    pos_ = 0;

    struct GroupState {
      std::vector<std::unique_ptr<AggregateState>> states;
      // DISTINCT aggregates buffer their input set first.
      std::vector<std::set<Value, ValueTotalLess>> distinct_inputs;
    };
    std::map<Row, GroupState, RowTotalLess> groups;

    auto new_group_state = [&]() {
      GroupState state;
      for (const AggSpec& spec : aggregates_) {
        state.states.push_back(spec.def->make_state());
        state.distinct_inputs.emplace_back();
      }
      return state;
    };

    if (group_keys_.empty()) {
      groups.emplace(Row(), new_group_state());
    }

    STARBURST_RETURN_IF_ERROR(input_->Open(ctx));
    RowBatch in_batch(ctx->batch_size());
    while (true) {
      STARBURST_ASSIGN_OR_RETURN(bool more, input_->NextBatch(&in_batch));
      if (!more) break;
      // Group keys and aggregate args can reference correlation params
      // (dependent aggregate subqueries) — fold them once per batch.
      ScopedParamFold fold;
      for (const CompiledExprPtr& k : group_keys_) {
        STARBURST_RETURN_IF_ERROR(fold.Add(k.get(), ctx));
      }
      for (const AggSpec& spec : aggregates_) {
        if (spec.arg != nullptr) {
          STARBURST_RETURN_IF_ERROR(fold.Add(spec.arg.get(), ctx));
        }
      }
      size_t n = in_batch.size();
      for (size_t bi = 0; bi < n; ++bi) {
        const Row& in = in_batch.row(bi);
        std::vector<Value> key_values;
        key_values.reserve(group_keys_.size());
        for (const CompiledExprPtr& k : group_keys_) {
          STARBURST_ASSIGN_OR_RETURN(Value v, k->Eval(in, ctx));
          key_values.push_back(std::move(v));
        }
        Row key(std::move(key_values));
        auto it = groups.find(key);
        if (it == groups.end()) {
          it = groups.emplace(std::move(key), new_group_state()).first;
        }
        GroupState& group = it->second;
        for (size_t a = 0; a < aggregates_.size(); ++a) {
          Value v = Value::Int(1);  // COUNT(*) counts every row
          if (aggregates_[a].arg != nullptr) {
            STARBURST_ASSIGN_OR_RETURN(v, aggregates_[a].arg->Eval(in, ctx));
          }
          if (aggregates_[a].distinct) {
            if (!v.is_null()) group.distinct_inputs[a].insert(std::move(v));
          } else {
            STARBURST_RETURN_IF_ERROR(group.states[a]->Accumulate(v));
          }
        }
      }
    }
    input_->Close();

    // Finalize each group into its output row, per the head mapping.
    for (auto& [key, group] : groups) {
      std::vector<Value> agg_values;
      for (size_t a = 0; a < aggregates_.size(); ++a) {
        if (aggregates_[a].distinct) {
          for (const Value& v : group.distinct_inputs[a]) {
            STARBURST_RETURN_IF_ERROR(group.states[a]->Accumulate(v));
          }
        }
        STARBURST_ASSIGN_OR_RETURN(Value v, group.states[a]->Finalize());
        agg_values.push_back(std::move(v));
      }
      std::vector<Value> out;
      out.reserve(head_.size());
      for (const GroupHeadItem& item : head_) {
        if (item.source == GroupHeadItem::Source::kKey) {
          out.push_back(key[item.index]);
        } else {
          out.push_back(agg_values[item.index]);
        }
      }
      results_.push_back(Row(std::move(out)));
    }
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override {
    if (pos_ >= results_.size()) return false;
    *row = results_[pos_++];
    ++ctx_->stats().rows_emitted;
    return true;
  }

  Result<bool> NextBatchImpl(RowBatch* batch) override {
    size_t before = pos_;
    bool any = FillBatchFromRows(results_, &pos_, batch);
    ctx_->stats().rows_emitted += pos_ - before;
    return any;
  }

  void CloseImpl() override { results_.clear(); }

 private:
  OperatorPtr input_;
  std::vector<CompiledExprPtr> group_keys_;
  std::vector<AggSpec> aggregates_;
  std::vector<GroupHeadItem> head_;
  ExecContext* ctx_ = nullptr;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

}  // namespace

OperatorPtr MakeGroupAggOp(OperatorPtr input,
                           std::vector<CompiledExprPtr> group_keys,
                           std::vector<AggSpec> aggregates,
                           std::vector<GroupHeadItem> head) {
  return std::make_unique<GroupAggOp>(std::move(input), std::move(group_keys),
                                      std::move(aggregates), std::move(head));
}

}  // namespace starburst::exec
