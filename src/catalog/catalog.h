#ifndef STARBURST_CATALOG_CATALOG_H_
#define STARBURST_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/function_registry.h"
#include "catalog/schema.h"
#include "catalog/statistics.h"
#include "common/result.h"

namespace starburst {

/// Metadata for a stored (base) table. `storage_manager` names the Core
/// storage manager the table was created under ("HEAP" by default; the
/// paper's fixed-length-record manager is "FIXED"); Corona "must ensure
/// that the correct storage manager is invoked when a table is accessed".
struct TableDef {
  std::string name;
  TableSchema schema;
  std::string storage_manager = "HEAP";
  /// Site the table is stored at; "local" unless simulating distribution.
  /// Non-local tables get a SHIP LOLEPOP glued above their access plans.
  std::string site = "local";
  /// Column index sets that are unique keys (first one = primary key when
  /// present). Drives rewrite Rule 1's "at most one tuple matches" test.
  std::vector<std::vector<size_t>> unique_keys;
  TableStats stats;

  bool ColumnsContainUniqueKey(const std::vector<size_t>& columns) const;
};

/// Metadata for an access-method attachment on a table (§1: B-trees are
/// built in; a DBC can attach new kinds, e.g. an R-tree).
struct IndexDef {
  std::string name;
  std::string table_name;
  std::vector<std::string> key_columns;
  bool unique = false;
  std::string access_method = "BTREE";  // "BTREE", "RTREE", DBC-defined
};

/// A named view: its Hydrogen text is stored and merged/expanded at use
/// sites by the binder, hidden from the query writer (§5).
struct ViewDef {
  std::string name;
  std::vector<std::string> column_names;  // optional renames
  std::string body_sql;                   // the defining SELECT
};

/// The system catalog: tables, views, attachments, statistics, and the
/// function registry. One per Database instance.
class Catalog {
 public:
  Catalog() : functions_(std::make_unique<FunctionRegistry>()) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // -- tables --
  Status CreateTable(TableDef def);
  Status DropTable(const std::string& name);
  Result<const TableDef*> GetTable(const std::string& name) const;
  Result<TableDef*> GetMutableTable(const std::string& name);
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // -- views --
  Status CreateView(ViewDef def);
  Status DropView(const std::string& name);
  Result<const ViewDef*> GetView(const std::string& name) const;
  bool HasView(const std::string& name) const;
  std::vector<std::string> ViewNames() const;

  // -- attachments (indexes) --
  Status CreateIndex(IndexDef def);
  Status DropIndex(const std::string& name);
  Result<const IndexDef*> GetIndex(const std::string& name) const;
  /// All attachments on `table_name`.
  std::vector<const IndexDef*> IndexesOnTable(const std::string& table_name) const;

  // -- statistics --
  Status UpdateStats(const std::string& table_name, TableStats stats);

  // -- versioning --
  /// Monotonic catalog version, bumped by every successful DDL mutation
  /// and statistics refresh. A plan compiled at version v is trivially
  /// fresh while version() still equals v.
  uint64_t version() const { return version_; }
  /// The version at which the named object last changed (created,
  /// dropped, attachment added/removed, statistics refreshed). Keys are
  /// the binder's dependency keys: "T:NAME" / "V:NAME", uppercase. An
  /// object never touched reports 0; a dropped object keeps reporting its
  /// drop version, so plans compiled before a re-CREATE notice too.
  uint64_t ObjectVersion(const std::string& key) const {
    auto it = object_versions_.find(key);
    return it == object_versions_.end() ? 0 : it->second;
  }

  FunctionRegistry& functions() { return *functions_; }
  const FunctionRegistry& functions() const { return *functions_; }

 private:
  /// Records that `key` changed in a fresh version.
  void BumpVersion(const std::string& key) {
    object_versions_[key] = ++version_;
  }

  std::map<std::string, TableDef> tables_;   // keyed by upper-cased name
  std::map<std::string, ViewDef> views_;
  std::map<std::string, IndexDef> indexes_;
  std::unique_ptr<FunctionRegistry> functions_;
  uint64_t version_ = 0;
  std::map<std::string, uint64_t> object_versions_;
};

}  // namespace starburst

#endif  // STARBURST_CATALOG_CATALOG_H_
