file(REMOVE_RECURSE
  "CMakeFiles/bench_subquery_cache.dir/bench_subquery_cache.cc.o"
  "CMakeFiles/bench_subquery_cache.dir/bench_subquery_cache.cc.o.d"
  "bench_subquery_cache"
  "bench_subquery_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subquery_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
