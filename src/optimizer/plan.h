#ifndef STARBURST_OPTIMIZER_PLAN_H_
#define STARBURST_OPTIMIZER_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "qgm/box.h"

namespace starburst::optimizer {

/// Low-LEvel Plan OPerators (§6): "a variation of the relational algebra
/// (e.g., JOIN, UNION, etc.), supplemented with physical operators such as
/// SCAN, SORT, SHIP". Each operates on streams of tuples and produces a
/// stream.
enum class Lolepop : uint8_t {
  kScan,        // sequential scan of a stored table (col subset + preds)
  kIndexScan,   // B-tree range/point access (+ rid fetch)
  kValues,      // literal rows
  kFilter,      // residual predicate application
  kProject,     // compute a box head from quantifier columns
  kSort,        // order change
  kNlJoin,      // nested-loop join (any predicate, any kind)
  kMergeJoin,   // sort-merge join (equality, sorted inputs)
  kHashJoin,    // hash join (equality)
  kTemp,        // materialize a stream for cheap rescans
  kShip,        // site change (simulated network)
  kGroupAgg,    // grouping + aggregate evaluation
  kSetOp,       // UNION / INTERSECT / EXCEPT (ALL or not)
  kDistinct,    // duplicate elimination
  kTableFunc,   // DBC table function invocation
  kRecurse,     // recursive-union fixpoint driver
  kIterRef,     // scan of the recursion's working/delta table
  kOrRoute,     // §7's OR operator for disjuncts with subqueries
  kExtension,   // DBC-defined operator, named by Plan::ext_name
};

const char* LolepopName(Lolepop op);

/// Join kinds (§7): "the join operators must be able to handle different
/// kinds of joins ... Each join operator takes as one of its parameters a
/// function name, representing the join kind" — so one method (NL, merge,
/// hash) serves every kind, and new kinds (left outer) reuse old methods.
enum class JoinKind : uint8_t {
  kRegular,    // inner
  kLeftOuter,  // the PF extension
  kExists,     // semi-join (E quantifier)
  kAnti,       // negated existential
  kScalar,     // scalar-subquery join (error on >1 inner match)
  kOpAll,      // universal (op ALL)
  kSetPred,    // DBC set predicate (join_set_function names it)
};

const char* JoinKindName(JoinKind k);

/// One output slot of a plan: a column of some quantifier's range table,
/// or a head column of a box (for box-level plans).
struct ColumnBinding {
  const qgm::Quantifier* quantifier = nullptr;  // null => box output
  const qgm::Box* box = nullptr;                // set when quantifier null
  size_t column = 0;

  bool operator==(const ColumnBinding& o) const {
    return quantifier == o.quantifier && box == o.box && column == o.column;
  }
};

/// Table properties the optimizer tracks per plan (§6): relational
/// (quantifiers covered, predicates applied — kept in the enumerator),
/// operational (tuple order, site), and estimated (cost, cardinality).
struct PlanProps {
  /// Output order: (output slot, ascending) major-to-minor; empty = none.
  std::vector<std::pair<size_t, bool>> order;
  std::string site = "local";
  double cost = 0;         // total cost to produce the stream once
  double rescan_cost = 0;  // cost to produce it again (TEMP makes it cheap)
  double cardinality = 0;  // estimated output rows
};

struct Plan;
using PlanPtr = std::shared_ptr<const Plan>;

/// A query evaluation plan: "a nesting of invocations of LOLEPOPs".
/// Immutable; the enumerator shares subplans across alternatives.
struct Plan {
  Lolepop op = Lolepop::kScan;
  std::vector<PlanPtr> inputs;
  std::vector<ColumnBinding> output;  // slot layout of the emitted stream
  PlanProps props;

  // -- kScan / kIndexScan --
  const qgm::Quantifier* quantifier = nullptr;  // which iterator this feeds
  const TableDef* table = nullptr;
  const IndexDef* index = nullptr;
  std::vector<size_t> scan_columns;  // projected base columns (scan subset)

  // -- kScan / kIndexScan / kFilter / joins: predicates applied here --
  std::vector<const qgm::Expr*> predicates;

  // -- kIndexScan: the matched sargable predicate (col op literal/expr) --
  const qgm::Expr* index_predicate = nullptr;

  // -- joins --
  JoinKind join_kind = JoinKind::kRegular;
  std::string join_set_function;  // kSetPred
  /// Equality pairs (outer slot, inner slot) for hash/merge joins.
  std::vector<std::pair<size_t, size_t>> equi_keys;
  /// For quantified-compare joins: outer expr op inner col 0.
  const qgm::Expr* quant_compare = nullptr;

  // -- kProject / kGroupAgg / kSetOp / kTableFunc / kRecurse / kIterRef --
  const qgm::Box* box = nullptr;

  // -- kSort --
  std::vector<std::pair<size_t, bool>> sort_keys;

  // -- kShip --
  std::string from_site, to_site;

  // -- kExtension: which DBC operator, resolved by the QES's extension
  //    operator registry at plan refinement time --
  std::string ext_name;

  // -- kTemp: a multiply-referenced table expression "materialized once
  //    and used several times" (§5): all consumers share one runtime
  //    materialization, keyed by this plan node --
  bool shared = false;

  /// Index of `binding` in `output`, or npos.
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);
  size_t FindSlot(const qgm::Quantifier* q, size_t column) const;

  /// One-line label for this node alone: LOLEPOP name plus its operands
  /// and predicates, no properties and no inputs.
  std::string HeadLine() const;

  /// Multi-line indented rendering for EXPLAIN PLAN.
  std::string ToString(int indent = 0) const;
};

/// Mutable builder shorthand.
std::shared_ptr<Plan> NewPlan(Lolepop op);

/// True if the subtree rooted at `plan` can be cloned for morsel-driven
/// parallel execution (every clone runs the same operator tree; scans
/// claim disjoint page ranges, hash joins probe a shared build table):
///   - every leaf is a plain table scan (kScan) — morselizable;
///   - interior nodes are kFilter / kProject / kHashJoin with join kind
///     regular / left-outer / exists / anti and no quantified compare;
///   - every expression (predicates, computed heads) references only
///     quantifiers scanned inside the subtree — no correlation into an
///     enclosing scope — and contains no subquery construct (EXISTS,
///     quantified compare, set predicate), whose runtimes are stateful.
/// kGroupAgg is handled above this check by the plan refiner (partition
/// exchange), which calls ExprIsParallelSafeOver for its keys and args.
bool IsParallelSafe(const Plan& plan);

/// True if `expr` is safe to evaluate concurrently over rows of `input`:
/// subquery-free and referencing only quantifiers scanned in `input`.
bool ExprIsParallelSafeOver(const qgm::Expr& expr, const Plan& input);

/// Total estimated base-table rows scanned by the subtree's kScan leaves
/// (the refiner's worth-gate for going parallel).
double ParallelScanRows(const Plan& plan);

}  // namespace starburst::optimizer

#endif  // STARBURST_OPTIMIZER_PLAN_H_
