file(REMOVE_RECURSE
  "CMakeFiles/starburst_rewrite.dir/rewrite/rule_engine.cc.o"
  "CMakeFiles/starburst_rewrite.dir/rewrite/rule_engine.cc.o.d"
  "CMakeFiles/starburst_rewrite.dir/rewrite/rules/merge_rules.cc.o"
  "CMakeFiles/starburst_rewrite.dir/rewrite/rules/merge_rules.cc.o.d"
  "CMakeFiles/starburst_rewrite.dir/rewrite/rules/misc_rules.cc.o"
  "CMakeFiles/starburst_rewrite.dir/rewrite/rules/misc_rules.cc.o.d"
  "CMakeFiles/starburst_rewrite.dir/rewrite/rules/predicate_rules.cc.o"
  "CMakeFiles/starburst_rewrite.dir/rewrite/rules/predicate_rules.cc.o.d"
  "CMakeFiles/starburst_rewrite.dir/rewrite/rules/projection_rules.cc.o"
  "CMakeFiles/starburst_rewrite.dir/rewrite/rules/projection_rules.cc.o.d"
  "CMakeFiles/starburst_rewrite.dir/rewrite/rules/recursion_rules.cc.o"
  "CMakeFiles/starburst_rewrite.dir/rewrite/rules/recursion_rules.cc.o.d"
  "libstarburst_rewrite.a"
  "libstarburst_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starburst_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
