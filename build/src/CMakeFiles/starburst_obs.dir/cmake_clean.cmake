file(REMOVE_RECURSE
  "CMakeFiles/starburst_obs.dir/obs/op_stats.cc.o"
  "CMakeFiles/starburst_obs.dir/obs/op_stats.cc.o.d"
  "CMakeFiles/starburst_obs.dir/obs/trace.cc.o"
  "CMakeFiles/starburst_obs.dir/obs/trace.cc.o.d"
  "libstarburst_obs.a"
  "libstarburst_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starburst_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
