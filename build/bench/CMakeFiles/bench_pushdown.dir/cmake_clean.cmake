file(REMOVE_RECURSE
  "CMakeFiles/bench_pushdown.dir/bench_pushdown.cc.o"
  "CMakeFiles/bench_pushdown.dir/bench_pushdown.cc.o.d"
  "bench_pushdown"
  "bench_pushdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
