#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace starburst::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double v) {
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // No atomic<double>::fetch_add until C++20; CAS-loop the sum and max.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
  double m = max_.load(std::memory_order_relaxed);
  while (v > m &&
         !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0;

  // Rank of the target observation (1-based), then walk the cumulative
  // distribution to the bucket that holds it.
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t prev = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i == bounds_.size()) return max();  // overflow bucket
    const double lo = i == 0 ? 0 : bounds_[i - 1];
    const double hi = bounds_[i];
    if (counts[i] == 0) return hi;
    const double frac =
        (rank - static_cast<double>(prev)) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
  }
  return max();
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

std::vector<double> MetricsRegistry::LatencyBoundsUs() {
  return {100,     250,     500,     1000,    2500,     5000,    10000,
          25000,   50000,   100000,  250000,  500000,   1000000, 2500000,
          5000000, 10000000};
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() * 5);
  for (const auto& [name, c] : counters_) {
    out.push_back({name, "counter", static_cast<double>(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back({name, "gauge", g->value()});
  }
  for (const auto& [name, h] : histograms_) {
    out.push_back(
        {name + "_count", "histogram", static_cast<double>(h->count())});
    out.push_back({name + "_sum", "histogram", h->sum()});
    out.push_back({name + "_p50", "histogram", h->Quantile(0.50)});
    out.push_back({name + "_p95", "histogram", h->Quantile(0.95)});
    out.push_back({name + "_p99", "histogram", h->Quantile(0.99)});
  }
  return out;
}

namespace {

std::string FormatValue(double v) {
  char buf[64];
  // Counters and bucket counts are integral; render them without a
  // fractional tail so the exposition stays diff-friendly.
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

}  // namespace

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + FormatValue(static_cast<double>(c->value())) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + FormatValue(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "# TYPE " + name + " summary\n";
    out += name + "{quantile=\"0.5\"} " + FormatValue(h->Quantile(0.50)) + "\n";
    out += name + "{quantile=\"0.95\"} " + FormatValue(h->Quantile(0.95)) + "\n";
    out += name + "{quantile=\"0.99\"} " + FormatValue(h->Quantile(0.99)) + "\n";
    out += name + "_sum " + FormatValue(h->sum()) + "\n";
    out += name + "_count " + FormatValue(static_cast<double>(h->count())) +
           "\n";
  }
  return out;
}

}  // namespace starburst::obs
