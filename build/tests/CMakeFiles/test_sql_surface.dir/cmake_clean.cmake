file(REMOVE_RECURSE
  "CMakeFiles/test_sql_surface.dir/test_sql_surface.cc.o"
  "CMakeFiles/test_sql_surface.dir/test_sql_surface.cc.o.d"
  "test_sql_surface"
  "test_sql_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sql_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
