#include <unordered_map>

#include "exec/operators.h"

namespace starburst::exec {

namespace {

/// UNION / INTERSECT / EXCEPT with and without ALL, via per-row counting.
class SetOpOp : public Operator {
 public:
  SetOpOp(OperatorPtr left, OperatorPtr right, ast::SetOpKind op, bool all)
      : left_(std::move(left)), right_(std::move(right)), op_(op), all_(all) {}

  Status OpenImpl(ExecContext* ctx) override {
    results_.clear();
    pos_ = 0;

    if (op_ == ast::SetOpKind::kUnion && all_) {
      // UNION ALL streams both sides without bookkeeping.
      STARBURST_RETURN_IF_ERROR(left_->Open(ctx));
      STARBURST_ASSIGN_OR_RETURN(results_,
                                 DrainOperator(left_.get(), ctx->batch_size(), 0, ctx));
      left_->Close();
      STARBURST_RETURN_IF_ERROR(right_->Open(ctx));
      STARBURST_ASSIGN_OR_RETURN(
          std::vector<Row> rest,
          DrainOperator(right_.get(), ctx->batch_size(), 0, ctx));
      right_->Close();
      for (Row& r : rest) results_.push_back(std::move(r));
      return Status::OK();
    }

    struct Counts {
      size_t left = 0, right = 0;
      size_t first_seen = 0;  // stable output order
    };
    std::unordered_map<Row, Counts, RowHash> counts;
    size_t order = 0;

    // Both sides drain through NextBatch so batch-native subtrees keep
    // their vectorized path; the count table absorbs rows by move.
    RowBatch batch(ctx->batch_size());
    auto drain_side = [&](Operator* side, bool is_left) -> Status {
      STARBURST_RETURN_IF_ERROR(side->Open(ctx));
      while (true) {
        Result<bool> more = side->NextBatch(&batch);
        if (!more.ok()) {
          side->Close();
          return more.status();
        }
        if (!*more) break;
        size_t n = batch.size();
        for (size_t i = 0; i < n; ++i) {
          auto [it, inserted] = counts.emplace(std::move(batch.row(i)),
                                               Counts{});
          if (inserted) it->second.first_seen = order++;
          ++(is_left ? it->second.left : it->second.right);
        }
      }
      side->Close();
      return Status::OK();
    };
    STARBURST_RETURN_IF_ERROR(drain_side(left_.get(), true));
    STARBURST_RETURN_IF_ERROR(drain_side(right_.get(), false));

    std::vector<std::pair<size_t, std::pair<Row, size_t>>> ordered;
    for (auto& [r, c] : counts) {
      size_t copies = 0;
      switch (op_) {
        case ast::SetOpKind::kUnion:
          copies = (c.left + c.right) > 0 ? 1 : 0;
          break;
        case ast::SetOpKind::kIntersect:
          copies = all_ ? std::min(c.left, c.right)
                        : (c.left > 0 && c.right > 0 ? 1 : 0);
          break;
        case ast::SetOpKind::kExcept:
          copies = all_ ? (c.left > c.right ? c.left - c.right : 0)
                        : (c.left > 0 && c.right == 0 ? 1 : 0);
          break;
      }
      if (copies > 0) ordered.push_back({c.first_seen, {r, copies}});
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [seen, rc] : ordered) {
      for (size_t i = 0; i < rc.second; ++i) results_.push_back(rc.first);
    }
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override {
    if (pos_ >= results_.size()) return false;
    *row = results_[pos_++];
    return true;
  }

  Result<bool> NextBatchImpl(RowBatch* batch) override {
    return FillBatchFromRows(results_, &pos_, batch);
  }

  void CloseImpl() override { results_.clear(); }

 private:
  OperatorPtr left_, right_;
  ast::SetOpKind op_;
  bool all_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

/// DBC table function invocation: inputs materialize, the function runs,
/// the result streams out (§2's SAMPLE(table, n) example and friends).
class TableFuncOp : public Operator {
 public:
  TableFuncOp(std::vector<OperatorPtr> inputs, const TableFunctionDef* def,
              std::vector<Value> scalar_args)
      : inputs_(std::move(inputs)), def_(def), args_(std::move(scalar_args)) {}

  Status OpenImpl(ExecContext* ctx) override {
    std::vector<std::vector<Row>> tables;
    for (OperatorPtr& input : inputs_) {
      STARBURST_RETURN_IF_ERROR(input->Open(ctx));
      STARBURST_ASSIGN_OR_RETURN(
          std::vector<Row> rows,
          DrainOperator(input.get(), ctx->batch_size(), 0, ctx));
      input->Close();
      tables.push_back(std::move(rows));
    }
    STARBURST_ASSIGN_OR_RETURN(results_, def_->eval(tables, args_));
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override {
    if (pos_ >= results_.size()) return false;
    *row = results_[pos_++];
    return true;
  }

  Result<bool> NextBatchImpl(RowBatch* batch) override {
    return FillBatchFromRows(results_, &pos_, batch);
  }

  void CloseImpl() override { results_.clear(); }

 private:
  std::vector<OperatorPtr> inputs_;
  const TableFunctionDef* def_;
  std::vector<Value> args_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

}  // namespace

OperatorPtr MakeSetOpOp(OperatorPtr left, OperatorPtr right, ast::SetOpKind op,
                        bool all) {
  return std::make_unique<SetOpOp>(std::move(left), std::move(right), op, all);
}

OperatorPtr MakeTableFuncOp(std::vector<OperatorPtr> inputs,
                            const TableFunctionDef* def,
                            std::vector<Value> scalar_args) {
  return std::make_unique<TableFuncOp>(std::move(inputs), def,
                                       std::move(scalar_args));
}

}  // namespace starburst::exec
