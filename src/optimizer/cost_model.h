#ifndef STARBURST_OPTIMIZER_COST_MODEL_H_
#define STARBURST_OPTIMIZER_COST_MODEL_H_

#include "optimizer/plan.h"

namespace starburst::optimizer {

/// Per-LOLEPOP property functions (§6): "Each LOLEPOP changes selected
/// properties of its operands ... These changes, including the appropriate
/// cost and cardinality estimates, are defined by a C function for each
/// LOLEPOP". `Finish*` takes a plan whose inputs are fully costed and
/// fills in its estimated properties.
class CostModel {
 public:
  struct Params {
    double io_page = 1.0;          // one page read
    double cpu_tuple = 0.01;       // touch one tuple
    double cpu_pred = 0.002;       // evaluate one predicate conjunct
    double cpu_hash = 0.015;       // hash-table insert or probe
    double cpu_sort = 0.012;       // n·log2(n) multiplier
    double index_level = 0.3;      // descend one B-tree level
    double rid_fetch = 0.5;        // fetch a row by rid (often cached)
    double ship_per_row = 0.05;    // simulated network transfer
    double ship_latency = 50.0;    // simulated connection setup
    double subquery_pred_factor = 4.0;  // predicates with subqueries
    double default_table_rows = 1000.0;
    double default_eq_selectivity = 0.1;    // System R heritage
    double default_range_selectivity = 1.0 / 3.0;
  };

  CostModel() = default;
  explicit CostModel(Params params) : params_(params) {}

  const Params& params() const { return params_; }

  // -- statistics-driven estimates --
  double TableRows(const TableDef* table) const;
  double TablePages(const TableDef* table) const;
  /// Selectivity of one predicate conjunct, using column NDV / min / max
  /// statistics when they can be traced to a stored column.
  double Selectivity(const qgm::Expr& pred) const;
  double CombinedSelectivity(const std::vector<const qgm::Expr*>& preds) const;
  /// Estimated group count for GROUP BY with the given keys over
  /// `input_rows` input rows.
  double GroupCount(const std::vector<qgm::ExprPtr>& keys,
                    double input_rows) const;
  /// Distinct values of a column expression; 0 when unknown.
  double ColumnNdv(const qgm::Expr& e) const;

  // -- property functions, one per LOLEPOP --
  void FinishScan(Plan* p) const;
  void FinishIndexScan(Plan* p) const;
  void FinishValues(Plan* p, size_t rows) const;
  void FinishFilter(Plan* p) const;
  void FinishProject(Plan* p) const;
  void FinishSort(Plan* p) const;
  void FinishNlJoin(Plan* p) const;
  void FinishMergeJoin(Plan* p) const;
  void FinishHashJoin(Plan* p) const;
  void FinishTemp(Plan* p) const;
  void FinishShip(Plan* p) const;
  void FinishGroupAgg(Plan* p, double groups) const;
  void FinishSetOp(Plan* p) const;
  void FinishDistinct(Plan* p) const;
  void FinishTableFunc(Plan* p) const;
  void FinishRecurse(Plan* p) const;
  void FinishIterRef(Plan* p, double working_rows) const;
  void FinishOrRoute(Plan* p) const;

 private:
  double JoinOutputCard(const Plan& p) const;
  /// Semi/anti/scalar/all joins emit per-outer-row verdicts.
  bool KindEmitsOuterOnly(JoinKind k) const;

  Params params_;
};

}  // namespace starburst::optimizer

#endif  // STARBURST_OPTIMIZER_COST_MODEL_H_
