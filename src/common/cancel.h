#ifndef STARBURST_COMMON_CANCEL_H_
#define STARBURST_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace starburst {

/// Per-statement cooperative cancellation token. One of these is owned by
/// the engine for every in-flight statement; the executor checks it at
/// batch boundaries (never per row), so a KILL or an expired deadline is
/// observed within one batch of work.
///
/// Two independent triggers share the token:
///   - Kill(): another session flips the flag (KILL <statement_id>)
///   - a deadline: SET STATEMENT_TIMEOUT_MS arms an absolute steady-clock
///     deadline; the token itself notices expiry on the next Check()
///
/// Check() is the only thing on the hot path. With nothing armed it is a
/// single relaxed atomic load plus an integer compare; reading the clock
/// happens only when a deadline exists. Once tripped, the reason latches
/// so every subsequent Check() reports the same distinct status
/// (Cancelled vs Timeout) all the way up the unwind.
class CancelToken {
 public:
  enum class Reason : int { kNone = 0, kKilled = 1, kDeadline = 2 };

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms an absolute deadline `timeout_ms` from now. 0 disarms.
  void SetTimeoutMs(std::int64_t timeout_ms) {
    if (timeout_ms <= 0) {
      deadline_us_.store(0, std::memory_order_relaxed);
      return;
    }
    deadline_us_.store(NowUs() + timeout_ms * 1000, std::memory_order_relaxed);
  }

  /// Requests cancellation (KILL path). Thread-safe; a deadline that
  /// already fired wins — the first latched reason sticks.
  void Kill() {
    int expected = static_cast<int>(Reason::kNone);
    reason_.compare_exchange_strong(expected,
                                    static_cast<int>(Reason::kKilled),
                                    std::memory_order_relaxed);
  }

  bool cancelled() const {
    return reason_.load(std::memory_order_relaxed) !=
           static_cast<int>(Reason::kNone);
  }

  Reason reason() const {
    return static_cast<Reason>(reason_.load(std::memory_order_relaxed));
  }

  /// The cooperative check. OK while neither trigger has fired; after
  /// that, a stable Cancelled or Timeout status.
  Status Check() {
    int r = reason_.load(std::memory_order_relaxed);
    if (r == static_cast<int>(Reason::kKilled)) {
      return Status::Cancelled("statement killed");
    }
    if (r == static_cast<int>(Reason::kDeadline)) {
      return Status::Timeout("statement timeout exceeded");
    }
    std::int64_t deadline = deadline_us_.load(std::memory_order_relaxed);
    if (deadline != 0 && NowUs() >= deadline) {
      int expected = static_cast<int>(Reason::kNone);
      reason_.compare_exchange_strong(expected,
                                      static_cast<int>(Reason::kDeadline),
                                      std::memory_order_relaxed);
      return Check();
    }
    return Status::OK();
  }

  /// Returns the token to its initial state (for reuse across statements
  /// in a single session; never while the statement is running).
  void Reset() {
    reason_.store(static_cast<int>(Reason::kNone), std::memory_order_relaxed);
    deadline_us_.store(0, std::memory_order_relaxed);
  }

  static std::int64_t NowUs() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  std::atomic<int> reason_{static_cast<int>(Reason::kNone)};
  std::atomic<std::int64_t> deadline_us_{0};
};

}  // namespace starburst

#endif  // STARBURST_COMMON_CANCEL_H_
