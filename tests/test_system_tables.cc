#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"

namespace starburst {
namespace {

/// The sys.* virtual tables: plain SQL over engine observability state,
/// served by the read-only SYSTEM storage manager.
class SystemTablesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(Exec("CREATE TABLE t (a INT, b STRING)"));
    ASSERT_TRUE(Exec("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')"));
  }

  bool Exec(const std::string& sql) {
    Result<ResultSet> r = db_.Execute(sql);
    if (!r.ok()) {
      last_error_ = r.status().ToString();
      return false;
    }
    return true;
  }

  std::vector<Row> MustQuery(const std::string& sql) {
    Result<std::vector<Row>> r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    if (!r.ok()) return {};
    return r.TakeValue();
  }

  double MetricValue(const std::string& name) {
    // A unique literal per probe keeps the probe itself out of the plan
    // cache, so probing never perturbs the counters being read.
    std::vector<Row> rows = MustQuery(
        "SELECT value, " + std::to_string(probe_seq_++) +
        " FROM sys.metrics WHERE name = '" + name + "'");
    if (rows.size() != 1) {
      ADD_FAILURE() << "metric '" << name << "' returned " << rows.size()
                    << " rows";
      return -1;
    }
    return rows[0][0].double_value();
  }

  Database db_;
  std::string last_error_;
  int probe_seq_ = 0;
};

TEST_F(SystemTablesTest, MetricsScansLikePlainTable) {
  std::vector<Row> rows =
      MustQuery("SELECT name, kind, value FROM sys.metrics ORDER BY name");
  ASSERT_GT(rows.size(), 10u);
  for (const Row& r : rows) {
    EXPECT_FALSE(r[0].string_value().empty());
    const std::string& kind = r[1].string_value();
    EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
        << kind;
  }
}

TEST_F(SystemTablesTest, MetricsFilterWithLike) {
  std::vector<Row> rows = MustQuery(
      "SELECT name FROM sys.metrics WHERE name LIKE 'plan_cache%' "
      "ORDER BY name");
  ASSERT_GE(rows.size(), 5u);
  for (const Row& r : rows) {
    EXPECT_EQ(r[0].string_value().rfind("plan_cache", 0), 0u);
  }
}

TEST_F(SystemTablesTest, CountersAdvanceAcrossQueries) {
  // Prime the cache, then re-run the identical statement: the second run
  // must surface as a plan-cache hit in sys.metrics.
  ASSERT_TRUE(Exec("SELECT a FROM t WHERE a > 1"));
  double hits_before = MetricValue("plan_cache_hits_total");
  double queries_before = MetricValue("queries_total");
  ASSERT_TRUE(Exec("SELECT a FROM t WHERE a > 1"));
  EXPECT_EQ(MetricValue("plan_cache_hits_total"), hits_before + 1);
  // The MetricValue probes themselves run queries, so queries_total moved
  // by at least the re-run plus the probes.
  EXPECT_GE(MetricValue("queries_total"), queries_before + 2);
}

TEST_F(SystemTablesTest, QueryLogRecordsStatements) {
  ASSERT_TRUE(Exec("SELECT a FROM t"));
  std::vector<Row> rows = MustQuery(
      "SELECT sql, status, rows FROM sys.query_log "
      "WHERE sql = 'SELECT A FROM T'");
  ASSERT_GE(rows.size(), 1u);
  EXPECT_EQ(rows[0][1].string_value(), "ok");
  EXPECT_EQ(rows[0][2], Value::Int(3));
}

TEST_F(SystemTablesTest, QueryLogRecordsErrors) {
  EXPECT_FALSE(Exec("SELECT nope FROM t"));
  std::vector<Row> rows = MustQuery(
      "SELECT error FROM sys.query_log WHERE status = 'error'");
  ASSERT_GE(rows.size(), 1u);
  EXPECT_FALSE(rows[0][0].is_null());
}

TEST_F(SystemTablesTest, QueryLogFlagsPlanCacheHits) {
  ASSERT_TRUE(Exec("SELECT b FROM t WHERE a = 2"));
  ASSERT_TRUE(Exec("SELECT b FROM t WHERE a = 2"));
  std::vector<Row> rows = MustQuery(
      "SELECT plan_cache_hit FROM sys.query_log "
      "WHERE sql = 'SELECT B FROM T WHERE A = 2' ORDER BY id");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int(0));
  EXPECT_EQ(rows[1][0], Value::Int(1));
}

TEST_F(SystemTablesTest, SlowQueryThresholdFlagsAndTraces) {
  db_.tracer().set_enabled(true);
  // 1us threshold: everything qualifies as slow.
  ASSERT_TRUE(Exec("SET SLOW_QUERY_US = 1"));
  ASSERT_TRUE(Exec("SELECT a FROM t"));
  std::vector<Row> rows = MustQuery(
      "SELECT slow FROM sys.query_log WHERE sql = 'SELECT A FROM T'");
  ASSERT_GE(rows.size(), 1u);
  EXPECT_EQ(rows.back()[0], Value::Int(1));
  EXPECT_GE(MetricValue("slow_queries_total"), 1.0);

  bool saw_instant = false;
  for (const obs::TraceEvent& e : db_.tracer().Snapshot()) {
    if (e.name == "slow query") saw_instant = true;
  }
  EXPECT_TRUE(saw_instant);

  // DEFAULT switches flagging back off.
  ASSERT_TRUE(Exec("SET SLOW_QUERY_US = DEFAULT"));
  EXPECT_EQ(db_.slow_query_us(), 0u);
}

TEST_F(SystemTablesTest, PlanCacheTableExposesEntries) {
  ASSERT_TRUE(Exec("SELECT a FROM t WHERE a < 3"));
  std::vector<Row> rows = MustQuery(
      "SELECT position, sql, fresh FROM sys.plan_cache "
      "WHERE sql = 'SELECT A FROM T WHERE A < 3'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][2], Value::Int(1));  // fresh against current catalog
}

TEST_F(SystemTablesTest, SysTablesJoinAndAggregate) {
  ASSERT_TRUE(Exec("SELECT a FROM t"));
  // Aggregate over a system table.
  std::vector<Row> count =
      MustQuery("SELECT COUNT(*), kind FROM sys.metrics GROUP BY kind");
  ASSERT_GE(count.size(), 2u);

  // Join the two observability relations against each other.
  std::vector<Row> joined = MustQuery(
      "SELECT q.id, m.value FROM sys.query_log q, sys.metrics m "
      "WHERE m.name = 'queries_total' AND q.status = 'ok'");
  ASSERT_GE(joined.size(), 1u);

  // Join a system table with a user table.
  std::vector<Row> mixed = MustQuery(
      "SELECT t.a FROM t, sys.metrics m "
      "WHERE m.name = 'queries_total' ORDER BY t.a");
  ASSERT_EQ(mixed.size(), 3u);
}

TEST_F(SystemTablesTest, ScansWorkUnderParallelism) {
  ASSERT_TRUE(Exec("SET PARALLELISM = 4"));
  ASSERT_TRUE(Exec("SET PARALLEL_MIN_ROWS = 0"));
  std::vector<Row> serial_vs_parallel =
      MustQuery("SELECT name FROM sys.metrics ORDER BY name");
  // One page -> one morsel materializes the table; every row exactly once.
  std::vector<Row> again =
      MustQuery("SELECT name FROM sys.metrics ORDER BY name");
  ASSERT_EQ(serial_vs_parallel.size(), again.size());
  for (size_t i = 1; i < again.size(); ++i) {
    EXPECT_NE(again[i - 1][0].string_value(), again[i][0].string_value());
  }
  ASSERT_TRUE(Exec("SET PARALLELISM = 1"));
}

TEST_F(SystemTablesTest, DmlAndDdlAgainstSysTablesFailCleanly) {
  EXPECT_FALSE(Exec("INSERT INTO sys.metrics VALUES ('x', 'counter', 1.0)"));
  EXPECT_NE(last_error_.find("read-only"), std::string::npos) << last_error_;

  EXPECT_FALSE(Exec("UPDATE sys.query_log SET status = 'ok'"));
  EXPECT_NE(last_error_.find("read-only"), std::string::npos) << last_error_;

  EXPECT_FALSE(Exec("DELETE FROM sys.query_log"));
  EXPECT_NE(last_error_.find("read-only"), std::string::npos) << last_error_;

  EXPECT_FALSE(Exec("DROP TABLE sys.metrics"));
  EXPECT_NE(last_error_.find("read-only"), std::string::npos) << last_error_;

  EXPECT_FALSE(Exec("CREATE TABLE sys.mine (a INT)"));
  EXPECT_NE(last_error_.find("read-only"), std::string::npos) << last_error_;

  EXPECT_FALSE(Exec("CREATE INDEX idx ON sys.metrics (name)"));
  EXPECT_NE(last_error_.find("read-only"), std::string::npos) << last_error_;

  EXPECT_FALSE(Exec("CREATE VIEW sys.v AS SELECT 1"));
  EXPECT_NE(last_error_.find("read-only"), std::string::npos) << last_error_;

  // Users cannot claim the SYSTEM manager for their own tables either.
  EXPECT_FALSE(Exec("CREATE TABLE mine (a INT) USING SYSTEM"));
  EXPECT_NE(last_error_.find("reserved"), std::string::npos) << last_error_;

  // The guards fire before any mutation: the tables still scan.
  EXPECT_GE(MustQuery("SELECT name FROM sys.metrics").size(), 10u);
}

TEST_F(SystemTablesTest, AnalyzeAllSkipsSystemTables) {
  ASSERT_TRUE(Exec("ANALYZE"));  // must not fail over sys.* tables
}

TEST_F(SystemTablesTest, SpillAndMemoryColumnsPopulate) {
  // Force an external sort: tiny sort budget over enough rows to spill.
  ASSERT_TRUE(Exec("CREATE TABLE big (v INT)"));
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(Exec("INSERT INTO big VALUES (" + std::to_string(997 - i) +
                     "), (" + std::to_string(i) + ")"));
  }
  ASSERT_TRUE(Exec("SET SORT_MEMORY = 256"));
  ASSERT_TRUE(Exec("SELECT v FROM big ORDER BY v"));
  ASSERT_TRUE(Exec("SET SORT_MEMORY = DEFAULT"));

  std::vector<Row> rows = MustQuery(
      "SELECT spill_bytes, peak_memory_bytes FROM sys.query_log "
      "WHERE sql = 'SELECT V FROM BIG ORDER BY V'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0][0].int_value(), 0);
  EXPECT_GT(rows[0][1].int_value(), 0);
  EXPECT_GE(MetricValue("spill_bytes_written_total"),
            static_cast<double>(rows[0][0].int_value()));
}

TEST_F(SystemTablesTest, TraceBufferKnobResizesRing) {
  ASSERT_TRUE(Exec("SET TRACE_BUFFER = 16"));
  EXPECT_EQ(db_.tracer().capacity(), 16u);
  ASSERT_TRUE(Exec("SET TRACE_BUFFER = DEFAULT"));
  EXPECT_EQ(db_.tracer().capacity(), obs::Tracer::kDefaultCapacity);
}

TEST_F(SystemTablesTest, MetricsDisabledPathSkipsBookkeeping) {
  ASSERT_TRUE(Exec("SELECT a FROM t"));
  uint64_t logged_before = db_.query_log().total();
  db_.set_metrics_enabled(false);
  ASSERT_TRUE(Exec("SELECT a FROM t WHERE a = 1"));
  EXPECT_EQ(db_.query_log().total(), logged_before);
  db_.set_metrics_enabled(true);
  ASSERT_TRUE(Exec("SELECT a FROM t WHERE a = 2"));
  EXPECT_EQ(db_.query_log().total(), logged_before + 1);
}

TEST_F(SystemTablesTest, RenderTextServesEngineMetrics) {
  ASSERT_TRUE(Exec("SELECT a FROM t"));
  db_.RefreshMetricsMirrors();
  std::string text = db_.metrics_registry().RenderText();
  EXPECT_NE(text.find("# TYPE queries_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE query_latency_us summary"), std::string::npos);
}

}  // namespace
}  // namespace starburst
