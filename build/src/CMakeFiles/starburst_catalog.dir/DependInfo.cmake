
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/starburst_catalog.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/starburst_catalog.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/function_registry.cc" "src/CMakeFiles/starburst_catalog.dir/catalog/function_registry.cc.o" "gcc" "src/CMakeFiles/starburst_catalog.dir/catalog/function_registry.cc.o.d"
  "/root/repo/src/catalog/schema.cc" "src/CMakeFiles/starburst_catalog.dir/catalog/schema.cc.o" "gcc" "src/CMakeFiles/starburst_catalog.dir/catalog/schema.cc.o.d"
  "/root/repo/src/catalog/statistics.cc" "src/CMakeFiles/starburst_catalog.dir/catalog/statistics.cc.o" "gcc" "src/CMakeFiles/starburst_catalog.dir/catalog/statistics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/starburst_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
