#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/memory_tracker.h"
#include "exec/operators.h"
#include "storage/spill_file.h"

namespace starburst::exec {

namespace {

struct ValueTotalLess {
  bool operator()(const Value& a, const Value& b) const {
    return a.CompareTotal(b) < 0;
  }
};

/// Grouping equality must match the old ordered map's RowTotalLess
/// semantics (numerics inter-compare, NULLs group together). Value::Hash
/// already hashes integral doubles like the equal int, so pairing it with
/// CompareTotal equality is a consistent unordered_map configuration.
struct RowTotalEq {
  bool operator()(const Row& a, const Row& b) const {
    return a.CompareTotal(b) == 0;
  }
};

/// Depth-salted partition hash (splitmix64 finalizer) over the *group
/// key*, so every row of one group lands in one partition and an
/// overflowing partition redistributes at the next depth.
size_t AggPartitionHash(const Row& key, int depth) {
  uint64_t x = key.Hash() +
               0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(depth + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x);
}

/// Vectorized hash aggregation with grace-partitioned overflow. The
/// probe/insert loop runs per input batch (correlation params folded once
/// per batch, the key row built into a reused scratch) against an
/// unordered map. Past the memory budget the table freezes: resident
/// groups keep absorbing their rows, rows for *new* keys spill whole to
/// hash partitions on temp storage. Frozen-set keys and partition keys
/// are disjoint by construction — and partitions are mutually disjoint —
/// so each partition re-aggregates independently after the input drains,
/// with no partial-state merge; a partition that itself overflows
/// re-partitions at depth+1 under a re-salted hash.
///
/// Output comes in waves (the resident table, then each partition), every
/// wave sorted by group key — so the unspilled path emits exactly the
/// order the previous std::map-based operator did. With zero group keys
/// there is exactly one (resident, never spilled) group — even over empty
/// input (SQL scalar-aggregate semantics).
class GroupAggOp : public Operator {
 public:
  GroupAggOp(OperatorPtr input, std::vector<CompiledExprPtr> group_keys,
             std::vector<AggSpec> aggregates, std::vector<GroupHeadItem> head,
             uint64_t budget)
      : input_(std::move(input)), group_keys_(std::move(group_keys)),
        aggregates_(std::move(aggregates)), head_(std::move(head)),
        budget_(budget) {}

  static constexpr size_t kPartitions = 16;
  /// Each aggregation level admits at least one new group before
  /// freezing, so depth only grows on pathological budgets; past the cap
  /// we stop governing rather than thrash.
  static constexpr int kMaxDepth = 32;
  /// Rough per-group cost beyond the key payload: table node, state
  /// vectors, one aggregate-state object per spec.
  static constexpr uint64_t kGroupOverhead = 64;
  static constexpr uint64_t kPerAggOverhead = 48;

  Status OpenImpl(ExecContext* ctx) override {
    Status st = OpenAgg(ctx);
    // A failed Open must not strand grace-partition files: cached/
    // prepared plans keep the operator tree alive long after the query,
    // so cleanup cannot be left to the destructor.
    if (!st.ok()) DropState();
    return st;
  }

  Status OpenAgg(ExecContext* ctx) {
    ctx_ = ctx;
    DropState();
    tracker_.Configure(budget_, ctx->query_memory());
    batch_size_ = ctx->batch_size();
    if (group_keys_.empty()) {
      groups_.emplace(Row(), NewGroupState());
    }
    STARBURST_RETURN_IF_ERROR(input_->Open(ctx));
    Status built = BuildFromInput();
    input_->Close();
    if (!built.ok()) return built;
    STARBURST_RETURN_IF_ERROR(QueuePartitions(&partitions_, 1));
    StatPeakMemory(tracker_.peak());
    return FinalizeGroups();
  }

  Result<bool> NextImpl(Row* row) override {
    while (true) {
      if (pos_ < results_.size()) {
        *row = results_[pos_++];
        ++ctx_->stats().rows_emitted;
        return true;
      }
      if (pending_.empty()) return false;
      STARBURST_RETURN_IF_ERROR(ProcessNextPartition());
    }
  }

  Result<bool> NextBatchImpl(RowBatch* batch) override {
    while (true) {
      size_t before = pos_;
      if (FillBatchFromRows(results_, &pos_, batch)) {
        ctx_->stats().rows_emitted += pos_ - before;
        return true;
      }
      if (pending_.empty()) return false;
      STARBURST_RETURN_IF_ERROR(ProcessNextPartition());
    }
  }

  void CloseImpl() override { DropState(); }

 private:
  struct GroupState {
    std::vector<std::unique_ptr<AggregateState>> states;
    // DISTINCT aggregates buffer their input set first.
    std::vector<std::set<Value, ValueTotalLess>> distinct_inputs;
  };
  using GroupMap = std::unordered_map<Row, GroupState, RowHash, RowTotalEq>;
  struct Pending {
    std::unique_ptr<SpillFile> file;
    int depth = 0;
  };
  using Parts = std::array<std::unique_ptr<SpillFile>, kPartitions>;

  void DropState() {
    groups_.clear();
    results_.clear();
    pos_ = 0;
    for (auto& p : partitions_) p.reset();
    pending_.clear();
    frozen_ = false;
    tracker_.Reset();
  }

  GroupState NewGroupState() {
    GroupState state;
    for (const AggSpec& spec : aggregates_) {
      state.states.push_back(spec.def->make_state());
      state.distinct_inputs.emplace_back();
    }
    return state;
  }

  /// Evaluates the group-key exprs for one input row into the reused
  /// scratch key.
  Status BuildKey(const Row& in, Row* key) {
    std::vector<Value>& vals = key->values();
    vals.clear();
    vals.reserve(group_keys_.size());
    for (const CompiledExprPtr& k : group_keys_) {
      STARBURST_ASSIGN_OR_RETURN(Value v, k->Eval(in, ctx_));
      vals.push_back(std::move(v));
    }
    return Status::OK();
  }

  Status AccumulateRow(const Row& in, GroupState* group) {
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      Value v = Value::Int(1);  // COUNT(*) counts every row
      if (aggregates_[a].arg != nullptr) {
        STARBURST_ASSIGN_OR_RETURN(v, aggregates_[a].arg->Eval(in, ctx_));
      }
      if (aggregates_[a].distinct) {
        if (!v.is_null()) {
          uint64_t bytes = v.MemoryBytes();
          if (group->distinct_inputs[a].insert(std::move(v)).second) {
            tracker_.Reserve(bytes);
          }
        }
      } else {
        STARBURST_RETURN_IF_ERROR(group->states[a]->Accumulate(v));
      }
    }
    return Status::OK();
  }

  /// The batched build loop: fold correlation params once per batch, then
  /// probe/insert each row's key against the group table.
  Status BuildFromInput() {
    RowBatch batch(batch_size_);
    while (true) {
      STARBURST_RETURN_IF_ERROR(ctx_->CheckCancel());
      STARBURST_ASSIGN_OR_RETURN(bool more, input_->NextBatch(&batch));
      if (!more) return Status::OK();
      ScopedParamFold fold;
      for (const CompiledExprPtr& k : group_keys_) {
        STARBURST_RETURN_IF_ERROR(fold.Add(k.get(), ctx_));
      }
      for (const AggSpec& spec : aggregates_) {
        if (spec.arg != nullptr) {
          STARBURST_RETURN_IF_ERROR(fold.Add(spec.arg.get(), ctx_));
        }
      }
      size_t n = batch.size();
      for (size_t bi = 0; bi < n; ++bi) {
        const Row& in = batch.row(bi);
        STARBURST_RETURN_IF_ERROR(BuildKey(in, &key_scratch_));
        auto it = groups_.find(key_scratch_);
        if (it == groups_.end()) {
          if (frozen_) {
            STARBURST_RETURN_IF_ERROR(
                SpillInputRow(in, key_scratch_, 0, &partitions_));
            continue;
          }
          tracker_.Reserve(key_scratch_.MemoryBytes() + kGroupOverhead +
                           aggregates_.size() * kPerAggOverhead);
          it = groups_.emplace(std::move(key_scratch_), NewGroupState()).first;
          if (tracker_.over_budget()) frozen_ = true;
        }
        STARBURST_RETURN_IF_ERROR(AccumulateRow(in, &it->second));
      }
    }
  }

  Status SpillInputRow(const Row& in, const Row& key, int depth,
                       Parts* parts) {
    auto& slot = (*parts)[AggPartitionHash(key, depth) % kPartitions];
    if (slot == nullptr) {
      STARBURST_ASSIGN_OR_RETURN(slot, SpillFile::Create());
    }
    return slot->AppendRow(in);
  }

  Status QueuePartitions(Parts* parts, int depth) {
    for (auto& p : *parts) {
      if (p == nullptr) continue;
      STARBURST_RETURN_IF_ERROR(p->Finish());
      StatSpill(1, p->bytes_written());
      pending_.push_back(Pending{std::move(p), depth});
    }
    return Status::OK();
  }

  /// Drains the group table into the emission buffer, sorted by group key
  /// (the order the std::map-based operator produced), and releases its
  /// memory reservation.
  Status FinalizeGroups() {
    std::vector<std::pair<Row, GroupState>> items;
    items.reserve(groups_.size());
    while (!groups_.empty()) {
      auto node = groups_.extract(groups_.begin());
      items.emplace_back(std::move(node.key()), std::move(node.mapped()));
    }
    std::sort(items.begin(), items.end(),
              [](const std::pair<Row, GroupState>& a,
                 const std::pair<Row, GroupState>& b) {
                return a.first.CompareTotal(b.first) < 0;
              });
    results_.clear();
    pos_ = 0;
    results_.reserve(items.size());
    for (auto& [key, group] : items) {
      std::vector<Value> agg_values;
      for (size_t a = 0; a < aggregates_.size(); ++a) {
        if (aggregates_[a].distinct) {
          for (const Value& v : group.distinct_inputs[a]) {
            STARBURST_RETURN_IF_ERROR(group.states[a]->Accumulate(v));
          }
        }
        STARBURST_ASSIGN_OR_RETURN(Value v, group.states[a]->Finalize());
        agg_values.push_back(std::move(v));
      }
      std::vector<Value> out;
      out.reserve(head_.size());
      for (const GroupHeadItem& item : head_) {
        if (item.source == GroupHeadItem::Source::kKey) {
          out.push_back(key[item.index]);
        } else {
          out.push_back(agg_values[item.index]);
        }
      }
      results_.push_back(Row(std::move(out)));
    }
    tracker_.Reset();
    return Status::OK();
  }

  /// Re-aggregates one spilled partition into the next emission wave.
  /// Correlation params cannot change within one Open, so re-folding and
  /// re-evaluating the key/arg exprs over spilled rows is sound.
  Status ProcessNextPartition() {
    STARBURST_RETURN_IF_ERROR(ctx_->CheckCancel());
    Pending part = std::move(pending_.front());
    pending_.pop_front();
    STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<SpillFile::Reader> reader,
                               part.file->OpenReader());
    ScopedParamFold fold;
    for (const CompiledExprPtr& k : group_keys_) {
      STARBURST_RETURN_IF_ERROR(fold.Add(k.get(), ctx_));
    }
    for (const AggSpec& spec : aggregates_) {
      if (spec.arg != nullptr) {
        STARBURST_RETURN_IF_ERROR(fold.Add(spec.arg.get(), ctx_));
      }
    }
    Parts subs;
    bool frozen = false;
    Row in;
    while (true) {
      STARBURST_ASSIGN_OR_RETURN(bool more, reader->NextRow(&in));
      if (!more) break;
      STARBURST_RETURN_IF_ERROR(BuildKey(in, &key_scratch_));
      auto it = groups_.find(key_scratch_);
      if (it == groups_.end()) {
        if (frozen) {
          STARBURST_RETURN_IF_ERROR(
              SpillInputRow(in, key_scratch_, part.depth, &subs));
          continue;
        }
        tracker_.Reserve(key_scratch_.MemoryBytes() + kGroupOverhead +
                         aggregates_.size() * kPerAggOverhead);
        it = groups_.emplace(std::move(key_scratch_), NewGroupState()).first;
        if (tracker_.over_budget() && part.depth < kMaxDepth) frozen = true;
      }
      STARBURST_RETURN_IF_ERROR(AccumulateRow(in, &it->second));
    }
    STARBURST_RETURN_IF_ERROR(QueuePartitions(&subs, part.depth + 1));
    StatPeakMemory(tracker_.peak());
    return FinalizeGroups();
  }

  OperatorPtr input_;
  std::vector<CompiledExprPtr> group_keys_;
  std::vector<AggSpec> aggregates_;
  std::vector<GroupHeadItem> head_;
  uint64_t budget_;
  MemoryTracker tracker_;
  size_t batch_size_ = RowBatch::kDefaultCapacity;
  ExecContext* ctx_ = nullptr;
  GroupMap groups_;
  Row key_scratch_;  // reused per-row key build
  bool frozen_ = false;
  Parts partitions_;
  std::deque<Pending> pending_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

}  // namespace

OperatorPtr MakeGroupAggOp(OperatorPtr input,
                           std::vector<CompiledExprPtr> group_keys,
                           std::vector<AggSpec> aggregates,
                           std::vector<GroupHeadItem> head,
                           uint64_t memory_budget_bytes) {
  return std::make_unique<GroupAggOp>(std::move(input), std::move(group_keys),
                                      std::move(aggregates), std::move(head),
                                      memory_budget_bytes);
}

}  // namespace starburst::exec
