#ifndef STARBURST_ENGINE_DATABASE_H_
#define STARBURST_ENGINE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/cancel.h"
#include "engine/admission.h"
#include "engine/plan_cache.h"
#include "engine/statement_registry.h"
#include "engine/result_set.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "obs/op_stats.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"
#include "rewrite/rule_engine.h"
#include "storage/storage_engine.h"
#include "storage/system_storage.h"

namespace starburst {

/// Per-query timing and engine statistics — Figure 1's compile-time and
/// run-time phases, individually measurable.
struct QueryMetrics {
  double parse_us = 0;
  double bind_us = 0;      // semantic analysis into QGM
  double rewrite_us = 0;   // query rewrite
  double optimize_us = 0;  // plan optimization
  double refine_us = 0;    // plan refinement
  double execute_us = 0;   // QES interpretation
  rewrite::RuleEngine::Stats rewrite_stats;
  optimizer::Optimizer::Stats optimizer_stats;
  exec::ExecStats exec_stats;
  double plan_cost = 0;
  double plan_cardinality = 0;
  /// Per-operator runtime stats of the last executed plan; set when
  /// SessionOptions::collect_op_stats is on or EXPLAIN ANALYZE ran.
  std::shared_ptr<const obs::PlanStatsTree> op_stats;
  /// Buffer pool activity during the execute phase (counter deltas).
  BufferPoolStats buffer_pool;
  /// Attachment node visits during the execute phase (counter delta).
  uint64_t index_node_visits = 0;
  /// True when this statement reused a cached/prepared plan, skipping
  /// parse/bind/rewrite/optimize/refine (those timings stay ~0).
  bool plan_cache_hit = false;
  /// Session-cumulative plan-cache counters at statement end.
  PlanCache::Stats plan_cache;
  /// Entries resident in the plan cache at statement end.
  uint64_t plan_cache_entries = 0;
  /// Bytes this statement spilled to disk (external sort runs, grace
  /// partitions) and the query-memory high-water mark it reached.
  uint64_t spill_bytes = 0;
  uint64_t peak_memory_bytes = 0;
};

/// The embedded Starburst engine: Corona's language-processing pipeline
/// (parse → QGM → rewrite → optimize → refine → execute) over the Core
/// storage substrate, with every DBC extension point exposed:
///   * catalog().functions() — scalar / aggregate / set-predicate / table
///     functions;
///   * TypeRegistry::Global() — externally-defined column types;
///   * storage().storage_managers() / storage().attachment_kinds() — new
///     storage methods and access-method attachments;
///   * rule_engine() — query-rewrite rules;
///   * RegisterStar() — optimizer strategy alternative rules.
class Database {
 public:
  struct SessionOptions {
    bool rewrite_enabled = true;  // Figure 1: "could be bypassed"
    rewrite::RuleEngine::Options rewrite;
    optimizer::Optimizer::Options optimizer;
    exec::Executor::Options exec;
    /// Collect per-operator runtime stats for every query (EXPLAIN
    /// ANALYZE collects regardless). Costs two clock reads per operator
    /// invocation.
    bool collect_op_stats = false;
  };

  explicit Database(size_t buffer_pool_pages = 4096);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Executes one statement (query, DDL, or DML). SELECTs are
  /// transparently cached: re-executing the same text under the same
  /// session knobs reuses the compiled plan (see plan_cache()).
  Result<ResultSet> Execute(const std::string& sql);
  /// Executes a ';'-separated script, returning the last result.
  Result<ResultSet> ExecuteScript(const std::string& sql);
  /// Convenience: Execute + rows (errors if the statement returns none).
  Result<std::vector<Row>> Query(const std::string& sql);

  /// Compiles a SELECT (which may contain `?` positional parameters)
  /// down to a re-executable plan. The handle stays valid until the
  /// Database dies, even if the plan cache evicts it.
  using PreparedHandle = PreparedStatementPtr;
  Result<PreparedHandle> Prepare(const std::string& sql);
  /// Runs a prepared statement with one value per `?` marker (left to
  /// right). Stale handles (DDL/ANALYZE touched a referenced object) are
  /// transparently recompiled first.
  Result<ResultSet> ExecutePrepared(const PreparedHandle& handle,
                                    const std::vector<Value>& params = {});

  /// Recomputes optimizer statistics (row counts, per-column NDV/min/max)
  /// for one table or all tables.
  Status Analyze(const std::string& table_name);
  Status AnalyzeAll();

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  StorageEngine& storage() { return storage_; }
  rewrite::RuleEngine& rule_engine() { return rule_engine_; }
  SessionOptions& options() { return options_; }
  PlanCache& plan_cache() { return plan_cache_; }
  const PlanCache& plan_cache() const { return plan_cache_; }

  /// Adds a DBC STAR to every future query's optimizer.
  Status RegisterStar(optimizer::Star star);

  /// Metrics of the most recent statement. Not synchronized with
  /// concurrent Execute calls — read it from a quiesced session.
  const QueryMetrics& last_metrics() const { return last_metrics_; }

  /// Live + recently finished statements — the registry behind
  /// `sys.statements` and the resolver for `KILL <id>`.
  StatementRegistry& statement_registry() { return statements_; }
  const StatementRegistry& statement_registry() const { return statements_; }

  /// Global memory-admission ledger (`SET ADMISSION_MEMORY`).
  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }

  /// STATEMENT_TIMEOUT_MS deadline applied to every new statement;
  /// 0 (the default) disables the deadline.
  int64_t statement_timeout_ms() const { return statement_timeout_ms_; }

  /// The session's span recorder. Disabled by default; once enabled,
  /// every statement records Figure-1 phase spans and rewrite-rule
  /// firing instants, exportable as Chrome trace JSON.
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }

  /// Engine-wide named counters/gauges/histograms — the registry behind
  /// `sys.metrics` and RenderText (Prometheus-style exposition).
  obs::MetricsRegistry& metrics_registry() { return metrics_registry_; }
  const obs::MetricsRegistry& metrics_registry() const {
    return metrics_registry_;
  }

  /// Ring-buffered per-statement history — the relation behind
  /// `sys.query_log`.
  obs::QueryLog& query_log() { return query_log_; }
  const obs::QueryLog& query_log() const { return query_log_; }

  /// Statement bookkeeping switch (query log + registry updates). On by
  /// default; benches flip it off to measure the disabled-path cost.
  bool metrics_enabled() const { return metrics_enabled_; }
  void set_metrics_enabled(bool on) { metrics_enabled_ = on; }

  /// SLOW_QUERY_US threshold; 0 (the default) disables slow-query
  /// flagging.
  uint64_t slow_query_us() const { return slow_query_us_; }

  /// Re-mirrors layer counters (plan cache, buffer pool, spill files,
  /// scheduler) into the registry so an externally taken snapshot is
  /// current. `sys.metrics` scans and \metrics call this implicitly.
  void RefreshMetricsMirrors();

 private:
  /// Everything a statement accumulates while it runs. Thread-local so
  /// concurrent sessions sharing one Database (the governance stress
  /// tests, a future server front end) never race on phase timings or
  /// the cancel token; FinishStatement copies the metrics into
  /// `last_metrics_` for the single-session accessor.
  struct StatementState {
    QueryMetrics metrics;
    CancelToken cancel;
    int64_t id = 0;          // registry id; 0 = not registered (Prepare)
    int64_t start_ts_us = 0; // wall-clock statement start
    int parallelism = 1;     // what the executed plan was refined with
    bool admission_rejected = false;  // fail-fast path, for "rejected"
  };
  static StatementState& stmt_state();

  /// Statement prologue: resets the thread's statement state, assigns
  /// the registry id, arms the deadline, and registers the statement as
  /// live (so KILL can find it from another thread).
  void BeginStatement(const std::string& sql);
  /// Execute minus the statement bookkeeping wrapper.
  Result<ResultSet> ExecuteInternal(const std::string& sql);
  /// Statement epilogue: appends the query-log entry, advances the
  /// engine counters, observes the latency histogram, flags/traces slow
  /// statements, and re-mirrors layer counters. No-op when metrics are
  /// disabled.
  void FinishStatement(const std::string& sql, const Status& status,
                       uint64_t rows, double total_us);
  /// Registers the SYSTEM storage manager, its row providers, and the
  /// sys.* table definitions (constructor-time).
  void RegisterSystemTables();
  std::vector<Row> MetricsRows();
  std::vector<Row> QueryLogRows() const;
  std::vector<Row> PlanCacheRows() const;
  std::vector<Row> StatementRows() const;
  /// Clear error for any DDL/DML aimed at the reserved sys schema.
  Status RejectSystemTarget(const std::string& name, const char* verb) const;

  /// `cache_key` is non-empty only for single statements arriving through
  /// Execute with caching enabled; a compiled SELECT is inserted under it.
  Result<ResultSet> ExecuteStatement(const ast::Statement& stmt,
                                     const std::string& cache_key = {});
  Result<ResultSet> RunSelect(const ast::Query& query,
                              const std::string& cache_key = {});
  Result<ResultSet> RunDropTable(const std::string& name);
  Result<ResultSet> RunDropIndex(const std::string& name);
  Result<ResultSet> RunDropView(const std::string& name);
  Result<ResultSet> RunExplain(const ast::ExplainStatement& stmt);
  /// EXPLAIN ANALYZE / EXPLAIN VERBOSE: the multi-section report
  /// (QGM, rule firings, annotated plan, execution summary).
  Result<ResultSet> RunExplainReport(const ast::ExplainStatement& stmt);
  Result<ResultSet> RunCreateTable(const ast::CreateTableStatement& stmt);
  Result<ResultSet> RunCreateIndex(const ast::CreateIndexStatement& stmt);
  Result<ResultSet> RunCreateView(const ast::CreateViewStatement& stmt);
  Result<ResultSet> RunSet(const ast::SetStatement& stmt);
  Result<ResultSet> RunKill(const ast::KillStatement& stmt);
  Result<ResultSet> RunInsert(const ast::InsertStatement& stmt);
  Result<ResultSet> RunDelete(const ast::DeleteStatement& stmt);
  Result<ResultSet> RunUpdate(const ast::UpdateStatement& stmt);

  /// The full compile+execute pipeline for a bound query.
  struct QueryOutput {
    std::vector<std::string> column_names;
    std::vector<Row> rows;
  };
  /// Extra hooks EXPLAIN [ANALYZE|VERBOSE] threads through the pipeline:
  /// capture the intermediate texts, force stats collection, and
  /// optionally stop before execution.
  struct PipelineCapture {
    bool want_texts = false;
    bool collect_stats = false;
    bool execute = true;
    std::string qgm_text;   // QGM after rewrite
    std::string plan_text;  // chosen plan with estimates
  };
  Result<QueryOutput> RunQueryPipeline(const ast::Query& query,
                                       PipelineCapture* capture = nullptr);
  /// Figure 1's compile half (bind → rewrite → optimize → refine) into a
  /// re-executable artifact, filling the compile-phase metrics.
  Result<PreparedStatementPtr> CompileSelect(const ast::Query& query,
                                             PipelineCapture* capture);
  /// Figure 1's run half: re-opens the compiled operator tree under a
  /// fresh ExecContext (binding `params` when given) and drains it.
  Result<QueryOutput> ExecuteCompiled(PreparedStatement& ps,
                                      const std::vector<Value>* params);
  /// The session-knob half of a plan-cache key: every SET knob that
  /// changes what compilation produces. Knob changes key-miss rather
  /// than invalidate.
  std::string KnobFingerprint() const;
  std::string PlanCacheKey(const std::string& sql) const {
    return NormalizeSql(sql) + '\x1f' + KnobFingerprint();
  }
  void SnapshotPlanCacheMetrics();
  /// Names of views whose bodies (transitively) reference the object
  /// `dep_key` ("T:NAME" / "V:NAME"), excluding `dep_key` itself.
  std::vector<std::string> ViewsReferencing(const std::string& dep_key) const;

  /// §2: "Update through views will be allowed when the update is
  /// unambiguous; otherwise an error will be returned." A view is
  /// updatable iff it is a plain SELECT of base-table columns from one
  /// base table (no DISTINCT, grouping, set ops, joins, or expressions).
  struct UpdatableView {
    const TableDef* table = nullptr;
    /// view column position -> base column position
    std::vector<size_t> column_map;
    /// A pseudo table definition exposing the view's columns (their view
    /// names, base types); WHERE/SET clauses bind against this.
    TableDef pseudo;
    /// the view's own WHERE clause (owned by `parsed`), AND-ed into DML
    std::unique_ptr<ast::Query> parsed;
    const ast::Expr* where = nullptr;
  };
  Result<UpdatableView> ResolveUpdatableView(const ViewDef& view) const;

  /// Coerces `v` to a column type (numeric widening only) and checks
  /// nullability.
  Result<Value> CoerceForColumn(Value v, const ColumnDef& col) const;
  Status InsertRows(const TableDef& table, const std::vector<Row>& rows,
                    const std::vector<size_t>& target_columns);
  void RefreshRowStats(const std::string& table_name);

  Catalog catalog_;
  StorageEngine storage_;
  rewrite::RuleEngine rule_engine_;
  std::vector<optimizer::Star> extra_stars_;
  SessionOptions options_;
  /// Snapshot of the most recently finished statement's metrics (see
  /// last_metrics()); guarded against concurrent finishers.
  QueryMetrics last_metrics_;
  mutable std::mutex last_metrics_mu_;
  obs::Tracer tracer_;
  PlanCache plan_cache_;

  StatementRegistry statements_;
  AdmissionController admission_;
  int64_t statement_timeout_ms_ = 0;  // 0 = no deadline

  obs::MetricsRegistry metrics_registry_;
  obs::QueryLog query_log_;
  bool metrics_enabled_ = true;
  uint64_t slow_query_us_ = 0;  // 0 = off
  /// Statement ids (metrics on or off); atomic so concurrent sessions
  /// never share an id.
  std::atomic<uint64_t> statement_seq_{0};

  /// Registry pointers resolved once at construction; statement-end
  /// bookkeeping then touches only their atomics.
  struct EngineMetrics {
    obs::Counter* queries_total = nullptr;
    obs::Counter* query_errors_total = nullptr;
    obs::Counter* slow_queries_total = nullptr;
    obs::Histogram* query_latency_us = nullptr;
    obs::Counter* plan_cache_hits = nullptr;
    obs::Counter* plan_cache_misses = nullptr;
    obs::Counter* plan_cache_invalidations = nullptr;
    obs::Counter* plan_cache_evictions = nullptr;
    obs::Gauge* plan_cache_entries = nullptr;
    obs::Counter* buffer_pool_logical_reads = nullptr;
    obs::Counter* buffer_pool_cache_hits = nullptr;
    obs::Counter* buffer_pool_disk_reads = nullptr;
    obs::Counter* buffer_pool_disk_writes = nullptr;
    obs::Counter* spill_files_created = nullptr;
    obs::Counter* spill_bytes_written = nullptr;
    obs::Gauge* spill_live_files = nullptr;
    obs::Gauge* spill_live_bytes = nullptr;
    obs::Counter* scheduler_tasks_run = nullptr;
    obs::Counter* scheduler_workers_spawned = nullptr;
    obs::Gauge* memory_query_peak_bytes = nullptr;
    obs::Gauge* memory_query_peak_max_bytes = nullptr;
    obs::Counter* statements_killed_total = nullptr;
    obs::Counter* statements_cancelled_total = nullptr;
    obs::Counter* statements_timed_out_total = nullptr;
    obs::Counter* admission_queued_total = nullptr;
    obs::Counter* admission_rejected_total = nullptr;
    obs::Counter* admission_timeouts_total = nullptr;
    obs::Gauge* admission_in_use_bytes = nullptr;
    obs::Gauge* admission_budget_bytes = nullptr;
    obs::Gauge* statements_live = nullptr;
    obs::Counter* query_log_dropped_total = nullptr;
    obs::Counter* query_log_cleared_total = nullptr;
  };
  EngineMetrics em_;
};

}  // namespace starburst

#endif  // STARBURST_ENGINE_DATABASE_H_
