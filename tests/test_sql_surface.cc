// Broad SQL-surface coverage: each test exercises one distinct language
// behaviour end-to-end through the full pipeline, including the error
// paths a downstream user will hit first.

#include <gtest/gtest.h>

#include "engine/database.h"

namespace starburst {
namespace {

class SqlSurfaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(Exec("CREATE TABLE emp (id INT PRIMARY KEY, name STRING, "
                     "dept STRING, salary DOUBLE, boss INT)"));
    ASSERT_TRUE(Exec(
        "INSERT INTO emp VALUES "
        "(1, 'ada', 'eng', 120, NULL), (2, 'bob', 'eng', 80, 1), "
        "(3, 'cyd', 'ops', 95, 1), (4, 'dee', 'ops', 70, 3), "
        "(5, 'eli', 'eng', 110, 1)"));
  }

  bool Exec(const std::string& sql) {
    Result<ResultSet> r = db_.Execute(sql);
    if (!r.ok()) {
      last_error_ = r.status();
      return false;
    }
    last_ = r.TakeValue();
    return true;
  }

  std::vector<Row> Q(const std::string& sql) {
    Result<std::vector<Row>> r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? r.TakeValue() : std::vector<Row>{};
  }

  Database db_;
  ResultSet last_;
  Status last_error_;
};

// --- expressions -----------------------------------------------------------

TEST_F(SqlSurfaceTest, ArithmeticAndPrecedence) {
  std::vector<Row> rows = Q("SELECT 2 + 3 * 4, (2 + 3) * 4, 7 / 2, 7.0 / 2, "
                            "7 % 3, -salary FROM emp WHERE id = 1");
  EXPECT_EQ(rows[0][0], Value::Int(14));
  EXPECT_EQ(rows[0][1], Value::Int(20));
  EXPECT_EQ(rows[0][2], Value::Int(3));     // integer division
  EXPECT_EQ(rows[0][3], Value::Double(3.5));
  EXPECT_EQ(rows[0][4], Value::Int(1));
  EXPECT_EQ(rows[0][5], Value::Double(-120));
}

TEST_F(SqlSurfaceTest, StringOperations) {
  std::vector<Row> rows =
      Q("SELECT name || '@corp', UPPER(name), LENGTH(name) FROM emp "
        "WHERE id = 2");
  EXPECT_EQ(rows[0][0], Value::String("bob@corp"));
  EXPECT_EQ(rows[0][1], Value::String("BOB"));
  EXPECT_EQ(rows[0][2], Value::Int(3));
}

TEST_F(SqlSurfaceTest, LikePatterns) {
  // ada, cyd, dee contain 'd'.
  EXPECT_EQ(Q("SELECT name FROM emp WHERE name LIKE '%d%'").size(), 3u);
  EXPECT_EQ(Q("SELECT name FROM emp WHERE name LIKE '_o_'").size(), 1u);
  // Everyone but ada.
  EXPECT_EQ(Q("SELECT name FROM emp WHERE name NOT LIKE '%a%'").size(), 4u);
}

TEST_F(SqlSurfaceTest, BetweenAndInList) {
  EXPECT_EQ(Q("SELECT id FROM emp WHERE salary BETWEEN 80 AND 110").size(), 3u);
  EXPECT_EQ(Q("SELECT id FROM emp WHERE salary NOT BETWEEN 80 AND 110").size(),
            2u);
  EXPECT_EQ(Q("SELECT id FROM emp WHERE dept IN ('eng', 'hr')").size(), 3u);
  EXPECT_EQ(Q("SELECT id FROM emp WHERE id NOT IN (1, 2, 3)").size(), 2u);
}

TEST_F(SqlSurfaceTest, NullSemantics) {
  // boss IS NULL vs = NULL (the latter is never true).
  EXPECT_EQ(Q("SELECT id FROM emp WHERE boss IS NULL").size(), 1u);
  EXPECT_EQ(Q("SELECT id FROM emp WHERE boss = NULL").size(), 0u);
  EXPECT_EQ(Q("SELECT id FROM emp WHERE boss IS NOT NULL").size(), 4u);
  // NULL propagates through arithmetic.
  std::vector<Row> rows = Q("SELECT boss + 1 FROM emp WHERE id = 1");
  EXPECT_TRUE(rows[0][0].is_null());
  // NOT IN with a NULL element is never satisfied... except by matches.
  EXPECT_EQ(Q("SELECT id FROM emp WHERE id NOT IN (1, NULL)").size(), 0u);
  EXPECT_EQ(Q("SELECT id FROM emp WHERE id IN (1, NULL)").size(), 1u);
}

TEST_F(SqlSurfaceTest, CaseWithoutElseYieldsNull) {
  std::vector<Row> rows =
      Q("SELECT CASE WHEN salary > 100 THEN 'high' END FROM emp "
        "WHERE id = 4");
  EXPECT_TRUE(rows[0][0].is_null());
}

TEST_F(SqlSurfaceTest, DivisionByZeroIsRuntimeError) {
  EXPECT_FALSE(Exec("SELECT salary / (id - 1) FROM emp"));
  EXPECT_EQ(last_error_.code(), StatusCode::kInvalidArgument);
}

// --- joins and correlation --------------------------------------------------

TEST_F(SqlSurfaceTest, SelfJoinWithAliases) {
  std::vector<Row> rows = Q(
      "SELECT e.name, b.name FROM emp e, emp b WHERE e.boss = b.id "
      "ORDER BY e.name");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0], Value::String("bob"));
  EXPECT_EQ(rows[0][1], Value::String("ada"));
}

TEST_F(SqlSurfaceTest, TwoLevelCorrelation) {
  // The innermost subquery references the *outermost* query's iterator —
  // parameters must pass through two subplan levels.
  std::vector<Row> rows = Q(
      "SELECT name FROM emp e WHERE EXISTS "
      "(SELECT 1 FROM emp m WHERE m.id = e.boss AND EXISTS "
      "  (SELECT 1 FROM emp x WHERE x.boss = m.id AND x.salary < e.salary)) "
      "ORDER BY name");
  // For each e with a boss m, is there a subordinate x of m cheaper than e?
  // bob(80): subs of ada: bob,eli,cyd; cheaper than 80? dee isn't under ada.
  // cyd(95): bob(80) under ada -> yes. eli(110): bob(80) -> yes.
  // dee(70): subs of cyd: dee(70) < 70? no.
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::String("cyd"));
  EXPECT_EQ(rows[1][0], Value::String("eli"));
}

TEST_F(SqlSurfaceTest, ClassicAboveDepartmentAverage) {
  std::vector<Row> rows = Q(
      "SELECT name FROM emp e WHERE salary > (SELECT AVG(salary) FROM emp d "
      "WHERE d.dept = e.dept) ORDER BY name");
  // eng avg = 103.3: ada(120), eli(110). ops avg = 82.5: cyd(95).
  ASSERT_EQ(rows.size(), 3u);
}

TEST_F(SqlSurfaceTest, EmployeesOverTheirManager) {
  // The paper's §2 example: "employees who make more than their manager
  // can be expressed either as a subquery or as a join" — both phrasings,
  // same answer.
  std::vector<Row> sub = Q(
      "SELECT name FROM emp e WHERE salary > (SELECT salary FROM emp b "
      "WHERE b.id = e.boss) ORDER BY name");
  std::vector<Row> join = Q(
      "SELECT e.name FROM emp e, emp b WHERE e.boss = b.id "
      "AND e.salary > b.salary ORDER BY e.name");
  EXPECT_EQ(sub, join);
  EXPECT_EQ(sub.size(), 0u);  // nobody out-earns ada here... check dee/cyd
  // Give dee a raise and re-check.
  ASSERT_TRUE(Exec("UPDATE emp SET salary = 200 WHERE name = 'dee'"));
  sub = Q("SELECT name FROM emp e WHERE salary > (SELECT salary FROM emp b "
          "WHERE b.id = e.boss)");
  ASSERT_EQ(sub.size(), 1u);
  EXPECT_EQ(sub[0][0], Value::String("dee"));
}

// --- aggregation ------------------------------------------------------------

TEST_F(SqlSurfaceTest, CountDistinct) {
  std::vector<Row> rows = Q("SELECT COUNT(DISTINCT dept), COUNT(dept), "
                            "COUNT(*), COUNT(boss) FROM emp");
  EXPECT_EQ(rows[0][0], Value::Int(2));
  EXPECT_EQ(rows[0][1], Value::Int(5));
  EXPECT_EQ(rows[0][2], Value::Int(5));
  EXPECT_EQ(rows[0][3], Value::Int(4));  // NULL boss not counted
}

TEST_F(SqlSurfaceTest, GroupByExpression) {
  // The grouping key is an expression, re-used verbatim in the select list.
  std::vector<Row> rows =
      Q("SELECT id % 2, COUNT(*) FROM emp GROUP BY id % 2 ORDER BY 1");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int(0));
  EXPECT_EQ(rows[0][1], Value::Int(2));  // ids 2, 4
  EXPECT_EQ(rows[1][1], Value::Int(3));  // ids 1, 3, 5
}

TEST_F(SqlSurfaceTest, MinMaxOnStrings) {
  std::vector<Row> rows = Q("SELECT MIN(name), MAX(name) FROM emp");
  EXPECT_EQ(rows[0][0], Value::String("ada"));
  EXPECT_EQ(rows[0][1], Value::String("eli"));
}

TEST_F(SqlSurfaceTest, HavingWithoutGroupBy) {
  // Implicit single group filtered by HAVING.
  EXPECT_EQ(Q("SELECT COUNT(*) FROM emp HAVING COUNT(*) > 3").size(), 1u);
  EXPECT_EQ(Q("SELECT COUNT(*) FROM emp HAVING COUNT(*) > 30").size(), 0u);
}

// --- table-producing forms ---------------------------------------------------

TEST_F(SqlSurfaceTest, NestedTableExpressions) {
  std::vector<Row> rows = Q(
      "WITH eng(id, s) AS (SELECT id, salary FROM emp WHERE dept = 'eng'), "
      "rich(id) AS (SELECT id FROM eng WHERE s > 100) "
      "SELECT COUNT(*) FROM rich");
  EXPECT_EQ(rows[0][0], Value::Int(2));
}

TEST_F(SqlSurfaceTest, UnionAllKeepsDuplicates) {
  EXPECT_EQ(Q("SELECT dept FROM emp UNION ALL SELECT dept FROM emp").size(),
            10u);
  EXPECT_EQ(Q("SELECT dept FROM emp UNION SELECT dept FROM emp").size(), 2u);
}

TEST_F(SqlSurfaceTest, SetOpsInFromPosition) {
  // Hydrogen orthogonality: a set operation wherever a table is allowed.
  std::vector<Row> rows = Q(
      "SELECT COUNT(*) FROM (SELECT id FROM emp WHERE dept = 'eng' "
      "UNION SELECT id FROM emp WHERE salary > 90) u");
  EXPECT_EQ(rows[0][0], Value::Int(4));  // 1,2,5 ∪ 1,3,5
}

TEST_F(SqlSurfaceTest, ViewOnViewAndDrop) {
  ASSERT_TRUE(Exec("CREATE VIEW eng AS SELECT * FROM emp WHERE dept = 'eng'"));
  ASSERT_TRUE(Exec("CREATE VIEW rich_eng AS SELECT name FROM eng "
                   "WHERE salary > 100"));
  EXPECT_EQ(Q("SELECT name FROM rich_eng").size(), 2u);
  ASSERT_TRUE(Exec("DROP VIEW rich_eng"));
  EXPECT_FALSE(Exec("SELECT name FROM rich_eng"));
  // eng still exists.
  EXPECT_EQ(Q("SELECT COUNT(*) FROM eng").size(), 1u);
}

TEST_F(SqlSurfaceTest, InsertFromViewSelect) {
  ASSERT_TRUE(Exec("CREATE TABLE archive (id INT, name STRING)"));
  ASSERT_TRUE(Exec("CREATE VIEW ops AS SELECT id, name FROM emp "
                   "WHERE dept = 'ops'"));
  ASSERT_TRUE(Exec("INSERT INTO archive SELECT id, name FROM ops"));
  EXPECT_EQ(last_.affected_rows(), 2);
}

// --- DDL / DML edges ----------------------------------------------------------

TEST_F(SqlSurfaceTest, NotNullEnforcedOnUpdateToo) {
  ASSERT_TRUE(Exec("CREATE TABLE strict_t (a INT NOT NULL, b INT)"));
  ASSERT_TRUE(Exec("INSERT INTO strict_t VALUES (1, 2)"));
  EXPECT_FALSE(Exec("INSERT INTO strict_t VALUES (NULL, 3)"));
  EXPECT_FALSE(Exec("UPDATE strict_t SET a = NULL"));
  EXPECT_FALSE(Exec("INSERT INTO strict_t (b) VALUES (5)"));  // a omitted
}

TEST_F(SqlSurfaceTest, NumericCoercionOnInsert) {
  ASSERT_TRUE(Exec("CREATE TABLE c (d DOUBLE, i INT)"));
  ASSERT_TRUE(Exec("INSERT INTO c VALUES (3, 4.0)"));  // int->double, 4.0->int
  std::vector<Row> rows = Q("SELECT d, i FROM c");
  EXPECT_EQ(rows[0][0], Value::Double(3.0));
  EXPECT_EQ(rows[0][1], Value::Int(4));
  // Lossy double->int rejected.
  EXPECT_FALSE(Exec("INSERT INTO c VALUES (1.0, 4.5)"));
  // String into numeric rejected.
  EXPECT_FALSE(Exec("INSERT INTO c VALUES ('x', 1)"));
}

TEST_F(SqlSurfaceTest, DropTableDropsItsIndexes) {
  ASSERT_TRUE(Exec("CREATE TABLE tmp_t (a INT)"));
  ASSERT_TRUE(Exec("CREATE INDEX tmp_a ON tmp_t (a)"));
  ASSERT_TRUE(Exec("DROP TABLE tmp_t"));
  EXPECT_FALSE(Exec("DROP INDEX tmp_a"));  // already gone with the table
  // Name is reusable.
  ASSERT_TRUE(Exec("CREATE TABLE tmp_t (a INT)"));
  ASSERT_TRUE(Exec("CREATE INDEX tmp_a ON tmp_t (a)"));
}

TEST_F(SqlSurfaceTest, UpdateWithCorrelatedSubqueryPredicate) {
  ASSERT_TRUE(Exec(
      "UPDATE emp SET salary = salary + 1 WHERE EXISTS "
      "(SELECT 1 FROM emp b WHERE b.id = emp.boss AND b.dept = emp.dept)"));
  // bob and eli have a same-dept boss (ada/eng); dee has cyd/ops.
  EXPECT_EQ(last_.affected_rows(), 3);
}

TEST_F(SqlSurfaceTest, DeleteAllAndReuse) {
  ASSERT_TRUE(Exec("DELETE FROM emp"));
  EXPECT_EQ(last_.affected_rows(), 5);
  EXPECT_EQ(Q("SELECT COUNT(*) FROM emp")[0][0], Value::Int(0));
  ASSERT_TRUE(Exec("INSERT INTO emp VALUES (9, 'zed', 'eng', 50, NULL)"));
  EXPECT_EQ(Q("SELECT name FROM emp").size(), 1u);
}

// --- error reporting -----------------------------------------------------------

TEST_F(SqlSurfaceTest, ErrorsCarryUsefulCodes) {
  EXPECT_FALSE(Exec("SELECT nope FROM emp"));
  EXPECT_EQ(last_error_.code(), StatusCode::kSemanticError);
  EXPECT_FALSE(Exec("SELECT * FROM nope"));
  EXPECT_EQ(last_error_.code(), StatusCode::kSemanticError);
  EXPECT_FALSE(Exec("SELEC 1"));
  EXPECT_EQ(last_error_.code(), StatusCode::kSyntaxError);
  EXPECT_FALSE(Exec("SELECT name + 1 FROM emp"));
  EXPECT_EQ(last_error_.code(), StatusCode::kTypeError);
  EXPECT_FALSE(Exec("CREATE TABLE emp (x INT)"));
  EXPECT_EQ(last_error_.code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(Exec("INSERT INTO emp VALUES (1)"));
  EXPECT_EQ(last_error_.code(), StatusCode::kSemanticError);
  EXPECT_FALSE(Exec("SELECT id FROM emp WHERE salary = "
                    "(SELECT salary FROM emp)"));  // >1 row scalar
  EXPECT_EQ(last_error_.code(), StatusCode::kInvalidArgument);
}

// --- update through views (§2) ---------------------------------------------

TEST_F(SqlSurfaceTest, UpdateThroughViewWhenUnambiguous) {
  ASSERT_TRUE(Exec("CREATE VIEW eng (who, pay) AS "
                   "SELECT name, salary FROM emp WHERE dept = 'eng'"));
  // UPDATE through the view: only eng rows visible; renamed columns work.
  ASSERT_TRUE(Exec("UPDATE eng SET pay = pay + 10 WHERE who <> 'ada'"));
  EXPECT_EQ(last_.affected_rows(), 2);  // bob, eli
  EXPECT_EQ(Q("SELECT salary FROM emp WHERE name = 'bob'")[0][0],
            Value::Double(90));
  EXPECT_EQ(Q("SELECT salary FROM emp WHERE name = 'dee'")[0][0],
            Value::Double(70));  // ops row untouched

  // DELETE through the view respects its predicate.
  ASSERT_TRUE(Exec("DELETE FROM eng WHERE pay < 100"));
  EXPECT_EQ(last_.affected_rows(), 1);  // bob at 90
  EXPECT_EQ(Q("SELECT COUNT(*) FROM emp")[0][0], Value::Int(4));

  // INSERT through eng fails: the unexposed primary key cannot be NULL.
  EXPECT_FALSE(Exec("INSERT INTO eng VALUES ('fox', 60)"));
  EXPECT_NE(last_error_.message().find("NOT NULL"), std::string::npos);

  // On a keyless base table, INSERT through a view fills unexposed
  // nullable columns with NULL.
  ASSERT_TRUE(Exec("CREATE TABLE notes (txt STRING, score INT, tag STRING)"));
  ASSERT_TRUE(Exec("CREATE VIEW short_notes AS SELECT txt, score FROM notes "
                   "WHERE score < 10"));
  ASSERT_TRUE(Exec("INSERT INTO short_notes VALUES ('hello', 60)"));
  std::vector<Row> rows = Q("SELECT score, tag FROM notes");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(60));  // no CHECK OPTION: stored anyway
  EXPECT_TRUE(rows[0][1].is_null());
  // ...but it is not visible back through the view.
  EXPECT_EQ(Q("SELECT txt FROM short_notes").size(), 0u);
}

TEST_F(SqlSurfaceTest, AmbiguousViewUpdatesRejected) {
  ASSERT_TRUE(Exec("CREATE VIEW agg_v AS SELECT dept, COUNT(*) n FROM emp "
                   "GROUP BY dept"));
  EXPECT_FALSE(Exec("DELETE FROM agg_v"));
  EXPECT_NE(last_error_.message().find("not unambiguously updatable"),
            std::string::npos);

  ASSERT_TRUE(Exec("CREATE VIEW join_v AS SELECT e.name FROM emp e, emp b "
                   "WHERE e.boss = b.id"));
  EXPECT_FALSE(Exec("UPDATE join_v SET name = 'x'"));

  ASSERT_TRUE(Exec("CREATE VIEW expr_v AS SELECT salary * 2 FROM emp"));
  EXPECT_FALSE(Exec("INSERT INTO expr_v VALUES (100)"));

  ASSERT_TRUE(Exec("CREATE VIEW d_v AS SELECT DISTINCT dept FROM emp"));
  EXPECT_FALSE(Exec("DELETE FROM d_v"));
}

TEST_F(SqlSurfaceTest, InsertThroughViewChecksNotNull) {
  ASSERT_TRUE(Exec("CREATE TABLE strict2 (a INT NOT NULL, b INT)"));
  ASSERT_TRUE(Exec("CREATE VIEW only_b AS SELECT b FROM strict2"));
  // `a` is NOT NULL and not exposed: the insert must fail cleanly.
  EXPECT_FALSE(Exec("INSERT INTO only_b VALUES (7)"));
}

TEST_F(SqlSurfaceTest, ScriptExecution) {
  Result<ResultSet> r = db_.ExecuteScript(
      "CREATE TABLE s (a INT); INSERT INTO s VALUES (1), (2); "
      "SELECT COUNT(*) FROM s;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows()[0][0], Value::Int(2));
}

}  // namespace
}  // namespace starburst
