#ifndef STARBURST_STORAGE_SYSTEM_STORAGE_H_
#define STARBURST_STORAGE_SYSTEM_STORAGE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/storage_manager.h"

namespace starburst {

/// Materializes the current rows of one system table. Called on every
/// NewScan(), so repeated queries over `sys.*` always see live state.
using SystemRowProvider = std::function<std::vector<Row>()>;

/// The read-only storage manager behind the reserved `sys` schema —
/// the paper's "a DBC could define a new storage manager" claim applied
/// to the engine's own observability state (§1). Tables under it are
/// virtual: NewScan() materializes rows from a registered provider, so
/// ordinary scans, filters, joins, and aggregates work unchanged, while
/// every mutation entry point fails with a clear read-only error.
///
/// ValidateSchema always fails: that is the hook `CREATE TABLE ... USING
/// SYSTEM` goes through, so users cannot claim the manager. The engine
/// registers its own tables via RegisterTable + StorageEngine::CreateTable,
/// which bypasses validation by design.
class SystemStorageManager : public StorageManager {
 public:
  const std::string& name() const override;
  Status ValidateSchema(const TableSchema& schema) const override;
  Result<std::unique_ptr<TableStorage>> CreateTable(const TableDef& def,
                                                    BufferPool* pool) override;

  /// Binds `table_name` (case-insensitive) to `provider`. Must happen
  /// before the table's storage is created.
  void RegisterTable(const std::string& table_name, SystemRowProvider provider);

 private:
  std::map<std::string, SystemRowProvider> providers_;  // IdentUpper keys
};

std::unique_ptr<SystemStorageManager> MakeSystemStorageManager();

/// True for names inside the reserved system schema ("sys.", any case).
bool IsSystemTableName(const std::string& name);

}  // namespace starburst

#endif  // STARBURST_STORAGE_SYSTEM_STORAGE_H_
