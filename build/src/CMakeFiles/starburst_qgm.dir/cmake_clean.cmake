file(REMOVE_RECURSE
  "CMakeFiles/starburst_qgm.dir/qgm/binder.cc.o"
  "CMakeFiles/starburst_qgm.dir/qgm/binder.cc.o.d"
  "CMakeFiles/starburst_qgm.dir/qgm/box.cc.o"
  "CMakeFiles/starburst_qgm.dir/qgm/box.cc.o.d"
  "CMakeFiles/starburst_qgm.dir/qgm/expr.cc.o"
  "CMakeFiles/starburst_qgm.dir/qgm/expr.cc.o.d"
  "CMakeFiles/starburst_qgm.dir/qgm/graph.cc.o"
  "CMakeFiles/starburst_qgm.dir/qgm/graph.cc.o.d"
  "CMakeFiles/starburst_qgm.dir/qgm/printer.cc.o"
  "CMakeFiles/starburst_qgm.dir/qgm/printer.cc.o.d"
  "libstarburst_qgm.a"
  "libstarburst_qgm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starburst_qgm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
