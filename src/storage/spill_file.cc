#include "storage/spill_file.h"

#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "storage/record_codec.h"

namespace starburst {

namespace {

std::atomic<uint64_t> g_live_count{0};
std::atomic<uint64_t> g_live_bytes{0};
std::atomic<uint64_t> g_total_count{0};
std::atomic<uint64_t> g_total_bytes{0};

std::string SpillDir() {
  const char* dir = std::getenv("STARBURST_SPILL_DIR");
  if (dir != nullptr && dir[0] != '\0') return dir;
  const char* tmp = std::getenv("TMPDIR");
  if (tmp != nullptr && tmp[0] != '\0') return tmp;
  return "/tmp";
}

}  // namespace

Result<std::unique_ptr<SpillFile>> SpillFile::Create() {
  std::string path = SpillDir();
  if (!path.empty() && path.back() != '/') path += '/';
  path += "starburst-spill-XXXXXX";
  int fd = ::mkstemp(path.data());
  if (fd < 0) {
    return Status::Internal("cannot create spill file in '" + path +
                            "': " + std::strerror(errno));
  }
  std::FILE* f = ::fdopen(fd, "w+b");
  if (f == nullptr) {
    ::close(fd);
    ::unlink(path.c_str());
    return Status::Internal("cannot open spill file stream: " +
                            std::string(std::strerror(errno)));
  }
  g_live_count.fetch_add(1, std::memory_order_relaxed);
  g_total_count.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<SpillFile>(new SpillFile(std::move(path), f));
}

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
  ::unlink(path_.c_str());
  g_live_count.fetch_sub(1, std::memory_order_relaxed);
  g_live_bytes.fetch_sub(bytes_written_, std::memory_order_relaxed);
}

uint64_t SpillFile::live_count() {
  return g_live_count.load(std::memory_order_relaxed);
}

uint64_t SpillFile::live_bytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}

uint64_t SpillFile::total_count() {
  return g_total_count.load(std::memory_order_relaxed);
}

uint64_t SpillFile::total_bytes() {
  return g_total_bytes.load(std::memory_order_relaxed);
}

Status SpillFile::AppendRow(const Row& row) {
  encode_scratch_.clear();
  VarRecordCodec::EncodeTo(row, &encode_scratch_);
  uint32_t len = static_cast<uint32_t>(encode_scratch_.size());
  if (std::fwrite(&len, sizeof(len), 1, file_) != 1 ||
      (len > 0 &&
       std::fwrite(encode_scratch_.data(), 1, len, file_) != len)) {
    return Status::Internal("spill write failed (disk full?)");
  }
  ++rows_written_;
  bytes_written_ += sizeof(len) + len;
  g_live_bytes.fetch_add(sizeof(len) + len, std::memory_order_relaxed);
  g_total_bytes.fetch_add(sizeof(len) + len, std::memory_order_relaxed);
  return Status::OK();
}

Status SpillFile::AppendBatch(const RowBatch& batch) {
  size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    STARBURST_RETURN_IF_ERROR(AppendRow(batch.row(i)));
  }
  return Status::OK();
}

Status SpillFile::Finish() {
  if (std::fflush(file_) != 0) {
    return Status::Internal("spill flush failed (disk full?)");
  }
  return Status::OK();
}

Result<std::unique_ptr<SpillFile::Reader>> SpillFile::OpenReader() const {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) {
    return Status::Internal("cannot reopen spill file '" + path_ +
                            "': " + std::strerror(errno));
  }
  return std::unique_ptr<Reader>(new Reader(f));
}

SpillFile::Reader::~Reader() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<bool> SpillFile::Reader::NextRow(Row* row) {
  uint32_t len = 0;
  size_t got = std::fread(&len, 1, sizeof(len), file_);
  if (got == 0) return false;  // clean end of file
  if (got != sizeof(len)) {
    return Status::Internal("spill read: truncated row header");
  }
  scratch_.resize(len);
  if (len > 0 && std::fread(scratch_.data(), 1, len, file_) != len) {
    return Status::Internal("spill read: truncated row payload");
  }
  STARBURST_RETURN_IF_ERROR(VarRecordCodec::DecodeInto(
      reinterpret_cast<const uint8_t*>(scratch_.data()), len, row));
  return true;
}

Result<bool> SpillFile::Reader::NextBatch(RowBatch* batch) {
  while (!batch->full()) {
    Row* slot = batch->AppendSlot();
    STARBURST_ASSIGN_OR_RETURN(bool more, NextRow(slot));
    if (!more) {
      batch->PopLast();
      break;
    }
  }
  return !batch->empty();
}

}  // namespace starburst
