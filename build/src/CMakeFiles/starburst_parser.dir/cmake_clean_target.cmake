file(REMOVE_RECURSE
  "libstarburst_parser.a"
)
