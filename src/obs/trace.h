#ifndef STARBURST_OBS_TRACE_H_
#define STARBURST_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace starburst::obs {

/// Microseconds on the steady clock — the one timebase every span,
/// instant, and rule-firing timestamp shares so exported traces line up.
inline double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One recorded event: a closed span (start + duration) or an instant.
struct TraceEvent {
  enum class Kind : uint8_t { kSpan, kInstant };
  Kind kind = Kind::kSpan;
  std::string name;
  std::string category;
  double start_us = 0;
  double dur_us = 0;        // spans only
  uint64_t seq = 0;         // global recording order
  /// Pre-rendered JSON object body for the "args" field ("" = none).
  std::string args_json;
};

/// A thread-safe, ring-buffered trace recorder. Disabled (the default) it
/// costs one relaxed atomic load per span — no clock reads, no locks —
/// so instrumentation can stay compiled in on hot paths.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 8192;

  explicit Tracer(size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Records a closed span. No-op when disabled.
  void RecordSpan(std::string name, std::string category, double start_us,
                  double dur_us, std::string args_json = "");
  /// Records a point-in-time event. No-op when disabled.
  void RecordInstant(std::string name, std::string category, double at_us,
                     std::string args_json = "");

  /// Events in recording order (oldest first). The ring keeps the newest
  /// `capacity` events; `dropped()` counts the overwritten ones.
  std::vector<TraceEvent> Snapshot() const;
  void Clear();
  uint64_t dropped() const;
  size_t capacity() const;
  /// Resizes the ring at runtime (`SET TRACE_BUFFER = N`). Shrinking
  /// discards the oldest events, which count as dropped; recording
  /// continues seamlessly either way.
  void set_capacity(size_t n);

  /// Chrome trace event format (chrome://tracing, Perfetto: ui.perfetto.dev).
  std::string ToChromeJson() const;
  /// Compact text rendering: indentation by span containment, times
  /// relative to the earliest recorded event.
  std::string ToText() const;

 private:
  void Push(TraceEvent event);

  size_t capacity_;  // mutable at runtime via set_capacity
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // circular once full; ring_[head_] is oldest
  size_t head_ = 0;               // index of the oldest event when full
  uint64_t next_seq_ = 0;         // total events ever recorded
  uint64_t dropped_ = 0;          // events overwritten or rejected
};

/// RAII span: stamps the clock on construction, records on End() or
/// destruction. Against a null or disabled tracer the constructor skips
/// the clock read entirely — the near-zero disabled path.
class Span {
 public:
  Span(Tracer* tracer, std::string name, std::string category)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr) {
    if (tracer_ != nullptr) {
      name_ = std::move(name);
      category_ = std::move(category);
      start_us_ = NowUs();
    }
  }
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value to the span's args (value emitted as a JSON
  /// string). No-op when recording is off.
  void AddArg(const std::string& key, const std::string& value);

  /// Closes and records the span now (idempotent).
  void End() {
    if (tracer_ == nullptr) return;
    tracer_->RecordSpan(std::move(name_), std::move(category_), start_us_,
                        NowUs() - start_us_, std::move(args_));
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_;
  std::string name_;
  std::string category_;
  std::string args_;
  double start_us_ = 0;
};

/// Escapes `s` for embedding inside a JSON string literal.
std::string JsonEscape(const std::string& s);

}  // namespace starburst::obs

#endif  // STARBURST_OBS_TRACE_H_
