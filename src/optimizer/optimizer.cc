#include "optimizer/optimizer.h"

#include <algorithm>
#include <set>

namespace starburst::optimizer {

using qgm::Box;
using qgm::BoxKind;
using qgm::Expr;
using qgm::Quantifier;
using qgm::QuantifierType;

Optimizer::Optimizer(const Catalog* catalog, Options options)
    : catalog_(catalog), options_(options), cost_(options.cost) {
  RegisterDefaultStars(&registry_);
  generator_ = std::make_unique<PlanGenerator>(&registry_, &cost_, catalog_,
                                               options_.generator);
}

Result<PlanPtr> Optimizer::Optimize(const qgm::Graph& graph) {
  graph_ = &graph;
  box_plans_.clear();
  shared_temp_plans_.clear();
  // Bottom-up over every operation, so even boxes only reachable as
  // correlated subqueries have plans available to the refiner.
  for (const qgm::Box* box : graph.BottomUpOrder()) {
    if (box->kind == BoxKind::kBaseTable) continue;
    STARBURST_RETURN_IF_ERROR(OptimizeBox(box).status());
  }
  STARBURST_ASSIGN_OR_RETURN(PlanPtr plan, OptimizeBox(graph.root()));

  if (!graph.order_by.empty()) {
    std::vector<std::pair<size_t, bool>> wanted;
    for (const qgm::Graph::OrderKey& k : graph.order_by) {
      wanted.push_back({k.head_column, k.ascending});
    }
    bool already_ordered =
        plan->props.order.size() >= wanted.size() &&
        std::equal(wanted.begin(), wanted.end(), plan->props.order.begin());
    if (!already_ordered) {
      auto sort = NewPlan(Lolepop::kSort);
      sort->inputs = {plan};
      sort->output = plan->output;
      sort->sort_keys = std::move(wanted);
      cost_.FinishSort(sort.get());
      plan = sort;
    }
  }
  stats_.generator = generator_->stats();
  graph_ = nullptr;
  return plan;
}

Result<PlanPtr> Optimizer::OptimizeBox(const Box* box) {
  auto memo = box_plans_.find(box);
  if (memo != box_plans_.end()) return memo->second;

  Result<PlanPtr> result = [&]() -> Result<PlanPtr> {
    switch (box->kind) {
      case BoxKind::kSelect: {
        for (const auto& q : box->quantifiers) {
          if (q->type == QuantifierType::kPreservedForEach) {
            return OptimizeOuterJoin(box);
          }
        }
        return OptimizeSelect(box);
      }
      case BoxKind::kGroupBy:
        return OptimizeGroupBy(box);
      case BoxKind::kSetOp:
        return OptimizeSetOp(box);
      case BoxKind::kValues: {
        auto values = NewPlan(Lolepop::kValues);
        values->box = box;
        for (size_t i = 0; i < box->head.size(); ++i) {
          values->output.push_back(ColumnBinding{nullptr, box, i});
        }
        cost_.FinishValues(values.get(), box->rows.size());
        generator_->CountPlan();
        return PlanPtr(values);
      }
      case BoxKind::kTableFunction:
        return OptimizeTableFunction(box);
      case BoxKind::kChoose: {
        // CHOOSE links rewrite alternatives; the optimizer "can eliminate
        // [it] when [it] chooses an alternative" — pick the cheapest.
        PlanPtr best;
        for (const auto& q : box->quantifiers) {
          STARBURST_ASSIGN_OR_RETURN(PlanPtr alt, OptimizeBox(q->input));
          if (best == nullptr || alt->props.cost < best->props.cost) {
            best = alt;
          }
        }
        if (best == nullptr) {
          return Status::Internal("CHOOSE box has no alternatives");
        }
        // Relabel into this box's output space.
        auto relabel = NewPlan(Lolepop::kProject);
        relabel->inputs = {best};
        relabel->box = box;
        for (size_t i = 0; i < box->head.size(); ++i) {
          relabel->output.push_back(ColumnBinding{nullptr, box, i});
        }
        relabel->props = best->props;
        return PlanPtr(relabel);
      }
      case BoxKind::kRecursiveUnion:
        return OptimizeRecursion(box);
      case BoxKind::kIterationRef: {
        auto ref = NewPlan(Lolepop::kIterRef);
        ref->box = box;
        for (size_t i = 0; i < box->head.size(); ++i) {
          ref->output.push_back(ColumnBinding{nullptr, box, i});
        }
        cost_.FinishIterRef(ref.get(), cost_.params().default_table_rows);
        return PlanPtr(ref);
      }
      case BoxKind::kBaseTable:
        return Status::Internal(
            "base tables are accessed through quantifiers, not planned");
    }
    return Status::Internal("unknown box kind");
  }();

  if (result.ok()) box_plans_[box] = *result;
  return result;
}

// ---------------------------------------------------------------------------
// SELECT boxes
// ---------------------------------------------------------------------------

bool Optimizer::SubtreeCorrelated(const Box* sub) const {
  std::set<const Box*> subtree;
  std::vector<const Box*> stack = {sub};
  while (!stack.empty()) {
    const Box* b = stack.back();
    stack.pop_back();
    if (!subtree.insert(b).second) continue;
    for (const auto& q : b->quantifiers) {
      if (q->input != nullptr) stack.push_back(q->input);
    }
  }
  for (const Box* b : subtree) {
    auto uses_foreign = [&](const Expr* e) {
      if (e == nullptr) return false;
      std::set<Quantifier*> used;
      e->CollectQuantifiers(&used);
      for (Quantifier* q : used) {
        if (subtree.count(q->owner) == 0) return true;
      }
      return false;
    };
    for (const auto& p : b->predicates) {
      if (uses_foreign(p.get())) return true;
    }
    for (const auto& h : b->head) {
      if (uses_foreign(h.expr.get())) return true;
    }
    for (const auto& g : b->group_keys) {
      if (uses_foreign(g.get())) return true;
    }
    for (const auto& a : b->aggregates) {
      if (uses_foreign(a.arg.get())) return true;
    }
  }
  return false;
}

std::vector<size_t> Optimizer::NeededColumns(const Quantifier* q) const {
  std::set<size_t> needed;
  for (const auto& box : graph_->boxes()) {
    auto scan = [&](const Expr* e) {
      if (e == nullptr) return;
      std::vector<std::pair<Quantifier*, size_t>> refs;
      e->CollectColumnRefs(&refs);
      for (const auto& [rq, col] : refs) {
        if (rq == q) needed.insert(col);
      }
    };
    for (const auto& p : box->predicates) scan(p.get());
    for (const auto& h : box->head) scan(h.expr.get());
    for (const auto& g : box->group_keys) scan(g.get());
    for (const auto& a : box->aggregates) scan(a.arg.get());
  }
  if (needed.empty() && q->NumColumns() > 0) needed.insert(0);
  return std::vector<size_t>(needed.begin(), needed.end());
}

bool Optimizer::SubtreeHasIterationRef(const Box* box) const {
  std::set<const Box*> seen;
  std::vector<const Box*> stack = {box};
  while (!stack.empty()) {
    const Box* b = stack.back();
    stack.pop_back();
    if (!seen.insert(b).second) continue;
    if (b->kind == BoxKind::kIterationRef) return true;
    for (const auto& q : b->quantifiers) stack.push_back(q->input);
  }
  return false;
}

Result<PlanPtr> Optimizer::DerivedTablePlan(const Box* input) {
  STARBURST_ASSIGN_OR_RETURN(PlanPtr child, OptimizeBox(input));
  if (!options_.materialize_shared) return child;

  // "Materialized once and used several times" (§5): a table expression
  // with several consumers gets one shared TEMP — unless its contents are
  // context-dependent (correlated, or fed by a recursion's delta).
  int refs = 0;
  for (const auto& box : graph_->boxes()) {
    for (const auto& q : box->quantifiers) {
      if (q->input == input) ++refs;
    }
  }
  if (refs < 2) return child;
  if (SubtreeCorrelated(input) || SubtreeHasIterationRef(input)) return child;

  auto memo = shared_temp_plans_.find(input);
  if (memo != shared_temp_plans_.end()) return memo->second;
  auto temp = NewPlan(Lolepop::kTemp);
  temp->inputs = {child};
  temp->output = child->output;
  temp->shared = true;
  cost_.FinishTemp(temp.get());
  // Later consumers see only the cheap rescan.
  PlanPtr shared = temp;
  shared_temp_plans_[input] = shared;
  return shared;
}

PlanPtr Optimizer::Relabel(PlanPtr input, const Quantifier* q) {
  auto relabel = NewPlan(Lolepop::kProject);
  relabel->inputs = {input};
  relabel->quantifier = q;
  for (size_t i = 0; i < input->output.size(); ++i) {
    relabel->output.push_back(ColumnBinding{q, nullptr, i});
  }
  relabel->props = input->props;  // pure renaming: order/cost preserved
  return relabel;
}

Result<std::vector<PlanPtr>> Optimizer::AccessQuantifier(
    const Quantifier* q, const std::vector<const Expr*>& preds) {
  const Box* input = q->input;
  if (input == nullptr) return Status::Internal("iterator without range edge");

  std::vector<PlanPtr> plans;
  if (input->kind == BoxKind::kBaseTable) {
    StarContext ctx;
    ctx.catalog = catalog_;
    ctx.box = q->owner;
    ctx.quantifier = q;
    ctx.local_preds = preds;
    ctx.needed_columns = NeededColumns(q);
    STARBURST_ASSIGN_OR_RETURN(plans, generator_->Expand("TableAccess", ctx));
  } else {
    STARBURST_ASSIGN_OR_RETURN(PlanPtr child, DerivedTablePlan(input));
    PlanPtr access = Relabel(child, q);
    if (!preds.empty()) {
      access = AddFilter(access, preds);
    }
    plans.push_back(access);
  }

  // Remote streams are glued to the local site before joining.
  std::vector<PlanPtr> local;
  for (PlanPtr& plan : plans) {
    if (plan->props.site == "local") {
      local.push_back(std::move(plan));
      continue;
    }
    StarContext glue;
    glue.glue_input = plan;
    glue.required_site = "local";
    STARBURST_ASSIGN_OR_RETURN(std::vector<PlanPtr> shipped,
                               generator_->Expand("Glue", glue));
    for (PlanPtr& s : shipped) local.push_back(std::move(s));
  }
  return local;
}

namespace {

bool ContainsSubqueryNode(const Expr& e) {
  if (e.kind == Expr::Kind::kExistsTest || e.kind == Expr::Kind::kQuantCompare) {
    return true;
  }
  if (e.kind == Expr::Kind::kColumnRef && e.quantifier != nullptr &&
      !e.quantifier->ContributesTuples()) {
    return true;
  }
  for (const auto& c : e.children) {
    if (ContainsSubqueryNode(*c)) return true;
  }
  return false;
}

}  // namespace

PlanPtr Optimizer::AddFilter(PlanPtr input, std::vector<const Expr*> preds) {
  if (preds.empty()) return input;
  // Disjunctions containing subqueries route through §7's OR operator so
  // the subquery branch only runs for tuples the cheap branches rejected.
  std::vector<const Expr*> or_preds;
  std::vector<const Expr*> plain;
  for (const Expr* p : preds) {
    if (p->kind == Expr::Kind::kBinary && p->bop == ast::BinaryOp::kOr &&
        ContainsSubqueryNode(*p)) {
      or_preds.push_back(p);
    } else {
      plain.push_back(p);
    }
  }
  PlanPtr plan = input;
  if (!plain.empty()) {
    auto filter = NewPlan(Lolepop::kFilter);
    filter->inputs = {plan};
    filter->output = plan->output;
    filter->predicates = std::move(plain);
    cost_.FinishFilter(filter.get());
    plan = filter;
  }
  if (!or_preds.empty()) {
    auto orop = NewPlan(Lolepop::kOrRoute);
    orop->inputs = {plan};
    orop->output = plan->output;
    orop->predicates = std::move(or_preds);
    cost_.FinishOrRoute(orop.get());
    plan = orop;
  }
  return plan;
}

Result<PlanPtr> Optimizer::ProjectToHead(const Box* box, PlanPtr input) {
  auto project = NewPlan(Lolepop::kProject);
  project->inputs = {input};
  project->box = box;
  for (size_t i = 0; i < box->head.size(); ++i) {
    project->output.push_back(ColumnBinding{nullptr, box, i});
  }
  cost_.FinishProject(project.get());
  // An input order survives projection as long as its leading columns are
  // re-emitted as plain head column references.
  for (const auto& [slot, asc] : input->props.order) {
    const ColumnBinding& binding = input->output[slot];
    size_t mapped = Plan::kNoSlot;
    for (size_t i = 0; i < box->head.size(); ++i) {
      const qgm::Expr* e = box->head[i].expr.get();
      if (e != nullptr && e->kind == qgm::Expr::Kind::kColumnRef &&
          e->quantifier == binding.quantifier && e->column == binding.column) {
        mapped = i;
        break;
      }
    }
    if (mapped == Plan::kNoSlot) break;
    project->props.order.push_back({mapped, asc});
  }
  generator_->CountPlan();
  PlanPtr plan = project;
  if (box->distinct_enforced) {
    StarContext ctx;
    ctx.glue_input = plan;
    STARBURST_ASSIGN_OR_RETURN(std::vector<PlanPtr> alts,
                               generator_->Expand("Distinct", ctx));
    if (alts.empty()) return Status::Internal("no Distinct strategy");
    plan = alts[0];
    for (const PlanPtr& a : alts) {
      if (a->props.cost < plan->props.cost) plan = a;
    }
  }
  return plan;
}

Result<PlanPtr> Optimizer::AttachSubqueryJoins(
    const Box* box, PlanPtr plan, std::vector<const Expr*>* residual) {
  // Uncorrelated quantified predicates become joins with the appropriate
  // join kind (§7: "we treat subqueries as special types of join").
  std::vector<const Expr*> still_residual;
  std::set<const Quantifier*> joined;

  // Scalar quantifiers used by any expression must be joined in before
  // projection; uncorrelated ones get a scalar-subquery join.
  for (const auto& q : box->quantifiers) {
    if (q->type != QuantifierType::kScalar) continue;
    if (SubtreeCorrelated(q->input)) continue;  // runtime subplan instead
    STARBURST_ASSIGN_OR_RETURN(PlanPtr sub, DerivedTablePlan(q->input));
    StarContext ctx;
    ctx.catalog = catalog_;
    ctx.box = box;
    ctx.outer = plan;
    ctx.inner = Relabel(sub, q.get());
    ctx.kind = JoinKind::kScalar;
    STARBURST_ASSIGN_OR_RETURN(std::vector<PlanPtr> joins,
                               generator_->Expand("JoinMethod", ctx));
    if (joins.empty()) return Status::Internal("no scalar join strategy");
    plan = joins[0];
    for (const PlanPtr& j : joins) {
      if (j->props.cost < plan->props.cost) plan = j;
    }
    joined.insert(q.get());
  }

  for (const Expr* pred : *residual) {
    JoinKind kind;
    const Quantifier* q = pred->quantifier;
    bool join_it = false;
    if (pred->kind == Expr::Kind::kExistsTest && q != nullptr &&
        q->owner == box && !SubtreeCorrelated(q->input)) {
      kind = pred->negated ? JoinKind::kAnti : JoinKind::kExists;
      join_it = true;
    } else if (pred->kind == Expr::Kind::kQuantCompare && q != nullptr &&
               q->owner == box && !SubtreeCorrelated(q->input)) {
      switch (q->type) {
        case QuantifierType::kExists: kind = JoinKind::kExists; break;
        case QuantifierType::kAll: kind = JoinKind::kOpAll; break;
        case QuantifierType::kAntiExists: kind = JoinKind::kAnti; break;
        case QuantifierType::kSetPredicate: kind = JoinKind::kSetPred; break;
        default: kind = JoinKind::kExists; break;
      }
      join_it = true;
    }
    if (!join_it || joined.count(q)) {
      still_residual.push_back(pred);
      continue;
    }
    // The quantified-compare operand must be computable from the current
    // stream (it references this box's F iterators, all present).
    STARBURST_ASSIGN_OR_RETURN(PlanPtr sub, DerivedTablePlan(q->input));
    StarContext ctx;
    ctx.catalog = catalog_;
    ctx.box = box;
    ctx.outer = plan;
    ctx.inner = Relabel(sub, q);
    ctx.kind = kind;
    ctx.set_function = q->set_function;
    ctx.quant_compare = pred->kind == Expr::Kind::kQuantCompare ? pred : nullptr;
    STARBURST_ASSIGN_OR_RETURN(std::vector<PlanPtr> joins,
                               generator_->Expand("JoinMethod", ctx));
    if (joins.empty()) {
      still_residual.push_back(pred);
      continue;
    }
    PlanPtr best = joins[0];
    for (const PlanPtr& j : joins) {
      if (j->props.cost < best->props.cost) best = j;
    }
    plan = best;
    joined.insert(q);
  }
  *residual = std::move(still_residual);
  return plan;
}

Result<PlanPtr> Optimizer::OptimizeSelect(const Box* box) {
  std::vector<const Quantifier*> iterators;
  for (const auto& q : box->quantifiers) {
    if (q->type == QuantifierType::kForEach) iterators.push_back(q.get());
  }

  // Split predicates: enumerable (touch only F iterators of this box)
  // versus residual (subquery tests, pure-correlation predicates).
  std::vector<const Expr*> enumerable;
  std::vector<const Expr*> residual;
  for (const auto& p : box->predicates) {
    std::set<Quantifier*> used;
    p->CollectQuantifiers(&used);
    bool pure = true;
    bool touches_iterator = false;
    for (Quantifier* q : used) {
      if (q->owner != box) continue;  // correlation parameter
      if (q->type == QuantifierType::kForEach) {
        touches_iterator = true;
      } else {
        pure = false;
      }
    }
    if (pure && touches_iterator) {
      enumerable.push_back(p.get());
    } else {
      residual.push_back(p.get());
    }
  }

  PlanPtr joined;
  if (iterators.empty()) {
    // SELECT with no setformers emits a single row (e.g. SELECT 1).
    auto values = NewPlan(Lolepop::kValues);
    values->box = box;
    cost_.FinishValues(values.get(), 1);
    joined = values;
  } else {
    JoinEnumerator enumerator(generator_.get(), options_.join);
    auto access = [this](const Quantifier* q,
                         const std::vector<const Expr*>& preds) {
      return AccessQuantifier(q, preds);
    };
    STARBURST_ASSIGN_OR_RETURN(
        std::vector<PlanPtr> full,
        enumerator.Enumerate(box, iterators, enumerable, access));
    stats_.enumerator.pairs_considered += enumerator.stats().pairs_considered;
    stats_.enumerator.plans_kept += enumerator.stats().plans_kept;
    stats_.enumerator.sets_built += enumerator.stats().sets_built;
    joined = full[0];
  }

  STARBURST_ASSIGN_OR_RETURN(PlanPtr with_subqueries,
                             AttachSubqueryJoins(box, joined, &residual));
  PlanPtr filtered = AddFilter(with_subqueries, residual);
  return ProjectToHead(box, filtered);
}

Result<PlanPtr> Optimizer::OptimizeOuterJoin(const Box* box) {
  // The binder shapes outer-join boxes as exactly [PF, F] with the ON
  // conjuncts as predicates.
  const Quantifier* preserved = nullptr;
  const Quantifier* null_producing = nullptr;
  for (const auto& q : box->quantifiers) {
    if (q->type == QuantifierType::kPreservedForEach) {
      preserved = q.get();
    } else if (q->type == QuantifierType::kForEach) {
      null_producing = q.get();
    }
  }
  if (preserved == nullptr || null_producing == nullptr) {
    return Status::Internal("malformed outer-join box " + box->Label());
  }
  STARBURST_ASSIGN_OR_RETURN(std::vector<PlanPtr> outers,
                             AccessQuantifier(preserved, {}));
  STARBURST_ASSIGN_OR_RETURN(std::vector<PlanPtr> inners,
                             AccessQuantifier(null_producing, {}));
  std::vector<const Expr*> on_preds;
  for (const auto& p : box->predicates) on_preds.push_back(p.get());

  PlanPtr best;
  for (const PlanPtr& outer : outers) {
    for (const PlanPtr& inner : inners) {
      StarContext ctx;
      ctx.catalog = catalog_;
      ctx.box = box;
      ctx.outer = outer;
      ctx.inner = inner;
      ctx.join_preds = on_preds;
      ctx.kind = JoinKind::kLeftOuter;
      STARBURST_ASSIGN_OR_RETURN(std::vector<PlanPtr> joins,
                                 generator_->Expand("JoinMethod", ctx));
      for (const PlanPtr& j : joins) {
        if (best == nullptr || j->props.cost < best->props.cost) best = j;
      }
    }
  }
  if (best == nullptr) return Status::Internal("no outer-join strategy");
  return ProjectToHead(box, best);
}

Result<PlanPtr> Optimizer::OptimizeGroupBy(const Box* box) {
  if (box->quantifiers.size() != 1) {
    return Status::Internal("GROUP BY box must have one iterator");
  }
  const Quantifier* q = box->quantifiers[0].get();
  STARBURST_ASSIGN_OR_RETURN(std::vector<PlanPtr> inputs,
                             AccessQuantifier(q, {}));
  PlanPtr input = inputs[0];
  for (const PlanPtr& p : inputs) {
    if (p->props.cost < input->props.cost) input = p;
  }
  auto agg = NewPlan(Lolepop::kGroupAgg);
  agg->inputs = {input};
  agg->box = box;
  for (size_t i = 0; i < box->head.size(); ++i) {
    agg->output.push_back(ColumnBinding{nullptr, box, i});
  }
  double groups = cost_.GroupCount(box->group_keys, input->props.cardinality);
  cost_.FinishGroupAgg(agg.get(), groups);
  generator_->CountPlan();
  return PlanPtr(agg);
}

Result<PlanPtr> Optimizer::OptimizeSetOp(const Box* box) {
  if (box->quantifiers.size() != 2) {
    return Status::Internal("set operation box must have two iterators");
  }
  STARBURST_ASSIGN_OR_RETURN(PlanPtr left,
                             DerivedTablePlan(box->quantifiers[0]->input));
  STARBURST_ASSIGN_OR_RETURN(PlanPtr right,
                             DerivedTablePlan(box->quantifiers[1]->input));
  auto setop = NewPlan(Lolepop::kSetOp);
  setop->inputs = {left, right};
  setop->box = box;
  for (size_t i = 0; i < box->head.size(); ++i) {
    setop->output.push_back(ColumnBinding{nullptr, box, i});
  }
  cost_.FinishSetOp(setop.get());
  generator_->CountPlan();
  return PlanPtr(setop);
}

Result<PlanPtr> Optimizer::OptimizeTableFunction(const Box* box) {
  auto tf = NewPlan(Lolepop::kTableFunc);
  tf->box = box;
  for (const auto& q : box->quantifiers) {
    STARBURST_ASSIGN_OR_RETURN(PlanPtr input, OptimizeBox(q->input));
    tf->inputs.push_back(input);
  }
  for (size_t i = 0; i < box->head.size(); ++i) {
    tf->output.push_back(ColumnBinding{nullptr, box, i});
  }
  cost_.FinishTableFunc(tf.get());
  generator_->CountPlan();
  return PlanPtr(tf);
}

Result<PlanPtr> Optimizer::OptimizeRecursion(const Box* box) {
  if (box->quantifiers.size() != 2) {
    return Status::Internal("recursive union box must have two iterators");
  }
  STARBURST_ASSIGN_OR_RETURN(PlanPtr base,
                             OptimizeBox(box->quantifiers[0]->input));
  STARBURST_ASSIGN_OR_RETURN(PlanPtr step,
                             OptimizeBox(box->quantifiers[1]->input));
  auto recurse = NewPlan(Lolepop::kRecurse);
  recurse->inputs = {base, step};
  recurse->box = box;
  for (size_t i = 0; i < box->head.size(); ++i) {
    recurse->output.push_back(ColumnBinding{nullptr, box, i});
  }
  cost_.FinishRecurse(recurse.get());
  generator_->CountPlan();
  return PlanPtr(recurse);
}

}  // namespace starburst::optimizer
