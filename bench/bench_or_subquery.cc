// E10 — §7's OR operator: for `T1.A1 = 5 OR T1.A2 = (SELECT ...)`, "the
// FILTER operator, if applied first, cannot just discard a tuple which
// does not satisfy the predicate. Instead it must be handed over to the
// JOIN operator for further consideration. For this, we have designed an
// additional OR operator ... [that] does not require any change to the
// operators used to evaluate the predicate terms."
//
// The routed evaluation means the subquery branch only runs for tuples
// the cheap branch rejected. We sweep the cheap branch's selectivity and
// count subquery evaluations; we also flip the branch order to show the
// routing (not the operators) determines the cost.

#include "bench_util.h"

using namespace starburst;
using namespace starburst::bench;

int main() {
  const int kRows = 4000;
  std::printf("E10: OR with a subquery disjunct, %d rows\n", kRows);
  std::printf("%12s | %9s | %12s %10s | %12s %10s\n", "cheap sel", "rows",
              "cheap-first", "subq evals", "subq-first", "subq evals");

  for (double sel : {0.99, 0.9, 0.5, 0.1, 0.0}) {
    Database db;
    MustExec(&db, "CREATE TABLE t1 (a1 INT, a2 INT)");
    MustExec(&db, "CREATE TABLE t2 (b1 INT, b2 INT)");
    std::mt19937 rng(9);
    int threshold = static_cast<int>(sel * 1000);
    for (int base = 0; base < kRows; base += 500) {
      std::string sql = "INSERT INTO t1 VALUES ";
      for (int i = base; i < base + 500; ++i) {
        if (i > base) sql += ", ";
        // a1 < threshold with probability `sel`; a2 varies per row so the
        // correlated-free subquery branch cannot be answer-cached away:
        // we use a *parameterized* inner predicate via a2 mod.
        sql += "(" + std::to_string(static_cast<int>(rng() % 1000)) + ", " +
               std::to_string(i) + ")";
      }
      MustExec(&db, sql);
    }
    MustExec(&db, "INSERT INTO t2 VALUES (16, 42)");
    if (!db.AnalyzeAll().ok()) return 1;
    // Defeat the memo for the measurement: evaluation counts come from
    // the none-cache mode, so every routed branch invocation is visible.
    db.options().exec.cache_mode = exec::SubqueryCacheMode::kNone;

    // The expensive disjunct is *correlated*, so it stays a per-tuple
    // evaluate-on-demand subquery (an uncorrelated one would be lifted
    // into a scalar-subquery join by the optimizer and evaluated once).
    std::string cheap = "t1.a1 < " + std::to_string(threshold);
    std::string pricey = "t1.a2 = (SELECT b2 FROM t2 WHERE t2.b1 = t1.a1)";

    size_t rows = 0;
    uint64_t evals_cheap_first = 0, evals_subq_first = 0;
    double us_cheap_first = MedianUs([&] {
      rows = MustRows(&db, "SELECT a1 FROM t1 WHERE " + cheap + " OR " + pricey);
      evals_cheap_first = db.last_metrics().exec_stats.subquery_evaluations;
    });
    size_t rows2 = 0;
    double us_subq_first = MedianUs([&] {
      rows2 = MustRows(&db, "SELECT a1 FROM t1 WHERE " + pricey + " OR " + cheap);
      evals_subq_first = db.last_metrics().exec_stats.subquery_evaluations;
    });
    if (rows != rows2) {
      std::fprintf(stderr, "ANSWER MISMATCH: %zu vs %zu\n", rows, rows2);
      return 1;
    }
    std::printf("%12.2f | %9zu | %12.0f %10llu | %12.0f %10llu\n", sel, rows,
                us_cheap_first,
                static_cast<unsigned long long>(evals_cheap_first),
                us_subq_first,
                static_cast<unsigned long long>(evals_subq_first));
  }
  std::printf("\nShape check: with the cheap branch first, subquery "
              "evaluations equal the rows the cheap branch rejected; with "
              "the subquery first, every row pays. Same answers either "
              "way — routing, not operator changes (§7).\n");
  return 0;
}
