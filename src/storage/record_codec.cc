#include "storage/record_codec.h"

#include <cstring>

namespace starburst {

namespace {

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

Result<uint32_t> GetU32(const uint8_t* data, size_t len, size_t* pos) {
  if (*pos + 4 > len) return Status::Internal("record decode: truncated u32");
  uint32_t v;
  std::memcpy(&v, data + *pos, 4);
  *pos += 4;
  return v;
}

Result<uint64_t> GetU64(const uint8_t* data, size_t len, size_t* pos) {
  if (*pos + 8 > len) return Status::Internal("record decode: truncated u64");
  uint64_t v;
  std::memcpy(&v, data + *pos, 8);
  *pos += 8;
  return v;
}

}  // namespace

std::string VarRecordCodec::Encode(const Row& row) {
  std::string out;
  EncodeTo(row, &out);
  return out;
}

void VarRecordCodec::EncodeTo(const Row& row, std::string* out_str) {
  std::string& out = *out_str;
  PutU32(&out, static_cast<uint32_t>(row.size()));
  for (const Value& v : row.values()) {
    out.push_back(static_cast<char>(v.type_id()));
    switch (v.type_id()) {
      case TypeId::kNull:
        break;
      case TypeId::kBool:
        out.push_back(v.bool_value() ? 1 : 0);
        break;
      case TypeId::kInt:
        PutU64(&out, static_cast<uint64_t>(v.int_value()));
        break;
      case TypeId::kDouble: {
        uint64_t bits;
        double d = v.double_value();
        std::memcpy(&bits, &d, 8);
        PutU64(&out, bits);
        break;
      }
      case TypeId::kString:
        PutU32(&out, static_cast<uint32_t>(v.string_value().size()));
        out.append(v.string_value());
        break;
      case TypeId::kExtension: {
        const Value::Ext& e = v.ext_value();
        PutU32(&out, static_cast<uint32_t>(e.type_name.size()));
        out.append(e.type_name);
        PutU32(&out, static_cast<uint32_t>(e.payload.size()));
        out.append(e.payload);
        break;
      }
    }
  }
}

Result<Row> VarRecordCodec::Decode(const std::string& bytes) {
  return Decode(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
}

Result<Row> VarRecordCodec::Decode(const uint8_t* data, size_t len) {
  Row row;
  STARBURST_RETURN_IF_ERROR(DecodeInto(data, len, &row));
  return row;
}

Status VarRecordCodec::DecodeInto(const uint8_t* data, size_t len, Row* row) {
  size_t pos = 0;
  STARBURST_ASSIGN_OR_RETURN(uint32_t n, GetU32(data, len, &pos));
  std::vector<Value>& values = row->values();
  values.clear();
  values.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (pos >= len) return Status::Internal("record decode: truncated tag");
    TypeId tag = static_cast<TypeId>(data[pos++]);
    switch (tag) {
      case TypeId::kNull:
        values.push_back(Value::Null());
        break;
      case TypeId::kBool:
        if (pos >= len) return Status::Internal("record decode: truncated bool");
        values.push_back(Value::Bool(data[pos++] != 0));
        break;
      case TypeId::kInt: {
        STARBURST_ASSIGN_OR_RETURN(uint64_t v, GetU64(data, len, &pos));
        values.push_back(Value::Int(static_cast<int64_t>(v)));
        break;
      }
      case TypeId::kDouble: {
        STARBURST_ASSIGN_OR_RETURN(uint64_t bits, GetU64(data, len, &pos));
        double d;
        std::memcpy(&d, &bits, 8);
        values.push_back(Value::Double(d));
        break;
      }
      case TypeId::kString: {
        STARBURST_ASSIGN_OR_RETURN(uint32_t slen, GetU32(data, len, &pos));
        if (pos + slen > len) return Status::Internal("record decode: truncated string");
        values.push_back(Value::String(
            std::string(reinterpret_cast<const char*>(data + pos), slen)));
        pos += slen;
        break;
      }
      case TypeId::kExtension: {
        STARBURST_ASSIGN_OR_RETURN(uint32_t nlen, GetU32(data, len, &pos));
        if (pos + nlen > len) return Status::Internal("record decode: truncated ext name");
        std::string name(reinterpret_cast<const char*>(data + pos), nlen);
        pos += nlen;
        STARBURST_ASSIGN_OR_RETURN(uint32_t plen, GetU32(data, len, &pos));
        if (pos + plen > len) return Status::Internal("record decode: truncated ext payload");
        std::string payload(reinterpret_cast<const char*>(data + pos), plen);
        pos += plen;
        values.push_back(Value::Extension(std::move(name), std::move(payload)));
        break;
      }
      default:
        return Status::Internal("record decode: bad type tag");
    }
  }
  return Status::OK();
}

Result<FixedRecordCodec> FixedRecordCodec::ForSchema(const TableSchema& schema) {
  FixedRecordCodec codec;
  codec.bitmap_bytes_ = (schema.num_columns() + 7) / 8;
  size_t off = codec.bitmap_bytes_;
  for (const ColumnDef& col : schema.columns()) {
    size_t width;
    switch (col.type.id) {
      case TypeId::kBool: width = 1; break;
      case TypeId::kInt: width = 8; break;
      case TypeId::kDouble: width = 8; break;
      default:
        return Status::InvalidArgument(
            "FIXED storage manager only stores fixed-width columns; column '" +
            col.name + "' has type " + col.type.ToString());
    }
    codec.column_types_.push_back(col.type.id);
    codec.offsets_.push_back(off);
    off += width;
  }
  codec.record_size_ = off;
  return codec;
}

Status FixedRecordCodec::Encode(const Row& row, uint8_t* out) const {
  if (row.size() != column_types_.size()) {
    return Status::Internal("fixed encode: row arity mismatch");
  }
  std::memset(out, 0, record_size_);
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (v.is_null()) {
      out[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
      continue;
    }
    switch (column_types_[i]) {
      case TypeId::kBool:
        if (v.type_id() != TypeId::kBool) {
          return Status::TypeError("fixed encode: expected BOOL");
        }
        out[offsets_[i]] = v.bool_value() ? 1 : 0;
        break;
      case TypeId::kInt: {
        STARBURST_ASSIGN_OR_RETURN(int64_t x, v.AsInt());
        std::memcpy(out + offsets_[i], &x, 8);
        break;
      }
      case TypeId::kDouble: {
        STARBURST_ASSIGN_OR_RETURN(double d, v.AsDouble());
        std::memcpy(out + offsets_[i], &d, 8);
        break;
      }
      default:
        return Status::Internal("fixed encode: unreachable type");
    }
  }
  return Status::OK();
}

Result<Row> FixedRecordCodec::Decode(const uint8_t* data) const {
  std::vector<Value> values;
  values.reserve(column_types_.size());
  for (size_t i = 0; i < column_types_.size(); ++i) {
    bool is_null = (data[i / 8] >> (i % 8)) & 1;
    if (is_null) {
      values.push_back(Value::Null());
      continue;
    }
    switch (column_types_[i]) {
      case TypeId::kBool:
        values.push_back(Value::Bool(data[offsets_[i]] != 0));
        break;
      case TypeId::kInt: {
        int64_t x;
        std::memcpy(&x, data + offsets_[i], 8);
        values.push_back(Value::Int(x));
        break;
      }
      case TypeId::kDouble: {
        double d;
        std::memcpy(&d, data + offsets_[i], 8);
        values.push_back(Value::Double(d));
        break;
      }
      default:
        return Status::Internal("fixed decode: unreachable type");
    }
  }
  return Row(std::move(values));
}

}  // namespace starburst
