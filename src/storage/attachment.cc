#include "storage/attachment.h"

namespace starburst {

AttachmentRegistry::AttachmentRegistry() {
  (void)Register("BTREE", [](const IndexDef& def, const TableSchema& schema)
                     -> Result<std::unique_ptr<Attachment>> {
    std::vector<size_t> key_columns;
    for (const std::string& col : def.key_columns) {
      std::optional<size_t> idx = schema.FindColumn(col);
      if (!idx.has_value()) {
        return Status::SemanticError("index '" + def.name + "': no column '" +
                                     col + "'");
      }
      key_columns.push_back(*idx);
    }
    return std::unique_ptr<Attachment>(
        new BTreeAttachment(def, std::move(key_columns)));
  });
}

Status AttachmentRegistry::Register(const std::string& access_method,
                                    AttachmentFactory factory) {
  std::string key = IdentUpper(access_method);
  if (!factories_.emplace(key, std::move(factory)).second) {
    return Status::AlreadyExists("access method '" + key + "' exists");
  }
  return Status::OK();
}

Result<const AttachmentFactory*> AttachmentRegistry::Lookup(
    const std::string& access_method) const {
  auto it = factories_.find(IdentUpper(access_method));
  if (it == factories_.end()) {
    return Status::NotFound("access method '" + IdentUpper(access_method) +
                            "' not registered");
  }
  return &it->second;
}

std::vector<std::string> AttachmentRegistry::Names() const {
  std::vector<std::string> names;
  for (const auto& [name, f] : factories_) names.push_back(name);
  return names;
}

}  // namespace starburst
