#include "common/row.h"

namespace starburst {

Row Row::Concat(const Row& other) const {
  std::vector<Value> out;
  out.reserve(values_.size() + other.values_.size());
  out.insert(out.end(), values_.begin(), values_.end());
  out.insert(out.end(), other.values_.begin(), other.values_.end());
  return Row(std::move(out));
}

int Row::CompareTotal(const Row& other) const {
  size_t n = values_.size() < other.values_.size() ? values_.size()
                                                   : other.values_.size();
  for (size_t i = 0; i < n; ++i) {
    int c = values_[i].CompareTotal(other.values_[i]);
    if (c != 0) return c;
  }
  if (values_.size() == other.values_.size()) return 0;
  return values_.size() < other.values_.size() ? -1 : 1;
}

size_t Row::Hash() const {
  size_t h = 0x345678;
  for (const Value& v : values_) {
    h = h * 1000003 ^ v.Hash();
  }
  return h;
}

size_t Row::MemoryBytes() const {
  size_t bytes = sizeof(Row) +
                 (values_.capacity() - values_.size()) * sizeof(Value);
  for (const Value& v : values_) bytes += v.MemoryBytes();
  return bytes;
}

std::string Row::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace starburst
