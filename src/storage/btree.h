#ifndef STARBURST_STORAGE_BTREE_H_
#define STARBURST_STORAGE_BTREE_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "storage/page.h"

namespace starburst {

/// Composite index key; ordered lexicographically by Value::CompareTotal
/// (NULLs first), so every column type — including extension types with a
/// registered comparator — is indexable.
using BTreeKey = std::vector<Value>;

int CompareBTreeKeys(const BTreeKey& a, const BTreeKey& b);

/// The built-in access method: a B+-tree mapping composite keys to record
/// ids. Non-unique keys hold a Rid list per key. Deletion is by lazy key
/// emptying (no rebalancing); lookups and scans stay correct, and the
/// node-visit counters still reflect real traversal work for the benches.
class BTree {
 public:
  struct Node;  // defined in btree.cc; opaque to clients

  struct Stats {
    uint64_t node_visits = 0;  // traversal work, the index "I/O" proxy
    uint64_t splits = 0;
  };

  explicit BTree(bool unique = false, size_t order = 64);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Fails with AlreadyExists on a duplicate key in a unique tree.
  Status Insert(const BTreeKey& key, Rid rid);
  /// Removes one (key, rid) posting; NotFound if absent.
  Status Remove(const BTreeKey& key, Rid rid);

  /// All rids with exactly `key`.
  std::vector<Rid> Lookup(const BTreeKey& key);

  /// Ordered scan of keys in [lo, hi]; null bound = unbounded on that side.
  class Iterator {
   public:
    virtual ~Iterator() = default;
    virtual bool Next(BTreeKey* key, Rid* rid) = 0;
  };
  std::unique_ptr<Iterator> Scan(const BTreeKey* lo, bool lo_inclusive,
                                 const BTreeKey* hi, bool hi_inclusive);

  size_t size() const { return entry_count_; }
  size_t height() const;
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

 private:
  Node* FindLeaf(const BTreeKey& key);
  void SplitChild(Node* parent, size_t child_index);

  std::unique_ptr<Node> root_;
  bool unique_;
  size_t order_;
  size_t entry_count_ = 0;
  Stats stats_;
};

}  // namespace starburst

#endif  // STARBURST_STORAGE_BTREE_H_
