#ifndef STARBURST_OBS_METRICS_H_
#define STARBURST_OBS_METRICS_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace starburst::obs {

/// A monotonic event count. Incrementing is one relaxed atomic add — the
/// same discipline as the Tracer's disabled path — so instrumentation can
/// stay compiled into hot paths unconditionally.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Mirrors an externally maintained monotonic counter (a layer that
  /// already keeps its own atomic tally, e.g. the buffer pool) into the
  /// registry. The source is monotonic, so the mirror stays a counter.
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time level (entries resident, bytes live). Set/read only.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// A fixed-boundary histogram: `bounds` are inclusive upper edges of the
/// first N buckets; everything past the last edge lands in an overflow
/// bucket. Observe() is a short linear scan plus relaxed atomic adds (no
/// locks), so it can sit on the per-statement path. Percentiles are
/// estimated by linear interpolation inside the winning bucket; the
/// overflow bucket reports the true maximum observed.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  /// `q` in (0, 1]; returns 0 with no observations.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (bounds().size() + 1 entries, overflow last).
  std::vector<uint64_t> BucketCounts() const;

 private:
  std::vector<double> bounds_;  // sorted ascending
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> max_{0};
};

/// Engine-wide registry of named metrics. Registration (the first lookup
/// of a name) takes a mutex; the returned pointers are stable for the
/// registry's lifetime, so instrumented code resolves each metric once
/// and thereafter touches only its atomics.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// Creates with `bounds` on first use; later calls return the existing
  /// histogram regardless of bounds.
  Histogram* histogram(const std::string& name, std::vector<double> bounds);

  /// Default microsecond latency edges: 100us .. 10s, roughly 1-2.5-5
  /// per decade.
  static std::vector<double> LatencyBoundsUs();

  /// One flattened row per metric value — counters and gauges directly,
  /// histograms expanded to <name>_count/_sum/_p50/_p95/_p99 — the exact
  /// relation `sys.metrics` serves.
  struct Sample {
    std::string name;
    std::string kind;  // "counter" | "gauge" | "histogram"
    double value = 0;
  };
  std::vector<Sample> Snapshot() const;

  /// Prometheus-style text exposition: `# TYPE` lines, counters and
  /// gauges as plain samples, histograms as summaries with quantile
  /// labels.
  std::string RenderText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace starburst::obs

#endif  // STARBURST_OBS_METRICS_H_
