file(REMOVE_RECURSE
  "CMakeFiles/starburst_engine.dir/engine/database.cc.o"
  "CMakeFiles/starburst_engine.dir/engine/database.cc.o.d"
  "CMakeFiles/starburst_engine.dir/engine/result_set.cc.o"
  "CMakeFiles/starburst_engine.dir/engine/result_set.cc.o.d"
  "libstarburst_engine.a"
  "libstarburst_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starburst_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
