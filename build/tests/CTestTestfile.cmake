# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_storage "/root/repo/build/tests/test_storage")
set_tests_properties(test_storage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_parser "/root/repo/build/tests/test_parser")
set_tests_properties(test_parser PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_qgm "/root/repo/build/tests/test_qgm")
set_tests_properties(test_qgm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_rewrite "/root/repo/build/tests/test_rewrite")
set_tests_properties(test_rewrite PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_optimizer "/root/repo/build/tests/test_optimizer")
set_tests_properties(test_optimizer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_exec "/root/repo/build/tests/test_exec")
set_tests_properties(test_exec PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_engine "/root/repo/build/tests/test_engine")
set_tests_properties(test_engine PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_observability "/root/repo/build/tests/test_observability")
set_tests_properties(test_observability PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sql_surface "/root/repo/build/tests/test_sql_surface")
set_tests_properties(test_sql_surface PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_extensions "/root/repo/build/tests/test_extensions")
set_tests_properties(test_extensions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
