#ifndef STARBURST_REWRITE_RULE_ENGINE_H_
#define STARBURST_REWRITE_RULE_ENGINE_H_

#include <functional>
#include <random>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "qgm/box.h"

namespace starburst::rewrite {

/// What a rule sees when it is given a chance to fire: the whole graph and
/// the box the search facility is currently focused on (§5: "Its role is
/// to browse through QGM, providing the context for the rules to work on").
struct RuleContext {
  qgm::Graph* graph = nullptr;
  qgm::Box* box = nullptr;
  const Catalog* catalog = nullptr;
};

/// An IF/THEN query-rewrite rule. Per the paper (§5), the rule language is
/// the host language: the condition and the action are each ordinary
/// functions, and the rule writer guarantees that the action maps a
/// consistent QGM to a consistent QGM (a complete transformation).
struct RewriteRule {
  std::string name;
  /// Rules group into classes "to limit the number of rules that have to
  /// be examined ... and to give the DBC more explicit control".
  std::string rule_class;
  /// For the priority control strategy (higher fires first).
  int priority = 0;
  /// For the statistical control strategy (relative weight).
  double weight = 1.0;

  std::function<bool(const RuleContext&)> condition;
  std::function<Status(RuleContext&)> action;
};

/// The rule engine: forward chaining over the QGM until no rule fires or
/// the budget is exhausted — in which case "processing stops at a
/// consistent state (of QGM)".
class RuleEngine {
 public:
  enum class ControlStrategy { kSequential, kPriority, kStatistical };
  enum class SearchOrder { kDepthFirst, kBreadthFirst };

  struct Options {
    ControlStrategy control = ControlStrategy::kSequential;
    SearchOrder search = SearchOrder::kDepthFirst;
    /// Maximum number of rule firings; <0 = unlimited.
    int budget = -1;
    /// Empty = all classes enabled.
    std::vector<std::string> enabled_classes;
    /// Seed for the statistical strategy.
    uint64_t seed = 42;
    /// Validate the QGM after every firing (tests; costs time).
    bool paranoid_validation = false;
  };

  struct Stats {
    /// One rule firing: the shared provenance log EXPLAIN and the tracer
    /// both consume. Box identity is captured before garbage collection
    /// so it survives the box being merged away.
    struct Firing {
      std::string rule;
      int box_id = 0;
      std::string box_label;  // e.g. "OP2(SELECT)"
      int pass = 0;
      /// Steady-clock microseconds (same timebase as obs::NowUs), so
      /// firings can be replayed into a trace as instant events.
      double at_us = 0;
    };

    int rules_fired = 0;
    int conditions_evaluated = 0;
    int passes = 0;
    bool budget_exhausted = false;
    /// Aggregated (rule, count), sorted by rule name; derived from
    /// `firings` after the run.
    std::vector<std::pair<std::string, int>> fired_by_rule;
    /// Every firing in order.
    std::vector<Firing> firings;
  };

  RuleEngine() = default;

  Status AddRule(RewriteRule rule);
  size_t rule_count() const { return rules_.size(); }
  std::vector<std::string> RuleNames() const;

  /// Runs the rules to fixpoint (or budget). The graph is transformed in
  /// place and remains valid.
  Result<Stats> Run(qgm::Graph* graph, const Catalog* catalog,
                    const Options& options);
  Result<Stats> Run(qgm::Graph* graph, const Catalog* catalog);

 private:
  std::vector<RewriteRule> rules_;
};

/// Builds the engine pre-loaded with the base system's rewrite rules:
/// operation merging (incl. view merge), subquery-to-join, predicate
/// migration (push-down, transitivity), projection pruning, and constant
/// folding. A DBC adds rules on top via AddRule.
RuleEngine MakeDefaultRuleEngine();
void RegisterMergeRules(RuleEngine* engine);
void RegisterPredicateRules(RuleEngine* engine);
void RegisterProjectionRules(RuleEngine* engine);
void RegisterMiscRules(RuleEngine* engine);
/// Rewrite rules for recursive queries (§5's magic-sets direction):
/// selection push-down into the recursion base over invariant columns.
void RegisterRecursionRules(RuleEngine* engine);

// -- shared helpers for rule authors ---------------------------------------

/// How many quantifiers anywhere in the graph range over `box`.
int CountReferences(const qgm::Graph& graph, const qgm::Box* box);

/// True if the subtree rooted at `sub` references quantifiers owned
/// outside that subtree (a correlated subquery).
bool IsCorrelated(const qgm::Graph& graph, qgm::Box* sub);

/// Applies `fn` to every expression slot of `box` (predicates, head
/// expressions, group keys, aggregate arguments).
void ForEachExprSlot(qgm::Box* box,
                     const std::function<void(qgm::ExprPtr*)>& fn);

/// Rewrites every reference to `from` (in all boxes) to `to` with the
/// given column remap (empty = identity).
void RemapEverywhere(qgm::Graph* graph, const qgm::Quantifier* from,
                     qgm::Quantifier* to, const std::vector<size_t>& map);

/// Replaces references to `from`'s columns everywhere by clones of the
/// given head expressions.
void InlineEverywhere(qgm::Graph* graph, const qgm::Quantifier* from,
                      const std::vector<const qgm::Expr*>& replacements);

}  // namespace starburst::rewrite

#endif  // STARBURST_REWRITE_RULE_ENGINE_H_
