#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace starburst::optimizer {

using qgm::Expr;

namespace {

/// Traces a column expression through SELECT-box heads down to a stored
/// column; returns (table, column name) or nulls.
std::pair<const TableDef*, std::string> ResolveBaseColumn(const Expr& e) {
  const Expr* cur = &e;
  for (int depth = 0; depth < 16; ++depth) {
    if (cur->kind != Expr::Kind::kColumnRef || cur->quantifier == nullptr) {
      return {nullptr, ""};
    }
    const qgm::Box* input = cur->quantifier->input;
    if (input == nullptr) return {nullptr, ""};
    if (input->kind == qgm::BoxKind::kBaseTable) {
      if (cur->column >= input->head.size()) return {nullptr, ""};
      return {input->table, input->head[cur->column].name};
    }
    if (cur->column >= input->head.size() ||
        input->head[cur->column].expr == nullptr) {
      return {nullptr, ""};
    }
    cur = input->head[cur->column].expr.get();
  }
  return {nullptr, ""};
}

double LiteralAsDouble(const Expr& e, bool* ok) {
  *ok = false;
  if (e.kind != Expr::Kind::kLiteral) return 0;
  Result<double> d = e.literal.AsDouble();
  if (!d.ok()) return 0;
  *ok = true;
  return *d;
}

}  // namespace

double CostModel::TableRows(const TableDef* table) const {
  if (table == nullptr || table->stats.row_count <= 0) {
    return params_.default_table_rows;
  }
  return table->stats.row_count;
}

double CostModel::TablePages(const TableDef* table) const {
  if (table == nullptr || table->stats.page_count <= 0) {
    return std::max(1.0, TableRows(table) / 64.0);
  }
  return table->stats.page_count;
}

double CostModel::ColumnNdv(const Expr& e) const {
  auto [table, column] = ResolveBaseColumn(e);
  if (table == nullptr) return 0;
  const ColumnStats* stats = table->stats.FindColumn(column);
  if (stats == nullptr || stats->distinct_count <= 0) return 0;
  return stats->distinct_count;
}

double CostModel::Selectivity(const Expr& pred) const {
  switch (pred.kind) {
    case Expr::Kind::kBinary: {
      // col = literal: 1/NDV; col = col: 1/max(NDV, NDV).
      auto equality_selectivity = [&]() {
        double ndv_l = ColumnNdv(*pred.children[0]);
        double ndv_r = ColumnNdv(*pred.children[1]);
        if (pred.children[1]->kind == Expr::Kind::kLiteral && ndv_l > 0) {
          return 1.0 / ndv_l;
        }
        if (pred.children[0]->kind == Expr::Kind::kLiteral && ndv_r > 0) {
          return 1.0 / ndv_r;
        }
        double ndv = std::max(ndv_l, ndv_r);
        if (ndv > 0) return 1.0 / ndv;
        return params_.default_eq_selectivity;
      };
      switch (pred.bop) {
        case ast::BinaryOp::kEq:
          return equality_selectivity();
        case ast::BinaryOp::kNe:
          return std::clamp(1.0 - equality_selectivity(), 0.001, 1.0);
        case ast::BinaryOp::kLt:
        case ast::BinaryOp::kLe:
        case ast::BinaryOp::kGt:
        case ast::BinaryOp::kGe: {
          // Interpolate against min/max when the comparison is col vs lit.
          const Expr* col = pred.children[0].get();
          const Expr* lit = pred.children[1].get();
          bool flipped = false;
          if (col->kind == Expr::Kind::kLiteral) {
            std::swap(col, lit);
            flipped = true;
          }
          auto [table, name] = ResolveBaseColumn(*col);
          bool ok = false;
          double v = LiteralAsDouble(*lit, &ok);
          if (table != nullptr && ok) {
            const ColumnStats* stats = table->stats.FindColumn(name);
            if (stats != nullptr && stats->min_value && stats->max_value) {
              Result<double> lo = stats->min_value->AsDouble();
              Result<double> hi = stats->max_value->AsDouble();
              if (lo.ok() && hi.ok() && *hi > *lo) {
                double frac = (v - *lo) / (*hi - *lo);
                frac = std::clamp(frac, 0.0, 1.0);
                bool less = pred.bop == ast::BinaryOp::kLt ||
                            pred.bop == ast::BinaryOp::kLe;
                if (flipped) less = !less;
                return std::clamp(less ? frac : 1.0 - frac, 0.001, 1.0);
              }
            }
          }
          return params_.default_range_selectivity;
        }
        case ast::BinaryOp::kAnd:
          return Selectivity(*pred.children[0]) * Selectivity(*pred.children[1]);
        case ast::BinaryOp::kOr: {
          double a = Selectivity(*pred.children[0]);
          double b = Selectivity(*pred.children[1]);
          return std::min(1.0, a + b - a * b);
        }
        default:
          return 1.0;  // arithmetic inside predicates: no restriction
      }
    }
    case Expr::Kind::kUnary:
      if (pred.uop == ast::UnaryOp::kNot) {
        return std::clamp(1.0 - Selectivity(*pred.children[0]), 0.001, 1.0);
      }
      return 1.0;
    case Expr::Kind::kIsNull: {
      auto [table, name] = ResolveBaseColumn(*pred.children[0]);
      double frac = 0.05;
      if (table != nullptr) {
        const ColumnStats* stats = table->stats.FindColumn(name);
        if (stats != nullptr) frac = std::max(stats->null_fraction, 0.001);
      }
      return pred.negated ? 1.0 - frac : frac;
    }
    case Expr::Kind::kLike:
      return 0.25;
    case Expr::Kind::kInList: {
      double ndv = ColumnNdv(*pred.children[0]);
      double n = static_cast<double>(pred.children.size() - 1);
      if (ndv > 0) return std::min(1.0, n / ndv);
      return std::min(1.0, n * params_.default_eq_selectivity);
    }
    case Expr::Kind::kExistsTest:
      return pred.negated ? 0.5 : 0.5;
    case Expr::Kind::kQuantCompare:
      return 0.25;
    default:
      return 0.5;
  }
}

double CostModel::CombinedSelectivity(
    const std::vector<const Expr*>& preds) const {
  double s = 1.0;
  for (const Expr* p : preds) s *= Selectivity(*p);
  return std::max(s, 1e-9);
}

double CostModel::GroupCount(const std::vector<qgm::ExprPtr>& keys,
                             double input_rows) const {
  if (keys.empty()) return 1.0;
  double product = 1.0;
  bool known = false;
  for (const auto& k : keys) {
    double ndv = ColumnNdv(*k);
    if (ndv > 0) {
      product *= ndv;
      known = true;
    }
  }
  if (!known) return std::max(1.0, input_rows / 10.0);
  return std::max(1.0, std::min(product, input_rows));
}

bool CostModel::KindEmitsOuterOnly(JoinKind k) const {
  return k == JoinKind::kExists || k == JoinKind::kAnti ||
         k == JoinKind::kOpAll || k == JoinKind::kSetPred;
}

double CostModel::JoinOutputCard(const Plan& p) const {
  double outer = p.inputs[0]->props.cardinality;
  double inner = p.inputs[1]->props.cardinality;
  switch (p.join_kind) {
    case JoinKind::kExists:
      return outer * 0.5;
    case JoinKind::kAnti:
      return outer * 0.5;
    case JoinKind::kOpAll:
    case JoinKind::kSetPred:
      return outer * 0.5;
    case JoinKind::kScalar:
      return outer;
    case JoinKind::kLeftOuter: {
      std::vector<const Expr*> preds = p.predicates;
      double matched = outer * inner * CombinedSelectivity(preds);
      return std::max(matched, outer);  // every outer row survives
    }
    case JoinKind::kRegular:
    default: {
      std::vector<const Expr*> preds = p.predicates;
      return std::max(outer * inner * CombinedSelectivity(preds), 0.0);
    }
  }
}

void CostModel::FinishScan(Plan* p) const {
  double rows = TableRows(p->table);
  double pages = TablePages(p->table);
  double sel = CombinedSelectivity(p->predicates);
  p->props.cardinality = std::max(rows * sel, 0.0);
  p->props.cost = pages * params_.io_page +
                  rows * (params_.cpu_tuple +
                          params_.cpu_pred * p->predicates.size());
  p->props.rescan_cost = p->props.cost;
  p->props.order.clear();
  if (p->table != nullptr) p->props.site = p->table->site;
}

void CostModel::FinishIndexScan(Plan* p) const {
  double rows = TableRows(p->table);
  double index_sel = p->index_predicate != nullptr
                         ? Selectivity(*p->index_predicate)
                         : 1.0;
  double matched = rows * index_sel;
  double residual_sel = CombinedSelectivity(p->predicates);
  p->props.cardinality = std::max(matched * residual_sel, 0.0);
  double levels = std::max(1.0, std::log2(std::max(rows, 2.0)) / 6.0);
  p->props.cost = levels * params_.index_level +
                  matched * (params_.rid_fetch + params_.cpu_tuple +
                             params_.cpu_pred * p->predicates.size());
  p->props.rescan_cost = p->props.cost;
  // A single-column ascending order on the index's first key column.
  p->props.order.clear();
  if (p->table != nullptr) p->props.site = p->table->site;
  if (p->index != nullptr && !p->index->key_columns.empty() &&
      p->table != nullptr) {
    std::optional<size_t> col =
        p->table->schema.FindColumn(p->index->key_columns[0]);
    if (col.has_value()) {
      size_t slot = p->FindSlot(p->quantifier, *col);
      if (slot != Plan::kNoSlot) p->props.order.push_back({slot, true});
    }
  }
}

void CostModel::FinishValues(Plan* p, size_t rows) const {
  p->props.cardinality = static_cast<double>(rows);
  p->props.cost = rows * params_.cpu_tuple;
  p->props.rescan_cost = p->props.cost;
}

void CostModel::FinishFilter(Plan* p) const {
  const PlanProps& in = p->inputs[0]->props;
  double sel = CombinedSelectivity(p->predicates);
  bool has_subquery = false;
  for (const Expr* e : p->predicates) {
    std::set<qgm::Quantifier*> qs;
    e->CollectQuantifiers(&qs);
    for (qgm::Quantifier* q : qs) {
      if (!q->ContributesTuples()) has_subquery = true;
    }
  }
  double per_row = params_.cpu_pred * p->predicates.size() *
                   (has_subquery ? params_.subquery_pred_factor : 1.0);
  p->props.cardinality = in.cardinality * sel;
  p->props.cost = in.cost + in.cardinality * per_row;
  p->props.rescan_cost = in.rescan_cost + in.cardinality * per_row;
  p->props.order = in.order;  // filter preserves order
  p->props.site = in.site;
}

void CostModel::FinishProject(Plan* p) const {
  const PlanProps& in = p->inputs[0]->props;
  p->props.cardinality = in.cardinality;
  p->props.cost = in.cost + in.cardinality * params_.cpu_tuple;
  p->props.rescan_cost = in.rescan_cost + in.cardinality * params_.cpu_tuple;
  p->props.site = in.site;
  // Projection scrambles slot numbering; order is conservatively dropped.
}

void CostModel::FinishSort(Plan* p) const {
  const PlanProps& in = p->inputs[0]->props;
  double n = std::max(in.cardinality, 2.0);
  double sort_cost = params_.cpu_sort * n * std::log2(n);
  p->props.cardinality = in.cardinality;
  p->props.cost = in.cost + sort_cost;
  // A sorted result is materialized: rescans are cheap.
  p->props.rescan_cost = in.cardinality * params_.cpu_tuple;
  p->props.order = p->sort_keys;
  p->props.site = in.site;
}

void CostModel::FinishNlJoin(Plan* p) const {
  const PlanProps& outer = p->inputs[0]->props;
  const PlanProps& inner = p->inputs[1]->props;
  p->props.cardinality = JoinOutputCard(*p);
  double rescans = std::max(outer.cardinality, 1.0);
  p->props.cost = outer.cost + inner.cost +
                  (rescans - 1) * inner.rescan_cost +
                  outer.cardinality * inner.cardinality *
                      (params_.cpu_pred * std::max<size_t>(p->predicates.size(), 1));
  p->props.rescan_cost = p->props.cost;
  p->props.order = outer.order;  // NL preserves outer order
  p->props.site = outer.site;
}

void CostModel::FinishMergeJoin(Plan* p) const {
  const PlanProps& outer = p->inputs[0]->props;
  const PlanProps& inner = p->inputs[1]->props;
  p->props.cardinality = JoinOutputCard(*p);
  p->props.cost = outer.cost + inner.cost +
                  (outer.cardinality + inner.cardinality) * params_.cpu_tuple +
                  p->props.cardinality * params_.cpu_tuple;
  p->props.rescan_cost = p->props.cost;
  p->props.order = outer.order;  // merge preserves the (sorted) outer order
  p->props.site = outer.site;
}

void CostModel::FinishHashJoin(Plan* p) const {
  const PlanProps& outer = p->inputs[0]->props;
  const PlanProps& inner = p->inputs[1]->props;
  p->props.cardinality = JoinOutputCard(*p);
  p->props.cost = outer.cost + inner.cost +
                  inner.cardinality * params_.cpu_hash +   // build
                  outer.cardinality * params_.cpu_hash +   // probe
                  p->props.cardinality * params_.cpu_tuple;
  p->props.rescan_cost = p->props.cost;
  p->props.order = outer.order;  // streaming probe preserves outer order
  p->props.site = outer.site;
}

void CostModel::FinishTemp(Plan* p) const {
  const PlanProps& in = p->inputs[0]->props;
  p->props.cardinality = in.cardinality;
  p->props.cost = in.cost + in.cardinality * params_.cpu_tuple;
  p->props.rescan_cost = in.cardinality * params_.cpu_tuple;
  p->props.order = in.order;
  p->props.site = in.site;
}

void CostModel::FinishShip(Plan* p) const {
  const PlanProps& in = p->inputs[0]->props;
  p->props.cardinality = in.cardinality;
  p->props.cost = in.cost + params_.ship_latency +
                  in.cardinality * params_.ship_per_row;
  p->props.rescan_cost = p->props.cost;
  p->props.order = in.order;
  p->props.site = p->to_site;
}

void CostModel::FinishGroupAgg(Plan* p, double groups) const {
  const PlanProps& in = p->inputs[0]->props;
  p->props.cardinality = std::max(1.0, groups);
  p->props.cost = in.cost + in.cardinality * params_.cpu_hash +
                  groups * params_.cpu_tuple;
  p->props.rescan_cost = groups * params_.cpu_tuple;
  p->props.site = in.site;
}

void CostModel::FinishSetOp(Plan* p) const {
  const PlanProps& l = p->inputs[0]->props;
  const PlanProps& r = p->inputs[1]->props;
  double out;
  switch (p->box != nullptr ? p->box->setop : ast::SetOpKind::kUnion) {
    case ast::SetOpKind::kUnion: out = l.cardinality + r.cardinality; break;
    case ast::SetOpKind::kIntersect:
      out = std::min(l.cardinality, r.cardinality) * 0.5;
      break;
    case ast::SetOpKind::kExcept: out = l.cardinality * 0.5; break;
    default: out = l.cardinality + r.cardinality; break;
  }
  p->props.cardinality = std::max(1.0, out);
  p->props.cost = l.cost + r.cost +
                  (l.cardinality + r.cardinality) * params_.cpu_hash;
  p->props.rescan_cost = p->props.cardinality * params_.cpu_tuple;
  p->props.site = l.site;
}

void CostModel::FinishDistinct(Plan* p) const {
  const PlanProps& in = p->inputs[0]->props;
  p->props.cardinality = std::max(1.0, in.cardinality * 0.8);
  p->props.cost = in.cost + in.cardinality * params_.cpu_hash;
  p->props.rescan_cost = p->props.cardinality * params_.cpu_tuple;
  p->props.order = in.order;
  p->props.site = in.site;
}

void CostModel::FinishTableFunc(Plan* p) const {
  double in_cost = 0, in_card = 0;
  for (const PlanPtr& input : p->inputs) {
    in_cost += input->props.cost;
    in_card += input->props.cardinality;
  }
  p->props.cardinality = std::max(1.0, in_card);
  p->props.cost = in_cost + in_card * params_.cpu_tuple * 2;
  p->props.rescan_cost = p->props.cardinality * params_.cpu_tuple;
}

void CostModel::FinishRecurse(Plan* p) const {
  const PlanProps& base = p->inputs[0]->props;
  const PlanProps& step = p->inputs[1]->props;
  // Assume ~5 iterations as a default fixpoint depth.
  p->props.cardinality = std::max(1.0, base.cardinality * 5);
  p->props.cost = base.cost + 5 * step.cost +
                  p->props.cardinality * params_.cpu_hash;
  p->props.rescan_cost = p->props.cardinality * params_.cpu_tuple;
}

void CostModel::FinishIterRef(Plan* p, double working_rows) const {
  p->props.cardinality = std::max(1.0, working_rows);
  p->props.cost = p->props.cardinality * params_.cpu_tuple;
  p->props.rescan_cost = p->props.cost;
}

void CostModel::FinishOrRoute(Plan* p) const {
  const PlanProps& in = p->inputs[0]->props;
  p->props.cardinality = in.cardinality * 0.5;
  p->props.cost = in.cost + in.cardinality * params_.cpu_pred *
                                params_.subquery_pred_factor;
  p->props.rescan_cost = p->props.cost;
  p->props.site = in.site;
}

}  // namespace starburst::optimizer
