# Empty dependencies file for starburst_exec.
# This may be replaced when dependencies are built.
