
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qgm/binder.cc" "src/CMakeFiles/starburst_qgm.dir/qgm/binder.cc.o" "gcc" "src/CMakeFiles/starburst_qgm.dir/qgm/binder.cc.o.d"
  "/root/repo/src/qgm/box.cc" "src/CMakeFiles/starburst_qgm.dir/qgm/box.cc.o" "gcc" "src/CMakeFiles/starburst_qgm.dir/qgm/box.cc.o.d"
  "/root/repo/src/qgm/expr.cc" "src/CMakeFiles/starburst_qgm.dir/qgm/expr.cc.o" "gcc" "src/CMakeFiles/starburst_qgm.dir/qgm/expr.cc.o.d"
  "/root/repo/src/qgm/graph.cc" "src/CMakeFiles/starburst_qgm.dir/qgm/graph.cc.o" "gcc" "src/CMakeFiles/starburst_qgm.dir/qgm/graph.cc.o.d"
  "/root/repo/src/qgm/printer.cc" "src/CMakeFiles/starburst_qgm.dir/qgm/printer.cc.o" "gcc" "src/CMakeFiles/starburst_qgm.dir/qgm/printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/starburst_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
