# Empty dependencies file for starburst_obs.
# This may be replaced when dependencies are built.
