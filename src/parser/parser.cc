#include "parser/parser.h"

#include <chrono>

#include "catalog/schema.h"
#include "parser/lexer.h"

namespace starburst {

using ast::BinaryOp;
using ast::ExprPtr;

namespace {

/// Keywords that terminate an implicit alias position. Hydrogen keywords
/// are not reserved in general, but an alias may not be one of these.
bool IsClauseKeyword(const std::string& ident) {
  static const char* kClauseWords[] = {
      "WHERE", "GROUP", "HAVING", "ORDER", "UNION", "INTERSECT", "EXCEPT",
      "ON", "JOIN", "LEFT", "RIGHT", "INNER", "OUTER", "CROSS", "LIMIT",
      "SET", "VALUES", "USING", "AS", "FROM", "AND", "OR", "NOT", "IN",
      "BETWEEN", "LIKE", "IS", "EXISTS", "SELECT", "WITH", "RECURSIVE",
      "DISTINCT", "ALL", "ASC", "DESC", "WHEN", "THEN", "ELSE", "END",
  };
  for (const char* kw : kClauseWords) {
    if (IdentEquals(ident, kw)) return true;
  }
  return false;
}

bool IsComparisonOp(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEq:
    case TokenKind::kNe:
    case TokenKind::kLt:
    case TokenKind::kLe:
    case TokenKind::kGt:
    case TokenKind::kGe:
      return true;
    default:
      return false;
  }
}

BinaryOp ComparisonOp(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEq: return BinaryOp::kEq;
    case TokenKind::kNe: return BinaryOp::kNe;
    case TokenKind::kLt: return BinaryOp::kLt;
    case TokenKind::kLe: return BinaryOp::kLe;
    case TokenKind::kGt: return BinaryOp::kGt;
    default: return BinaryOp::kGe;
  }
}

}  // namespace

Status Parser::EnsureTokens() {
  if (tokenized_) return Status::OK();
  Lexer lexer(sql_);
  STARBURST_ASSIGN_OR_RETURN(tokens_, lexer.Tokenize());
  tokenized_ = true;
  pos_ = 0;
  return Status::OK();
}

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // EOF token
  return tokens_[i];
}

Token Parser::Advance() {
  Token t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::CheckKeyword(const char* kw, size_t ahead) const {
  const Token& t = Peek(ahead);
  return t.kind == TokenKind::kIdentifier && IdentEquals(t.text, kw);
}

bool Parser::MatchToken(TokenKind kind) {
  if (Check(kind)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::MatchKeyword(const char* kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

Result<Token> Parser::Expect(TokenKind kind, const char* what) {
  if (!Check(kind)) {
    return Status::SyntaxError(std::string("expected ") + what + " but found " +
                               Peek().Describe() + " at line " +
                               std::to_string(Peek().line));
  }
  return Advance();
}

Status Parser::ExpectKeyword(const char* kw) {
  if (!MatchKeyword(kw)) {
    return Status::SyntaxError(std::string("expected ") + kw + " but found " +
                               Peek().Describe() + " at line " +
                               std::to_string(Peek().line));
  }
  return Status::OK();
}

Result<std::string> Parser::ExpectIdentifier(const char* what) {
  STARBURST_ASSIGN_OR_RETURN(Token t, Expect(TokenKind::kIdentifier, what));
  return t.text;
}

Result<std::string> Parser::ParseQualifiedTableName(const char* what) {
  STARBURST_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier(what));
  while (Check(TokenKind::kDot) && Peek(1).kind == TokenKind::kIdentifier) {
    Advance();  // '.'
    name += '.';
    name += Advance().text;
  }
  return name;
}

Status Parser::ErrorHere(const std::string& message) const {
  return Status::SyntaxError(message + " (found " + Peek().Describe() +
                             " at line " + std::to_string(Peek().line) + ")");
}

bool Parser::AtQueryStart(size_t ahead) const {
  if (CheckKeyword("SELECT", ahead) || CheckKeyword("WITH", ahead)) return true;
  if (Peek(ahead).kind == TokenKind::kLParen) return AtQueryStart(ahead + 1);
  return false;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

Result<ast::StatementPtr> Parser::ParseStatement() {
  STARBURST_RETURN_IF_ERROR(EnsureTokens());
  STARBURST_ASSIGN_OR_RETURN(ast::StatementPtr stmt, ParseStatementInner());
  MatchToken(TokenKind::kSemicolon);
  if (!Check(TokenKind::kEof)) {
    return ErrorHere("trailing input after statement");
  }
  return stmt;
}

Result<std::vector<ast::StatementPtr>> Parser::ParseScript() {
  STARBURST_RETURN_IF_ERROR(EnsureTokens());
  statement_parse_us_.clear();
  std::vector<ast::StatementPtr> out;
  while (!Check(TokenKind::kEof)) {
    if (MatchToken(TokenKind::kSemicolon)) continue;
    auto start = std::chrono::steady_clock::now();
    STARBURST_ASSIGN_OR_RETURN(ast::StatementPtr stmt, ParseStatementInner());
    statement_parse_us_.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count());
    out.push_back(std::move(stmt));
    if (!Check(TokenKind::kEof)) {
      STARBURST_RETURN_IF_ERROR(
          Expect(TokenKind::kSemicolon, "';'").status());
    }
  }
  return out;
}

Result<std::unique_ptr<ast::Query>> Parser::ParseQueryText(
    const std::string& sql) {
  Parser parser(sql);
  STARBURST_RETURN_IF_ERROR(parser.EnsureTokens());
  STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<ast::Query> q, parser.ParseQuery());
  parser.MatchToken(TokenKind::kSemicolon);
  if (!parser.Check(TokenKind::kEof)) {
    return parser.ErrorHere("trailing input after query");
  }
  return q;
}

Result<ast::StatementPtr> Parser::ParseStatementInner() {
  if (CheckKeyword("SELECT") || CheckKeyword("WITH") ||
      Check(TokenKind::kLParen)) {
    STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<ast::Query> q, ParseQuery());
    return ast::StatementPtr(new ast::SelectStatement(std::move(q)));
  }
  if (CheckKeyword("CREATE")) return ParseCreate();
  if (CheckKeyword("DROP")) return ParseDrop();
  if (CheckKeyword("INSERT")) return ParseInsert();
  if (CheckKeyword("UPDATE")) return ParseUpdate();
  if (CheckKeyword("DELETE")) return ParseDelete();
  if (CheckKeyword("EXPLAIN")) return ParseExplain();
  if (MatchKeyword("SET")) {
    auto stmt = std::make_unique<ast::SetStatement>();
    STARBURST_ASSIGN_OR_RETURN(std::string name,
                               ExpectIdentifier("option name"));
    stmt->name = IdentUpper(name);
    STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kEq, "'='").status());
    if (MatchKeyword("DEFAULT")) {
      stmt->is_default = true;
    } else {
      bool negative = MatchToken(TokenKind::kMinus);
      STARBURST_ASSIGN_OR_RETURN(Token value,
                                 Expect(TokenKind::kIntLiteral, "integer"));
      stmt->value = negative ? -value.int_value : value.int_value;
      // Optional byte-unit suffix for the memory knobs:
      // SET SORT_MEMORY = 64 KB.
      int64_t unit = 1;
      if (MatchKeyword("K") || MatchKeyword("KB")) {
        unit = 1024;
      } else if (MatchKeyword("M") || MatchKeyword("MB")) {
        unit = 1024 * 1024;
      } else if (MatchKeyword("G") || MatchKeyword("GB")) {
        unit = 1024 * 1024 * 1024;
      }
      stmt->value *= unit;
    }
    return ast::StatementPtr(std::move(stmt));
  }
  if (MatchKeyword("KILL")) {
    auto stmt = std::make_unique<ast::KillStatement>();
    STARBURST_ASSIGN_OR_RETURN(Token value,
                               Expect(TokenKind::kIntLiteral, "statement id"));
    stmt->statement_id = value.int_value;
    return ast::StatementPtr(std::move(stmt));
  }
  if (MatchKeyword("ANALYZE")) {
    auto stmt = std::make_unique<ast::AnalyzeStatement>();
    if (Check(TokenKind::kIdentifier)) {
      STARBURST_ASSIGN_OR_RETURN(stmt->table,
                                 ParseQualifiedTableName("table name"));
    }
    return ast::StatementPtr(std::move(stmt));
  }
  return ErrorHere("expected a statement");
}

Result<ast::StatementPtr> Parser::ParseCreate() {
  STARBURST_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
  if (MatchKeyword("TABLE")) return ParseCreateTable();
  if (MatchKeyword("VIEW")) return ParseCreateView();
  if (MatchKeyword("INDEX")) return ParseCreateIndex(/*unique=*/false);
  if (MatchKeyword("UNIQUE")) {
    STARBURST_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
    return ParseCreateIndex(/*unique=*/true);
  }
  return ErrorHere("expected TABLE, VIEW, INDEX, or UNIQUE INDEX");
}

Result<ast::StatementPtr> Parser::ParseCreateTable() {
  auto stmt = std::make_unique<ast::CreateTableStatement>();
  STARBURST_ASSIGN_OR_RETURN(stmt->name, ParseQualifiedTableName("table name"));
  STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('").status());

  std::vector<std::string> pk;
  while (true) {
    if (MatchKeyword("PRIMARY")) {
      STARBURST_RETURN_IF_ERROR(ExpectKeyword("KEY"));
      STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('").status());
      if (!pk.empty()) return ErrorHere("duplicate PRIMARY KEY");
      do {
        STARBURST_ASSIGN_OR_RETURN(std::string col,
                                   ExpectIdentifier("column name"));
        pk.push_back(std::move(col));
      } while (MatchToken(TokenKind::kComma));
      STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
    } else if (MatchKeyword("UNIQUE")) {
      STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('").status());
      std::vector<std::string> cols;
      do {
        STARBURST_ASSIGN_OR_RETURN(std::string col,
                                   ExpectIdentifier("column name"));
        cols.push_back(std::move(col));
      } while (MatchToken(TokenKind::kComma));
      STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
      stmt->unique_constraints.push_back(std::move(cols));
    } else {
      ast::ColumnSpec col;
      STARBURST_ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column name"));
      STARBURST_ASSIGN_OR_RETURN(col.type_name, ExpectIdentifier("type name"));
      // Tolerate a length spec like VARCHAR(20) and ignore it.
      if (MatchToken(TokenKind::kLParen)) {
        STARBURST_RETURN_IF_ERROR(
            Expect(TokenKind::kIntLiteral, "length").status());
        STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
      }
      while (true) {
        if (MatchKeyword("NOT")) {
          STARBURST_RETURN_IF_ERROR(ExpectKeyword("NULL"));
          col.not_null = true;
        } else if (MatchKeyword("PRIMARY")) {
          STARBURST_RETURN_IF_ERROR(ExpectKeyword("KEY"));
          col.primary_key = true;
          col.not_null = true;
        } else if (MatchKeyword("UNIQUE")) {
          col.unique = true;
        } else {
          break;
        }
      }
      stmt->columns.push_back(std::move(col));
    }
    if (!MatchToken(TokenKind::kComma)) break;
  }
  STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());

  // Column-level PRIMARY KEY / UNIQUE become table constraints.
  std::vector<std::string> col_pk;
  for (const ast::ColumnSpec& col : stmt->columns) {
    if (col.primary_key) col_pk.push_back(col.name);
    if (col.unique) stmt->unique_constraints.push_back({col.name});
  }
  if (!pk.empty() && !col_pk.empty()) {
    return Status::SyntaxError("PRIMARY KEY specified twice");
  }
  if (pk.empty()) pk = std::move(col_pk);
  if (!pk.empty()) {
    stmt->unique_constraints.insert(stmt->unique_constraints.begin(),
                                    std::move(pk));
  }

  if (MatchKeyword("USING")) {
    STARBURST_ASSIGN_OR_RETURN(stmt->storage_manager,
                               ExpectIdentifier("storage manager name"));
  }
  return ast::StatementPtr(std::move(stmt));
}

Result<ast::StatementPtr> Parser::ParseCreateIndex(bool unique) {
  auto stmt = std::make_unique<ast::CreateIndexStatement>();
  stmt->unique = unique;
  STARBURST_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("index name"));
  STARBURST_RETURN_IF_ERROR(ExpectKeyword("ON"));
  STARBURST_ASSIGN_OR_RETURN(stmt->table, ParseQualifiedTableName("table name"));
  STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('").status());
  do {
    STARBURST_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
    stmt->columns.push_back(std::move(col));
  } while (MatchToken(TokenKind::kComma));
  STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
  if (MatchKeyword("USING")) {
    STARBURST_ASSIGN_OR_RETURN(stmt->access_method,
                               ExpectIdentifier("access method name"));
  }
  return ast::StatementPtr(std::move(stmt));
}

Result<ast::StatementPtr> Parser::ParseCreateView() {
  auto stmt = std::make_unique<ast::CreateViewStatement>();
  STARBURST_ASSIGN_OR_RETURN(stmt->name, ParseQualifiedTableName("view name"));
  if (MatchToken(TokenKind::kLParen)) {
    do {
      STARBURST_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
      stmt->column_names.push_back(std::move(col));
    } while (MatchToken(TokenKind::kComma));
    STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
  }
  STARBURST_RETURN_IF_ERROR(ExpectKeyword("AS"));
  size_t body_start = Peek().offset;
  STARBURST_ASSIGN_OR_RETURN(stmt->query, ParseQuery());
  size_t body_end =
      Check(TokenKind::kEof) ? sql_.size() : Peek().offset;
  stmt->body_text = sql_.substr(body_start, body_end - body_start);
  return ast::StatementPtr(std::move(stmt));
}

Result<ast::StatementPtr> Parser::ParseDrop() {
  STARBURST_RETURN_IF_ERROR(ExpectKeyword("DROP"));
  if (MatchKeyword("TABLE")) {
    auto stmt = std::make_unique<ast::DropTableStatement>();
    STARBURST_ASSIGN_OR_RETURN(stmt->name,
                               ParseQualifiedTableName("table name"));
    return ast::StatementPtr(std::move(stmt));
  }
  if (MatchKeyword("VIEW")) {
    auto stmt = std::make_unique<ast::DropViewStatement>();
    STARBURST_ASSIGN_OR_RETURN(stmt->name, ParseQualifiedTableName("view name"));
    return ast::StatementPtr(std::move(stmt));
  }
  if (MatchKeyword("INDEX")) {
    auto stmt = std::make_unique<ast::DropIndexStatement>();
    STARBURST_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("index name"));
    return ast::StatementPtr(std::move(stmt));
  }
  return ErrorHere("expected TABLE, VIEW, or INDEX");
}

Result<ast::StatementPtr> Parser::ParseInsert() {
  STARBURST_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
  STARBURST_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  auto stmt = std::make_unique<ast::InsertStatement>();
  STARBURST_ASSIGN_OR_RETURN(stmt->table, ParseQualifiedTableName("table name"));
  if (Check(TokenKind::kLParen) && !AtQueryStart(1)) {
    Advance();
    do {
      STARBURST_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
      stmt->columns.push_back(std::move(col));
    } while (MatchToken(TokenKind::kComma));
    STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
  }
  if (MatchKeyword("VALUES")) {
    do {
      STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('").status());
      STARBURST_ASSIGN_OR_RETURN(std::vector<ExprPtr> row, ParseExprList());
      STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
      stmt->rows.push_back(std::move(row));
    } while (MatchToken(TokenKind::kComma));
  } else {
    STARBURST_ASSIGN_OR_RETURN(stmt->query, ParseQuery());
  }
  return ast::StatementPtr(std::move(stmt));
}

Result<ast::StatementPtr> Parser::ParseUpdate() {
  STARBURST_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
  auto stmt = std::make_unique<ast::UpdateStatement>();
  STARBURST_ASSIGN_OR_RETURN(stmt->table, ParseQualifiedTableName("table name"));
  STARBURST_RETURN_IF_ERROR(ExpectKeyword("SET"));
  do {
    STARBURST_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
    STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kEq, "'='").status());
    STARBURST_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
    stmt->assignments.emplace_back(std::move(col), std::move(value));
  } while (MatchToken(TokenKind::kComma));
  if (MatchKeyword("WHERE")) {
    STARBURST_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return ast::StatementPtr(std::move(stmt));
}

Result<ast::StatementPtr> Parser::ParseDelete() {
  STARBURST_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
  STARBURST_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  auto stmt = std::make_unique<ast::DeleteStatement>();
  STARBURST_ASSIGN_OR_RETURN(stmt->table, ParseQualifiedTableName("table name"));
  if (MatchKeyword("WHERE")) {
    STARBURST_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return ast::StatementPtr(std::move(stmt));
}

Result<ast::StatementPtr> Parser::ParseExplain() {
  STARBURST_RETURN_IF_ERROR(ExpectKeyword("EXPLAIN"));
  auto stmt = std::make_unique<ast::ExplainStatement>();
  if (MatchKeyword("QGM")) {
    stmt->what = ast::ExplainStatement::What::kQgm;
    if (MatchKeyword("BEFORE")) stmt->before_rewrite = true;
  } else if (MatchKeyword("PLAN")) {
    stmt->what = ast::ExplainStatement::What::kPlan;
  } else {
    if (MatchKeyword("ANALYZE")) stmt->analyze = true;
    if (MatchKeyword("VERBOSE")) stmt->verbose = true;
  }
  STARBURST_ASSIGN_OR_RETURN(stmt->query, ParseQuery());
  return ast::StatementPtr(std::move(stmt));
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ast::Query>> Parser::ParseQuery() {
  auto query = std::make_unique<ast::Query>();
  if (MatchKeyword("WITH")) {
    query->recursive = MatchKeyword("RECURSIVE");
    do {
      ast::CommonTableExpr cte;
      STARBURST_ASSIGN_OR_RETURN(cte.name, ExpectIdentifier("table expression name"));
      if (MatchToken(TokenKind::kLParen)) {
        do {
          STARBURST_ASSIGN_OR_RETURN(std::string col,
                                     ExpectIdentifier("column name"));
          cte.column_names.push_back(std::move(col));
        } while (MatchToken(TokenKind::kComma));
        STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
      }
      STARBURST_RETURN_IF_ERROR(ExpectKeyword("AS"));
      STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('").status());
      STARBURST_ASSIGN_OR_RETURN(cte.query, ParseQuery());
      STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
      query->ctes.push_back(std::move(cte));
    } while (MatchToken(TokenKind::kComma));
  }

  STARBURST_ASSIGN_OR_RETURN(query->body, ParseQueryBody());

  if (MatchKeyword("ORDER")) {
    STARBURST_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      ast::OrderItem item;
      STARBURST_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.ascending = false;
      } else {
        MatchKeyword("ASC");
      }
      query->order_by.push_back(std::move(item));
    } while (MatchToken(TokenKind::kComma));
  }
  if (MatchKeyword("LIMIT")) {
    STARBURST_ASSIGN_OR_RETURN(Token n, Expect(TokenKind::kIntLiteral, "limit"));
    query->limit = n.int_value;
  }
  return query;
}

// UNION / EXCEPT level (left-associative); INTERSECT binds tighter.
Result<std::unique_ptr<ast::QueryBody>> Parser::ParseQueryBody() {
  STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<ast::QueryBody> left,
                             ParseQueryTerm());
  while (CheckKeyword("UNION") || CheckKeyword("EXCEPT")) {
    ast::SetOpKind op = CheckKeyword("UNION") ? ast::SetOpKind::kUnion
                                              : ast::SetOpKind::kExcept;
    Advance();
    bool all = MatchKeyword("ALL");
    STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<ast::QueryBody> right,
                               ParseQueryTerm());
    left = std::make_unique<ast::QueryBody>(op, all, std::move(left),
                                            std::move(right));
  }
  return left;
}

Result<std::unique_ptr<ast::QueryBody>> Parser::ParseQueryTerm() {
  STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<ast::QueryBody> left,
                             ParseQueryPrimary());
  while (CheckKeyword("INTERSECT")) {
    Advance();
    bool all = MatchKeyword("ALL");
    STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<ast::QueryBody> right,
                               ParseQueryPrimary());
    left = std::make_unique<ast::QueryBody>(ast::SetOpKind::kIntersect, all,
                                            std::move(left), std::move(right));
  }
  return left;
}

Result<std::unique_ptr<ast::QueryBody>> Parser::ParseQueryPrimary() {
  if (MatchToken(TokenKind::kLParen)) {
    STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<ast::QueryBody> body,
                               ParseQueryBody());
    STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
    return body;
  }
  STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<ast::SelectCore> core,
                             ParseSelectCore());
  return std::make_unique<ast::QueryBody>(std::move(core));
}

Result<std::unique_ptr<ast::SelectCore>> Parser::ParseSelectCore() {
  STARBURST_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  auto core = std::make_unique<ast::SelectCore>();
  if (MatchKeyword("DISTINCT")) {
    core->distinct = true;
  } else {
    MatchKeyword("ALL");
  }

  // Select list.
  do {
    ast::SelectItem item;
    if (MatchToken(TokenKind::kStar)) {
      item.star = true;
    } else if (Check(TokenKind::kIdentifier) &&
               Peek(1).kind == TokenKind::kDot &&
               Peek(2).kind == TokenKind::kStar) {
      item.star = true;
      item.star_qualifier = Advance().text;
      Advance();  // '.'
      Advance();  // '*'
    } else {
      STARBURST_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("AS")) {
        STARBURST_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("column alias"));
      } else if (Check(TokenKind::kIdentifier) &&
                 !IsClauseKeyword(Peek().text)) {
        item.alias = Advance().text;
      }
    }
    core->items.push_back(std::move(item));
  } while (MatchToken(TokenKind::kComma));

  if (MatchKeyword("FROM")) {
    do {
      STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<ast::TableRef> ref,
                                 ParseTableRef());
      core->from.push_back(std::move(ref));
    } while (MatchToken(TokenKind::kComma));
  }

  if (MatchKeyword("WHERE")) {
    STARBURST_ASSIGN_OR_RETURN(core->where, ParseExpr());
  }
  if (MatchKeyword("GROUP")) {
    STARBURST_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      STARBURST_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      core->group_by.push_back(std::move(e));
    } while (MatchToken(TokenKind::kComma));
  }
  if (MatchKeyword("HAVING")) {
    STARBURST_ASSIGN_OR_RETURN(core->having, ParseExpr());
  }
  return core;
}

Result<std::unique_ptr<ast::TableRef>> Parser::ParseTableRef() {
  STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<ast::TableRef> left,
                             ParseTablePrimary());
  while (true) {
    ast::JoinKind join_kind;
    if (CheckKeyword("JOIN") || CheckKeyword("INNER")) {
      MatchKeyword("INNER");
      STARBURST_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      join_kind = ast::JoinKind::kInner;
    } else if (CheckKeyword("LEFT")) {
      Advance();
      MatchKeyword("OUTER");
      STARBURST_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      join_kind = ast::JoinKind::kLeftOuter;
    } else {
      break;
    }
    STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<ast::TableRef> right,
                               ParseTablePrimary());
    STARBURST_RETURN_IF_ERROR(ExpectKeyword("ON"));
    STARBURST_ASSIGN_OR_RETURN(ExprPtr on, ParseExpr());
    auto join = std::make_unique<ast::TableRef>();
    join->kind = ast::TableRef::Kind::kJoin;
    join->join_kind = join_kind;
    join->left = std::move(left);
    join->right = std::move(right);
    join->on_condition = std::move(on);
    left = std::move(join);
  }
  return left;
}

Result<std::unique_ptr<ast::TableRef>> Parser::ParseTablePrimary() {
  auto ref = std::make_unique<ast::TableRef>();

  if (Check(TokenKind::kLParen)) {
    // (query) AS alias
    Advance();
    ref->kind = ast::TableRef::Kind::kSubquery;
    STARBURST_ASSIGN_OR_RETURN(ref->subquery, ParseQuery());
    STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
    STARBURST_ASSIGN_OR_RETURN(ref->alias, ParseOptionalAlias());
    return ref;
  }

  STARBURST_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("table name"));

  if (Check(TokenKind::kDot) && Peek(1).kind == TokenKind::kIdentifier) {
    // Schema-qualified reference (sys.metrics): join into one name; the
    // binder defaults the alias to the last component.
    while (Check(TokenKind::kDot) && Peek(1).kind == TokenKind::kIdentifier) {
      Advance();  // '.'
      name += '.';
      name += Advance().text;
    }
    ref->kind = ast::TableRef::Kind::kNamed;
    ref->name = std::move(name);
    STARBURST_ASSIGN_OR_RETURN(ref->alias, ParseOptionalAlias());
    return ref;
  }

  if (Check(TokenKind::kLParen)) {
    // Table function: NAME(arg, ...). Args are queries, bare table names,
    // or scalar expressions.
    Advance();
    ref->kind = ast::TableRef::Kind::kTableFunction;
    ref->function_name = std::move(name);
    if (!Check(TokenKind::kRParen)) {
      do {
        ast::TableFuncArg arg;
        if (AtQueryStart()) {
          STARBURST_ASSIGN_OR_RETURN(arg.table, ParseQuery());
        } else if (Check(TokenKind::kIdentifier) &&
                   (Peek(1).kind == TokenKind::kComma ||
                    Peek(1).kind == TokenKind::kRParen)) {
          // Bare identifier: a table argument, per the paper's
          // SAMPLE(table, int) example. Desugar to SELECT * FROM ident.
          std::string table_name = Advance().text;
          auto q = std::make_unique<ast::Query>();
          auto core = std::make_unique<ast::SelectCore>();
          ast::SelectItem star;
          star.star = true;
          core->items.push_back(std::move(star));
          auto inner = std::make_unique<ast::TableRef>();
          inner->kind = ast::TableRef::Kind::kNamed;
          inner->name = std::move(table_name);
          core->from.push_back(std::move(inner));
          q->body = std::make_unique<ast::QueryBody>(std::move(core));
          arg.table = std::move(q);
        } else {
          STARBURST_ASSIGN_OR_RETURN(arg.scalar, ParseExpr());
        }
        ref->func_args.push_back(std::move(arg));
      } while (MatchToken(TokenKind::kComma));
    }
    STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
    STARBURST_ASSIGN_OR_RETURN(ref->alias, ParseOptionalAlias());
    return ref;
  }

  ref->kind = ast::TableRef::Kind::kNamed;
  ref->name = std::move(name);
  STARBURST_ASSIGN_OR_RETURN(ref->alias, ParseOptionalAlias());
  return ref;
}

Result<std::string> Parser::ParseOptionalAlias() {
  if (MatchKeyword("AS")) {
    return ExpectIdentifier("alias");
  }
  if (Check(TokenKind::kIdentifier) && !IsClauseKeyword(Peek().text)) {
    return Advance().text;
  }
  return std::string();
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Result<std::vector<ExprPtr>> Parser::ParseExprList() {
  std::vector<ExprPtr> out;
  do {
    STARBURST_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    out.push_back(std::move(e));
  } while (MatchToken(TokenKind::kComma));
  return out;
}

Result<ExprPtr> Parser::ParseExpr() {
  STARBURST_ASSIGN_OR_RETURN(ExprPtr left, ParseAndExpr());
  while (MatchKeyword("OR")) {
    STARBURST_ASSIGN_OR_RETURN(ExprPtr right, ParseAndExpr());
    left = std::make_unique<ast::BinaryExpr>(BinaryOp::kOr, std::move(left),
                                             std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAndExpr() {
  STARBURST_ASSIGN_OR_RETURN(ExprPtr left, ParseNotExpr());
  while (MatchKeyword("AND")) {
    STARBURST_ASSIGN_OR_RETURN(ExprPtr right, ParseNotExpr());
    left = std::make_unique<ast::BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                             std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNotExpr() {
  if (MatchKeyword("NOT")) {
    STARBURST_ASSIGN_OR_RETURN(ExprPtr e, ParseNotExpr());
    return ExprPtr(new ast::UnaryExpr(ast::UnaryOp::kNot, std::move(e)));
  }
  return ParsePredicate();
}

Result<ExprPtr> Parser::ParsePredicate() {
  // EXISTS (subquery)
  if (CheckKeyword("EXISTS") && Peek(1).kind == TokenKind::kLParen) {
    Advance();
    Advance();
    STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<ast::Query> q, ParseQuery());
    STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
    return ExprPtr(new ast::ExistsExpr(std::move(q), /*negated=*/false));
  }

  STARBURST_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());

  // expr cmp [quantifier] rhs
  if (IsComparisonOp(Peek().kind)) {
    BinaryOp op = ComparisonOp(Advance().kind);
    // Quantified comparison: cmp QUANT (query). QUANT is any identifier
    // directly followed by a parenthesized query — this is how DBC set
    // predicates (MAJORITY, ...) enter the grammar without new keywords.
    if (Check(TokenKind::kIdentifier) && Peek(1).kind == TokenKind::kLParen &&
        AtQueryStart(2)) {
      std::string quant = Advance().text;
      Advance();  // '('
      STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<ast::Query> q, ParseQuery());
      STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
      return ExprPtr(new ast::QuantifiedCmpExpr(std::move(left), op,
                                                std::move(quant), std::move(q)));
    }
    STARBURST_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return ExprPtr(
        new ast::BinaryExpr(op, std::move(left), std::move(right)));
  }

  bool negated = false;
  if (CheckKeyword("NOT") &&
      (CheckKeyword("IN", 1) || CheckKeyword("BETWEEN", 1) ||
       CheckKeyword("LIKE", 1))) {
    Advance();
    negated = true;
  }

  if (MatchKeyword("IN")) {
    STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('").status());
    if (AtQueryStart()) {
      STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<ast::Query> q, ParseQuery());
      STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
      return ExprPtr(new ast::InSubqueryExpr(std::move(left), std::move(q),
                                             negated));
    }
    STARBURST_ASSIGN_OR_RETURN(std::vector<ExprPtr> items, ParseExprList());
    STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
    return ExprPtr(
        new ast::InListExpr(std::move(left), std::move(items), negated));
  }

  if (MatchKeyword("BETWEEN")) {
    STARBURST_ASSIGN_OR_RETURN(ExprPtr low, ParseAdditive());
    STARBURST_RETURN_IF_ERROR(ExpectKeyword("AND"));
    STARBURST_ASSIGN_OR_RETURN(ExprPtr high, ParseAdditive());
    return ExprPtr(new ast::BetweenExpr(std::move(left), std::move(low),
                                        std::move(high), negated));
  }

  if (MatchKeyword("LIKE")) {
    STARBURST_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
    return ExprPtr(
        new ast::LikeExpr(std::move(left), std::move(pattern), negated));
  }

  if (MatchKeyword("IS")) {
    bool is_not = MatchKeyword("NOT");
    STARBURST_RETURN_IF_ERROR(ExpectKeyword("NULL"));
    return ExprPtr(new ast::IsNullExpr(std::move(left), is_not));
  }

  return left;
}

Result<ExprPtr> Parser::ParseAdditive() {
  STARBURST_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (true) {
    BinaryOp op;
    if (Check(TokenKind::kPlus)) {
      op = BinaryOp::kAdd;
    } else if (Check(TokenKind::kMinus)) {
      op = BinaryOp::kSub;
    } else if (Check(TokenKind::kConcat)) {
      op = BinaryOp::kConcat;
    } else {
      break;
    }
    Advance();
    STARBURST_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = std::make_unique<ast::BinaryExpr>(op, std::move(left),
                                             std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  STARBURST_ASSIGN_OR_RETURN(ExprPtr left, ParseUnaryExpr());
  while (true) {
    BinaryOp op;
    if (Check(TokenKind::kStar)) {
      op = BinaryOp::kMul;
    } else if (Check(TokenKind::kSlash)) {
      op = BinaryOp::kDiv;
    } else if (Check(TokenKind::kPercent)) {
      op = BinaryOp::kMod;
    } else {
      break;
    }
    Advance();
    STARBURST_ASSIGN_OR_RETURN(ExprPtr right, ParseUnaryExpr());
    left = std::make_unique<ast::BinaryExpr>(op, std::move(left),
                                             std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseUnaryExpr() {
  if (MatchToken(TokenKind::kMinus)) {
    STARBURST_ASSIGN_OR_RETURN(ExprPtr e, ParseUnaryExpr());
    return ExprPtr(new ast::UnaryExpr(ast::UnaryOp::kNegate, std::move(e)));
  }
  if (MatchToken(TokenKind::kPlus)) {
    return ParseUnaryExpr();
  }
  return ParsePrimaryExpr();
}

Result<ExprPtr> Parser::ParsePrimaryExpr() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kIntLiteral: {
      Token tok = Advance();
      return ExprPtr(new ast::LiteralExpr(Value::Int(tok.int_value)));
    }
    case TokenKind::kDoubleLiteral: {
      Token tok = Advance();
      return ExprPtr(new ast::LiteralExpr(Value::Double(tok.double_value)));
    }
    case TokenKind::kStringLiteral: {
      Token tok = Advance();
      return ExprPtr(new ast::LiteralExpr(Value::String(tok.text)));
    }
    case TokenKind::kQuestion: {
      Advance();
      return ExprPtr(new ast::ParamExpr(num_params_++));
    }
    case TokenKind::kLParen: {
      if (AtQueryStart(1)) {
        Advance();
        STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<ast::Query> q, ParseQuery());
        STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
        return ExprPtr(new ast::ScalarSubqueryExpr(std::move(q)));
      }
      Advance();
      STARBURST_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
      return e;
    }
    case TokenKind::kIdentifier:
      break;  // handled below
    default:
      return ErrorHere("expected an expression");
  }

  // Literal keywords.
  if (MatchKeyword("NULL")) return ExprPtr(new ast::LiteralExpr(Value::Null()));
  if (MatchKeyword("TRUE")) {
    return ExprPtr(new ast::LiteralExpr(Value::Bool(true)));
  }
  if (MatchKeyword("FALSE")) {
    return ExprPtr(new ast::LiteralExpr(Value::Bool(false)));
  }

  if (CheckKeyword("CASE")) {
    Advance();
    auto case_expr = std::make_unique<ast::CaseExpr>();
    while (MatchKeyword("WHEN")) {
      ast::CaseExpr::WhenClause clause;
      STARBURST_ASSIGN_OR_RETURN(clause.condition, ParseExpr());
      STARBURST_RETURN_IF_ERROR(ExpectKeyword("THEN"));
      STARBURST_ASSIGN_OR_RETURN(clause.result, ParseExpr());
      case_expr->when_clauses.push_back(std::move(clause));
    }
    if (case_expr->when_clauses.empty()) {
      return ErrorHere("CASE requires at least one WHEN clause");
    }
    if (MatchKeyword("ELSE")) {
      STARBURST_ASSIGN_OR_RETURN(case_expr->else_result, ParseExpr());
    }
    STARBURST_RETURN_IF_ERROR(ExpectKeyword("END"));
    return ExprPtr(std::move(case_expr));
  }

  // Clause keywords cannot start a bare column reference (quote the
  // identifier to use such a name); this keeps `SELECT FROM t` an error
  // even though Hydrogen keywords are otherwise unreserved.
  if (IsClauseKeyword(Peek().text) && Peek(1).kind != TokenKind::kLParen &&
      Peek(1).kind != TokenKind::kDot) {
    return ErrorHere("expected an expression");
  }

  std::string name = Advance().text;

  // Function call.
  if (Check(TokenKind::kLParen)) {
    Advance();
    auto call = std::make_unique<ast::FunctionCallExpr>(
        name, std::vector<ExprPtr>());
    if (MatchToken(TokenKind::kStar)) {
      call->star = true;
    } else if (!Check(TokenKind::kRParen)) {
      if (MatchKeyword("DISTINCT")) call->distinct = true;
      STARBURST_ASSIGN_OR_RETURN(call->args, ParseExprList());
    }
    STARBURST_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
    return ExprPtr(std::move(call));
  }

  // Column reference, possibly qualified.
  if (MatchToken(TokenKind::kDot)) {
    STARBURST_ASSIGN_OR_RETURN(std::string column,
                               ExpectIdentifier("column name"));
    return ExprPtr(new ast::ColumnRefExpr(std::move(name), std::move(column)));
  }
  return ExprPtr(new ast::ColumnRefExpr("", std::move(name)));
}

}  // namespace starburst
