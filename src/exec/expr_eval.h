#ifndef STARBURST_EXEC_EXPR_EVAL_H_
#define STARBURST_EXEC_EXPR_EVAL_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/stream.h"
#include "optimizer/plan.h"

namespace starburst::exec {

class SubqueryRuntime;

/// How evaluate-on-demand subqueries remember results across outer rows.
enum class SubqueryCacheMode {
  kNone,       // re-evaluate on every use (the strawman)
  kLastValue,  // §7: "avoid re-evaluating the subquery when the
               //      correlation values have not changed"
  kMemo,       // full memo over correlation values
};

/// A qgm::Expr compiled against an operator's output layout: column
/// references become row slots; references to enclosing queries become
/// correlation parameters; quantified tests carry an executable subplan.
struct CompiledExpr {
  using Kind = qgm::Expr::Kind;

  Kind kind = Kind::kLiteral;
  Value literal;

  // kColumnRef
  int slot = -1;  // >=0: input row slot
  const qgm::Quantifier* param_q = nullptr;  // slot<0: runtime parameter
  size_t param_col = 0;

  ast::BinaryOp bop = ast::BinaryOp::kEq;
  ast::UnaryOp uop = ast::UnaryOp::kNot;
  const ScalarFunctionDef* func = nullptr;
  bool negated = false;
  bool has_else = false;

  std::vector<std::unique_ptr<CompiledExpr>> children;

  // Subquery machinery: kExistsTest, kQuantCompare, and scalar-subquery
  // column references that could not be planned as joins.
  std::shared_ptr<SubqueryRuntime> subquery;
  qgm::QuantifierType quant_type = qgm::QuantifierType::kExists;
  const SetPredicateFunctionDef* set_pred = nullptr;
  size_t subquery_column = 0;  // scalar-subquery fetch column

  /// Three-valued: boolean results are Bool or Null.
  Result<Value> Eval(const Row& row, ExecContext* ctx) const;

  /// Eval folded to two-valued acceptance (NULL/unknown = false).
  Result<bool> EvalPredicate(const Row& row, ExecContext* ctx) const;
};

using CompiledExprPtr = std::unique_ptr<CompiledExpr>;

/// Binary operator evaluation shared by expressions and join operators.
Result<Value> EvalBinaryValues(ast::BinaryOp op, const Value& l, const Value& r);

/// SQL LIKE with % and _ wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern);

/// One subquery's runtime: a re-openable inner plan plus the paper's
/// "evaluate-on-demand" protocol — nothing runs until the predicate
/// evaluator first needs the subquery, and results are reused while the
/// correlation values stay the same.
class SubqueryRuntime {
 public:
  struct ParamSource {
    const qgm::Quantifier* q = nullptr;
    size_t column = 0;
    int outer_slot = -1;  // -1: resolve through the context's param stack
  };

  SubqueryRuntime(OperatorPtr plan, std::vector<ParamSource> params,
                  SubqueryCacheMode mode)
      : plan_(std::move(plan)), params_(std::move(params)), mode_(mode) {}

  /// Materialized subquery rows under the current outer row's correlation
  /// values. The pointer stays valid until the next Evaluate call.
  Result<const std::vector<Row>*> Evaluate(const Row& outer_row,
                                           ExecContext* ctx);

  void ResetCache();

 private:
  OperatorPtr plan_;
  std::vector<ParamSource> params_;
  SubqueryCacheMode mode_;
  std::unordered_map<Row, std::vector<Row>, RowHash> memo_;
  Row last_key_;
  std::vector<Row> last_result_;
  bool has_last_ = false;
};

/// Compilation environment: the input layout plus a factory for subquery
/// operator trees (supplied by the plan refiner).
struct CompileEnv {
  const std::vector<optimizer::ColumnBinding>* layout = nullptr;
  std::function<Result<OperatorPtr>(const qgm::Box*)> build_box_operator;
  const Catalog* catalog = nullptr;
  SubqueryCacheMode cache_mode = SubqueryCacheMode::kMemo;
  /// Invoked for every correlation parameter left unresolved by `layout`
  /// (the plan refiner uses this to wire dependent-join parameter frames).
  std::function<void(const qgm::Quantifier*, size_t)> on_param;
};

Result<CompiledExprPtr> CompileExpr(const qgm::Expr& e, const CompileEnv& env);

/// The correlation signature of a subquery box: every (quantifier, column)
/// referenced inside its subtree but owned outside it.
std::vector<std::pair<const qgm::Quantifier*, size_t>> FreeParamsOf(
    const qgm::Box* sub);

}  // namespace starburst::exec

#endif  // STARBURST_EXEC_EXPR_EVAL_H_
