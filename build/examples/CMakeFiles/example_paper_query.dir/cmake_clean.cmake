file(REMOVE_RECURSE
  "CMakeFiles/example_paper_query.dir/paper_query.cc.o"
  "CMakeFiles/example_paper_query.dir/paper_query.cc.o.d"
  "example_paper_query"
  "example_paper_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_paper_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
