file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_rewrite.dir/bench_fig2_rewrite.cc.o"
  "CMakeFiles/bench_fig2_rewrite.dir/bench_fig2_rewrite.cc.o.d"
  "bench_fig2_rewrite"
  "bench_fig2_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
