// An interactive Hydrogen shell over the embedded engine — the artifact a
// downstream user reaches for first. Reads ';'-terminated statements from
// stdin; `\timing` toggles the Figure-1 phase report, `\trace` (or
// `.trace`) drives the span recorder, `\q` quits.
//
//   ./example_repl            # interactive
//   ./example_repl < file.sql # batch

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/database.h"
#include "ext/extensions.h"

using starburst::Database;
using starburst::Result;
using starburst::ResultSet;

namespace {

/// Handles one meta command (without its leading '\' or '.'); returns
/// false for \q.
bool RunMetaCommand(const std::string& cmd, Database* db, bool* timing) {
  std::istringstream in(cmd);
  std::string word, arg1, arg2;
  in >> word >> arg1 >> arg2;
  if (word == "q" || word == "quit") return false;
  if (word == "timing") {
    *timing = !*timing;
    // Per-operator stats power the top-operators report; collect them
    // only while timing is on.
    db->options().collect_op_stats = *timing;
    std::printf("timing %s\n", *timing ? "on" : "off");
    return true;
  }
  if (word == "trace") {
    if (arg1 == "on" || arg1 == "off") {
      db->tracer().set_enabled(arg1 == "on");
      if (arg1 == "on") db->tracer().Clear();
      std::printf("trace %s\n", arg1.c_str());
    } else if (arg1 == "show") {
      std::printf("%s", db->tracer().ToText().c_str());
    } else if (arg1 == "export" && !arg2.empty()) {
      std::ofstream out(arg2);
      if (!out) {
        std::printf("cannot open %s\n", arg2.c_str());
      } else {
        out << db->tracer().ToChromeJson();
        std::printf("trace written to %s (load in chrome://tracing or "
                    "ui.perfetto.dev)\n", arg2.c_str());
      }
    } else {
      std::printf("usage: \\trace on|off|show|export <file>\n");
    }
    return true;
  }
  std::printf("unknown meta command: %s\n", cmd.c_str());
  return true;
}

void PrintTimingReport(const Database& db) {
  const starburst::QueryMetrics& m = db.last_metrics();
  std::printf("parse %.0f | bind %.0f | rewrite %.0f | optimize %.0f | "
              "refine %.0f | execute %.0f (us)\n",
              m.parse_us, m.bind_us, m.rewrite_us, m.optimize_us,
              m.refine_us, m.execute_us);
  for (const auto& f : m.rewrite_stats.firings) {
    std::printf("  rule %s box=%s [id=%d] pass=%d\n", f.rule.c_str(),
                f.box_label.c_str(), f.box_id, f.pass);
  }
  if (m.op_stats != nullptr) {
    std::vector<const starburst::obs::PlanStatsTree::Node*> top =
        m.op_stats->TopBySelfTime(3);
    for (size_t i = 0; i < top.size(); ++i) {
      std::printf("  top op %zu: %s — self %.1f us, %llu rows, %llu loops\n",
                  i + 1, top[i]->name.c_str(),
                  starburst::obs::PlanStatsTree::SelfUs(*top[i]),
                  static_cast<unsigned long long>(top[i]->actual.rows_out),
                  static_cast<unsigned long long>(top[i]->actual.opens));
    }
  }
}

}  // namespace

int main() {
  Database db;
  (void)starburst::ext::RegisterAllExtensions(&db);
  bool timing = false;
  bool tty = true;

  std::printf("Starburst/Corona shell — Hydrogen statements end with ';'\n"
              "meta: \\timing toggles phase timings, \\trace on|off|show|"
              "export <file> drives the tracer, \\q quits\n");

  std::string buffer;
  std::string line;
  while (true) {
    if (tty) std::printf(buffer.empty() ? "starburst> " : "      ...> ");
    if (!std::getline(std::cin, line)) break;

    if (buffer.empty() && !line.empty() &&
        (line[0] == '\\' || line[0] == '.')) {
      if (!RunMetaCommand(line.substr(1), &db, &timing)) break;
      continue;
    }

    buffer += line + "\n";
    // Execute once a ';' arrives (statements may span lines).
    if (buffer.find(';') == std::string::npos) continue;
    std::string sql = buffer;
    buffer.clear();
    if (sql.find_first_not_of(" \t\n;") == std::string::npos) continue;

    Result<ResultSet> result = db.Execute(sql);
    if (!result.ok()) {
      std::printf("ERROR: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (!result->rows().empty() && result->column_names().size() == 1 &&
        result->column_names()[0] == "plan") {
      std::printf("%s", result->rows()[0][0].string_value().c_str());
    } else if (!result->rows().empty() && result->column_names().size() == 1 &&
               result->column_names()[0] == "EXPLAIN") {
      // EXPLAIN ANALYZE report: one line per row, rendered verbatim.
      for (const starburst::Row& r : result->rows()) {
        std::printf("%s\n", r[0].string_value().c_str());
      }
    } else {
      std::printf("%s", result->ToString().c_str());
    }
    if (timing) PrintTimingReport(db);
  }
  return 0;
}
