#ifndef STARBURST_OBS_QUERY_LOG_H_
#define STARBURST_OBS_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace starburst::obs {

/// One finished statement's history record — the row shape served by
/// `sys.query_log`.
struct QueryLogEntry {
  uint64_t id = 0;          // monotonic statement number
  int64_t ts_us = 0;        // wall-clock statement start (µs since epoch)
  std::string sql;          // normalized, truncated to the log's limit
  std::string status;       // "ok" | "error" | "cancelled" | "timeout" |
                            // "rejected"
  std::string error;        // empty when ok
  uint64_t rows = 0;        // rows returned (queries) or affected (DML)
  uint64_t parse_us = 0;
  uint64_t bind_us = 0;
  uint64_t rewrite_us = 0;
  uint64_t optimize_us = 0;
  uint64_t refine_us = 0;
  uint64_t execute_us = 0;
  uint64_t total_us = 0;
  bool plan_cache_hit = false;
  uint64_t spill_bytes = 0;        // bytes spilled by this statement
  uint64_t peak_memory_bytes = 0;  // query memory high-water mark
  int parallelism = 1;
  bool slow = false;  // crossed the SLOW_QUERY_US threshold
};

/// Ring-buffered per-query history. Append is a short critical section
/// (one deque push + possible pop); snapshots copy the ring so readers
/// never block writers for long. The capacity bounds memory (0 disables
/// logging entirely), and total()/dropped()/cleared() account for
/// everything that ever passed through.
class QueryLog {
 public:
  explicit QueryLog(size_t capacity = 256) : capacity_(capacity) {}

  /// Stamps `entry.id` and appends, evicting the oldest past capacity.
  /// With capacity 0 the entry is id-stamped but not retained (and not
  /// counted as dropped — nothing was evicted).
  void Append(QueryLogEntry entry);

  std::vector<QueryLogEntry> Snapshot() const;
  void Clear();

  size_t capacity() const;
  void set_capacity(size_t n);

  /// Statements ever logged / evicted by ring overflow / discarded by an
  /// explicit Clear(). Overflow and operator-requested clears are
  /// tracked separately so dropped() stays an honest eviction count.
  uint64_t total() const;
  uint64_t dropped() const;
  uint64_t cleared() const;

  /// SQL longer than this is truncated with a trailing ellipsis.
  static constexpr size_t kMaxSqlLength = 512;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::deque<QueryLogEntry> ring_;
  uint64_t next_id_ = 1;
  uint64_t dropped_ = 0;
  uint64_t cleared_ = 0;
};

}  // namespace starburst::obs

#endif  // STARBURST_OBS_QUERY_LOG_H_
