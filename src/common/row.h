#ifndef STARBURST_COMMON_ROW_H_
#define STARBURST_COMMON_ROW_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/value.h"

namespace starburst {

/// A tuple flowing between QES operators and in and out of storage
/// managers: a flat vector of Values.
class Row {
 public:
  Row() = default;
  explicit Row(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }

  const std::vector<Value>& values() const { return values_; }
  std::vector<Value>& values() { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// New row = this ++ other (used by join operators).
  Row Concat(const Row& other) const;

  /// Structural equality (NULL == NULL).
  bool operator==(const Row& other) const { return values_ == other.values_; }
  bool operator!=(const Row& other) const { return !(*this == other); }

  /// Lexicographic total order over CompareTotal.
  int CompareTotal(const Row& other) const;

  size_t Hash() const;

  /// Approximate resident bytes: the value vector plus heap payloads.
  /// Feeds MemoryTracker reservations in blocking operators.
  size_t MemoryBytes() const;

  /// "(1, 'a', NULL)"
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

struct RowHash {
  size_t operator()(const Row& r) const { return r.Hash(); }
};

struct RowTotalLess {
  bool operator()(const Row& a, const Row& b) const {
    return a.CompareTotal(b) < 0;
  }
};

}  // namespace starburst

#endif  // STARBURST_COMMON_ROW_H_
