// E6 — §7: join *methods* (control structure: nested-loop, sort-merge,
// hash) are orthogonal to join *kinds* (function: regular, exists,
// op-ALL, left-outer, scalar-subquery) — "a single operator can handle
// many different join kinds".
//
// Part A sweeps |R| and measures each method on the same equi-join,
// locating the crossovers. Part B runs every (method x kind) pairing the
// QES supports and checks they all agree — the orthogonality claim.
// Google-benchmark microbenches of the three methods close the binary.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exec/operators.h"

using namespace starburst;
using namespace starburst::bench;
using exec::JoinSpec;
using exec::OperatorPtr;
using optimizer::JoinKind;

namespace {

std::vector<Row> MakeRows(int n, int key_range, uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<Row> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    rows.push_back(Row({Value::Int(static_cast<int64_t>(rng() % key_range)),
                        Value::Int(i)}));
  }
  return rows;
}

exec::CompiledExprPtr SlotEq(int a, int b) {
  auto eq = std::make_unique<exec::CompiledExpr>();
  eq->kind = qgm::Expr::Kind::kBinary;
  eq->bop = ast::BinaryOp::kEq;
  auto l = std::make_unique<exec::CompiledExpr>();
  l->kind = qgm::Expr::Kind::kColumnRef;
  l->slot = a;
  auto r = std::make_unique<exec::CompiledExpr>();
  r->kind = qgm::Expr::Kind::kColumnRef;
  r->slot = b;
  eq->children.push_back(std::move(l));
  eq->children.push_back(std::move(r));
  return eq;
}

OperatorPtr MakeJoin(const std::string& method, std::vector<Row> outer,
                     std::vector<Row> inner, JoinKind kind) {
  JoinSpec spec;
  spec.kind = kind;
  spec.inner_width = 2;
  auto outer_op = exec::MakeValuesOp(std::move(outer));
  auto inner_op = exec::MakeValuesOp(std::move(inner));
  if (method == "nl") {
    spec.predicates.push_back(SlotEq(0, 2));
    return exec::MakeNlJoinOp(std::move(outer_op), std::move(inner_op),
                              std::move(spec));
  }
  if (method == "nl+temp") {
    spec.predicates.push_back(SlotEq(0, 2));
    return exec::MakeNlJoinOp(std::move(outer_op),
                              exec::MakeTempOp(std::move(inner_op)),
                              std::move(spec));
  }
  if (method == "hash") {
    return exec::MakeHashJoinOp(std::move(outer_op), std::move(inner_op),
                                {{0, 0}}, std::move(spec));
  }
  // merge: glue sorts first.
  auto sorted_outer = exec::MakeSortOp(std::move(outer_op), {{0, true}});
  auto sorted_inner = exec::MakeSortOp(std::move(inner_op), {{0, true}});
  return exec::MakeMergeJoinOp(std::move(sorted_outer), std::move(sorted_inner),
                               {{0, 0}}, std::move(spec));
}

size_t RunJoin(exec::Operator* op) {
  StorageEngine storage;
  Catalog catalog;
  exec::ExecContext ctx(&storage, &catalog);
  if (!op->Open(&ctx).ok()) std::exit(1);
  size_t n = 0;
  Row row;
  while (true) {
    Result<bool> more = op->Next(&row);
    if (!more.ok()) std::exit(1);
    if (!*more) break;
    ++n;
  }
  op->Close();
  return n;
}

void PartA() {
  std::printf("E6a: method crossover, R join S on k (|S| = |R|, ~1 match/row)\n");
  std::printf("%8s | %12s %12s %12s %12s | %8s\n", "|R|", "nl us",
              "nl+temp us", "merge us", "hash us", "rows");
  for (int n : {100, 300, 1000, 3000, 10000}) {
    std::vector<Row> outer = MakeRows(n, n, 1);
    std::vector<Row> inner = MakeRows(n, n, 2);
    double times[4];
    size_t rows = 0;
    const char* methods[] = {"nl", "nl+temp", "merge", "hash"};
    for (int m = 0; m < 4; ++m) {
      if (std::string(methods[m]) == "nl" && n > 3000) {
        times[m] = -1;  // quadratic: skip the biggest size
        continue;
      }
      auto join = MakeJoin(methods[m], outer, inner, JoinKind::kRegular);
      times[m] = MedianUs([&] { rows = RunJoin(join.get()); });
    }
    std::printf("%8d | ", n);
    for (int m = 0; m < 4; ++m) {
      if (times[m] < 0) {
        std::printf("%12s ", "(skipped)");
      } else {
        std::printf("%12.0f ", times[m]);
      }
    }
    std::printf("| %8zu\n", rows);
  }
}

void PartB() {
  std::printf("\nE6b: join kind x method orthogonality (n = 2000)\n");
  std::printf("%-12s | %10s %10s %10s | agree\n", "kind", "nl rows",
              "hash rows", "merge rows");
  std::vector<Row> outer = MakeRows(2000, 500, 3);
  std::vector<Row> inner = MakeRows(2000, 500, 4);
  struct KindRow {
    JoinKind kind;
    const char* name;
    bool hash_supported;
    bool merge_supported;
  } kinds[] = {
      {JoinKind::kRegular, "regular", true, true},
      {JoinKind::kExists, "exists", true, true},
      {JoinKind::kAnti, "anti", true, false},
      {JoinKind::kLeftOuter, "left-outer", true, true},
  };
  bool all_agree = true;
  for (const KindRow& k : kinds) {
    auto nl = MakeJoin("nl", outer, inner, k.kind);
    size_t nl_rows = RunJoin(nl.get());
    size_t hash_rows = 0, merge_rows = 0;
    if (k.hash_supported) {
      auto hj = MakeJoin("hash", outer, inner, k.kind);
      hash_rows = RunJoin(hj.get());
    }
    if (k.merge_supported) {
      auto mj = MakeJoin("merge", outer, inner, k.kind);
      merge_rows = RunJoin(mj.get());
    }
    bool agree = (!k.hash_supported || hash_rows == nl_rows) &&
                 (!k.merge_supported || merge_rows == nl_rows);
    all_agree = all_agree && agree;
    std::printf("%-12s | %10zu %10s %10s | %s\n", k.name, nl_rows,
                k.hash_supported ? std::to_string(hash_rows).c_str() : "-",
                k.merge_supported ? std::to_string(merge_rows).c_str() : "-",
                agree ? "yes" : "NO");
  }
  std::printf("Shape check: hash/merge beat NL as |R| grows; every kind "
              "agrees across methods: %s\n\n", all_agree ? "OK" : "MISMATCH");
}

void BM_Join(benchmark::State& state, const char* method) {
  int n = static_cast<int>(state.range(0));
  std::vector<Row> outer = MakeRows(n, n, 1);
  std::vector<Row> inner = MakeRows(n, n, 2);
  for (auto _ : state) {
    auto join = MakeJoin(method, outer, inner, JoinKind::kRegular);
    benchmark::DoNotOptimize(RunJoin(join.get()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Join, nl_temp, "nl+temp")->Arg(1000);
BENCHMARK_CAPTURE(BM_Join, hash, "hash")->Arg(1000)->Arg(10000);
BENCHMARK_CAPTURE(BM_Join, merge, "merge")->Arg(1000)->Arg(10000);

int main(int argc, char** argv) {
  PartA();
  PartB();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
