#include "optimizer/join_enumerator.h"

#include <algorithm>
#include <set>

namespace starburst::optimizer {

using qgm::Expr;
using qgm::Quantifier;

namespace {

/// Union of this-box iterators referenced anywhere inside the subtree an
/// iterator ranges over (correlation into siblings => dependent join).
uint64_t DependencyMask(const Quantifier* it,
                        const std::map<const Quantifier*, size_t>& index) {
  uint64_t deps = 0;
  std::set<const qgm::Box*> seen;
  std::vector<const qgm::Box*> stack = {it->input};
  while (!stack.empty()) {
    const qgm::Box* b = stack.back();
    stack.pop_back();
    if (b == nullptr || !seen.insert(b).second) continue;
    auto scan_expr = [&](const Expr* e) {
      if (e == nullptr) return;
      std::set<Quantifier*> used;
      e->CollectQuantifiers(&used);
      for (Quantifier* q : used) {
        auto pos = index.find(q);
        if (pos != index.end()) deps |= (1ull << pos->second);
      }
    };
    for (const auto& p : b->predicates) scan_expr(p.get());
    for (const auto& h : b->head) scan_expr(h.expr.get());
    for (const auto& g : b->group_keys) scan_expr(g.get());
    for (const auto& a : b->aggregates) scan_expr(a.arg.get());
    for (const auto& q : b->quantifiers) stack.push_back(q->input);
  }
  return deps;
}

int PopCount(uint64_t v) { return __builtin_popcountll(v); }

}  // namespace

void JoinEnumerator::AddPlan(std::vector<PlanPtr>* plans, PlanPtr plan) {
  // Dominance: drop the newcomer if an existing plan is no more expensive
  // and provides at least the same order prefix.
  auto order_covers = [](const std::vector<std::pair<size_t, bool>>& a,
                         const std::vector<std::pair<size_t, bool>>& b) {
    if (b.size() > a.size()) return false;
    for (size_t i = 0; i < b.size(); ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  };
  for (const PlanPtr& existing : *plans) {
    if (existing->props.cost <= plan->props.cost &&
        order_covers(existing->props.order, plan->props.order)) {
      return;
    }
  }
  plans->erase(std::remove_if(plans->begin(), plans->end(),
                              [&](const PlanPtr& existing) {
                                return plan->props.cost <= existing->props.cost &&
                                       order_covers(plan->props.order,
                                                    existing->props.order);
                              }),
               plans->end());
  plans->push_back(std::move(plan));
  ++stats_.plans_kept;
  if (plans->size() > options_.max_plans_per_set) {
    // Evict the most expensive.
    auto worst = std::max_element(plans->begin(), plans->end(),
                                  [](const PlanPtr& a, const PlanPtr& b) {
                                    return a->props.cost < b->props.cost;
                                  });
    plans->erase(worst);
  }
}

Result<std::vector<PlanPtr>> JoinEnumerator::Enumerate(
    const qgm::Box* box, const std::vector<const Quantifier*>& iterators,
    const std::vector<const Expr*>& predicates, const AccessFn& access) {
  size_t n = iterators.size();
  if (n == 0) return std::vector<PlanPtr>{};
  if (n > 63) {
    return Status::InvalidArgument("join enumerator: too many iterators");
  }

  std::map<const Quantifier*, size_t> index;
  for (size_t i = 0; i < n; ++i) index[iterators[i]] = i;

  // Predicate support masks.
  std::vector<uint64_t> supp(predicates.size(), 0);
  for (size_t p = 0; p < predicates.size(); ++p) {
    std::set<Quantifier*> used;
    predicates[p]->CollectQuantifiers(&used);
    for (Quantifier* q : used) {
      auto it = index.find(q);
      if (it != index.end()) supp[p] |= (1ull << it->second);
    }
  }

  // Dependency masks (lateral/correlated iterators).
  std::vector<uint64_t> deps(n, 0);
  for (size_t i = 0; i < n; ++i) {
    deps[i] = DependencyMask(iterators[i], index) & ~(1ull << i);
  }

  std::map<Mask, std::vector<PlanPtr>> table;

  // Singletons.
  for (size_t i = 0; i < n; ++i) {
    Mask m = 1ull << i;
    std::vector<const Expr*> local;
    for (size_t p = 0; p < predicates.size(); ++p) {
      if (supp[p] != 0 && (supp[p] & ~m) == 0) local.push_back(predicates[p]);
    }
    STARBURST_ASSIGN_OR_RETURN(std::vector<PlanPtr> plans,
                               access(iterators[i], local));
    std::vector<PlanPtr>& kept = table[m];
    for (PlanPtr& plan : plans) AddPlan(&kept, std::move(plan));
    if (kept.empty()) {
      return Status::Internal("no access plan for iterator " +
                              iterators[i]->DisplayName());
    }
    ++stats_.sets_built;
  }

  auto deps_of_mask = [&](Mask m) {
    uint64_t d = 0;
    for (size_t i = 0; i < n; ++i) {
      if (m & (1ull << i)) d |= deps[i];
    }
    return d & ~m;
  };

  Mask full = n == 63 ? ~0ull >> 1 : (1ull << n) - 1;
  bool cartesian = options_.allow_cartesian;

  for (int attempt = 0; attempt < 2; ++attempt) {
    for (int size = 2; size <= static_cast<int>(n); ++size) {
      for (Mask mask = 1; mask <= full; ++mask) {
        if (PopCount(mask) != size) continue;
        // Predicates first fully available at this set.
        std::vector<const Expr*> mask_preds;
        for (size_t p = 0; p < predicates.size(); ++p) {
          if (supp[p] != 0 && (supp[p] & ~mask) == 0) {
            mask_preds.push_back(predicates[p]);
          }
        }
        std::vector<PlanPtr>& kept = table[mask];
        // Enumerate splits: outer = sub, inner = mask \ sub.
        for (Mask sub = (mask - 1) & mask; sub != 0; sub = (sub - 1) & mask) {
          Mask inner = mask & ~sub;
          if (!options_.allow_composite_inner && PopCount(inner) != 1) {
            continue;
          }
          auto outer_it = table.find(sub);
          auto inner_it = table.find(inner);
          if (outer_it == table.end() || outer_it->second.empty()) continue;
          if (inner_it == table.end() || inner_it->second.empty()) continue;
          // The outer stream must be self-contained; a dependent inner
          // needs all its parameters from the outer.
          if (deps_of_mask(sub) != 0) continue;
          uint64_t inner_deps = deps_of_mask(inner);
          if ((inner_deps & ~sub) != 0) continue;
          bool dependent = inner_deps != 0;

          // Join predicates: available at `mask`, not within either side.
          std::vector<const Expr*> join_preds;
          bool connected = dependent;
          for (size_t p = 0; p < predicates.size(); ++p) {
            if (supp[p] == 0) continue;
            if ((supp[p] & ~mask) != 0) continue;
            bool in_outer = (supp[p] & ~sub) == 0;
            bool in_inner = (supp[p] & ~inner) == 0;
            if (in_outer || in_inner) continue;
            join_preds.push_back(predicates[p]);
            if ((supp[p] & sub) != 0 && (supp[p] & inner) != 0) {
              connected = true;
            }
          }
          if (!connected && !cartesian) continue;

          ++stats_.pairs_considered;
          for (const PlanPtr& outer_plan : outer_it->second) {
            for (const PlanPtr& inner_plan : inner_it->second) {
              StarContext ctx;
              ctx.catalog = generator_->catalog();
              ctx.box = box;
              ctx.outer = outer_plan;
              ctx.inner = inner_plan;
              ctx.join_preds = join_preds;
              ctx.kind = JoinKind::kRegular;
              ctx.inner_dependent = dependent;
              STARBURST_ASSIGN_OR_RETURN(std::vector<PlanPtr> joins,
                                         generator_->Expand("JoinMethod", ctx));
              for (PlanPtr& j : joins) AddPlan(&kept, std::move(j));
            }
          }
        }
        if (!kept.empty()) ++stats_.sets_built;
        (void)mask_preds;
      }
    }
    if (!table[full].empty()) break;
    // No connected plan for the full set: permit Cartesian products and
    // retry (guaranteeing a plan for e.g. cross joins).
    if (cartesian) break;
    cartesian = true;
    for (auto& [m, plans] : table) {
      if (PopCount(m) > 1) plans.clear();
    }
  }

  std::vector<PlanPtr> result = table[full];
  std::sort(result.begin(), result.end(),
            [](const PlanPtr& a, const PlanPtr& b) {
              return a->props.cost < b->props.cost;
            });
  if (result.empty()) {
    return Status::Internal("join enumeration produced no plan");
  }
  return result;
}

}  // namespace starburst::optimizer
