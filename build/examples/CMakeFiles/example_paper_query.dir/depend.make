# Empty dependencies file for example_paper_query.
# This may be replaced when dependencies are built.
