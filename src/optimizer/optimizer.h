#ifndef STARBURST_OPTIMIZER_OPTIMIZER_H_
#define STARBURST_OPTIMIZER_OPTIMIZER_H_

#include <map>
#include <memory>

#include "optimizer/cost_model.h"
#include "optimizer/join_enumerator.h"
#include "optimizer/star.h"

namespace starburst::optimizer {

/// The cost-based plan optimizer (§6): "optimizes each QGM operation
/// independently, bottom up, using a rule-driven plan generator and rules
/// peculiar to that operation's type". Its three aspects — plan generation
/// (the STAR registry), plan costing (the CostModel), and search strategy
/// (rank pruning + join-enumerator toggles) — are deliberately orthogonal:
/// each can be replaced without touching the others.
class Optimizer {
 public:
  struct Options {
    JoinEnumerator::Options join;
    PlanGenerator::Options generator = PlanGenerator::Options{1000};
    CostModel::Params cost;
    /// Materialize table expressions referenced more than once so all
    /// consumers share one evaluation (§5: "materialized once and used
    /// several times"). Off = each reference re-evaluates.
    bool materialize_shared = true;
  };

  struct Stats {
    PlanGenerator::Stats generator;
    JoinEnumerator::Stats enumerator;
  };

  explicit Optimizer(const Catalog* catalog) : Optimizer(catalog, Options{}) {}
  Optimizer(const Catalog* catalog, Options options);

  /// The STAR array; a DBC may Add() rules before Optimize runs
  /// ("the optimizer designer [can] add, change, or delete rules in the
  /// STAR array without affecting the code for the search strategy").
  StarRegistry& stars() { return registry_; }
  const CostModel& cost_model() const { return cost_; }

  /// Chooses the cheapest query evaluation plan for a rewritten QGM.
  /// The graph must outlive the returned plan (plans point into it).
  /// Every box of the graph gets a plan (retrievable via box_plans());
  /// plan refinement needs them to build correlated subquery runtimes.
  Result<PlanPtr> Optimize(const qgm::Graph& graph);

  /// Per-box plans from the last Optimize call.
  const std::map<const qgm::Box*, PlanPtr>& box_plans() const {
    return box_plans_;
  }

  const Stats& stats() const { return stats_; }

 private:
  Result<PlanPtr> OptimizeBox(const qgm::Box* box);
  Result<PlanPtr> OptimizeSelect(const qgm::Box* box);
  Result<PlanPtr> OptimizeOuterJoin(const qgm::Box* box);
  Result<PlanPtr> OptimizeGroupBy(const qgm::Box* box);
  Result<PlanPtr> OptimizeSetOp(const qgm::Box* box);
  Result<PlanPtr> OptimizeTableFunction(const qgm::Box* box);
  Result<PlanPtr> OptimizeRecursion(const qgm::Box* box);

  /// Access plans for one iterator (the enumerator's leaf supplier).
  Result<std::vector<PlanPtr>> AccessQuantifier(
      const qgm::Quantifier* q, const std::vector<const qgm::Expr*>& preds);

  /// Identity node renaming a box-space stream into quantifier space.
  PlanPtr Relabel(PlanPtr input, const qgm::Quantifier* q);
  /// The plan for a derived table, wrapped in a shared TEMP when it is
  /// referenced multiple times and safe to cache.
  Result<PlanPtr> DerivedTablePlan(const qgm::Box* input);
  bool SubtreeHasIterationRef(const qgm::Box* box) const;
  /// Columns of `q`'s range table referenced anywhere in the graph.
  std::vector<size_t> NeededColumns(const qgm::Quantifier* q) const;
  /// True if `sub`'s subtree references quantifiers outside it.
  bool SubtreeCorrelated(const qgm::Box* sub) const;

  Result<PlanPtr> AttachSubqueryJoins(const qgm::Box* box, PlanPtr plan,
                                      std::vector<const qgm::Expr*>* residual);
  PlanPtr AddFilter(PlanPtr input, std::vector<const qgm::Expr*> preds);
  Result<PlanPtr> ProjectToHead(const qgm::Box* box, PlanPtr input);

  const Catalog* catalog_;
  Options options_;
  CostModel cost_;
  StarRegistry registry_;
  std::unique_ptr<PlanGenerator> generator_;
  std::map<const qgm::Box*, PlanPtr> box_plans_;
  std::map<const qgm::Box*, PlanPtr> shared_temp_plans_;
  const qgm::Graph* graph_ = nullptr;
  Stats stats_;
};

}  // namespace starburst::optimizer

#endif  // STARBURST_OPTIMIZER_OPTIMIZER_H_
