#include "storage/buffer_pool.h"

namespace starburst {

const Page* BufferPool::GetPage(FileId file, PageNo page) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Touch(file, page, /*dirty=*/false);
  }
  return pager_->RawPage(file, page);
}

Page* BufferPool::GetMutablePage(FileId file, PageNo page) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Touch(file, page, /*dirty=*/true);
  }
  return pager_->RawPage(file, page);
}

PageNo BufferPool::NewPage(FileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  PageNo page = pager_->AppendPage(file);
  // Newly created pages enter the pool dirty without a disk read.
  Key key{file, page};
  lru_.push_front(key);
  resident_[key] = Frame{lru_.begin(), /*dirty=*/true};
  ++stats_.logical_reads;
  ++stats_.cache_hits;
  EvictIfNeeded();
  return page;
}

void BufferPool::set_capacity(size_t capacity_pages) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity_pages;
  EvictIfNeeded();
}

void BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, frame] : resident_) {
    if (frame.dirty) {
      ++stats_.disk_writes;
      frame.dirty = false;
    }
  }
}

bool BufferPool::Touch(FileId file, PageNo page, bool dirty) {
  ++stats_.logical_reads;
  Key key{file, page};
  auto it = resident_.find(key);
  if (it != resident_.end()) {
    ++stats_.cache_hits;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    it->second.dirty = it->second.dirty || dirty;
    return true;
  }
  ++stats_.disk_reads;
  lru_.push_front(key);
  resident_[key] = Frame{lru_.begin(), dirty};
  EvictIfNeeded();
  return false;
}

void BufferPool::EvictIfNeeded() {
  while (resident_.size() > capacity_ && !lru_.empty()) {
    Key victim = lru_.back();
    lru_.pop_back();
    auto it = resident_.find(victim);
    if (it != resident_.end()) {
      if (it->second.dirty) ++stats_.disk_writes;
      resident_.erase(it);
    }
  }
}

}  // namespace starburst
