file(REMOVE_RECURSE
  "libstarburst_catalog.a"
)
