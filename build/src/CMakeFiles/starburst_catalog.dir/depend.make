# Empty dependencies file for starburst_catalog.
# This may be replaced when dependencies are built.
