// E7 — §7: "we replace ... 'evaluate-at-open' and
// 'evaluate-at-application' ... by a single uniform mechanism called
// 'evaluate-on-demand'. ... We also include logic to avoid re-evaluating
// the subquery when the correlation values have not changed, thus
// improving the performance during execution."
//
// A correlated scalar subquery runs under three regimes: no caching
// (strawman), last-value reuse (the paper's optimization), and full
// memoization. The sweep varies how many *distinct* correlation values
// the outer rows carry: fewer distinct values => more reuse.

#include "bench_util.h"

using namespace starburst;
using namespace starburst::bench;

int main() {
  const int kOuter = 2000;
  std::printf("E7: evaluate-on-demand caching, %d outer rows\n", kOuter);
  std::printf("%9s | %10s | %8s %8s | %8s %8s | %8s %8s\n", "distinct",
              "rows", "none:ev", "us", "last:ev", "us", "memo:ev", "us");

  for (int distinct : {1, 4, 20, 100, 1000}) {
    Database db;
    MustExec(&db, "CREATE TABLE outer_t (id INT, g INT)");
    MustExec(&db, "CREATE TABLE inner_t (g INT, x INT)");
    // Outer rows sorted by their correlation value: the last-value cache
    // sees runs of identical keys, exactly the case §7 targets.
    for (int base = 0; base < kOuter; base += 500) {
      std::string sql = "INSERT INTO outer_t VALUES ";
      for (int i = base; i < base + 500; ++i) {
        if (i > base) sql += ", ";
        sql += "(" + std::to_string(i) + ", " +
               std::to_string(i / (kOuter / distinct)) + ")";
      }
      MustExec(&db, sql);
    }
    std::string sql = "INSERT INTO inner_t VALUES ";
    for (int g = 0; g < distinct; ++g) {
      if (g > 0) sql += ", ";
      sql += "(" + std::to_string(g) + ", " + std::to_string(g * 10) + ")";
    }
    MustExec(&db, sql);
    if (!db.AnalyzeAll().ok()) return 1;

    // The correlated scalar subquery the join planner cannot lift (it
    // stays a per-row evaluate-on-demand runtime).
    const std::string query =
        "SELECT id, (SELECT MAX(x) FROM inner_t i WHERE i.g = o.g) "
        "FROM outer_t o";

    struct ModeRow {
      exec::SubqueryCacheMode mode;
      uint64_t evals = 0;
      uint64_t hits = 0;
      double us = 0;
    } modes[3] = {{exec::SubqueryCacheMode::kNone},
                  {exec::SubqueryCacheMode::kLastValue},
                  {exec::SubqueryCacheMode::kMemo}};
    size_t rows = 0;
    for (ModeRow& m : modes) {
      db.options().exec.cache_mode = m.mode;
      m.us = MedianUs([&] {
        rows = MustRows(&db, query);
        m.evals = db.last_metrics().exec_stats.subquery_evaluations;
        m.hits = db.last_metrics().exec_stats.subquery_cache_hits;
      });
    }
    std::printf("%9d | %10zu | %8llu %8.0f | %8llu %8.0f | %8llu %8.0f\n",
                distinct, rows,
                static_cast<unsigned long long>(modes[0].evals), modes[0].us,
                static_cast<unsigned long long>(modes[1].evals), modes[1].us,
                static_cast<unsigned long long>(modes[2].evals), modes[2].us);
  }
  std::printf("\nShape check: none always re-evaluates (%d evals); "
              "last-value and memo evaluate once per distinct correlation "
              "value; time tracks evaluations.\n", kOuter);
  return 0;
}
