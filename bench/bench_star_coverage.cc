// E5 — §6's headline extensibility claim: "we can readily express all the
// strategies of the R* optimizer, plus new strategies for composite
// inners, new join methods, ... all in under 20 rules."
//
// This harness counts the registered STARs and then drives a probe
// workload whose chosen plans must collectively exercise every strategy
// family: sequential scan, index scan, nested-loop / hash / merge join,
// TEMP materialization, SORT and SHIP glue, DISTINCT — plus a DBC STAR
// (the R-tree) on top without touching the evaluator or search code.

#include <map>
#include <set>

#include "bench_util.h"
#include "ext/extensions.h"
#include "optimizer/optimizer.h"
#include "parser/parser.h"
#include "qgm/binder.h"
#include "rewrite/rule_engine.h"

using namespace starburst;
using namespace starburst::bench;
using optimizer::Lolepop;
using optimizer::PlanPtr;

namespace {

void CollectOps(const optimizer::Plan& plan, std::set<std::string>* ops) {
  if (plan.op == Lolepop::kExtension) {
    ops->insert(plan.ext_name);
  } else {
    ops->insert(optimizer::LolepopName(plan.op));
  }
  for (const PlanPtr& input : plan.inputs) CollectOps(*input, ops);
}

}  // namespace

int main() {
  Database db;
  (void)ext::RegisterAllExtensions(&db);

  MakeIntTable(&db, "r", 200, 20, 1);
  MakeIntTable(&db, "s", 20000, 2000, 2);
  MustExec(&db, "CREATE INDEX s_k ON s (k)");
  MustExec(&db, "CREATE TABLE pts (id INT, loc POINT)");
  MustExec(&db, "INSERT INTO pts VALUES (1, POINT(1,1)), (2, POINT(2,2)), "
                "(3, POINT(8,8))");
  MustExec(&db, "CREATE INDEX pts_loc ON pts (loc) USING RTREE");
  // A "remote" table exercises SHIP glue.
  {
    TableDef remote;
    remote.name = "remote_r";
    remote.site = "siteB";
    remote.schema = TableSchema(
        {{"k", DataType::Int(), false}, {"v", DataType::Int(), true}});
    remote.stats.row_count = 500;
    (void)db.catalog().CreateTable(remote);
    (void)db.storage().CreateTable(remote);
    MustExec(&db, "INSERT INTO remote_r VALUES (1, 1), (2, 2)");
  }
  if (!db.AnalyzeAll().ok()) return 1;

  optimizer::Optimizer probe_opt(&db.catalog());
  std::printf("E5: registered STARs: %zu (paper: \"in under 20 rules\") %s\n",
              probe_opt.stars().size() + 1 /* + the DBC's rtree star */,
              probe_opt.stars().size() + 1 < 20 ? "OK" : "MISMATCH");
  std::printf("  base:");
  for (const std::string& name : probe_opt.stars().Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n  DBC : rtree_scan\n\n");

  struct Probe {
    const char* label;
    const char* sql;
  } probes[] = {
      {"sequential scan", "SELECT v FROM r WHERE v < 5"},
      {"index scan", "SELECT v FROM s WHERE k = 17"},
      {"hash or idx-NL join", "SELECT r.v FROM r, s WHERE r.k = s.k"},
      {"NL join + TEMP",
       "SELECT r1.v FROM r r1, r r2 WHERE r1.v < r2.v AND r1.k < 5"},
      {"distinct", "SELECT DISTINCT v FROM r"},
      {"ship (remote site)", "SELECT v FROM remote_r WHERE k = 1"},
      {"sort glue / order by", "SELECT v FROM r ORDER BY v"},
      {"DBC r-tree access",
       "SELECT id FROM pts WHERE CONTAINS(loc, 0, 0, 3, 3)"},
      {"group + aggregation", "SELECT v, COUNT(*) FROM s GROUP BY v"},
      {"set operation", "SELECT k FROM r UNION SELECT k FROM s"},
      {"recursion",
       "WITH RECURSIVE g(n) AS (SELECT 1 UNION ALL SELECT n+1 FROM g "
       "WHERE n < 4) SELECT n FROM g"},
  };

  std::set<std::string> all_ops;
  std::printf("%-24s %s\n", "probe", "operators in the chosen plan");
  for (const Probe& probe : probes) {
    Result<ResultSet> explain =
        db.Execute(std::string("EXPLAIN PLAN ") + probe.sql);
    Must(explain, probe.label);
    // Re-derive the op set by re-optimizing (EXPLAIN text is for humans).
    auto parsed = Parser::ParseQueryText(probe.sql);
    qgm::Binder binder(&db.catalog());
    auto graph = binder.BindQuery(**parsed);
    if (!graph.ok()) return 1;
    rewrite::RuleEngine engine = rewrite::MakeDefaultRuleEngine();
    if (!engine.Run(graph->get(), &db.catalog()).ok()) return 1;
    optimizer::Optimizer opt(&db.catalog());
    (void)opt.stars().Add(optimizer::Star{
        "rtree_probe_disabled", "Unused", 0,
        [](optimizer::PlanGenerator&, const optimizer::StarContext&,
           std::vector<PlanPtr>*) { return Status::OK(); }});
    auto plan = opt.Optimize(**graph);
    if (!plan.ok()) return 1;
    std::set<std::string> ops;
    CollectOps(**plan, &ops);
    // The DBC star lives in the Database's per-query optimizer; use the
    // EXPLAIN output for the spatial probe instead.
    std::string line;
    for (const std::string& op : ops) line += op + " ";
    if (std::string(probe.label).find("r-tree") != std::string::npos) {
      const std::string& text = explain->rows()[0][0].string_value();
      if (text.find("RTREE_SCAN") != std::string::npos) {
        line += "RTREE_SCAN ";
        ops.insert("RTREE_SCAN");
      }
    }
    std::printf("%-24s %s\n", probe.label, line.c_str());
    all_ops.insert(ops.begin(), ops.end());
  }

  // Merge join: the cost model prefers hashing over sort-then-merge on
  // unsorted inputs (correctly), so demonstrate expressibility directly:
  // expand the JoinMethod nonterminal on pre-sorted streams and check an
  // MGJOIN alternative comes out, glued with no extra sorts.
  {
    auto parsed = Parser::ParseQueryText("SELECT r.v FROM r, s "
                                         "WHERE r.k = s.k");
    qgm::Binder binder(&db.catalog());
    auto graph = binder.BindQuery(**parsed);
    if (!graph.ok()) return 1;
    optimizer::Optimizer::Options mj_options;
    optimizer::Optimizer opt(&db.catalog(), mj_options);
    auto plan = opt.Optimize(**graph);
    if (!plan.ok()) return 1;
    optimizer::CostModel cost;
    optimizer::StarRegistry registry;
    optimizer::RegisterDefaultStars(&registry);
    optimizer::PlanGenerator gen(&registry, &cost, &db.catalog());
    // Pre-sorted streams: SORTs over scans of r and s.
    const qgm::Box* root = (*graph)->root();
    const qgm::Quantifier* qr = root->quantifiers[0].get();
    const qgm::Quantifier* qs = root->quantifiers[1].get();
    auto sorted_scan = [&](const qgm::Quantifier* q) -> PlanPtr {
      auto scan = optimizer::NewPlan(Lolepop::kScan);
      scan->quantifier = q;
      scan->table = q->input->table;
      for (size_t c = 0; c < q->NumColumns(); ++c) {
        scan->scan_columns.push_back(c);
        scan->output.push_back(optimizer::ColumnBinding{q, nullptr, c});
      }
      cost.FinishScan(scan.get());
      auto sort = optimizer::NewPlan(Lolepop::kSort);
      sort->inputs = {scan};
      sort->output = scan->output;
      sort->sort_keys = {{0, true}};
      cost.FinishSort(sort.get());
      return sort;
    };
    optimizer::StarContext ctx;
    ctx.catalog = &db.catalog();
    ctx.box = root;
    ctx.outer = sorted_scan(qr);
    ctx.inner = sorted_scan(qs);
    ctx.join_preds = {root->predicates[0].get()};
    auto joins = gen.Expand("JoinMethod", ctx);
    if (!joins.ok()) return 1;
    bool mg_cheapest_given_order = false;
    PlanPtr best;
    for (const PlanPtr& j : *joins) {
      if (best == nullptr || j->props.cost < best->props.cost) best = j;
    }
    if (best != nullptr && best->op == Lolepop::kMergeJoin) {
      mg_cheapest_given_order = true;
    }
    for (const PlanPtr& j : *joins) {
      if (j->op == Lolepop::kMergeJoin) all_ops.insert("MGJOIN");
    }
    std::printf("%-24s MGJOIN expressed; cheapest on pre-sorted inputs: %s\n",
                "merge join (direct)", mg_cheapest_given_order ? "yes" : "no");
  }

  const char* required[] = {"SCAN",   "ISCAN", "NLJOIN",  "HSJOIN",
                            "MGJOIN", "TEMP",  "SORT",    "SHIP",
                            "DISTINCT", "GROUP", "SETOP", "RECURSE",
                            "RTREE_SCAN"};
  std::printf("\nstrategy coverage:");
  bool complete = true;
  for (const char* op : required) {
    bool hit = all_ops.count(op) > 0;
    if (!hit) complete = false;
    std::printf(" %s%s", op, hit ? "+" : "(MISSING)");
  }
  std::printf("\nShape check: every R*-repertoire strategy plus the DBC "
              "access method reachable from <20 STARs: %s\n",
              complete ? "OK" : "INCOMPLETE");
  return complete ? 0 : 1;
}
