#include "exec/executor.h"

#include <thread>

namespace starburst::exec {

size_t Executor::Options::DefaultParallelism() {
  unsigned int n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

Result<std::vector<Row>> Executor::Execute(const optimizer::PlanPtr& plan,
                                           const optimizer::Optimizer& optimizer,
                                           const qgm::Graph& graph) {
  return Execute(plan, optimizer, graph, Options{});
}

Result<std::vector<Row>> Executor::Execute(const optimizer::PlanPtr& plan,
                                           const optimizer::Optimizer& optimizer,
                                           const qgm::Graph& graph,
                                           const Options& options) {
  PlanRefiner::Options refine_options;
  refine_options.cache_mode = options.cache_mode;
  refine_options.ship_delay_us = options.ship_delay_us;
  refine_options.semi_naive_recursion = options.semi_naive_recursion;
  refine_options.stats = options.stats;
  refine_options.parallelism = options.parallelism == 0 ? 1 : options.parallelism;
  refine_options.parallel_min_rows = options.parallel_min_rows;
  refine_options.batch_size = options.batch_size == 0 ? 1 : options.batch_size;
  refine_options.sort_memory_bytes = options.sort_memory_bytes;
  refine_options.agg_memory_bytes = options.agg_memory_bytes;
  PlanRefiner refiner(catalog_, &optimizer.box_plans(), refine_options);
  STARBURST_ASSIGN_OR_RETURN(OperatorPtr root, refiner.Refine(plan));
  if (graph.limit >= 0) {
    root = MakeLimitOp(std::move(root), graph.limit);
    if (options.stats != nullptr) {
      obs::PlanStatsTree::Node* limit_node = options.stats->WrapRoot(
          "LIMIT " + std::to_string(graph.limit), plan->props.cardinality,
          plan->props.cost);
      root->set_stats(&limit_node->actual);
    }
  }

  ExecContext ctx(storage_, catalog_);
  ctx.set_batch_size(refine_options.batch_size);
  ctx.set_query_memory_budget(options.query_memory_bytes);
  STARBURST_RETURN_IF_ERROR(root->Open(&ctx));
  double est = plan->props.cardinality;
  size_t reserve_hint = est > 0 ? static_cast<size_t>(est) : 0;
  Result<std::vector<Row>> rows =
      DrainOperator(root.get(), ctx.batch_size(), reserve_hint, &ctx);
  root->Close();
  last_stats_ = ctx.stats();
  if (!rows.ok()) return rows.status();
  return rows;
}

}  // namespace starburst::exec
