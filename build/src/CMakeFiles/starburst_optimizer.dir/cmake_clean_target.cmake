file(REMOVE_RECURSE
  "libstarburst_optimizer.a"
)
