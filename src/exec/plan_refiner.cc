#include "exec/plan_refiner.h"

namespace starburst::exec {

using optimizer::ColumnBinding;
using optimizer::JoinKind;
using optimizer::Lolepop;
using optimizer::Plan;
using optimizer::PlanPtr;
using qgm::Expr;

namespace {

/// Splits a predicate into its top-level OR disjuncts.
void SplitDisjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == Expr::Kind::kBinary && e->bop == ast::BinaryOp::kOr) {
    SplitDisjuncts(e->children[0].get(), out);
    SplitDisjuncts(e->children[1].get(), out);
    return;
  }
  out->push_back(e);
}

size_t CountIterRefs(const Plan& plan, const qgm::Box* recursion) {
  size_t count = 0;
  if (plan.op == Lolepop::kIterRef && plan.box != nullptr &&
      plan.box->recursion == recursion) {
    ++count;
  }
  for (const PlanPtr& input : plan.inputs) {
    count += CountIterRefs(*input, recursion);
  }
  return count;
}

}  // namespace

CompileEnv PlanRefiner::EnvFor(const std::vector<ColumnBinding>* layout) {
  CompileEnv env;
  env.layout = layout;
  env.catalog = catalog_;
  env.cache_mode = options_.cache_mode;
  env.build_box_operator = [this](const qgm::Box* box) {
    return BuildBoxOperator(box);
  };
  env.on_param = [this](const qgm::Quantifier* q, size_t col) {
    if (!param_scopes_.empty()) {
      param_scopes_.back()->insert(ExecContext::ParamKey{q, col});
    }
  };
  return env;
}

Result<CompiledExprPtr> PlanRefiner::Compile(
    const Expr& e, const std::vector<ColumnBinding>& layout,
    std::set<ExecContext::ParamKey>* free_params) {
  std::set<ExecContext::ParamKey> scratch;
  std::set<ExecContext::ParamKey>* sink =
      free_params != nullptr ? free_params : &scratch;
  param_scopes_.push_back(sink);
  Result<CompiledExprPtr> out = CompileExpr(e, EnvFor(&layout));
  param_scopes_.pop_back();
  // Unresolved params of an explicit compile bubble to the enclosing scope.
  if (free_params == nullptr && !param_scopes_.empty()) {
    for (const auto& key : scratch) param_scopes_.back()->insert(key);
  }
  return out;
}

Result<OperatorPtr> PlanRefiner::Refine(const PlanPtr& plan) {
  return Build(*plan);
}

Result<OperatorPtr> PlanRefiner::BuildBoxOperator(const qgm::Box* box) {
  auto it = box_plans_->find(box);
  if (it == box_plans_->end()) {
    return Status::Internal("no plan recorded for box " + box->Label());
  }
  if (options_.stats == nullptr) return Build(*it->second);
  // Group the subquery runtime's operators under a wrapper node so the
  // annotated tree shows where the evaluate-on-demand plan hangs.
  obs::PlanStatsTree::Node* parent =
      stats_stack_.empty() ? nullptr : stats_stack_.back();
  obs::PlanStatsTree::Node* node = options_.stats->AddNode(
      parent, "SUBQUERY " + box->Label(), it->second->props.cardinality,
      it->second->props.cost);
  node->synthetic = true;
  stats_stack_.push_back(node);
  Result<OperatorPtr> op = Build(*it->second);
  stats_stack_.pop_back();
  return op;
}

Result<OperatorPtr> PlanRefiner::Build(const Plan& plan) {
  if (ShouldParallelize(plan)) return BuildParallel(plan);
  if (options_.stats == nullptr) return BuildOp(plan);
  // Clones of a parallel subtree share one stats node per plan node, so
  // EXPLAIN ANALYZE shows a single aggregated line per operator.
  obs::PlanStatsTree::Node* node = nullptr;
  if (parallel_stats_ != nullptr) {
    auto it = parallel_stats_->find(&plan);
    if (it != parallel_stats_->end()) node = it->second;
  }
  if (node == nullptr) {
    obs::PlanStatsTree::Node* parent =
        stats_stack_.empty() ? nullptr : stats_stack_.back();
    node = options_.stats->AddNode(parent, plan.HeadLine(),
                                   plan.props.cardinality, plan.props.cost);
    if (parallel_stats_ != nullptr) (*parallel_stats_)[&plan] = node;
  }
  stats_stack_.push_back(node);
  Result<OperatorPtr> op = BuildOp(plan);
  stats_stack_.pop_back();
  if (op.ok()) (*op)->set_stats(&node->actual);
  return op;
}

bool PlanRefiner::ShouldParallelize(const Plan& plan) const {
  if (options_.parallelism <= 1) return false;
  if (parallel_ctx_ != nullptr) return false;  // already inside a gather
  if (plan.op == Lolepop::kGroupAgg) {
    // A GROUP BY over a parallel-safe subtree runs as a partition
    // exchange: parallel input clones route rows by group-key hash, one
    // aggregation clone per partition. Keys and arguments must be
    // evaluable on the clone side.
    if (plan.inputs.empty() || plan.box == nullptr) return false;
    if (!plan.predicates.empty()) return false;
    const Plan& input = *plan.inputs[0];
    if (!optimizer::IsParallelSafe(input)) return false;
    if (optimizer::ParallelScanRows(input) < options_.parallel_min_rows) {
      return false;
    }
    for (const auto& k : plan.box->group_keys) {
      if (!optimizer::ExprIsParallelSafeOver(*k, input)) return false;
    }
    for (const qgm::AggregateSpec& a : plan.box->aggregates) {
      if (a.arg != nullptr &&
          !optimizer::ExprIsParallelSafeOver(*a.arg, input)) {
        return false;
      }
    }
    return true;
  }
  if (!optimizer::IsParallelSafe(plan)) return false;
  return optimizer::ParallelScanRows(plan) >= options_.parallel_min_rows;
}

void PlanRefiner::CollectParallelNodes(
    const Plan& plan, parallel::ParallelPlanContext* pctx,
    std::vector<const Plan*>* join_nodes) {
  // Children first: a hash join's build phase may probe joins nested in
  // its own inner subtree, so innermost builds must run first.
  for (const PlanPtr& input : plan.inputs) {
    CollectParallelNodes(*input, pctx, join_nodes);
  }
  if (plan.op == Lolepop::kScan) {
    auto src = std::make_unique<parallel::ParallelPlanContext::ScanSource>();
    src->table = plan.table;
    pctx->scans.emplace(&plan, std::move(src));
  } else if (plan.op == Lolepop::kHashJoin) {
    auto jb = std::make_unique<parallel::ParallelPlanContext::JoinBuild>();
    for (const auto& key : plan.equi_keys) jb->key_slots.push_back(key.second);
    pctx->builds_by_node.emplace(&plan, jb.get());
    pctx->builds.push_back(std::move(jb));
    join_nodes->push_back(&plan);
  }
}

Result<OperatorPtr> PlanRefiner::BuildParallel(const Plan& plan) {
  const size_t workers = options_.parallelism;
  const bool agg_mode = plan.op == Lolepop::kGroupAgg;
  const Plan& pipeline_root = agg_mode ? *plan.inputs[0] : plan;

  auto pctx = std::make_unique<parallel::ParallelPlanContext>(workers);
  std::vector<const Plan*> join_nodes;
  CollectParallelNodes(pipeline_root, pctx.get(), &join_nodes);

  obs::PlanStatsTree::Node* gather_node = nullptr;
  if (options_.stats != nullptr) {
    obs::PlanStatsTree::Node* parent =
        stats_stack_.empty() ? nullptr : stats_stack_.back();
    gather_node = options_.stats->AddNode(
        parent, "GATHER workers=" + std::to_string(workers),
        plan.props.cardinality, plan.props.cost);
    gather_node->synthetic = true;
    stats_stack_.push_back(gather_node);
  }

  std::map<const Plan*, obs::PlanStatsTree::Node*> clone_stats;
  parallel_ctx_ = pctx.get();
  parallel_stats_ = &clone_stats;

  auto build_all = [&]() -> Result<OperatorPtr> {
    // Build-side clones first (innermost joins first, matching the order
    // the gather runs them in).
    for (size_t j = 0; j < join_nodes.size(); ++j) {
      parallel::ParallelPlanContext::JoinBuild* jb = pctx->builds[j].get();
      const Plan& inner = *join_nodes[j]->inputs[1];
      for (size_t w = 0; w < workers; ++w) {
        STARBURST_ASSIGN_OR_RETURN(OperatorPtr clone, Build(inner));
        jb->build_clones.push_back(std::move(clone));
      }
    }
    if (!agg_mode) {
      std::vector<OperatorPtr> pipelines;
      for (size_t w = 0; w < workers; ++w) {
        STARBURST_ASSIGN_OR_RETURN(OperatorPtr clone, Build(plan));
        pipelines.push_back(std::move(clone));
      }
      return parallel::MakeGatherOp(std::move(pctx), std::move(pipelines));
    }
    // Aggregating gather: clone the input pipeline, compile per-clone
    // partition keys, and build one aggregation clone per partition. A
    // global aggregate gets a single partition (its one result row must
    // not be split across clones).
    const Plan& input_plan = *plan.inputs[0];
    std::vector<OperatorPtr> input_clones;
    std::vector<std::vector<CompiledExprPtr>> partition_keys;
    for (size_t w = 0; w < workers; ++w) {
      STARBURST_ASSIGN_OR_RETURN(OperatorPtr clone, Build(input_plan));
      input_clones.push_back(std::move(clone));
      std::vector<CompiledExprPtr> keys;
      for (const auto& k : plan.box->group_keys) {
        STARBURST_ASSIGN_OR_RETURN(
            CompiledExprPtr c, Compile(*k, input_plan.output, nullptr));
        keys.push_back(std::move(c));
      }
      partition_keys.push_back(std::move(keys));
    }
    const size_t nparts = plan.box->group_keys.empty() ? 1 : workers;
    parallel::AggExchange* exchange = &pctx->exchange;
    obs::PlanStatsTree::Node* agg_node = nullptr;
    if (options_.stats != nullptr) {
      agg_node = options_.stats->AddNode(gather_node, plan.HeadLine(),
                                         plan.props.cardinality,
                                         plan.props.cost);
    }
    std::vector<OperatorPtr> agg_clones;
    for (size_t p = 0; p < nparts; ++p) {
      OperatorPtr source = parallel::MakeExchangeSourceOp(exchange, p);
      STARBURST_ASSIGN_OR_RETURN(OperatorPtr agg,
                                 BuildGroupAggOver(plan, std::move(source)));
      if (agg_node != nullptr) agg->set_stats(&agg_node->actual);
      agg_clones.push_back(std::move(agg));
    }
    return parallel::MakeGatherAggOp(std::move(pctx), std::move(input_clones),
                                     std::move(partition_keys),
                                     std::move(agg_clones));
  };

  Result<OperatorPtr> out = build_all();
  parallel_ctx_ = nullptr;
  parallel_stats_ = nullptr;
  if (gather_node != nullptr) {
    stats_stack_.pop_back();
    if (out.ok()) (*out)->set_stats(&gather_node->actual);
  }
  return out;
}

Result<OperatorPtr> PlanRefiner::BuildOp(const Plan& plan) {
  switch (plan.op) {
    case Lolepop::kScan: {
      std::vector<CompiledExprPtr> preds;
      for (const Expr* p : plan.predicates) {
        STARBURST_ASSIGN_OR_RETURN(CompiledExprPtr c,
                                   Compile(*p, plan.output, nullptr));
        preds.push_back(std::move(c));
      }
      if (parallel_ctx_ != nullptr) {
        auto it = parallel_ctx_->scans.find(&plan);
        if (it == parallel_ctx_->scans.end()) {
          return Status::Internal("scan missing from parallel context");
        }
        return MakeMorselScanOp(plan.table, plan.scan_columns,
                                std::move(preds), &it->second->morsels);
      }
      return MakeScanOp(plan.table, plan.scan_columns, std::move(preds));
    }

    case Lolepop::kIndexScan: {
      const Expr* bound_pred = plan.index_predicate;
      if (bound_pred == nullptr) {
        // Unbounded ordered index scan.
        std::vector<CompiledExprPtr> preds;
        for (const Expr* p : plan.predicates) {
          STARBURST_ASSIGN_OR_RETURN(CompiledExprPtr c,
                                     Compile(*p, plan.output, nullptr));
          preds.push_back(std::move(c));
        }
        return MakeIndexScanOp(plan.table, plan.index, ast::BinaryOp::kEq,
                               nullptr, plan.scan_columns, std::move(preds));
      }
      const Expr* col_side = bound_pred->children[0].get();
      const Expr* other = bound_pred->children[1].get();
      ast::BinaryOp op = bound_pred->bop;
      bool col_is_left = col_side->kind == Expr::Kind::kColumnRef &&
                         col_side->quantifier == plan.quantifier;
      if (!col_is_left) {
        std::swap(col_side, other);
        switch (op) {  // mirror the comparison
          case ast::BinaryOp::kLt: op = ast::BinaryOp::kGt; break;
          case ast::BinaryOp::kLe: op = ast::BinaryOp::kGe; break;
          case ast::BinaryOp::kGt: op = ast::BinaryOp::kLt; break;
          case ast::BinaryOp::kGe: op = ast::BinaryOp::kLe; break;
          default: break;
        }
      }
      // The bound references no slot of this scan: empty layout, params
      // resolve through the context (dependent index access).
      static const std::vector<ColumnBinding> kEmptyLayout;
      STARBURST_ASSIGN_OR_RETURN(CompiledExprPtr bound,
                                 Compile(*other, kEmptyLayout, nullptr));
      std::vector<CompiledExprPtr> preds;
      for (const Expr* p : plan.predicates) {
        STARBURST_ASSIGN_OR_RETURN(CompiledExprPtr c,
                                   Compile(*p, plan.output, nullptr));
        preds.push_back(std::move(c));
      }
      return MakeIndexScanOp(plan.table, plan.index, op, std::move(bound),
                             plan.scan_columns, std::move(preds));
    }

    case Lolepop::kValues: {
      std::vector<Row> rows;
      if (plan.box != nullptr && plan.box->kind == qgm::BoxKind::kValues) {
        for (const auto& r : plan.box->rows) rows.push_back(Row(r));
      } else {
        rows.push_back(Row());  // SELECT with no FROM: one empty tuple
      }
      return MakeValuesOp(std::move(rows));
    }

    case Lolepop::kFilter: {
      STARBURST_ASSIGN_OR_RETURN(OperatorPtr input, Build(*plan.inputs[0]));
      std::vector<CompiledExprPtr> preds;
      for (const Expr* p : plan.predicates) {
        STARBURST_ASSIGN_OR_RETURN(CompiledExprPtr c,
                                   Compile(*p, plan.inputs[0]->output, nullptr));
        preds.push_back(std::move(c));
      }
      return MakeFilterOp(std::move(input), std::move(preds));
    }

    case Lolepop::kOrRoute: {
      STARBURST_ASSIGN_OR_RETURN(OperatorPtr input, Build(*plan.inputs[0]));
      OperatorPtr op = std::move(input);
      for (const Expr* p : plan.predicates) {
        std::vector<const Expr*> disjuncts;
        SplitDisjuncts(p, &disjuncts);
        std::vector<std::vector<CompiledExprPtr>> branches;
        for (const Expr* d : disjuncts) {
          std::vector<CompiledExprPtr> branch;
          STARBURST_ASSIGN_OR_RETURN(CompiledExprPtr c,
                                     Compile(*d, plan.inputs[0]->output, nullptr));
          branch.push_back(std::move(c));
          branches.push_back(std::move(branch));
        }
        op = MakeOrRouteOp(std::move(op), std::move(branches));
      }
      return op;
    }

    case Lolepop::kProject: {
      STARBURST_ASSIGN_OR_RETURN(OperatorPtr input, Build(*plan.inputs[0]));
      // Relabel nodes (quantifier set, or positional box aliases) pass
      // tuples through untouched.
      if (plan.quantifier != nullptr || plan.box == nullptr ||
          plan.box->head.empty() || plan.box->head[0].expr == nullptr) {
        return MakeProjectOp(std::move(input), {});
      }
      std::vector<CompiledExprPtr> exprs;
      for (const qgm::HeadColumn& h : plan.box->head) {
        STARBURST_ASSIGN_OR_RETURN(
            CompiledExprPtr c,
            Compile(*h.expr, plan.inputs[0]->output, nullptr));
        exprs.push_back(std::move(c));
      }
      return MakeProjectOp(std::move(input), std::move(exprs));
    }

    case Lolepop::kSort: {
      STARBURST_ASSIGN_OR_RETURN(OperatorPtr input, Build(*plan.inputs[0]));
      return MakeSortOp(std::move(input), plan.sort_keys,
                        options_.sort_memory_bytes);
    }

    case Lolepop::kDistinct: {
      STARBURST_ASSIGN_OR_RETURN(OperatorPtr input, Build(*plan.inputs[0]));
      return MakeDistinctOp(std::move(input), options_.agg_memory_bytes);
    }

    case Lolepop::kTemp: {
      STARBURST_ASSIGN_OR_RETURN(OperatorPtr input, Build(*plan.inputs[0]));
      if (plan.shared) {
        return MakeSharedTempOp(std::move(input), &plan);
      }
      return MakeTempOp(std::move(input));
    }

    case Lolepop::kShip: {
      STARBURST_ASSIGN_OR_RETURN(OperatorPtr input, Build(*plan.inputs[0]));
      return MakeShipOp(std::move(input), options_.ship_delay_us);
    }

    case Lolepop::kNlJoin:
    case Lolepop::kHashJoin:
    case Lolepop::kMergeJoin:
      return BuildJoin(plan);

    case Lolepop::kGroupAgg:
      return BuildGroupAgg(plan);

    case Lolepop::kSetOp: {
      STARBURST_ASSIGN_OR_RETURN(OperatorPtr left, Build(*plan.inputs[0]));
      STARBURST_ASSIGN_OR_RETURN(OperatorPtr right, Build(*plan.inputs[1]));
      return MakeSetOpOp(std::move(left), std::move(right), plan.box->setop,
                         plan.box->setop_all);
    }

    case Lolepop::kTableFunc: {
      std::vector<OperatorPtr> inputs;
      for (const PlanPtr& in : plan.inputs) {
        STARBURST_ASSIGN_OR_RETURN(OperatorPtr op, Build(*in));
        inputs.push_back(std::move(op));
      }
      return MakeTableFuncOp(std::move(inputs), plan.box->table_function,
                             plan.box->function_args);
    }

    case Lolepop::kRecurse: {
      STARBURST_ASSIGN_OR_RETURN(OperatorPtr base, Build(*plan.inputs[0]));
      STARBURST_ASSIGN_OR_RETURN(OperatorPtr step, Build(*plan.inputs[1]));
      size_t refs = CountIterRefs(*plan.inputs[1], plan.box);
      return MakeRecurseOp(std::move(base), std::move(step), plan.box, refs,
                           options_.semi_naive_recursion);
    }

    case Lolepop::kIterRef:
      return MakeIterRefOp(plan.box->recursion);

    case Lolepop::kExtension: {
      STARBURST_ASSIGN_OR_RETURN(
          const ExtOperatorRegistry::Builder* builder,
          ExtOperatorRegistry::Global().Lookup(plan.ext_name));
      return (*builder)(plan, *this);
    }
  }
  return Status::Internal("unknown LOLEPOP in plan refinement");
}

ExtOperatorRegistry& ExtOperatorRegistry::Global() {
  static ExtOperatorRegistry* registry = new ExtOperatorRegistry();
  return *registry;
}

Status ExtOperatorRegistry::Register(const std::string& name,
                                     Builder builder) {
  if (!builders_.emplace(IdentUpper(name), std::move(builder)).second) {
    return Status::AlreadyExists("extension operator '" + name + "' exists");
  }
  return Status::OK();
}

bool ExtOperatorRegistry::Contains(const std::string& name) const {
  return builders_.count(IdentUpper(name)) > 0;
}

Result<const ExtOperatorRegistry::Builder*> ExtOperatorRegistry::Lookup(
    const std::string& name) const {
  auto it = builders_.find(IdentUpper(name));
  if (it == builders_.end()) {
    return Status::NotFound("extension operator '" + name + "' not registered");
  }
  return &it->second;
}

Result<OperatorPtr> PlanRefiner::BuildJoin(const Plan& plan) {
  STARBURST_ASSIGN_OR_RETURN(OperatorPtr outer, Build(*plan.inputs[0]));

  // In a parallel clone a hash join probes the shared build table; its
  // inner subtree is built once by the gather's build phase, not per
  // clone (parallel-safe subtrees have no correlation parameters).
  const bool parallel_probe =
      parallel_ctx_ != nullptr && plan.op == Lolepop::kHashJoin;

  // Track correlation parameters compiled anywhere inside the inner
  // subtree; the join binds those it can supply from the outer row.
  OperatorPtr inner;
  std::set<ExecContext::ParamKey> inner_free;
  if (!parallel_probe) {
    param_scopes_.push_back(&inner_free);
    Result<OperatorPtr> inner_result = Build(*plan.inputs[1]);
    param_scopes_.pop_back();
    if (!inner_result.ok()) return inner_result.status();
    inner = inner_result.TakeValue();
  }

  JoinSpec spec;
  spec.kind = plan.join_kind;
  spec.inner_width = plan.inputs[1]->output.size();

  // Residual predicates see the concatenated row.
  std::vector<ColumnBinding> concat = plan.inputs[0]->output;
  concat.insert(concat.end(), plan.inputs[1]->output.begin(),
                plan.inputs[1]->output.end());
  for (const Expr* p : plan.predicates) {
    if (p == plan.quant_compare) continue;  // consumed as the join function
    STARBURST_ASSIGN_OR_RETURN(CompiledExprPtr c, Compile(*p, concat, nullptr));
    spec.predicates.push_back(std::move(c));
  }

  if (plan.quant_compare != nullptr) {
    spec.cmp_op = plan.quant_compare->bop;
    STARBURST_ASSIGN_OR_RETURN(
        spec.quant_operand,
        Compile(*plan.quant_compare->children[0], plan.inputs[0]->output,
                nullptr));
  }
  if (plan.join_kind == JoinKind::kSetPred) {
    spec.set_pred = catalog_->functions().FindSetPredicate(
        plan.join_set_function.empty() ? "ANY" : plan.join_set_function);
    if (spec.set_pred == nullptr) {
      return Status::Internal("set predicate '" + plan.join_set_function +
                              "' not registered");
    }
  }

  // Dependent-join parameter wiring: everything resolvable from the outer
  // row binds here; the rest bubbles up to an enclosing join or subquery.
  for (const ExecContext::ParamKey& key : inner_free) {
    SubqueryRuntime::ParamSource src;
    src.q = key.first;
    src.column = key.second;
    src.outer_slot = -1;
    size_t slot = plan.inputs[0]->FindSlot(key.first, key.second);
    if (slot != Plan::kNoSlot) {
      src.outer_slot = static_cast<int>(slot);
    } else if (!param_scopes_.empty()) {
      param_scopes_.back()->insert(key);
    }
    if (src.outer_slot >= 0) spec.inner_params.push_back(src);
  }

  switch (plan.op) {
    case Lolepop::kNlJoin:
      return MakeNlJoinOp(std::move(outer), std::move(inner), std::move(spec));
    case Lolepop::kHashJoin:
      if (parallel_probe) {
        auto it = parallel_ctx_->builds_by_node.find(&plan);
        if (it == parallel_ctx_->builds_by_node.end()) {
          return Status::Internal("hash join missing from parallel context");
        }
        return MakeHashProbeOp(std::move(outer), &it->second->table,
                               plan.equi_keys, std::move(spec));
      }
      return MakeHashJoinOp(std::move(outer), std::move(inner), plan.equi_keys,
                            std::move(spec));
    default:
      return MakeMergeJoinOp(std::move(outer), std::move(inner),
                             plan.equi_keys, std::move(spec));
  }
}

Result<OperatorPtr> PlanRefiner::BuildGroupAgg(const Plan& plan) {
  STARBURST_ASSIGN_OR_RETURN(OperatorPtr input, Build(*plan.inputs[0]));
  return BuildGroupAggOver(plan, std::move(input));
}

Result<OperatorPtr> PlanRefiner::BuildGroupAggOver(const Plan& plan,
                                                   OperatorPtr input) {
  const qgm::Box* box = plan.box;
  const std::vector<ColumnBinding>& layout = plan.inputs[0]->output;

  std::vector<CompiledExprPtr> keys;
  std::vector<std::string> key_texts;
  for (const auto& k : box->group_keys) {
    STARBURST_ASSIGN_OR_RETURN(CompiledExprPtr c, Compile(*k, layout, nullptr));
    keys.push_back(std::move(c));
    key_texts.push_back(k->ToString());
  }

  std::vector<AggSpec> aggs;
  for (const qgm::AggregateSpec& spec : box->aggregates) {
    AggSpec a;
    a.def = spec.def;
    a.distinct = spec.distinct;
    if (spec.arg != nullptr) {
      STARBURST_ASSIGN_OR_RETURN(a.arg, Compile(*spec.arg, layout, nullptr));
    }
    aggs.push_back(std::move(a));
  }

  std::vector<GroupHeadItem> head;
  for (const qgm::HeadColumn& h : box->head) {
    GroupHeadItem item;
    if (h.expr != nullptr && h.expr->kind == Expr::Kind::kAggRef) {
      item.source = GroupHeadItem::Source::kAgg;
      item.index = h.expr->agg_index;
    } else if (h.expr != nullptr) {
      std::string text = h.expr->ToString();
      bool found = false;
      for (size_t i = 0; i < key_texts.size(); ++i) {
        if (key_texts[i] == text) {
          item.source = GroupHeadItem::Source::kKey;
          item.index = i;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::Internal("GROUP BY head column '" + h.name +
                                "' matches no group key");
      }
    } else {
      return Status::Internal("GROUP BY head column without expression");
    }
    head.push_back(item);
  }
  return MakeGroupAggOp(std::move(input), std::move(keys), std::move(aggs),
                        std::move(head), options_.agg_memory_bytes);
}

}  // namespace starburst::exec
