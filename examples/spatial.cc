// The DBC extension demo from §1/§2: an externally-defined POINT type,
// spatial functions, and an R-tree access method — all registered through
// public extension points, then used from plain Hydrogen.

#include <cstdio>

#include "engine/database.h"
#include "ext/extensions.h"

using starburst::Database;
using starburst::Result;
using starburst::ResultSet;

namespace {

void Run(Database& db, const char* sql) {
  std::printf("starburst> %s\n", sql);
  Result<ResultSet> result = db.Execute(sql);
  if (!result.ok()) {
    std::printf("ERROR: %s\n\n", result.status().ToString().c_str());
    return;
  }
  if (!result->rows().empty() && result->column_names().size() == 1 &&
      result->column_names()[0] == "plan") {
    std::printf("%s\n", result->rows()[0][0].string_value().c_str());
  } else {
    std::printf("%s\n", result->ToString().c_str());
  }
}

}  // namespace

int main() {
  Database db;
  // One call installs the POINT type, POINT/PX/PY/CONTAINS/DISTANCE
  // functions, the RTREE attachment kind, the DBC's TableAccess STAR, and
  // the RTREE_SCAN query-evaluation operator.
  if (!starburst::ext::RegisterSpatialExtension(&db).ok()) {
    std::printf("failed to register the spatial extension\n");
    return 1;
  }

  Run(db, "CREATE TABLE landmarks (name STRING, loc POINT)");
  Run(db, "INSERT INTO landmarks VALUES "
          "('almaden', POINT(37.21, -121.81)), "
          "('campus', POINT(37.33, -122.01)), "
          "('downtown', POINT(37.34, -121.89)), "
          "('airport', POINT(37.36, -121.93)), "
          "('lighthouse', POINT(36.95, -122.03))");

  // A spatial window query runs fine without any index (CONTAINS is an
  // ordinary DBC scalar function evaluated in the scan's predicate
  // evaluator)...
  Run(db, "SELECT name FROM landmarks "
          "WHERE CONTAINS(loc, 37.3, -122.1, 37.4, -121.8) ORDER BY name");

  // ...but once the DBC attachment exists, "Corona must recognize when
  // this access method is useful for a query and when to invoke it" (§1).
  Run(db, "CREATE INDEX landmarks_loc ON landmarks (loc) USING RTREE");
  Run(db, "EXPLAIN PLAN SELECT name FROM landmarks "
          "WHERE CONTAINS(loc, 37.3, -122.1, 37.4, -121.8)");
  Run(db, "SELECT name FROM landmarks "
          "WHERE CONTAINS(loc, 37.3, -122.1, 37.4, -121.8) ORDER BY name");

  // Spatial functions compose with the rest of the language.
  Run(db, "SELECT name, DISTANCE(loc, POINT(37.33, -121.89)) AS d "
          "FROM landmarks ORDER BY d LIMIT 3");
  return 0;
}
