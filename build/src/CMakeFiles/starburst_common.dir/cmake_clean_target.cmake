file(REMOVE_RECURSE
  "libstarburst_common.a"
)
