#include "rewrite/rule_engine.h"

namespace starburst::rewrite {

using qgm::Box;
using qgm::BoxKind;
using qgm::Expr;
using qgm::Quantifier;
using qgm::QuantifierType;

namespace {

bool HasPreservedQuantifier(const Box& box) {
  for (const auto& q : box.quantifiers) {
    if (q->type == QuantifierType::kPreservedForEach) return true;
  }
  return false;
}

/// Finds a merge candidate in `box`: an F quantifier over a single-use
/// SELECT box that can be spliced in without changing duplicate semantics
/// (the paper's Rule 2 condition) or outer-join semantics.
Quantifier* FindMergeableQuantifier(const RuleContext& ctx) {
  Box* upper = ctx.box;
  if (upper->kind != BoxKind::kSelect) return nullptr;
  if (HasPreservedQuantifier(*upper)) return nullptr;  // outer-join body
  for (const auto& q : upper->quantifiers) {
    if (q->type != QuantifierType::kForEach) continue;
    Box* lower = q->input;
    if (lower == nullptr || lower->kind != BoxKind::kSelect) continue;
    if (HasPreservedQuantifier(*lower)) continue;  // outer-join box
    if (CountReferences(*ctx.graph, lower) != 1) continue;
    // Rule 2: IF NOT (T1.distinct = false AND OP2.eliminate-duplicate=true).
    // Dropping the lower dedup is safe only if the consumer dedups, or if
    // the dedup was a no-op anyway (output duplicate-free regardless).
    if (lower->distinct_enforced && !upper->distinct_enforced &&
        !lower->OutputIsDuplicateFree(/*ignore_own_enforcement=*/true)) {
      continue;
    }
    return q.get();
  }
  return nullptr;
}

/// Rule 2 (Operation Merging): merge a lower SELECT operation into its
/// consumer, creating "the union of the predicates and iterators of the
/// original operations to allow more scope for optimization". View merging
/// is this same rule — views bind to SELECT boxes.
Status MergeSelectAction(RuleContext& ctx) {
  Quantifier* q = FindMergeableQuantifier(ctx);
  if (q == nullptr) return Status::Internal("merge: candidate vanished");
  Box* upper = ctx.box;
  Box* lower = q->input;

  // Inline the lower head expressions wherever the merged quantifier was
  // referenced (consumer expressions and any correlated descendants).
  std::vector<const Expr*> replacements;
  replacements.reserve(lower->head.size());
  for (const auto& h : lower->head) replacements.push_back(h.expr.get());
  InlineEverywhere(ctx.graph, q, replacements);

  // Paper Rule 2 epilogue: IF OP2.eliminate-duplicate THEN
  // OP1.eliminate-duplicate (dedup responsibility moves up).
  if (lower->distinct_enforced &&
      !lower->OutputIsDuplicateFree(/*ignore_own_enforcement=*/true)) {
    upper->distinct_enforced = true;
  }

  // Splice the lower body into the upper box.
  std::vector<Quantifier*> moved;
  for (const auto& lq : lower->quantifiers) moved.push_back(lq.get());
  for (Quantifier* lq : moved) {
    upper->AddQuantifier(lower->RemoveQuantifier(lq));
  }
  for (auto& p : lower->predicates) {
    upper->predicates.push_back(std::move(p));
  }
  lower->predicates.clear();
  upper->RemoveQuantifier(q);  // drops the range edge; GC reclaims `lower`
  return Status::OK();
}

/// Rule 1 candidate: a top-level conjunct `expr = E(subquery)` where at
/// most one subquery tuple can match — directly, or after enforcing
/// duplicate elimination on the subquery (the generalized rule of
/// [HASA88]).
struct SubqueryToJoinCandidate {
  size_t predicate_index = 0;
  bool needs_dedup = false;
};

bool FindSubqueryToJoin(const RuleContext& ctx,
                        SubqueryToJoinCandidate* out) {
  Box* box = ctx.box;
  if (box->kind != BoxKind::kSelect) return false;
  for (size_t i = 0; i < box->predicates.size(); ++i) {
    const Expr& p = *box->predicates[i];
    if (p.kind != Expr::Kind::kQuantCompare || p.bop != ast::BinaryOp::kEq) {
      continue;
    }
    Quantifier* q = p.quantifier;
    if (q == nullptr || q->owner != box ||
        q->type != QuantifierType::kExists) {
      continue;
    }
    Box* sub = q->input;
    if (sub == nullptr || sub->head.size() != 1) continue;
    // The quantifier must serve only this membership test.
    int uses = 0;
    ForEachExprSlot(box, [&](qgm::ExprPtr* slot) {
      if ((*slot)->ReferencesQuantifier(q)) ++uses;
    });
    if (uses != 1) continue;
    bool dedup = !sub->OutputIsDuplicateFree();
    if (dedup) {
      // Enforcing distinctness mutates the subquery box: it must be ours
      // alone and of a kind that supports the flag.
      if (CountReferences(*ctx.graph, sub) != 1) continue;
      if (sub->kind != BoxKind::kSelect && sub->kind != BoxKind::kSetOp) {
        continue;
      }
      if (HasPreservedQuantifier(*sub)) continue;
    }
    out->predicate_index = i;
    out->needs_dedup = dedup;
    return true;
  }
  return false;
}

/// Rule 1 (Subquery to Join): "an existential subquery can be converted
/// to a join when there is at most one matching tuple of the subquery for
/// each tuple of the main query" — Q2.type = 'F'.
Status SubqueryToJoinAction(RuleContext& ctx) {
  SubqueryToJoinCandidate c;
  if (!FindSubqueryToJoin(ctx, &c)) {
    return Status::Internal("subquery-to-join: candidate vanished");
  }
  Box* box = ctx.box;
  qgm::ExprPtr p = std::move(box->predicates[c.predicate_index]);
  Quantifier* q = p->quantifier;
  Box* sub = q->input;
  if (c.needs_dedup) sub->distinct_enforced = true;
  q->type = QuantifierType::kForEach;  // convert to join
  box->predicates[c.predicate_index] =
      qgm::MakeBinary(ast::BinaryOp::kEq, std::move(p->children[0]),
                      qgm::MakeColumnRef(q, 0, sub->head[0].type),
                      DataType::Bool());
  return Status::OK();
}

}  // namespace

void RegisterMergeRules(RuleEngine* engine) {
  (void)engine->AddRule(RewriteRule{
      "subquery_to_join", "subquery", /*priority=*/20, /*weight=*/1.0,
      [](const RuleContext& ctx) {
        SubqueryToJoinCandidate c;
        return FindSubqueryToJoin(ctx, &c);
      },
      SubqueryToJoinAction});
  (void)engine->AddRule(RewriteRule{
      "select_merge", "merge", /*priority=*/10, /*weight=*/1.0,
      [](const RuleContext& ctx) {
        return FindMergeableQuantifier(ctx) != nullptr;
      },
      MergeSelectAction});
}

}  // namespace starburst::rewrite
