#include "qgm/expr.h"

#include "qgm/box.h"

namespace starburst::qgm {

std::unique_ptr<Expr> Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->type = type;
  out->literal = literal;
  out->quantifier = quantifier;
  out->column = column;
  out->bop = bop;
  out->uop = uop;
  out->func = func;
  out->func_name = func_name;
  out->agg_index = agg_index;
  out->param_index = param_index;
  out->has_else = has_else;
  out->negated = negated;
  out->children.reserve(children.size());
  for (const auto& c : children) out->children.push_back(c->Clone());
  return out;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kColumnRef: {
      std::string qname = quantifier ? quantifier->DisplayName() : "?";
      std::string cname =
          quantifier ? quantifier->ColumnName(column) : std::to_string(column);
      return qname + "." + cname;
    }
    case Kind::kBinary:
      return "(" + children[0]->ToString() + " " + ast::BinaryOpName(bop) +
             " " + children[1]->ToString() + ")";
    case Kind::kUnary:
      return uop == ast::UnaryOp::kNot ? "(NOT " + children[0]->ToString() + ")"
                                       : "(-" + children[0]->ToString() + ")";
    case Kind::kScalarFunc: {
      std::string out = func_name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kAggRef:
      return "agg#" + std::to_string(agg_index);
    case Kind::kParam:
      return "?" + std::to_string(param_index + 1);
    case Kind::kCase: {
      std::string out = "CASE";
      size_t pairs = (children.size() - (has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        out += " WHEN " + children[2 * i]->ToString() + " THEN " +
               children[2 * i + 1]->ToString();
      }
      if (has_else) out += " ELSE " + children.back()->ToString();
      return out + " END";
    }
    case Kind::kIsNull:
      return children[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case Kind::kLike:
      return children[0]->ToString() + (negated ? " NOT LIKE " : " LIKE ") +
             children[1]->ToString();
    case Kind::kInList: {
      std::string out =
          children[0]->ToString() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kExistsTest:
      return std::string(negated ? "NOT " : "") + "EXISTS(" +
             (quantifier ? quantifier->DisplayName() : "?") + ")";
    case Kind::kQuantCompare: {
      std::string quant;
      if (quantifier == nullptr) {
        quant = "?";
      } else if (quantifier->type == QuantifierType::kSetPredicate) {
        quant = quantifier->set_function;
      } else {
        quant = QuantifierTypeGlyph(quantifier->type);
      }
      return children[0]->ToString() + " " + ast::BinaryOpName(bop) + " " +
             quant + "(" + (quantifier ? quantifier->DisplayName() : "?") + ")";
    }
  }
  return "?";
}

void Expr::CollectQuantifiers(std::set<Quantifier*>* out) const {
  if (quantifier != nullptr &&
      (kind == Kind::kColumnRef || kind == Kind::kExistsTest ||
       kind == Kind::kQuantCompare)) {
    out->insert(quantifier);
  }
  for (const auto& c : children) c->CollectQuantifiers(out);
}

bool Expr::ReferencesQuantifier(const Quantifier* q) const {
  if (quantifier == q &&
      (kind == Kind::kColumnRef || kind == Kind::kExistsTest ||
       kind == Kind::kQuantCompare)) {
    return true;
  }
  for (const auto& c : children) {
    if (c->ReferencesQuantifier(q)) return true;
  }
  return false;
}

void Expr::CollectColumnRefs(
    std::vector<std::pair<Quantifier*, size_t>>* out) const {
  if (kind == Kind::kColumnRef && quantifier != nullptr) {
    out->emplace_back(quantifier, column);
  }
  for (const auto& c : children) c->CollectColumnRefs(out);
}

void Expr::RemapQuantifier(const Quantifier* from, Quantifier* to,
                           const std::vector<size_t>& column_map) {
  if (quantifier == from) {
    if (kind == Kind::kColumnRef) {
      quantifier = to;
      if (!column_map.empty()) column = column_map[column];
    } else if (kind == Kind::kExistsTest || kind == Kind::kQuantCompare) {
      quantifier = to;
    }
  }
  for (auto& c : children) c->RemapQuantifier(from, to, column_map);
}

void Expr::InlineQuantifier(const Quantifier* from,
                            const std::vector<const Expr*>& replacements) {
  for (auto& c : children) {
    if (c->kind == Kind::kColumnRef && c->quantifier == from) {
      c = replacements[c->column]->Clone();
    } else {
      c->InlineQuantifier(from, replacements);
    }
  }
}

void InlineIntoExpr(ExprPtr* expr, const Quantifier* from,
                    const std::vector<const Expr*>& replacements) {
  if ((*expr)->kind == Expr::Kind::kColumnRef && (*expr)->quantifier == from) {
    *expr = replacements[(*expr)->column]->Clone();
    return;
  }
  (*expr)->InlineQuantifier(from, replacements);
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kLiteral;
  e->type = v.type();
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(Quantifier* q, size_t column, DataType type) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kColumnRef;
  e->quantifier = q;
  e->column = column;
  e->type = std::move(type);
  return e;
}

ExprPtr MakeBinary(ast::BinaryOp op, ExprPtr left, ExprPtr right,
                   DataType type) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->bop = op;
  e->type = std::move(type);
  e->children.push_back(std::move(left));
  e->children.push_back(std::move(right));
  return e;
}

ExprPtr MakeUnary(ast::UnaryOp op, ExprPtr operand, DataType type) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kUnary;
  e->uop = op;
  e->type = std::move(type);
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr MakeAggRef(size_t agg_index, DataType type) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kAggRef;
  e->agg_index = agg_index;
  e->type = std::move(type);
  return e;
}

ExprPtr ConjunctionOf(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return nullptr;
  ExprPtr out = std::move(conjuncts[0]);
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    out = MakeBinary(ast::BinaryOp::kAnd, std::move(out),
                     std::move(conjuncts[i]), DataType::Bool());
  }
  return out;
}

void SplitConjuncts(ExprPtr expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind == Expr::Kind::kBinary && expr->bop == ast::BinaryOp::kAnd) {
    SplitConjuncts(std::move(expr->children[0]), out);
    SplitConjuncts(std::move(expr->children[1]), out);
    return;
  }
  out->push_back(std::move(expr));
}

bool IsColumnEquality(const Expr& e) {
  return e.kind == Expr::Kind::kBinary && e.bop == ast::BinaryOp::kEq &&
         e.children[0]->kind == Expr::Kind::kColumnRef &&
         e.children[1]->kind == Expr::Kind::kColumnRef;
}

}  // namespace starburst::qgm
