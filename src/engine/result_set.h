#ifndef STARBURST_ENGINE_RESULT_SET_H_
#define STARBURST_ENGINE_RESULT_SET_H_

#include <string>
#include <vector>

#include "common/row.h"
#include "common/row_batch.h"

namespace starburst {

/// What a statement returns: rows + column names for queries, a message
/// and affected-row count for DDL/DML.
class ResultSet {
 public:
  ResultSet() = default;
  ResultSet(std::vector<std::string> column_names, std::vector<Row> rows)
      : column_names_(std::move(column_names)), rows_(std::move(rows)) {}

  static ResultSet Message(std::string message, int64_t affected = 0) {
    ResultSet rs;
    rs.message_ = std::move(message);
    rs.affected_rows_ = affected;
    return rs;
  }

  const std::vector<std::string>& column_names() const { return column_names_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }

  /// Batched fetch: reserve ahead of a drain loop, then move each fetched
  /// batch's active rows onto the result (the batch is left cleared).
  void Reserve(size_t n) { rows_.reserve(rows_.size() + n); }
  void AppendBatch(RowBatch* batch) { batch->MoveRowsTo(&rows_); }
  const std::string& message() const { return message_; }
  int64_t affected_rows() const { return affected_rows_; }
  size_t row_count() const { return rows_.size(); }

  /// ASCII-table rendering for the examples and interactive use.
  std::string ToString() const;

 private:
  std::vector<std::string> column_names_;
  std::vector<Row> rows_;
  std::string message_;
  int64_t affected_rows_ = 0;
};

}  // namespace starburst

#endif  // STARBURST_ENGINE_RESULT_SET_H_
