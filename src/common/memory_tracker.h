#ifndef STARBURST_COMMON_MEMORY_TRACKER_H_
#define STARBURST_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>

namespace starburst {

/// Byte accounting for a memory-governed consumer (a blocking operator's
/// build buffer, or the whole query). Trackers form a chain: an operator
/// tracker reserves against itself *and* its parent (the query-level
/// tracker on the ExecContext), so one operator blowing through the query
/// budget makes every sibling start spilling too.
///
/// Counters are atomic because parallel pipeline clones share the query
/// tracker and reserve concurrently. Budget 0 means unlimited: the
/// tracker still counts (peak() feeds EXPLAIN ANALYZE) but over_budget()
/// never fires.
///
/// Reservations are estimates (Row::MemoryBytes), not allocator truth —
/// the point is a spill trigger and an observable peak, not rlimits.
class MemoryTracker {
 public:
  MemoryTracker() = default;
  explicit MemoryTracker(uint64_t budget_bytes, MemoryTracker* parent = nullptr)
      : budget_(budget_bytes), parent_(parent) {}

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Rebinds budget/parent (an operator reuses its tracker across
  /// re-Opens). Does not touch used/peak; call Reset() for that.
  void Configure(uint64_t budget_bytes, MemoryTracker* parent) {
    budget_ = budget_bytes;
    parent_ = parent;
  }

  uint64_t budget() const { return budget_; }
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// Counts `bytes` here and up the parent chain, unconditionally. Pair
  /// with over_budget(): blocking operators reserve first, then spill
  /// when the ledger tips — a single row larger than the whole budget
  /// must still be admissible.
  void Reserve(uint64_t bytes) {
    for (MemoryTracker* t = this; t != nullptr; t = t->parent_) {
      uint64_t now =
          t->used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
      uint64_t peak = t->peak_.load(std::memory_order_relaxed);
      while (now > peak && !t->peak_.compare_exchange_weak(
                               peak, now, std::memory_order_relaxed)) {
      }
    }
  }

  void Release(uint64_t bytes) {
    for (MemoryTracker* t = this; t != nullptr; t = t->parent_) {
      t->used_.fetch_sub(bytes, std::memory_order_relaxed);
    }
  }

  /// True when this tracker or any ancestor with a budget is past it.
  bool over_budget() const {
    for (const MemoryTracker* t = this; t != nullptr; t = t->parent_) {
      if (t->budget_ > 0 &&
          t->used_.load(std::memory_order_relaxed) > t->budget_) {
        return true;
      }
    }
    return false;
  }

  /// Forgets this tracker's usage (releasing it from ancestors too) and
  /// clears the local peak. For operator Close/re-Open.
  void Reset() {
    uint64_t mine = used_.exchange(0, std::memory_order_relaxed);
    if (parent_ != nullptr && mine > 0) parent_->Release(mine);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  uint64_t budget_ = 0;  // 0 = unlimited
  MemoryTracker* parent_ = nullptr;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
};

}  // namespace starburst

#endif  // STARBURST_COMMON_MEMORY_TRACKER_H_
