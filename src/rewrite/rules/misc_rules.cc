#include <algorithm>
#include <set>

#include "rewrite/rule_engine.h"

namespace starburst::rewrite {

using qgm::Box;
using qgm::BoxKind;
using qgm::Expr;
using qgm::ExprPtr;
using qgm::Quantifier;
using qgm::QuantifierType;

namespace {

bool IsLiteral(const Expr& e) { return e.kind == Expr::Kind::kLiteral; }

/// Bind-time evaluation of literal-only operators. Returns nullptr when
/// the node is not foldable (or folding could change error behaviour,
/// e.g. division by zero is left for runtime).
ExprPtr TryFold(const Expr& e) {
  if (e.kind == Expr::Kind::kUnary && IsLiteral(*e.children[0])) {
    const Value& v = e.children[0]->literal;
    if (e.uop == ast::UnaryOp::kNot) {
      if (v.is_null()) return qgm::MakeLiteral(Value::Null());
      if (v.type_id() == TypeId::kBool) {
        return qgm::MakeLiteral(Value::Bool(!v.bool_value()));
      }
      return nullptr;
    }
    if (v.is_null()) return qgm::MakeLiteral(Value::Null());
    if (v.type_id() == TypeId::kInt) {
      return qgm::MakeLiteral(Value::Int(-v.int_value()));
    }
    if (v.type_id() == TypeId::kDouble) {
      return qgm::MakeLiteral(Value::Double(-v.double_value()));
    }
    return nullptr;
  }
  if (e.kind != Expr::Kind::kBinary) return nullptr;

  // Boolean short circuits only need one literal side.
  if (e.bop == ast::BinaryOp::kAnd || e.bop == ast::BinaryOp::kOr) {
    for (int side = 0; side < 2; ++side) {
      const Expr& lit = *e.children[side];
      const Expr& other = *e.children[1 - side];
      if (!IsLiteral(lit) || lit.literal.type_id() != TypeId::kBool) continue;
      bool b = lit.literal.bool_value();
      if (e.bop == ast::BinaryOp::kAnd) {
        if (!b) return qgm::MakeLiteral(Value::Bool(false));
        return other.Clone();
      }
      if (b) return qgm::MakeLiteral(Value::Bool(true));
      return other.Clone();
    }
    return nullptr;
  }

  if (!IsLiteral(*e.children[0]) || !IsLiteral(*e.children[1])) return nullptr;
  const Value& l = e.children[0]->literal;
  const Value& r = e.children[1]->literal;
  switch (e.bop) {
    case ast::BinaryOp::kEq:
    case ast::BinaryOp::kNe:
    case ast::BinaryOp::kLt:
    case ast::BinaryOp::kLe:
    case ast::BinaryOp::kGt:
    case ast::BinaryOp::kGe: {
      if (l.is_null() || r.is_null()) return qgm::MakeLiteral(Value::Null());
      Result<int> cmp = l.Compare(r);
      if (!cmp.ok()) return nullptr;
      bool b;
      switch (e.bop) {
        case ast::BinaryOp::kEq: b = *cmp == 0; break;
        case ast::BinaryOp::kNe: b = *cmp != 0; break;
        case ast::BinaryOp::kLt: b = *cmp < 0; break;
        case ast::BinaryOp::kLe: b = *cmp <= 0; break;
        case ast::BinaryOp::kGt: b = *cmp > 0; break;
        default: b = *cmp >= 0; break;
      }
      return qgm::MakeLiteral(Value::Bool(b));
    }
    case ast::BinaryOp::kAdd:
    case ast::BinaryOp::kSub:
    case ast::BinaryOp::kMul: {
      if (l.is_null() || r.is_null()) return qgm::MakeLiteral(Value::Null());
      if (l.type_id() == TypeId::kInt && r.type_id() == TypeId::kInt) {
        int64_t a = l.int_value(), b = r.int_value();
        int64_t v = e.bop == ast::BinaryOp::kAdd   ? a + b
                    : e.bop == ast::BinaryOp::kSub ? a - b
                                                   : a * b;
        return qgm::MakeLiteral(Value::Int(v));
      }
      Result<double> a = l.AsDouble();
      Result<double> b = r.AsDouble();
      if (!a.ok() || !b.ok()) return nullptr;
      double v = e.bop == ast::BinaryOp::kAdd   ? *a + *b
                 : e.bop == ast::BinaryOp::kSub ? *a - *b
                                                : *a * *b;
      return qgm::MakeLiteral(Value::Double(v));
    }
    case ast::BinaryOp::kConcat: {
      if (l.is_null() || r.is_null()) return qgm::MakeLiteral(Value::Null());
      if (l.type_id() != TypeId::kString || r.type_id() != TypeId::kString) {
        return nullptr;
      }
      return qgm::MakeLiteral(Value::String(l.string_value() + r.string_value()));
    }
    default:
      return nullptr;  // division/modulo: runtime decides on zero divisors
  }
}

/// Recursively folds inside `slot`; true if anything changed.
bool FoldExprTree(ExprPtr* slot) {
  bool changed = false;
  for (auto& c : (*slot)->children) {
    if (FoldExprTree(&c)) changed = true;
  }
  ExprPtr folded = TryFold(**slot);
  if (folded != nullptr) {
    *slot = std::move(folded);
    return true;
  }
  return changed;
}

bool HasFoldableExpr(const RuleContext& ctx) {
  bool found = false;
  ForEachExprSlot(ctx.box, [&](ExprPtr* slot) {
    if (found) return;
    ExprPtr probe = (*slot)->Clone();
    if (FoldExprTree(&probe)) found = true;
  });
  if (found) return true;
  // TRUE conjuncts are removable.
  for (const auto& p : ctx.box->predicates) {
    if (IsLiteral(*p) && p->literal.type_id() == TypeId::kBool &&
        p->literal.bool_value()) {
      return true;
    }
  }
  return false;
}

Status FoldAction(RuleContext& ctx) {
  ForEachExprSlot(ctx.box, [&](ExprPtr* slot) { FoldExprTree(slot); });
  auto& preds = ctx.box->predicates;
  preds.erase(std::remove_if(preds.begin(), preds.end(),
                             [](const ExprPtr& p) {
                               return IsLiteral(*p) &&
                                      p->literal.type_id() == TypeId::kBool &&
                                      p->literal.bool_value();
                             }),
              preds.end());
  return Status::OK();
}

/// Redundant join elimination [OTT82]: a self-join on a full unique key
/// is the identity; the second iterator can be dropped.
struct RedundantJoin {
  Quantifier* keep = nullptr;
  Quantifier* drop = nullptr;
  std::vector<size_t> equated_predicates;  // indexes of the key-eq conjuncts
};

bool FindRedundantJoin(const RuleContext& ctx, RedundantJoin* out) {
  Box* box = ctx.box;
  if (box->kind != BoxKind::kSelect) return false;
  for (const auto& q1 : box->quantifiers) {
    if (q1->type != QuantifierType::kForEach) continue;
    if (q1->input == nullptr || q1->input->kind != BoxKind::kBaseTable) continue;
    const TableDef* table = q1->input->table;
    if (table == nullptr || table->unique_keys.empty()) continue;
    for (const auto& q2 : box->quantifiers) {
      if (q2.get() == q1.get()) continue;
      if (q2->type != QuantifierType::kForEach || q2->input != q1->input) {
        continue;
      }
      // Columns equated between q1 and q2 by conjuncts, tracking indexes.
      std::vector<size_t> equated_cols;
      std::vector<size_t> pred_idx;
      for (size_t i = 0; i < box->predicates.size(); ++i) {
        const Expr& p = *box->predicates[i];
        if (!qgm::IsColumnEquality(p)) continue;
        const Expr& l = *p.children[0];
        const Expr& r = *p.children[1];
        bool q1l = l.quantifier == q1.get() && r.quantifier == q2.get() &&
                   l.column == r.column;
        bool q1r = r.quantifier == q1.get() && l.quantifier == q2.get() &&
                   l.column == r.column;
        if (q1l || q1r) {
          equated_cols.push_back(l.column);
          pred_idx.push_back(i);
        }
      }
      if (!table->ColumnsContainUniqueKey(equated_cols)) continue;
      // Dropping the equalities must not drop null filtering: key columns
      // must be NOT NULL.
      bool nullable = false;
      for (size_t c : equated_cols) {
        if (table->schema.column(c).nullable) nullable = true;
      }
      if (nullable) continue;
      out->keep = q1.get();
      out->drop = q2.get();
      out->equated_predicates = pred_idx;
      return true;
    }
  }
  return false;
}

Status RedundantJoinAction(RuleContext& ctx) {
  RedundantJoin c;
  if (!FindRedundantJoin(ctx, &c)) {
    return Status::Internal("redundant join: candidate vanished");
  }
  Box* box = ctx.box;
  // Drop the key-equality conjuncts (descending index order).
  std::sort(c.equated_predicates.rbegin(), c.equated_predicates.rend());
  for (size_t i : c.equated_predicates) {
    box->predicates.erase(box->predicates.begin() + i);
  }
  RemapEverywhere(ctx.graph, c.drop, c.keep, {});
  box->RemoveQuantifier(c.drop);
  return Status::OK();
}

}  // namespace

void RegisterMiscRules(RuleEngine* engine) {
  (void)engine->AddRule(RewriteRule{
      "constant_folding", "misc", /*priority=*/30, /*weight=*/1.0,
      HasFoldableExpr, FoldAction});
  (void)engine->AddRule(RewriteRule{
      "redundant_join_elimination", "misc", /*priority=*/15, /*weight=*/1.0,
      [](const RuleContext& ctx) {
        RedundantJoin c;
        return FindRedundantJoin(ctx, &c);
      },
      RedundantJoinAction});
}

}  // namespace starburst::rewrite
