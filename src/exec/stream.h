#ifndef STARBURST_EXEC_STREAM_H_
#define STARBURST_EXEC_STREAM_H_

#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/row.h"
#include "obs/op_stats.h"
#include "qgm/box.h"
#include "storage/storage_engine.h"

namespace starburst::exec {

/// Runtime statistics the QES collects while interpreting a QEP.
/// Counters are atomic: parallel pipeline clones under a Gather share
/// the coordinator's ExecContext and bump these concurrently. Copying
/// (QueryMetrics keeps a snapshot) is defined field-wise, relaxed.
struct ExecStats {
  std::atomic<uint64_t> rows_emitted{0};
  std::atomic<uint64_t> subquery_evaluations{0};  // inner plan (re-)executions
  std::atomic<uint64_t> subquery_cache_hits{0};   // correlation unchanged
  std::atomic<uint64_t> shipped_rows{0};          // through SHIP operators
  std::atomic<uint64_t> recursion_iterations{0};
  std::atomic<uint64_t> shared_materializations{0};  // shared TEMPs built

  ExecStats() = default;
  ExecStats(const ExecStats& o) { *this = o; }
  ExecStats& operator=(const ExecStats& o) {
    rows_emitted = o.rows_emitted.load(std::memory_order_relaxed);
    subquery_evaluations =
        o.subquery_evaluations.load(std::memory_order_relaxed);
    subquery_cache_hits = o.subquery_cache_hits.load(std::memory_order_relaxed);
    shipped_rows = o.shipped_rows.load(std::memory_order_relaxed);
    recursion_iterations =
        o.recursion_iterations.load(std::memory_order_relaxed);
    shared_materializations =
        o.shared_materializations.load(std::memory_order_relaxed);
    return *this;
  }
};

/// Shared evaluation context for one query execution: Core access,
/// correlation parameter frames (evaluate-on-demand subqueries, dependent
/// joins), and the recursion working tables.
class ExecContext {
 public:
  ExecContext(StorageEngine* storage, const Catalog* catalog)
      : storage_(storage), catalog_(catalog) {}

  StorageEngine* storage() { return storage_; }
  const Catalog* catalog() const { return catalog_; }
  ExecStats& stats() { return stats_; }

  /// Correlation frames. A dependent join or subquery invocation pushes a
  /// frame of (quantifier, column) -> value before (re)opening the inner
  /// stream; frames nest for multi-level correlation.
  using ParamKey = std::pair<const qgm::Quantifier*, size_t>;
  struct ParamFrame {
    std::map<ParamKey, Value> values;
  };
  void PushParams(const ParamFrame* frame) { param_stack_.push_back(frame); }
  void PopParams() { param_stack_.pop_back(); }
  /// Innermost binding wins.
  Result<Value> LookupParam(const qgm::Quantifier* q, size_t column) const;

  /// Recursion: the RECURSE operator publishes the table ITERREF reads,
  /// keyed by the recursive-union box.
  void SetIterationTable(const qgm::Box* recursion,
                         const std::vector<Row>* rows) {
    iteration_tables_[recursion] = rows;
  }
  const std::vector<Row>* IterationTable(const qgm::Box* recursion) const {
    auto it = iteration_tables_.find(recursion);
    return it == iteration_tables_.end() ? nullptr : it->second;
  }

  /// Shared table-expression materializations ("materialized once and
  /// used several times", §5), keyed by the optimizer's shared-TEMP plan
  /// node. All consumer operators read the same copy.
  const std::vector<Row>* SharedTable(const void* key) const {
    auto it = shared_tables_.find(key);
    return it == shared_tables_.end() ? nullptr : &it->second;
  }
  const std::vector<Row>* StoreSharedTable(const void* key,
                                           std::vector<Row> rows) {
    ++stats_.shared_materializations;
    return &(shared_tables_[key] = std::move(rows));
  }

 private:
  StorageEngine* storage_;
  const Catalog* catalog_;
  std::vector<const ParamFrame*> param_stack_;
  std::map<const qgm::Box*, const std::vector<Row>*> iteration_tables_;
  std::map<const void*, std::vector<Row>> shared_tables_;
  ExecStats stats_;
};

/// A QES operator (§7): "Each operator takes one or more streams of tuples
/// as input and produces one or more streams of tuples (usually one) as
/// output. We implement the concept of streams by lazy evaluation" — the
/// classic open/next/close protocol. Operators are re-openable: a dependent
/// join re-Opens its inner stream per outer row under fresh parameters.
///
/// The public Open/Next/Close entry points are non-virtual shims: with no
/// stats sink attached (the default) they forward straight to the *Impl
/// virtuals at the cost of one branch; with one attached (EXPLAIN ANALYZE,
/// SessionOptions::collect_op_stats) they also count invocations, rows,
/// and inclusive wall time. Subclasses implement OpenImpl/NextImpl/
/// CloseImpl and call their children through the public protocol, so
/// instrumentation composes through the whole tree.
class Operator {
 public:
  virtual ~Operator() = default;

  Status Open(ExecContext* ctx) {
    if (stats_ == nullptr) return OpenImpl(ctx);
    return OpenTimed(ctx);
  }
  /// Produces the next tuple; false at end of stream.
  Result<bool> Next(Row* row) {
    if (stats_ == nullptr) return NextImpl(row);
    return NextTimed(row);
  }
  void Close() {
    if (stats_ == nullptr) {
      CloseImpl();
    } else {
      CloseTimed();
    }
  }

  /// Attaches the counter block this operator accumulates into (null
  /// detaches). The block must outlive the operator's use.
  void set_stats(obs::OperatorStats* stats) { stats_ = stats; }

 protected:
  virtual Status OpenImpl(ExecContext* ctx) = 0;
  virtual Result<bool> NextImpl(Row* row) = 0;
  virtual void CloseImpl() = 0;

 private:
  Status OpenTimed(ExecContext* ctx);
  Result<bool> NextTimed(Row* row);
  void CloseTimed();

  obs::OperatorStats* stats_ = nullptr;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drains an operator into a vector (operator must be Open).
Result<std::vector<Row>> DrainOperator(Operator* op);

}  // namespace starburst::exec

#endif  // STARBURST_EXEC_STREAM_H_
