# Empty compiler generated dependencies file for bench_access_methods.
# This may be replaced when dependencies are built.
