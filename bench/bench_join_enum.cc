// E4 — §6's join enumerator: it "enumerates all valid join sequences by
// iteratively constructing progressively larger sets of iterators",
// "producing a potentially larger set of plans than did the R* and
// System R optimizers", with two pruning parameters: composite inners
// ("bushy trees") and Cartesian products.
//
// Chain / star / clique join topologies, n = 2..10 tables: pairs
// considered, plans retained, optimize time — with each pruning toggle.

#include "bench_util.h"
#include "parser/parser.h"
#include "qgm/binder.h"
#include "optimizer/optimizer.h"
#include "rewrite/rule_engine.h"

using namespace starburst;
using namespace starburst::bench;

namespace {

std::string TopologyQuery(const std::string& topology, int n) {
  std::string sql = "SELECT t1.k FROM t1";
  for (int t = 2; t <= n; ++t) sql += ", t" + std::to_string(t);
  sql += " WHERE 1 = 1";
  if (topology == "chain") {
    for (int t = 2; t <= n; ++t) {
      sql += " AND t" + std::to_string(t - 1) + ".k = t" + std::to_string(t) +
             ".k";
    }
  } else if (topology == "star") {
    for (int t = 2; t <= n; ++t) {
      sql += " AND t1.k = t" + std::to_string(t) + ".k";
    }
  } else {  // clique
    for (int a = 1; a <= n; ++a) {
      for (int b = a + 1; b <= n; ++b) {
        sql += " AND t" + std::to_string(a) + ".k = t" + std::to_string(b) +
               ".k";
      }
    }
  }
  return sql;
}

}  // namespace

int main() {
  Catalog catalog;
  for (int t = 1; t <= 10; ++t) {
    TableDef def;
    def.name = "t" + std::to_string(t);
    def.schema = TableSchema(
        {{"k", DataType::Int(), false}, {"v", DataType::Int(), true}});
    def.stats.row_count = 100.0 * t;  // asymmetric sizes: order matters
    def.stats.page_count = def.stats.row_count / 64 + 1;
    ColumnStats k;
    k.distinct_count = def.stats.row_count;
    def.stats.columns["K"] = k;
    (void)catalog.CreateTable(def);
  }
  rewrite::RuleEngine engine = rewrite::MakeDefaultRuleEngine();

  std::printf("E4: join enumeration effort vs. tables, per topology\n");
  std::printf("%-7s %3s | %10s %9s %9s | %10s %9s %9s\n", "shape", "n",
              "bushy:pairs", "plans", "time us", "deep:pairs", "plans",
              "time us");
  for (const std::string topology : {"chain", "star", "clique"}) {
    for (int n : {2, 4, 6, 8, 10}) {
      auto parsed = Parser::ParseQueryText(TopologyQuery(topology, n));
      double row[2][3];
      for (int mode = 0; mode < 2; ++mode) {
        qgm::Binder binder(&catalog);
        auto graph = binder.BindQuery(**parsed);
        if (!graph.ok()) return 1;
        if (!engine.Run(graph->get(), &catalog).ok()) return 1;
        optimizer::Optimizer::Options options;
        options.join.allow_composite_inner = mode == 0;
        optimizer::Optimizer opt(&catalog, options);
        Timer t;
        auto plan = opt.Optimize(**graph);
        double us = t.ElapsedUs();
        if (!plan.ok()) {
          std::fprintf(stderr, "optimize failed: %s\n",
                       plan.status().ToString().c_str());
          return 1;
        }
        row[mode][0] = static_cast<double>(opt.stats().enumerator.pairs_considered);
        row[mode][1] = static_cast<double>(opt.stats().enumerator.plans_kept);
        row[mode][2] = us;
      }
      std::printf("%-7s %3d | %10.0f %9.0f %9.0f | %10.0f %9.0f %9.0f\n",
                  topology.c_str(), n, row[0][0], row[0][1], row[0][2],
                  row[1][0], row[1][1], row[1][2]);
    }
  }

  // Cartesian products: pruned by default (as System R and R* always did),
  // admitted on request. On a fully-connected query the pruning shrinks
  // the considered space; a disconnected query instead pays the pruned
  // first pass *plus* the Cartesian fallback.
  std::printf("\nE4b: Cartesian-product pruning on connected chain queries\n");
  std::printf("%3s | %14s | %14s\n", "n", "pruned: pairs", "allowed: pairs");
  for (int n : {4, 6, 8}) {
    std::string sql = TopologyQuery("chain", n);
    auto parsed = Parser::ParseQueryText(sql);
    double pairs[2];
    for (int mode = 0; mode < 2; ++mode) {
      qgm::Binder binder(&catalog);
      auto graph = binder.BindQuery(**parsed);
      if (!graph.ok()) return 1;
      optimizer::Optimizer::Options options;
      options.join.allow_cartesian = mode == 1;
      optimizer::Optimizer opt(&catalog, options);
      if (!opt.Optimize(**graph).ok()) return 1;
      pairs[mode] = static_cast<double>(opt.stats().enumerator.pairs_considered);
    }
    std::printf("%3d | %14.0f | %14.0f\n", n, pairs[0], pairs[1]);
  }
  std::printf("\nShape check: clique > star > chain effort; bushy >= "
              "left-deep pairs; Cartesian admission inflates the space.\n");
  return 0;
}
