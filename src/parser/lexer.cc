#include "parser/lexer.h"

#include <cctype>

namespace starburst {

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kEof: return "<end of input>";
    case TokenKind::kIdentifier: return "identifier '" + text + "'";
    case TokenKind::kIntLiteral:
    case TokenKind::kDoubleLiteral: return "number '" + text + "'";
    case TokenKind::kStringLiteral: return "string '" + text + "'";
    default: return "'" + text + "'";
  }
}

char Lexer::Peek(size_t ahead) const {
  return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
}

char Lexer::Advance() {
  char c = text_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '-' && Peek(1) == '-') {
      while (!AtEnd() && Peek() != '\n') Advance();
    } else {
      break;
    }
  }
}

Token Lexer::MakeToken(TokenKind kind, size_t start) const {
  Token t;
  t.kind = kind;
  t.text = text_.substr(start, pos_ - start);
  t.offset = start;
  t.line = line_;
  t.column = column_;
  return t;
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    STARBURST_ASSIGN_OR_RETURN(Token t, NextToken());
    bool done = t.kind == TokenKind::kEof;
    tokens.push_back(std::move(t));
    if (done) break;
  }
  return tokens;
}

Result<Token> Lexer::NextToken() {
  SkipWhitespaceAndComments();
  if (AtEnd()) return MakeToken(TokenKind::kEof, pos_);

  size_t start = pos_;
  char c = Advance();

  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      Advance();
    }
    return MakeToken(TokenKind::kIdentifier, start);
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    bool is_double = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_double = true;
      Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t exp_start = pos_;
      Advance();
      if (Peek() == '+' || Peek() == '-') Advance();
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        is_double = true;
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
      } else {
        pos_ = exp_start;  // 'e' starts an identifier, not an exponent
      }
    }
    Token t = MakeToken(
        is_double ? TokenKind::kDoubleLiteral : TokenKind::kIntLiteral, start);
    if (is_double) {
      t.double_value = std::stod(t.text);
    } else {
      try {
        t.int_value = std::stoll(t.text);
      } catch (...) {
        return Status::SyntaxError("integer literal out of range: " + t.text);
      }
    }
    return t;
  }

  if (c == '\'') {
    std::string value;
    while (true) {
      if (AtEnd()) return Status::SyntaxError("unterminated string literal");
      char d = Advance();
      if (d == '\'') {
        if (Peek() == '\'') {  // escaped quote
          value.push_back('\'');
          Advance();
          continue;
        }
        break;
      }
      value.push_back(d);
    }
    Token t = MakeToken(TokenKind::kStringLiteral, start);
    t.text = std::move(value);
    return t;
  }

  if (c == '"') {  // quoted identifier
    std::string value;
    while (true) {
      if (AtEnd()) return Status::SyntaxError("unterminated quoted identifier");
      char d = Advance();
      if (d == '"') break;
      value.push_back(d);
    }
    Token t = MakeToken(TokenKind::kIdentifier, start);
    t.text = std::move(value);
    return t;
  }

  switch (c) {
    case '(': return MakeToken(TokenKind::kLParen, start);
    case ')': return MakeToken(TokenKind::kRParen, start);
    case ',': return MakeToken(TokenKind::kComma, start);
    case '.': return MakeToken(TokenKind::kDot, start);
    case ';': return MakeToken(TokenKind::kSemicolon, start);
    case '*': return MakeToken(TokenKind::kStar, start);
    case '+': return MakeToken(TokenKind::kPlus, start);
    case '-': return MakeToken(TokenKind::kMinus, start);
    case '/': return MakeToken(TokenKind::kSlash, start);
    case '%': return MakeToken(TokenKind::kPercent, start);
    case '?': return MakeToken(TokenKind::kQuestion, start);
    case '=': return MakeToken(TokenKind::kEq, start);
    case '<':
      if (Peek() == '=') {
        Advance();
        return MakeToken(TokenKind::kLe, start);
      }
      if (Peek() == '>') {
        Advance();
        return MakeToken(TokenKind::kNe, start);
      }
      return MakeToken(TokenKind::kLt, start);
    case '>':
      if (Peek() == '=') {
        Advance();
        return MakeToken(TokenKind::kGe, start);
      }
      return MakeToken(TokenKind::kGt, start);
    case '!':
      if (Peek() == '=') {
        Advance();
        return MakeToken(TokenKind::kNe, start);
      }
      return Status::SyntaxError("unexpected character '!'");
    case '|':
      if (Peek() == '|') {
        Advance();
        return MakeToken(TokenKind::kConcat, start);
      }
      return Status::SyntaxError("unexpected character '|'");
    default:
      return Status::SyntaxError(std::string("unexpected character '") + c +
                                 "' at line " + std::to_string(line_));
  }
}

}  // namespace starburst
