#ifndef STARBURST_QGM_BINDER_H_
#define STARBURST_QGM_BINDER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "parser/ast.h"
#include "qgm/box.h"

namespace starburst::qgm {

/// Maps a Hydrogen type name ("INT", "VARCHAR", a registered extension
/// type, ...) to a DataType. Used by DDL and by the binder.
Result<DataType> BindTypeName(const std::string& name);

/// Semantic analysis: turns a parsed Hydrogen query into a *valid* QGM
/// (§3: "Semantic analysis of the query is also done during parsing, so
/// the QGM produced is guaranteed to be valid"). Performs name resolution
/// against the catalog, view expansion, subquery-to-quantifier conversion,
/// aggregation restructuring (SELECT→GROUPBY→SELECT sandwich), recursion
/// wiring, and type checking.
class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  /// Binds a full query to a fresh graph; the result passes
  /// Graph::Validate().
  Result<std::unique_ptr<Graph>> BindQuery(const ast::Query& query);

  /// Binding for UPDATE/DELETE: a predicate (and optional SET assignments)
  /// over a single base table, for row-at-a-time evaluation by the engine.
  struct TableMutationBind {
    std::unique_ptr<Graph> graph;  // owns all boxes, incl. subquery boxes
    Quantifier* quantifier = nullptr;  // ranges over the target table
    ExprPtr predicate;                 // bound WHERE; null = all rows
    /// (column position, bound value expression) pairs.
    std::vector<std::pair<size_t, ExprPtr>> assignments;
  };
  Result<TableMutationBind> BindTableMutation(
      const TableDef& table, const ast::Expr* where,
      const std::vector<std::pair<std::string, const ast::Expr*>>* assignments);

  /// Binds a constant expression (INSERT ... VALUES items): no column
  /// references, no subqueries. The graph in the result owns nothing of
  /// interest but keeps ownership rules uniform.
  struct StandaloneExprBind {
    std::unique_ptr<Graph> graph;
    ExprPtr expr;
  };
  Result<StandaloneExprBind> BindConstantExpr(const ast::Expr& e);

  /// Catalog objects this binder resolved, keyed "T:NAME" / "V:NAME"
  /// (uppercase). View bodies bind through the same binder, so references
  /// made inside expanded views are included — the transitive dependency
  /// set a cached plan must be invalidated on.
  const std::set<std::string>& referenced_objects() const {
    return referenced_objects_;
  }

 private:
  /// A name visible in a FROM scope: alias -> a slice of a quantifier's
  /// columns (a slice, because wrapped outer joins expose two tables'
  /// columns through one quantifier).
  struct RangeVar {
    std::string alias;
    Quantifier* quantifier = nullptr;
    size_t column_offset = 0;
    size_t column_count = 0;
  };

  struct Scope {
    Scope* parent = nullptr;
    Box* select_box = nullptr;  // where subquery quantifiers attach
    std::vector<RangeVar> range_vars;
  };

  struct CteEntry {
    Box* box = nullptr;        // bound body (non-recursive, shared)
    Box* recursion = nullptr;  // in-flight recursive union
    std::vector<std::string> column_names;
  };
  using CteEnv = std::map<std::string, CteEntry>;

  /// How expressions bind: normal, or aggregation-translating.
  struct ExprContext {
    Scope* scope = nullptr;  // resolution + subquery attachment
    CteEnv* env = nullptr;
    // Aggregation mode (HAVING / select list above a GROUP BY):
    bool agg_mode = false;
    Scope* low_scope = nullptr;
    Box* low_box = nullptr;
    Box* gb_box = nullptr;
    Quantifier* upper_q = nullptr;
    std::vector<ExprPtr>* low_group_keys = nullptr;  // keys bound over low box
  };

  Result<Box*> BindQueryNode(const ast::Query& query, Scope* outer,
                             CteEnv env);
  Result<Box*> BindBody(const ast::QueryBody& body, Scope* outer, CteEnv* env);
  Result<Box*> BindSelectCore(const ast::SelectCore& core, Scope* outer,
                              CteEnv* env);
  Result<Box*> BindAggregation(const ast::SelectCore& core, Box* low_box,
                               Scope* low_scope, CteEnv* env);

  /// Binds `ref` into `box`; appends visible names to `vars`.
  Status BindTableRef(const ast::TableRef& ref, Box* box, Scope* scope,
                      CteEnv* env, std::vector<RangeVar>* vars);
  Result<Box*> ResolveNamedTable(const std::string& name, CteEnv* env);
  Result<Box*> BindView(const ViewDef& view);
  Box* BaseTableBox(const TableDef* table);

  Result<ExprPtr> BindExpr(const ast::Expr& e, ExprContext* ctx);
  Result<ExprPtr> BindColumnRef(const ast::ColumnRefExpr& e, ExprContext* ctx);
  Result<ExprPtr> BindFunctionCall(const ast::FunctionCallExpr& e,
                                   ExprContext* ctx);
  Result<ExprPtr> BindAggregateCall(const ast::FunctionCallExpr& e,
                                    ExprContext* ctx);
  Result<Box*> BindSubquery(const ast::Query& q, ExprContext* ctx);
  Result<ExprPtr> ResolveInScope(Scope* scope, const std::string& qualifier,
                                 const std::string& column, int* out_level);

  /// Returns the position of a head column of `box` whose expression is
  /// structurally `expr`, appending one if absent.
  size_t EnsureHeadColumn(Box* box, const Expr& expr, const std::string& name);

  Result<DataType> CheckComparable(const DataType& a, const DataType& b,
                                   const std::string& what);
  Result<DataType> NumericResult(ast::BinaryOp op, const DataType& a,
                                 const DataType& b);

  Status BindOrderByLimit(const ast::Query& query, Box* root);

  const Catalog* catalog_;
  Graph* graph_ = nullptr;  // graph under construction
  std::map<std::string, Box*> base_table_boxes_;
  std::set<std::string> referenced_objects_;
  int view_depth_ = 0;
};

}  // namespace starburst::qgm

#endif  // STARBURST_QGM_BINDER_H_
