#include "engine/database.h"

#include <gtest/gtest.h>

#include "ext/extensions.h"

namespace starburst {
namespace {

/// End-to-end coverage of the full Figure-1 pipeline through Database.
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(Exec("CREATE TABLE quotations ("
                     "partno INT, price DOUBLE, order_qty INT)"));
    ASSERT_TRUE(Exec("CREATE TABLE inventory ("
                     "partno INT PRIMARY KEY, onhand_qty INT, type STRING)"));
    ASSERT_TRUE(Exec("INSERT INTO inventory VALUES "
                     "(1, 10, 'CPU'), (2, 100, 'CPU'), (3, 5, 'DISK'), "
                     "(4, 0, 'CPU'), (5, 50, 'RAM')"));
    ASSERT_TRUE(Exec("INSERT INTO quotations VALUES "
                     "(1, 99.5, 20), (1, 95.0, 5), (2, 40.0, 200), "
                     "(3, 12.0, 10), (6, 7.0, 3)"));
  }

  bool Exec(const std::string& sql) {
    Result<ResultSet> r = db_.Execute(sql);
    if (!r.ok()) {
      last_error_ = r.status().ToString();
      return false;
    }
    last_ = r.TakeValue();
    return true;
  }

  std::vector<Row> MustQuery(const std::string& sql) {
    Result<std::vector<Row>> r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    if (!r.ok()) return {};
    return r.TakeValue();
  }

  Database db_;
  ResultSet last_;
  std::string last_error_;
};

TEST_F(EngineTest, SimpleSelect) {
  std::vector<Row> rows = MustQuery("SELECT partno, type FROM inventory "
                                    "WHERE type = 'CPU' ORDER BY partno");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], Value::Int(1));
  EXPECT_EQ(rows[1][0], Value::Int(2));
  EXPECT_EQ(rows[2][0], Value::Int(4));
}

TEST_F(EngineTest, SelectNoFrom) {
  std::vector<Row> rows = MustQuery("SELECT 1 + 2, 'x' || 'y'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(3));
  EXPECT_EQ(rows[0][1], Value::String("xy"));
}

TEST_F(EngineTest, PaperQuery) {
  // The paper's §4 running example (Figure 2): quotations for CPU parts
  // in low supply. Parts 1 (10 < 20) and 2 (100 < 200) qualify; the
  // second quotation for part 1 has order_qty 5 <= onhand 10.
  std::vector<Row> rows = MustQuery(
      "SELECT partno, price, order_qty FROM quotations Q1 "
      "WHERE Q1.partno IN (SELECT partno FROM inventory Q3 "
      "WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU') "
      "ORDER BY partno, price");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int(1));
  EXPECT_EQ(rows[0][1], Value::Double(99.5));
  EXPECT_EQ(rows[1][0], Value::Int(2));
}

TEST_F(EngineTest, JoinTwoTables) {
  std::vector<Row> rows = MustQuery(
      "SELECT q.partno, q.price, i.type FROM quotations q, inventory i "
      "WHERE q.partno = i.partno ORDER BY q.partno, q.price");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][2], Value::String("CPU"));
  EXPECT_EQ(rows[3][2], Value::String("DISK"));
}

TEST_F(EngineTest, LeftOuterJoin) {
  std::vector<Row> rows = MustQuery(
      "SELECT q.partno, i.type, q.price FROM quotations q "
      "LEFT OUTER JOIN inventory i ON q.partno = i.partno "
      "ORDER BY partno, price");
  ASSERT_EQ(rows.size(), 5u);
  // partno 6 has no inventory row: preserved with NULL type.
  EXPECT_EQ(rows[4][0], Value::Int(6));
  EXPECT_TRUE(rows[4][1].is_null());
}

TEST_F(EngineTest, Aggregation) {
  std::vector<Row> rows = MustQuery(
      "SELECT type, COUNT(*) n, SUM(onhand_qty) total FROM inventory "
      "GROUP BY type HAVING COUNT(*) >= 1 ORDER BY type");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], Value::String("CPU"));
  EXPECT_EQ(rows[0][1], Value::Int(3));
  EXPECT_EQ(rows[0][2], Value::Int(110));
}

TEST_F(EngineTest, ScalarAggregateOverEmptyInput) {
  std::vector<Row> rows =
      MustQuery("SELECT COUNT(*), SUM(onhand_qty) FROM inventory "
                "WHERE type = 'TAPE'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(0));
  EXPECT_TRUE(rows[0][1].is_null());
}

TEST_F(EngineTest, SetOperations) {
  std::vector<Row> rows = MustQuery(
      "SELECT partno FROM quotations UNION SELECT partno FROM inventory "
      "ORDER BY partno");
  ASSERT_EQ(rows.size(), 6u);  // 1,2,3,4,5,6
  rows = MustQuery(
      "SELECT partno FROM inventory EXCEPT SELECT partno FROM quotations "
      "ORDER BY partno");
  ASSERT_EQ(rows.size(), 2u);  // 4, 5
  rows = MustQuery(
      "SELECT partno FROM inventory INTERSECT SELECT partno FROM quotations");
  ASSERT_EQ(rows.size(), 3u);  // 1, 2, 3
}

TEST_F(EngineTest, ViewsMergeAndAnswer) {
  ASSERT_TRUE(Exec("CREATE VIEW cpu_parts AS "
                   "SELECT partno, onhand_qty FROM inventory WHERE type = 'CPU'"));
  std::vector<Row> rows = MustQuery(
      "SELECT q.partno, q.price FROM quotations q, cpu_parts c "
      "WHERE q.partno = c.partno AND c.onhand_qty < 50 "
      "ORDER BY q.partno, q.price");
  ASSERT_EQ(rows.size(), 2u);  // part 1's two quotations
  EXPECT_EQ(rows[0][0], Value::Int(1));
}

TEST_F(EngineTest, TableExpressions) {
  std::vector<Row> rows = MustQuery(
      "WITH cheap(p, pr) AS (SELECT partno, price FROM quotations "
      "WHERE price < 50) SELECT p, pr FROM cheap ORDER BY pr");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][1], Value::Double(7.0));
}

TEST_F(EngineTest, RecursiveTableExpression) {
  std::vector<Row> rows = MustQuery(
      "WITH RECURSIVE seq(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM seq "
      "WHERE n < 10) SELECT COUNT(*), SUM(n) FROM seq");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(10));
  EXPECT_EQ(rows[0][1], Value::Int(55));
}

TEST_F(EngineTest, CorrelatedExists) {
  std::vector<Row> rows = MustQuery(
      "SELECT partno FROM inventory i WHERE EXISTS "
      "(SELECT partno FROM quotations q WHERE q.partno = i.partno "
      "AND q.price > 50) ORDER BY partno");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(1));
}

TEST_F(EngineTest, NotInIsNullAware) {
  ASSERT_TRUE(Exec("INSERT INTO quotations VALUES (NULL, 1.0, 1)"));
  // NULL in the subquery makes NOT IN reject every row (SQL semantics).
  std::vector<Row> rows = MustQuery(
      "SELECT partno FROM inventory WHERE partno NOT IN "
      "(SELECT partno FROM quotations)");
  EXPECT_EQ(rows.size(), 0u);
  ASSERT_TRUE(Exec("DELETE FROM quotations WHERE partno IS NULL"));
  rows = MustQuery(
      "SELECT partno FROM inventory WHERE partno NOT IN "
      "(SELECT partno FROM quotations) ORDER BY partno");
  ASSERT_EQ(rows.size(), 2u);  // 4 and 5
}

TEST_F(EngineTest, QuantifiedAllAny) {
  std::vector<Row> rows = MustQuery(
      "SELECT partno FROM inventory WHERE onhand_qty > ALL "
      "(SELECT order_qty FROM quotations WHERE partno = 1)");
  // order_qtys for part 1 are {20, 5}; onhand > 20: parts 2 (100), 5 (50).
  ASSERT_EQ(rows.size(), 2u);
  rows = MustQuery(
      "SELECT partno FROM inventory WHERE onhand_qty < ANY "
      "(SELECT order_qty FROM quotations) ORDER BY partno");
  // max order_qty = 200; everything below qualifies.
  ASSERT_EQ(rows.size(), 5u);
}

TEST_F(EngineTest, ScalarSubquery) {
  std::vector<Row> rows = MustQuery(
      "SELECT partno, (SELECT type FROM inventory i "
      "WHERE i.partno = q.partno) t, price FROM quotations q "
      "ORDER BY partno, price");
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0][1], Value::String("CPU"));
  EXPECT_TRUE(rows[4][1].is_null());  // part 6: no inventory row
}

TEST_F(EngineTest, OrWithSubquery) {
  // §7's problem query shape.
  std::vector<Row> rows = MustQuery(
      "SELECT partno FROM quotations q WHERE q.price < 10 OR q.order_qty = "
      "(SELECT onhand_qty FROM inventory i WHERE i.partno = q.partno) "
      "ORDER BY partno");
  // price < 10: part 6 (7.0). order_qty = onhand: none (20!=10,5!=10,...).
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(6));
}

TEST_F(EngineTest, UpdateAndDelete) {
  ASSERT_TRUE(Exec("UPDATE inventory SET onhand_qty = onhand_qty + 1 "
                   "WHERE type = 'CPU'"));
  EXPECT_EQ(last_.affected_rows(), 3);
  std::vector<Row> rows =
      MustQuery("SELECT onhand_qty FROM inventory WHERE partno = 1");
  EXPECT_EQ(rows[0][0], Value::Int(11));

  ASSERT_TRUE(Exec("DELETE FROM quotations WHERE price > 90"));
  EXPECT_EQ(last_.affected_rows(), 2);
  rows = MustQuery("SELECT COUNT(*) FROM quotations");
  EXPECT_EQ(rows[0][0], Value::Int(3));
}

TEST_F(EngineTest, DeleteWithSubqueryPredicate) {
  ASSERT_TRUE(Exec("DELETE FROM quotations WHERE partno IN "
                   "(SELECT partno FROM inventory WHERE type = 'DISK')"));
  EXPECT_EQ(last_.affected_rows(), 1);
}

TEST_F(EngineTest, InsertSelect) {
  ASSERT_TRUE(Exec("CREATE TABLE cpu_copy (partno INT, qty INT)"));
  ASSERT_TRUE(Exec("INSERT INTO cpu_copy SELECT partno, onhand_qty "
                   "FROM inventory WHERE type = 'CPU'"));
  EXPECT_EQ(last_.affected_rows(), 3);
}

TEST_F(EngineTest, UniqueKeyViolationRejected) {
  EXPECT_FALSE(Exec("INSERT INTO inventory VALUES (1, 0, 'DUP')"));
  EXPECT_NE(last_error_.find("AlreadyExists"), std::string::npos);
  // The failed insert must not leave a phantom row behind.
  std::vector<Row> rows =
      MustQuery("SELECT COUNT(*) FROM inventory WHERE partno = 1");
  EXPECT_EQ(rows[0][0], Value::Int(1));
}

TEST_F(EngineTest, IndexedAccessGivesSameAnswers) {
  ASSERT_TRUE(Exec("CREATE INDEX inv_qty ON inventory (onhand_qty)"));
  ASSERT_EQ(db_.AnalyzeAll(), Status::OK());
  std::vector<Row> rows = MustQuery(
      "SELECT partno FROM inventory WHERE onhand_qty = 100");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(2));
  rows = MustQuery("SELECT partno FROM inventory WHERE onhand_qty > 40 "
                   "ORDER BY partno");
  ASSERT_EQ(rows.size(), 2u);
}

TEST_F(EngineTest, RewriteOffMatchesRewriteOn) {
  const std::string sql =
      "SELECT partno, price, order_qty FROM quotations Q1 "
      "WHERE Q1.partno IN (SELECT partno FROM inventory Q3 "
      "WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU') "
      "ORDER BY partno, price";
  std::vector<Row> with = MustQuery(sql);
  db_.options().rewrite_enabled = false;
  std::vector<Row> without = MustQuery(sql);
  db_.options().rewrite_enabled = true;
  EXPECT_EQ(with, without);
  EXPECT_EQ(with.size(), 2u);
}

TEST_F(EngineTest, ExplainShowsQgmAndPlan) {
  ASSERT_TRUE(Exec("EXPLAIN QGM SELECT partno FROM inventory WHERE type='CPU'"));
  ASSERT_EQ(last_.rows().size(), 1u);
  std::string qgm = last_.rows()[0][0].string_value();
  EXPECT_NE(qgm.find("SELECT"), std::string::npos);
  EXPECT_NE(qgm.find("F over inventory"), std::string::npos);

  ASSERT_TRUE(Exec("EXPLAIN PLAN SELECT q.partno FROM quotations q, "
                   "inventory i WHERE q.partno = i.partno"));
  std::string plan = last_.rows()[0][0].string_value();
  EXPECT_NE(plan.find("JOIN"), std::string::npos);
  EXPECT_NE(plan.find("SCAN"), std::string::npos);
}

TEST_F(EngineTest, MetricsPopulatedPerPhase) {
  (void)MustQuery("SELECT q.partno FROM quotations q, inventory i "
                  "WHERE q.partno = i.partno");
  const QueryMetrics& m = db_.last_metrics();
  EXPECT_GT(m.parse_us, 0);
  EXPECT_GT(m.bind_us, 0);
  EXPECT_GT(m.optimize_us, 0);
  EXPECT_GT(m.execute_us, 0);
  EXPECT_GT(m.plan_cost, 0);
  EXPECT_GT(m.optimizer_stats.generator.plans_generated, 0u);
  EXPECT_GT(m.exec_stats.rows_emitted, 0u);
}

TEST_F(EngineTest, ExplainBeforeAndAfterRewriteDiffer) {
  const std::string q =
      "SELECT partno FROM quotations WHERE partno IN "
      "(SELECT partno FROM inventory)";
  ASSERT_TRUE(Exec("EXPLAIN QGM BEFORE " + q));
  std::string before = last_.rows()[0][0].string_value();
  ASSERT_TRUE(Exec("EXPLAIN QGM " + q));
  std::string after = last_.rows()[0][0].string_value();
  EXPECT_NE(before.find(": E over"), std::string::npos) << before;
  EXPECT_EQ(after.find(": E over"), std::string::npos) << after;
}

TEST_F(EngineTest, DistinctAndLimit) {
  std::vector<Row> rows = MustQuery("SELECT DISTINCT type FROM inventory");
  EXPECT_EQ(rows.size(), 3u);
  rows = MustQuery(
      "SELECT partno, price FROM quotations ORDER BY price LIMIT 2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int(6));
}

TEST_F(EngineTest, CaseExpression) {
  std::vector<Row> rows = MustQuery(
      "SELECT partno, CASE WHEN onhand_qty = 0 THEN 'out' "
      "WHEN onhand_qty < 20 THEN 'low' ELSE 'ok' END FROM inventory "
      "ORDER BY partno");
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0][1], Value::String("low"));
  EXPECT_EQ(rows[1][1], Value::String("ok"));
  EXPECT_EQ(rows[3][1], Value::String("out"));
}

TEST_F(EngineTest, FixedStorageManager) {
  ASSERT_TRUE(Exec("CREATE TABLE fixed_t (a INT, b DOUBLE) USING FIXED"));
  ASSERT_TRUE(Exec("INSERT INTO fixed_t VALUES (1, 1.5), (2, 2.5), (3, NULL)"));
  std::vector<Row> rows =
      MustQuery("SELECT a, b FROM fixed_t WHERE a >= 2 ORDER BY a");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], Value::Double(2.5));
  EXPECT_TRUE(rows[1][1].is_null());
  // FIXED cannot hold strings.
  EXPECT_FALSE(Exec("CREATE TABLE fixed_bad (s STRING) USING FIXED"));
}

TEST_F(EngineTest, SharedTableExpressionMaterializedOnce) {
  // §5: a table expression "used in multiple places ... materialized once
  // and used several times". Both references to `stats` share one
  // evaluation of the aggregation.
  std::vector<Row> rows = MustQuery(
      "WITH stats(t, n) AS (SELECT type, COUNT(*) FROM inventory "
      "GROUP BY type) "
      "SELECT a.t FROM stats a, stats b WHERE a.n > b.n");
  EXPECT_EQ(db_.last_metrics().exec_stats.shared_materializations, 1u);
  // CPU(3) > DISK(1), CPU(3) > RAM(1): plus any other strict pairs.
  EXPECT_EQ(rows.size(), 2u);

  // Ablation: answers identical with sharing disabled.
  db_.options().optimizer.materialize_shared = false;
  std::vector<Row> unshared = MustQuery(
      "WITH stats(t, n) AS (SELECT type, COUNT(*) FROM inventory "
      "GROUP BY type) "
      "SELECT a.t FROM stats a, stats b WHERE a.n > b.n");
  EXPECT_EQ(db_.last_metrics().exec_stats.shared_materializations, 0u);
  db_.options().optimizer.materialize_shared = true;
  EXPECT_EQ(rows.size(), unshared.size());
}

TEST_F(EngineTest, OrderByHiddenColumn) {
  // ORDER BY on a column that is not in the select list: resolved as a
  // hidden sort column, stripped from the result.
  std::vector<Row> rows =
      MustQuery("SELECT partno FROM quotations ORDER BY price");
  ASSERT_EQ(rows.size(), 5u);
  ASSERT_EQ(rows[0].size(), 1u);  // hidden column stripped
  EXPECT_EQ(rows[0][0], Value::Int(6));   // price 7.0
  EXPECT_EQ(rows[4][0], Value::Int(1));   // price 99.5
  // Qualified form too.
  rows = MustQuery("SELECT q.partno FROM quotations q ORDER BY q.price DESC");
  EXPECT_EQ(rows[0][0], Value::Int(1));
  // Still an error under DISTINCT (the dedup key would change).
  EXPECT_FALSE(Exec("SELECT DISTINCT partno FROM quotations ORDER BY price"));
}

TEST_F(EngineTest, AnalyzeStatement) {
  ASSERT_TRUE(Exec("ANALYZE inventory"));
  const TableDef* def = *db_.catalog().GetTable("inventory");
  EXPECT_EQ(def->stats.row_count, 5);
  const ColumnStats* type_stats = def->stats.FindColumn("type");
  ASSERT_NE(type_stats, nullptr);
  EXPECT_EQ(type_stats->distinct_count, 3);
  ASSERT_TRUE(Exec("ANALYZE"));  // all tables
  EXPECT_EQ((*db_.catalog().GetTable("quotations"))->stats.row_count, 5);
  EXPECT_FALSE(Exec("ANALYZE nosuch"));
}

TEST_F(EngineTest, GroupByPushdownStillCorrect) {
  std::vector<Row> rows = MustQuery(
      "SELECT t, n FROM (SELECT type t, COUNT(*) n FROM inventory "
      "GROUP BY type) g WHERE t = 'CPU'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value::Int(3));
}

}  // namespace
}  // namespace starburst
