#ifndef STARBURST_EXEC_PARALLEL_TASK_SCHEDULER_H_
#define STARBURST_EXEC_PARALLEL_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"

namespace starburst::exec::parallel {

/// A fixed pool of worker threads draining a shared task queue.
///
/// `RunParallel` blocks until every task of the batch has finished; the
/// calling thread participates in the batch, so a scheduler with zero
/// workers degenerates to serial execution (and `parallelism = 1` costs
/// no thread at all). Tasks of one batch must not call RunParallel on
/// the same scheduler (no nested batches); the executor's coordinator
/// runs phases sequentially, so this never happens in practice.
class TaskScheduler {
 public:
  /// `workers` = number of *extra* threads beyond the caller. Threads
  /// are spawned lazily on the first RunParallel.
  explicit TaskScheduler(size_t workers) : target_workers_(workers) {}
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  size_t workers() const { return target_workers_; }

  /// Process-wide scheduler activity (monotonic; feeds sys.metrics):
  /// tasks executed across every scheduler instance, including the
  /// serial fast path, and worker threads ever spawned.
  static uint64_t total_tasks_run();
  static uint64_t total_workers_spawned();

  /// Runs every task, concurrently when workers are available. Returns
  /// the first non-OK status (remaining tasks still run to completion so
  /// shared state is quiesced when this returns). Exceptions escaping a
  /// task are converted to an internal error status. When `cancel` is
  /// supplied, it is checked before each task claim: a tripped token
  /// stops *unstarted* tasks from launching (already-running clones stop
  /// at their own operator-level check sites) and its status wins over
  /// task errors so the statement reports Cancelled/Timeout, not a
  /// secondary failure.
  Status RunParallel(std::vector<std::function<Status()>> tasks,
                     CancelToken* cancel = nullptr);

 private:
  struct Batch {
    std::vector<std::function<Status()>>* tasks = nullptr;
    CancelToken* cancel = nullptr;
    std::atomic<size_t> next{0};
    size_t done = 0;    // tasks finished; guarded by TaskScheduler::mu_
    size_t active = 0;  // workers inside DrainBatch; guarded by mu_
  };

  void WorkerLoop();
  /// Claims and runs tasks from `batch` until it is drained; folds the
  /// first failure into error_. Returns the number of tasks it ran.
  size_t DrainBatch(Batch* batch);

  const size_t target_workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a batch / shutdown
  std::condition_variable done_cv_;  // coordinator waits for batch end
  Batch* current_ = nullptr;         // guarded by mu_
  Status error_;                     // guarded by mu_; first failure wins
  bool shutdown_ = false;            // guarded by mu_
  bool spawned_ = false;             // guarded by mu_
  std::vector<std::thread> threads_;
};

}  // namespace starburst::exec::parallel

#endif  // STARBURST_EXEC_PARALLEL_TASK_SCHEDULER_H_
