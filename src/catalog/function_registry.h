#ifndef STARBURST_CATALOG_FUNCTION_REGISTRY_H_
#define STARBURST_CATALOG_FUNCTION_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/row.h"
#include "common/value.h"

namespace starburst {

/// A DBC-defined scalar function (§2: "Scalar functions ... take one or
/// more field values from a single tuple, and return a single value").
/// Usable anywhere a column can be referenced; the engine invokes it at
/// the lowest level (predicate evaluator) per the paper.
struct ScalarFunctionDef {
  std::string name;
  /// -1 = variadic.
  int arity = -1;
  /// Derives the result type from argument types (also type-checks).
  std::function<Result<DataType>(const std::vector<DataType>&)> infer_type;
  /// Row-at-a-time evaluation.
  std::function<Result<Value>(const std::vector<Value>&)> eval;
};

/// Streaming state of one aggregate evaluation over a group.
class AggregateState {
 public:
  virtual ~AggregateState() = default;
  virtual Status Accumulate(const Value& v) = 0;
  virtual Result<Value> Finalize() = 0;
};

/// A DBC-defined aggregate function (§2: e.g. StandardDeviation(Salary));
/// interchangeable with built-in aggregates.
struct AggregateFunctionDef {
  std::string name;
  std::function<Result<DataType>(const DataType&)> infer_type;
  std::function<std::unique_ptr<AggregateState>()> make_state;
};

/// Streaming state of one set-predicate evaluation: observes the truth of
/// the element predicate for each member of the set, then renders a
/// verdict. ALL / ANY are built in; a DBC can add e.g. MAJORITY (§2).
class SetPredicateState {
 public:
  virtual ~SetPredicateState() = default;
  /// `match` = the element predicate held for this set member
  /// (three-valued UNKNOWN is folded to false by the caller).
  virtual void Observe(bool match) = 0;
  /// May return true to allow early termination of the set scan.
  virtual bool Decided() const { return false; }
  virtual bool Verdict() const = 0;
};

struct SetPredicateFunctionDef {
  std::string name;
  std::function<std::unique_ptr<SetPredicateState>()> make_state;
};

/// A DBC-defined table function (§2: "take one or more tables ... and
/// produce a new table as output", e.g. SAMPLE(table, n)). The engine
/// materializes input tables and hands them over.
struct TableFunctionDef {
  std::string name;
  /// Output schema from input schemas + scalar args.
  std::function<Result<TableSchema>(const std::vector<TableSchema>&,
                                    const std::vector<Value>&)> infer_schema;
  /// Evaluate: materialized input tables + scalar args -> output rows.
  std::function<Result<std::vector<Row>>(const std::vector<std::vector<Row>>&,
                                         const std::vector<Value>&)> eval;
};

/// The catalog's registry of all externally-definable functions. Built-in
/// SQL functions (arithmetic, COUNT/SUM/..., ALL/ANY) register here through
/// the same interface the DBC uses — extensions are not second-class.
class FunctionRegistry {
 public:
  FunctionRegistry();

  Status RegisterScalar(ScalarFunctionDef def);
  Status RegisterAggregate(AggregateFunctionDef def);
  Status RegisterSetPredicate(SetPredicateFunctionDef def);
  Status RegisterTableFunction(TableFunctionDef def);

  const ScalarFunctionDef* FindScalar(const std::string& name) const;
  const AggregateFunctionDef* FindAggregate(const std::string& name) const;
  const SetPredicateFunctionDef* FindSetPredicate(const std::string& name) const;
  const TableFunctionDef* FindTableFunction(const std::string& name) const;

  std::vector<std::string> ScalarNames() const;
  std::vector<std::string> AggregateNames() const;

 private:
  void RegisterBuiltins();

  std::map<std::string, ScalarFunctionDef> scalars_;
  std::map<std::string, AggregateFunctionDef> aggregates_;
  std::map<std::string, SetPredicateFunctionDef> set_predicates_;
  std::map<std::string, TableFunctionDef> table_functions_;
};

}  // namespace starburst

#endif  // STARBURST_CATALOG_FUNCTION_REGISTRY_H_
