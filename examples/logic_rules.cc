// Hydrogen as "an integrated language for logic programming and database
// access" (§2): recursion through named table expressions — a bill of
// materials explosion and graph reachability, Datalog-style.

#include <cstdio>

#include "engine/database.h"

using starburst::Database;
using starburst::Result;
using starburst::ResultSet;

namespace {

void Run(Database& db, const char* sql) {
  std::printf("starburst> %s\n", sql);
  Result<ResultSet> result = db.Execute(sql);
  if (!result.ok()) {
    std::printf("ERROR: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s", result->ToString().c_str());
  std::printf("(semi-naive iterations: %llu)\n\n",
              static_cast<unsigned long long>(
                  db.last_metrics().exec_stats.recursion_iterations));
}

}  // namespace

int main() {
  Database db;

  // part(assembly, component, quantity) — the classic BOM relation.
  (void)db.Execute("CREATE TABLE bom (assembly STRING, component STRING, "
                   "qty INT)");
  (void)db.Execute(
      "INSERT INTO bom VALUES "
      "('car', 'engine', 1), ('car', 'wheel', 4), ('car', 'frame', 1), "
      "('engine', 'piston', 6), ('engine', 'crankshaft', 1), "
      "('wheel', 'tire', 1), ('wheel', 'rim', 1), "
      "('frame', 'beam', 8), ('piston', 'ring', 3)");

  // Datalog: contains(A, C) :- bom(A, C, _).
  //          contains(A, C) :- contains(A, B), bom(B, C, _).
  Run(db,
      "WITH RECURSIVE contains(assembly, component) AS ("
      "  SELECT assembly, component FROM bom"
      "  UNION"
      "  SELECT c.assembly, b.component FROM contains c, bom b"
      "  WHERE c.component = b.assembly) "
      "SELECT component FROM contains WHERE assembly = 'car' "
      "ORDER BY component");

  // Aggregation over the closure: how many distinct part kinds per level?
  Run(db,
      "WITH RECURSIVE contains(assembly, component) AS ("
      "  SELECT assembly, component FROM bom"
      "  UNION"
      "  SELECT c.assembly, b.component FROM contains c, bom b"
      "  WHERE c.component = b.assembly) "
      "SELECT assembly, COUNT(*) AS parts FROM contains "
      "GROUP BY assembly ORDER BY parts DESC");

  // Path-algebra flavor (§2 cites [ROSE86]): shortest hop counts on a
  // directed graph via iterated relational algebra.
  (void)db.Execute("CREATE TABLE edge (src INT, dst INT)");
  (void)db.Execute("INSERT INTO edge VALUES (1,2),(2,3),(3,4),(4,2),(1,5)");
  Run(db,
      "WITH RECURSIVE reach(n) AS ("
      "  SELECT 1"
      "  UNION"
      "  SELECT e.dst FROM reach r, edge e WHERE e.src = r.n) "
      "SELECT n FROM reach ORDER BY n");
  return 0;
}
