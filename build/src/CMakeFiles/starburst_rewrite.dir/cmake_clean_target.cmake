file(REMOVE_RECURSE
  "libstarburst_rewrite.a"
)
