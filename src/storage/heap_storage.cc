#include <algorithm>
#include <cstring>
#include <limits>

#include "storage/record_codec.h"
#include "storage/storage_manager.h"

namespace starburst {

namespace {

// Slotted-page layout:
//   [0..2)  u16 slot_count
//   [2..4)  u16 free_start (next record byte, grows upward from 4)
//   records ...
//   ... slot array grows downward from the page end; slot i occupies the
//   4 bytes at kPageSize - 4*(i+1): u16 record_offset, u16 record_len.
//   record_offset == 0 marks a deleted slot.
constexpr size_t kHeapHeader = 4;
constexpr size_t kSlotBytes = 4;

size_t SlotPos(uint16_t slot) { return kPageSize - kSlotBytes * (slot + 1); }

uint16_t SlotOffset(const Page& p, uint16_t slot) {
  return p.ReadU16(SlotPos(slot));
}
uint16_t SlotLen(const Page& p, uint16_t slot) {
  return p.ReadU16(SlotPos(slot) + 2);
}
void SetSlot(Page* p, uint16_t slot, uint16_t offset, uint16_t len) {
  p->WriteU16(SlotPos(slot), offset);
  p->WriteU16(SlotPos(slot) + 2, len);
}

size_t FreeBytes(const Page& p) {
  uint16_t slots = p.ReadU16(0);
  uint16_t free_start = p.ReadU16(2);
  size_t slot_area = kSlotBytes * slots;
  if (free_start + slot_area >= kPageSize) return 0;
  return kPageSize - slot_area - free_start;
}

class HeapTableStorage : public TableStorage {
 public:
  HeapTableStorage(BufferPool* pool, FileId file) : pool_(pool), file_(file) {}

  Result<Rid> Insert(const Row& row) override {
    std::string bytes = VarRecordCodec::Encode(row);
    if (bytes.size() + kSlotBytes + kHeapHeader > kPageSize) {
      return Status::InvalidArgument("record too large for a page (" +
                                     std::to_string(bytes.size()) + " bytes)");
    }
    size_t need = bytes.size() + kSlotBytes;
    size_t num_pages = pool_->pager()->PageCount(file_);
    // Check the append hint page first, then grow the file.
    PageNo target;
    if (num_pages > 0 && PageFreeBytes(num_pages - 1) >= need) {
      target = static_cast<PageNo>(num_pages - 1);
    } else {
      target = pool_->NewPage(file_);
      Page* fresh = pool_->GetMutablePage(file_, target);
      fresh->WriteU16(0, 0);
      fresh->WriteU16(2, kHeapHeader);
    }
    Page* page = pool_->GetMutablePage(file_, target);
    uint16_t slot = page->ReadU16(0);
    uint16_t free_start = page->ReadU16(2);
    std::memcpy(page->data.data() + free_start, bytes.data(), bytes.size());
    SetSlot(page, slot, free_start, static_cast<uint16_t>(bytes.size()));
    page->WriteU16(0, static_cast<uint16_t>(slot + 1));
    page->WriteU16(2, static_cast<uint16_t>(free_start + bytes.size()));
    ++row_count_;
    return Rid{target, slot};
  }

  Status Delete(Rid rid) override {
    STARBURST_RETURN_IF_ERROR(CheckRid(rid));
    Page* page = pool_->GetMutablePage(file_, rid.page);
    if (SlotOffset(*page, rid.slot) == 0) {
      return Status::NotFound("rid already deleted");
    }
    SetSlot(page, rid.slot, 0, 0);
    --row_count_;
    return Status::OK();
  }

  Result<Row> Fetch(Rid rid) override {
    STARBURST_RETURN_IF_ERROR(CheckRid(rid));
    const Page* page = pool_->GetPage(file_, rid.page);
    uint16_t off = SlotOffset(*page, rid.slot);
    if (off == 0) return Status::NotFound("rid deleted");
    return VarRecordCodec::Decode(page->data.data() + off,
                                  SlotLen(*page, rid.slot));
  }

  Result<Rid> Update(Rid rid, const Row& row) override {
    STARBURST_RETURN_IF_ERROR(CheckRid(rid));
    std::string bytes = VarRecordCodec::Encode(row);
    Page* page = pool_->GetMutablePage(file_, rid.page);
    uint16_t off = SlotOffset(*page, rid.slot);
    if (off == 0) return Status::NotFound("rid deleted");
    if (bytes.size() <= SlotLen(*page, rid.slot)) {
      std::memcpy(page->data.data() + off, bytes.data(), bytes.size());
      SetSlot(page, rid.slot, off, static_cast<uint16_t>(bytes.size()));
      return rid;
    }
    SetSlot(page, rid.slot, 0, 0);
    --row_count_;
    return Insert(row);
  }

  std::unique_ptr<TableScanIterator> NewScan() override;
  std::unique_ptr<TableScanIterator> NewRangeScan(PageNo begin_page,
                                                  PageNo end_page) override;

  uint64_t row_count() const override { return row_count_; }
  uint64_t page_count() const override {
    return pool_->pager()->PageCount(file_);
  }

  BufferPool* pool() { return pool_; }
  FileId file() const { return file_; }

 private:
  Status CheckRid(Rid rid) const {
    if (rid.page >= pool_->pager()->PageCount(file_)) {
      return Status::OutOfRange("rid page out of range");
    }
    const Page* raw = pool_->pager()->RawPage(file_, rid.page);
    if (rid.slot >= raw->ReadU16(0)) {
      return Status::OutOfRange("rid slot out of range");
    }
    return Status::OK();
  }

  size_t PageFreeBytes(size_t page_no) const {
    // Peeking at free space is bookkeeping, not record I/O.
    return FreeBytes(*pool_->pager()->RawPage(file_, static_cast<PageNo>(page_no)));
  }

  BufferPool* pool_;
  FileId file_;
  uint64_t row_count_ = 0;
};

class HeapScanIterator : public TableScanIterator {
 public:
  /// Walks pages [begin_page, min(end_page, PageCount)).
  HeapScanIterator(HeapTableStorage* table, PageNo begin_page,
                   PageNo end_page)
      : table_(table), page_(begin_page), end_page_(end_page) {}

  Result<bool> Next(Row* row, Rid* rid) override {
    size_t num_pages = std::min<size_t>(
        table_->pool()->pager()->PageCount(table_->file()), end_page_);
    while (page_ < num_pages) {
      const Page* page = table_->pool()->GetPage(table_->file(),
                                                 static_cast<PageNo>(page_));
      uint16_t slots = page->ReadU16(0);
      while (slot_ < slots) {
        uint16_t s = slot_++;
        uint16_t off = SlotOffset(*page, s);
        if (off == 0) continue;  // deleted
        STARBURST_ASSIGN_OR_RETURN(
            Row decoded,
            VarRecordCodec::Decode(page->data.data() + off, SlotLen(*page, s)));
        *row = std::move(decoded);
        *rid = Rid{static_cast<PageNo>(page_), s};
        return true;
      }
      ++page_;
      slot_ = 0;
    }
    return false;
  }

  /// Block fill: the page is resolved once per visited page (not once
  /// per record) and rows decode into the caller's reused storage.
  Result<size_t> NextBlock(Row* rows, Rid* rids, size_t max_rows) override {
    size_t n = 0;
    size_t num_pages = std::min<size_t>(
        table_->pool()->pager()->PageCount(table_->file()), end_page_);
    while (n < max_rows && page_ < num_pages) {
      const Page* page = table_->pool()->GetPage(table_->file(),
                                                 static_cast<PageNo>(page_));
      uint16_t slots = page->ReadU16(0);
      while (n < max_rows && slot_ < slots) {
        uint16_t s = slot_++;
        uint16_t off = SlotOffset(*page, s);
        if (off == 0) continue;  // deleted
        STARBURST_RETURN_IF_ERROR(VarRecordCodec::DecodeInto(
            page->data.data() + off, SlotLen(*page, s), &rows[n]));
        rids[n] = Rid{static_cast<PageNo>(page_), s};
        ++n;
      }
      if (slot_ >= slots) {
        ++page_;
        slot_ = 0;
      }
    }
    return n;
  }

 private:
  HeapTableStorage* table_;
  size_t page_;
  size_t end_page_;
  uint16_t slot_ = 0;
};

std::unique_ptr<TableScanIterator> HeapTableStorage::NewScan() {
  return std::make_unique<HeapScanIterator>(this, 0,
                                            std::numeric_limits<PageNo>::max());
}

std::unique_ptr<TableScanIterator> HeapTableStorage::NewRangeScan(
    PageNo begin_page, PageNo end_page) {
  return std::make_unique<HeapScanIterator>(this, begin_page, end_page);
}

class HeapStorageManager : public StorageManager {
 public:
  const std::string& name() const override {
    static const std::string kName = "HEAP";
    return kName;
  }

  Status ValidateSchema(const TableSchema&) const override {
    return Status::OK();  // heap stores anything
  }

  Result<std::unique_ptr<TableStorage>> CreateTable(
      const TableDef& def, BufferPool* pool) override {
    STARBURST_RETURN_IF_ERROR(ValidateSchema(def.schema));
    FileId file = pool->pager()->CreateFile();
    return std::unique_ptr<TableStorage>(new HeapTableStorage(pool, file));
  }
};

}  // namespace

std::unique_ptr<StorageManager> MakeHeapStorageManager() {
  return std::make_unique<HeapStorageManager>();
}

}  // namespace starburst
