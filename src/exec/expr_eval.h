#ifndef STARBURST_EXEC_EXPR_EVAL_H_
#define STARBURST_EXEC_EXPR_EVAL_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/stream.h"
#include "optimizer/plan.h"

namespace starburst::exec {

class SubqueryRuntime;

/// How evaluate-on-demand subqueries remember results across outer rows.
enum class SubqueryCacheMode {
  kNone,       // re-evaluate on every use (the strawman)
  kLastValue,  // §7: "avoid re-evaluating the subquery when the
               //      correlation values have not changed"
  kMemo,       // full memo over correlation values
};

/// A qgm::Expr compiled against an operator's output layout: column
/// references become row slots; references to enclosing queries become
/// correlation parameters; quantified tests carry an executable subplan.
struct CompiledExpr {
  using Kind = qgm::Expr::Kind;

  Kind kind = Kind::kLiteral;
  Value literal;

  // kColumnRef
  int slot = -1;  // >=0: input row slot
  const qgm::Quantifier* param_q = nullptr;  // slot<0: runtime parameter
  size_t param_col = 0;

  ast::BinaryOp bop = ast::BinaryOp::kEq;
  ast::UnaryOp uop = ast::UnaryOp::kNot;
  const ScalarFunctionDef* func = nullptr;
  bool negated = false;
  bool has_else = false;

  std::vector<std::unique_ptr<CompiledExpr>> children;

  // Subquery machinery: kExistsTest, kQuantCompare, and scalar-subquery
  // column references that could not be planned as joins.
  std::shared_ptr<SubqueryRuntime> subquery;
  qgm::QuantifierType quant_type = qgm::QuantifierType::kExists;
  const SetPredicateFunctionDef* set_pred = nullptr;
  size_t subquery_column = 0;  // scalar-subquery fetch column

  /// Three-valued: boolean results are Bool or Null.
  Result<Value> Eval(const Row& row, ExecContext* ctx) const;

  /// Eval folded to two-valued acceptance (NULL/unknown = false).
  Result<bool> EvalPredicate(const Row& row, ExecContext* ctx) const;

  /// Per-batch constant folding of correlation parameters: resolves every
  /// parameter reference in this tree through the context's current frames
  /// once and caches the value, so a batch of Eval calls pays one
  /// LookupParam per parameter instead of one per row. The caller MUST
  /// UnfoldParams before the frames can change (fold scope = one batch) —
  /// use ScopedParamFold, never the raw pair.
  Status FoldParams(ExecContext* ctx) const;
  void UnfoldParams() const;

  /// Vectorized predicate fast path: true when this tree is a plain
  /// comparison between an input slot and a per-batch constant (a literal,
  /// or a correlation param folded by FoldParams). `*constant` points into
  /// this tree and is valid only while the fold is active. Callers then
  /// run EvalSlotConstCompare per row — identical semantics to
  /// EvalPredicate, minus the per-row tree walk.
  bool AsSlotConstCompare(int* slot_out, ast::BinaryOp* op_out,
                          const Value** constant) const;

 private:
  // Fold cache (mutable: Eval is const on the shared compiled tree; safe
  // because parallel clones compile their own trees).
  mutable bool param_folded_ = false;
  mutable Value folded_param_;
};

using CompiledExprPtr = std::unique_ptr<CompiledExpr>;

/// RAII fold scope: folds each added expression's correlation params and
/// unfolds all of them on destruction, keeping the cache strictly within
/// one batch evaluation (stale caches across dependent-join re-opens would
/// be silent wrong answers).
class ScopedParamFold {
 public:
  ScopedParamFold() = default;
  ScopedParamFold(const ScopedParamFold&) = delete;
  ScopedParamFold& operator=(const ScopedParamFold&) = delete;
  ~ScopedParamFold() {
    for (const CompiledExpr* e : folded_) e->UnfoldParams();
  }

  Status Add(const CompiledExpr* e, ExecContext* ctx) {
    Status st = e->FoldParams(ctx);
    if (st.ok()) folded_.push_back(e);  // on error the expr self-unfolds
    return st;
  }

 private:
  std::vector<const CompiledExpr*> folded_;
};

/// Two-valued `row[slot] op constant` (NULL operand = false), the per-row
/// core of the AsSlotConstCompare fast path. Runs the same comparison
/// routine as the general evaluator, so failure modes (e.g. type errors)
/// are identical.
Result<bool> EvalSlotConstCompare(const Row& row, int slot, ast::BinaryOp op,
                                  const Value& constant);

/// One predicate prepared for a batch: the slot-vs-constant fast form when
/// the tree allows it, the general interpreter otherwise. Build AFTER
/// folding params (folded params count as constants) and discard before
/// the fold scope ends.
struct PreparedPredicate {
  const CompiledExpr* expr = nullptr;
  bool fast = false;
  int slot = -1;
  ast::BinaryOp op = ast::BinaryOp::kEq;
  const Value* constant = nullptr;

  static PreparedPredicate For(const CompiledExpr* e) {
    PreparedPredicate p;
    p.expr = e;
    p.fast = e->AsSlotConstCompare(&p.slot, &p.op, &p.constant);
    return p;
  }

  Result<bool> Test(const Row& row, ExecContext* ctx) const {
    if (fast) return EvalSlotConstCompare(row, slot, op, *constant);
    return expr->EvalPredicate(row, ctx);
  }
};

/// Batch entry point for predicate conjunctions: evaluates `predicates`
/// over every active row of `batch` and narrows the selection to the
/// passing rows (composes with an existing selection). Correlation
/// parameters are folded once per batch.
Status FilterBatch(const std::vector<CompiledExprPtr>& predicates,
                   RowBatch* batch, ExecContext* ctx);

/// Binary operator evaluation shared by expressions and join operators.
Result<Value> EvalBinaryValues(ast::BinaryOp op, const Value& l, const Value& r);

/// SQL LIKE with % and _ wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern);

/// One subquery's runtime: a re-openable inner plan plus the paper's
/// "evaluate-on-demand" protocol — nothing runs until the predicate
/// evaluator first needs the subquery, and results are reused while the
/// correlation values stay the same.
class SubqueryRuntime {
 public:
  struct ParamSource {
    const qgm::Quantifier* q = nullptr;
    size_t column = 0;
    int outer_slot = -1;  // -1: resolve through the context's param stack
  };

  SubqueryRuntime(OperatorPtr plan, std::vector<ParamSource> params,
                  SubqueryCacheMode mode)
      : plan_(std::move(plan)), params_(std::move(params)), mode_(mode) {}

  /// Materialized subquery rows under the current outer row's correlation
  /// values. The pointer stays valid until the next Evaluate call.
  Result<const std::vector<Row>*> Evaluate(const Row& outer_row,
                                           ExecContext* ctx);

  void ResetCache();

 private:
  OperatorPtr plan_;
  std::vector<ParamSource> params_;
  SubqueryCacheMode mode_;
  uint64_t run_id_ = 0;  // execution epoch the caches belong to
  ExecContext::ParamFrame frame_;  // reused across Evaluate calls
  RowBatch scratch_;               // reused drain staging (sized lazily)
  std::unordered_map<Row, std::vector<Row>, RowHash> memo_;
  Row last_key_;
  std::vector<Row> last_result_;
  bool has_last_ = false;
};

/// Compilation environment: the input layout plus a factory for subquery
/// operator trees (supplied by the plan refiner).
struct CompileEnv {
  const std::vector<optimizer::ColumnBinding>* layout = nullptr;
  std::function<Result<OperatorPtr>(const qgm::Box*)> build_box_operator;
  const Catalog* catalog = nullptr;
  SubqueryCacheMode cache_mode = SubqueryCacheMode::kMemo;
  /// Invoked for every correlation parameter left unresolved by `layout`
  /// (the plan refiner uses this to wire dependent-join parameter frames).
  std::function<void(const qgm::Quantifier*, size_t)> on_param;
};

Result<CompiledExprPtr> CompileExpr(const qgm::Expr& e, const CompileEnv& env);

/// The sentinel quantifier under which query-level `?` parameters live in
/// the ExecContext param frames: parameter i is (QueryParamQuantifier(), i).
/// A distinct address no real QGM graph can contain, so query params never
/// collide with correlation params and never look like free correlation
/// variables to the dependent-join machinery.
const qgm::Quantifier* QueryParamQuantifier();

/// The correlation signature of a subquery box: every (quantifier, column)
/// referenced inside its subtree but owned outside it.
std::vector<std::pair<const qgm::Quantifier*, size_t>> FreeParamsOf(
    const qgm::Box* sub);

}  // namespace starburst::exec

#endif  // STARBURST_EXEC_EXPR_EVAL_H_
