// F1 — Figure 1: "Phases of Query Processing".
//
// The paper's figure shows the compile-time pipeline (parse -> QGM ->
// query rewrite -> plan optimization -> plan refinement) feeding a
// run-time interpreter, with the plan storable in between. This bench
// measures each phase separately on queries of growing join width and
// verifies the figure's two structural claims:
//   (1) the phases are separable, each with its own cost profile;
//   (2) rewrite "could be bypassed for faster query compilation at the
//       expense of potentially lower runtime performance".

#include "bench_util.h"

using namespace starburst;
using namespace starburst::bench;

int main() {
  Database db;
  // t1..t8: chained join keys.
  for (int t = 1; t <= 8; ++t) {
    MakeIntTable(&db, "t" + std::to_string(t), 1000, 50,
                 static_cast<uint32_t>(100 + t));
  }
  if (!db.AnalyzeAll().ok()) return 1;
  // Compile phases are the measured quantity; a plan-cache hit would
  // zero them out after the first rep.
  MustExec(&db, "SET PLAN_CACHE_SIZE = 0");

  std::printf("F1: per-phase time (us) vs. number of joined tables\n");
  std::printf("%6s %9s %9s %9s %10s %9s %10s %10s\n", "tables", "parse",
              "bind", "rewrite", "optimize", "refine", "execute", "rows");
  for (int n = 1; n <= 8; ++n) {
    std::string sql = "SELECT t1.k FROM t1";
    for (int t = 2; t <= n; ++t) {
      sql += ", t" + std::to_string(t);
    }
    sql += " WHERE t1.v < 25";
    for (int t = 2; t <= n; ++t) {
      sql += " AND t" + std::to_string(t - 1) + ".k = t" + std::to_string(t) +
             ".k";
    }
    // Median of three runs, phase by phase, via the engine's metrics.
    double parse = 0, bind = 0, rewrite = 0, optimize = 0, refine = 0,
           execute = 0;
    size_t rows = 0;
    for (int rep = 0; rep < 3; ++rep) {
      rows = MustRows(&db, sql);
      const QueryMetrics& m = db.last_metrics();
      parse = m.parse_us;
      bind = m.bind_us;
      rewrite = m.rewrite_us;
      optimize = m.optimize_us;
      refine = m.refine_us;
      execute = m.execute_us;
    }
    std::printf("%6d %9.0f %9.0f %9.0f %10.0f %9.0f %10.0f %10zu\n", n, parse,
                bind, rewrite, optimize, refine, execute, rows);
  }

  // Claim (2): bypassing rewrite is a real knob.
  std::printf("\nF1b: rewrite bypass (the dashed arrow in Figure 1)\n");
  std::printf("%-28s %12s %12s\n", "configuration", "compile(us)", "execute(us)");
  const std::string nested =
      "SELECT q.partno FROM quotations q WHERE q.partno IN "
      "(SELECT partno FROM inventory WHERE type = 'CPU')";
  auto parts = MakePartsDb(40);
  MustExec(parts.get(), "SET PLAN_CACHE_SIZE = 0");
  for (bool rewrite_on : {true, false}) {
    parts->options().rewrite_enabled = rewrite_on;
    double compile = 0, execute = 0;
    for (int rep = 0; rep < 3; ++rep) {
      (void)MustRows(parts.get(), nested);
      const QueryMetrics& m = parts->last_metrics();
      compile = m.parse_us + m.bind_us + m.rewrite_us + m.optimize_us +
                m.refine_us;
      execute = m.execute_us;
    }
    std::printf("%-28s %12.0f %12.0f\n",
                rewrite_on ? "with query rewrite" : "rewrite bypassed",
                compile, execute);
  }
  std::printf("\nShape check: compile phases dominated by optimize as joins "
              "grow; bypassing rewrite trades compile time for run time.\n");
  return 0;
}
