// E8 — §1's access-method extensibility: B-trees are built in, and "a DBC
// could define a new type of access method, e.g., an R-tree. Corona must
// recognize when this access method is useful for a query and when to
// invoke it."
//
// Part A: B-tree vs sequential scan across predicate selectivities — the
// optimizer should switch methods at a sane crossover, and its choice
// should track the faster plan. Part B: the DBC R-tree against a full
// scan for spatial windows of growing size.

#include "bench_util.h"
#include "ext/extensions.h"

using namespace starburst;
using namespace starburst::bench;

namespace {

bool PlanUses(Database* db, const std::string& sql, const char* op) {
  Result<ResultSet> r = db->Execute("EXPLAIN PLAN " + sql);
  Must(r, "explain");
  return r->rows()[0][0].string_value().find(op) != std::string::npos;
}

}  // namespace

int main() {
  const int kRows = 50000;
  Database db;
  MakeIntTable(&db, "t", kRows, kRows);  // v uniform in [0, kRows)
  if (!db.AnalyzeAll().ok()) return 1;

  // Baseline: no index.
  std::printf("E8a: B-tree vs. scan, %d rows, range predicate v < X\n", kRows);
  std::printf("%10s | %10s | %12s | %12s | %10s\n", "selectivity",
              "scan us", "indexed us", "plan choice", "rows");
  std::vector<double> scan_times;
  for (double sel : {0.0001, 0.001, 0.01, 0.1, 0.5}) {
    std::string sql = "SELECT k FROM t WHERE v < " +
                      std::to_string(static_cast<int>(sel * kRows));
    scan_times.push_back(MedianUs([&] { (void)MustRows(&db, sql); }));
  }
  MustExec(&db, "CREATE INDEX t_v ON t (v)");
  if (!db.AnalyzeAll().ok()) return 1;
  int i = 0;
  for (double sel : {0.0001, 0.001, 0.01, 0.1, 0.5}) {
    std::string sql = "SELECT k FROM t WHERE v < " +
                      std::to_string(static_cast<int>(sel * kRows));
    size_t rows = 0;
    double indexed = MedianUs([&] { rows = MustRows(&db, sql); });
    bool uses_index = PlanUses(&db, sql, "ISCAN");
    std::printf("%10.4f | %10.0f | %12.0f | %12s | %10zu\n", sel,
                scan_times[i++], indexed, uses_index ? "ISCAN" : "SCAN", rows);
  }

  // Part B: the DBC's R-tree.
  Database spatial;
  (void)ext::RegisterAllExtensions(&spatial);
  MustExec(&spatial, "CREATE TABLE pts (id INT, loc POINT)");
  const int kPoints = 20000;
  const int kGrid = 200;  // points on a kGrid x kGrid lattice
  for (int base = 0; base < kPoints; base += 500) {
    std::string sql = "INSERT INTO pts VALUES ";
    for (int p = base; p < base + 500; ++p) {
      if (p > base) sql += ", ";
      sql += "(" + std::to_string(p) + ", POINT(" +
             std::to_string(p % kGrid) + ", " + std::to_string(p / kGrid) +
             "))";
    }
    MustExec(&spatial, sql);
  }
  if (!spatial.AnalyzeAll().ok()) return 1;

  std::printf("\nE8b: R-tree window queries, %d points\n", kPoints);
  std::printf("%10s | %10s | %12s | %12s | %8s\n", "window", "scan us",
              "rtree us", "plan choice", "rows");
  const int kWindows[] = {2, 5, 20, 60, 150};
  std::vector<double> spatial_scan_times;
  for (int w : kWindows) {
    std::string sql = "SELECT id FROM pts WHERE CONTAINS(loc, 0, 0, " +
                      std::to_string(w) + ", " + std::to_string(w) + ")";
    spatial_scan_times.push_back(
        MedianUs([&] { (void)MustRows(&spatial, sql); }));
  }
  MustExec(&spatial, "CREATE INDEX pts_loc ON pts (loc) USING RTREE");
  int wi = 0;
  for (int w : kWindows) {
    std::string sql = "SELECT id FROM pts WHERE CONTAINS(loc, 0, 0, " +
                      std::to_string(w) + ", " + std::to_string(w) + ")";
    size_t rows = 0;
    double rtree_us = MedianUs([&] { rows = MustRows(&spatial, sql); });
    bool uses_rtree = PlanUses(&spatial, sql, "RTREE_SCAN");
    std::printf("%9dx%d | %10.0f | %12.0f | %12s | %8zu\n", w, w,
                spatial_scan_times[wi++], rtree_us,
                uses_rtree ? "RTREE_SCAN" : "SCAN", rows);
  }
  std::printf("\nShape check: index wins at low selectivity, scan at high; "
              "the optimizer's choice flips at the crossover; the R-tree "
              "dominates for small windows.\n");
  return 0;
}
