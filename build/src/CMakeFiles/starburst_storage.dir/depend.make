# Empty dependencies file for starburst_storage.
# This may be replaced when dependencies are built.
