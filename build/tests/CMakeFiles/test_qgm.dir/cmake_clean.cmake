file(REMOVE_RECURSE
  "CMakeFiles/test_qgm.dir/test_qgm.cc.o"
  "CMakeFiles/test_qgm.dir/test_qgm.cc.o.d"
  "test_qgm"
  "test_qgm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qgm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
