#ifndef STARBURST_ENGINE_ADMISSION_H_
#define STARBURST_ENGINE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/cancel.h"
#include "common/result.h"
#include "common/status.h"

namespace starburst {

class AdmissionController;

/// RAII admission reservation: releases its bytes back to the global
/// ledger on destruction. A default-constructed grant holds nothing
/// (admission disabled or not yet admitted).
class AdmissionGrant {
 public:
  AdmissionGrant() = default;
  AdmissionGrant(AdmissionController* controller, uint64_t bytes)
      : controller_(controller), bytes_(bytes) {}
  ~AdmissionGrant() { Release(); }

  AdmissionGrant(AdmissionGrant&& o) noexcept
      : controller_(o.controller_), bytes_(o.bytes_) {
    o.controller_ = nullptr;
    o.bytes_ = 0;
  }
  AdmissionGrant& operator=(AdmissionGrant&& o) noexcept {
    if (this != &o) {
      Release();
      controller_ = o.controller_;
      bytes_ = o.bytes_;
      o.controller_ = nullptr;
      o.bytes_ = 0;
    }
    return *this;
  }
  AdmissionGrant(const AdmissionGrant&) = delete;
  AdmissionGrant& operator=(const AdmissionGrant&) = delete;

  void Release();
  uint64_t bytes() const { return bytes_; }

 private:
  AdmissionController* controller_ = nullptr;
  uint64_t bytes_ = 0;
};

/// Admission control against one global engine memory budget, modeled on
/// qserv's MemMan file-set reservations: a statement reserves its
/// query-level memory budget from the shared ledger before executing.
/// A reservation larger than the whole budget fails fast with a clear
/// error (it could never run); a reservation that merely doesn't fit
/// *right now* queues for a bounded wait, then times out. Budget 0
/// disables admission entirely (every Admit returns an empty grant).
class AdmissionController {
 public:
  /// Reservation charged when the statement has no query-memory budget of
  /// its own (`SET QUERY_MEMORY` unset): an ungoverned statement may use
  /// any amount of memory, so it is charged a conservative default slice
  /// rather than zero.
  static constexpr uint64_t kDefaultReservation = 64ull << 20;  // 64 MB

  struct Stats {
    uint64_t admitted_total = 0;  // grants handed out (queued ones included)
    uint64_t queued_total = 0;    // grants that had to wait first
    uint64_t rejected_total = 0;  // fail-fast: reservation > whole budget
    uint64_t timeout_total = 0;   // queued, then the wait expired
    uint64_t in_use_bytes = 0;    // currently reserved
    uint64_t budget_bytes = 0;    // 0 = admission off
  };

  /// `SET ADMISSION_MEMORY`: 0 turns admission off. Raising the budget
  /// wakes queued statements.
  void SetBudget(uint64_t bytes);
  /// `SET ADMISSION_WAIT_MS`: how long a statement may queue before its
  /// admission times out. 0 = fail fast (no queueing).
  void SetMaxWaitMs(int64_t ms);

  uint64_t budget() const;
  int64_t max_wait_ms() const;

  /// Reserves `requested_bytes` (0 = the default slice) from the ledger,
  /// queueing up to the configured wait. `cancel` (optional) aborts the
  /// wait when the statement is killed or its deadline fires — a queued
  /// statement must stay killable. `queued` (optional) reports whether
  /// the grant had to wait.
  Result<AdmissionGrant> Admit(uint64_t requested_bytes, CancelToken* cancel,
                               bool* queued = nullptr);

  Stats stats() const;

 private:
  friend class AdmissionGrant;
  void Release(uint64_t bytes);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t budget_ = 0;  // 0 = admission off
  uint64_t in_use_ = 0;
  int64_t max_wait_ms_ = 0;
  uint64_t admitted_total_ = 0;
  uint64_t queued_total_ = 0;
  uint64_t rejected_total_ = 0;
  uint64_t timeout_total_ = 0;
};

}  // namespace starburst

#endif  // STARBURST_ENGINE_ADMISSION_H_
