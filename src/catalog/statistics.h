#ifndef STARBURST_CATALOG_STATISTICS_H_
#define STARBURST_CATALOG_STATISTICS_H_

#include <map>
#include <optional>
#include <string>

#include "common/value.h"

namespace starburst {

/// Optimizer-facing statistics for one column of a stored table.
struct ColumnStats {
  double distinct_count = 0;       // number of distinct values (NDV)
  std::optional<Value> min_value;
  std::optional<Value> max_value;
  double null_fraction = 0;
};

/// Statistics for one stored table; feeds cardinality estimation in the
/// cost model (§6 "starting with statistics on stored tables").
struct TableStats {
  double row_count = 0;
  double page_count = 1;
  std::map<std::string, ColumnStats> columns;  // keyed by upper-cased name

  const ColumnStats* FindColumn(const std::string& name) const;
};

}  // namespace starburst

#endif  // STARBURST_CATALOG_STATISTICS_H_
