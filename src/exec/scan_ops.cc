#include "exec/operators.h"
#include "exec/parallel/morsel.h"
#include "storage/attachment.h"

namespace starburst::exec {

namespace {

/// With a MorselSource attached the scan is a parallel clone: instead of
/// one full walk it claims page-range morsels until the shared dispenser
/// runs dry, so sibling clones cover the table together.
class ScanOp : public Operator {
 public:
  ScanOp(const TableDef* table, std::vector<size_t> columns,
         std::vector<CompiledExprPtr> predicates,
         parallel::MorselSource* morsels = nullptr)
      : table_(table), columns_(std::move(columns)),
        predicates_(std::move(predicates)), morsels_(morsels) {}

  Status OpenImpl(ExecContext* ctx) override {
    ctx_ = ctx;
    STARBURST_ASSIGN_OR_RETURN(TableStorage * storage,
                               ctx->storage()->GetTable(table_->name));
    storage_ = storage;
    scan_ = morsels_ == nullptr ? storage->NewScan() : nullptr;
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override {
    Row full;
    Rid rid;
    while (true) {
      if (scan_ == nullptr) {
        PageNo begin, end;
        if (morsels_ == nullptr || !morsels_->Claim(&begin, &end)) {
          return false;
        }
        scan_ = storage_->NewRangeScan(begin, end);
      }
      STARBURST_ASSIGN_OR_RETURN(bool more, scan_->Next(&full, &rid));
      if (!more) {
        if (morsels_ != nullptr) {
          scan_.reset();  // morsel drained; claim the next one
          continue;
        }
        return false;
      }
      bool pass = true;
      // Predicates run against the *projected* row (slots follow
      // scan_columns), per §2: functions are invoked "at low levels of
      // the system" — here, inside the scan's predicate evaluator.
      Row projected = Project(full);
      for (const CompiledExprPtr& p : predicates_) {
        STARBURST_ASSIGN_OR_RETURN(bool ok, p->EvalPredicate(projected, ctx_));
        if (!ok) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      *row = std::move(projected);
      ++ctx_->stats().rows_emitted;
      return true;
    }
  }

  void CloseImpl() override { scan_.reset(); }

 private:
  Row Project(const Row& full) const {
    std::vector<Value> values;
    values.reserve(columns_.size());
    for (size_t c : columns_) values.push_back(full[c]);
    return Row(std::move(values));
  }

  const TableDef* table_;
  std::vector<size_t> columns_;
  std::vector<CompiledExprPtr> predicates_;
  parallel::MorselSource* morsels_;
  ExecContext* ctx_ = nullptr;
  TableStorage* storage_ = nullptr;
  std::unique_ptr<TableScanIterator> scan_;
};

class IndexScanOp : public Operator {
 public:
  IndexScanOp(const TableDef* table, const IndexDef* index,
              ast::BinaryOp bound_op, CompiledExprPtr bound,
              std::vector<size_t> columns,
              std::vector<CompiledExprPtr> predicates)
      : table_(table), index_(index), bound_op_(bound_op),
        bound_(std::move(bound)), columns_(std::move(columns)),
        predicates_(std::move(predicates)) {}

  Status OpenImpl(ExecContext* ctx) override {
    ctx_ = ctx;
    STARBURST_ASSIGN_OR_RETURN(storage_, ctx->storage()->GetTable(table_->name));
    STARBURST_ASSIGN_OR_RETURN(Attachment * attachment,
                               ctx->storage()->GetIndex(index_->name));
    auto* btree = dynamic_cast<BTreeAttachment*>(attachment);
    if (btree == nullptr) {
      return Status::Internal("index '" + index_->name + "' is not a B-tree");
    }
    if (bound_ == nullptr) {
      // Unbounded: walk the whole index in key order.
      exhausted_ = false;
      iter_ = btree->tree().Scan(nullptr, true, nullptr, true);
      return Status::OK();
    }
    // The bound may be parameterized by correlation values — evaluated at
    // every (re)open, which is what makes index-driven dependent joins
    // possible.
    Row empty;
    STARBURST_ASSIGN_OR_RETURN(Value key, bound_->Eval(empty, ctx));
    if (key.is_null()) {
      iter_.reset();
      exhausted_ = true;  // NULL never matches an index bound
      return Status::OK();
    }
    exhausted_ = false;
    BTreeKey lo{key}, hi{key};
    switch (bound_op_) {
      case ast::BinaryOp::kEq:
        iter_ = btree->tree().Scan(&lo, true, &hi, true);
        break;
      case ast::BinaryOp::kLt:
        iter_ = btree->tree().Scan(nullptr, true, &hi, false);
        break;
      case ast::BinaryOp::kLe:
        iter_ = btree->tree().Scan(nullptr, true, &hi, true);
        break;
      case ast::BinaryOp::kGt:
        iter_ = btree->tree().Scan(&lo, false, nullptr, true);
        break;
      case ast::BinaryOp::kGe:
        iter_ = btree->tree().Scan(&lo, true, nullptr, true);
        break;
      default:
        return Status::Internal("bad index bound operator");
    }
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override {
    if (exhausted_ || iter_ == nullptr) return false;
    BTreeKey key;
    Rid rid;
    while (iter_->Next(&key, &rid)) {
      // NULL keys sort first but never satisfy a bound comparison; an
      // unbounded (order-providing) scan must keep them.
      if (bound_ != nullptr && !key.empty() && key[0].is_null()) continue;
      STARBURST_ASSIGN_OR_RETURN(Row full, storage_->Fetch(rid));
      std::vector<Value> values;
      values.reserve(columns_.size());
      for (size_t c : columns_) values.push_back(full[c]);
      Row projected(std::move(values));
      bool pass = true;
      for (const CompiledExprPtr& p : predicates_) {
        STARBURST_ASSIGN_OR_RETURN(bool ok, p->EvalPredicate(projected, ctx_));
        if (!ok) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      *row = std::move(projected);
      ++ctx_->stats().rows_emitted;
      return true;
    }
    return false;
  }

  void CloseImpl() override { iter_.reset(); }

 private:
  const TableDef* table_;
  const IndexDef* index_;
  ast::BinaryOp bound_op_;
  CompiledExprPtr bound_;
  std::vector<size_t> columns_;
  std::vector<CompiledExprPtr> predicates_;
  ExecContext* ctx_ = nullptr;
  TableStorage* storage_ = nullptr;
  std::unique_ptr<BTree::Iterator> iter_;
  bool exhausted_ = false;
};

class ValuesOp : public Operator {
 public:
  explicit ValuesOp(std::vector<Row> rows) : rows_(std::move(rows)) {}

  Status OpenImpl(ExecContext* ctx) override {
    ctx_ = ctx;
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> NextImpl(Row* row) override {
    if (pos_ >= rows_.size()) return false;
    *row = rows_[pos_++];
    ++ctx_->stats().rows_emitted;
    return true;
  }
  void CloseImpl() override {}

 private:
  std::vector<Row> rows_;
  size_t pos_ = 0;
  ExecContext* ctx_ = nullptr;
};

class IterRefOp : public Operator {
 public:
  explicit IterRefOp(const qgm::Box* recursion) : recursion_(recursion) {}

  Status OpenImpl(ExecContext* ctx) override {
    rows_ = ctx->IterationTable(recursion_);
    if (rows_ == nullptr) {
      return Status::Internal("iteration reference outside recursion");
    }
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> NextImpl(Row* row) override {
    if (pos_ >= rows_->size()) return false;
    *row = (*rows_)[pos_++];
    return true;
  }
  void CloseImpl() override { rows_ = nullptr; }

 private:
  const qgm::Box* recursion_;
  const std::vector<Row>* rows_ = nullptr;
  size_t pos_ = 0;
};

}  // namespace

OperatorPtr MakeScanOp(const TableDef* table, std::vector<size_t> columns,
                       std::vector<CompiledExprPtr> predicates) {
  return std::make_unique<ScanOp>(table, std::move(columns),
                                  std::move(predicates));
}

OperatorPtr MakeMorselScanOp(const TableDef* table,
                             std::vector<size_t> columns,
                             std::vector<CompiledExprPtr> predicates,
                             parallel::MorselSource* morsels) {
  return std::make_unique<ScanOp>(table, std::move(columns),
                                  std::move(predicates), morsels);
}

OperatorPtr MakeIndexScanOp(const TableDef* table, const IndexDef* index,
                            ast::BinaryOp bound_op, CompiledExprPtr bound,
                            std::vector<size_t> columns,
                            std::vector<CompiledExprPtr> predicates) {
  return std::make_unique<IndexScanOp>(table, index, bound_op,
                                       std::move(bound), std::move(columns),
                                       std::move(predicates));
}

OperatorPtr MakeValuesOp(std::vector<Row> rows) {
  return std::make_unique<ValuesOp>(std::move(rows));
}

OperatorPtr MakeIterRefOp(const qgm::Box* recursion_box) {
  return std::make_unique<IterRefOp>(recursion_box);
}

}  // namespace starburst::exec
