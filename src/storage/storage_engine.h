#ifndef STARBURST_STORAGE_STORAGE_ENGINE_H_
#define STARBURST_STORAGE_STORAGE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "storage/attachment.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"

namespace starburst {

/// Core's runtime face: owns the pager/buffer pool, the per-table storage
/// instances (created by whichever storage manager the table was defined
/// under), and all attachments — and keeps attachments consistent across
/// row mutations. Corona calls down into this for every data access.
class StorageEngine {
 public:
  explicit StorageEngine(size_t buffer_capacity_pages = 4096)
      : pool_(&pager_, buffer_capacity_pages) {}

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  // -- DDL-side --
  Status CreateTable(const TableDef& def);
  Status DropTable(const std::string& name);
  /// Creates the attachment and backfills it from the table's current rows.
  Status CreateIndex(const IndexDef& def, const TableSchema& table_schema);
  Status DropIndex(const std::string& name);

  /// Test hook: the next DropTable/DropIndex call fails with an injected
  /// error before mutating anything, exercising the engine's DDL failure
  /// paths (catalog and storage must not diverge).
  void InjectDropFailure() { fail_next_drop_ = true; }

  // -- access --
  Result<TableStorage*> GetTable(const std::string& name);
  Result<Attachment*> GetIndex(const std::string& name);
  std::vector<Attachment*> AttachmentsOn(const std::string& table_name);

  // -- mutations with attachment maintenance --
  Result<Rid> InsertRow(const std::string& table_name, const Row& row);
  Status DeleteRow(const std::string& table_name, Rid rid);
  Result<Rid> UpdateRow(const std::string& table_name, Rid rid, const Row& row);

  BufferPool& buffer_pool() { return pool_; }
  StorageManagerRegistry& storage_managers() { return managers_; }
  AttachmentRegistry& attachment_kinds() { return attachment_kinds_; }

  /// One observability snapshot across the whole storage layer: buffer
  /// pool counters plus node visits summed over every attachment.
  struct Stats {
    BufferPoolStats buffer_pool;
    uint64_t index_node_visits = 0;
  };
  Stats GatherStats() const {
    Stats s;
    s.buffer_pool = pool_.stats();
    for (const auto& [name, attachment] : indexes_) {
      s.index_node_visits += attachment->StatNodeVisits();
    }
    return s;
  }

 private:
  Pager pager_;
  BufferPool pool_;
  StorageManagerRegistry managers_;
  AttachmentRegistry attachment_kinds_;
  std::map<std::string, std::unique_ptr<TableStorage>> tables_;
  std::map<std::string, std::unique_ptr<Attachment>> indexes_;
  std::map<std::string, std::string> index_table_;  // index -> table
  bool fail_next_drop_ = false;
};

}  // namespace starburst

#endif  // STARBURST_STORAGE_STORAGE_ENGINE_H_
