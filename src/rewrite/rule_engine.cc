#include "rewrite/rule_engine.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <set>

namespace starburst::rewrite {

using qgm::Box;
using qgm::Expr;
using qgm::Graph;
using qgm::Quantifier;

Status RuleEngine::AddRule(RewriteRule rule) {
  if (!rule.condition || !rule.action) {
    return Status::InvalidArgument("rule '" + rule.name +
                                   "' must supply condition and action");
  }
  for (const RewriteRule& r : rules_) {
    if (r.name == rule.name) {
      return Status::AlreadyExists("rule '" + rule.name + "' already added");
    }
  }
  rules_.push_back(std::move(rule));
  return Status::OK();
}

std::vector<std::string> RuleEngine::RuleNames() const {
  std::vector<std::string> names;
  for (const RewriteRule& r : rules_) names.push_back(r.name);
  return names;
}

namespace {

std::vector<Box*> SearchOrderBoxes(const Graph& graph,
                                   RuleEngine::SearchOrder order) {
  if (order == RuleEngine::SearchOrder::kDepthFirst) {
    // Top-down DFS: the reverse of the bottom-up traversal.
    std::vector<Box*> bottom_up = graph.BottomUpOrder();
    return std::vector<Box*>(bottom_up.rbegin(), bottom_up.rend());
  }
  // Breadth-first from the root.
  std::vector<Box*> out;
  std::set<Box*> seen;
  std::deque<Box*> queue;
  if (graph.root() != nullptr) {
    queue.push_back(graph.root());
    seen.insert(graph.root());
  }
  while (!queue.empty()) {
    Box* box = queue.front();
    queue.pop_front();
    out.push_back(box);
    for (const auto& q : box->quantifiers) {
      if (q->input != nullptr && seen.insert(q->input).second) {
        queue.push_back(q->input);
      }
    }
  }
  return out;
}

}  // namespace

Result<RuleEngine::Stats> RuleEngine::Run(Graph* graph,
                                          const Catalog* catalog) {
  return Run(graph, catalog, Options{});
}

Result<RuleEngine::Stats> RuleEngine::Run(Graph* graph, const Catalog* catalog,
                                          const Options& options) {
  Stats stats;
  std::map<std::string, int> fired;
  std::mt19937_64 rng(options.seed);

  auto class_enabled = [&](const std::string& rule_class) {
    if (options.enabled_classes.empty()) return true;
    return std::find(options.enabled_classes.begin(),
                     options.enabled_classes.end(),
                     rule_class) != options.enabled_classes.end();
  };

  // Rule evaluation order per control strategy. Sequential keeps insert
  // order; priority sorts by descending priority; statistical reshuffles
  // (weighted) on every box visit.
  std::vector<const RewriteRule*> ordered;
  for (const RewriteRule& r : rules_) {
    if (class_enabled(r.rule_class)) ordered.push_back(&r);
  }
  if (options.control == ControlStrategy::kPriority) {
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const RewriteRule* a, const RewriteRule* b) {
                       return a->priority > b->priority;
                     });
  }

  bool changed = true;
  while (changed) {
    changed = false;
    ++stats.passes;
    std::vector<Box*> boxes = SearchOrderBoxes(*graph, options.search);
    for (Box* box : boxes) {
      if (options.control == ControlStrategy::kStatistical) {
        // Weighted shuffle: repeatedly draw without replacement.
        std::vector<const RewriteRule*> pool = ordered;
        std::vector<const RewriteRule*> drawn;
        while (!pool.empty()) {
          double total = 0;
          for (const RewriteRule* r : pool) total += r->weight;
          std::uniform_real_distribution<double> dist(0, total);
          double x = dist(rng);
          size_t pick = 0;
          for (; pick + 1 < pool.size(); ++pick) {
            x -= pool[pick]->weight;
            if (x <= 0) break;
          }
          drawn.push_back(pool[pick]);
          pool.erase(pool.begin() + pick);
        }
        ordered = drawn;
      }
      for (const RewriteRule* rule : ordered) {
        if (options.budget >= 0 && stats.rules_fired >= options.budget) {
          stats.budget_exhausted = true;
          break;
        }
        RuleContext ctx{graph, box, catalog};
        ++stats.conditions_evaluated;
        if (!rule->condition(ctx)) continue;
        // Capture the box's identity before the action and the subsequent
        // garbage collection can merge it out of existence.
        Stats::Firing firing;
        firing.rule = rule->name;
        firing.box_id = box->id;
        firing.box_label = box->Label();
        firing.pass = stats.passes;
        // Same timebase as obs::NowUs (the rewrite layer stays below obs,
        // so the conversion is spelled out here).
        firing.at_us = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count();
        STARBURST_RETURN_IF_ERROR(rule->action(ctx));
        stats.firings.push_back(std::move(firing));
        ++stats.rules_fired;
        ++fired[rule->name];
        changed = true;
        if (options.paranoid_validation) {
          Status valid = graph->Validate();
          if (!valid.ok()) {
            return Status::Internal("rule '" + rule->name +
                                    "' left QGM inconsistent: " +
                                    valid.message());
          }
        }
        // The action may have restructured the graph (merged boxes, moved
        // quantifiers); restart the pass on a fresh traversal.
        graph->GarbageCollect();
        break;
      }
      if (changed || stats.budget_exhausted) break;
    }
    if (stats.budget_exhausted) break;
  }

  // Whatever happened — fixpoint or exhausted budget — the QGM must be in
  // a consistent state.
  STARBURST_RETURN_IF_ERROR(graph->Validate());
  for (auto& [name, count] : fired) stats.fired_by_rule.emplace_back(name, count);
  return stats;
}

// ---------------------------------------------------------------------------
// Helpers for rule authors
// ---------------------------------------------------------------------------

int CountReferences(const Graph& graph, const Box* box) {
  int count = 0;
  for (const auto& b : graph.boxes()) {
    for (const auto& q : b->quantifiers) {
      if (q->input == box) ++count;
    }
    if (b->kind == qgm::BoxKind::kIterationRef && b->recursion == box) ++count;
  }
  return count;
}

void ForEachExprSlot(Box* box, const std::function<void(qgm::ExprPtr*)>& fn) {
  for (auto& p : box->predicates) fn(&p);
  for (auto& h : box->head) {
    if (h.expr != nullptr) fn(&h.expr);
  }
  for (auto& g : box->group_keys) fn(&g);
  for (auto& a : box->aggregates) {
    if (a.arg != nullptr) fn(&a.arg);
  }
}

bool IsCorrelated(const Graph& graph, Box* sub) {
  (void)graph;
  // Collect boxes in the subtree, then look for references to quantifiers
  // owned outside it.
  std::set<Box*> subtree;
  std::vector<Box*> stack = {sub};
  while (!stack.empty()) {
    Box* b = stack.back();
    stack.pop_back();
    if (!subtree.insert(b).second) continue;
    for (const auto& q : b->quantifiers) {
      if (q->input != nullptr) stack.push_back(q->input);
    }
  }
  for (Box* b : subtree) {
    bool correlated = false;
    ForEachExprSlot(b, [&](qgm::ExprPtr* slot) {
      std::set<Quantifier*> used;
      (*slot)->CollectQuantifiers(&used);
      for (Quantifier* q : used) {
        if (subtree.count(q->owner) == 0) correlated = true;
      }
    });
    if (correlated) return true;
  }
  return false;
}

void RemapEverywhere(Graph* graph, const Quantifier* from, Quantifier* to,
                     const std::vector<size_t>& map) {
  for (const auto& b : graph->boxes()) {
    ForEachExprSlot(b.get(), [&](qgm::ExprPtr* slot) {
      (*slot)->RemapQuantifier(from, to, map);
    });
  }
}

void InlineEverywhere(Graph* graph, const Quantifier* from,
                      const std::vector<const Expr*>& replacements) {
  for (const auto& b : graph->boxes()) {
    ForEachExprSlot(b.get(), [&](qgm::ExprPtr* slot) {
      qgm::InlineIntoExpr(slot, from, replacements);
    });
  }
}

RuleEngine MakeDefaultRuleEngine() {
  RuleEngine engine;
  RegisterMiscRules(&engine);        // constant folding first: cheap wins
  RegisterMergeRules(&engine);       // subquery-to-join + operation merging
  RegisterPredicateRules(&engine);   // predicate migration
  RegisterRecursionRules(&engine);   // selection into recursions
  RegisterProjectionRules(&engine);  // projection push-down
  return engine;
}

}  // namespace starburst::rewrite
