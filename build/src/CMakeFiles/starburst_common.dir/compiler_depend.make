# Empty compiler generated dependencies file for starburst_common.
# This may be replaced when dependencies are built.
