file(REMOVE_RECURSE
  "CMakeFiles/bench_rule_engine.dir/bench_rule_engine.cc.o"
  "CMakeFiles/bench_rule_engine.dir/bench_rule_engine.cc.o.d"
  "bench_rule_engine"
  "bench_rule_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rule_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
