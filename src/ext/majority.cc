#include "ext/extensions.h"

namespace starburst::ext {

namespace {

/// §2: "a DBC could define a new set predicate function, e.g., MAJORITY,
/// which would return true if the predicate is true for the majority of
/// the elements of the set." Empty sets have no majority.
class MajorityState : public SetPredicateState {
 public:
  void Observe(bool match) override {
    ++total_;
    if (match) ++hits_;
  }
  bool Verdict() const override { return total_ > 0 && 2 * hits_ > total_; }

 private:
  size_t hits_ = 0;
  size_t total_ = 0;
};

}  // namespace

Status RegisterMajority(Database* db) {
  return db->catalog().functions().RegisterSetPredicate(
      SetPredicateFunctionDef{
          "MAJORITY", [] { return std::make_unique<MajorityState>(); }});
}

Status RegisterAllExtensions(Database* db) {
  STARBURST_RETURN_IF_ERROR(RegisterSpatialExtension(db));
  STARBURST_RETURN_IF_ERROR(RegisterSampleFunction(db));
  STARBURST_RETURN_IF_ERROR(RegisterStatisticsFunctions(db));
  STARBURST_RETURN_IF_ERROR(RegisterMajority(db));
  return RegisterOuterJoinRules(db);
}

}  // namespace starburst::ext
