// PC — plan cache & prepared execution: what does skipping the compile
// half of Figure 1 buy?
//
// The paper's plan is storable between refinement and execution; the
// engine exploits that in two ways: Execute() transparently reuses the
// refined plan for textually identical SQL (until DDL or ANALYZE bumps
// the catalog version), and Prepare()/ExecutePrepared() compile a
// ?-parameterised statement once and rebind values per run. This bench
// measures both against the always-recompile baseline on a query whose
// compile cost (join enumeration over a 6-way chain) dwarfs its
// execution cost — the workload shape plan caches exist for. The
// expectation from the phase split: cached execution skips parse, bind,
// rewrite, optimize, and refine entirely, for a >=5x end-to-end win.

#include "bench_util.h"

using namespace starburst;
using namespace starburst::bench;

namespace {

/// Order-insensitive fingerprint of a result set, for differential checks.
std::string Canon(const std::vector<Row>& rows) {
  std::vector<std::string> lines;
  lines.reserve(rows.size());
  for (const Row& r : rows) lines.push_back(r.ToString());
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) out += l + "\n";
  return out;
}

std::string CanonQuery(Database* db, const std::string& sql) {
  Result<std::vector<Row>> r = db->Query(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL: %s\n  in: %s\n",
                 r.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  return Canon(*r);
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json("plan_cache", argc, argv);
  Database db;
  // Small tables, wide join: compile (join enumeration) dominates, the
  // regime where recompiling per execution is pure waste.
  const int kTables = 7;
  for (int t = 1; t <= kTables; ++t) {
    MakeIntTable(&db, "t" + std::to_string(t), 100, 40,
                 static_cast<uint32_t>(300 + t));
  }
  if (!db.AnalyzeAll().ok()) return 1;

  std::string sql = "SELECT t1.k, t1.v FROM t1";
  for (int t = 2; t <= kTables; ++t) sql += ", t" + std::to_string(t);
  sql += " WHERE t1.k = 37";
  for (int t = 2; t <= kTables; ++t) {
    sql += " AND t" + std::to_string(t - 1) + ".k = t" + std::to_string(t) +
           ".k";
  }

  const int reps = 7;

  // --- Section 1: transparent caching inside Execute() -------------------
  // Cold: cache disabled, every run pays the full Figure-1 pipeline.
  MustExec(&db, "SET PLAN_CACHE_SIZE = 0");
  std::string cold_canon = CanonQuery(&db, sql);
  double cold_us = MinUs([&] { MustRows(&db, sql); }, reps);
  const QueryMetrics& cold_m = db.last_metrics();
  double compile_us = cold_m.parse_us + cold_m.bind_us + cold_m.rewrite_us +
                      cold_m.optimize_us + cold_m.refine_us;

  // Warm: cache on, primed by one run, every timed run is a hit.
  MustExec(&db, "SET PLAN_CACHE_SIZE = DEFAULT");
  std::string warm_canon = CanonQuery(&db, sql);
  double warm_us = MinUs([&] { MustRows(&db, sql); }, reps);
  if (!db.last_metrics().plan_cache_hit) {
    std::fprintf(stderr, "FATAL: warm run was not a plan-cache hit\n");
    return 1;
  }
  if (warm_canon != cold_canon) {
    std::fprintf(stderr, "ANSWER MISMATCH: cached vs recompiled\n");
    return 1;
  }

  double speedup = cold_us / std::max(warm_us, 1.0);
  std::printf("PC: %d-way join, recompile-per-run vs plan-cache hit\n",
              kTables);
  std::printf("%-18s %12s %12s\n", "path", "min(us)", "vs cold");
  std::printf("%-18s %12.0f %11s\n", "cold (cache off)", cold_us, "--");
  std::printf("%-18s %12.0f %10.1fx\n", "warm (cache hit)", warm_us, speedup);
  std::printf("(compile phases on the cold path: %.0f us of %.0f us total)\n",
              compile_us, cold_us);
  json.Add("execute_cold", {{"tables", kTables}}, cold_us / 1e3,
           1e6 / std::max(cold_us, 1.0));
  json.Add("execute_warm", {{"tables", kTables}}, warm_us / 1e3,
           1e6 / std::max(warm_us, 1.0));

  // --- Section 2: prepared statement with parameter rebinding ------------
  // One parameterised plan, many bindings, vs a fresh literal compile per
  // binding (cache off so each literal pays full freight, as it would in
  // a cache sized out by a diverse workload).
  std::string psql = "SELECT t1.k, t1.v FROM t1, t2, t3, t4 "
                     "WHERE t1.k = t2.k AND t2.k = t3.k AND t3.k = t4.k "
                     "AND t1.k = ?";
  Result<Database::PreparedHandle> prep = db.Prepare(psql);
  if (!prep.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", prep.status().ToString().c_str());
    return 1;
  }
  const int kBindings = 20;
  size_t rows_prepared = 0, rows_literal = 0;
  double prep_us = MinUs(
      [&] {
        rows_prepared = 0;
        for (int k = 0; k < kBindings; ++k) {
          Result<ResultSet> r =
              db.ExecutePrepared(*prep, {Value::Int(k * 7 % 200)});
          Must(r, "ExecutePrepared");
          rows_prepared += r->rows().size();
        }
      },
      reps);
  MustExec(&db, "SET PLAN_CACHE_SIZE = 0");
  double lit_us = MinUs(
      [&] {
        rows_literal = 0;
        for (int k = 0; k < kBindings; ++k) {
          std::string q = "SELECT t1.k, t1.v FROM t1, t2, t3, t4 "
                          "WHERE t1.k = t2.k AND t2.k = t3.k AND t3.k = t4.k "
                          "AND t1.k = " + std::to_string(k * 7 % 200);
          rows_literal += MustRows(&db, q);
        }
      },
      reps);
  if (rows_prepared != rows_literal) {
    std::fprintf(stderr, "ANSWER MISMATCH: prepared %zu vs literal %zu rows\n",
                 rows_prepared, rows_literal);
    return 1;
  }

  double prep_speedup = lit_us / std::max(prep_us, 1.0);
  std::printf("\nPC2: %d parameter bindings, prepared vs literal recompile\n",
              kBindings);
  std::printf("%-18s %12s %12s\n", "path", "min(us)", "vs literal");
  std::printf("%-18s %12.0f %11s\n", "literal recompile", lit_us, "--");
  std::printf("%-18s %12.0f %10.1fx\n", "prepared rebind", prep_us,
              prep_speedup);
  json.Add("literal_recompile", {{"bindings", kBindings}}, lit_us / 1e3,
           kBindings * 1e6 / std::max(lit_us, 1.0));
  json.Add("prepared_rebind", {{"bindings", kBindings}}, prep_us / 1e3,
           kBindings * 1e6 / std::max(prep_us, 1.0));

  std::printf("\nShape check: cache hit skips every compile phase "
              "(target >=5x here); prepared rebinding wins the same way "
              "without query-text round trips.\n");
  return speedup >= 2.0 ? 0 : 1;
}
