// Quickstart: the embedded Starburst engine in a dozen statements.
//
// Demonstrates the whole Figure-1 pipeline (parse -> QGM -> rewrite ->
// optimize -> refine -> execute) behind the one-call Database API, plus
// EXPLAIN to watch the compiler work.

#include <cstdio>

#include "engine/database.h"

using starburst::Database;
using starburst::Result;
using starburst::ResultSet;

namespace {

void Run(Database& db, const char* sql) {
  std::printf("starburst> %s\n", sql);
  Result<ResultSet> result = db.Execute(sql);
  if (!result.ok()) {
    std::printf("ERROR: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", result->ToString().c_str());
}

}  // namespace

int main() {
  Database db;

  Run(db, "CREATE TABLE dept (id INT PRIMARY KEY, name STRING)");
  Run(db, "CREATE TABLE emp (id INT PRIMARY KEY, name STRING, "
          "dept_id INT, salary DOUBLE)");
  Run(db, "INSERT INTO dept VALUES (1, 'engineering'), (2, 'sales'), "
          "(3, 'research')");
  Run(db, "INSERT INTO emp VALUES "
          "(1, 'ada', 1, 120.0), (2, 'grace', 1, 130.0), "
          "(3, 'edgar', 3, 110.0), (4, 'jim', 2, 90.0), (5, 'pat', 2, 95.0)");

  Run(db, "SELECT e.name, d.name AS dept FROM emp e, dept d "
          "WHERE e.dept_id = d.id AND e.salary > 100 ORDER BY e.name");

  Run(db, "SELECT d.name, COUNT(*) AS heads, AVG(e.salary) AS avg_salary "
          "FROM emp e, dept d WHERE e.dept_id = d.id "
          "GROUP BY d.name ORDER BY heads DESC");

  // Views merge into their consumers during query rewrite.
  Run(db, "CREATE VIEW well_paid AS SELECT id, name, dept_id FROM emp "
          "WHERE salary >= 110");
  Run(db, "SELECT w.name FROM well_paid w, dept d "
          "WHERE w.dept_id = d.id AND d.name = 'engineering' ORDER BY w.name");

  // Subqueries: the classic employees-above-department-average.
  Run(db, "SELECT e.name FROM emp e WHERE e.salary > "
          "(SELECT AVG(salary) FROM emp x WHERE x.dept_id = e.dept_id) "
          "ORDER BY e.name");

  // Watch the compiler: the QGM after rewrite, then the chosen plan.
  Run(db, "EXPLAIN QGM SELECT w.name FROM well_paid w WHERE w.dept_id = 1");
  Run(db, "EXPLAIN PLAN SELECT e.name, d.name FROM emp e, dept d "
          "WHERE e.dept_id = d.id");

  std::printf(
      "phase timings of the last statement: parse %.0fus bind %.0fus "
      "rewrite %.0fus optimize %.0fus refine %.0fus execute %.0fus\n",
      db.last_metrics().parse_us, db.last_metrics().bind_us,
      db.last_metrics().rewrite_us, db.last_metrics().optimize_us,
      db.last_metrics().refine_us, db.last_metrics().execute_us);
  return 0;
}
