# Empty dependencies file for example_logic_rules.
# This may be replaced when dependencies are built.
