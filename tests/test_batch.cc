#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/row_batch.h"
#include "engine/database.h"
#include "obs/op_stats.h"

namespace starburst {
namespace {

Row IntRow(int64_t a, int64_t b) {
  return Row({Value::Int(a), Value::Int(b)});
}

// ---------------------------------------------------------------------------
// RowBatch container semantics
// ---------------------------------------------------------------------------

TEST(RowBatchTest, AppendSlotAndPopLast) {
  RowBatch batch(4);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.capacity(), 4u);
  *batch.AppendSlot() = IntRow(1, 10);
  *batch.AppendSlot() = IntRow(2, 20);
  EXPECT_EQ(batch.size(), 2u);
  batch.PopLast();
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.row(0)[0].int_value(), 1);
  *batch.AppendSlot() = IntRow(3, 30);
  *batch.AppendSlot() = IntRow(4, 40);
  *batch.AppendSlot() = IntRow(5, 50);
  EXPECT_TRUE(batch.full());
  EXPECT_EQ(batch.size(), 4u);
}

TEST(RowBatchTest, SlotStorageIsReusedAcrossClear) {
  RowBatch batch(2);
  *batch.AppendSlot() = IntRow(1, 2);
  batch.Clear();
  // A fresh AppendSlot hands back the same slot; its Row must be usable
  // (operators clear()+fill the value vector in place).
  Row* slot = batch.AppendSlot();
  slot->values().clear();
  slot->values().push_back(Value::Int(9));
  EXPECT_EQ(batch.row(0)[0].int_value(), 9);
}

TEST(RowBatchTest, FillLimitClampsAndSurvivesClear) {
  RowBatch batch(8);
  batch.set_fill_limit(3);
  EXPECT_EQ(batch.fill_limit(), 3u);
  EXPECT_EQ(batch.remaining(), 3u);
  *batch.AppendSlot() = IntRow(1, 1);
  *batch.AppendSlot() = IntRow(2, 2);
  *batch.AppendSlot() = IntRow(3, 3);
  EXPECT_TRUE(batch.full());  // limited well below capacity
  batch.Clear();
  EXPECT_EQ(batch.fill_limit(), 3u);  // LIMIT persists across refills
  batch.set_fill_limit(100);          // clamped to capacity
  EXPECT_EQ(batch.fill_limit(), 8u);
  batch.set_fill_limit(0);  // clamped up: a batch can always hold one row
  EXPECT_EQ(batch.fill_limit(), 1u);
}

TEST(RowBatchTest, ResetChangesCapacityAndClears) {
  RowBatch batch(4);
  *batch.AppendSlot() = IntRow(1, 1);
  batch.set_fill_limit(2);
  batch.Reset(4);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.capacity(), 4u);
  EXPECT_EQ(batch.fill_limit(), 4u);  // Reset restores the full limit
  batch.Reset(16);
  EXPECT_EQ(batch.capacity(), 16u);
  EXPECT_TRUE(batch.empty());
}

TEST(RowBatchTest, SelectionNarrowsAndCompacts) {
  RowBatch batch(8);
  for (int i = 0; i < 6; ++i) *batch.AppendSlot() = IntRow(i, i * 10);
  EXPECT_FALSE(batch.selection_active());
  batch.SetSelection({1, 3, 5});
  EXPECT_TRUE(batch.selection_active());
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.row(0)[0].int_value(), 1);
  EXPECT_EQ(batch.row(2)[0].int_value(), 5);
  EXPECT_EQ(batch.physical_index(1), 3u);
  EXPECT_EQ(batch.physical_size(), 6u);
  batch.Compact();
  EXPECT_FALSE(batch.selection_active());
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.row(0)[0].int_value(), 1);
  EXPECT_EQ(batch.row(1)[0].int_value(), 3);
  EXPECT_EQ(batch.row(2)[0].int_value(), 5);
}

TEST(RowBatchTest, SelectionComposesThroughSetSelection) {
  RowBatch batch(8);
  for (int i = 0; i < 6; ++i) *batch.AppendSlot() = IntRow(i, 0);
  batch.SetSelection({0, 2, 4});
  // A second narrowing is expressed in physical indices (FilterBatch
  // passes physical_index(i) through).
  batch.SetSelection({2, 4});
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.row(0)[0].int_value(), 2);
  EXPECT_EQ(batch.row(1)[0].int_value(), 4);
}

TEST(RowBatchTest, MoveRowsToHonorsSelectionAndClears) {
  RowBatch batch(8);
  for (int i = 0; i < 5; ++i) *batch.AppendSlot() = IntRow(i, 0);
  batch.SetSelection({0, 2});
  std::vector<Row> out;
  batch.MoveRowsTo(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0][0].int_value(), 0);
  EXPECT_EQ(out[1][0].int_value(), 2);
  EXPECT_TRUE(batch.empty());
  EXPECT_FALSE(batch.selection_active());
  // Appends again after the move.
  *batch.AppendSlot() = IntRow(7, 7);
  batch.MoveRowsTo(&out);
  EXPECT_EQ(out.size(), 3u);
}

// ---------------------------------------------------------------------------
// Differential corpus: batched execution must be row-identical to the
// row-at-a-time protocol (batch_size = 1, parallelism = 1) on every
// supported operator family.
// ---------------------------------------------------------------------------

struct CorpusQuery {
  const char* sql;
  bool ordered;  // compare in result order instead of sorted
};

const CorpusQuery kCorpus[] = {
    {"SELECT k, v, w FROM a", false},
    {"SELECT k, v FROM a WHERE v < 37", false},
    {"SELECT k + v, w FROM a WHERE k % 3 = 0", false},
    {"SELECT k FROM a WHERE v < 20 OR k > 220", false},
    {"SELECT a.k, a.v, b.x FROM a, b WHERE a.k = b.k", false},
    {"SELECT a.k FROM a, b WHERE a.k = b.k AND a.v < b.x", false},
    {"SELECT v, COUNT(*), SUM(k) FROM a GROUP BY v", false},
    {"SELECT DISTINCT v FROM a", false},
    {"SELECT k, v FROM a ORDER BY v, k LIMIT 100", true},
    {"SELECT k FROM a LIMIT 37", false},
    {"SELECT k FROM a WHERE EXISTS "
     "(SELECT 1 FROM b WHERE b.k = a.k AND b.x > 100)",
     false},
    {"SELECT k FROM a WHERE v > (SELECT AVG(x) FROM b WHERE b.k = a.k)",
     false},
    {"SELECT k FROM a WHERE k IN (SELECT k FROM b)", false},
    {"SELECT v FROM a UNION SELECT x FROM b", false},
};

class BatchDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Must("CREATE TABLE a (k INT, v INT, w STRING)");
    Must("CREATE TABLE b (k INT, x INT)");
    // NULL join keys on both sides: equality joins must drop them, outer
    // semantics in subqueries must keep UNKNOWN behavior identical.
    for (int base = 0; base < 2000; base += 500) {
      std::string sql = "INSERT INTO a VALUES ";
      for (int i = base; i < base + 500; ++i) {
        if (i > base) sql += ", ";
        std::string key = i % 17 == 0 ? "NULL" : std::to_string(i % 250);
        sql += "(" + key + ", " + std::to_string((i * 7919) % 100) + ", 'w" +
               std::to_string(i % 23) + "')";
      }
      Must(sql);
    }
    std::string sql = "INSERT INTO b VALUES ";
    for (int i = 0; i < 300; ++i) {
      if (i > 0) sql += ", ";
      std::string key = i % 13 == 0 ? "NULL" : std::to_string(i % 100);
      sql += "(" + key + ", " + std::to_string((i * 104729) % 500) + ")";
    }
    Must(sql);
    ASSERT_TRUE(db_.AnalyzeAll().ok());
    // Small tables must still parallelize when asked.
    Must("SET parallel_min_rows = 0");
  }

  void Must(const std::string& sql) {
    Result<ResultSet> r = db_.Execute(sql);
    ASSERT_TRUE(r.ok()) << r.status().ToString() << "\n  in: " << sql;
  }

  std::vector<Row> Run(const std::string& sql, bool ordered) {
    Result<std::vector<Row>> r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n  in: " << sql;
    if (!r.ok()) return {};
    std::vector<Row> rows = r.TakeValue();
    if (!ordered) {
      std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
        return a.CompareTotal(b) < 0;
      });
    }
    return rows;
  }

  void SetExec(size_t batch_size, size_t parallelism) {
    Must("SET BATCH_SIZE = " + std::to_string(batch_size));
    Must("SET PARALLELISM = " + std::to_string(parallelism));
  }

  Database db_;
};

TEST_F(BatchDifferentialTest, BatchSizesAndParallelismAgree) {
  // Reference: the pinned row-at-a-time protocol.
  SetExec(1, 1);
  std::vector<std::vector<Row>> reference;
  for (const CorpusQuery& q : kCorpus) {
    reference.push_back(Run(q.sql, q.ordered));
  }
  for (size_t batch_size : {size_t{1}, size_t{7}, size_t{1024}}) {
    for (size_t parallelism : {size_t{1}, size_t{4}}) {
      if (batch_size == 1 && parallelism == 1) continue;
      SetExec(batch_size, parallelism);
      for (size_t i = 0; i < std::size(kCorpus); ++i) {
        std::vector<Row> got = Run(kCorpus[i].sql, kCorpus[i].ordered);
        EXPECT_EQ(got, reference[i])
            << "batch_size=" << batch_size << " parallelism=" << parallelism
            << "\n  in: " << kCorpus[i].sql;
      }
    }
  }
}

TEST_F(BatchDifferentialTest, LimitDoesNotOverfetchAcrossBatchSizes) {
  for (size_t batch_size : {size_t{1}, size_t{7}, size_t{1024}}) {
    SetExec(batch_size, 1);
    std::vector<Row> rows = Run("SELECT k FROM a LIMIT 37", false);
    EXPECT_EQ(rows.size(), 37u) << "batch_size=" << batch_size;
  }
}

TEST_F(BatchDifferentialTest, DependentJoinReopensUnderEveryCacheMode) {
  // Correlated subqueries re-Open their inner plan per distinct outer row;
  // with caching off they re-Open for EVERY outer row. Batched outers must
  // bind the right correlation frame for each row in the batch.
  const std::string q =
      "SELECT k FROM a WHERE v > (SELECT AVG(x) FROM b WHERE b.k = a.k)";
  SetExec(1, 1);
  std::vector<Row> reference = Run(q, false);
  for (exec::SubqueryCacheMode mode :
       {exec::SubqueryCacheMode::kNone, exec::SubqueryCacheMode::kLastValue,
        exec::SubqueryCacheMode::kMemo}) {
    db_.options().exec.cache_mode = mode;
    for (size_t batch_size : {size_t{7}, size_t{1024}}) {
      SetExec(batch_size, 1);
      EXPECT_EQ(Run(q, false), reference)
          << "cache_mode=" << static_cast<int>(mode)
          << " batch_size=" << batch_size;
    }
  }
}

void CollectActuals(const obs::PlanStatsTree::Node* node,
                    std::vector<std::pair<std::string, uint64_t>>* rows_out,
                    std::vector<uint64_t>* next_calls) {
  rows_out->emplace_back(node->name, node->actual.rows_out.load());
  next_calls->push_back(node->actual.next_calls.load());
  for (const obs::PlanStatsTree::Node* c : node->children) {
    CollectActuals(c, rows_out, next_calls);
  }
}

TEST_F(BatchDifferentialTest, ExplainAnalyzeRowCountsExactAcrossBatchSizes) {
  db_.options().collect_op_stats = true;
  const std::string q = "SELECT a.k, b.x FROM a, b WHERE a.k = b.k AND a.v < 50";

  SetExec(1, 1);
  Must(q);
  std::vector<std::pair<std::string, uint64_t>> rows_ref;
  std::vector<uint64_t> calls_ref;
  ASSERT_NE(db_.last_metrics().op_stats, nullptr);
  ASSERT_FALSE(db_.last_metrics().op_stats->roots().empty());
  CollectActuals(db_.last_metrics().op_stats->roots()[0], &rows_ref,
                 &calls_ref);

  SetExec(1024, 1);
  Must(q);
  std::vector<std::pair<std::string, uint64_t>> rows_batched;
  std::vector<uint64_t> calls_batched;
  CollectActuals(db_.last_metrics().op_stats->roots()[0], &rows_batched,
                 &calls_batched);

  // Per-operator row counts are EXACT at any batch size; call counts are
  // amortized (never more calls than the row-at-a-time protocol).
  EXPECT_EQ(rows_batched, rows_ref);
  ASSERT_EQ(calls_batched.size(), calls_ref.size());
  for (size_t i = 0; i < calls_ref.size(); ++i) {
    EXPECT_LE(calls_batched[i], calls_ref[i]) << rows_ref[i].first;
  }
}

}  // namespace
}  // namespace starburst
