#include "exec/parallel/task_scheduler.h"

#include <exception>
#include <string>

namespace starburst::exec::parallel {

namespace {
std::atomic<uint64_t> g_tasks_run{0};
std::atomic<uint64_t> g_workers_spawned{0};
}  // namespace

uint64_t TaskScheduler::total_tasks_run() {
  return g_tasks_run.load(std::memory_order_relaxed);
}

uint64_t TaskScheduler::total_workers_spawned() {
  return g_workers_spawned.load(std::memory_order_relaxed);
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

Status TaskScheduler::RunParallel(std::vector<std::function<Status()>> tasks,
                                  CancelToken* cancel) {
  if (tasks.empty()) return Status::OK();
  if (target_workers_ == 0 || tasks.size() == 1) {
    // Serial fast path: no threads, no locking.
    Status first;
    size_t ran = 0;
    for (auto& task : tasks) {
      if (cancel != nullptr) {
        Status c = cancel->Check();
        if (!c.ok()) {
          g_tasks_run.fetch_add(ran, std::memory_order_relaxed);
          return c;
        }
      }
      Status s;
      try {
        s = task();
      } catch (const std::exception& e) {
        s = Status::Internal(std::string("parallel task threw: ") + e.what());
      } catch (...) {
        s = Status::Internal("parallel task threw");
      }
      if (!s.ok() && first.ok()) first = s;
      ++ran;
    }
    g_tasks_run.fetch_add(ran, std::memory_order_relaxed);
    return first;
  }

  Batch batch;
  batch.tasks = &tasks;
  batch.cancel = cancel;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!spawned_) {
      threads_.reserve(target_workers_);
      for (size_t i = 0; i < target_workers_; ++i) {
        threads_.emplace_back([this] { WorkerLoop(); });
      }
      g_workers_spawned.fetch_add(target_workers_, std::memory_order_relaxed);
      spawned_ = true;
    }
    error_ = Status::OK();
    current_ = &batch;
  }
  work_cv_.notify_all();
  DrainBatch(&batch);
  {
    // The batch lives on this stack frame: wait until every task ran AND
    // no worker still holds a pointer into it.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return batch.done == tasks.size() && batch.active == 0;
    });
    current_ = nullptr;
    if (cancel != nullptr) {
      // A tripped token outranks secondary task failures: the clones that
      // observed the cancellation return Cancelled/Timeout themselves, but
      // first-error-wins could otherwise surface an unrelated error from a
      // clone that failed for a different reason mid-unwind.
      Status c = cancel->Check();
      if (!c.ok()) return c;
    }
    return error_;
  }
}

size_t TaskScheduler::DrainBatch(Batch* batch) {
  const size_t n = batch->tasks->size();
  size_t ran = 0;
  while (true) {
    size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    if (batch->cancel != nullptr && batch->cancel->cancelled()) {
      // Unstarted tasks are abandoned: count them done so the coordinator
      // unblocks, but never launch them. RunParallel reports the token's
      // status after the drain.
      std::lock_guard<std::mutex> lock(mu_);
      if (++batch->done == n) done_cv_.notify_all();
      continue;
    }
    Status s;
    try {
      s = (*batch->tasks)[i]();
    } catch (const std::exception& e) {
      s = Status::Internal(std::string("parallel task threw: ") + e.what());
    } catch (...) {
      s = Status::Internal("parallel task threw");
    }
    ++ran;
    g_tasks_run.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    if (!s.ok() && error_.ok()) error_ = s;
    if (++batch->done == n) done_cv_.notify_all();
  }
  return ran;
}

void TaskScheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return shutdown_ ||
             (current_ != nullptr &&
              current_->next.load(std::memory_order_relaxed) <
                  current_->tasks->size());
    });
    if (shutdown_) return;
    Batch* batch = current_;
    ++batch->active;
    lock.unlock();
    DrainBatch(batch);
    lock.lock();
    if (--batch->active == 0) done_cv_.notify_all();
  }
}

}  // namespace starburst::exec::parallel
