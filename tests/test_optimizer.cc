#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "parser/parser.h"
#include "qgm/binder.h"
#include "rewrite/rule_engine.h"

namespace starburst {
namespace {

using optimizer::JoinEnumerator;
using optimizer::Lolepop;
using optimizer::Optimizer;
using optimizer::Plan;
using optimizer::PlanPtr;

bool PlanContains(const Plan& plan, Lolepop op) {
  if (plan.op == op) return true;
  for (const PlanPtr& input : plan.inputs) {
    if (PlanContains(*input, op)) return true;
  }
  return false;
}

int CountOp(const Plan& plan, Lolepop op) {
  int n = plan.op == op ? 1 : 0;
  for (const PlanPtr& input : plan.inputs) n += CountOp(*input, op);
  return n;
}

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AddTable("small", 100, /*site=*/"local");
    AddTable("big", 100000, "local");
    AddTable("mid", 5000, "local");
    AddTable("remote_t", 1000, "siteB");
    // A B-tree on big.a.
    IndexDef index;
    index.name = "big_a";
    index.table_name = "big";
    index.key_columns = {"a"};
    ASSERT_TRUE(catalog_.CreateIndex(index).ok());
  }

  void AddTable(const std::string& name, double rows, const std::string& site) {
    TableDef def;
    def.name = name;
    def.site = site;
    def.schema = TableSchema({{"a", DataType::Int(), false},
                              {"b", DataType::Int(), true},
                              {"c", DataType::String(), true}});
    def.stats.row_count = rows;
    def.stats.page_count = rows / 64 + 1;
    ColumnStats a_stats;
    a_stats.distinct_count = rows;  // key-like
    a_stats.min_value = Value::Int(0);
    a_stats.max_value = Value::Int(static_cast<int64_t>(rows));
    def.stats.columns["A"] = a_stats;
    ColumnStats b_stats;
    b_stats.distinct_count = 10;
    def.stats.columns["B"] = b_stats;
    ASSERT_TRUE(catalog_.CreateTable(def).ok());
  }

  PlanPtr Optimize(const std::string& sql, Optimizer::Options options = {},
                   bool rewrite = true) {
    auto parsed = Parser::ParseQueryText(sql);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    qgm::Binder binder(&catalog_);
    Result<std::unique_ptr<qgm::Graph>> graph = binder.BindQuery(**parsed);
    EXPECT_TRUE(graph.ok()) << graph.status().ToString();
    if (rewrite) {
      rewrite::RuleEngine engine = rewrite::MakeDefaultRuleEngine();
      EXPECT_TRUE(engine.Run(graph->get(), &catalog_).ok());
    }
    graphs_.push_back(std::move(*graph));  // keep alive: plans point into it
    last_optimizer_ = std::make_unique<Optimizer>(&catalog_, options);
    Result<PlanPtr> plan = last_optimizer_->Optimize(*graphs_.back());
    EXPECT_TRUE(plan.ok()) << sql << " -> " << plan.status().ToString();
    return plan.ok() ? *plan : nullptr;
  }

  Catalog catalog_;
  std::vector<std::unique_ptr<qgm::Graph>> graphs_;
  std::unique_ptr<Optimizer> last_optimizer_;
};

TEST_F(OptimizerTest, ScanWithPushedPredicates) {
  PlanPtr plan = Optimize("SELECT a FROM small WHERE b = 3");
  ASSERT_NE(plan, nullptr);
  // PROJECT over SCAN; the predicate lives in the scan.
  EXPECT_EQ(plan->op, Lolepop::kProject);
  const Plan& scan = *plan->inputs[0];
  EXPECT_EQ(scan.op, Lolepop::kScan);
  EXPECT_EQ(scan.predicates.size(), 1u);
}

TEST_F(OptimizerTest, ScanProjectsOnlyNeededColumns) {
  PlanPtr plan = Optimize("SELECT a FROM small WHERE b = 3");
  const Plan& scan = *plan->inputs[0];
  EXPECT_EQ(scan.scan_columns.size(), 2u);  // a and b, not c
}

TEST_F(OptimizerTest, IndexChosenForSelectiveEquality) {
  PlanPtr plan = Optimize("SELECT b FROM big WHERE a = 12345");
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(PlanContains(*plan, Lolepop::kIndexScan));
}

TEST_F(OptimizerTest, SeqScanForUnselectivePredicate) {
  // b has NDV 10: equality keeps 10% — with rid fetches the index loses.
  PlanPtr plan = Optimize("SELECT a FROM big WHERE b = 1");
  EXPECT_FALSE(PlanContains(*plan, Lolepop::kIndexScan));
  EXPECT_TRUE(PlanContains(*plan, Lolepop::kScan));
}

TEST_F(OptimizerTest, HashJoinForLargeEquiJoin) {
  PlanPtr plan = Optimize(
      "SELECT s.a FROM small s, big b WHERE s.a = b.a");
  ASSERT_NE(plan, nullptr);
  // Either hash join, or an index-driven dependent NL — never a naive NL
  // rescanning the big table per outer row.
  bool hash = PlanContains(*plan, Lolepop::kHashJoin);
  bool index_nl = PlanContains(*plan, Lolepop::kNlJoin) &&
                  PlanContains(*plan, Lolepop::kIndexScan);
  EXPECT_TRUE(hash || index_nl) << plan->ToString();
}

TEST_F(OptimizerTest, SmallTableBecomesOuterOrTemped) {
  PlanPtr plan = Optimize(
      "SELECT s.a FROM small s, mid m WHERE s.a = m.a AND s.b = 1 "
      "AND m.c = 'x'");
  ASSERT_NE(plan, nullptr);
  EXPECT_LT(plan->props.cost, 1e7);
}

TEST_F(OptimizerTest, CartesianPruningOnByDefaultButFallsBack) {
  // No join predicate at all: the enumerator must still produce a plan
  // by falling back to a Cartesian product.
  PlanPtr plan = Optimize("SELECT s.a FROM small s, mid m WHERE s.b = m.b");
  ASSERT_NE(plan, nullptr);
  PlanPtr cross = Optimize("SELECT s.a, m.a FROM small s, mid m");
  ASSERT_NE(cross, nullptr);
}

TEST_F(OptimizerTest, BushyToggleChangesSearchSpace) {
  const std::string sql =
      "SELECT t1.a FROM small t1, small t2, small t3, small t4 "
      "WHERE t1.a = t2.a AND t2.b = t3.b AND t3.a = t4.a";
  Optimizer::Options bushy;
  bushy.join.allow_composite_inner = true;
  PlanPtr p1 = Optimize(sql, bushy);
  uint64_t bushy_pairs = last_optimizer_->stats().enumerator.pairs_considered;

  Optimizer::Options left_deep;
  left_deep.join.allow_composite_inner = false;
  PlanPtr p2 = Optimize(sql, left_deep);
  uint64_t deep_pairs = last_optimizer_->stats().enumerator.pairs_considered;

  EXPECT_GT(bushy_pairs, deep_pairs);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
}

TEST_F(OptimizerTest, RemoteTableGetsShipped) {
  PlanPtr plan = Optimize("SELECT r.a FROM remote_t r WHERE r.b = 1");
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(PlanContains(*plan, Lolepop::kShip)) << plan->ToString();
  // SHIP changed the site property back to local.
  EXPECT_EQ(plan->props.site, "local");
}

TEST_F(OptimizerTest, OrderByAddsSort) {
  PlanPtr plan = Optimize("SELECT a FROM small ORDER BY a");
  EXPECT_EQ(plan->op, Lolepop::kSort);
}

TEST_F(OptimizerTest, IndexOrderElidesFinalSort) {
  // The bounded index scan on big.a yields rows in `a` order; projection
  // preserves it (a is a plain head column), so ORDER BY a needs no SORT.
  PlanPtr plan = Optimize("SELECT a, b FROM big WHERE a < 100 ORDER BY a");
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(PlanContains(*plan, Lolepop::kIndexScan)) << plan->ToString();
  EXPECT_FALSE(PlanContains(*plan, Lolepop::kSort)) << plan->ToString();
}

TEST_F(OptimizerTest, UnboundedIndexScanRetainedPerOrder) {
  // The order-providing full-index scan exists as an alternative even when
  // the cheapest plan is a sequential scan.
  PlanPtr plan = Optimize("SELECT a FROM big");
  EXPECT_TRUE(PlanContains(*plan, Lolepop::kScan));  // cheapest overall
}

TEST_F(OptimizerTest, DistinctPlansDistinctOperator) {
  PlanPtr plan = Optimize("SELECT DISTINCT c FROM small");
  EXPECT_TRUE(PlanContains(*plan, Lolepop::kDistinct));
}

TEST_F(OptimizerTest, GroupByPlansGroupAgg) {
  PlanPtr plan = Optimize("SELECT b, COUNT(*) FROM small GROUP BY b");
  EXPECT_TRUE(PlanContains(*plan, Lolepop::kGroupAgg));
}

TEST_F(OptimizerTest, UncorrelatedInPlansJoinKind) {
  // Disable rewrite so the E-quantifier survives to the optimizer, which
  // must plan it as a join with the 'exists' kind (§7).
  PlanPtr plan = Optimize(
      "SELECT a FROM small WHERE b IN (SELECT b FROM mid)", {},
      /*rewrite=*/false);
  ASSERT_NE(plan, nullptr);
  bool found = false;
  std::function<void(const Plan&)> walk = [&](const Plan& p) {
    if ((p.op == Lolepop::kNlJoin || p.op == Lolepop::kHashJoin ||
         p.op == Lolepop::kMergeJoin) &&
        p.join_kind == optimizer::JoinKind::kExists) {
      found = true;
    }
    for (const PlanPtr& in : p.inputs) walk(*in);
  };
  walk(*plan);
  EXPECT_TRUE(found) << plan->ToString();
}

TEST_F(OptimizerTest, LeftOuterJoinKindInPlan) {
  PlanPtr plan = Optimize(
      "SELECT s.a FROM small s LEFT OUTER JOIN mid m ON s.a = m.a");
  bool found = false;
  std::function<void(const Plan&)> walk = [&](const Plan& p) {
    if (p.join_kind == optimizer::JoinKind::kLeftOuter &&
        (p.op == Lolepop::kNlJoin || p.op == Lolepop::kHashJoin ||
         p.op == Lolepop::kMergeJoin)) {
      found = true;
    }
    for (const PlanPtr& in : p.inputs) walk(*in);
  };
  walk(*plan);
  EXPECT_TRUE(found) << plan->ToString();
}

TEST_F(OptimizerTest, StarCountStaysUnderTwenty) {
  // §6's claim: "all the strategies of the R* optimizer, plus [several
  // extensions] ... all in under 20 rules."
  Optimizer opt(&catalog_);
  EXPECT_LT(opt.stars().size(), 20u);
  EXPECT_GE(opt.stars().size(), 8u);
}

TEST_F(OptimizerTest, RankPruningDisablesHighRankStars) {
  // Merge join is registered at rank 1; a max_rank of 0 prunes it.
  Optimizer::Options options;
  options.generator.max_rank = 0;
  PlanPtr plan = Optimize(
      "SELECT s.a FROM small s, mid m WHERE s.a = m.a", options);
  ASSERT_NE(plan, nullptr);
  EXPECT_FALSE(PlanContains(*plan, Lolepop::kMergeJoin));
}

TEST_F(OptimizerTest, DbcStarAddition) {
  Optimizer opt(&catalog_);
  int invoked = 0;
  ASSERT_TRUE(opt.stars()
                  .Add(optimizer::Star{
                      "dbc_access_probe", "TableAccess", 0,
                      [&invoked](optimizer::PlanGenerator&,
                                 const optimizer::StarContext&,
                                 std::vector<PlanPtr>*) {
                        ++invoked;
                        return Status::OK();
                      }})
                  .ok());
  auto parsed = Parser::ParseQueryText("SELECT a FROM small");
  qgm::Binder binder(&catalog_);
  auto graph = binder.BindQuery(**parsed);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(opt.Optimize(**graph).ok());
  EXPECT_EQ(invoked, 1);
}

TEST_F(OptimizerTest, CostsAreMonotoneInTableSize) {
  PlanPtr small = Optimize("SELECT a FROM small");
  PlanPtr big = Optimize("SELECT a FROM big");
  EXPECT_LT(small->props.cost, big->props.cost);
  EXPECT_LT(small->props.cardinality, big->props.cardinality);
}

TEST_F(OptimizerTest, SelectivityUsesStatistics) {
  // a is key-like (NDV = rows): equality keeps ~1 row.
  PlanPtr plan = Optimize("SELECT b FROM big WHERE a = 5");
  EXPECT_LE(plan->props.cardinality, 2.0);
  // b has NDV 10: ~10% survive.
  PlanPtr plan2 = Optimize("SELECT a FROM big WHERE b = 5");
  EXPECT_NEAR(plan2->props.cardinality, 10000, 2500);
}

TEST_F(OptimizerTest, SelectivityEstimatesFollowStatistics) {
  optimizer::CostModel cost;
  auto parsed = Parser::ParseQueryText(
      "SELECT a FROM big WHERE a = 5 AND b = 5 AND a < 50000 AND "
      "c LIKE 'x%' AND b IS NULL AND a <> 1");
  qgm::Binder binder(&catalog_);
  auto graph = binder.BindQuery(**parsed);
  ASSERT_TRUE(graph.ok());
  const auto& preds = (*graph)->root()->predicates;
  ASSERT_EQ(preds.size(), 6u);
  // a = 5: NDV(a) = 100000 -> 1e-5.
  EXPECT_NEAR(cost.Selectivity(*preds[0]), 1e-5, 1e-7);
  // b = 5: NDV(b) = 10 -> 0.1.
  EXPECT_NEAR(cost.Selectivity(*preds[1]), 0.1, 1e-9);
  // a < 50000 with min 0, max 100000 -> ~0.5 interpolation.
  EXPECT_NEAR(cost.Selectivity(*preds[2]), 0.5, 0.05);
  // LIKE default.
  EXPECT_NEAR(cost.Selectivity(*preds[3]), 0.25, 1e-9);
  // IS NULL default (no null stats collected).
  EXPECT_LE(cost.Selectivity(*preds[4]), 0.1);
  // a <> 1: complement of equality.
  EXPECT_GT(cost.Selectivity(*preds[5]), 0.9);
}

TEST_F(OptimizerTest, CombinedSelectivityMultiplies) {
  optimizer::CostModel cost;
  auto parsed = Parser::ParseQueryText("SELECT a FROM big WHERE b = 1 AND b = 2");
  qgm::Binder binder(&catalog_);
  auto graph = binder.BindQuery(**parsed);
  std::vector<const qgm::Expr*> preds;
  for (const auto& p : (*graph)->root()->predicates) preds.push_back(p.get());
  EXPECT_NEAR(cost.CombinedSelectivity(preds), 0.01, 1e-9);
}

TEST_F(OptimizerTest, GroupCountUsesKeyNdv) {
  optimizer::CostModel cost;
  auto parsed = Parser::ParseQueryText("SELECT b, COUNT(*) FROM big GROUP BY b");
  qgm::Binder binder(&catalog_);
  auto graph = binder.BindQuery(**parsed);
  const qgm::Box* gb = (*graph)->root()->quantifiers[0]->input;
  ASSERT_EQ(gb->kind, qgm::BoxKind::kGroupBy);
  EXPECT_NEAR(cost.GroupCount(gb->group_keys, 100000), 10, 1e-9);
  // Group count never exceeds the input cardinality.
  EXPECT_LE(cost.GroupCount(gb->group_keys, 4), 4.0);
}

TEST_F(OptimizerTest, DefaultsWithoutStatistics) {
  optimizer::CostModel cost;
  EXPECT_EQ(cost.TableRows(nullptr), cost.params().default_table_rows);
  TableDef fresh;
  fresh.name = "fresh";
  EXPECT_EQ(cost.TableRows(&fresh), cost.params().default_table_rows);
  EXPECT_GE(cost.TablePages(&fresh), 1.0);
}

TEST_F(OptimizerTest, UnknownNonterminalIsAnError) {
  optimizer::StarRegistry registry;
  optimizer::RegisterDefaultStars(&registry);
  optimizer::CostModel cost;
  optimizer::PlanGenerator gen(&registry, &cost, &catalog_);
  optimizer::StarContext ctx;
  EXPECT_EQ(gen.Expand("NoSuchThing", ctx).status().code(),
            StatusCode::kNotFound);
}

TEST_F(OptimizerTest, DuplicateStarRejected) {
  optimizer::StarRegistry registry;
  optimizer::RegisterDefaultStars(&registry);
  auto dup = optimizer::Star{
      "seqscan", "TableAccess", 0,
      [](optimizer::PlanGenerator&, const optimizer::StarContext&,
         std::vector<PlanPtr>*) { return Status::OK(); }};
  EXPECT_EQ(registry.Add(dup).code(), StatusCode::kAlreadyExists);
}

TEST_F(OptimizerTest, ChooseBoxPicksCheaperAlternative) {
  // Build a CHOOSE over two hand-made alternatives: scans of small & big.
  qgm::Graph graph;
  TableDef* small_def = *catalog_.GetMutableTable("small");
  TableDef* big_def = *catalog_.GetMutableTable("big");

  auto make_select = [&](TableDef* def) {
    qgm::Box* base = graph.NewBox(qgm::BoxKind::kBaseTable);
    base->table = def;
    for (const ColumnDef& col : def->schema.columns()) {
      base->head.push_back(qgm::HeadColumn{col.name, col.type, nullptr});
    }
    qgm::Box* select = graph.NewBox(qgm::BoxKind::kSelect);
    qgm::Quantifier* q = select->AddQuantifier(
        graph.NewQuantifier(qgm::QuantifierType::kForEach, base));
    select->head.push_back(qgm::HeadColumn{
        "a", DataType::Int(), qgm::MakeColumnRef(q, 0, DataType::Int())});
    return select;
  };
  qgm::Box* choose = graph.NewBox(qgm::BoxKind::kChoose);
  choose->head.push_back(qgm::HeadColumn{"a", DataType::Int(), nullptr});
  choose->AddQuantifier(graph.NewQuantifier(qgm::QuantifierType::kForEach,
                                            make_select(big_def)));
  choose->AddQuantifier(graph.NewQuantifier(qgm::QuantifierType::kForEach,
                                            make_select(small_def)));
  graph.set_root(choose);
  ASSERT_TRUE(graph.Validate().ok());

  Optimizer opt(&catalog_);
  Result<PlanPtr> plan = opt.Optimize(graph);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // The cheap (small-table) alternative won.
  EXPECT_LT((*plan)->props.cardinality, 1000);
}

}  // namespace
}  // namespace starburst
