#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "engine/admission.h"
#include "engine/database.h"
#include "engine/statement_registry.h"
#include "storage/spill_file.h"

namespace starburst {
namespace {

// ---------------------------------------------------------------------------
// CancelToken
// ---------------------------------------------------------------------------

TEST(CancelTokenTest, KillLatchesCancelled) {
  CancelToken token;
  EXPECT_TRUE(token.Check().ok());
  EXPECT_FALSE(token.cancelled());
  token.Kill();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
  // The reason sticks: repeat checks report the same status.
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
  token.Reset();
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, DeadlineLatchesTimeout) {
  CancelToken token;
  token.SetTimeoutMs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(token.Check().code(), StatusCode::kTimeout);
  // A later Kill cannot overwrite the latched deadline.
  token.Kill();
  EXPECT_EQ(token.Check().code(), StatusCode::kTimeout);
  EXPECT_EQ(token.reason(), CancelToken::Reason::kDeadline);
}

TEST(CancelTokenTest, FirstReasonWins) {
  CancelToken token;
  token.SetTimeoutMs(60000);  // armed, far away
  token.Kill();
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, ZeroDisarmsDeadline) {
  CancelToken token;
  token.SetTimeoutMs(1);
  token.SetTimeoutMs(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_TRUE(token.Check().ok());
}

// ---------------------------------------------------------------------------
// StatementRegistry
// ---------------------------------------------------------------------------

TEST(StatementRegistryTest, RegisterFinishSnapshot) {
  StatementRegistry registry;
  CancelToken token;
  registry.Register(1, "SELECT 1", 1000, &token);
  EXPECT_EQ(registry.live_count(), 1u);
  registry.SetPhase(1, "execute");

  std::vector<StatementSnapshot> live = registry.Snapshot();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].status, "running");
  EXPECT_EQ(live[0].phase, "execute");
  EXPECT_EQ(live[0].start_ts_us, 1000);

  registry.Finish(1, "ok", 4096, 250);
  EXPECT_EQ(registry.live_count(), 0u);
  std::vector<StatementSnapshot> done = registry.Snapshot();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].status, "ok");
  EXPECT_EQ(done[0].peak_memory_bytes, 4096u);
  EXPECT_EQ(done[0].total_us, 250);
}

TEST(StatementRegistryTest, KillTripsTokenAndUnknownIdIsNotFound) {
  StatementRegistry registry;
  CancelToken token;
  registry.Register(7, "SELECT 1", 0, &token);
  EXPECT_EQ(registry.Kill(99).code(), StatusCode::kNotFound);
  EXPECT_TRUE(registry.Kill(7).ok());
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
  registry.Finish(7, "cancelled", 0, 0);
  // Finished statements cannot be killed.
  EXPECT_EQ(registry.Kill(7).code(), StatusCode::kNotFound);
}

TEST(StatementRegistryTest, TruncatesLongSqlAndBoundsHistory) {
  StatementRegistry registry;
  registry.set_history_capacity(2);
  CancelToken token;
  std::string long_sql(StatementRegistry::kMaxSqlLength + 100, 'X');
  for (int64_t id = 1; id <= 4; ++id) {
    registry.Register(id, long_sql, 0, &token);
    registry.Finish(id, "ok", 0, 0);
  }
  std::vector<StatementSnapshot> snaps = registry.Snapshot();
  ASSERT_EQ(snaps.size(), 2u);  // only the newest two retained
  EXPECT_EQ(snaps[0].id, 3);
  EXPECT_EQ(snaps[1].id, 4);
  EXPECT_EQ(snaps[0].sql.size(), StatementRegistry::kMaxSqlLength);
  EXPECT_EQ(snaps[0].sql.substr(StatementRegistry::kMaxSqlLength - 3), "...");
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

TEST(AdmissionTest, DisabledAdmitsEverything) {
  AdmissionController adm;
  Result<AdmissionGrant> grant = adm.Admit(1ull << 40, nullptr);
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ((*grant).bytes(), 0u);  // empty grant: nothing reserved
  EXPECT_EQ(adm.stats().in_use_bytes, 0u);
}

TEST(AdmissionTest, OversizedReservationFailsFast) {
  AdmissionController adm;
  adm.SetBudget(1 << 20);
  Result<AdmissionGrant> grant = adm.Admit(2 << 20, nullptr);
  EXPECT_EQ(grant.status().code(), StatusCode::kAborted);
  EXPECT_EQ(adm.stats().rejected_total, 1u);
  // The default (unspecified) reservation is 64 MB — far over 1 MB.
  EXPECT_EQ(adm.Admit(0, nullptr).status().code(), StatusCode::kAborted);
}

TEST(AdmissionTest, GrantReleasesOnDestruction) {
  AdmissionController adm;
  adm.SetBudget(1 << 20);
  {
    Result<AdmissionGrant> grant = adm.Admit(1 << 20, nullptr);
    ASSERT_TRUE(grant.ok());
    EXPECT_EQ(adm.stats().in_use_bytes, 1u << 20);
  }
  EXPECT_EQ(adm.stats().in_use_bytes, 0u);
  EXPECT_EQ(adm.stats().admitted_total, 1u);
}

TEST(AdmissionTest, FullLedgerFailsFastWithoutWait) {
  AdmissionController adm;
  adm.SetBudget(1 << 20);
  Result<AdmissionGrant> first = adm.Admit(1 << 20, nullptr);
  ASSERT_TRUE(first.ok());
  Result<AdmissionGrant> second = adm.Admit(1 << 20, nullptr);
  EXPECT_EQ(second.status().code(), StatusCode::kAborted);
  EXPECT_EQ(adm.stats().rejected_total, 1u);
}

TEST(AdmissionTest, QueuedStatementAdmittedWhenSpaceFrees) {
  AdmissionController adm;
  adm.SetBudget(1 << 20);
  adm.SetMaxWaitMs(5000);
  Result<AdmissionGrant> first = adm.Admit(1 << 20, nullptr);
  ASSERT_TRUE(first.ok());
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    *first = AdmissionGrant();  // release the ledger
  });
  bool queued = false;
  Result<AdmissionGrant> second = adm.Admit(1 << 20, nullptr, &queued);
  releaser.join();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(queued);
  EXPECT_EQ(adm.stats().queued_total, 1u);
}

TEST(AdmissionTest, QueuedWaitTimesOut) {
  AdmissionController adm;
  adm.SetBudget(1 << 20);
  adm.SetMaxWaitMs(30);
  Result<AdmissionGrant> first = adm.Admit(1 << 20, nullptr);
  ASSERT_TRUE(first.ok());
  Result<AdmissionGrant> second = adm.Admit(1 << 20, nullptr);
  EXPECT_EQ(second.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(adm.stats().timeout_total, 1u);
}

TEST(AdmissionTest, CancelAbortsQueuedWait) {
  AdmissionController adm;
  adm.SetBudget(1 << 20);
  adm.SetMaxWaitMs(60000);
  Result<AdmissionGrant> first = adm.Admit(1 << 20, nullptr);
  ASSERT_TRUE(first.ok());
  CancelToken token;
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.Kill();
  });
  Result<AdmissionGrant> second = adm.Admit(1 << 20, &token);
  killer.join();
  EXPECT_EQ(second.status().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Engine-level governance: KILL, deadlines, admission, sys.statements
// ---------------------------------------------------------------------------

class GovernanceTest : public ::testing::Test {
 protected:
  static constexpr int kRows = 4000;

  void SetUp() override {
    ASSERT_TRUE(
        db_.Execute("CREATE TABLE t (id INT, k INT, grp INT, payload STRING)")
            .ok());
    std::string insert;
    for (int i = 0; i < kRows; ++i) {
      if (insert.empty()) {
        insert = "INSERT INTO t VALUES ";
      } else {
        insert += ",";
      }
      insert += "(" + std::to_string(i) + "," + std::to_string(i % 53) + "," +
                std::to_string(i % 40) + ",'pay-" + std::to_string(i) +
                "-xxxxxxxxxxxxxxxx')";
      if (insert.size() > 30000 || i == kRows - 1) {
        ASSERT_TRUE(db_.Execute(insert).ok());
        insert.clear();
      }
    }
  }

  void Set(const std::string& stmt) {
    Result<ResultSet> rs = db_.Execute(stmt);
    ASSERT_TRUE(rs.ok()) << stmt << ": " << rs.status().ToString();
  }

  /// A query that keeps batches flowing through the tree for a while: a
  /// cross join feeding an aggregate (checked per input batch) and, with
  /// SORT_MEMORY squeezed, a spilling sort.
  static std::string SlowCountQuery() {
    return "SELECT COUNT(*) FROM t a, t b WHERE a.k + b.k >= 0";
  }
  static std::string SlowSpillingSortQuery() {
    return "SELECT a.k, b.k FROM t a, t b "
           "WHERE a.id < 700 AND b.id < 700 ORDER BY a.k, b.k";
  }

  /// Asserts no execution residue: spill files deleted, admission ledger
  /// drained, no statement still registered as live.
  void ExpectNoResidue() {
    EXPECT_EQ(SpillFile::live_count(), 0u);
    EXPECT_EQ(SpillFile::live_bytes(), 0u);
    EXPECT_EQ(db_.admission().stats().in_use_bytes, 0u);
    EXPECT_EQ(db_.statement_registry().live_count(), 0u);
  }

  /// Latest finished-history status for a statement whose SQL contains
  /// `needle`.
  std::string HistoryStatus(const std::string& needle) {
    std::string found;
    for (const StatementSnapshot& s : db_.statement_registry().Snapshot()) {
      if (s.status != "running" && s.sql.find(needle) != std::string::npos) {
        found = s.status;  // keep the newest (history is oldest-first)
      }
    }
    return found;
  }

  Database db_;
};

TEST_F(GovernanceTest, StatementTimeoutReturnsTimeoutStatus) {
  for (int parallelism : {1, 4}) {
    Set("SET PARALLELISM = " + std::to_string(parallelism));
    Set("SET STATEMENT_TIMEOUT_MS = 20");
    auto start = std::chrono::steady_clock::now();
    Result<ResultSet> r = db_.Execute(SlowCountQuery());
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    Set("SET STATEMENT_TIMEOUT_MS = DEFAULT");
    ASSERT_FALSE(r.ok()) << "parallelism " << parallelism;
    EXPECT_EQ(r.status().code(), StatusCode::kTimeout)
        << r.status().ToString();
    // Cooperative checks land at batch boundaries: the statement dies
    // orders of magnitude before the uncancelled runtime.
    EXPECT_LT(elapsed, 5000) << "parallelism " << parallelism;
    EXPECT_EQ(HistoryStatus("COUNT(*)"), "timeout");
    ExpectNoResidue();
  }
}

TEST_F(GovernanceTest, TimeoutDuringSpillingSortLeavesNoSpillFiles) {
  for (int parallelism : {1, 4}) {
    Set("SET PARALLELISM = " + std::to_string(parallelism));
    Set("SET SORT_MEMORY = 64 KB");
    Set("SET STATEMENT_TIMEOUT_MS = 25");
    Result<ResultSet> r = db_.Execute(SlowSpillingSortQuery());
    Set("SET STATEMENT_TIMEOUT_MS = DEFAULT");
    Set("SET SORT_MEMORY = DEFAULT");
    ASSERT_FALSE(r.ok()) << "parallelism " << parallelism;
    EXPECT_EQ(r.status().code(), StatusCode::kTimeout)
        << r.status().ToString();
    ExpectNoResidue();
  }
}

TEST_F(GovernanceTest, KillFromAnotherThreadCancelsPromptly) {
  for (int parallelism : {1, 4}) {
    Set("SET PARALLELISM = " + std::to_string(parallelism));
    Result<ResultSet> result = Status::Internal("not run");
    std::thread worker(
        [&] { result = db_.Execute(SlowCountQuery()); });
    // Find the running statement and kill it through SQL.
    int64_t victim = 0;
    for (int spin = 0; spin < 2000 && victim == 0; ++spin) {
      for (const StatementSnapshot& s : db_.statement_registry().Snapshot()) {
        if (s.status == "running" &&
            s.sql.find("COUNT(*)") != std::string::npos) {
          victim = s.id;
          break;
        }
      }
      if (victim == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_NE(victim, 0) << "statement never showed up in sys.statements";
    Result<ResultSet> killed = db_.Execute("KILL " + std::to_string(victim));
    worker.join();
    // Either the KILL landed, or the query finished first and KILL
    // reported NotFound; with this table size the former is expected.
    if (killed.ok()) {
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
          << result.status().ToString();
      EXPECT_EQ(HistoryStatus("COUNT(*)"), "cancelled");
    }
    ExpectNoResidue();
  }
}

TEST_F(GovernanceTest, KillUnknownStatementIsNotFound) {
  Result<ResultSet> r = db_.Execute("KILL 123456789");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(GovernanceTest, AdmissionRejectionFlowsThroughStatusAndLog) {
  Set("SET ADMISSION_MEMORY = 1 MB");
  Set("SET QUERY_MEMORY = 2 MB");
  Result<ResultSet> r = db_.Execute("SELECT COUNT(*) FROM t");
  Set("SET QUERY_MEMORY = DEFAULT");
  Set("SET ADMISSION_MEMORY = DEFAULT");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAborted);
  EXPECT_NE(r.status().message().find("admission rejected"),
            std::string::npos);
  EXPECT_EQ(HistoryStatus("COUNT(*)"), "rejected");
  bool logged = false;
  for (const obs::QueryLogEntry& e : db_.query_log().Snapshot()) {
    if (e.status == "rejected") logged = true;
  }
  EXPECT_TRUE(logged);
  EXPECT_GE(db_.admission().stats().rejected_total, 1u);
  ExpectNoResidue();
}

TEST_F(GovernanceTest, QueuedStatementRunsOnceLedgerFrees) {
  Set("SET ADMISSION_MEMORY = 64 MB");
  Set("SET ADMISSION_WAIT_MS = 5000");
  Set("SET QUERY_MEMORY = 32 MB");
  // Hold most of the ledger so the statement must queue.
  Result<AdmissionGrant> held = db_.admission().Admit(48ull << 20, nullptr);
  ASSERT_TRUE(held.ok());
  Result<ResultSet> r = Status::Internal("not run");
  std::thread worker([&] { r = db_.Execute("SELECT COUNT(*) FROM t"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  *held = AdmissionGrant();  // free the ledger; the queued statement runs
  worker.join();
  Set("SET QUERY_MEMORY = DEFAULT");
  Set("SET ADMISSION_WAIT_MS = DEFAULT");
  Set("SET ADMISSION_MEMORY = DEFAULT");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(db_.admission().stats().queued_total, 1u);
  ExpectNoResidue();
}

TEST_F(GovernanceTest, SysStatementsShowsOutcomes) {
  Set("SET STATEMENT_TIMEOUT_MS = 15");
  (void)db_.Execute(SlowCountQuery());
  Set("SET STATEMENT_TIMEOUT_MS = DEFAULT");
  Result<std::vector<Row>> rows = db_.Query(
      "SELECT status FROM sys.statements WHERE status = 'timeout'");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_GE(rows->size(), 1u);
  // And the metrics counter moved.
  Result<std::vector<Row>> counter = db_.Query(
      "SELECT value FROM sys.metrics WHERE name = "
      "'statements_timed_out_total'");
  ASSERT_TRUE(counter.ok());
  ASSERT_EQ(counter->size(), 1u);
  EXPECT_GE((*counter)[0][0].double_value(), 1.0);
}

// ---------------------------------------------------------------------------
// Concurrency stress: mixed workload + killer thread, no leaked state
// ---------------------------------------------------------------------------

struct RowTotalLess {
  bool operator()(const Row& a, const Row& b) const {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].CompareTotal(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

TEST_F(GovernanceTest, ConcurrentMixedWorkloadWithKillerThread) {
  // Shared compiled trees are not concurrently executable: concurrent
  // sessions must run with the plan cache off.
  Set("SET PLAN_CACHE_SIZE = 0");
  Set("SET SORT_MEMORY = 64 KB");
  Set("SET AGG_MEMORY = 64 KB");

  const std::string agg_query =
      "SELECT grp, COUNT(*), SUM(k) FROM t GROUP BY grp";
  Result<std::vector<Row>> reference_r = db_.Query(agg_query);
  ASSERT_TRUE(reference_r.ok());
  std::vector<Row> reference = reference_r.TakeValue();
  std::sort(reference.begin(), reference.end(), RowTotalLess{});

  constexpr int kWorkers = 4;
  constexpr int kIters = 5;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread killer([&] {
    while (!stop.load()) {
      for (const StatementSnapshot& s : db_.statement_registry().Snapshot()) {
        if (s.status == "running" &&
            s.sql.find("COUNT(*)") != std::string::npos &&
            s.sql.find(", T B") != std::string::npos) {
          (void)db_.statement_registry().Kill(s.id);
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kIters; ++i) {
        // Mix: fast aggregate (spilling), spilling sort, and a heavy
        // cross join the killer thread hunts down.
        const std::string queries[] = {
            agg_query,
            "SELECT k, payload FROM t ORDER BY k",
            SlowCountQuery(),
        };
        const std::string& q = queries[(w + i) % 3];
        Result<std::vector<Row>> rows = db_.Query(q);
        if (rows.ok()) {
          if (q == agg_query) {
            std::vector<Row> got = rows.TakeValue();
            std::sort(got.begin(), got.end(), RowTotalLess{});
            if (got != reference) failures.fetch_add(1);
          }
        } else {
          StatusCode code = rows.status().code();
          // The only acceptable failures are governance outcomes.
          if (code != StatusCode::kCancelled &&
              code != StatusCode::kTimeout) {
            ADD_FAILURE() << q << ": " << rows.status().ToString();
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  stop.store(true);
  killer.join();

  Set("SET SORT_MEMORY = DEFAULT");
  Set("SET AGG_MEMORY = DEFAULT");
  Set("SET PLAN_CACHE_SIZE = DEFAULT");
  EXPECT_EQ(failures.load(), 0);
  ExpectNoResidue();

  // Surviving queries still compute the right answer, serial and
  // parallel alike.
  for (int parallelism : {1, 4}) {
    Set("SET PARALLELISM = " + std::to_string(parallelism));
    Result<std::vector<Row>> after = db_.Query(agg_query);
    ASSERT_TRUE(after.ok());
    std::vector<Row> got = after.TakeValue();
    std::sort(got.begin(), got.end(), RowTotalLess{});
    EXPECT_EQ(got, reference) << "parallelism " << parallelism;
  }
}

}  // namespace
}  // namespace starburst
