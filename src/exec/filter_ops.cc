#include <algorithm>
#include <cstdint>

#include "exec/operators.h"

namespace starburst::exec {

namespace {

class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr input, std::vector<CompiledExprPtr> predicates)
      : input_(std::move(input)), predicates_(std::move(predicates)) {}

  Status OpenImpl(ExecContext* ctx) override {
    ctx_ = ctx;
    return input_->Open(ctx);
  }

  Result<bool> NextImpl(Row* row) override {
    while (true) {
      STARBURST_ASSIGN_OR_RETURN(bool more, input_->Next(row));
      if (!more) return false;
      bool pass = true;
      for (const CompiledExprPtr& p : predicates_) {
        STARBURST_ASSIGN_OR_RETURN(bool ok, p->EvalPredicate(*row, ctx_));
        if (!ok) {
          pass = false;
          break;
        }
      }
      if (pass) return true;
    }
  }

  /// Batch-native path: pulls input batches through the caller's batch and
  /// narrows the selection vector to the passing rows — no row is copied.
  Result<bool> NextBatchImpl(RowBatch* batch) override {
    while (true) {
      STARBURST_ASSIGN_OR_RETURN(bool more, input_->NextBatch(batch));
      if (!more) return false;
      STARBURST_RETURN_IF_ERROR(FilterBatch(predicates_, batch, ctx_));
      if (!batch->empty()) return true;
      // Everything rejected; refill (NextBatch clears the batch).
    }
  }

  void CloseImpl() override { input_->Close(); }

 private:
  OperatorPtr input_;
  std::vector<CompiledExprPtr> predicates_;
  ExecContext* ctx_ = nullptr;
};

/// §7's OR operator: disjunct branches tried in order; the first branch
/// that accepts ends evaluation, so "expensive" branches (subqueries) only
/// run for tuples the earlier terms rejected — without any change to the
/// operators that evaluate the individual terms.
class OrRouteOp : public Operator {
 public:
  OrRouteOp(OperatorPtr input,
            std::vector<std::vector<CompiledExprPtr>> branches)
      : input_(std::move(input)), branches_(std::move(branches)) {}

  Status OpenImpl(ExecContext* ctx) override {
    ctx_ = ctx;
    return input_->Open(ctx);
  }

  Result<bool> NextImpl(Row* row) override {
    while (true) {
      STARBURST_ASSIGN_OR_RETURN(bool more, input_->Next(row));
      if (!more) return false;
      for (const auto& branch : branches_) {
        bool branch_pass = true;
        for (const CompiledExprPtr& p : branch) {
          STARBURST_ASSIGN_OR_RETURN(bool ok, p->EvalPredicate(*row, ctx_));
          if (!ok) {
            branch_pass = false;
            break;
          }
        }
        if (branch_pass) return true;  // accepted; later branches skipped
      }
    }
  }

  /// Batched disjunction: per row, branches still run in order and stop at
  /// the first acceptance; survivors are marked in the selection vector.
  Result<bool> NextBatchImpl(RowBatch* batch) override {
    while (true) {
      STARBURST_ASSIGN_OR_RETURN(bool more, input_->NextBatch(batch));
      if (!more) return false;
      ScopedParamFold fold;
      for (const auto& branch : branches_) {
        for (const CompiledExprPtr& p : branch) {
          STARBURST_RETURN_IF_ERROR(fold.Add(p.get(), ctx_));
        }
      }
      std::vector<uint32_t> keep;
      size_t n = batch->size();
      keep.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        const Row& r = batch->row(i);
        for (const auto& branch : branches_) {
          bool branch_pass = true;
          for (const CompiledExprPtr& p : branch) {
            STARBURST_ASSIGN_OR_RETURN(bool ok, p->EvalPredicate(r, ctx_));
            if (!ok) {
              branch_pass = false;
              break;
            }
          }
          if (branch_pass) {
            keep.push_back(static_cast<uint32_t>(batch->physical_index(i)));
            break;
          }
        }
      }
      batch->SetSelection(std::move(keep));
      if (!batch->empty()) return true;
    }
  }

  void CloseImpl() override { input_->Close(); }

 private:
  OperatorPtr input_;
  std::vector<std::vector<CompiledExprPtr>> branches_;
  ExecContext* ctx_ = nullptr;
};

class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr input, std::vector<CompiledExprPtr> exprs)
      : input_(std::move(input)), exprs_(std::move(exprs)) {}

  Status OpenImpl(ExecContext* ctx) override {
    ctx_ = ctx;
    in_batch_.Reset(ctx->batch_size());
    return input_->Open(ctx);
  }

  Result<bool> NextImpl(Row* row) override {
    Row in;
    STARBURST_ASSIGN_OR_RETURN(bool more, input_->Next(&in));
    if (!more) return false;
    if (exprs_.empty()) {  // pure relabeling
      *row = std::move(in);
      return true;
    }
    std::vector<Value> values;
    values.reserve(exprs_.size());
    for (const CompiledExprPtr& e : exprs_) {
      STARBURST_ASSIGN_OR_RETURN(Value v, e->Eval(in, ctx_));
      values.push_back(std::move(v));
    }
    *row = Row(std::move(values));
    return true;
  }

  /// Batch-native path: computes the output expressions for every active
  /// input row into the caller's batch slots (param lookups folded once).
  Result<bool> NextBatchImpl(RowBatch* out) override {
    if (exprs_.empty()) return input_->NextBatch(out);  // pure relabeling
    // Stage no more input rows than the caller's batch will take.
    in_batch_.set_fill_limit(out->remaining());
    STARBURST_ASSIGN_OR_RETURN(bool more, input_->NextBatch(&in_batch_));
    if (!more) return false;
    ScopedParamFold fold;
    for (const CompiledExprPtr& e : exprs_) {
      STARBURST_RETURN_IF_ERROR(fold.Add(e.get(), ctx_));
    }
    size_t n = in_batch_.size();
    for (size_t i = 0; i < n; ++i) {
      const Row& in = in_batch_.row(i);
      Row* slot = out->AppendSlot();
      std::vector<Value>& values = slot->values();
      values.clear();
      values.reserve(exprs_.size());
      for (const CompiledExprPtr& e : exprs_) {
        STARBURST_ASSIGN_OR_RETURN(Value v, e->Eval(in, ctx_));
        values.push_back(std::move(v));
      }
    }
    return !out->empty();
  }

  void CloseImpl() override { input_->Close(); }

 private:
  OperatorPtr input_;
  std::vector<CompiledExprPtr> exprs_;
  RowBatch in_batch_;
  ExecContext* ctx_ = nullptr;
};

/// Materializes its input on first open; later opens replay the buffer.
/// The optimizer only TEMPs independent streams, so replaying is sound.
/// With a `shared_key`, the materialization lives in the ExecContext so
/// every consumer operator of the same shared table expression reads one
/// copy ("materialized once and used several times", §5).
class TempOp : public Operator {
 public:
  TempOp(OperatorPtr input, const void* shared_key)
      : input_(std::move(input)), shared_key_(shared_key) {}

  Status OpenImpl(ExecContext* ctx) override {
    pos_ = 0;
    if (shared_key_ != nullptr) {
      buffer_ = ctx->SharedTable(shared_key_);
      if (buffer_ != nullptr) return Status::OK();
    } else if (buffer_ != nullptr) {
      return Status::OK();
    }
    STARBURST_RETURN_IF_ERROR(input_->Open(ctx));
    Result<std::vector<Row>> rows =
        DrainOperator(input_.get(), ctx->batch_size(), 0, ctx);
    input_->Close();
    if (!rows.ok()) return rows.status();
    if (shared_key_ != nullptr) {
      buffer_ = ctx->StoreSharedTable(shared_key_, rows.TakeValue());
    } else {
      local_ = rows.TakeValue();
      buffer_ = &local_;
    }
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override {
    if (pos_ >= buffer_->size()) return false;
    *row = (*buffer_)[pos_++];
    return true;
  }

  Result<bool> NextBatchImpl(RowBatch* batch) override {
    return FillBatchFromRows(*buffer_, &pos_, batch);
  }

  void CloseImpl() override {}

 private:
  OperatorPtr input_;
  const void* shared_key_;
  std::vector<Row> local_;
  const std::vector<Row>* buffer_ = nullptr;
  size_t pos_ = 0;
};

/// Simulated site change: counts shipped rows (the cost model charged for
/// them at plan time); data passes through unchanged.
class ShipOp : public Operator {
 public:
  ShipOp(OperatorPtr input, double per_row_delay_us)
      : input_(std::move(input)), per_row_delay_us_(per_row_delay_us) {}

  Status OpenImpl(ExecContext* ctx) override {
    ctx_ = ctx;
    return input_->Open(ctx);
  }

  Result<bool> NextImpl(Row* row) override {
    STARBURST_ASSIGN_OR_RETURN(bool more, input_->Next(row));
    if (more) {
      ++ctx_->stats().shipped_rows;
      if (per_row_delay_us_ > 0) {
        // Simulated wire time: spin briefly so benches observe SHIP cost.
        double sink = 0;
        for (int i = 0; i < static_cast<int>(per_row_delay_us_ * 10); ++i) {
          sink += i;
        }
        volatile double keep = sink;
        (void)keep;
      }
    }
    return more;
  }

  Result<bool> NextBatchImpl(RowBatch* batch) override {
    STARBURST_ASSIGN_OR_RETURN(bool more, input_->NextBatch(batch));
    if (!more) return false;
    size_t n = batch->size();
    ctx_->stats().shipped_rows += n;
    if (per_row_delay_us_ > 0) {
      // The cost model charged per shipped row; keep the simulated wire
      // time proportional under batching.
      double sink = 0;
      for (size_t r = 0; r < n; ++r) {
        for (int i = 0; i < static_cast<int>(per_row_delay_us_ * 10); ++i) {
          sink += i;
        }
      }
      volatile double keep = sink;
      (void)keep;
    }
    return true;
  }

  void CloseImpl() override { input_->Close(); }

 private:
  OperatorPtr input_;
  double per_row_delay_us_;
  ExecContext* ctx_ = nullptr;
};

class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr input, int64_t limit)
      : input_(std::move(input)), limit_(limit) {}

  Status OpenImpl(ExecContext* ctx) override {
    produced_ = 0;
    return input_->Open(ctx);
  }

  Result<bool> NextImpl(Row* row) override {
    if (limit_ >= 0 && produced_ >= limit_) return false;
    STARBURST_ASSIGN_OR_RETURN(bool more, input_->Next(row));
    if (more) ++produced_;
    return more;
  }

  /// Batched LIMIT clamps the producer's fill limit to the rows remaining,
  /// so upstream operators never stage rows past the limit.
  Result<bool> NextBatchImpl(RowBatch* batch) override {
    if (limit_ >= 0 && produced_ >= limit_) return false;
    size_t saved = batch->fill_limit();
    if (limit_ >= 0) {
      size_t remaining = static_cast<size_t>(limit_ - produced_);
      batch->set_fill_limit(std::min(saved, remaining));
    }
    Result<bool> more = input_->NextBatch(batch);
    batch->set_fill_limit(saved);
    if (!more.ok() || !*more) return more;
    produced_ += static_cast<int64_t>(batch->size());
    return true;
  }

  void CloseImpl() override { input_->Close(); }

 private:
  OperatorPtr input_;
  int64_t limit_;
  int64_t produced_ = 0;
};

}  // namespace

OperatorPtr MakeFilterOp(OperatorPtr input,
                         std::vector<CompiledExprPtr> predicates) {
  return std::make_unique<FilterOp>(std::move(input), std::move(predicates));
}

OperatorPtr MakeOrRouteOp(OperatorPtr input,
                          std::vector<std::vector<CompiledExprPtr>> branches) {
  return std::make_unique<OrRouteOp>(std::move(input), std::move(branches));
}

OperatorPtr MakeProjectOp(OperatorPtr input,
                          std::vector<CompiledExprPtr> exprs) {
  return std::make_unique<ProjectOp>(std::move(input), std::move(exprs));
}

OperatorPtr MakeTempOp(OperatorPtr input) {
  return std::make_unique<TempOp>(std::move(input), nullptr);
}

OperatorPtr MakeSharedTempOp(OperatorPtr input, const void* shared_key) {
  return std::make_unique<TempOp>(std::move(input), shared_key);
}

OperatorPtr MakeShipOp(OperatorPtr input, double per_row_delay_us) {
  return std::make_unique<ShipOp>(std::move(input), per_row_delay_us);
}

OperatorPtr MakeLimitOp(OperatorPtr input, int64_t limit) {
  return std::make_unique<LimitOp>(std::move(input), limit);
}

}  // namespace starburst::exec
