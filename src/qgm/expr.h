#ifndef STARBURST_QGM_EXPR_H_
#define STARBURST_QGM_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "catalog/function_registry.h"
#include "common/datatype.h"
#include "common/value.h"
#include "parser/ast.h"

namespace starburst::qgm {

struct Quantifier;  // defined in qgm/box.h

/// Bound (name-resolved, type-checked) scalar expression inside a QGM box.
/// Column references point at a quantifier of the *same* box plus a column
/// position in that quantifier's input head — the QGM equivalent of the
/// paper's qualifier-edge endpoints. Subqueries never appear here: binding
/// turns them into quantifiers, so expressions stay flat and rewrite rules
/// can reason about them structurally.
struct Expr {
  enum class Kind {
    kLiteral,
    kColumnRef,
    kBinary,      // arithmetic, comparison, AND/OR (children[0], children[1])
    kUnary,       // NOT, negate (children[0])
    kScalarFunc,  // registered scalar function over children
    kAggRef,      // output of aggregate #agg_index (GROUP BY box heads only)
    kCase,        // children = [cond0,res0,cond1,res1,...][,else]
    kIsNull,      // children[0]; `negated` = IS NOT NULL
    kLike,        // children[0] LIKE children[1]
    kInList,      // children[0] IN (children[1..])
    /// EXISTS over an E-quantifier's subquery: true iff the ranged-over
    /// table is non-empty (under correlation). `negated` = NOT EXISTS.
    kExistsTest,
    /// `children[0] bop <quantified set>`: the quantifier's type selects
    /// the fold — E: SQL ANY/IN; A: SQL ALL (NOT IN binds as <> ALL);
    /// kSetPredicate: the quantifier's registered set-predicate function
    /// (the paper's MAJORITY example) over per-element truth.
    kQuantCompare,
    /// `?` positional parameter: a late-bound constant supplied at
    /// execution time through the ExecContext param frames. Typed kNull
    /// (unknown) at bind time, comparable with anything.
    kParam,
  };

  Kind kind = Kind::kLiteral;
  DataType type;

  // kLiteral
  Value literal;

  // kColumnRef
  Quantifier* quantifier = nullptr;
  size_t column = 0;

  // kBinary / kUnary
  ast::BinaryOp bop = ast::BinaryOp::kEq;
  ast::UnaryOp uop = ast::UnaryOp::kNot;

  // kScalarFunc
  const ScalarFunctionDef* func = nullptr;
  std::string func_name;

  // kAggRef
  size_t agg_index = 0;

  // kParam
  size_t param_index = 0;

  // kCase: true when an ELSE arm is present (last child)
  bool has_else = false;

  // kIsNull / kLike / kInList
  bool negated = false;

  std::vector<std::unique_ptr<Expr>> children;

  std::unique_ptr<Expr> Clone() const;
  std::string ToString() const;

  /// All quantifiers this expression references (its qualifier-edge ends).
  void CollectQuantifiers(std::set<Quantifier*>* out) const;
  bool ReferencesQuantifier(const Quantifier* q) const;

  /// All (quantifier, column) pairs referenced.
  void CollectColumnRefs(
      std::vector<std::pair<Quantifier*, size_t>>* out) const;

  /// Rebinds every reference to quantifier `from` so it points at `to`,
  /// mapping column i through `column_map` (identity if empty).
  void RemapQuantifier(const Quantifier* from, Quantifier* to,
                       const std::vector<size_t>& column_map);

  /// Replaces references `from.col` by clones of `replacements[col]` —
  /// used when merging a lower box's head expressions into this one.
  void InlineQuantifier(const Quantifier* from,
                        const std::vector<const Expr*>& replacements);
};

using ExprPtr = std::unique_ptr<Expr>;

// -- constructors ----------------------------------------------------------
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(Quantifier* q, size_t column, DataType type);
ExprPtr MakeBinary(ast::BinaryOp op, ExprPtr left, ExprPtr right,
                   DataType type);
ExprPtr MakeUnary(ast::UnaryOp op, ExprPtr operand, DataType type);
ExprPtr MakeAggRef(size_t agg_index, DataType type);

/// AND of conjuncts (nullptr when empty).
ExprPtr ConjunctionOf(std::vector<ExprPtr> conjuncts);
/// Splits a predicate tree into top-level AND conjuncts.
void SplitConjuncts(ExprPtr expr, std::vector<ExprPtr>* out);

/// True for `=` between two column refs (a join/equivalence predicate).
bool IsColumnEquality(const Expr& e);

/// Like Expr::InlineQuantifier but also handles the case where *expr itself
/// is a column reference over `from`.
void InlineIntoExpr(ExprPtr* expr, const Quantifier* from,
                    const std::vector<const Expr*>& replacements);

}  // namespace starburst::qgm

#endif  // STARBURST_QGM_EXPR_H_
