#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/plan_cache.h"

namespace starburst {
namespace {

// ---------------------------------------------------------------------------
// Fixture
// ---------------------------------------------------------------------------

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Run("CREATE TABLE t (id INT, grp INT, payload VARCHAR)");
    Run("CREATE TABLE other (x INT)");
    for (int i = 0; i < 50; ++i) {
      Run("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
          std::to_string(i % 5) + ", 'p" + std::to_string(i) + "')");
    }
    Run("INSERT INTO other VALUES (1)");
  }

  ResultSet Run(const std::string& sql) {
    Result<ResultSet> rs = db_.Execute(sql);
    EXPECT_TRUE(rs.ok()) << sql << ": " << rs.status().ToString();
    return rs.ok() ? rs.TakeValue() : ResultSet::Message("error");
  }

  /// Rows of `rs` stringified and sorted — order-insensitive comparison.
  static std::vector<std::string> Canon(const ResultSet& rs) {
    std::vector<std::string> out;
    for (const Row& r : rs.rows()) {
      std::string line;
      for (size_t i = 0; i < r.size(); ++i) {
        line += r[i].ToString();
        line += '|';
      }
      out.push_back(std::move(line));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  const QueryMetrics& M() const { return db_.last_metrics(); }

  Database db_;
};

// ---------------------------------------------------------------------------
// Transparent caching through Execute
// ---------------------------------------------------------------------------

TEST_F(PlanCacheTest, RepeatedExecuteHitsAndSkipsCompilation) {
  const std::string q = "SELECT grp, COUNT(*) FROM t GROUP BY grp";
  ResultSet first = Run(q);
  EXPECT_FALSE(M().plan_cache_hit);
  EXPECT_GT(M().bind_us, 0.0);
  uint64_t misses = M().plan_cache.misses;
  EXPECT_GE(misses, 1u);

  ResultSet second = Run(q);
  EXPECT_TRUE(M().plan_cache_hit);
  EXPECT_EQ(M().plan_cache.hits, 1u);
  EXPECT_EQ(M().plan_cache.misses, misses);  // no new miss
  // The whole compile half is skipped: its phase timings stay zero.
  EXPECT_EQ(M().parse_us, 0.0);
  EXPECT_EQ(M().bind_us, 0.0);
  EXPECT_EQ(M().rewrite_us, 0.0);
  EXPECT_EQ(M().optimize_us, 0.0);
  EXPECT_EQ(M().refine_us, 0.0);
  EXPECT_GT(M().execute_us, 0.0);
  EXPECT_EQ(Canon(first), Canon(second));
}

TEST_F(PlanCacheTest, NormalizationSharesOneEntry) {
  Run("SELECT id FROM t WHERE grp = 3");
  ResultSet hit = Run("select   id\nfrom T where GRP = 3;");
  EXPECT_TRUE(M().plan_cache_hit);
  EXPECT_EQ(M().plan_cache_entries, 1u);
  // Literal case stays significant inside quoted strings.
  Run("SELECT id FROM t WHERE payload = 'p1'");
  Run("SELECT id FROM t WHERE payload = 'P1'");
  EXPECT_FALSE(M().plan_cache_hit);
}

TEST_F(PlanCacheTest, CachedPlanSeesFreshData) {
  const std::string q = "SELECT COUNT(*) FROM t";
  ResultSet before = Run(q);
  EXPECT_EQ(before.rows()[0][0].int_value(), 50);
  Run("INSERT INTO t VALUES (99, 9, 'x')");
  ResultSet after = Run(q);
  // DML neither invalidates nor staleness-poisons: the cached plan
  // re-scans storage on every execution.
  EXPECT_TRUE(M().plan_cache_hit);
  EXPECT_EQ(after.rows()[0][0].int_value(), 51);
}

TEST_F(PlanCacheTest, KnobChangeMissesInsteadOfInvalidating) {
  const std::string q = "SELECT id FROM t WHERE grp = 1";
  Run(q);
  Run("SET PARALLELISM = 4");
  Run(q);
  EXPECT_FALSE(M().plan_cache_hit);  // different knob fingerprint
  EXPECT_EQ(M().plan_cache.invalidations, 0u);
  EXPECT_EQ(M().plan_cache_entries, 2u);  // both entries live side by side
  Run("SET PARALLELISM = DEFAULT");
  Run(q);
  EXPECT_TRUE(M().plan_cache_hit);  // the original entry survived
}

TEST_F(PlanCacheTest, LruEvictsPastCapacity) {
  Run("SET PLAN_CACHE_SIZE = 2");
  Run("SELECT id FROM t WHERE grp = 0");
  Run("SELECT id FROM t WHERE grp = 1");
  Run("SELECT id FROM t WHERE grp = 2");
  EXPECT_EQ(M().plan_cache_entries, 2u);
  EXPECT_GE(M().plan_cache.evictions, 1u);
  // grp=0 was least recently used and evicted; grp=2 is resident.
  Run("SELECT id FROM t WHERE grp = 2");
  EXPECT_TRUE(M().plan_cache_hit);
  Run("SELECT id FROM t WHERE grp = 0");
  EXPECT_FALSE(M().plan_cache_hit);
}

TEST_F(PlanCacheTest, SizeZeroDisablesCaching) {
  Run("SELECT id FROM t WHERE grp = 1");
  Run("SET PLAN_CACHE_SIZE = 0");
  EXPECT_EQ(db_.plan_cache().size(), 0u);  // clears resident entries
  Run("SELECT id FROM t WHERE grp = 1");
  EXPECT_FALSE(M().plan_cache_hit);
  EXPECT_GT(M().bind_us, 0.0);
  Run("SELECT id FROM t WHERE grp = 1");
  EXPECT_FALSE(M().plan_cache_hit);
}

// ---------------------------------------------------------------------------
// Invalidation matrix: what must (and must not) drop a cached plan
// ---------------------------------------------------------------------------

TEST_F(PlanCacheTest, UnrelatedDdlDoesNotInvalidate) {
  const std::string q = "SELECT id FROM t WHERE grp = 1";
  Run(q);
  Run("CREATE TABLE unrelated (y INT)");
  Run("CREATE INDEX other_x ON other (x)");
  Run("DROP TABLE unrelated");
  Run("ANALYZE other");
  Run(q);
  EXPECT_TRUE(M().plan_cache_hit);
  EXPECT_EQ(M().plan_cache.invalidations, 0u);
}

TEST_F(PlanCacheTest, DropAndRecreateTableInvalidates) {
  const std::string q = "SELECT COUNT(*) FROM other";
  Run(q);
  Run("DROP TABLE other");
  Run("CREATE TABLE other (x INT, z INT)");
  ResultSet rs = Run(q);
  EXPECT_FALSE(M().plan_cache_hit);
  EXPECT_GE(M().plan_cache.invalidations, 1u);
  EXPECT_EQ(rs.rows()[0][0].int_value(), 0);  // fresh plan, fresh table
}

TEST_F(PlanCacheTest, CreateIndexOnReferencedTableInvalidates) {
  const std::string q = "SELECT id FROM t WHERE id = 7";
  Run(q);
  Run("CREATE INDEX t_id ON t (id)");
  Run(q);
  // Access paths changed; the plan must be rebuilt (and may now use the
  // index).
  EXPECT_FALSE(M().plan_cache_hit);
  EXPECT_GE(M().plan_cache.invalidations, 1u);

  Run(q);
  EXPECT_TRUE(M().plan_cache_hit);
  Run("DROP INDEX t_id");
  Run(q);
  EXPECT_FALSE(M().plan_cache_hit);
  EXPECT_GE(M().plan_cache.invalidations, 2u);
}

TEST_F(PlanCacheTest, AnalyzeInvalidates) {
  const std::string q = "SELECT grp FROM t WHERE id < 10";
  Run(q);
  Run("ANALYZE t");
  Run(q);
  EXPECT_FALSE(M().plan_cache_hit);
  EXPECT_GE(M().plan_cache.invalidations, 1u);
}

TEST_F(PlanCacheTest, ViewDependenciesAreTransitive) {
  Run("CREATE VIEW low AS SELECT id, grp FROM t WHERE id < 10");
  const std::string q = "SELECT COUNT(*) FROM low";
  Run(q);
  Run(q);
  EXPECT_TRUE(M().plan_cache_hit);
  // DDL on the *underlying table* invalidates the view query.
  Run("CREATE INDEX t_grp ON t (grp)");
  Run(q);
  EXPECT_FALSE(M().plan_cache_hit);
  EXPECT_GE(M().plan_cache.invalidations, 1u);
  // Re-defining the view invalidates too.
  Run(q);
  EXPECT_TRUE(M().plan_cache_hit);
  Run("DROP VIEW low");
  Run("CREATE VIEW low AS SELECT id, grp FROM t WHERE id < 20");
  ResultSet rs = Run(q);
  EXPECT_FALSE(M().plan_cache_hit);
  EXPECT_EQ(rs.rows()[0][0].int_value(), 20);
}

// ---------------------------------------------------------------------------
// Prepared statements and ? parameters
// ---------------------------------------------------------------------------

TEST_F(PlanCacheTest, PreparedStatementBindsParams) {
  Result<Database::PreparedHandle> ps =
      db_.Prepare("SELECT id, payload FROM t WHERE grp = ? AND id >= ?");
  ASSERT_TRUE(ps.ok()) << ps.status().ToString();

  Result<ResultSet> got =
      db_.ExecutePrepared(*ps, {Value::Int(3), Value::Int(10)});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ResultSet want =
      Run("SELECT id, payload FROM t WHERE grp = 3 AND id >= 10");
  EXPECT_EQ(Canon(*got), Canon(want));
  EXPECT_FALSE(got->rows().empty());

  // Rebind different values on the same handle: no recompilation.
  got = db_.ExecutePrepared(*ps, {Value::Int(1), Value::Int(40)});
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(db_.last_metrics().plan_cache_hit);
  want = Run("SELECT id, payload FROM t WHERE grp = 1 AND id >= 40");
  EXPECT_EQ(Canon(*got), Canon(want));
}

TEST_F(PlanCacheTest, NullParameterBehavesLikeNullLiteral) {
  Result<Database::PreparedHandle> ps =
      db_.Prepare("SELECT id FROM t WHERE grp = ?");
  ASSERT_TRUE(ps.ok());
  Result<ResultSet> got = db_.ExecutePrepared(*ps, {Value::Null()});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ResultSet want = Run("SELECT id FROM t WHERE grp = NULL");
  EXPECT_EQ(Canon(*got), Canon(want));
  EXPECT_TRUE(got->rows().empty());  // NULL = anything is not true
}

TEST_F(PlanCacheTest, ParamArityIsChecked) {
  Result<Database::PreparedHandle> ps =
      db_.Prepare("SELECT id FROM t WHERE grp = ?");
  ASSERT_TRUE(ps.ok());
  EXPECT_FALSE(db_.ExecutePrepared(*ps, {}).ok());
  EXPECT_FALSE(
      db_.ExecutePrepared(*ps, {Value::Int(1), Value::Int(2)}).ok());
  EXPECT_FALSE(db_.ExecutePrepared(nullptr, {}).ok());
}

TEST_F(PlanCacheTest, ParamsRejectedOutsidePreparedExecution) {
  Result<ResultSet> rs = db_.Execute("SELECT id FROM t WHERE grp = ?");
  ASSERT_FALSE(rs.ok());
  EXPECT_NE(rs.status().message().find("ExecutePrepared"), std::string::npos);
  // Non-SELECTs cannot be prepared.
  EXPECT_FALSE(db_.Prepare("INSERT INTO t VALUES (1, 1, 'x')").ok());
}

TEST_F(PlanCacheTest, StalePreparedHandleRecompilesTransparently) {
  Result<Database::PreparedHandle> ps =
      db_.Prepare("SELECT COUNT(*) FROM t WHERE id = ?");
  ASSERT_TRUE(ps.ok());
  ASSERT_TRUE(db_.ExecutePrepared(*ps, {Value::Int(7)}).ok());

  Run("CREATE INDEX t_id2 ON t (id)");  // invalidates the handle
  Result<ResultSet> got = db_.ExecutePrepared(*ps, {Value::Int(7)});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_FALSE(db_.last_metrics().plan_cache_hit);
  EXPECT_GE(db_.last_metrics().plan_cache.invalidations, 1u);
  EXPECT_EQ(got->rows()[0][0].int_value(), 1);

  // The recompiled handle is fresh again.
  got = db_.ExecutePrepared(*ps, {Value::Int(8)});
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(db_.last_metrics().plan_cache_hit);
}

TEST_F(PlanCacheTest, DifferentialPreparedVsLiteralCorpus) {
  struct Case {
    std::string prepared;
    std::string literal;
    std::vector<Value> params;
  };
  const std::vector<Case> corpus = {
      {"SELECT id FROM t WHERE grp = ? ORDER BY id",
       "SELECT id FROM t WHERE grp = 2 ORDER BY id",
       {Value::Int(2)}},
      {"SELECT grp, COUNT(*) FROM t WHERE id < ? GROUP BY grp",
       "SELECT grp, COUNT(*) FROM t WHERE id < 30 GROUP BY grp",
       {Value::Int(30)}},
      {"SELECT id + ? FROM t WHERE payload = ?",
       "SELECT id + 100 FROM t WHERE payload = 'p4'",
       {Value::Int(100), Value::String("p4")}},
      {"SELECT a.id FROM t a, t b WHERE a.id = b.id AND a.grp = ?",
       "SELECT a.id FROM t a, t b WHERE a.id = b.id AND a.grp = 4",
       {Value::Int(4)}},
      {"SELECT id FROM t WHERE grp = ? AND id IN "
       "(SELECT x FROM other) ",
       "SELECT id FROM t WHERE grp = 1 AND id IN (SELECT x FROM other)",
       {Value::Int(1)}},
      {"SELECT id FROM t WHERE ? IS NULL OR grp = ?",
       "SELECT id FROM t WHERE NULL IS NULL OR grp = 0",
       {Value::Null(), Value::Int(0)}},
  };
  for (size_t parallelism : {size_t{1}, size_t{4}}) {
    Run("SET PARALLELISM = " + std::to_string(parallelism));
    for (const Case& c : corpus) {
      Result<Database::PreparedHandle> ps = db_.Prepare(c.prepared);
      ASSERT_TRUE(ps.ok()) << c.prepared << ": " << ps.status().ToString();
      EXPECT_EQ((*ps)->num_params, c.params.size());
      Result<ResultSet> got = db_.ExecutePrepared(*ps, c.params);
      ASSERT_TRUE(got.ok()) << c.prepared << ": " << got.status().ToString();
      ResultSet want = Run(c.literal);
      EXPECT_EQ(Canon(*got), Canon(want))
          << c.prepared << " (parallelism " << parallelism << ")";
    }
  }
}

TEST_F(PlanCacheTest, PrepareSharesCacheWithExecute) {
  const std::string q = "SELECT id FROM t WHERE grp = 2";
  Run(q);
  Result<Database::PreparedHandle> ps = db_.Prepare(q);
  ASSERT_TRUE(ps.ok());
  EXPECT_TRUE(db_.last_metrics().plan_cache_hit);  // reused Execute's entry
  Result<Database::PreparedHandle> again = db_.Prepare(q);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(ps->get(), again->get());  // same shared artifact
}

// ---------------------------------------------------------------------------
// DROP consistency: catalog and storage must never diverge
// ---------------------------------------------------------------------------

TEST_F(PlanCacheTest, DropTableCascadesIndexes) {
  Run("CREATE INDEX other_x ON other (x)");
  Run("DROP TABLE other");
  EXPECT_FALSE(db_.catalog().GetTable("other").ok());
  EXPECT_FALSE(db_.catalog().GetIndex("other_x").ok());
  EXPECT_FALSE(db_.storage().GetTable("other").ok());
  EXPECT_FALSE(db_.storage().GetIndex("other_x").ok());
}

TEST_F(PlanCacheTest, DropTableBlockedByDependentView) {
  Run("CREATE VIEW ov AS SELECT x FROM other");
  Result<ResultSet> rs = db_.Execute("DROP TABLE other");
  ASSERT_FALSE(rs.ok());
  EXPECT_NE(rs.status().message().find("OV"), std::string::npos);
  // Nothing was mutated: both layers still serve the table.
  EXPECT_TRUE(db_.catalog().GetTable("other").ok());
  EXPECT_TRUE(db_.storage().GetTable("other").ok());
  EXPECT_EQ(Run("SELECT COUNT(*) FROM ov").rows()[0][0].int_value(), 1);
  Run("DROP VIEW ov");
  Run("DROP TABLE other");  // now unblocked
}

TEST_F(PlanCacheTest, DropViewBlockedByDependentView) {
  Run("CREATE VIEW base_v AS SELECT x FROM other");
  Run("CREATE VIEW top_v AS SELECT x FROM base_v");
  EXPECT_FALSE(db_.Execute("DROP VIEW base_v").ok());
  EXPECT_TRUE(db_.catalog().GetView("base_v").ok());
  Run("DROP VIEW top_v");
  Run("DROP VIEW base_v");
}

TEST_F(PlanCacheTest, InjectedDropTableFailureLeavesNoSkew) {
  Run("CREATE INDEX other_x ON other (x)");
  db_.storage().InjectDropFailure();
  Result<ResultSet> rs = db_.Execute("DROP TABLE other");
  ASSERT_FALSE(rs.ok());
  // The failure hit before any mutation: no layer dropped anything.
  EXPECT_TRUE(db_.catalog().GetTable("other").ok());
  EXPECT_TRUE(db_.catalog().GetIndex("other_x").ok());
  EXPECT_TRUE(db_.storage().GetTable("other").ok());
  EXPECT_TRUE(db_.storage().GetIndex("other_x").ok());
  EXPECT_EQ(Run("SELECT COUNT(*) FROM other").rows()[0][0].int_value(), 1);
  // The injection is one-shot; the retry completes and drops everything.
  Run("DROP TABLE other");
  EXPECT_FALSE(db_.catalog().GetTable("other").ok());
  EXPECT_FALSE(db_.catalog().GetIndex("other_x").ok());
  EXPECT_FALSE(db_.storage().GetIndex("other_x").ok());
}

TEST_F(PlanCacheTest, InjectedDropIndexFailureLeavesNoSkew) {
  Run("CREATE INDEX other_x ON other (x)");
  db_.storage().InjectDropFailure();
  ASSERT_FALSE(db_.Execute("DROP INDEX other_x").ok());
  EXPECT_TRUE(db_.catalog().GetIndex("other_x").ok());
  EXPECT_TRUE(db_.storage().GetIndex("other_x").ok());
  Run("DROP INDEX other_x");
  EXPECT_FALSE(db_.catalog().GetIndex("other_x").ok());
  EXPECT_FALSE(db_.storage().GetIndex("other_x").ok());
}

TEST_F(PlanCacheTest, DropOfMissingObjectsFailsCleanly) {
  EXPECT_FALSE(db_.Execute("DROP TABLE nope").ok());
  EXPECT_FALSE(db_.Execute("DROP INDEX nope").ok());
  EXPECT_FALSE(db_.Execute("DROP VIEW nope").ok());
}

// ---------------------------------------------------------------------------
// ExecuteScript per-statement metrics
// ---------------------------------------------------------------------------

TEST_F(PlanCacheTest, ScriptMetricsReflectLastStatementOnly) {
  // First statement compiles and executes a real query; the last is a
  // SET, which runs no pipeline at all. Without the per-statement reset,
  // the SELECT's phase timings would leak into the script's final
  // metrics.
  Result<ResultSet> rs = db_.ExecuteScript(
      "SELECT grp, COUNT(*) FROM t GROUP BY grp ORDER BY grp;\n"
      "SET PARALLELISM = 2");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  const QueryMetrics& m = db_.last_metrics();
  EXPECT_GT(m.parse_us, 0.0);  // the SET's own parse time
  EXPECT_EQ(m.bind_us, 0.0);
  EXPECT_EQ(m.optimize_us, 0.0);
  EXPECT_EQ(m.refine_us, 0.0);
  EXPECT_EQ(m.execute_us, 0.0);
  EXPECT_EQ(m.exec_stats.rows_emitted, 0u);
  EXPECT_FALSE(m.plan_cache_hit);
}

TEST_F(PlanCacheTest, ScriptStatementsAttributeOwnParseTime) {
  Result<ResultSet> rs = db_.ExecuteScript(
      "INSERT INTO other VALUES (2);\n"
      "SELECT x FROM other ORDER BY x");
  ASSERT_TRUE(rs.ok());
  const QueryMetrics& m = db_.last_metrics();
  EXPECT_GT(m.parse_us, 0.0);
  EXPECT_GT(m.bind_us, 0.0);       // the SELECT compiled
  EXPECT_EQ(rs->rows().size(), 2u);
}

// ---------------------------------------------------------------------------
// Re-execution correctness under stats collection
// ---------------------------------------------------------------------------

TEST_F(PlanCacheTest, CachedStatsTreeResetsBetweenRuns) {
  db_.options().collect_op_stats = true;
  // Fingerprint changed relative to SetUp traffic → fresh compile.
  const std::string q = "SELECT COUNT(*) FROM t";
  Run(q);
  ASSERT_NE(M().op_stats, nullptr);
  Run(q);
  EXPECT_TRUE(M().plan_cache_hit);
  ASSERT_NE(M().op_stats, nullptr);
  // Actuals are per-run, not cumulative across cached executions: the
  // root emits exactly one row (the count) each run.
  EXPECT_EQ(M().op_stats->roots().front()->actual.rows_out.load(), 1u);
}

TEST_F(PlanCacheTest, ExplainAnalyzeReportsPlanCacheLine) {
  Run("SELECT id FROM t WHERE grp = 1");
  Run("SELECT id FROM t WHERE grp = 1");
  ResultSet rs = Run("EXPLAIN ANALYZE SELECT id FROM t WHERE grp = 1");
  std::string text;
  for (const Row& r : rs.rows()) text += r[0].string_value() + "\n";
  EXPECT_NE(text.find("plan cache:"), std::string::npos) << text;
  EXPECT_NE(text.find("hits=1"), std::string::npos) << text;
}

}  // namespace
}  // namespace starburst
