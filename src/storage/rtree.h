#ifndef STARBURST_STORAGE_RTREE_H_
#define STARBURST_STORAGE_RTREE_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "storage/page.h"

namespace starburst {

/// Axis-aligned 2-D rectangle, the R-tree's key domain.
struct Rect {
  double min_x = 0, min_y = 0, max_x = 0, max_y = 0;

  static Rect Point(double x, double y) { return Rect{x, y, x, y}; }

  bool Intersects(const Rect& o) const {
    return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
           o.min_y <= max_y;
  }
  bool Contains(const Rect& o) const {
    return min_x <= o.min_x && o.max_x <= max_x && min_y <= o.min_y &&
           o.max_y <= max_y;
  }
  double Area() const { return (max_x - min_x) * (max_y - min_y); }
  Rect Union(const Rect& o) const {
    return Rect{min_x < o.min_x ? min_x : o.min_x,
                min_y < o.min_y ? min_y : o.min_y,
                max_x > o.max_x ? max_x : o.max_x,
                max_y > o.max_y ? max_y : o.max_y};
  }
  /// Area growth if this rect were extended to cover `o`.
  double Enlargement(const Rect& o) const { return Union(o).Area() - Area(); }
  bool operator==(const Rect& o) const {
    return min_x == o.min_x && min_y == o.min_y && max_x == o.max_x &&
           max_y == o.max_y;
  }
};

/// The paper's example DBC access method (§1: "a DBC could define a new
/// type of access method, e.g., an R-tree [GUTT84]"): a Guttman R-tree
/// with quadratic split, mapping rectangles (points included) to rids.
class RTree {
 public:
  struct Stats {
    uint64_t node_visits = 0;
    uint64_t splits = 0;
  };

  explicit RTree(size_t max_entries = 8);
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  void Insert(const Rect& rect, Rid rid);
  /// Removes one exact (rect, rid) entry; NotFound if absent.
  Status Remove(const Rect& rect, Rid rid);

  /// All rids whose rect intersects `window`.
  std::vector<Rid> Search(const Rect& window);

  size_t size() const { return entry_count_; }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

 private:
  struct Node;

  Node* ChooseLeaf(const Rect& rect);
  void SplitNode(Node* node);
  void AdjustUpward(Node* node);

  std::unique_ptr<Node> root_;
  size_t max_entries_;
  size_t entry_count_ = 0;
  Stats stats_;
};

}  // namespace starburst

#endif  // STARBURST_STORAGE_RTREE_H_
