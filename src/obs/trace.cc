#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace starburst::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Tracer::Push(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  event.seq = next_seq_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else if (capacity_ > 0) {
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  } else {
    ++dropped_;
  }
  ++next_seq_;
}

void Tracer::RecordSpan(std::string name, std::string category,
                        double start_us, double dur_us,
                        std::string args_json) {
  if (!enabled()) return;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kSpan;
  e.name = std::move(name);
  e.category = std::move(category);
  e.start_us = start_us;
  e.dur_us = dur_us;
  e.args_json = std::move(args_json);
  Push(std::move(e));
}

void Tracer::RecordInstant(std::string name, std::string category,
                           double at_us, std::string args_json) {
  if (!enabled()) return;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kInstant;
  e.name = std::move(name);
  e.category = std::move(category);
  e.start_us = at_us;
  e.args_json = std::move(args_json);
  Push(std::move(e));
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_ || capacity_ == 0) {
    out = ring_;
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
  }
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  next_seq_ = 0;
  dropped_ = 0;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void Tracer::set_capacity(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  // Linearize oldest-first, drop the overflow, and restart the ring flat
  // (head_ = 0) at the new capacity.
  std::vector<TraceEvent> ordered;
  ordered.reserve(ring_.size());
  if (ring_.size() < capacity_ || capacity_ == 0) {
    ordered = std::move(ring_);
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      ordered.push_back(std::move(ring_[(head_ + i) % ring_.size()]));
    }
  }
  if (ordered.size() > n) {
    dropped_ += ordered.size() - n;
    ordered.erase(ordered.begin(),
                  ordered.begin() + static_cast<ptrdiff_t>(ordered.size() - n));
  }
  ring_ = std::move(ordered);
  head_ = 0;
  capacity_ = n;
}

std::string Tracer::ToChromeJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  char buf[64];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\""
        << JsonEscape(e.category) << "\",\"pid\":1,\"tid\":1";
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f", e.start_us);
    out << buf;
    if (e.kind == TraceEvent::Kind::kSpan) {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", e.dur_us);
      out << ",\"ph\":\"X\"" << buf;
    } else {
      out << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    if (!e.args_json.empty()) out << ",\"args\":{" << e.args_json << "}";
    out << "}";
  }
  out << "]}";
  return out.str();
}

std::string Tracer::ToText() const {
  std::vector<TraceEvent> events = Snapshot();
  if (events.empty()) return "(no trace events)\n";

  double base = events[0].start_us;
  for (const TraceEvent& e : events) base = std::min(base, e.start_us);

  // Render in start order; indent by how many spans contain this event.
  std::vector<size_t> order(events.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (events[a].start_us != events[b].start_us) {
      return events[a].start_us < events[b].start_us;
    }
    return events[a].seq < events[b].seq;
  });

  auto contains = [](const TraceEvent& outer, const TraceEvent& inner) {
    return outer.kind == TraceEvent::Kind::kSpan &&
           outer.start_us <= inner.start_us &&
           outer.start_us + outer.dur_us >= inner.start_us +
               (inner.kind == TraceEvent::Kind::kSpan ? inner.dur_us : 0);
  };

  std::ostringstream out;
  char buf[160];
  for (size_t idx : order) {
    const TraceEvent& e = events[idx];
    int depth = 0;
    for (size_t other : order) {
      if (other == idx) continue;
      if (contains(events[other], e) && !contains(e, events[other])) ++depth;
    }
    std::string pad(static_cast<size_t>(depth) * 2, ' ');
    if (e.kind == TraceEvent::Kind::kSpan) {
      std::snprintf(buf, sizeof(buf), "%10.1f  %s%s [%s] %.1f us\n",
                    e.start_us - base, pad.c_str(), e.name.c_str(),
                    e.category.c_str(), e.dur_us);
    } else {
      std::snprintf(buf, sizeof(buf), "%10.1f  %s* %s [%s]\n",
                    e.start_us - base, pad.c_str(), e.name.c_str(),
                    e.category.c_str());
    }
    out << buf;
  }
  if (dropped() > 0) {
    out << "(" << dropped() << " earlier events dropped by the ring)\n";
  }
  return out.str();
}

void Span::AddArg(const std::string& key, const std::string& value) {
  if (tracer_ == nullptr) return;
  if (!args_.empty()) args_ += ",";
  args_ += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
}

}  // namespace starburst::obs
