# Empty dependencies file for bench_or_subquery.
# This may be replaced when dependencies are built.
