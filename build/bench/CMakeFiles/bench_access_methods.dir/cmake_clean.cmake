file(REMOVE_RECURSE
  "CMakeFiles/bench_access_methods.dir/bench_access_methods.cc.o"
  "CMakeFiles/bench_access_methods.dir/bench_access_methods.cc.o.d"
  "bench_access_methods"
  "bench_access_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_access_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
