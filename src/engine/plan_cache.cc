#include "engine/plan_cache.h"

#include <cctype>

namespace starburst {

bool PreparedStatement::FreshAgainst(const Catalog& catalog) const {
  if (catalog.version() == catalog_version) return true;
  for (const auto& [key, stamp] : dependencies) {
    if (catalog.ObjectVersion(key) != stamp) return false;
  }
  return true;
}

void PlanCache::set_capacity(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = n;
  if (n == 0) {
    lru_.clear();
    entries_.clear();
    return;
  }
  while (lru_.size() > capacity_) {
    entries_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  entries_.clear();
}

PreparedStatementPtr PlanCache::Lookup(const std::string& key,
                                       const Catalog& catalog) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  PreparedStatementPtr stmt = it->second->stmt;
  if (!stmt->FreshAgainst(catalog)) {
    lru_.erase(it->second);
    entries_.erase(it);
    ++stats_.invalidations;
    return nullptr;
  }
  // Unrelated DDL moved the global version but every dependency stamp
  // still matches: re-stamp so the next lookup short-circuits again.
  stmt->catalog_version = catalog.version();
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return stmt;
}

void PlanCache::Insert(const std::string& key, PreparedStatementPtr stmt) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->stmt = std::move(stmt);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(stmt)});
  entries_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    entries_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::vector<std::pair<std::string, PreparedStatementPtr>> PlanCache::Entries()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, PreparedStatementPtr>> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_) out.emplace_back(e.key, e.stmt);
  return out;
}

std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_string = false;
  bool pending_space = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    char c = sql[i];
    if (in_string) {
      out.push_back(c);
      if (c == '\'') in_string = false;  // '' escapes re-enter immediately
      continue;
    }
    if (c == '\'') {
      if (pending_space && !out.empty()) out.push_back(' ');
      pending_space = false;
      out.push_back(c);
      in_string = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    out.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

}  // namespace starburst
