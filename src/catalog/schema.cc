#include "catalog/schema.h"

#include <cctype>

namespace starburst {

std::optional<size_t> TableSchema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (IdentEquals(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::string TableSchema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name + " " + columns_[i].type.ToString();
    if (!columns_[i].nullable) out += " NOT NULL";
  }
  out += ")";
  return out;
}

bool IdentEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string IdentUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = std::toupper(static_cast<unsigned char>(c));
  return out;
}

}  // namespace starburst
