// E2 — §5: predicate migration "allows predicates to be pushed down into
// lower level operations to minimize the amount of data retrieved", and
// projection push-down "avoid[s] the retrieval of unused columns".
//
// A consumer filters the output of a GROUP BY table expression (the
// boundary merging cannot cross). With the predicate_migration rule class
// disabled, every group is formed and then filtered; enabled, the key
// predicate migrates below the GROUP BY and only matching rows are
// aggregated. We sweep the key's selectivity and report rows flowing
// through the QES and wall time.

#include "bench_util.h"

using namespace starburst;
using namespace starburst::bench;

int main() {
  Database db;
  const int kRows = 40000;
  const int kGroups = 200;
  MakeIntTable(&db, "events", kRows, kGroups);
  if (!db.AnalyzeAll().ok()) return 1;

  std::printf("E2a: predicate push-down through GROUP BY (%d rows, %d groups)\n",
              kRows, kGroups);
  std::printf("%10s | %13s %12s | %13s %12s | %8s\n", "keys kept",
              "off: rows", "time us", "on: rows", "time us", "speedup");

  for (int kept : {1, 5, 20, 100, 200}) {
    std::string sql =
        "SELECT g, n FROM (SELECT v g, COUNT(*) n FROM events GROUP BY v) x "
        "WHERE g < " + std::to_string(kept);
    // Push-down off: disable the predicate rules (keep the others).
    db.options().rewrite.enabled_classes = {"merge", "subquery", "misc",
                                            "projection"};
    uint64_t rows_off = 0;
    double t_off = MedianUs([&] {
      (void)MustRows(&db, sql);
      rows_off = db.last_metrics().exec_stats.rows_emitted;
    });
    // Push-down on: all rule classes.
    db.options().rewrite.enabled_classes.clear();
    uint64_t rows_on = 0;
    double t_on = MedianUs([&] {
      (void)MustRows(&db, sql);
      rows_on = db.last_metrics().exec_stats.rows_emitted;
    });
    std::printf("%10d | %13llu %12.0f | %13llu %12.0f | %7.2fx\n", kept,
                static_cast<unsigned long long>(rows_off), t_off,
                static_cast<unsigned long long>(rows_on), t_on,
                t_off / std::max(t_on, 1.0));
  }

  // Projection push-down: the scan-column subset. The wide table's unused
  // columns are never decoded when only k is referenced.
  Database wide;
  MustExec(&wide,
           "CREATE TABLE wide (a INT, b STRING, c STRING, d STRING, "
           "e STRING, f STRING)");
  for (int base = 0; base < 20000; base += 500) {
    std::string sql = "INSERT INTO wide VALUES ";
    for (int i = base; i < base + 500; ++i) {
      if (i > base) sql += ", ";
      sql += "(" + std::to_string(i) +
             ", 'bbbbbbbbbbbbbbbb', 'cccccccccccccccc', 'dddddddddddddddd', "
             "'eeeeeeeeeeeeeeee', 'ffffffffffffffff')";
    }
    MustExec(&wide, sql);
  }
  if (!wide.AnalyzeAll().ok()) return 1;

  std::printf("\nE2b: projection push-down (scan column subsetting)\n");
  std::printf("%-24s %12s\n", "query", "time us");
  double narrow = MedianUs(
      [&] { (void)MustRows(&wide, "SELECT a FROM wide WHERE a < 1000"); }, 5);
  std::printf("%-24s %12.0f\n", "1 of 6 columns", narrow);
  double all = MedianUs(
      [&] { (void)MustRows(&wide, "SELECT * FROM wide WHERE a < 1000"); }, 5);
  std::printf("%-24s %12.0f\n", "all 6 columns", all);
  std::printf("\nShape check: push-down wins and grows with selectivity; "
              "narrow projection cheaper than SELECT *.\n");
  return 0;
}
