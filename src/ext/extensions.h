#ifndef STARBURST_EXT_EXTENSIONS_H_
#define STARBURST_EXT_EXTENSIONS_H_

#include "engine/database.h"
#include "storage/rtree.h"

namespace starburst::ext {

// The DBC ("database customizer") extensions the paper uses as its running
// examples, each implemented purely through public extension points:
//
//  * spatial: the POINT externally-defined type, POINT/CONTAINS/DISTANCE/
//    PX/PY functions, the R-tree access-method attachment (§1's example),
//    a TableAccess STAR that recognizes CONTAINS predicates, and the
//    RTREE_SCAN QES operator;
//  * SAMPLE(table, n): §2's table-function example;
//  * STDDEV / VARIANCE: §2's externally-defined aggregate example;
//  * MAJORITY: §2's DBC set-predicate example;
//  * outer-join simplification: the null-rejecting-predicate rewrite rule
//    a DBC adding LEFT OUTER JOIN would supply (§5 discusses how PF
//    setformers interact with the predicate rules).

Status RegisterSpatialExtension(Database* db);
Status RegisterSampleFunction(Database* db);
Status RegisterStatisticsFunctions(Database* db);
Status RegisterMajority(Database* db);
Status RegisterOuterJoinRules(Database* db);

/// Everything above.
Status RegisterAllExtensions(Database* db);

// -- spatial helpers shared with tests/benches --

/// Encodes/decodes the POINT payload (two little-endian doubles).
std::string EncodePoint(double x, double y);
Result<std::pair<double, double>> DecodePoint(const std::string& payload);
/// Builds a POINT value directly (bypassing the POINT() scalar function).
Value MakePointValue(double x, double y);

}  // namespace starburst::ext

#endif  // STARBURST_EXT_EXTENSIONS_H_
