#include "qgm/binder.h"

#include <algorithm>

#include "parser/parser.h"

namespace starburst::qgm {

namespace {

/// Is `name` an aggregate in this catalog (and not shadowed by a scalar)?
bool IsAggregateName(const Catalog& catalog, const std::string& name) {
  return catalog.functions().FindAggregate(name) != nullptr &&
         catalog.functions().FindScalar(name) == nullptr;
}

bool ContainsAggregate(const ast::Expr& e, const Catalog& catalog) {
  if (e.kind == ast::ExprKind::kFunctionCall) {
    const auto& call = static_cast<const ast::FunctionCallExpr&>(e);
    if (IsAggregateName(catalog, call.name)) return true;
    for (const auto& a : call.args) {
      if (ContainsAggregate(*a, catalog)) return true;
    }
    return false;
  }
  switch (e.kind) {
    case ast::ExprKind::kBinary: {
      const auto& b = static_cast<const ast::BinaryExpr&>(e);
      return ContainsAggregate(*b.left, catalog) ||
             ContainsAggregate(*b.right, catalog);
    }
    case ast::ExprKind::kUnary: {
      const auto& u = static_cast<const ast::UnaryExpr&>(e);
      return ContainsAggregate(*u.operand, catalog);
    }
    case ast::ExprKind::kIsNull:
      return ContainsAggregate(
          *static_cast<const ast::IsNullExpr&>(e).operand, catalog);
    case ast::ExprKind::kBetween: {
      const auto& b = static_cast<const ast::BetweenExpr&>(e);
      return ContainsAggregate(*b.operand, catalog) ||
             ContainsAggregate(*b.low, catalog) ||
             ContainsAggregate(*b.high, catalog);
    }
    case ast::ExprKind::kInList: {
      const auto& in = static_cast<const ast::InListExpr&>(e);
      if (ContainsAggregate(*in.operand, catalog)) return true;
      for (const auto& item : in.items) {
        if (ContainsAggregate(*item, catalog)) return true;
      }
      return false;
    }
    case ast::ExprKind::kCase: {
      const auto& c = static_cast<const ast::CaseExpr&>(e);
      for (const auto& w : c.when_clauses) {
        if (ContainsAggregate(*w.condition, catalog) ||
            ContainsAggregate(*w.result, catalog)) {
          return true;
        }
      }
      return c.else_result && ContainsAggregate(*c.else_result, catalog);
    }
    case ast::ExprKind::kLike: {
      const auto& l = static_cast<const ast::LikeExpr&>(e);
      return ContainsAggregate(*l.operand, catalog) ||
             ContainsAggregate(*l.pattern, catalog);
    }
    default:
      return false;  // subqueries are separate scopes
  }
}

bool ContainsSubqueryAst(const ast::Expr& e) {
  switch (e.kind) {
    case ast::ExprKind::kScalarSubquery:
    case ast::ExprKind::kExists:
    case ast::ExprKind::kInSubquery:
    case ast::ExprKind::kQuantifiedCmp:
      return true;
    case ast::ExprKind::kBinary: {
      const auto& b = static_cast<const ast::BinaryExpr&>(e);
      return ContainsSubqueryAst(*b.left) || ContainsSubqueryAst(*b.right);
    }
    case ast::ExprKind::kUnary:
      return ContainsSubqueryAst(
          *static_cast<const ast::UnaryExpr&>(e).operand);
    case ast::ExprKind::kFunctionCall: {
      const auto& call = static_cast<const ast::FunctionCallExpr&>(e);
      for (const auto& a : call.args) {
        if (ContainsSubqueryAst(*a)) return true;
      }
      return false;
    }
    case ast::ExprKind::kIsNull:
      return ContainsSubqueryAst(
          *static_cast<const ast::IsNullExpr&>(e).operand);
    case ast::ExprKind::kBetween: {
      const auto& b = static_cast<const ast::BetweenExpr&>(e);
      return ContainsSubqueryAst(*b.operand) || ContainsSubqueryAst(*b.low) ||
             ContainsSubqueryAst(*b.high);
    }
    case ast::ExprKind::kInList: {
      const auto& in = static_cast<const ast::InListExpr&>(e);
      if (ContainsSubqueryAst(*in.operand)) return true;
      for (const auto& item : in.items) {
        if (ContainsSubqueryAst(*item)) return true;
      }
      return false;
    }
    case ast::ExprKind::kLike: {
      const auto& l = static_cast<const ast::LikeExpr&>(e);
      return ContainsSubqueryAst(*l.operand) || ContainsSubqueryAst(*l.pattern);
    }
    case ast::ExprKind::kCase: {
      const auto& c = static_cast<const ast::CaseExpr&>(e);
      for (const auto& w : c.when_clauses) {
        if (ContainsSubqueryAst(*w.condition) ||
            ContainsSubqueryAst(*w.result)) {
          return true;
        }
      }
      return c.else_result && ContainsSubqueryAst(*c.else_result);
    }
    default:
      return false;
  }
}

Result<DataType> UnifyTypes(const DataType& a, const DataType& b,
                            const std::string& what) {
  if (a == b) return a;
  if (a.id == TypeId::kNull) return b;
  if (b.id == TypeId::kNull) return a;
  if (a.is_numeric() && b.is_numeric()) return DataType::Double();
  return Status::TypeError(what + ": incompatible types " + a.ToString() +
                           " and " + b.ToString());
}

std::string DeriveColumnName(const ast::Expr& e, size_t position) {
  if (e.kind == ast::ExprKind::kColumnRef) {
    return static_cast<const ast::ColumnRefExpr&>(e).column;
  }
  if (e.kind == ast::ExprKind::kFunctionCall) {
    return static_cast<const ast::FunctionCallExpr&>(e).name;
  }
  return "C" + std::to_string(position + 1);
}

Result<DataType> ResolveTypeName(const std::string& name) {
  if (IdentEquals(name, "INT") || IdentEquals(name, "INTEGER") ||
      IdentEquals(name, "BIGINT") || IdentEquals(name, "SMALLINT")) {
    return DataType::Int();
  }
  if (IdentEquals(name, "DOUBLE") || IdentEquals(name, "FLOAT") ||
      IdentEquals(name, "REAL") || IdentEquals(name, "DECIMAL")) {
    return DataType::Double();
  }
  if (IdentEquals(name, "STRING") || IdentEquals(name, "VARCHAR") ||
      IdentEquals(name, "CHAR") || IdentEquals(name, "TEXT")) {
    return DataType::String();
  }
  if (IdentEquals(name, "BOOL") || IdentEquals(name, "BOOLEAN")) {
    return DataType::Bool();
  }
  if (TypeRegistry::Global().Contains(IdentUpper(name))) {
    return DataType::Extension(IdentUpper(name));
  }
  return Status::SemanticError("unknown type '" + name + "'");
}

}  // namespace

/// Exposed for DDL: maps a Hydrogen type name to a DataType, consulting
/// the extension TypeRegistry.
Result<DataType> BindTypeName(const std::string& name) {
  return ResolveTypeName(name);
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Graph>> Binder::BindQuery(const ast::Query& query) {
  auto graph = std::make_unique<Graph>();
  graph_ = graph.get();
  base_table_boxes_.clear();

  CteEnv env;
  STARBURST_ASSIGN_OR_RETURN(Box * root, BindQueryNode(query, nullptr, env));
  graph_->set_root(root);
  STARBURST_RETURN_IF_ERROR(BindOrderByLimit(query, root));
  STARBURST_RETURN_IF_ERROR(graph_->Validate());
  graph_ = nullptr;
  return graph;
}

Result<Binder::TableMutationBind> Binder::BindTableMutation(
    const TableDef& table, const ast::Expr* where,
    const std::vector<std::pair<std::string, const ast::Expr*>>* assignments) {
  TableMutationBind out;
  out.graph = std::make_unique<Graph>();
  graph_ = out.graph.get();
  base_table_boxes_.clear();

  Box* base = BaseTableBox(&table);
  Box* select = graph_->NewBox(BoxKind::kSelect);
  Quantifier* q = select->AddQuantifier(
      graph_->NewQuantifier(QuantifierType::kForEach, base));
  q->alias = table.name;
  for (size_t i = 0; i < table.schema.num_columns(); ++i) {
    const ColumnDef& col = table.schema.column(i);
    select->head.push_back(
        HeadColumn{col.name, col.type, MakeColumnRef(q, i, col.type)});
  }
  graph_->set_root(select);
  out.quantifier = q;

  Scope scope;
  scope.select_box = select;
  scope.range_vars.push_back(
      RangeVar{table.name, q, 0, table.schema.num_columns()});
  CteEnv env;
  ExprContext ctx;
  ctx.scope = &scope;
  ctx.env = &env;

  if (where != nullptr) {
    STARBURST_ASSIGN_OR_RETURN(out.predicate, BindExpr(*where, &ctx));
    if (out.predicate->type.id != TypeId::kBool &&
        out.predicate->type.id != TypeId::kNull) {
      return Status::TypeError("WHERE clause must be boolean");
    }
  }
  if (assignments != nullptr) {
    for (const auto& [col_name, value_expr] : *assignments) {
      std::optional<size_t> pos = table.schema.FindColumn(col_name);
      if (!pos.has_value()) {
        return Status::SemanticError("no column '" + col_name + "' in table " +
                                     table.name);
      }
      STARBURST_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(*value_expr, &ctx));
      const DataType& target = table.schema.column(*pos).type;
      STARBURST_RETURN_IF_ERROR(
          UnifyTypes(target, bound->type, "SET " + col_name).status());
      out.assignments.emplace_back(*pos, std::move(bound));
    }
  }
  STARBURST_RETURN_IF_ERROR(graph_->Validate());
  graph_ = nullptr;
  return out;
}

Result<Binder::StandaloneExprBind> Binder::BindConstantExpr(
    const ast::Expr& e) {
  StandaloneExprBind out;
  out.graph = std::make_unique<Graph>();
  graph_ = out.graph.get();
  base_table_boxes_.clear();
  Box* root = graph_->NewBox(BoxKind::kValues);
  graph_->set_root(root);
  Scope scope;
  scope.select_box = root;
  CteEnv env;
  ExprContext ctx;
  ctx.scope = &scope;
  ctx.env = &env;
  Result<ExprPtr> bound = BindExpr(e, &ctx);
  graph_ = nullptr;
  if (!bound.ok()) return bound.status();
  out.expr = bound.TakeValue();
  return out;
}

// ---------------------------------------------------------------------------
// Query structure
// ---------------------------------------------------------------------------

Result<Box*> Binder::BindQueryNode(const ast::Query& query, Scope* outer,
                                   CteEnv env) {
  for (const ast::CommonTableExpr& cte : query.ctes) {
    std::string key = IdentUpper(cte.name);
    if (query.recursive && cte.query->body->kind == ast::QueryBody::Kind::kSetOp &&
        cte.query->body->op == ast::SetOpKind::kUnion) {
      // Recursive table expression: base UNION [ALL] step, where the step
      // may reference `name` (§2: "cyclic references to named table
      // expressions").
      const ast::QueryBody& body = *cte.query->body;
      Box* ru = graph_->NewBox(BoxKind::kRecursiveUnion);
      ru->cte_name = key;
      ru->setop_all = body.all;

      STARBURST_ASSIGN_OR_RETURN(Box * base, BindBody(*body.left, outer, &env));
      if (!cte.column_names.empty() &&
          cte.column_names.size() != base->head.size()) {
        return Status::SemanticError("table expression '" + cte.name +
                                     "' column list arity mismatch");
      }
      for (size_t i = 0; i < base->head.size(); ++i) {
        std::string name = cte.column_names.empty() ? base->head[i].name
                                                    : cte.column_names[i];
        ru->head.push_back(HeadColumn{std::move(name), base->head[i].type,
                                      nullptr});
      }

      CteEnv step_env = env;
      step_env[key] = CteEntry{nullptr, ru, cte.column_names};
      STARBURST_ASSIGN_OR_RETURN(Box * step,
                                 BindBody(*body.right, outer, &step_env));
      if (step->head.size() != ru->head.size()) {
        return Status::SemanticError(
            "recursive table expression '" + cte.name +
            "': base and step column counts differ");
      }
      for (size_t i = 0; i < ru->head.size(); ++i) {
        STARBURST_ASSIGN_OR_RETURN(
            ru->head[i].type,
            UnifyTypes(ru->head[i].type, step->head[i].type,
                       "recursive table expression '" + cte.name + "'"));
      }
      ru->AddQuantifier(graph_->NewQuantifier(QuantifierType::kForEach, base));
      ru->AddQuantifier(graph_->NewQuantifier(QuantifierType::kForEach, step));
      env[key] = CteEntry{ru, nullptr, {}};
    } else {
      STARBURST_ASSIGN_OR_RETURN(Box * box,
                                 BindQueryNode(*cte.query, outer, env));
      if (!cte.column_names.empty()) {
        if (cte.column_names.size() != box->head.size()) {
          return Status::SemanticError("table expression '" + cte.name +
                                       "' column list arity mismatch");
        }
        for (size_t i = 0; i < box->head.size(); ++i) {
          box->head[i].name = cte.column_names[i];
        }
      }
      env[key] = CteEntry{box, nullptr, {}};
    }
  }

  return BindBody(*query.body, outer, &env);
}

// ORDER BY / LIMIT belong to the outermost query only — they order and
// trim the final result table, they do not define one. Inner occurrences
// are rejected rather than silently dropped.
Status RejectInnerOrdering(const ast::Query& q, const char* where) {
  if (!q.order_by.empty() || q.limit >= 0) {
    return Status::NotImplemented(std::string("ORDER BY / LIMIT inside ") +
                                  where + " is not supported");
  }
  return Status::OK();
}

Result<Box*> Binder::BindBody(const ast::QueryBody& body, Scope* outer,
                              CteEnv* env) {
  if (body.kind == ast::QueryBody::Kind::kSelect) {
    return BindSelectCore(*body.select, outer, env);
  }
  STARBURST_ASSIGN_OR_RETURN(Box * left, BindBody(*body.left, outer, env));
  STARBURST_ASSIGN_OR_RETURN(Box * right, BindBody(*body.right, outer, env));
  if (left->head.size() != right->head.size()) {
    return Status::SemanticError(
        "set operation operands have different column counts");
  }
  Box* box = graph_->NewBox(BoxKind::kSetOp);
  box->setop = body.op;
  box->setop_all = body.all;
  box->distinct_enforced = !body.all;
  for (size_t i = 0; i < left->head.size(); ++i) {
    STARBURST_ASSIGN_OR_RETURN(
        DataType t, UnifyTypes(left->head[i].type, right->head[i].type,
                               "set operation column " + std::to_string(i + 1)));
    box->head.push_back(HeadColumn{left->head[i].name, std::move(t), nullptr});
  }
  box->AddQuantifier(graph_->NewQuantifier(QuantifierType::kForEach, left));
  box->AddQuantifier(graph_->NewQuantifier(QuantifierType::kForEach, right));
  return box;
}

Result<Box*> Binder::BindSelectCore(const ast::SelectCore& core, Scope* outer,
                                    CteEnv* env) {
  Box* box = graph_->NewBox(BoxKind::kSelect);
  Scope scope;
  scope.parent = outer;
  scope.select_box = box;

  for (const auto& ref : core.from) {
    STARBURST_RETURN_IF_ERROR(
        BindTableRef(*ref, box, &scope, env, &scope.range_vars));
  }

  ExprContext ctx;
  ctx.scope = &scope;
  ctx.env = env;

  if (core.where != nullptr) {
    if (ContainsAggregate(*core.where, *catalog_)) {
      return Status::SemanticError("aggregates are not allowed in WHERE");
    }
    STARBURST_ASSIGN_OR_RETURN(ExprPtr where, BindExpr(*core.where, &ctx));
    if (where->type.id != TypeId::kBool && where->type.id != TypeId::kNull) {
      return Status::TypeError("WHERE clause must be boolean");
    }
    SplitConjuncts(std::move(where), &box->predicates);
  }

  bool has_aggregation = !core.group_by.empty() || core.having != nullptr;
  if (!has_aggregation) {
    for (const ast::SelectItem& item : core.items) {
      if (!item.star && ContainsAggregate(*item.expr, *catalog_)) {
        has_aggregation = true;
        break;
      }
    }
  }
  if (has_aggregation) {
    return BindAggregation(core, box, &scope, env);
  }

  // Plain select list.
  for (const ast::SelectItem& item : core.items) {
    if (item.star) {
      bool matched = false;
      for (const RangeVar& rv : scope.range_vars) {
        if (!item.star_qualifier.empty() &&
            !IdentEquals(rv.alias, item.star_qualifier)) {
          continue;
        }
        matched = true;
        for (size_t i = 0; i < rv.column_count; ++i) {
          size_t col = rv.column_offset + i;
          box->head.push_back(HeadColumn{
              rv.quantifier->ColumnName(col), rv.quantifier->ColumnType(col),
              MakeColumnRef(rv.quantifier, col, rv.quantifier->ColumnType(col))});
        }
      }
      if (!matched) {
        return Status::SemanticError(
            item.star_qualifier.empty()
                ? "SELECT * with no FROM clause"
                : "no table named '" + item.star_qualifier + "' in FROM");
      }
      continue;
    }
    STARBURST_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(*item.expr, &ctx));
    std::string name = !item.alias.empty()
                           ? item.alias
                           : DeriveColumnName(*item.expr, box->head.size());
    DataType type = bound->type;
    box->head.push_back(HeadColumn{std::move(name), std::move(type),
                                   std::move(bound)});
  }
  box->distinct_enforced = core.distinct;
  return box;
}

Result<Box*> Binder::BindAggregation(const ast::SelectCore& core, Box* low_box,
                                     Scope* low_scope, CteEnv* env) {
  // The SELECT -> GROUPBY -> SELECT sandwich. `low_box` already holds the
  // FROM quantifiers and WHERE predicates; give it a head of exactly the
  // columns the grouping needs, hang a GROUPBY box over it, and evaluate
  // the select list and HAVING in an upper SELECT box.
  low_box->head.clear();

  ExprContext low_ctx;
  low_ctx.scope = low_scope;
  low_ctx.env = env;

  std::vector<ExprPtr> low_group_keys;
  for (const auto& g : core.group_by) {
    if (ContainsAggregate(*g, *catalog_)) {
      return Status::SemanticError("aggregates are not allowed in GROUP BY");
    }
    STARBURST_ASSIGN_OR_RETURN(ExprPtr key, BindExpr(*g, &low_ctx));
    low_group_keys.push_back(std::move(key));
  }

  Box* gb = graph_->NewBox(BoxKind::kGroupBy);
  Quantifier* gb_q = gb->AddQuantifier(
      graph_->NewQuantifier(QuantifierType::kForEach, low_box));

  for (size_t i = 0; i < low_group_keys.size(); ++i) {
    std::string name = core.group_by[i]->kind == ast::ExprKind::kColumnRef
                           ? static_cast<const ast::ColumnRefExpr&>(
                                 *core.group_by[i]).column
                           : "K" + std::to_string(i + 1);
    size_t pos = EnsureHeadColumn(low_box, *low_group_keys[i], name);
    DataType t = low_group_keys[i]->type;
    gb->group_keys.push_back(MakeColumnRef(gb_q, pos, t));
    gb->head.push_back(HeadColumn{low_box->head[pos].name, t,
                                  MakeColumnRef(gb_q, pos, t)});
  }

  Box* upper = graph_->NewBox(BoxKind::kSelect);
  Quantifier* upper_q =
      upper->AddQuantifier(graph_->NewQuantifier(QuantifierType::kForEach, gb));
  upper_q->alias = "";

  Scope upper_scope;
  upper_scope.parent = low_scope->parent;
  upper_scope.select_box = upper;

  ExprContext agg_ctx;
  agg_ctx.scope = &upper_scope;
  agg_ctx.env = env;
  agg_ctx.agg_mode = true;
  agg_ctx.low_scope = low_scope;
  agg_ctx.low_box = low_box;
  agg_ctx.gb_box = gb;
  agg_ctx.upper_q = upper_q;
  agg_ctx.low_group_keys = &low_group_keys;

  for (const ast::SelectItem& item : core.items) {
    if (item.star) {
      return Status::SemanticError("SELECT * cannot be combined with GROUP BY");
    }
    STARBURST_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(*item.expr, &agg_ctx));
    std::string name = !item.alias.empty()
                           ? item.alias
                           : DeriveColumnName(*item.expr, upper->head.size());
    DataType type = bound->type;
    upper->head.push_back(HeadColumn{std::move(name), std::move(type),
                                     std::move(bound)});
  }
  if (core.having != nullptr) {
    STARBURST_ASSIGN_OR_RETURN(ExprPtr having, BindExpr(*core.having, &agg_ctx));
    if (having->type.id != TypeId::kBool && having->type.id != TypeId::kNull) {
      return Status::TypeError("HAVING clause must be boolean");
    }
    SplitConjuncts(std::move(having), &upper->predicates);
  }
  upper->distinct_enforced = core.distinct;
  return upper;
}

// ---------------------------------------------------------------------------
// FROM clause
// ---------------------------------------------------------------------------

Box* Binder::BaseTableBox(const TableDef* table) {
  std::string key = IdentUpper(table->name);
  auto it = base_table_boxes_.find(key);
  if (it != base_table_boxes_.end()) return it->second;
  Box* box = graph_->NewBox(BoxKind::kBaseTable);
  box->table = table;
  for (const ColumnDef& col : table->schema.columns()) {
    box->head.push_back(HeadColumn{col.name, col.type, nullptr});
  }
  base_table_boxes_[key] = box;
  return box;
}

Result<Box*> Binder::BindView(const ViewDef& view) {
  if (++view_depth_ > 64) {
    --view_depth_;
    return Status::SemanticError("view nesting too deep (cycle?)");
  }
  auto parsed = Parser::ParseQueryText(view.body_sql);
  if (!parsed.ok()) {
    --view_depth_;
    return Status::SemanticError("view '" + view.name +
                                 "' body failed to parse: " +
                                 parsed.status().message());
  }
  CteEnv env;
  Result<Box*> bound = BindQueryNode(**parsed, nullptr, env);
  --view_depth_;
  if (!bound.ok()) return bound.status();
  Box* box = *bound;
  if (!view.column_names.empty()) {
    if (view.column_names.size() != box->head.size()) {
      return Status::SemanticError("view '" + view.name +
                                   "' column list arity mismatch");
    }
    for (size_t i = 0; i < box->head.size(); ++i) {
      box->head[i].name = view.column_names[i];
    }
  }
  return box;
}

Result<Box*> Binder::ResolveNamedTable(const std::string& name, CteEnv* env) {
  auto it = env->find(IdentUpper(name));
  if (it != env->end()) {
    if (it->second.recursion != nullptr) {
      // A reference to the recursive table expression being defined: an
      // iteration-reference box fed by the fixpoint loop at runtime.
      Box* ref = graph_->NewBox(BoxKind::kIterationRef);
      ref->cte_name = it->second.recursion->cte_name;
      ref->recursion = it->second.recursion;
      for (const HeadColumn& h : it->second.recursion->head) {
        ref->head.push_back(HeadColumn{h.name, h.type, nullptr});
      }
      return ref;
    }
    return it->second.box;
  }
  if (catalog_->HasView(name)) {
    STARBURST_ASSIGN_OR_RETURN(const ViewDef* view, catalog_->GetView(name));
    referenced_objects_.insert("V:" + IdentUpper(name));
    return BindView(*view);
  }
  if (catalog_->HasTable(name)) {
    STARBURST_ASSIGN_OR_RETURN(const TableDef* table, catalog_->GetTable(name));
    referenced_objects_.insert("T:" + IdentUpper(name));
    return BaseTableBox(table);
  }
  return Status::SemanticError("no table, view, or table expression named '" +
                               name + "'");
}

Status Binder::BindTableRef(const ast::TableRef& ref, Box* box, Scope* scope,
                            CteEnv* env, std::vector<RangeVar>* vars) {
  switch (ref.kind) {
    case ast::TableRef::Kind::kNamed: {
      STARBURST_ASSIGN_OR_RETURN(Box * input, ResolveNamedTable(ref.name, env));
      Quantifier* q = box->AddQuantifier(
          graph_->NewQuantifier(QuantifierType::kForEach, input));
      // Default alias for a qualified name (sys.metrics) is its last
      // component, so `metrics.name` resolves the way SQL users expect.
      std::string default_alias = ref.name;
      size_t dot = default_alias.rfind('.');
      if (dot != std::string::npos) default_alias = default_alias.substr(dot + 1);
      q->alias = ref.alias.empty() ? default_alias : ref.alias;
      vars->push_back(RangeVar{q->alias, q, 0, input->head.size()});
      return Status::OK();
    }
    case ast::TableRef::Kind::kSubquery: {
      STARBURST_RETURN_IF_ERROR(
          RejectInnerOrdering(*ref.subquery, "a FROM subquery"));
      STARBURST_ASSIGN_OR_RETURN(
          Box * input, BindQueryNode(*ref.subquery, scope->parent, *env));
      Quantifier* q = box->AddQuantifier(
          graph_->NewQuantifier(QuantifierType::kForEach, input));
      q->alias = ref.alias;
      vars->push_back(RangeVar{
          ref.alias.empty() ? "Q" + std::to_string(q->id) : ref.alias, q, 0,
          input->head.size()});
      return Status::OK();
    }
    case ast::TableRef::Kind::kJoin: {
      if (ref.join_kind == ast::JoinKind::kInner) {
        // Inner joins flatten into the current box; ON is just predicate.
        std::vector<RangeVar> join_vars;
        STARBURST_RETURN_IF_ERROR(
            BindTableRef(*ref.left, box, scope, env, &join_vars));
        STARBURST_RETURN_IF_ERROR(
            BindTableRef(*ref.right, box, scope, env, &join_vars));
        Scope on_scope;
        on_scope.parent = scope->parent;
        on_scope.select_box = box;
        on_scope.range_vars = join_vars;
        ExprContext ctx;
        ctx.scope = &on_scope;
        ctx.env = env;
        STARBURST_ASSIGN_OR_RETURN(ExprPtr on, BindExpr(*ref.on_condition, &ctx));
        SplitConjuncts(std::move(on), &box->predicates);
        vars->insert(vars->end(), join_vars.begin(), join_vars.end());
        return Status::OK();
      }
      // LEFT OUTER JOIN — the paper's worked extension (§4): a dedicated
      // SELECT box whose preserved side ranges with the PF setformer.
      Box* oj = graph_->NewBox(BoxKind::kSelect);
      Scope oj_scope;
      oj_scope.parent = scope->parent;
      oj_scope.select_box = oj;
      size_t before = oj->quantifiers.size();
      STARBURST_RETURN_IF_ERROR(
          BindTableRef(*ref.left, oj, &oj_scope, env, &oj_scope.range_vars));
      size_t left_count = oj->quantifiers.size() - before;
      if (left_count != 1) {
        return Status::NotImplemented(
            "LEFT OUTER JOIN with a flattened join as preserved side; "
            "parenthesize it as a subquery");
      }
      oj->quantifiers.back()->type = QuantifierType::kPreservedForEach;
      STARBURST_RETURN_IF_ERROR(
          BindTableRef(*ref.right, oj, &oj_scope, env, &oj_scope.range_vars));
      ExprContext ctx;
      ctx.scope = &oj_scope;
      ctx.env = env;
      STARBURST_ASSIGN_OR_RETURN(ExprPtr on, BindExpr(*ref.on_condition, &ctx));
      SplitConjuncts(std::move(on), &oj->predicates);
      // Head: every column of both sides (null-padded right at runtime).
      for (const RangeVar& rv : oj_scope.range_vars) {
        for (size_t i = 0; i < rv.column_count; ++i) {
          size_t col = rv.column_offset + i;
          DataType t = rv.quantifier->ColumnType(col);
          oj->head.push_back(HeadColumn{
              rv.quantifier->ColumnName(col), t,
              MakeColumnRef(rv.quantifier, col, t)});
        }
      }
      // Surface both sides' names through one quantifier over the OJ box.
      Quantifier* q = box->AddQuantifier(
          graph_->NewQuantifier(QuantifierType::kForEach, oj));
      size_t offset = 0;
      for (const RangeVar& rv : oj_scope.range_vars) {
        vars->push_back(RangeVar{rv.alias, q, offset, rv.column_count});
        offset += rv.column_count;
      }
      return Status::OK();
    }
    case ast::TableRef::Kind::kTableFunction: {
      const TableFunctionDef* def =
          catalog_->functions().FindTableFunction(ref.function_name);
      if (def == nullptr) {
        return Status::SemanticError("no table function named '" +
                                     ref.function_name + "'");
      }
      Box* tf = graph_->NewBox(BoxKind::kTableFunction);
      tf->table_function = def;
      tf->function_name = IdentUpper(ref.function_name);
      std::vector<TableSchema> input_schemas;
      for (const ast::TableFuncArg& arg : ref.func_args) {
        if (arg.table != nullptr) {
          STARBURST_ASSIGN_OR_RETURN(
              Box * input, BindQueryNode(*arg.table, scope->parent, *env));
          tf->AddQuantifier(
              graph_->NewQuantifier(QuantifierType::kForEach, input));
          TableSchema schema;
          for (const HeadColumn& h : input->head) {
            schema.AddColumn(ColumnDef{h.name, h.type, true});
          }
          input_schemas.push_back(std::move(schema));
        } else {
          // Scalar args must fold to constants at bind time.
          Scope empty_scope;
          empty_scope.select_box = tf;
          ExprContext ctx;
          ctx.scope = &empty_scope;
          ctx.env = env;
          STARBURST_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(*arg.scalar, &ctx));
          Value folded;
          if (bound->kind == Expr::Kind::kLiteral) {
            folded = bound->literal;
          } else if (bound->kind == Expr::Kind::kUnary &&
                     bound->uop == ast::UnaryOp::kNegate &&
                     bound->children[0]->kind == Expr::Kind::kLiteral) {
            const Value& v = bound->children[0]->literal;
            folded = v.type_id() == TypeId::kDouble
                         ? Value::Double(-v.double_value())
                         : Value::Int(-v.int_value());
          } else {
            return Status::SemanticError(
                "table function scalar arguments must be constants");
          }
          tf->function_args.push_back(std::move(folded));
        }
      }
      STARBURST_ASSIGN_OR_RETURN(
          TableSchema out_schema,
          def->infer_schema(input_schemas, tf->function_args));
      for (const ColumnDef& col : out_schema.columns()) {
        tf->head.push_back(HeadColumn{col.name, col.type, nullptr});
      }
      Quantifier* q = box->AddQuantifier(
          graph_->NewQuantifier(QuantifierType::kForEach, tf));
      q->alias = ref.alias.empty() ? ref.function_name : ref.alias;
      vars->push_back(RangeVar{q->alias, q, 0, tf->head.size()});
      return Status::OK();
    }
  }
  return Status::Internal("unknown table reference kind");
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

size_t Binder::EnsureHeadColumn(Box* box, const Expr& expr,
                                const std::string& name) {
  std::string wanted = expr.ToString();
  for (size_t i = 0; i < box->head.size(); ++i) {
    if (box->head[i].expr != nullptr && box->head[i].expr->ToString() == wanted) {
      return i;
    }
  }
  std::string unique_name = name;
  int suffix = 2;
  auto taken = [&](const std::string& n) {
    return std::any_of(box->head.begin(), box->head.end(),
                       [&](const HeadColumn& h) { return IdentEquals(h.name, n); });
  };
  while (taken(unique_name)) {
    unique_name = name + "_" + std::to_string(suffix++);
  }
  box->head.push_back(HeadColumn{unique_name, expr.type, expr.Clone()});
  return box->head.size() - 1;
}

Result<ExprPtr> Binder::ResolveInScope(Scope* scope,
                                       const std::string& qualifier,
                                       const std::string& column,
                                       int* out_level) {
  int level = 0;
  for (Scope* s = scope; s != nullptr; s = s->parent, ++level) {
    ExprPtr found;
    for (const RangeVar& rv : s->range_vars) {
      if (!qualifier.empty() && !IdentEquals(rv.alias, qualifier)) continue;
      for (size_t i = 0; i < rv.column_count; ++i) {
        size_t col = rv.column_offset + i;
        if (!IdentEquals(rv.quantifier->ColumnName(col), column)) continue;
        if (found != nullptr) {
          return Status::SemanticError("ambiguous column reference '" +
                                       (qualifier.empty()
                                            ? column
                                            : qualifier + "." + column) +
                                       "'");
        }
        found = MakeColumnRef(rv.quantifier, col,
                              rv.quantifier->ColumnType(col));
      }
    }
    if (found != nullptr) {
      *out_level = level;
      return found;
    }
  }
  return Status::SemanticError(
      "unresolved column reference '" +
      (qualifier.empty() ? column : qualifier + "." + column) + "'");
}

Result<ExprPtr> Binder::BindColumnRef(const ast::ColumnRefExpr& e,
                                      ExprContext* ctx) {
  if (!ctx->agg_mode) {
    int level = 0;
    return ResolveInScope(ctx->scope, e.qualifier, e.column, &level);
  }
  // Aggregation mode: a plain column must be (part of) a group key, or be
  // a correlated reference to an outer query.
  int level = 0;
  STARBURST_ASSIGN_OR_RETURN(
      ExprPtr low, ResolveInScope(ctx->low_scope, e.qualifier, e.column, &level));
  if (level > 0) return low;  // correlation: passes through untouched
  std::string wanted = low->ToString();
  for (size_t i = 0; i < ctx->low_group_keys->size(); ++i) {
    if ((*ctx->low_group_keys)[i]->ToString() == wanted) {
      DataType t = (*ctx->low_group_keys)[i]->type;
      return MakeColumnRef(ctx->upper_q, i, t);
    }
  }
  return Status::SemanticError("column '" + e.ToString() +
                               "' must appear in GROUP BY or inside an "
                               "aggregate function");
}

Result<ExprPtr> Binder::BindAggregateCall(const ast::FunctionCallExpr& e,
                                          ExprContext* ctx) {
  if (!ctx->agg_mode) {
    return Status::SemanticError("aggregate '" + e.name +
                                 "' is not allowed here");
  }
  const AggregateFunctionDef* def = catalog_->functions().FindAggregate(e.name);
  AggregateSpec spec;
  spec.def = def;
  spec.name = IdentUpper(e.name);
  spec.distinct = e.distinct;

  DataType input_type = DataType::Null();
  ExprPtr low_arg;
  if (e.star) {
    if (!IdentEquals(e.name, "COUNT")) {
      return Status::SemanticError("only COUNT(*) takes '*'");
    }
  } else {
    if (e.args.size() != 1) {
      return Status::SemanticError("aggregate '" + e.name +
                                   "' takes exactly one argument");
    }
    if (ContainsAggregate(*e.args[0], *catalog_)) {
      return Status::SemanticError("aggregates cannot be nested");
    }
    ExprContext low_ctx;
    low_ctx.scope = ctx->low_scope;
    low_ctx.env = ctx->env;
    STARBURST_ASSIGN_OR_RETURN(low_arg, BindExpr(*e.args[0], &low_ctx));
    input_type = low_arg->type;
  }
  STARBURST_ASSIGN_OR_RETURN(spec.result_type, def->infer_type(input_type));

  // Register the aggregate on the GROUP BY box (deduplicating), routing
  // its argument through the low box head.
  Box* gb = ctx->gb_box;
  std::string signature = spec.name + "|" + (e.star ? "*" : low_arg->ToString()) +
                          (spec.distinct ? "|D" : "");
  for (size_t j = 0; j < gb->aggregates.size(); ++j) {
    const AggregateSpec& existing = gb->aggregates[j];
    std::string existing_sig =
        existing.name + "|" +
        (existing.arg == nullptr ? "*" : existing.arg_source_text) +
        (existing.distinct ? "|D" : "");
    if (existing_sig == signature) {
      size_t pos = gb->group_keys.size() + j;
      return MakeColumnRef(ctx->upper_q, pos, existing.result_type);
    }
  }
  if (low_arg != nullptr) {
    size_t pos = EnsureHeadColumn(ctx->low_box, *low_arg, "A" + spec.name);
    Quantifier* gb_q = gb->quantifiers[0].get();
    spec.arg_source_text = low_arg->ToString();
    spec.arg = MakeColumnRef(gb_q, pos, input_type);
  } else {
    spec.arg_source_text = "*";
  }
  gb->aggregates.push_back(std::move(spec));
  size_t agg_index = gb->aggregates.size() - 1;
  DataType result_type = gb->aggregates.back().result_type;
  gb->head.push_back(HeadColumn{
      gb->aggregates.back().name + std::to_string(agg_index + 1), result_type,
      MakeAggRef(agg_index, result_type)});
  size_t pos = gb->group_keys.size() + agg_index;
  return MakeColumnRef(ctx->upper_q, pos, result_type);
}

Result<ExprPtr> Binder::BindFunctionCall(const ast::FunctionCallExpr& e,
                                         ExprContext* ctx) {
  if (catalog_->functions().FindAggregate(e.name) != nullptr &&
      catalog_->functions().FindScalar(e.name) == nullptr) {
    return BindAggregateCall(e, ctx);
  }
  const ScalarFunctionDef* def = catalog_->functions().FindScalar(e.name);
  if (def == nullptr) {
    return Status::SemanticError("no function named '" + e.name + "'");
  }
  if (def->arity >= 0 && static_cast<size_t>(def->arity) != e.args.size()) {
    return Status::SemanticError(
        "function '" + e.name + "' expects " + std::to_string(def->arity) +
        " argument(s), got " + std::to_string(e.args.size()));
  }
  auto out = std::make_unique<Expr>();
  out->kind = Expr::Kind::kScalarFunc;
  out->func = def;
  out->func_name = IdentUpper(e.name);
  std::vector<DataType> arg_types;
  for (const auto& a : e.args) {
    STARBURST_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(*a, ctx));
    arg_types.push_back(bound->type);
    out->children.push_back(std::move(bound));
  }
  STARBURST_ASSIGN_OR_RETURN(out->type, def->infer_type(arg_types));
  return ExprPtr(std::move(out));
}

Result<Box*> Binder::BindSubquery(const ast::Query& q, ExprContext* ctx) {
  STARBURST_RETURN_IF_ERROR(RejectInnerOrdering(q, "a subquery"));
  return BindQueryNode(q, ctx->scope, *ctx->env);
}

Result<DataType> Binder::CheckComparable(const DataType& a, const DataType& b,
                                         const std::string& what) {
  if (a.id == TypeId::kNull || b.id == TypeId::kNull) return DataType::Bool();
  if (a.is_numeric() && b.is_numeric()) return DataType::Bool();
  if (a.id == b.id) {
    if (a.id == TypeId::kExtension && a.type_name != b.type_name) {
      return Status::TypeError(what + ": cannot compare " + a.ToString() +
                               " with " + b.ToString());
    }
    return DataType::Bool();
  }
  return Status::TypeError(what + ": cannot compare " + a.ToString() +
                           " with " + b.ToString());
}

Result<DataType> Binder::NumericResult(ast::BinaryOp op, const DataType& a,
                                       const DataType& b) {
  if (op == ast::BinaryOp::kConcat) {
    if ((a.id == TypeId::kString || a.id == TypeId::kNull) &&
        (b.id == TypeId::kString || b.id == TypeId::kNull)) {
      return DataType::String();
    }
    return Status::TypeError("|| expects strings");
  }
  if ((!a.is_numeric() && a.id != TypeId::kNull) ||
      (!b.is_numeric() && b.id != TypeId::kNull)) {
    return Status::TypeError(std::string("operator ") + ast::BinaryOpName(op) +
                             " expects numeric operands, got " + a.ToString() +
                             " and " + b.ToString());
  }
  if (op == ast::BinaryOp::kMod) return DataType::Int();
  if (a.id == TypeId::kDouble || b.id == TypeId::kDouble) {
    return DataType::Double();
  }
  return DataType::Int();
}

Result<ExprPtr> Binder::BindExpr(const ast::Expr& e, ExprContext* ctx) {
  // In aggregation mode, a non-trivial expression may itself *be* a group
  // key (e.g. SELECT salary/50 ... GROUP BY salary/50): probe by binding
  // it against the grouping input and matching the key expressions.
  if (ctx->agg_mode && e.kind != ast::ExprKind::kLiteral &&
      e.kind != ast::ExprKind::kColumnRef &&
      !ContainsAggregate(e, *catalog_) && !ContainsSubqueryAst(e)) {
    ExprContext low_ctx;
    low_ctx.scope = ctx->low_scope;
    low_ctx.env = ctx->env;
    Result<ExprPtr> probe = BindExpr(e, &low_ctx);
    if (probe.ok()) {
      std::string text = (*probe)->ToString();
      for (size_t i = 0; i < ctx->low_group_keys->size(); ++i) {
        if ((*ctx->low_group_keys)[i]->ToString() == text) {
          DataType t = (*ctx->low_group_keys)[i]->type;
          return MakeColumnRef(ctx->upper_q, i, t);
        }
      }
    }
    // No key matched: recurse normally (parts may still resolve).
  }
  switch (e.kind) {
    case ast::ExprKind::kLiteral:
      return MakeLiteral(static_cast<const ast::LiteralExpr&>(e).value);

    case ast::ExprKind::kParam: {
      const auto& p = static_cast<const ast::ParamExpr&>(e);
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kParam;
      out->param_index = p.index;
      out->type = DataType::Null();  // unknown until a value is bound
      graph_->num_params = std::max(graph_->num_params, p.index + 1);
      return ExprPtr(std::move(out));
    }

    case ast::ExprKind::kColumnRef:
      return BindColumnRef(static_cast<const ast::ColumnRefExpr&>(e), ctx);

    case ast::ExprKind::kFunctionCall:
      return BindFunctionCall(static_cast<const ast::FunctionCallExpr&>(e), ctx);

    case ast::ExprKind::kBinary: {
      const auto& b = static_cast<const ast::BinaryExpr&>(e);
      STARBURST_ASSIGN_OR_RETURN(ExprPtr left, BindExpr(*b.left, ctx));
      STARBURST_ASSIGN_OR_RETURN(ExprPtr right, BindExpr(*b.right, ctx));
      DataType type;
      switch (b.op) {
        case ast::BinaryOp::kAnd:
        case ast::BinaryOp::kOr:
          if ((left->type.id != TypeId::kBool && left->type.id != TypeId::kNull) ||
              (right->type.id != TypeId::kBool && right->type.id != TypeId::kNull)) {
            return Status::TypeError("AND/OR expect boolean operands");
          }
          type = DataType::Bool();
          break;
        case ast::BinaryOp::kEq:
        case ast::BinaryOp::kNe:
        case ast::BinaryOp::kLt:
        case ast::BinaryOp::kLe:
        case ast::BinaryOp::kGt:
        case ast::BinaryOp::kGe: {
          STARBURST_ASSIGN_OR_RETURN(
              type, CheckComparable(left->type, right->type, "comparison"));
          break;
        }
        default: {
          STARBURST_ASSIGN_OR_RETURN(type,
                                     NumericResult(b.op, left->type, right->type));
          break;
        }
      }
      return MakeBinary(b.op, std::move(left), std::move(right), type);
    }

    case ast::ExprKind::kUnary: {
      const auto& u = static_cast<const ast::UnaryExpr&>(e);
      STARBURST_ASSIGN_OR_RETURN(ExprPtr operand, BindExpr(*u.operand, ctx));
      if (u.op == ast::UnaryOp::kNot) {
        if (operand->type.id != TypeId::kBool &&
            operand->type.id != TypeId::kNull) {
          return Status::TypeError("NOT expects a boolean operand");
        }
        return MakeUnary(u.op, std::move(operand), DataType::Bool());
      }
      if (!operand->type.is_numeric() && operand->type.id != TypeId::kNull) {
        return Status::TypeError("unary '-' expects a numeric operand");
      }
      DataType t = operand->type;
      return MakeUnary(u.op, std::move(operand), t);
    }

    case ast::ExprKind::kIsNull: {
      const auto& n = static_cast<const ast::IsNullExpr&>(e);
      STARBURST_ASSIGN_OR_RETURN(ExprPtr operand, BindExpr(*n.operand, ctx));
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kIsNull;
      out->negated = n.negated;
      out->type = DataType::Bool();
      out->children.push_back(std::move(operand));
      return ExprPtr(std::move(out));
    }

    case ast::ExprKind::kBetween: {
      // a BETWEEN x AND y  ==>  a >= x AND a <= y
      const auto& b = static_cast<const ast::BetweenExpr&>(e);
      STARBURST_ASSIGN_OR_RETURN(ExprPtr operand, BindExpr(*b.operand, ctx));
      STARBURST_ASSIGN_OR_RETURN(ExprPtr low, BindExpr(*b.low, ctx));
      STARBURST_ASSIGN_OR_RETURN(ExprPtr high, BindExpr(*b.high, ctx));
      STARBURST_RETURN_IF_ERROR(
          CheckComparable(operand->type, low->type, "BETWEEN").status());
      STARBURST_RETURN_IF_ERROR(
          CheckComparable(operand->type, high->type, "BETWEEN").status());
      ExprPtr ge = MakeBinary(ast::BinaryOp::kGe, operand->Clone(),
                              std::move(low), DataType::Bool());
      ExprPtr le = MakeBinary(ast::BinaryOp::kLe, std::move(operand),
                              std::move(high), DataType::Bool());
      ExprPtr both = MakeBinary(ast::BinaryOp::kAnd, std::move(ge),
                                std::move(le), DataType::Bool());
      if (b.negated) {
        return MakeUnary(ast::UnaryOp::kNot, std::move(both), DataType::Bool());
      }
      return both;
    }

    case ast::ExprKind::kInList: {
      const auto& in = static_cast<const ast::InListExpr&>(e);
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kInList;
      out->negated = in.negated;
      out->type = DataType::Bool();
      STARBURST_ASSIGN_OR_RETURN(ExprPtr operand, BindExpr(*in.operand, ctx));
      DataType operand_type = operand->type;
      out->children.push_back(std::move(operand));
      for (const auto& item : in.items) {
        STARBURST_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(*item, ctx));
        STARBURST_RETURN_IF_ERROR(
            CheckComparable(operand_type, bound->type, "IN").status());
        out->children.push_back(std::move(bound));
      }
      return ExprPtr(std::move(out));
    }

    case ast::ExprKind::kLike: {
      const auto& l = static_cast<const ast::LikeExpr&>(e);
      STARBURST_ASSIGN_OR_RETURN(ExprPtr operand, BindExpr(*l.operand, ctx));
      STARBURST_ASSIGN_OR_RETURN(ExprPtr pattern, BindExpr(*l.pattern, ctx));
      if ((operand->type.id != TypeId::kString &&
           operand->type.id != TypeId::kNull) ||
          (pattern->type.id != TypeId::kString &&
           pattern->type.id != TypeId::kNull)) {
        return Status::TypeError("LIKE expects string operands");
      }
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kLike;
      out->negated = l.negated;
      out->type = DataType::Bool();
      out->children.push_back(std::move(operand));
      out->children.push_back(std::move(pattern));
      return ExprPtr(std::move(out));
    }

    case ast::ExprKind::kCase: {
      const auto& c = static_cast<const ast::CaseExpr&>(e);
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kCase;
      DataType result_type = DataType::Null();
      for (const auto& w : c.when_clauses) {
        STARBURST_ASSIGN_OR_RETURN(ExprPtr cond, BindExpr(*w.condition, ctx));
        if (cond->type.id != TypeId::kBool && cond->type.id != TypeId::kNull) {
          return Status::TypeError("CASE WHEN condition must be boolean");
        }
        STARBURST_ASSIGN_OR_RETURN(ExprPtr result, BindExpr(*w.result, ctx));
        STARBURST_ASSIGN_OR_RETURN(
            result_type, UnifyTypes(result_type, result->type, "CASE"));
        out->children.push_back(std::move(cond));
        out->children.push_back(std::move(result));
      }
      if (c.else_result != nullptr) {
        STARBURST_ASSIGN_OR_RETURN(ExprPtr els, BindExpr(*c.else_result, ctx));
        STARBURST_ASSIGN_OR_RETURN(result_type,
                                   UnifyTypes(result_type, els->type, "CASE"));
        out->children.push_back(std::move(els));
        out->has_else = true;
      }
      out->type = result_type;
      return ExprPtr(std::move(out));
    }

    case ast::ExprKind::kScalarSubquery: {
      const auto& s = static_cast<const ast::ScalarSubqueryExpr&>(e);
      STARBURST_ASSIGN_OR_RETURN(Box * sub, BindSubquery(*s.query, ctx));
      if (sub->head.size() != 1) {
        return Status::SemanticError(
            "scalar subquery must produce exactly one column");
      }
      Quantifier* q = ctx->scope->select_box->AddQuantifier(
          graph_->NewQuantifier(QuantifierType::kScalar, sub));
      return MakeColumnRef(q, 0, sub->head[0].type);
    }

    case ast::ExprKind::kExists: {
      const auto& x = static_cast<const ast::ExistsExpr&>(e);
      STARBURST_ASSIGN_OR_RETURN(Box * sub, BindSubquery(*x.query, ctx));
      Quantifier* q = ctx->scope->select_box->AddQuantifier(
          graph_->NewQuantifier(QuantifierType::kExists, sub));
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kExistsTest;
      out->quantifier = q;
      out->negated = x.negated;
      out->type = DataType::Bool();
      return ExprPtr(std::move(out));
    }

    case ast::ExprKind::kInSubquery: {
      // x IN (sub)      ==>  x = E(sub)   — existential quantifier
      // x NOT IN (sub)  ==>  x <> A(sub)  — universal, null-aware like SQL
      const auto& in = static_cast<const ast::InSubqueryExpr&>(e);
      STARBURST_ASSIGN_OR_RETURN(Box * sub, BindSubquery(*in.query, ctx));
      if (sub->head.size() != 1) {
        return Status::SemanticError("IN subquery must produce one column");
      }
      STARBURST_ASSIGN_OR_RETURN(ExprPtr operand, BindExpr(*in.operand, ctx));
      STARBURST_RETURN_IF_ERROR(
          CheckComparable(operand->type, sub->head[0].type, "IN").status());
      Quantifier* q = ctx->scope->select_box->AddQuantifier(
          graph_->NewQuantifier(in.negated ? QuantifierType::kAll
                                           : QuantifierType::kExists,
                                sub));
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kQuantCompare;
      out->quantifier = q;
      out->bop = in.negated ? ast::BinaryOp::kNe : ast::BinaryOp::kEq;
      out->type = DataType::Bool();
      out->children.push_back(std::move(operand));
      return ExprPtr(std::move(out));
    }

    case ast::ExprKind::kQuantifiedCmp: {
      const auto& qc = static_cast<const ast::QuantifiedCmpExpr&>(e);
      STARBURST_ASSIGN_OR_RETURN(Box * sub, BindSubquery(*qc.query, ctx));
      if (sub->head.size() != 1) {
        return Status::SemanticError(
            "quantified subquery must produce one column");
      }
      STARBURST_ASSIGN_OR_RETURN(ExprPtr operand, BindExpr(*qc.operand, ctx));
      STARBURST_RETURN_IF_ERROR(
          CheckComparable(operand->type, sub->head[0].type, qc.quantifier)
              .status());
      QuantifierType qtype;
      std::string set_function;
      if (IdentEquals(qc.quantifier, "ALL")) {
        qtype = QuantifierType::kAll;
      } else if (IdentEquals(qc.quantifier, "ANY") ||
                 IdentEquals(qc.quantifier, "SOME")) {
        qtype = QuantifierType::kExists;
      } else if (catalog_->functions().FindSetPredicate(qc.quantifier) !=
                 nullptr) {
        qtype = QuantifierType::kSetPredicate;
        set_function = IdentUpper(qc.quantifier);
      } else {
        return Status::SemanticError("no set predicate function named '" +
                                     qc.quantifier + "'");
      }
      Quantifier* q = ctx->scope->select_box->AddQuantifier(
          graph_->NewQuantifier(qtype, sub));
      q->set_function = std::move(set_function);
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kQuantCompare;
      out->quantifier = q;
      out->bop = qc.cmp;
      out->type = DataType::Bool();
      out->children.push_back(std::move(operand));
      return ExprPtr(std::move(out));
    }
  }
  return Status::Internal("unknown expression kind");
}

// ---------------------------------------------------------------------------
// ORDER BY / LIMIT
// ---------------------------------------------------------------------------

Status Binder::BindOrderByLimit(const ast::Query& query, Box* root) {
  for (const ast::OrderItem& item : query.order_by) {
    Graph::OrderKey key;
    key.ascending = item.ascending;
    if (item.expr->kind == ast::ExprKind::kLiteral) {
      const Value& v = static_cast<const ast::LiteralExpr&>(*item.expr).value;
      if (v.type_id() != TypeId::kInt || v.int_value() < 1 ||
          v.int_value() > static_cast<int64_t>(root->head.size())) {
        return Status::SemanticError("ORDER BY position out of range");
      }
      key.head_column = static_cast<size_t>(v.int_value() - 1);
    } else if (item.expr->kind == ast::ExprKind::kColumnRef) {
      const auto& cr = static_cast<const ast::ColumnRefExpr&>(*item.expr);
      // An output column wins, matched by name (the qualifier is ignored
      // for output columns, as aliases are not visible at this level).
      bool found = false;
      for (size_t i = 0; i < root->head.size(); ++i) {
        if (IdentEquals(root->head[i].name, cr.column)) {
          key.head_column = i;
          found = true;
          break;
        }
      }
      if (!found) {
        // Not an output column: order by a hidden column resolved against
        // the root box's own iterators (stripped from the final result).
        if (root->kind != BoxKind::kSelect) {
          return Status::SemanticError("ORDER BY column '" + cr.column +
                                       "' is not in the select list");
        }
        if (root->distinct_enforced) {
          return Status::SemanticError(
              "ORDER BY column '" + cr.column +
              "' must be in the select list when SELECT DISTINCT is used");
        }
        Scope scope;
        scope.select_box = root;
        for (const auto& q : root->quantifiers) {
          if (!q->ContributesTuples()) continue;
          scope.range_vars.push_back(
              RangeVar{q->alias, q.get(), 0, q->NumColumns()});
        }
        int level = 0;
        Result<ExprPtr> resolved =
            ResolveInScope(&scope, cr.qualifier, cr.column, &level);
        if (!resolved.ok()) {
          return Status::SemanticError("ORDER BY column '" + cr.ToString() +
                                       "' is neither an output column nor a "
                                       "column of the FROM tables");
        }
        DataType type = (*resolved)->type;
        root->head.push_back(
            HeadColumn{"$order" + std::to_string(graph_->hidden_order_columns),
                       type, resolved.TakeValue()});
        ++graph_->hidden_order_columns;
        key.head_column = root->head.size() - 1;
      }
    } else {
      return Status::NotImplemented(
          "ORDER BY expressions must be output columns or positions");
    }
    graph_->order_by.push_back(key);
  }
  graph_->limit = query.limit;
  return Status::OK();
}

}  // namespace starburst::qgm
