#include "engine/admission.h"

#include <algorithm>
#include <chrono>
#include <string>

namespace starburst {

void AdmissionGrant::Release() {
  if (controller_ != nullptr && bytes_ > 0) controller_->Release(bytes_);
  controller_ = nullptr;
  bytes_ = 0;
}

void AdmissionController::SetBudget(uint64_t bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    budget_ = bytes;
  }
  cv_.notify_all();
}

void AdmissionController::SetMaxWaitMs(int64_t ms) {
  std::lock_guard<std::mutex> lock(mu_);
  max_wait_ms_ = ms < 0 ? 0 : ms;
}

uint64_t AdmissionController::budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

int64_t AdmissionController::max_wait_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_wait_ms_;
}

Result<AdmissionGrant> AdmissionController::Admit(uint64_t requested_bytes,
                                                  CancelToken* cancel,
                                                  bool* queued) {
  if (queued != nullptr) *queued = false;
  std::unique_lock<std::mutex> lock(mu_);
  if (budget_ == 0) return AdmissionGrant();  // admission off
  uint64_t bytes =
      requested_bytes > 0 ? requested_bytes : kDefaultReservation;
  if (bytes > budget_) {
    ++rejected_total_;
    return Status::Aborted(
        "admission rejected: statement memory reservation " +
        std::to_string(bytes) + " bytes exceeds ADMISSION_MEMORY " +
        std::to_string(budget_) + " bytes");
  }
  if (in_use_ + bytes > budget_) {
    if (max_wait_ms_ == 0) {
      ++rejected_total_;
      return Status::Aborted(
          "admission rejected: " + std::to_string(in_use_) + " of " +
          std::to_string(budget_) +
          " budget bytes in use and ADMISSION_WAIT_MS is 0");
    }
    ++queued_total_;
    if (queued != nullptr) *queued = true;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(max_wait_ms_);
    // Wake-up slices stay short so a KILL or statement deadline lands
    // promptly even while the statement is still queued.
    const auto slice = std::chrono::milliseconds(10);
    while (budget_ != 0 && in_use_ + bytes > budget_) {
      if (cancel != nullptr) {
        Status c = cancel->Check();
        if (!c.ok()) return c;
      }
      auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        ++timeout_total_;
        return Status::Timeout(
            "admission wait exceeded ADMISSION_WAIT_MS = " +
            std::to_string(max_wait_ms_) + " ms");
      }
      cv_.wait_until(lock, std::min(now + slice, deadline));
    }
    if (budget_ == 0) return AdmissionGrant();  // turned off while queued
    // A shrunk budget can strand an already-queued oversized request;
    // re-apply the fail-fast rule under the new budget.
    if (bytes > budget_) {
      ++rejected_total_;
      return Status::Aborted(
          "admission rejected: statement memory reservation " +
          std::to_string(bytes) + " bytes exceeds ADMISSION_MEMORY " +
          std::to_string(budget_) + " bytes");
    }
  }
  in_use_ += bytes;
  ++admitted_total_;
  return AdmissionGrant(this, bytes);
}

void AdmissionController::Release(uint64_t bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_use_ = in_use_ >= bytes ? in_use_ - bytes : 0;
  }
  cv_.notify_all();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.admitted_total = admitted_total_;
  s.queued_total = queued_total_;
  s.rejected_total = rejected_total_;
  s.timeout_total = timeout_total_;
  s.in_use_bytes = in_use_;
  s.budget_bytes = budget_;
  return s;
}

}  // namespace starburst
