#include "parser/ast.h"

namespace starburst::ast {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kConcat: return "||";
  }
  return "?";
}

std::string BinaryExpr::ToString() const {
  return "(" + left->ToString() + " " + BinaryOpName(op) + " " +
         right->ToString() + ")";
}

std::string UnaryExpr::ToString() const {
  return op == UnaryOp::kNot ? "(NOT " + operand->ToString() + ")"
                             : "(-" + operand->ToString() + ")";
}

std::string FunctionCallExpr::ToString() const {
  std::string out = name + "(";
  if (star) {
    out += "*";
  } else {
    if (distinct) out += "DISTINCT ";
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) out += ", ";
      out += args[i]->ToString();
    }
  }
  return out + ")";
}

std::string IsNullExpr::ToString() const {
  return operand->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
}

std::string BetweenExpr::ToString() const {
  return operand->ToString() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
         low->ToString() + " AND " + high->ToString();
}

std::string InListExpr::ToString() const {
  std::string out = operand->ToString() + (negated ? " NOT IN (" : " IN (");
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i]->ToString();
  }
  return out + ")";
}

std::string InSubqueryExpr::ToString() const {
  return operand->ToString() + (negated ? " NOT IN (<subquery>)" : " IN (<subquery>)");
}

std::string ExistsExpr::ToString() const {
  return std::string(negated ? "NOT " : "") + "EXISTS (<subquery>)";
}

std::string QuantifiedCmpExpr::ToString() const {
  return operand->ToString() + " " + BinaryOpName(cmp) + " " + quantifier +
         " (<subquery>)";
}

std::string ScalarSubqueryExpr::ToString() const { return "(<subquery>)"; }

std::string LikeExpr::ToString() const {
  return operand->ToString() + (negated ? " NOT LIKE " : " LIKE ") +
         pattern->ToString();
}

std::string CaseExpr::ToString() const {
  std::string out = "CASE";
  for (const WhenClause& w : when_clauses) {
    out += " WHEN " + w.condition->ToString() + " THEN " + w.result->ToString();
  }
  if (else_result) out += " ELSE " + else_result->ToString();
  return out + " END";
}

}  // namespace starburst::ast
