#include <unordered_set>

#include "exec/operators.h"

namespace starburst::exec {

namespace {

/// Fixpoint driver for recursive table expressions (§2): working :=
/// dedup(base); repeat { delta := step(visible) \ working; working ∪=
/// delta } until delta = ∅. Linear recursion (one iteration reference)
/// runs semi-naive — the step sees only the previous delta; otherwise the
/// step sees the full working table (naive, but still terminating thanks
/// to set semantics).
class RecurseOp : public Operator {
 public:
  RecurseOp(OperatorPtr base, OperatorPtr step, const qgm::Box* recursion,
            size_t iterref_count, bool semi_naive)
      : base_(std::move(base)), step_(std::move(step)), recursion_(recursion),
        semi_naive_(semi_naive && iterref_count <= 1) {}

  Status OpenImpl(ExecContext* ctx) override {
    working_.clear();
    seen_.clear();
    pos_ = 0;

    STARBURST_RETURN_IF_ERROR(base_->Open(ctx));
    STARBURST_ASSIGN_OR_RETURN(
        std::vector<Row> base_rows,
        DrainOperator(base_.get(), ctx->batch_size()));
    base_->Close();
    std::vector<Row> delta;
    for (Row& r : base_rows) {
      if (seen_.insert(r).second) {
        working_.push_back(r);
        delta.push_back(std::move(r));
      }
    }

    constexpr int kMaxIterations = 1000000;
    int iterations = 0;
    while (!delta.empty()) {
      if (++iterations > kMaxIterations) {
        return Status::Aborted("recursive table expression did not converge");
      }
      ++ctx->stats().recursion_iterations;
      const std::vector<Row>& visible = semi_naive_ ? delta : working_;
      ctx->SetIterationTable(recursion_, &visible);
      STARBURST_RETURN_IF_ERROR(step_->Open(ctx));
      Result<std::vector<Row>> produced =
          DrainOperator(step_.get(), ctx->batch_size());
      step_->Close();
      ctx->SetIterationTable(recursion_, nullptr);
      if (!produced.ok()) return produced.status();

      std::vector<Row> next_delta;
      for (Row& r : *produced) {
        if (seen_.insert(r).second) {
          working_.push_back(r);
          next_delta.push_back(std::move(r));
        }
      }
      delta = std::move(next_delta);
    }
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override {
    if (pos_ >= working_.size()) return false;
    *row = working_[pos_++];
    return true;
  }

  Result<bool> NextBatchImpl(RowBatch* batch) override {
    return FillBatchFromRows(working_, &pos_, batch);
  }

  void CloseImpl() override {
    working_.clear();
    seen_.clear();
  }

 private:
  OperatorPtr base_, step_;
  const qgm::Box* recursion_;
  bool semi_naive_;
  std::vector<Row> working_;
  std::unordered_set<Row, RowHash> seen_;
  size_t pos_ = 0;
};

}  // namespace

OperatorPtr MakeRecurseOp(OperatorPtr base, OperatorPtr step,
                          const qgm::Box* recursion_box, size_t iterref_count,
                          bool semi_naive) {
  return std::make_unique<RecurseOp>(std::move(base), std::move(step),
                                     recursion_box, iterref_count, semi_naive);
}

}  // namespace starburst::exec
