// F2 — Figure 2: the QGM of the paper's §4 query (a) as bound and (b)
// after Rule 1 (Subquery to Join) and Rule 2 (Operation Merging).
//
// This harness regenerates both figures textually and *asserts* the
// transformation's structure: two SELECT boxes with an E quantifier
// collapse into one box whose iterators are both type F, carrying the
// union of the predicates — exactly the paper's picture.

#include "bench_util.h"
#include "parser/parser.h"
#include "qgm/binder.h"
#include "qgm/printer.h"
#include "rewrite/rule_engine.h"

using namespace starburst;
using namespace starburst::bench;

namespace {

int CountSelectBoxes(const qgm::Graph& graph) {
  int n = 0;
  for (qgm::Box* box : graph.BottomUpOrder()) {
    if (box->kind == qgm::BoxKind::kSelect) ++n;
  }
  return n;
}

}  // namespace

int main() {
  Catalog catalog;
  TableDef quotations;
  quotations.name = "quotations";
  quotations.schema = TableSchema({{"partno", DataType::Int(), false},
                                   {"price", DataType::Double(), true},
                                   {"order_qty", DataType::Int(), true}});
  TableDef inventory;
  inventory.name = "inventory";
  inventory.schema = TableSchema({{"partno", DataType::Int(), false},
                                  {"onhand_qty", DataType::Int(), true},
                                  {"type", DataType::String(), true}});
  inventory.unique_keys = {{0}};
  (void)catalog.CreateTable(quotations);
  (void)catalog.CreateTable(inventory);

  const char* sql =
      "SELECT partno, price, order_qty FROM quotations Q1 "
      "WHERE Q1.partno IN (SELECT partno FROM inventory Q3 "
      "WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU')";

  auto parsed = Parser::ParseQueryText(sql);
  qgm::Binder binder(&catalog);
  auto graph = binder.BindQuery(**parsed);
  if (!graph.ok()) return 1;

  std::printf("F2: the paper's §4 query\n%s\n\n", sql);
  std::printf("--- (a) QGM as bound ---\n%s\n",
              qgm::PrintGraph(**graph).c_str());

  int boxes_before = CountSelectBoxes(**graph);
  bool e_before = false;
  for (const auto& q : (*graph)->root()->quantifiers) {
    if (q->type == qgm::QuantifierType::kExists) e_before = true;
  }

  rewrite::RuleEngine engine = rewrite::MakeDefaultRuleEngine();
  rewrite::RuleEngine::Options options;
  options.paranoid_validation = true;
  Timer t;
  auto stats = engine.Run(graph->get(), &catalog, options);
  double rewrite_us = t.ElapsedUs();
  if (!stats.ok()) return 1;

  std::printf("--- (b) QGM after query rewrite (%.0f us, %d rule firings) ---\n%s\n",
              rewrite_us, stats->rules_fired, qgm::PrintGraph(**graph).c_str());
  for (const auto& [rule, count] : stats->fired_by_rule) {
    std::printf("  fired %-24s x%d\n", rule.c_str(), count);
  }

  int boxes_after = CountSelectBoxes(**graph);
  bool all_f = true;
  for (const auto& q : (*graph)->root()->quantifiers) {
    if (q->type != qgm::QuantifierType::kForEach) all_f = false;
  }
  size_t preds_after = (*graph)->root()->predicates.size();

  std::printf("\nShape assertions (paper: Figure 2a -> 2b):\n");
  std::printf("  SELECT boxes: %d -> %d (expect 2 -> 1) %s\n", boxes_before,
              boxes_after,
              boxes_before == 2 && boxes_after == 1 ? "OK" : "MISMATCH");
  std::printf("  E quantifier before: %s; all-F after: %s (expect yes/yes) %s\n",
              e_before ? "yes" : "no", all_f ? "yes" : "no",
              e_before && all_f ? "OK" : "MISMATCH");
  std::printf("  merged predicates: %zu (expect 3: join eq + qty + type) %s\n",
              preds_after, preds_after == 3 ? "OK" : "MISMATCH");
  return boxes_before == 2 && boxes_after == 1 && e_before && all_f &&
                 preds_after == 3
             ? 0
             : 1;
}
