// E9 — §2: "Recursion can be expressed by forming cyclic references to
// named table expressions. ... one can also express path algebra
// computations"; §5 adds that the group has "been adding rewrite rules
// for recursive queries". This bench measures the fixpoint evaluator on
// the classic workloads (transitive closure over chains, trees, random
// graphs) and ablates semi-naive vs. naive iteration — the standard
// implementation choice the recursion literature of the era debated.

#include "bench_util.h"

using namespace starburst;
using namespace starburst::bench;

namespace {

void LoadEdges(Database* db, const std::vector<std::pair<int, int>>& edges) {
  MustExec(db, "CREATE TABLE edges (src INT, dst INT)");
  for (size_t base = 0; base < edges.size(); base += 500) {
    std::string sql = "INSERT INTO edges VALUES ";
    size_t hi = std::min(base + 500, edges.size());
    for (size_t i = base; i < hi; ++i) {
      if (i > base) sql += ", ";
      sql += "(" + std::to_string(edges[i].first) + ", " +
             std::to_string(edges[i].second) + ")";
    }
    MustExec(db, sql);
  }
  if (!db->AnalyzeAll().ok()) std::exit(1);
}

std::vector<std::pair<int, int>> Chain(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i) edges.push_back({i, i + 1});
  return edges;
}

std::vector<std::pair<int, int>> BinaryTree(int nodes) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 1; i < nodes; ++i) edges.push_back({(i - 1) / 2, i});
  return edges;
}

std::vector<std::pair<int, int>> RandomGraph(int nodes, int edges_count,
                                             uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < edges_count; ++i) {
    edges.push_back({static_cast<int>(rng() % nodes),
                     static_cast<int>(rng() % nodes)});
  }
  return edges;
}

const char* kReachability =
    "WITH RECURSIVE reach(n) AS (SELECT 0 UNION "
    "SELECT e.dst FROM reach r, edges e WHERE e.src = r.n) "
    "SELECT COUNT(*) FROM reach";

}  // namespace

int main() {
  std::printf("E9: transitive closure via recursive table expressions\n");
  std::printf("%-18s | %9s %10s | %9s %10s | %9s\n", "graph", "semi: us",
              "iterations", "naive: us", "iterations", "reached");

  struct Workload {
    std::string label;
    std::vector<std::pair<int, int>> edges;
  } workloads[] = {
      {"chain n=100", Chain(100)},
      {"chain n=1000", Chain(1000)},
      {"tree n=4095", BinaryTree(4095)},
      {"random 2k/6k", RandomGraph(2000, 6000, 5)},
      {"random 5k/20k", RandomGraph(5000, 20000, 6)},
  };

  for (const Workload& w : workloads) {
    Database db;
    LoadEdges(&db, w.edges);
    size_t reached = 0;

    db.options().exec.semi_naive_recursion = true;
    uint64_t semi_iters = 0;
    double semi_us = MedianUs([&] {
      Result<std::vector<Row>> rows = db.Query(kReachability);
      if (!rows.ok()) std::exit(1);
      reached = static_cast<size_t>((*rows)[0][0].int_value());
      semi_iters = db.last_metrics().exec_stats.recursion_iterations;
    });

    db.options().exec.semi_naive_recursion = false;
    uint64_t naive_iters = 0;
    size_t reached_naive = 0;
    double naive_us = MedianUs([&] {
      Result<std::vector<Row>> rows = db.Query(kReachability);
      if (!rows.ok()) std::exit(1);
      reached_naive = static_cast<size_t>((*rows)[0][0].int_value());
      naive_iters = db.last_metrics().exec_stats.recursion_iterations;
    });
    if (reached != reached_naive) {
      std::fprintf(stderr, "ANSWER MISMATCH on %s\n", w.label.c_str());
      return 1;
    }
    std::printf("%-18s | %9.0f %10llu | %9.0f %10llu | %9zu\n",
                w.label.c_str(), semi_us,
                static_cast<unsigned long long>(semi_iters), naive_us,
                static_cast<unsigned long long>(naive_iters), reached);
  }
  // E9b: §5's magic-sets direction — selection push-down into the
  // recursion over invariant columns. The all-pairs closure of a chain is
  // O(n^2) tuples; with the consumer's src=0 filter pushed into the base,
  // the fixpoint explores only the single-source chain, O(n).
  std::printf("\nE9b: selection into recursion (magic-sets special case), "
              "all-pairs closure filtered to one source\n");
  std::printf("%10s | %12s %10s | %12s %10s | %8s\n", "chain n",
              "rule off: us", "tuples", "rule on: us", "tuples", "speedup");
  const char* kFiltered =
      "WITH RECURSIVE reach(src, dst) AS (SELECT src, dst FROM edges UNION "
      "SELECT r.src, e.dst FROM reach r, edges e WHERE e.src = r.dst) "
      "SELECT COUNT(*) FROM reach WHERE src = 0";
  for (int n : {50, 100, 200, 400}) {
    Database db;
    LoadEdges(&db, Chain(n));
    // Off: run every rule class except the recursion rules.
    db.options().rewrite.enabled_classes = {"merge", "subquery",
                                            "predicate_migration",
                                            "projection", "misc"};
    size_t tuples_off = 0;
    double off_us = MedianUs([&] {
      Result<std::vector<Row>> rows = db.Query(kFiltered);
      if (!rows.ok()) std::exit(1);
      tuples_off = static_cast<size_t>((*rows)[0][0].int_value());
    });
    db.options().rewrite.enabled_classes.clear();
    size_t tuples_on = 0;
    double on_us = MedianUs([&] {
      Result<std::vector<Row>> rows = db.Query(kFiltered);
      if (!rows.ok()) std::exit(1);
      tuples_on = static_cast<size_t>((*rows)[0][0].int_value());
    });
    if (tuples_on != tuples_off) {
      std::fprintf(stderr, "ANSWER MISMATCH: %zu vs %zu\n", tuples_off,
                   tuples_on);
      return 1;
    }
    std::printf("%10d | %12.0f %10zu | %12.0f %10zu | %7.1fx\n", n, off_us,
                tuples_off, on_us, tuples_on,
                off_us / std::max(on_us, 1.0));
  }

  std::printf("\nShape check: same answers and iteration counts; semi-naive "
              "time scales with the delta (big wins on deep chains), naive "
              "re-derives the whole closure every iteration; the pushed "
              "selection turns O(n^2) closures into O(n).\n");
  return 0;
}
