# Empty compiler generated dependencies file for bench_rule_engine.
# This may be replaced when dependencies are built.
