#ifndef STARBURST_PARSER_PARSER_H_
#define STARBURST_PARSER_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "parser/ast.h"
#include "parser/token.h"

namespace starburst {

/// Recursive-descent parser for Hydrogen, Starburst's SQL-based language
/// (§2). Notable generalizations over 1980s SQL, per the paper:
///   * full orthogonality — any table-producing expression (view, set
///     operation, subquery, table function) is usable wherever a table is;
///   * named table expressions (WITH), including recursive ones;
///   * DBC extension points: scalar/aggregate function calls, set-predicate
///     quantifiers beyond ALL/ANY, table functions in FROM, and
///     LEFT OUTER JOIN (the paper's worked extension).
class Parser {
 public:
  explicit Parser(std::string sql) : sql_(std::move(sql)) {}

  /// Parses exactly one statement (trailing ';' allowed).
  Result<ast::StatementPtr> ParseStatement();

  /// Parses a ';'-separated script.
  Result<std::vector<ast::StatementPtr>> ParseScript();

  /// Convenience: parse a single SELECT query.
  static Result<std::unique_ptr<ast::Query>> ParseQueryText(
      const std::string& sql);

  /// Number of `?` positional parameter markers seen so far (valid after a
  /// successful parse; markers are numbered left to right in parse order).
  size_t num_params() const { return num_params_; }

  /// Per-statement parse durations (microseconds, statement order) from
  /// the last ParseScript call, so script execution can attribute parse
  /// time to the statement that incurred it.
  const std::vector<double>& statement_parse_us() const {
    return statement_parse_us_;
  }

 private:
  Status EnsureTokens();

  // -- token helpers --
  const Token& Peek(size_t ahead = 0) const;
  Token Advance();
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool CheckKeyword(const char* kw, size_t ahead = 0) const;
  bool MatchToken(TokenKind kind);
  bool MatchKeyword(const char* kw);
  Result<Token> Expect(TokenKind kind, const char* what);
  Status ExpectKeyword(const char* kw);
  Result<std::string> ExpectIdentifier(const char* what);
  /// `ident` or a dotted chain `ident.ident...`, joined verbatim — how
  /// schema-qualified names like `sys.metrics` reach the engine as one
  /// table name.
  Result<std::string> ParseQualifiedTableName(const char* what);
  Status ErrorHere(const std::string& message) const;

  // -- statements --
  Result<ast::StatementPtr> ParseStatementInner();
  Result<ast::StatementPtr> ParseCreate();
  Result<ast::StatementPtr> ParseCreateTable();
  Result<ast::StatementPtr> ParseCreateIndex(bool unique);
  Result<ast::StatementPtr> ParseCreateView();
  Result<ast::StatementPtr> ParseDrop();
  Result<ast::StatementPtr> ParseInsert();
  Result<ast::StatementPtr> ParseUpdate();
  Result<ast::StatementPtr> ParseDelete();
  Result<ast::StatementPtr> ParseExplain();

  // -- queries --
  Result<std::unique_ptr<ast::Query>> ParseQuery();
  Result<std::unique_ptr<ast::QueryBody>> ParseQueryBody();
  Result<std::unique_ptr<ast::QueryBody>> ParseQueryTerm();
  Result<std::unique_ptr<ast::QueryBody>> ParseQueryPrimary();
  Result<std::unique_ptr<ast::SelectCore>> ParseSelectCore();
  Result<std::unique_ptr<ast::TableRef>> ParseTableRef();
  Result<std::unique_ptr<ast::TableRef>> ParseTablePrimary();
  Result<std::string> ParseOptionalAlias();

  // -- expressions --
  Result<ast::ExprPtr> ParseExpr();        // OR level
  Result<ast::ExprPtr> ParseAndExpr();
  Result<ast::ExprPtr> ParseNotExpr();
  Result<ast::ExprPtr> ParsePredicate();   // comparisons, IN, BETWEEN, ...
  Result<ast::ExprPtr> ParseAdditive();
  Result<ast::ExprPtr> ParseMultiplicative();
  Result<ast::ExprPtr> ParseUnaryExpr();
  Result<ast::ExprPtr> ParsePrimaryExpr();
  Result<std::vector<ast::ExprPtr>> ParseExprList();

  bool AtQueryStart(size_t ahead = 0) const;

  std::string sql_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  bool tokenized_ = false;
  size_t num_params_ = 0;
  std::vector<double> statement_parse_us_;
};

}  // namespace starburst

#endif  // STARBURST_PARSER_PARSER_H_
