
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/starburst_optimizer.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/starburst_optimizer.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/join_enumerator.cc" "src/CMakeFiles/starburst_optimizer.dir/optimizer/join_enumerator.cc.o" "gcc" "src/CMakeFiles/starburst_optimizer.dir/optimizer/join_enumerator.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/starburst_optimizer.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/starburst_optimizer.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/plan.cc" "src/CMakeFiles/starburst_optimizer.dir/optimizer/plan.cc.o" "gcc" "src/CMakeFiles/starburst_optimizer.dir/optimizer/plan.cc.o.d"
  "/root/repo/src/optimizer/star.cc" "src/CMakeFiles/starburst_optimizer.dir/optimizer/star.cc.o" "gcc" "src/CMakeFiles/starburst_optimizer.dir/optimizer/star.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/starburst_qgm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starburst_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
