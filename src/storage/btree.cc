#include "storage/btree.h"

#include <algorithm>
#include <cassert>
#include <optional>

namespace starburst {

int CompareBTreeKeys(const BTreeKey& a, const BTreeKey& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].CompareTotal(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

struct BTree::Node {
  bool leaf = true;
  std::vector<BTreeKey> keys;
  std::vector<std::unique_ptr<Node>> children;  // internal: keys.size()+1
  std::vector<std::vector<Rid>> postings;       // leaf: parallel to keys
  Node* next = nullptr;                         // leaf sibling chain

  /// Index of the first key >= `key`.
  size_t LowerBound(const BTreeKey& key) const {
    size_t lo = 0, hi = keys.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (CompareBTreeKeys(keys[mid], key) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
};

BTree::BTree(bool unique, size_t order)
    : root_(std::make_unique<Node>()), unique_(unique), order_(order) {
  assert(order_ >= 4);
}

BTree::~BTree() = default;

size_t BTree::height() const {
  size_t h = 1;
  const Node* n = root_.get();
  while (!n->leaf) {
    n = n->children[0].get();
    ++h;
  }
  return h;
}

void BTree::SplitChild(Node* parent, size_t child_index) {
  Node* child = parent->children[child_index].get();
  auto right = std::make_unique<Node>();
  right->leaf = child->leaf;
  size_t mid = child->keys.size() / 2;
  ++stats_.splits;

  if (child->leaf) {
    // Right keeps [mid, end); the separator is a copy of right's first key.
    right->keys.assign(child->keys.begin() + mid, child->keys.end());
    right->postings.assign(child->postings.begin() + mid, child->postings.end());
    child->keys.resize(mid);
    child->postings.resize(mid);
    right->next = child->next;
    child->next = right.get();
    parent->keys.insert(parent->keys.begin() + child_index, right->keys.front());
  } else {
    // Middle key moves up; right takes keys after it and children after mid.
    BTreeKey up = child->keys[mid];
    right->keys.assign(child->keys.begin() + mid + 1, child->keys.end());
    for (size_t i = mid + 1; i < child->children.size(); ++i) {
      right->children.push_back(std::move(child->children[i]));
    }
    child->keys.resize(mid);
    child->children.resize(mid + 1);
    parent->keys.insert(parent->keys.begin() + child_index, std::move(up));
  }
  parent->children.insert(parent->children.begin() + child_index + 1,
                          std::move(right));
}

Status BTree::Insert(const BTreeKey& key, Rid rid) {
  if (root_->keys.size() >= order_) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
  }
  Node* node = root_.get();
  while (!node->leaf) {
    ++stats_.node_visits;
    size_t i = node->LowerBound(key);
    // Descend right of equal separators so equal keys cluster left-to-right.
    if (i < node->keys.size() && CompareBTreeKeys(node->keys[i], key) == 0) ++i;
    if (node->children[i]->keys.size() >= order_) {
      SplitChild(node, i);
      if (CompareBTreeKeys(key, node->keys[i]) >= 0) ++i;
    }
    node = node->children[i].get();
  }
  ++stats_.node_visits;
  size_t i = node->LowerBound(key);
  if (i < node->keys.size() && CompareBTreeKeys(node->keys[i], key) == 0) {
    if (unique_) {
      return Status::AlreadyExists("duplicate key in unique index");
    }
    node->postings[i].push_back(rid);
  } else {
    node->keys.insert(node->keys.begin() + i, key);
    node->postings.insert(node->postings.begin() + i, std::vector<Rid>{rid});
  }
  ++entry_count_;
  return Status::OK();
}

BTree::Node* BTree::FindLeaf(const BTreeKey& key) {
  Node* node = root_.get();
  while (!node->leaf) {
    ++stats_.node_visits;
    size_t i = node->LowerBound(key);
    if (i < node->keys.size() && CompareBTreeKeys(node->keys[i], key) == 0) ++i;
    node = node->children[i].get();
  }
  ++stats_.node_visits;
  return node;
}

Status BTree::Remove(const BTreeKey& key, Rid rid) {
  Node* leaf = FindLeaf(key);
  size_t i = leaf->LowerBound(key);
  if (i >= leaf->keys.size() || CompareBTreeKeys(leaf->keys[i], key) != 0) {
    return Status::NotFound("key not in index");
  }
  std::vector<Rid>& postings = leaf->postings[i];
  auto it = std::find(postings.begin(), postings.end(), rid);
  if (it == postings.end()) {
    return Status::NotFound("rid not posted under key");
  }
  postings.erase(it);
  if (postings.empty()) {
    leaf->keys.erase(leaf->keys.begin() + i);
    leaf->postings.erase(leaf->postings.begin() + i);
  }
  --entry_count_;
  return Status::OK();
}

std::vector<Rid> BTree::Lookup(const BTreeKey& key) {
  Node* leaf = FindLeaf(key);
  size_t i = leaf->LowerBound(key);
  if (i < leaf->keys.size() && CompareBTreeKeys(leaf->keys[i], key) == 0) {
    return leaf->postings[i];
  }
  return {};
}

namespace {

class BTreeIteratorImpl : public BTree::Iterator {
 public:
  BTreeIteratorImpl(BTree::Node* leaf, size_t key_index,
                    std::optional<BTreeKey> hi, bool hi_inclusive)
      : leaf_(leaf), key_(key_index), hi_(std::move(hi)),
        hi_inclusive_(hi_inclusive) {}

  bool Next(BTreeKey* key, Rid* rid) override;

 private:
  BTree::Node* leaf_;
  size_t key_;
  size_t posting_ = 0;
  std::optional<BTreeKey> hi_;
  bool hi_inclusive_;
};

}  // namespace

std::unique_ptr<BTree::Iterator> BTree::Scan(const BTreeKey* lo,
                                             bool lo_inclusive,
                                             const BTreeKey* hi,
                                             bool hi_inclusive) {
  Node* leaf;
  size_t start = 0;
  if (lo != nullptr) {
    leaf = FindLeaf(*lo);
    start = leaf->LowerBound(*lo);
    if (!lo_inclusive) {
      while (start < leaf->keys.size() &&
             CompareBTreeKeys(leaf->keys[start], *lo) == 0) {
        ++start;
      }
    }
  } else {
    leaf = root_.get();
    while (!leaf->leaf) {
      ++stats_.node_visits;
      leaf = leaf->children[0].get();
    }
    ++stats_.node_visits;
  }
  std::optional<BTreeKey> hi_copy;
  if (hi != nullptr) hi_copy = *hi;
  return std::make_unique<BTreeIteratorImpl>(leaf, start, std::move(hi_copy),
                                             hi_inclusive);
}

namespace {

bool BTreeIteratorImpl::Next(BTreeKey* key, Rid* rid) {
  while (leaf_ != nullptr) {
    if (key_ >= leaf_->keys.size()) {
      leaf_ = leaf_->next;
      key_ = 0;
      posting_ = 0;
      continue;
    }
    if (posting_ >= leaf_->postings[key_].size()) {
      ++key_;
      posting_ = 0;
      continue;
    }
    if (hi_.has_value()) {
      int c = CompareBTreeKeys(leaf_->keys[key_], *hi_);
      if (c > 0 || (c == 0 && !hi_inclusive_)) {
        leaf_ = nullptr;
        return false;
      }
    }
    *key = leaf_->keys[key_];
    *rid = leaf_->postings[key_][posting_++];
    return true;
  }
  return false;
}

}  // namespace

}  // namespace starburst
