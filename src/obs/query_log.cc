#include "obs/query_log.h"

namespace starburst::obs {

void QueryLog::Append(QueryLogEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry.id = next_id_++;
  // Capacity 0 means logging is disabled: the statement still gets an id
  // (total() keeps counting), but nothing is retained and nothing is
  // counted as dropped — an empty ring never evicted anything.
  if (capacity_ == 0) return;
  if (entry.sql.size() > kMaxSqlLength) {
    // The ellipsis needs three characters of room; below that, truncate
    // plainly rather than resizing past the limit.
    if (kMaxSqlLength > 3) {
      entry.sql.resize(kMaxSqlLength - 3);
      entry.sql += "...";
    } else {
      entry.sql.resize(kMaxSqlLength);
    }
  }
  ring_.push_back(std::move(entry));
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
}

std::vector<QueryLogEntry> QueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<QueryLogEntry>(ring_.begin(), ring_.end());
}

void QueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // An operator-requested clear is not ring overflow: it lands in
  // cleared(), keeping dropped() an honest eviction count.
  cleared_ += ring_.size();
  ring_.clear();
}

size_t QueryLog::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void QueryLog::set_capacity(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = n;
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
}

uint64_t QueryLog::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_ - 1;
}

uint64_t QueryLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t QueryLog::cleared() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cleared_;
}

}  // namespace starburst::obs
