#include "engine/database.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "exec/expr_eval.h"
#include "exec/parallel/task_scheduler.h"
#include "parser/parser.h"
#include "qgm/binder.h"
#include "qgm/printer.h"
#include "storage/spill_file.h"

namespace starburst {

namespace {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedUs() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct ValueTotalLess {
  bool operator()(const Value& a, const Value& b) const {
    return a.CompareTotal(b) < 0;
  }
};

}  // namespace

Database::Database(size_t buffer_pool_pages)
    : storage_(buffer_pool_pages),
      rule_engine_(rewrite::MakeDefaultRuleEngine()) {
#ifdef STARBURST_PARANOID_QGM
  // Sanitizer builds re-validate the whole QGM after every rule firing.
  options_.rewrite.paranoid_validation = true;
#endif
  // Resolve every engine metric once; statement-end bookkeeping then
  // touches only the returned atomics.
  obs::MetricsRegistry& r = metrics_registry_;
  em_.queries_total = r.counter("queries_total");
  em_.query_errors_total = r.counter("query_errors_total");
  em_.slow_queries_total = r.counter("slow_queries_total");
  em_.query_latency_us =
      r.histogram("query_latency_us", obs::MetricsRegistry::LatencyBoundsUs());
  em_.plan_cache_hits = r.counter("plan_cache_hits_total");
  em_.plan_cache_misses = r.counter("plan_cache_misses_total");
  em_.plan_cache_invalidations = r.counter("plan_cache_invalidations_total");
  em_.plan_cache_evictions = r.counter("plan_cache_evictions_total");
  em_.plan_cache_entries = r.gauge("plan_cache_entries");
  em_.buffer_pool_logical_reads = r.counter("buffer_pool_logical_reads_total");
  em_.buffer_pool_cache_hits = r.counter("buffer_pool_cache_hits_total");
  em_.buffer_pool_disk_reads = r.counter("buffer_pool_disk_reads_total");
  em_.buffer_pool_disk_writes = r.counter("buffer_pool_disk_writes_total");
  em_.spill_files_created = r.counter("spill_files_created_total");
  em_.spill_bytes_written = r.counter("spill_bytes_written_total");
  em_.spill_live_files = r.gauge("spill_live_files");
  em_.spill_live_bytes = r.gauge("spill_live_bytes");
  em_.scheduler_tasks_run = r.counter("scheduler_tasks_run_total");
  em_.scheduler_workers_spawned = r.counter("scheduler_workers_spawned_total");
  em_.memory_query_peak_bytes = r.gauge("memory_query_peak_bytes");
  em_.memory_query_peak_max_bytes = r.gauge("memory_query_peak_max_bytes");
  em_.statements_killed_total = r.counter("statements_killed_total");
  em_.statements_cancelled_total = r.counter("statements_cancelled_total");
  em_.statements_timed_out_total = r.counter("statements_timed_out_total");
  em_.admission_queued_total = r.counter("admission_queued_total");
  em_.admission_rejected_total = r.counter("admission_rejected_total");
  em_.admission_timeouts_total = r.counter("admission_timeouts_total");
  em_.admission_in_use_bytes = r.gauge("admission_in_use_bytes");
  em_.admission_budget_bytes = r.gauge("admission_budget_bytes");
  em_.statements_live = r.gauge("statements_live");
  em_.query_log_dropped_total = r.counter("query_log_dropped_total");
  em_.query_log_cleared_total = r.counter("query_log_cleared_total");
  RegisterSystemTables();
}

Status Database::RegisterStar(optimizer::Star star) {
  extra_stars_.push_back(std::move(star));
  return Status::OK();
}

namespace {

/// Rows a statement produced, for the query log: result rows for
/// queries, affected rows for DML, 0 on error.
uint64_t LoggedRowCount(const Result<ResultSet>& r) {
  if (!r.ok()) return 0;
  if ((*r).row_count() > 0) return (*r).row_count();
  return static_cast<uint64_t>(std::max<int64_t>(0, (*r).affected_rows()));
}

/// Fallback query-log label for script statements, whose original text
/// is not retained per statement.
const char* StatementKindLabel(ast::StatementKind kind) {
  switch (kind) {
    case ast::StatementKind::kSelect: return "<script SELECT>";
    case ast::StatementKind::kExplain: return "<script EXPLAIN>";
    case ast::StatementKind::kCreateTable: return "<script CREATE TABLE>";
    case ast::StatementKind::kDropTable: return "<script DROP TABLE>";
    case ast::StatementKind::kCreateIndex: return "<script CREATE INDEX>";
    case ast::StatementKind::kDropIndex: return "<script DROP INDEX>";
    case ast::StatementKind::kCreateView: return "<script CREATE VIEW>";
    case ast::StatementKind::kDropView: return "<script DROP VIEW>";
    case ast::StatementKind::kInsert: return "<script INSERT>";
    case ast::StatementKind::kDelete: return "<script DELETE>";
    case ast::StatementKind::kUpdate: return "<script UPDATE>";
    case ast::StatementKind::kSet: return "<script SET>";
    case ast::StatementKind::kAnalyze: return "<script ANALYZE>";
    case ast::StatementKind::kKill: return "<script KILL>";
  }
  return "<script statement>";
}

}  // namespace

Database::StatementState& Database::stmt_state() {
  thread_local StatementState state;
  return state;
}

void Database::BeginStatement(const std::string& sql) {
  StatementState& s = stmt_state();
  s.metrics = QueryMetrics{};
  s.cancel.Reset();
  if (statement_timeout_ms_ > 0) s.cancel.SetTimeoutMs(statement_timeout_ms_);
  s.id = static_cast<int64_t>(++statement_seq_);
  s.start_ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
  s.parallelism = options_.exec.parallelism == 0
                      ? 1
                      : static_cast<int>(options_.exec.parallelism);
  s.admission_rejected = false;
  statements_.Register(s.id, NormalizeSql(sql), s.start_ts_us, &s.cancel);
}

Result<ResultSet> Database::Execute(const std::string& sql) {
  BeginStatement(sql);
  Timer total_timer;
  Result<ResultSet> result = ExecuteInternal(sql);
  FinishStatement(sql, result.status(), LoggedRowCount(result),
                  total_timer.ElapsedUs());
  return result;
}

Result<ResultSet> Database::ExecuteInternal(const std::string& sql) {
  obs::Span statement_span(&tracer_, "statement", "query");
  statement_span.AddArg("sql",
                        sql.size() > 120 ? sql.substr(0, 117) + "..." : sql);
  // Plan-cache fast path: a fresh entry under (normalized SQL, session
  // knobs) re-executes the compiled operator tree without touching the
  // parser — the whole compile half of Figure 1 is skipped.
  std::string cache_key;
  if (plan_cache_.capacity() > 0) {
    cache_key = PlanCacheKey(sql);
    if (PreparedStatementPtr hit = plan_cache_.Lookup(cache_key, catalog_)) {
      if (hit->num_params > 0) {
        return Status::InvalidArgument(
            "statement contains ? parameters; supply values through "
            "ExecutePrepared");
      }
      stmt_state().metrics.plan_cache_hit = true;
      STARBURST_ASSIGN_OR_RETURN(QueryOutput out,
                                 ExecuteCompiled(*hit, nullptr));
      SnapshotPlanCacheMetrics();
      return ResultSet(std::move(out.column_names), std::move(out.rows));
    }
  }
  obs::Span parse_span(&tracer_, "parse", "phase");
  Timer parse_timer;
  Parser parser(sql);
  STARBURST_ASSIGN_OR_RETURN(ast::StatementPtr stmt, parser.ParseStatement());
  stmt_state().metrics.parse_us = parse_timer.ElapsedUs();
  parse_span.End();
  return ExecuteStatement(*stmt, cache_key);
}

Result<ResultSet> Database::ExecuteScript(const std::string& sql) {
  Parser parser(sql);
  STARBURST_ASSIGN_OR_RETURN(std::vector<ast::StatementPtr> stmts,
                             parser.ParseScript());
  const std::vector<double>& parse_us = parser.statement_parse_us();
  ResultSet last = ResultSet::Message("empty script");
  for (size_t i = 0; i < stmts.size(); ++i) {
    // Each statement begins fresh: without the reset, phase timings and
    // exec stats of earlier statements bleed into the metrics of the
    // last one.
    const char* label = StatementKindLabel(stmts[i]->kind);
    BeginStatement(label);
    stmt_state().metrics.parse_us = i < parse_us.size() ? parse_us[i] : 0;
    Timer stmt_timer;
    Result<ResultSet> r = ExecuteStatement(*stmts[i]);
    FinishStatement(label, r.status(), LoggedRowCount(r),
                    stmt_state().metrics.parse_us + stmt_timer.ElapsedUs());
    if (!r.ok()) return r.status();
    last = r.TakeValue();
  }
  return last;
}

Result<Database::PreparedHandle> Database::Prepare(const std::string& sql) {
  // Prepare is not a registered statement (there is nothing to KILL):
  // reset the thread's statement state without admitting it.
  StatementState& s = stmt_state();
  s.metrics = QueryMetrics{};
  s.cancel.Reset();
  s.id = 0;
  s.admission_rejected = false;
  // No FinishStatement runs for a Prepare; publish its compile metrics
  // to last_metrics() on every exit path ourselves.
  struct MetricsGuard {
    Database* db;
    ~MetricsGuard() {
      std::lock_guard<std::mutex> lock(db->last_metrics_mu_);
      db->last_metrics_ = stmt_state().metrics;
    }
  } metrics_guard{this};
  obs::Span statement_span(&tracer_, "prepare", "query");
  std::string cache_key;
  if (plan_cache_.capacity() > 0) {
    cache_key = PlanCacheKey(sql);
    if (PreparedStatementPtr hit = plan_cache_.Lookup(cache_key, catalog_)) {
      stmt_state().metrics.plan_cache_hit = true;
      SnapshotPlanCacheMetrics();
      return hit;
    }
  }
  obs::Span parse_span(&tracer_, "parse", "phase");
  Timer parse_timer;
  Parser parser(sql);
  STARBURST_ASSIGN_OR_RETURN(ast::StatementPtr stmt, parser.ParseStatement());
  stmt_state().metrics.parse_us = parse_timer.ElapsedUs();
  parse_span.End();
  if (stmt->kind != ast::StatementKind::kSelect) {
    return Status::InvalidArgument("only SELECT statements can be prepared");
  }
  const ast::Query& query =
      *static_cast<const ast::SelectStatement&>(*stmt).query;
  STARBURST_ASSIGN_OR_RETURN(PreparedStatementPtr ps,
                             CompileSelect(query, nullptr));
  ps->sql = sql;
  if (!cache_key.empty()) {
    plan_cache_.CountMiss();
    plan_cache_.Insert(cache_key, ps);
  }
  SnapshotPlanCacheMetrics();
  return ps;
}

namespace {

/// Swaps in a freshly compiled artifact under an existing handle. Old
/// execution state is torn down first, top of the reference chain first
/// (operators → plan → optimizer → graph), so nothing dangles mid-swap.
void ReplaceCompiled(PreparedStatement& dst, PreparedStatement&& src) {
  dst.root.reset();
  dst.stats_tree.reset();
  dst.plan.reset();
  dst.optimizer.reset();
  dst.graph.reset();
  dst.graph = std::move(src.graph);
  dst.optimizer = std::move(src.optimizer);
  dst.plan = std::move(src.plan);
  dst.stats_tree = std::move(src.stats_tree);
  dst.root = std::move(src.root);
  dst.num_params = src.num_params;
  dst.column_names = std::move(src.column_names);
  dst.visible_columns = src.visible_columns;
  dst.hidden_order_columns = src.hidden_order_columns;
  dst.batch_size = src.batch_size;
  dst.reserve_hint = src.reserve_hint;
  dst.parallelism = src.parallelism;
  dst.plan_cost = src.plan_cost;
  dst.plan_cardinality = src.plan_cardinality;
  dst.catalog_version = src.catalog_version;
  dst.dependencies = std::move(src.dependencies);
}

}  // namespace

Result<ResultSet> Database::ExecutePrepared(const PreparedHandle& handle,
                                            const std::vector<Value>& params) {
  if (handle == nullptr) {
    return Status::InvalidArgument("null prepared statement handle");
  }
  BeginStatement(handle->sql);
  Timer total_timer;
  Result<ResultSet> result = [&]() -> Result<ResultSet> {
  obs::Span statement_span(&tracer_, "statement", "query");
  PreparedStatement& ps = *handle;
  if (!ps.FreshAgainst(catalog_)) {
    // A referenced object changed (DDL or ANALYZE): transparently
    // recompile in place, so this handle — and any plan-cache entry
    // sharing it — serves the fresh plan from now on.
    plan_cache_.CountInvalidation();
    obs::Span parse_span(&tracer_, "parse", "phase");
    Timer parse_timer;
    Parser parser(ps.sql);
    STARBURST_ASSIGN_OR_RETURN(ast::StatementPtr stmt, parser.ParseStatement());
    stmt_state().metrics.parse_us = parse_timer.ElapsedUs();
    parse_span.End();
    if (stmt->kind != ast::StatementKind::kSelect) {
      return Status::Internal("prepared statement is not a SELECT");
    }
    const ast::Query& query =
        *static_cast<const ast::SelectStatement&>(*stmt).query;
    STARBURST_ASSIGN_OR_RETURN(PreparedStatementPtr fresh,
                               CompileSelect(query, nullptr));
    ReplaceCompiled(ps, std::move(*fresh));
  } else {
    stmt_state().metrics.plan_cache_hit = true;
    plan_cache_.CountHit();
  }
  STARBURST_ASSIGN_OR_RETURN(QueryOutput out, ExecuteCompiled(ps, &params));
  SnapshotPlanCacheMetrics();
  return ResultSet(std::move(out.column_names), std::move(out.rows));
  }();
  FinishStatement(handle->sql, result.status(), LoggedRowCount(result),
                  total_timer.ElapsedUs());
  return result;
}

void Database::SnapshotPlanCacheMetrics() {
  stmt_state().metrics.plan_cache = plan_cache_.stats();
  stmt_state().metrics.plan_cache_entries = plan_cache_.size();
}

std::string Database::KnobFingerprint() const {
  const SessionOptions& o = options_;
  std::string fp;
  auto add = [&fp](const std::string& v) {
    fp += v;
    fp += ',';
  };
  add(std::to_string(o.rewrite_enabled));
  add(std::to_string(static_cast<int>(o.rewrite.control)));
  add(std::to_string(static_cast<int>(o.rewrite.search)));
  add(std::to_string(o.rewrite.budget));
  add(std::to_string(o.rewrite.seed));
  add(std::to_string(o.rewrite.paranoid_validation));
  for (const std::string& c : o.rewrite.enabled_classes) add(c);
  add(std::to_string(o.optimizer.materialize_shared));
  add(std::to_string(static_cast<int>(o.exec.cache_mode)));
  add(std::to_string(o.exec.ship_delay_us));
  add(std::to_string(o.exec.semi_naive_recursion));
  add(std::to_string(o.exec.parallelism));
  add(std::to_string(o.exec.parallel_min_rows));
  add(std::to_string(o.exec.batch_size));
  add(std::to_string(o.exec.sort_memory_bytes));
  add(std::to_string(o.exec.agg_memory_bytes));
  add(std::to_string(o.exec.query_memory_bytes));
  // Stats-collecting sessions refine stats-instrumented trees; lean
  // sessions must not inherit (or shed) that instrumentation via cache.
  add(std::to_string(o.collect_op_stats));
  return fp;
}

Result<std::vector<Row>> Database::Query(const std::string& sql) {
  STARBURST_ASSIGN_OR_RETURN(ResultSet rs, Execute(sql));
  return std::move(rs.mutable_rows());
}

Result<ResultSet> Database::ExecuteStatement(const ast::Statement& stmt,
                                             const std::string& cache_key) {
  switch (stmt.kind) {
    case ast::StatementKind::kSelect:
      return RunSelect(*static_cast<const ast::SelectStatement&>(stmt).query,
                       cache_key);
    case ast::StatementKind::kExplain:
      return RunExplain(static_cast<const ast::ExplainStatement&>(stmt));
    case ast::StatementKind::kCreateTable:
      return RunCreateTable(static_cast<const ast::CreateTableStatement&>(stmt));
    case ast::StatementKind::kDropTable:
      return RunDropTable(static_cast<const ast::DropTableStatement&>(stmt).name);
    case ast::StatementKind::kCreateIndex:
      return RunCreateIndex(static_cast<const ast::CreateIndexStatement&>(stmt));
    case ast::StatementKind::kDropIndex:
      return RunDropIndex(static_cast<const ast::DropIndexStatement&>(stmt).name);
    case ast::StatementKind::kCreateView:
      return RunCreateView(static_cast<const ast::CreateViewStatement&>(stmt));
    case ast::StatementKind::kDropView:
      return RunDropView(static_cast<const ast::DropViewStatement&>(stmt).name);
    case ast::StatementKind::kInsert:
      return RunInsert(static_cast<const ast::InsertStatement&>(stmt));
    case ast::StatementKind::kDelete:
      return RunDelete(static_cast<const ast::DeleteStatement&>(stmt));
    case ast::StatementKind::kUpdate:
      return RunUpdate(static_cast<const ast::UpdateStatement&>(stmt));
    case ast::StatementKind::kSet:
      return RunSet(static_cast<const ast::SetStatement&>(stmt));
    case ast::StatementKind::kKill:
      return RunKill(static_cast<const ast::KillStatement&>(stmt));
    case ast::StatementKind::kAnalyze: {
      const auto& analyze = static_cast<const ast::AnalyzeStatement&>(stmt);
      if (analyze.table.empty()) {
        STARBURST_RETURN_IF_ERROR(AnalyzeAll());
      } else {
        STARBURST_RETURN_IF_ERROR(Analyze(analyze.table));
      }
      return ResultSet::Message("ANALYZE");
    }
  }
  return Status::Internal("unknown statement kind");
}

Result<ResultSet> Database::RunSet(const ast::SetStatement& stmt) {
  if (stmt.name == "PARALLELISM") {
    // 0 and DEFAULT both restore the hardware default.
    if (stmt.value < 0) {
      return Status::SemanticError("PARALLELISM must be >= 0");
    }
    size_t n = stmt.is_default || stmt.value == 0
                   ? exec::Executor::Options::DefaultParallelism()
                   : static_cast<size_t>(stmt.value);
    options_.exec.parallelism = n;
    return ResultSet::Message("SET PARALLELISM = " + std::to_string(n));
  }
  if (stmt.name == "PARALLEL_MIN_ROWS") {
    if (!stmt.is_default && stmt.value < 0) {
      return Status::SemanticError("PARALLEL_MIN_ROWS must be >= 0");
    }
    double rows = stmt.is_default ? exec::Executor::Options{}.parallel_min_rows
                                  : static_cast<double>(stmt.value);
    options_.exec.parallel_min_rows = rows;
    return ResultSet::Message("SET PARALLEL_MIN_ROWS = " +
                              std::to_string(static_cast<int64_t>(rows)));
  }
  if (stmt.name == "BATCH_SIZE") {
    // 1 pins exact row-at-a-time execution (differential testing);
    // DEFAULT restores the vectorized default (1024).
    if (!stmt.is_default && stmt.value < 1) {
      return Status::SemanticError("BATCH_SIZE must be >= 1");
    }
    size_t n = stmt.is_default ? RowBatch::kDefaultCapacity
                               : static_cast<size_t>(stmt.value);
    options_.exec.batch_size = n;
    return ResultSet::Message("SET BATCH_SIZE = " + std::to_string(n));
  }
  // Memory-governance knobs (bytes; parser accepts KB/MB/GB suffixes).
  // 0 and DEFAULT both mean unlimited.
  auto memory_knob = [&](const char* name,
                         uint64_t* slot) -> Result<ResultSet> {
    if (!stmt.is_default && stmt.value < 0) {
      return Status::SemanticError(std::string(name) + " must be >= 0");
    }
    uint64_t bytes =
        stmt.is_default ? 0 : static_cast<uint64_t>(stmt.value);
    *slot = bytes;
    return ResultSet::Message("SET " + std::string(name) + " = " +
                              std::to_string(bytes));
  };
  if (stmt.name == "SORT_MEMORY") {
    return memory_knob("SORT_MEMORY", &options_.exec.sort_memory_bytes);
  }
  if (stmt.name == "AGG_MEMORY") {
    return memory_knob("AGG_MEMORY", &options_.exec.agg_memory_bytes);
  }
  if (stmt.name == "QUERY_MEMORY") {
    return memory_knob("QUERY_MEMORY", &options_.exec.query_memory_bytes);
  }
  if (stmt.name == "PLAN_CACHE_SIZE") {
    // 0 disables plan caching entirely (and clears resident entries);
    // DEFAULT restores the default capacity.
    if (!stmt.is_default && stmt.value < 0) {
      return Status::SemanticError("PLAN_CACHE_SIZE must be >= 0");
    }
    size_t n = stmt.is_default ? PlanCache::kDefaultCapacity
                               : static_cast<size_t>(stmt.value);
    plan_cache_.set_capacity(n);
    return ResultSet::Message("SET PLAN_CACHE_SIZE = " + std::to_string(n));
  }
  // Observability knobs. Neither affects what compilation produces, so
  // neither participates in KnobFingerprint().
  if (stmt.name == "SLOW_QUERY_US") {
    // Statements at or above the threshold are flagged in sys.query_log
    // and emit a trace instant. 0 and DEFAULT both disable flagging.
    if (!stmt.is_default && stmt.value < 0) {
      return Status::SemanticError("SLOW_QUERY_US must be >= 0");
    }
    uint64_t us = stmt.is_default ? 0 : static_cast<uint64_t>(stmt.value);
    slow_query_us_ = us;
    return ResultSet::Message("SET SLOW_QUERY_US = " + std::to_string(us));
  }
  if (stmt.name == "TRACE_BUFFER") {
    // Capacity of the tracer's event ring; DEFAULT restores 8192.
    // Shrinking discards the oldest events (they count as dropped).
    if (!stmt.is_default && stmt.value < 0) {
      return Status::SemanticError("TRACE_BUFFER must be >= 0");
    }
    size_t n = stmt.is_default ? obs::Tracer::kDefaultCapacity
                               : static_cast<size_t>(stmt.value);
    tracer_.set_capacity(n);
    return ResultSet::Message("SET TRACE_BUFFER = " + std::to_string(n));
  }
  // Governance knobs. None affects what compilation produces, so none
  // participates in KnobFingerprint().
  if (stmt.name == "STATEMENT_TIMEOUT_MS") {
    // Deadline armed for every subsequent statement; 0 and DEFAULT both
    // disable it.
    if (!stmt.is_default && stmt.value < 0) {
      return Status::SemanticError("STATEMENT_TIMEOUT_MS must be >= 0");
    }
    statement_timeout_ms_ = stmt.is_default ? 0 : stmt.value;
    return ResultSet::Message("SET STATEMENT_TIMEOUT_MS = " +
                              std::to_string(statement_timeout_ms_));
  }
  if (stmt.name == "ADMISSION_MEMORY") {
    // Global admission budget (bytes; KB/MB/GB suffixes accepted). 0 and
    // DEFAULT both turn admission off.
    if (!stmt.is_default && stmt.value < 0) {
      return Status::SemanticError("ADMISSION_MEMORY must be >= 0");
    }
    uint64_t bytes = stmt.is_default ? 0 : static_cast<uint64_t>(stmt.value);
    admission_.SetBudget(bytes);
    return ResultSet::Message("SET ADMISSION_MEMORY = " +
                              std::to_string(bytes));
  }
  if (stmt.name == "ADMISSION_WAIT_MS") {
    // How long a statement may queue for admission; 0 and DEFAULT both
    // mean fail fast.
    if (!stmt.is_default && stmt.value < 0) {
      return Status::SemanticError("ADMISSION_WAIT_MS must be >= 0");
    }
    int64_t ms = stmt.is_default ? 0 : stmt.value;
    admission_.SetMaxWaitMs(ms);
    return ResultSet::Message("SET ADMISSION_WAIT_MS = " +
                              std::to_string(ms));
  }
  return Status::SemanticError("unknown session option '" + stmt.name + "'");
}

Result<ResultSet> Database::RunKill(const ast::KillStatement& stmt) {
  STARBURST_RETURN_IF_ERROR(statements_.Kill(stmt.statement_id));
  em_.statements_killed_total->Increment();
  return ResultSet::Message("KILL " + std::to_string(stmt.statement_id));
}

// ---------------------------------------------------------------------------
// Query pipeline (Figure 1)
// ---------------------------------------------------------------------------

Result<Database::QueryOutput> Database::RunQueryPipeline(
    const ast::Query& query, PipelineCapture* capture) {
  STARBURST_ASSIGN_OR_RETURN(PreparedStatementPtr ps,
                             CompileSelect(query, capture));
  if (capture != nullptr && !capture->execute) return QueryOutput{};
  return ExecuteCompiled(*ps, nullptr);
}

Result<PreparedStatementPtr> Database::CompileSelect(const ast::Query& query,
                                                     PipelineCapture* capture) {
  auto ps = std::make_shared<PreparedStatement>();
  statements_.SetPhase(stmt_state().id, "compile");

  obs::Span bind_span(&tracer_, "bind", "phase");
  Timer bind_timer;
  qgm::Binder binder(&catalog_);
  STARBURST_ASSIGN_OR_RETURN(ps->graph, binder.BindQuery(query));
  // Freshness contract: the compiled plan is valid while none of the
  // objects the binder resolved (transitively, through views) changes.
  for (const std::string& dep : binder.referenced_objects()) {
    ps->dependencies.emplace_back(dep, catalog_.ObjectVersion(dep));
  }
  ps->catalog_version = catalog_.version();
  stmt_state().metrics.bind_us = bind_timer.ElapsedUs();
  bind_span.End();

  qgm::Graph* graph = ps->graph.get();
  ps->num_params = graph->num_params;

  if (options_.rewrite_enabled) {
    obs::Span rewrite_span(&tracer_, "rewrite", "phase");
    Timer rewrite_timer;
    STARBURST_ASSIGN_OR_RETURN(
        stmt_state().metrics.rewrite_stats,
        rule_engine_.Run(graph, &catalog_, options_.rewrite));
    stmt_state().metrics.rewrite_us = rewrite_timer.ElapsedUs();
    rewrite_span.End();
    // Replay the rule firings into the trace: one provenance log, two
    // consumers (EXPLAIN below, timeline here).
    if (tracer_.enabled()) {
      for (const rewrite::RuleEngine::Stats::Firing& f :
           stmt_state().metrics.rewrite_stats.firings) {
        tracer_.RecordInstant(
            "rule " + f.rule, "rewrite", f.at_us,
            "\"box\":\"" + obs::JsonEscape(f.box_label) +
                "\",\"box_id\":\"" + std::to_string(f.box_id) +
                "\",\"pass\":\"" + std::to_string(f.pass) + "\"");
      }
    }
  }
  if (capture != nullptr && capture->want_texts) {
    capture->qgm_text = qgm::PrintGraph(*graph);
  }

  obs::Span optimize_span(&tracer_, "optimize", "phase");
  Timer optimize_timer;
  ps->optimizer =
      std::make_unique<optimizer::Optimizer>(&catalog_, options_.optimizer);
  optimizer::Optimizer& opt = *ps->optimizer;
  for (const optimizer::Star& star : extra_stars_) {
    STARBURST_RETURN_IF_ERROR(opt.stars().Add(star));
  }
  STARBURST_ASSIGN_OR_RETURN(ps->plan, opt.Optimize(*graph));
  const optimizer::PlanPtr& plan = ps->plan;
  stmt_state().metrics.optimize_us = optimize_timer.ElapsedUs();
  stmt_state().metrics.optimizer_stats = opt.stats();
  stmt_state().metrics.plan_cost = plan->props.cost;
  stmt_state().metrics.plan_cardinality = plan->props.cardinality;
  ps->plan_cost = plan->props.cost;
  ps->plan_cardinality = plan->props.cardinality;
  optimize_span.End();
  if (capture != nullptr && capture->want_texts) {
    capture->plan_text = plan->ToString();
  }

  bool collect_stats = options_.collect_op_stats ||
                       (capture != nullptr && capture->collect_stats);
  if (collect_stats) ps->stats_tree = std::make_shared<obs::PlanStatsTree>();

  obs::Span refine_span(&tracer_, "refine", "phase");
  Timer refine_timer;
  exec::PlanRefiner::Options refine_options;
  refine_options.cache_mode = options_.exec.cache_mode;
  refine_options.ship_delay_us = options_.exec.ship_delay_us;
  refine_options.semi_naive_recursion = options_.exec.semi_naive_recursion;
  refine_options.stats = ps->stats_tree.get();
  refine_options.parallelism =
      options_.exec.parallelism == 0 ? 1 : options_.exec.parallelism;
  refine_options.parallel_min_rows = options_.exec.parallel_min_rows;
  refine_options.batch_size =
      options_.exec.batch_size == 0 ? 1 : options_.exec.batch_size;
  refine_options.sort_memory_bytes = options_.exec.sort_memory_bytes;
  refine_options.agg_memory_bytes = options_.exec.agg_memory_bytes;
  exec::PlanRefiner refiner(&catalog_, &opt.box_plans(), refine_options);
  STARBURST_ASSIGN_OR_RETURN(ps->root, refiner.Refine(plan));
  if (graph->limit >= 0) {
    ps->root = exec::MakeLimitOp(std::move(ps->root), graph->limit);
    if (ps->stats_tree != nullptr) {
      obs::PlanStatsTree::Node* limit_node = ps->stats_tree->WrapRoot(
          "LIMIT " + std::to_string(graph->limit), plan->props.cardinality,
          plan->props.cost);
      ps->root->set_stats(&limit_node->actual);
    }
  }
  stmt_state().metrics.refine_us = refine_timer.ElapsedUs();
  refine_span.End();
  stmt_state().metrics.op_stats = ps->stats_tree;

  ps->batch_size = refine_options.batch_size;
  ps->parallelism = static_cast<int>(refine_options.parallelism);
  ps->reserve_hint = plan->props.cardinality > 0
                         ? static_cast<size_t>(plan->props.cardinality)
                         : 0;
  ps->hidden_order_columns = graph->hidden_order_columns;
  ps->visible_columns =
      graph->root()->head.size() - graph->hidden_order_columns;
  for (size_t i = 0; i < ps->visible_columns; ++i) {
    ps->column_names.push_back(graph->root()->head[i].name);
  }
  return ps;
}

Result<Database::QueryOutput> Database::ExecuteCompiled(
    PreparedStatement& ps, const std::vector<Value>* params) {
  size_t given = params == nullptr ? 0 : params->size();
  if (given != ps.num_params) {
    return Status::InvalidArgument(
        "statement expects " + std::to_string(ps.num_params) +
        " parameter value(s), got " + std::to_string(given));
  }

  obs::Span exec_span(&tracer_, "execute", "phase");
  Timer exec_timer;
  StorageEngine::Stats storage_before = storage_.GatherStats();
  uint64_t spill_before = SpillFile::total_bytes();
  // A cached stats tree still carries the previous run's actuals.
  if (ps.stats_tree != nullptr) ps.stats_tree->ResetActuals();
  exec::ExecContext ctx(&storage_, &catalog_);
  ctx.set_batch_size(ps.batch_size);
  ctx.set_query_memory_budget(options_.exec.query_memory_bytes);

  // Governance: wire the statement's cancel token into the execution
  // context (operators poll it at batch boundaries), reserve the query's
  // memory from the global admission ledger, and expose the live tracker
  // through the statement registry.
  StatementState& s = stmt_state();
  s.parallelism = ps.parallelism;
  ctx.set_cancel_token(&s.cancel);
  statements_.SetPhase(s.id, "queued");
  Result<AdmissionGrant> admitted =
      admission_.Admit(options_.exec.query_memory_bytes, &s.cancel);
  if (!admitted.ok()) {
    if (admitted.status().code() == StatusCode::kAborted) {
      s.admission_rejected = true;
    }
    return admitted.status();
  }
  AdmissionGrant grant = admitted.TakeValue();
  statements_.SetPhase(s.id, "execute");
  statements_.SetMemoryTracker(s.id, ctx.query_memory());
  // Declared after `ctx` so the registry stops pointing at the tracker
  // before it dies.
  struct TrackerGuard {
    StatementRegistry* registry;
    int64_t id;
    ~TrackerGuard() { registry->SetMemoryTracker(id, nullptr); }
  } tracker_guard{&statements_, s.id};
  // A KILL or deadline that landed during compile/queue stops the
  // statement before any operator opens.
  STARBURST_RETURN_IF_ERROR(ctx.CheckCancel());

  // Parameter values ride the correlation-parameter machinery: one frame
  // under the sentinel quantifier, visible to every operator and
  // subquery in the tree.
  exec::ExecContext::ParamFrame frame;
  if (ps.num_params > 0) {
    for (size_t i = 0; i < params->size(); ++i) {
      frame.Set(exec::QueryParamQuantifier(), i, (*params)[i]);
    }
    ctx.PushParams(&frame);
  }
  Status opened = ps.root->Open(&ctx);
  if (!opened.ok()) {
    // The tree stays alive (cached/prepared); release whatever a
    // partially failed Open accumulated rather than waiting for the
    // destructor that may never come.
    ps.root->Close();
    return opened;
  }
  Result<std::vector<Row>> rows =
      exec::DrainOperator(ps.root.get(), ctx.batch_size(), ps.reserve_hint,
                          &ctx);
  ps.root->Close();
  stmt_state().metrics.execute_us = exec_timer.ElapsedUs();
  stmt_state().metrics.exec_stats = ctx.stats();
  StorageEngine::Stats storage_after = storage_.GatherStats();
  stmt_state().metrics.buffer_pool =
      storage_after.buffer_pool.Since(storage_before.buffer_pool);
  stmt_state().metrics.index_node_visits =
      storage_after.index_node_visits - storage_before.index_node_visits;
  stmt_state().metrics.spill_bytes = SpillFile::total_bytes() - spill_before;
  stmt_state().metrics.peak_memory_bytes = ctx.query_memory()->peak();
  stmt_state().metrics.op_stats = ps.stats_tree;
  stmt_state().metrics.plan_cost = ps.plan_cost;
  stmt_state().metrics.plan_cardinality = ps.plan_cardinality;
  exec_span.End();
  if (!rows.ok()) return rows.status();

  QueryOutput out;
  out.column_names = ps.column_names;
  out.rows = rows.TakeValue();
  if (ps.hidden_order_columns > 0) {
    for (Row& row : out.rows) {
      row.values().resize(ps.visible_columns);
    }
  }
  return out;
}

Result<ResultSet> Database::RunSelect(const ast::Query& query,
                                      const std::string& cache_key) {
  STARBURST_ASSIGN_OR_RETURN(PreparedStatementPtr ps,
                             CompileSelect(query, nullptr));
  if (ps->num_params > 0) {
    return Status::InvalidArgument(
        "statement contains ? parameters; prepare it and supply values "
        "through ExecutePrepared");
  }
  if (!cache_key.empty() && plan_cache_.capacity() > 0) {
    plan_cache_.CountMiss();
    plan_cache_.Insert(cache_key, ps);
  }
  STARBURST_ASSIGN_OR_RETURN(QueryOutput out, ExecuteCompiled(*ps, nullptr));
  SnapshotPlanCacheMetrics();
  return ResultSet(std::move(out.column_names), std::move(out.rows));
}

namespace {

/// Splits `text` into one result row per line under `out`.
void AppendLines(const std::string& text, std::vector<Row>* out) {
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      if (start < text.size()) {
        out->push_back(Row({Value::String(text.substr(start))}));
      }
      break;
    }
    out->push_back(Row({Value::String(text.substr(start, end - start))}));
    start = end + 1;
  }
}

}  // namespace

Result<ResultSet> Database::RunExplain(const ast::ExplainStatement& stmt) {
  if (stmt.analyze || stmt.verbose) return RunExplainReport(stmt);
  qgm::Binder binder(&catalog_);
  STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<qgm::Graph> graph,
                             binder.BindQuery(*stmt.query));
  std::string text;
  if (stmt.what == ast::ExplainStatement::What::kQgm) {
    if (!stmt.before_rewrite && options_.rewrite_enabled) {
      STARBURST_RETURN_IF_ERROR(
          rule_engine_.Run(graph.get(), &catalog_, options_.rewrite).status());
    }
    text = qgm::PrintGraph(*graph);
  } else {
    if (options_.rewrite_enabled) {
      STARBURST_RETURN_IF_ERROR(
          rule_engine_.Run(graph.get(), &catalog_, options_.rewrite).status());
    }
    optimizer::Optimizer opt(&catalog_, options_.optimizer);
    for (const optimizer::Star& star : extra_stars_) {
      STARBURST_RETURN_IF_ERROR(opt.stars().Add(star));
    }
    STARBURST_ASSIGN_OR_RETURN(optimizer::PlanPtr plan, opt.Optimize(*graph));
    text = plan->ToString();
  }
  std::vector<Row> rows;
  rows.push_back(Row({Value::String(std::move(text))}));
  return ResultSet({"plan"}, std::move(rows));
}

Result<ResultSet> Database::RunExplainReport(const ast::ExplainStatement& stmt) {
  PipelineCapture capture;
  capture.want_texts = true;
  capture.collect_stats = stmt.analyze;
  capture.execute = stmt.analyze;
  STARBURST_ASSIGN_OR_RETURN(QueryOutput out,
                             RunQueryPipeline(*stmt.query, &capture));

  std::vector<Row> rows;
  auto line = [&rows](const std::string& s) {
    rows.push_back(Row({Value::String(s)}));
  };
  char buf[256];

  line(options_.rewrite_enabled ? "== QGM (after rewrite) =="
                                : "== QGM (rewrite disabled) ==");
  AppendLines(capture.qgm_text, &rows);

  line("== Rewrite rule firings ==");
  if (!options_.rewrite_enabled) {
    line("(rewrite disabled)");
  } else if (stmt_state().metrics.rewrite_stats.firings.empty()) {
    line("(no rules fired)");
  } else {
    for (const rewrite::RuleEngine::Stats::Firing& f :
         stmt_state().metrics.rewrite_stats.firings) {
      std::snprintf(buf, sizeof(buf), "pass %d: %s box=%s [id=%d]", f.pass,
                    f.rule.c_str(), f.box_label.c_str(), f.box_id);
      line(buf);
    }
  }

  line("== Plan ==");
  std::snprintf(buf, sizeof(buf), "estimated cost=%.6g cardinality=%.6g",
                stmt_state().metrics.plan_cost, stmt_state().metrics.plan_cardinality);
  line(buf);
  if (stmt.analyze && stmt_state().metrics.op_stats != nullptr) {
    AppendLines(stmt_state().metrics.op_stats->Render(/*with_actuals=*/true), &rows);
  } else {
    AppendLines(capture.plan_text, &rows);
  }

  if (stmt.analyze) {
    line("== Execution ==");
    std::snprintf(buf, sizeof(buf), "result rows: %zu", out.rows.size());
    line(buf);
    std::snprintf(buf, sizeof(buf),
                  "phases (us): parse=%.0f bind=%.0f rewrite=%.0f "
                  "optimize=%.0f refine=%.0f execute=%.0f",
                  stmt_state().metrics.parse_us, stmt_state().metrics.bind_us, stmt_state().metrics.rewrite_us,
                  stmt_state().metrics.optimize_us, stmt_state().metrics.refine_us,
                  stmt_state().metrics.execute_us);
    line(buf);
    std::snprintf(buf, sizeof(buf),
                  "subqueries: %llu evaluations, %llu cache hits",
                  static_cast<unsigned long long>(
                      stmt_state().metrics.exec_stats.subquery_evaluations),
                  static_cast<unsigned long long>(
                      stmt_state().metrics.exec_stats.subquery_cache_hits));
    line(buf);
    std::snprintf(
        buf, sizeof(buf),
        "buffer pool: %llu logical reads, %llu hits, %llu misses, "
        "%llu writes (hit rate %.1f%%)",
        static_cast<unsigned long long>(stmt_state().metrics.buffer_pool.logical_reads),
        static_cast<unsigned long long>(stmt_state().metrics.buffer_pool.cache_hits),
        static_cast<unsigned long long>(stmt_state().metrics.buffer_pool.disk_reads),
        static_cast<unsigned long long>(stmt_state().metrics.buffer_pool.disk_writes),
        stmt_state().metrics.buffer_pool.HitRate() * 100.0);
    line(buf);
    std::snprintf(buf, sizeof(buf), "index node visits: %llu",
                  static_cast<unsigned long long>(stmt_state().metrics.index_node_visits));
    line(buf);
    // EXPLAIN itself always compiles fresh; the counters are the
    // session's cumulative plan-cache activity.
    SnapshotPlanCacheMetrics();
    std::snprintf(
        buf, sizeof(buf),
        "plan cache: %llu entries; session hits=%llu misses=%llu "
        "invalidations=%llu evictions=%llu",
        static_cast<unsigned long long>(stmt_state().metrics.plan_cache_entries),
        static_cast<unsigned long long>(stmt_state().metrics.plan_cache.hits),
        static_cast<unsigned long long>(stmt_state().metrics.plan_cache.misses),
        static_cast<unsigned long long>(stmt_state().metrics.plan_cache.invalidations),
        static_cast<unsigned long long>(stmt_state().metrics.plan_cache.evictions));
    line(buf);
    AdmissionController::Stats adm = admission_.stats();
    std::snprintf(
        buf, sizeof(buf),
        "governance: timeout_ms=%lld admission budget=%llu bytes "
        "in_use=%llu admitted=%llu queued=%llu rejected=%llu timeouts=%llu",
        static_cast<long long>(statement_timeout_ms_),
        static_cast<unsigned long long>(adm.budget_bytes),
        static_cast<unsigned long long>(adm.in_use_bytes),
        static_cast<unsigned long long>(adm.admitted_total),
        static_cast<unsigned long long>(adm.queued_total),
        static_cast<unsigned long long>(adm.rejected_total),
        static_cast<unsigned long long>(adm.timeout_total));
    line(buf);
  }
  return ResultSet({"EXPLAIN"}, std::move(rows));
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

Result<ResultSet> Database::RunCreateTable(
    const ast::CreateTableStatement& stmt) {
  STARBURST_RETURN_IF_ERROR(RejectSystemTarget(stmt.name, "create table"));
  TableDef def;
  def.name = stmt.name;
  for (const ast::ColumnSpec& col : stmt.columns) {
    STARBURST_ASSIGN_OR_RETURN(DataType type, qgm::BindTypeName(col.type_name));
    def.schema.AddColumn(ColumnDef{col.name, type, !col.not_null});
  }
  for (const auto& constraint : stmt.unique_constraints) {
    std::vector<size_t> key;
    for (const std::string& col : constraint) {
      std::optional<size_t> idx = def.schema.FindColumn(col);
      if (!idx.has_value()) {
        return Status::SemanticError("unique constraint names unknown column '" +
                                     col + "'");
      }
      key.push_back(*idx);
    }
    def.unique_keys.push_back(std::move(key));
  }
  if (!stmt.storage_manager.empty()) {
    def.storage_manager = IdentUpper(stmt.storage_manager);
  }
  STARBURST_ASSIGN_OR_RETURN(
      StorageManager * manager,
      storage_.storage_managers().Lookup(def.storage_manager));
  STARBURST_RETURN_IF_ERROR(manager->ValidateSchema(def.schema));

  STARBURST_RETURN_IF_ERROR(catalog_.CreateTable(def));
  Status storage_status = storage_.CreateTable(def);
  if (!storage_status.ok()) {
    (void)catalog_.DropTable(def.name);
    return storage_status;
  }

  // Unique constraints are enforced through unique B-tree attachments.
  for (size_t i = 0; i < def.unique_keys.size(); ++i) {
    IndexDef index;
    index.name = IdentUpper(def.name) + "_UK" + std::to_string(i + 1);
    index.table_name = def.name;
    index.unique = true;
    index.access_method = "BTREE";
    for (size_t col : def.unique_keys[i]) {
      index.key_columns.push_back(def.schema.column(col).name);
    }
    STARBURST_RETURN_IF_ERROR(catalog_.CreateIndex(index));
    STARBURST_RETURN_IF_ERROR(storage_.CreateIndex(index, def.schema));
  }
  return ResultSet::Message("CREATE TABLE");
}

Result<ResultSet> Database::RunCreateIndex(
    const ast::CreateIndexStatement& stmt) {
  STARBURST_RETURN_IF_ERROR(RejectSystemTarget(stmt.table, "index"));
  IndexDef def;
  def.name = stmt.name;
  def.table_name = stmt.table;
  def.key_columns = stmt.columns;
  def.unique = stmt.unique;
  if (!stmt.access_method.empty()) {
    def.access_method = IdentUpper(stmt.access_method);
  }
  STARBURST_RETURN_IF_ERROR(catalog_.CreateIndex(def));
  STARBURST_ASSIGN_OR_RETURN(const TableDef* table,
                             catalog_.GetTable(stmt.table));
  Status st = storage_.CreateIndex(def, table->schema);
  if (!st.ok()) {
    (void)catalog_.DropIndex(def.name);
    return st;
  }
  return ResultSet::Message("CREATE INDEX");
}

Result<ResultSet> Database::RunCreateView(
    const ast::CreateViewStatement& stmt) {
  STARBURST_RETURN_IF_ERROR(RejectSystemTarget(stmt.name, "create view"));
  // Views must bind cleanly at definition time (semantic validation).
  qgm::Binder binder(&catalog_);
  STARBURST_RETURN_IF_ERROR(binder.BindQuery(*stmt.query).status());
  ViewDef def;
  def.name = stmt.name;
  def.column_names = stmt.column_names;
  def.body_sql = stmt.body_text;
  STARBURST_RETURN_IF_ERROR(catalog_.CreateView(def));
  return ResultSet::Message("CREATE VIEW");
}

std::vector<std::string> Database::ViewsReferencing(
    const std::string& dep_key) const {
  std::vector<std::string> out;
  for (const std::string& view_name : catalog_.ViewNames()) {
    if (dep_key == "V:" + view_name) continue;
    Result<const ViewDef*> view = catalog_.GetView(view_name);
    if (!view.ok()) continue;
    auto parsed = Parser::ParseQueryText((*view)->body_sql);
    if (!parsed.ok()) continue;
    qgm::Binder binder(&catalog_);
    // A body that no longer binds cannot be consulted; it does not block
    // the drop (it is already broken).
    if (!binder.BindQuery(**parsed).ok()) continue;
    if (binder.referenced_objects().count(dep_key) > 0) {
      out.push_back(view_name);
    }
  }
  return out;
}

// Drop ordering: verify → dependency check → storage → catalog. The
// storage call is the only step that can fail after verification, and it
// runs before any mutation; the catalog erases that follow are pure map
// operations on entries verified to exist. A failure at any step
// therefore leaves catalog and storage exactly as they were — no
// half-dropped state where one layer knows the object and the other
// does not.

Result<ResultSet> Database::RunDropTable(const std::string& name) {
  STARBURST_RETURN_IF_ERROR(RejectSystemTarget(name, "drop"));
  STARBURST_RETURN_IF_ERROR(catalog_.GetTable(name).status());
  std::vector<std::string> dependents =
      ViewsReferencing("T:" + IdentUpper(name));
  if (!dependents.empty()) {
    return Status::SemanticError("cannot drop table '" + IdentUpper(name) +
                                 "': view '" + dependents.front() +
                                 "' references it");
  }
  // Storage drops the table and its attachments in one step.
  STARBURST_RETURN_IF_ERROR(storage_.DropTable(name));
  STARBURST_RETURN_IF_ERROR(catalog_.DropTable(name));
  return ResultSet::Message("DROP TABLE");
}

Result<ResultSet> Database::RunDropIndex(const std::string& name) {
  STARBURST_RETURN_IF_ERROR(RejectSystemTarget(name, "drop"));
  STARBURST_RETURN_IF_ERROR(catalog_.GetIndex(name).status());
  STARBURST_RETURN_IF_ERROR(storage_.DropIndex(name));
  STARBURST_RETURN_IF_ERROR(catalog_.DropIndex(name));
  return ResultSet::Message("DROP INDEX");
}

Result<ResultSet> Database::RunDropView(const std::string& name) {
  STARBURST_RETURN_IF_ERROR(RejectSystemTarget(name, "drop"));
  STARBURST_RETURN_IF_ERROR(catalog_.GetView(name).status());
  std::vector<std::string> dependents =
      ViewsReferencing("V:" + IdentUpper(name));
  if (!dependents.empty()) {
    return Status::SemanticError("cannot drop view '" + IdentUpper(name) +
                                 "': view '" + dependents.front() +
                                 "' references it");
  }
  STARBURST_RETURN_IF_ERROR(catalog_.DropView(name));
  return ResultSet::Message("DROP VIEW");
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

Result<Database::UpdatableView> Database::ResolveUpdatableView(
    const ViewDef& view) const {
  auto ambiguous = [&](const std::string& why) {
    return Status::SemanticError("view '" + view.name +
                                 "' is not unambiguously updatable: " + why);
  };
  auto parsed = Parser::ParseQueryText(view.body_sql);
  if (!parsed.ok()) return parsed.status();
  const ast::Query& q = **parsed;
  if (!q.ctes.empty()) return ambiguous("it uses table expressions");
  if (q.body->kind != ast::QueryBody::Kind::kSelect) {
    return ambiguous("it uses set operations");
  }
  const ast::SelectCore& core = *q.body->select;
  if (core.distinct) return ambiguous("it eliminates duplicates");
  if (!core.group_by.empty() || core.having != nullptr) {
    return ambiguous("it performs aggregation");
  }
  if (core.from.size() != 1 ||
      core.from[0]->kind != ast::TableRef::Kind::kNamed) {
    return ambiguous("it ranges over more than one table");
  }
  if (catalog_.HasView(core.from[0]->name)) {
    return ambiguous("it is defined over another view");
  }
  STARBURST_ASSIGN_OR_RETURN(const TableDef* table,
                             catalog_.GetTable(core.from[0]->name));

  UpdatableView out;
  out.table = table;
  out.pseudo.name = view.name;
  size_t position = 0;
  for (const ast::SelectItem& item : core.items) {
    if (item.star) {
      for (size_t c = 0; c < table->schema.num_columns(); ++c) {
        out.column_map.push_back(c);
        ColumnDef col = table->schema.column(c);
        if (position < view.column_names.size()) {
          col.name = view.column_names[position];
        }
        out.pseudo.schema.AddColumn(std::move(col));
        ++position;
      }
      continue;
    }
    if (item.expr->kind != ast::ExprKind::kColumnRef) {
      return ambiguous("output column " + std::to_string(position + 1) +
                       " is a computed expression");
    }
    const auto& cr = static_cast<const ast::ColumnRefExpr&>(*item.expr);
    std::optional<size_t> base = table->schema.FindColumn(cr.column);
    if (!base.has_value()) {
      return ambiguous("column '" + cr.column + "' is not a base column");
    }
    out.column_map.push_back(*base);
    ColumnDef col = table->schema.column(*base);
    if (position < view.column_names.size()) {
      col.name = view.column_names[position];
    } else if (!item.alias.empty()) {
      col.name = item.alias;
    }
    out.pseudo.schema.AddColumn(std::move(col));
    ++position;
  }
  out.where = core.where.get();
  out.parsed = std::move(*parsed);  // keeps `where` alive
  return out;
}

Result<Value> Database::CoerceForColumn(Value v, const ColumnDef& col) const {
  if (v.is_null()) {
    if (!col.nullable) {
      return Status::SemanticError("column '" + col.name + "' is NOT NULL");
    }
    return v;
  }
  if (v.type() == col.type) return v;
  if (col.type.id == TypeId::kDouble && v.type_id() == TypeId::kInt) {
    return Value::Double(static_cast<double>(v.int_value()));
  }
  if (col.type.id == TypeId::kInt && v.type_id() == TypeId::kDouble) {
    double d = v.double_value();
    if (static_cast<double>(static_cast<int64_t>(d)) == d) {
      return Value::Int(static_cast<int64_t>(d));
    }
  }
  return Status::TypeError("cannot store " + v.type().ToString() +
                           " value in column '" + col.name + "' of type " +
                           col.type.ToString());
}

Status Database::InsertRows(const TableDef& table,
                            const std::vector<Row>& rows,
                            const std::vector<size_t>& target_columns) {
  for (const Row& row : rows) {
    if (row.size() != target_columns.size()) {
      return Status::SemanticError("INSERT arity mismatch: expected " +
                                   std::to_string(target_columns.size()) +
                                   " values, got " + std::to_string(row.size()));
    }
    std::vector<Value> full(table.schema.num_columns(), Value::Null());
    for (size_t i = 0; i < target_columns.size(); ++i) {
      full[target_columns[i]] = row[i];
    }
    for (size_t c = 0; c < full.size(); ++c) {
      STARBURST_ASSIGN_OR_RETURN(
          full[c], CoerceForColumn(std::move(full[c]), table.schema.column(c)));
    }
    STARBURST_RETURN_IF_ERROR(
        storage_.InsertRow(table.name, Row(std::move(full))).status());
  }
  RefreshRowStats(table.name);
  return Status::OK();
}

void Database::RefreshRowStats(const std::string& table_name) {
  Result<TableDef*> def = catalog_.GetMutableTable(table_name);
  Result<TableStorage*> storage = storage_.GetTable(table_name);
  if (!def.ok() || !storage.ok()) return;
  (*def)->stats.row_count = static_cast<double>((*storage)->row_count());
  (*def)->stats.page_count = static_cast<double>((*storage)->page_count());
}

Result<ResultSet> Database::RunInsert(const ast::InsertStatement& stmt) {
  STARBURST_RETURN_IF_ERROR(RejectSystemTarget(stmt.table, "insert into"));
  const TableDef* table = nullptr;
  std::unique_ptr<UpdatableView> view;
  if (catalog_.HasView(stmt.table)) {
    STARBURST_ASSIGN_OR_RETURN(const ViewDef* vd, catalog_.GetView(stmt.table));
    STARBURST_ASSIGN_OR_RETURN(UpdatableView uv, ResolveUpdatableView(*vd));
    view = std::make_unique<UpdatableView>(std::move(uv));
    table = view->table;
  } else {
    STARBURST_ASSIGN_OR_RETURN(table, catalog_.GetTable(stmt.table));
  }
  const TableSchema& exposed = view ? view->pseudo.schema : table->schema;
  std::vector<size_t> targets;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < exposed.num_columns(); ++i) {
      targets.push_back(i);
    }
  } else {
    for (const std::string& name : stmt.columns) {
      std::optional<size_t> idx = exposed.FindColumn(name);
      if (!idx.has_value()) {
        return Status::SemanticError("no column '" + name + "' in " +
                                     stmt.table);
      }
      targets.push_back(*idx);
    }
  }
  if (view != nullptr) {
    for (size_t& t : targets) t = view->column_map[t];
  }

  std::vector<Row> rows;
  if (stmt.query != nullptr) {
    STARBURST_ASSIGN_OR_RETURN(QueryOutput out, RunQueryPipeline(*stmt.query));
    rows = std::move(out.rows);
  } else {
    // VALUES rows: constant expressions (no column references, no
    // subqueries), bound for type checking then evaluated directly.
    exec::ExecContext ctx(&storage_, &catalog_);
    qgm::Binder binder(&catalog_);
    for (const auto& value_row : stmt.rows) {
      std::vector<Value> values;
      for (const ast::ExprPtr& e : value_row) {
        STARBURST_ASSIGN_OR_RETURN(qgm::Binder::StandaloneExprBind bind,
                                   binder.BindConstantExpr(*e));
        exec::CompileEnv env;
        env.catalog = &catalog_;
        STARBURST_ASSIGN_OR_RETURN(exec::CompiledExprPtr compiled,
                                   exec::CompileExpr(*bind.expr, env));
        Row empty_row;
        STARBURST_ASSIGN_OR_RETURN(Value v, compiled->Eval(empty_row, &ctx));
        values.push_back(std::move(v));
      }
      rows.push_back(Row(std::move(values)));
    }
  }
  STARBURST_RETURN_IF_ERROR(InsertRows(*table, rows, targets));
  return ResultSet::Message("INSERT", static_cast<int64_t>(rows.size()));
}

namespace {

Row ProjectViewRow(const Row& base_row, const std::vector<size_t>& map) {
  std::vector<Value> values;
  values.reserve(map.size());
  for (size_t c : map) values.push_back(base_row[c]);
  return Row(std::move(values));
}

}  // namespace

Result<ResultSet> Database::RunDelete(const ast::DeleteStatement& stmt) {
  STARBURST_RETURN_IF_ERROR(RejectSystemTarget(stmt.table, "delete from"));
  const TableDef* table = nullptr;
  std::unique_ptr<UpdatableView> view;
  if (catalog_.HasView(stmt.table)) {
    STARBURST_ASSIGN_OR_RETURN(const ViewDef* vd, catalog_.GetView(stmt.table));
    STARBURST_ASSIGN_OR_RETURN(UpdatableView uv, ResolveUpdatableView(*vd));
    view = std::make_unique<UpdatableView>(std::move(uv));
    table = view->table;
  } else {
    STARBURST_ASSIGN_OR_RETURN(table, catalog_.GetTable(stmt.table));
  }
  const TableDef& bind_target = view ? view->pseudo : *table;

  qgm::Binder binder(&catalog_);
  STARBURST_ASSIGN_OR_RETURN(
      qgm::Binder::TableMutationBind bind,
      binder.BindTableMutation(bind_target, stmt.where.get(), nullptr));

  // Plan every box (subqueries in the WHERE clause become runtimes).
  optimizer::Optimizer opt(&catalog_, options_.optimizer);
  STARBURST_RETURN_IF_ERROR(opt.Optimize(*bind.graph).status());
  exec::PlanRefiner refiner(&catalog_, &opt.box_plans(),
                            exec::PlanRefiner::Options{});

  std::vector<optimizer::ColumnBinding> layout;
  for (size_t i = 0; i < bind_target.schema.num_columns(); ++i) {
    layout.push_back(optimizer::ColumnBinding{bind.quantifier, nullptr, i});
  }
  exec::CompiledExprPtr predicate;
  if (bind.predicate != nullptr) {
    STARBURST_ASSIGN_OR_RETURN(predicate,
                               refiner.Compile(*bind.predicate, layout, nullptr));
  }

  // A view target contributes its own WHERE, bound against the base table.
  qgm::Binder view_binder(&catalog_);
  std::unique_ptr<qgm::Binder::TableMutationBind> view_bind;
  std::unique_ptr<optimizer::Optimizer> view_opt;
  std::unique_ptr<exec::PlanRefiner> view_refiner;
  exec::CompiledExprPtr view_predicate;
  if (view != nullptr && view->where != nullptr) {
    STARBURST_ASSIGN_OR_RETURN(
        qgm::Binder::TableMutationBind vb,
        view_binder.BindTableMutation(*table, view->where, nullptr));
    view_bind = std::make_unique<qgm::Binder::TableMutationBind>(std::move(vb));
    view_opt = std::make_unique<optimizer::Optimizer>(&catalog_,
                                                      options_.optimizer);
    STARBURST_RETURN_IF_ERROR(view_opt->Optimize(*view_bind->graph).status());
    view_refiner = std::make_unique<exec::PlanRefiner>(
        &catalog_, &view_opt->box_plans(), exec::PlanRefiner::Options{});
    std::vector<optimizer::ColumnBinding> base_layout;
    for (size_t i = 0; i < table->schema.num_columns(); ++i) {
      base_layout.push_back(
          optimizer::ColumnBinding{view_bind->quantifier, nullptr, i});
    }
    STARBURST_ASSIGN_OR_RETURN(
        view_predicate,
        view_refiner->Compile(*view_bind->predicate, base_layout, nullptr));
  }

  STARBURST_ASSIGN_OR_RETURN(TableStorage * storage,
                             storage_.GetTable(table->name));
  exec::ExecContext ctx(&storage_, &catalog_);
  std::vector<Rid> victims;
  std::unique_ptr<TableScanIterator> scan = storage->NewScan();
  Row row;
  Rid rid;
  while (true) {
    STARBURST_ASSIGN_OR_RETURN(bool more, scan->Next(&row, &rid));
    if (!more) break;
    if (view_predicate != nullptr) {
      STARBURST_ASSIGN_OR_RETURN(bool pass,
                                 view_predicate->EvalPredicate(row, &ctx));
      if (!pass) continue;  // row not visible through the view
    }
    if (predicate != nullptr) {
      Row visible = view ? ProjectViewRow(row, view->column_map) : row;
      STARBURST_ASSIGN_OR_RETURN(bool pass,
                                 predicate->EvalPredicate(visible, &ctx));
      if (!pass) continue;
    }
    victims.push_back(rid);
  }
  for (Rid v : victims) {
    STARBURST_RETURN_IF_ERROR(storage_.DeleteRow(table->name, v));
  }
  RefreshRowStats(table->name);
  return ResultSet::Message("DELETE", static_cast<int64_t>(victims.size()));
}

Result<ResultSet> Database::RunUpdate(const ast::UpdateStatement& stmt) {
  STARBURST_RETURN_IF_ERROR(RejectSystemTarget(stmt.table, "update"));
  const TableDef* table = nullptr;
  std::unique_ptr<UpdatableView> view;
  if (catalog_.HasView(stmt.table)) {
    STARBURST_ASSIGN_OR_RETURN(const ViewDef* vd, catalog_.GetView(stmt.table));
    STARBURST_ASSIGN_OR_RETURN(UpdatableView uv, ResolveUpdatableView(*vd));
    view = std::make_unique<UpdatableView>(std::move(uv));
    table = view->table;
  } else {
    STARBURST_ASSIGN_OR_RETURN(table, catalog_.GetTable(stmt.table));
  }
  const TableDef& bind_target = view ? view->pseudo : *table;

  std::vector<std::pair<std::string, const ast::Expr*>> assignments;
  for (const auto& [name, expr] : stmt.assignments) {
    assignments.emplace_back(name, expr.get());
  }
  qgm::Binder binder(&catalog_);
  STARBURST_ASSIGN_OR_RETURN(
      qgm::Binder::TableMutationBind bind,
      binder.BindTableMutation(bind_target, stmt.where.get(), &assignments));

  optimizer::Optimizer opt(&catalog_, options_.optimizer);
  STARBURST_RETURN_IF_ERROR(opt.Optimize(*bind.graph).status());
  exec::PlanRefiner refiner(&catalog_, &opt.box_plans(),
                            exec::PlanRefiner::Options{});

  std::vector<optimizer::ColumnBinding> layout;
  for (size_t i = 0; i < bind_target.schema.num_columns(); ++i) {
    layout.push_back(optimizer::ColumnBinding{bind.quantifier, nullptr, i});
  }
  exec::CompiledExprPtr predicate;
  if (bind.predicate != nullptr) {
    STARBURST_ASSIGN_OR_RETURN(predicate,
                               refiner.Compile(*bind.predicate, layout, nullptr));
  }
  std::vector<std::pair<size_t, exec::CompiledExprPtr>> compiled_assignments;
  for (const auto& [col, expr] : bind.assignments) {
    STARBURST_ASSIGN_OR_RETURN(exec::CompiledExprPtr c,
                               refiner.Compile(*expr, layout, nullptr));
    // For a view target, map the exposed column onto its base column.
    size_t base_col = view ? view->column_map[col] : col;
    compiled_assignments.emplace_back(base_col, std::move(c));
  }

  // The view's own WHERE restricts which base rows are updatable.
  qgm::Binder view_binder(&catalog_);
  std::unique_ptr<qgm::Binder::TableMutationBind> view_bind;
  std::unique_ptr<optimizer::Optimizer> view_opt;
  std::unique_ptr<exec::PlanRefiner> view_refiner;
  exec::CompiledExprPtr view_predicate;
  if (view != nullptr && view->where != nullptr) {
    STARBURST_ASSIGN_OR_RETURN(
        qgm::Binder::TableMutationBind vb,
        view_binder.BindTableMutation(*table, view->where, nullptr));
    view_bind = std::make_unique<qgm::Binder::TableMutationBind>(std::move(vb));
    view_opt = std::make_unique<optimizer::Optimizer>(&catalog_,
                                                      options_.optimizer);
    STARBURST_RETURN_IF_ERROR(view_opt->Optimize(*view_bind->graph).status());
    view_refiner = std::make_unique<exec::PlanRefiner>(
        &catalog_, &view_opt->box_plans(), exec::PlanRefiner::Options{});
    std::vector<optimizer::ColumnBinding> base_layout;
    for (size_t i = 0; i < table->schema.num_columns(); ++i) {
      base_layout.push_back(
          optimizer::ColumnBinding{view_bind->quantifier, nullptr, i});
    }
    STARBURST_ASSIGN_OR_RETURN(
        view_predicate,
        view_refiner->Compile(*view_bind->predicate, base_layout, nullptr));
  }

  STARBURST_ASSIGN_OR_RETURN(TableStorage * storage,
                             storage_.GetTable(table->name));
  exec::ExecContext ctx(&storage_, &catalog_);
  std::vector<std::pair<Rid, Row>> updates;
  std::unique_ptr<TableScanIterator> scan = storage->NewScan();
  Row row;
  Rid rid;
  while (true) {
    STARBURST_ASSIGN_OR_RETURN(bool more, scan->Next(&row, &rid));
    if (!more) break;
    if (view_predicate != nullptr) {
      STARBURST_ASSIGN_OR_RETURN(bool pass,
                                 view_predicate->EvalPredicate(row, &ctx));
      if (!pass) continue;
    }
    Row visible = view ? ProjectViewRow(row, view->column_map) : row;
    if (predicate != nullptr) {
      STARBURST_ASSIGN_OR_RETURN(bool pass,
                                 predicate->EvalPredicate(visible, &ctx));
      if (!pass) continue;
    }
    Row updated = row;
    for (const auto& [base_col, expr] : compiled_assignments) {
      STARBURST_ASSIGN_OR_RETURN(Value v, expr->Eval(visible, &ctx));
      STARBURST_ASSIGN_OR_RETURN(
          updated[base_col],
          CoerceForColumn(std::move(v), table->schema.column(base_col)));
    }
    updates.emplace_back(rid, std::move(updated));
  }
  for (auto& [victim, new_row] : updates) {
    STARBURST_RETURN_IF_ERROR(
        storage_.UpdateRow(table->name, victim, new_row).status());
  }
  RefreshRowStats(table->name);
  return ResultSet::Message("UPDATE", static_cast<int64_t>(updates.size()));
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

Status Database::Analyze(const std::string& table_name) {
  STARBURST_ASSIGN_OR_RETURN(const TableDef* table,
                             catalog_.GetTable(table_name));
  STARBURST_ASSIGN_OR_RETURN(TableStorage * storage,
                             storage_.GetTable(table_name));
  TableStats stats;
  stats.row_count = 0;
  stats.page_count = static_cast<double>(storage->page_count());

  size_t ncols = table->schema.num_columns();
  std::vector<std::set<Value, ValueTotalLess>> distinct(ncols);
  std::vector<size_t> nulls(ncols, 0);
  std::vector<std::optional<Value>> mins(ncols), maxs(ncols);

  std::unique_ptr<TableScanIterator> scan = storage->NewScan();
  Row row;
  Rid rid;
  while (true) {
    STARBURST_ASSIGN_OR_RETURN(bool more, scan->Next(&row, &rid));
    if (!more) break;
    stats.row_count += 1;
    for (size_t c = 0; c < ncols; ++c) {
      const Value& v = row[c];
      if (v.is_null()) {
        ++nulls[c];
        continue;
      }
      distinct[c].insert(v);
      if (!mins[c] || v.CompareTotal(*mins[c]) < 0) mins[c] = v;
      if (!maxs[c] || v.CompareTotal(*maxs[c]) > 0) maxs[c] = v;
    }
  }
  for (size_t c = 0; c < ncols; ++c) {
    ColumnStats col;
    col.distinct_count = static_cast<double>(distinct[c].size());
    col.min_value = mins[c];
    col.max_value = maxs[c];
    col.null_fraction = stats.row_count > 0
                            ? static_cast<double>(nulls[c]) / stats.row_count
                            : 0;
    stats.columns[IdentUpper(table->schema.column(c).name)] = col;
  }
  return catalog_.UpdateStats(table_name, std::move(stats));
}

Status Database::AnalyzeAll() {
  for (const std::string& name : catalog_.TableNames()) {
    // sys.* rows are materialized fresh on every scan; there is nothing
    // durable to gather statistics over.
    if (IsSystemTableName(name)) continue;
    STARBURST_RETURN_IF_ERROR(Analyze(name));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Observability: statement bookkeeping and the sys.* virtual tables
// ---------------------------------------------------------------------------

void Database::FinishStatement(const std::string& sql, const Status& status,
                               uint64_t rows, double total_us) {
  StatementState& s = stmt_state();
  // Governance outcomes get their own labels so an operator can tell a
  // killed statement from a genuinely failed one.
  const char* label = "ok";
  if (!status.ok()) {
    switch (status.code()) {
      case StatusCode::kCancelled: label = "cancelled"; break;
      case StatusCode::kTimeout: label = "timeout"; break;
      default: label = s.admission_rejected ? "rejected" : "error"; break;
    }
  }
  // The registry retirement happens even with metrics off: the live
  // entry was registered unconditionally (KILL must always work).
  statements_.Finish(s.id, label, s.metrics.peak_memory_bytes,
                     static_cast<int64_t>(total_us));
  {
    std::lock_guard<std::mutex> lock(last_metrics_mu_);
    last_metrics_ = s.metrics;
  }
  if (!metrics_enabled_) return;

  em_.queries_total->Increment();
  if (!status.ok()) em_.query_errors_total->Increment();
  if (status.code() == StatusCode::kCancelled) {
    em_.statements_cancelled_total->Increment();
  } else if (status.code() == StatusCode::kTimeout) {
    em_.statements_timed_out_total->Increment();
  }
  em_.query_latency_us->Observe(total_us);
  em_.memory_query_peak_bytes->Set(
      static_cast<double>(s.metrics.peak_memory_bytes));
  if (static_cast<double>(s.metrics.peak_memory_bytes) >
      em_.memory_query_peak_max_bytes->value()) {
    em_.memory_query_peak_max_bytes->Set(
        static_cast<double>(s.metrics.peak_memory_bytes));
  }

  obs::QueryLogEntry entry;
  // The statement's start instant (not its completion): `ts_us +
  // total_us` reconstructs the end, and concurrent logs sort by when
  // work actually began.
  entry.ts_us = s.start_ts_us;
  entry.sql = NormalizeSql(sql);
  entry.status = label;
  if (!status.ok()) entry.error = status.message();
  entry.rows = rows;
  entry.parse_us = static_cast<uint64_t>(stmt_state().metrics.parse_us);
  entry.bind_us = static_cast<uint64_t>(stmt_state().metrics.bind_us);
  entry.rewrite_us = static_cast<uint64_t>(stmt_state().metrics.rewrite_us);
  entry.optimize_us = static_cast<uint64_t>(stmt_state().metrics.optimize_us);
  entry.refine_us = static_cast<uint64_t>(stmt_state().metrics.refine_us);
  entry.execute_us = static_cast<uint64_t>(stmt_state().metrics.execute_us);
  entry.total_us = static_cast<uint64_t>(total_us);
  entry.plan_cache_hit = stmt_state().metrics.plan_cache_hit;
  entry.spill_bytes = stmt_state().metrics.spill_bytes;
  entry.peak_memory_bytes = stmt_state().metrics.peak_memory_bytes;
  // The parallelism the statement actually ran with (stamped from the
  // executed plan), not whatever the session knob says now.
  entry.parallelism = s.parallelism;
  entry.slow = slow_query_us_ > 0 &&
               total_us >= static_cast<double>(slow_query_us_);
  if (entry.slow) {
    em_.slow_queries_total->Increment();
    tracer_.RecordInstant(
        "slow query", "engine", obs::NowUs(),
        "\"sql\":\"" + obs::JsonEscape(entry.sql) + "\",\"total_us\":\"" +
            std::to_string(entry.total_us) + "\"");
  }
  query_log_.Append(std::move(entry));

  RefreshMetricsMirrors();
}

void Database::RefreshMetricsMirrors() {
  const PlanCache::Stats& pc = plan_cache_.stats();
  em_.plan_cache_hits->Set(pc.hits);
  em_.plan_cache_misses->Set(pc.misses);
  em_.plan_cache_invalidations->Set(pc.invalidations);
  em_.plan_cache_evictions->Set(pc.evictions);
  em_.plan_cache_entries->Set(static_cast<double>(plan_cache_.size()));

  StorageEngine::Stats st = storage_.GatherStats();
  em_.buffer_pool_logical_reads->Set(st.buffer_pool.logical_reads);
  em_.buffer_pool_cache_hits->Set(st.buffer_pool.cache_hits);
  em_.buffer_pool_disk_reads->Set(st.buffer_pool.disk_reads);
  em_.buffer_pool_disk_writes->Set(st.buffer_pool.disk_writes);

  em_.spill_files_created->Set(SpillFile::total_count());
  em_.spill_bytes_written->Set(SpillFile::total_bytes());
  em_.spill_live_files->Set(static_cast<double>(SpillFile::live_count()));
  em_.spill_live_bytes->Set(static_cast<double>(SpillFile::live_bytes()));

  em_.scheduler_tasks_run->Set(exec::parallel::TaskScheduler::total_tasks_run());
  em_.scheduler_workers_spawned->Set(
      exec::parallel::TaskScheduler::total_workers_spawned());

  AdmissionController::Stats adm = admission_.stats();
  em_.admission_queued_total->Set(static_cast<double>(adm.queued_total));
  em_.admission_rejected_total->Set(static_cast<double>(adm.rejected_total));
  em_.admission_timeouts_total->Set(static_cast<double>(adm.timeout_total));
  em_.admission_in_use_bytes->Set(static_cast<double>(adm.in_use_bytes));
  em_.admission_budget_bytes->Set(static_cast<double>(adm.budget_bytes));
  em_.statements_live->Set(static_cast<double>(statements_.live_count()));
  em_.query_log_dropped_total->Set(static_cast<double>(query_log_.dropped()));
  em_.query_log_cleared_total->Set(static_cast<double>(query_log_.cleared()));
}

void Database::RegisterSystemTables() {
  std::unique_ptr<SystemStorageManager> manager = MakeSystemStorageManager();
  manager->RegisterTable("sys.metrics", [this] { return MetricsRows(); });
  manager->RegisterTable("sys.query_log", [this] { return QueryLogRows(); });
  manager->RegisterTable("sys.plan_cache", [this] { return PlanCacheRows(); });
  manager->RegisterTable("sys.statements", [this] { return StatementRows(); });
  Status registered = storage_.storage_managers().Register(std::move(manager));
  (void)registered;  // fresh registry: "SYSTEM" cannot collide

  auto define = [this](const char* name, TableSchema schema) {
    TableDef def;
    def.name = name;
    def.schema = std::move(schema);
    def.storage_manager = "SYSTEM";
    // Nominal stats: the optimizer should not treat a system view as
    // empty (rows materialize at scan time).
    def.stats.row_count = 64;
    def.stats.page_count = 1;
    if (catalog_.CreateTable(def).ok()) {
      (void)storage_.CreateTable(def);
    }
  };

  TableSchema metrics;
  metrics.AddColumn(ColumnDef{"name", DataType::String(), false});
  metrics.AddColumn(ColumnDef{"kind", DataType::String(), false});
  metrics.AddColumn(ColumnDef{"value", DataType::Double(), false});
  define("sys.metrics", std::move(metrics));

  TableSchema qlog;
  qlog.AddColumn(ColumnDef{"id", DataType::Int(), false});
  qlog.AddColumn(ColumnDef{"ts_us", DataType::Int(), false});
  qlog.AddColumn(ColumnDef{"sql", DataType::String(), false});
  qlog.AddColumn(ColumnDef{"status", DataType::String(), false});
  qlog.AddColumn(ColumnDef{"error", DataType::String(), true});
  qlog.AddColumn(ColumnDef{"rows", DataType::Int(), false});
  qlog.AddColumn(ColumnDef{"parse_us", DataType::Int(), false});
  qlog.AddColumn(ColumnDef{"bind_us", DataType::Int(), false});
  qlog.AddColumn(ColumnDef{"rewrite_us", DataType::Int(), false});
  qlog.AddColumn(ColumnDef{"optimize_us", DataType::Int(), false});
  qlog.AddColumn(ColumnDef{"refine_us", DataType::Int(), false});
  qlog.AddColumn(ColumnDef{"execute_us", DataType::Int(), false});
  qlog.AddColumn(ColumnDef{"total_us", DataType::Int(), false});
  qlog.AddColumn(ColumnDef{"plan_cache_hit", DataType::Int(), false});
  qlog.AddColumn(ColumnDef{"spill_bytes", DataType::Int(), false});
  qlog.AddColumn(ColumnDef{"peak_memory_bytes", DataType::Int(), false});
  qlog.AddColumn(ColumnDef{"parallelism", DataType::Int(), false});
  qlog.AddColumn(ColumnDef{"slow", DataType::Int(), false});
  define("sys.query_log", std::move(qlog));

  TableSchema stmts;
  stmts.AddColumn(ColumnDef{"id", DataType::Int(), false});
  stmts.AddColumn(ColumnDef{"sql", DataType::String(), false});
  stmts.AddColumn(ColumnDef{"status", DataType::String(), false});
  stmts.AddColumn(ColumnDef{"phase", DataType::String(), false});
  stmts.AddColumn(ColumnDef{"start_ts_us", DataType::Int(), false});
  stmts.AddColumn(ColumnDef{"total_us", DataType::Int(), false});
  stmts.AddColumn(ColumnDef{"peak_memory_bytes", DataType::Int(), false});
  define("sys.statements", std::move(stmts));

  TableSchema pcache;
  pcache.AddColumn(ColumnDef{"position", DataType::Int(), false});
  pcache.AddColumn(ColumnDef{"sql", DataType::String(), false});
  pcache.AddColumn(ColumnDef{"num_params", DataType::Int(), false});
  pcache.AddColumn(ColumnDef{"cost", DataType::Double(), false});
  pcache.AddColumn(ColumnDef{"cardinality", DataType::Double(), false});
  pcache.AddColumn(ColumnDef{"catalog_version", DataType::Int(), false});
  pcache.AddColumn(ColumnDef{"fresh", DataType::Int(), false});
  define("sys.plan_cache", std::move(pcache));
}

std::vector<Row> Database::MetricsRows() {
  RefreshMetricsMirrors();
  std::vector<Row> rows;
  for (const obs::MetricsRegistry::Sample& s : metrics_registry_.Snapshot()) {
    rows.push_back(Row({Value::String(s.name), Value::String(s.kind),
                        Value::Double(s.value)}));
  }
  return rows;
}

std::vector<Row> Database::QueryLogRows() const {
  std::vector<Row> rows;
  for (const obs::QueryLogEntry& e : query_log_.Snapshot()) {
    auto u = [](uint64_t v) { return Value::Int(static_cast<int64_t>(v)); };
    rows.push_back(Row({u(e.id), Value::Int(e.ts_us), Value::String(e.sql),
                        Value::String(e.status),
                        e.error.empty() ? Value::Null()
                                        : Value::String(e.error),
                        u(e.rows), u(e.parse_us), u(e.bind_us),
                        u(e.rewrite_us), u(e.optimize_us), u(e.refine_us),
                        u(e.execute_us), u(e.total_us),
                        Value::Int(e.plan_cache_hit ? 1 : 0), u(e.spill_bytes),
                        u(e.peak_memory_bytes), Value::Int(e.parallelism),
                        Value::Int(e.slow ? 1 : 0)}));
  }
  return rows;
}

std::vector<Row> Database::StatementRows() const {
  std::vector<Row> rows;
  for (const StatementSnapshot& s : statements_.Snapshot()) {
    rows.push_back(
        Row({Value::Int(s.id), Value::String(s.sql), Value::String(s.status),
             Value::String(s.phase), Value::Int(s.start_ts_us),
             Value::Int(s.total_us),
             Value::Int(static_cast<int64_t>(s.peak_memory_bytes))}));
  }
  return rows;
}

std::vector<Row> Database::PlanCacheRows() const {
  std::vector<Row> rows;
  int64_t position = 0;  // 0 = most recently used
  for (const auto& [key, ps] : plan_cache_.Entries()) {
    // The cache key is `normalized SQL \x1f knob fingerprint`; expose
    // only the SQL half.
    std::string sql = key.substr(0, key.find('\x1f'));
    rows.push_back(Row({Value::Int(position++), Value::String(std::move(sql)),
                        Value::Int(static_cast<int64_t>(ps->num_params)),
                        Value::Double(ps->plan_cost),
                        Value::Double(ps->plan_cardinality),
                        Value::Int(static_cast<int64_t>(ps->catalog_version)),
                        Value::Int(ps->FreshAgainst(catalog_) ? 1 : 0)}));
  }
  return rows;
}

Status Database::RejectSystemTarget(const std::string& name,
                                    const char* verb) const {
  if (!IsSystemTableName(name)) return Status::OK();
  return Status::InvalidArgument(std::string("cannot ") + verb + " '" +
                                 IdentUpper(name) +
                                 "': sys.* tables are read-only");
}

}  // namespace starburst
