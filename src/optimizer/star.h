#ifndef STARBURST_OPTIMIZER_STAR_H_
#define STARBURST_OPTIMIZER_STAR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "optimizer/cost_model.h"
#include "optimizer/plan.h"

namespace starburst::optimizer {

class PlanGenerator;

/// What a STAR sees when expanded. Which fields are meaningful depends on
/// the nonterminal being expanded (TableAccess / JoinMethod / Glue /
/// Distinct).
struct StarContext {
  const Catalog* catalog = nullptr;
  const qgm::Box* box = nullptr;

  // TableAccess: plan one iterator's access to its stored table.
  const qgm::Quantifier* quantifier = nullptr;
  std::vector<const qgm::Expr*> local_preds;
  std::vector<size_t> needed_columns;  // scan column subset (empty = all)

  // JoinMethod: join two planned streams.
  PlanPtr outer, inner;
  std::vector<const qgm::Expr*> join_preds;
  JoinKind kind = JoinKind::kRegular;
  std::string set_function;
  /// The inner stream re-evaluates per outer row (correlated): only
  /// dependent nested loops apply, and TEMP must not cache it.
  bool inner_dependent = false;
  /// For quantified-compare joins (§7 join kinds): outer-expr vs inner.
  const qgm::Expr* quant_compare = nullptr;

  // Glue: achieve required properties on a planned stream.
  PlanPtr glue_input;
  std::vector<std::pair<size_t, bool>> required_order;
  std::string required_site = "local";
};

/// A STrategy Alternative Rule (§6, [LOHM88]): a grammar-like production
/// that defines a nonterminal in terms of LOLEPOPs and other nonterminals.
/// `generate` appends zero or more alternative plans; it may recursively
/// expand other nonterminals through the generator.
struct Star {
  std::string name;
  std::string expands;  // the nonterminal this rule defines
  /// Alternatives with rank above the generator's threshold are pruned
  /// ("alternatives exceeding a given rank can be pruned").
  int rank = 0;
  std::function<Status(PlanGenerator&, const StarContext&,
                       std::vector<PlanPtr>*)> generate;
};

/// The STAR array. The default registry expresses sequential and index
/// access, the three join methods with every join kind, TEMP
/// materialization, order/site glue, and duplicate elimination — the
/// R*-strategy repertoire the paper claims "in under 20 rules".
class StarRegistry {
 public:
  /// Empty registry; call RegisterDefaultStars or Add.
  StarRegistry() = default;

  Status Add(Star star);
  const std::vector<Star>* ForNonterminal(const std::string& nonterminal) const;
  size_t size() const { return count_; }
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, std::vector<Star>> by_nonterminal_;
  size_t count_ = 0;
};

/// Installs the base system's STARs.
void RegisterDefaultStars(StarRegistry* registry);

/// Evaluates STARs, expanding nonterminals "much as is done by a macro
/// processor, until all STARs are fully refined to LOLEPOPs", then costing
/// through the per-LOLEPOP property functions. Orthogonal to both the rule
/// array and the search strategy.
class PlanGenerator {
 public:
  struct Options {
    /// Prune STARs whose rank exceeds this.
    int max_rank = 1000;
  };

  struct Stats {
    uint64_t stars_evaluated = 0;
    uint64_t plans_generated = 0;
  };

  PlanGenerator(const StarRegistry* registry, const CostModel* cost,
                const Catalog* catalog, Options options = Options{1000})
      : registry_(registry), cost_(cost), catalog_(catalog), options_(options) {}

  /// All alternatives for a nonterminal in the given context, each fully
  /// refined and costed.
  Result<std::vector<PlanPtr>> Expand(const std::string& nonterminal,
                                      const StarContext& ctx);

  const CostModel& cost() const { return *cost_; }
  const Catalog* catalog() const { return catalog_; }
  Stats& stats() { return stats_; }
  const Options& options() const { return options_; }

  void CountPlan() { ++stats_.plans_generated; }

 private:
  const StarRegistry* registry_;
  const CostModel* cost_;
  const Catalog* catalog_;
  Options options_;
  Stats stats_;
};

}  // namespace starburst::optimizer

#endif  // STARBURST_OPTIMIZER_STAR_H_
