# Empty compiler generated dependencies file for starburst_rewrite.
# This may be replaced when dependencies are built.
