#ifndef STARBURST_COMMON_ROW_BATCH_H_
#define STARBURST_COMMON_ROW_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/row.h"

namespace starburst {

/// A fixed-capacity block of tuples flowing between QES operators — the
/// batch-at-a-time (X100-style) counterpart of the single Row the paper's
/// lazy streams pass. Row storage is owned by the batch and reused across
/// Clear(), so a steady-state pipeline performs no per-row allocation:
/// producers fill slots in place via AppendSlot(), filters mark survivors
/// in a selection vector instead of copying them out.
///
/// Two sizes matter:
///   - the physical size: rows filled by the producer (<= fill limit);
///   - the active size (`size()`): rows visible to consumers — the
///     selection vector, when set, narrows the physical rows to the
///     subset that passed downstream predicates.
/// The selection vector holds strictly increasing physical indices, so
/// Compact() can squash survivors in place with forward moves.
///
/// The fill limit lets a consumer cap how many rows the producer stages
/// without shrinking capacity (LIMIT clamps it to the rows remaining so a
/// scan never overfetches); Clear() preserves it for the next refill.
class RowBatch {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  RowBatch() = default;
  explicit RowBatch(size_t capacity) { Reset(capacity); }

  RowBatch(const RowBatch&) = delete;
  RowBatch& operator=(const RowBatch&) = delete;

  /// Sizes the batch to `capacity` rows (>= 1). Keeps existing row storage
  /// when the capacity is unchanged — dependent joins re-Open batched
  /// subtrees per outer row, and their staging batches must not churn.
  void Reset(size_t capacity) {
    if (capacity == 0) capacity = 1;
    if (capacity != rows_.size()) {
      rows_.resize(capacity);
      rows_.shrink_to_fit();
    }
    limit_ = capacity;
    Clear();
  }

  size_t capacity() const { return rows_.size(); }

  /// Active rows: selected rows if a selection vector is set, else all
  /// physically filled rows.
  size_t size() const { return sel_active_ ? sel_.size() : count_; }
  bool empty() const { return size() == 0; }

  /// i-th active row (selection-aware).
  const Row& row(size_t i) const { return rows_[physical_index(i)]; }
  Row& row(size_t i) { return rows_[physical_index(i)]; }

  /// Physical index of the i-th active row — what a refining filter must
  /// store into its narrowed selection vector.
  size_t physical_index(size_t i) const { return sel_active_ ? sel_[i] : i; }

  size_t physical_size() const { return count_; }
  const Row& physical_row(size_t i) const { return rows_[i]; }

  /// --- producer side -----------------------------------------------------

  /// True once the producer has staged `fill_limit()` rows.
  bool full() const { return count_ >= limit_; }
  /// Rows the producer may still stage.
  size_t remaining() const { return limit_ > count_ ? limit_ - count_ : 0; }

  /// Claims the next physical slot for in-place filling (storage from the
  /// slot's previous tenant is reused). Caller must check !full() first.
  Row* AppendSlot() { return &rows_[count_++]; }
  /// Un-claims the most recently appended slot (predicate rejected the row).
  void PopLast() { --count_; }

  /// Bulk producers (storage scans) write a run of rows directly into the
  /// physical slot array starting at physical_size(), then account for them
  /// here. `n` must be <= remaining().
  Row* raw_slots() { return rows_.data(); }
  void AdvanceFilled(size_t n) { count_ += n; }

  void Append(Row r) { rows_[count_++] = std::move(r); }

  /// Caps how many rows producers stage; clamped to [1, capacity].
  void set_fill_limit(size_t n) {
    if (n == 0) n = 1;
    if (n > rows_.size()) n = rows_.size();
    limit_ = n;
  }
  size_t fill_limit() const { return limit_; }

  /// --- selection ---------------------------------------------------------

  bool selection_active() const { return sel_active_; }

  /// Installs a selection of physical indices (strictly increasing; each
  /// must be < physical_size()). An empty vector selects nothing.
  void SetSelection(std::vector<uint32_t> sel) {
    sel_ = std::move(sel);
    sel_active_ = true;
  }

  /// Squashes the selected rows to the front and drops the selection, so
  /// active row i == physical row i again.
  void Compact() {
    if (!sel_active_) return;
    for (size_t i = 0; i < sel_.size(); ++i) {
      if (sel_[i] != i) rows_[i] = std::move(rows_[sel_[i]]);
    }
    count_ = sel_.size();
    sel_active_ = false;
  }

  /// --- bulk transfer -----------------------------------------------------

  /// Moves every active row into `out` (appending), then clears the batch.
  void MoveRowsTo(std::vector<Row>* out) {
    size_t n = size();
    if (out->capacity() < out->size() + n) out->reserve(out->size() + n);
    for (size_t i = 0; i < n; ++i) out->push_back(std::move(row(i)));
    Clear();
  }

  /// Forgets all rows (storage retained) and drops the selection; the fill
  /// limit is preserved.
  void Clear() {
    count_ = 0;
    sel_.clear();
    sel_active_ = false;
  }

 private:
  std::vector<Row> rows_;  // slot storage, reused across Clear()
  size_t count_ = 0;       // physical rows staged
  size_t limit_ = 0;       // producer fill cap (<= rows_.size())
  std::vector<uint32_t> sel_;
  bool sel_active_ = false;
};

}  // namespace starburst

#endif  // STARBURST_COMMON_ROW_BATCH_H_
