#ifndef STARBURST_STORAGE_RECORD_CODEC_H_
#define STARBURST_STORAGE_RECORD_CODEC_H_

#include <string>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/row.h"

namespace starburst {

/// Variable-length record encoding used by the heap storage manager.
/// Self-describing: per value a type tag, then the payload.
class VarRecordCodec {
 public:
  static std::string Encode(const Row& row);
  /// Appends the encoding to `out` (buffer reused across rows by callers
  /// on allocation-sensitive paths like spill writers).
  static void EncodeTo(const Row& row, std::string* out);
  static Result<Row> Decode(const std::string& bytes);
  static Result<Row> Decode(const uint8_t* data, size_t len);
  /// Decodes into an existing row, reusing its value-vector capacity —
  /// the allocation-free path batched scans refill blocks through.
  static Status DecodeInto(const uint8_t* data, size_t len, Row* row);
};

/// Fixed-offset record encoding used by the paper's example fixed-length
/// storage manager ("handles fixed-length records only -- but extremely
/// efficiently"). Only fixed-width column types are admissible.
class FixedRecordCodec {
 public:
  /// Fails unless every column is BOOL, INT, or DOUBLE.
  static Result<FixedRecordCodec> ForSchema(const TableSchema& schema);

  size_t record_size() const { return record_size_; }

  /// `out` must have record_size() bytes.
  Status Encode(const Row& row, uint8_t* out) const;
  Result<Row> Decode(const uint8_t* data) const;

 private:
  FixedRecordCodec() = default;

  std::vector<TypeId> column_types_;
  std::vector<size_t> offsets_;
  size_t bitmap_bytes_ = 0;
  size_t record_size_ = 0;
};

}  // namespace starburst

#endif  // STARBURST_STORAGE_RECORD_CODEC_H_
