#include "exec/stream.h"

namespace starburst::exec {

Result<Value> ExecContext::LookupParam(const qgm::Quantifier* q,
                                       size_t column) const {
  for (auto it = param_stack_.rbegin(); it != param_stack_.rend(); ++it) {
    auto found = (*it)->values.find(ParamKey{q, column});
    if (found != (*it)->values.end()) return found->second;
  }
  return Status::Internal("unbound correlation parameter " +
                          (q != nullptr ? q->DisplayName() : std::string("?")) +
                          "." + std::to_string(column));
}

Result<std::vector<Row>> DrainOperator(Operator* op) {
  std::vector<Row> rows;
  Row row;
  while (true) {
    STARBURST_ASSIGN_OR_RETURN(bool more, op->Next(&row));
    if (!more) break;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace starburst::exec
