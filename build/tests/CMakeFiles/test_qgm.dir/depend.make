# Empty dependencies file for test_qgm.
# This may be replaced when dependencies are built.
