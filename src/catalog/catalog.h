#ifndef STARBURST_CATALOG_CATALOG_H_
#define STARBURST_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/function_registry.h"
#include "catalog/schema.h"
#include "catalog/statistics.h"
#include "common/result.h"

namespace starburst {

/// Metadata for a stored (base) table. `storage_manager` names the Core
/// storage manager the table was created under ("HEAP" by default; the
/// paper's fixed-length-record manager is "FIXED"); Corona "must ensure
/// that the correct storage manager is invoked when a table is accessed".
struct TableDef {
  std::string name;
  TableSchema schema;
  std::string storage_manager = "HEAP";
  /// Site the table is stored at; "local" unless simulating distribution.
  /// Non-local tables get a SHIP LOLEPOP glued above their access plans.
  std::string site = "local";
  /// Column index sets that are unique keys (first one = primary key when
  /// present). Drives rewrite Rule 1's "at most one tuple matches" test.
  std::vector<std::vector<size_t>> unique_keys;
  TableStats stats;

  bool ColumnsContainUniqueKey(const std::vector<size_t>& columns) const;
};

/// Metadata for an access-method attachment on a table (§1: B-trees are
/// built in; a DBC can attach new kinds, e.g. an R-tree).
struct IndexDef {
  std::string name;
  std::string table_name;
  std::vector<std::string> key_columns;
  bool unique = false;
  std::string access_method = "BTREE";  // "BTREE", "RTREE", DBC-defined
};

/// A named view: its Hydrogen text is stored and merged/expanded at use
/// sites by the binder, hidden from the query writer (§5).
struct ViewDef {
  std::string name;
  std::vector<std::string> column_names;  // optional renames
  std::string body_sql;                   // the defining SELECT
};

/// The system catalog: tables, views, attachments, statistics, and the
/// function registry. One per Database instance.
class Catalog {
 public:
  Catalog() : functions_(std::make_unique<FunctionRegistry>()) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // -- tables --
  Status CreateTable(TableDef def);
  Status DropTable(const std::string& name);
  Result<const TableDef*> GetTable(const std::string& name) const;
  Result<TableDef*> GetMutableTable(const std::string& name);
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // -- views --
  Status CreateView(ViewDef def);
  Status DropView(const std::string& name);
  Result<const ViewDef*> GetView(const std::string& name) const;
  bool HasView(const std::string& name) const;

  // -- attachments (indexes) --
  Status CreateIndex(IndexDef def);
  Status DropIndex(const std::string& name);
  Result<const IndexDef*> GetIndex(const std::string& name) const;
  /// All attachments on `table_name`.
  std::vector<const IndexDef*> IndexesOnTable(const std::string& table_name) const;

  // -- statistics --
  Status UpdateStats(const std::string& table_name, TableStats stats);

  FunctionRegistry& functions() { return *functions_; }
  const FunctionRegistry& functions() const { return *functions_; }

 private:
  std::map<std::string, TableDef> tables_;   // keyed by upper-cased name
  std::map<std::string, ViewDef> views_;
  std::map<std::string, IndexDef> indexes_;
  std::unique_ptr<FunctionRegistry> functions_;
};

}  // namespace starburst

#endif  // STARBURST_CATALOG_CATALOG_H_
