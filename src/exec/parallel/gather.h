#ifndef STARBURST_EXEC_PARALLEL_GATHER_H_
#define STARBURST_EXEC_PARALLEL_GATHER_H_

#include <map>
#include <memory>
#include <vector>

#include "exec/expr_eval.h"
#include "exec/parallel/morsel.h"
#include "exec/parallel/shared_hash_table.h"
#include "exec/parallel/task_scheduler.h"
#include "exec/stream.h"

namespace starburst::exec::parallel {

/// Staging area of the partition exchange feeding a parallel GROUP BY:
/// phase A workers append rows to staged[worker][partition]; phase B's
/// per-partition aggregation clones read every worker's vector for their
/// partition (disjoint writes then disjoint reads — no locking).
struct AggExchange {
  void Reset(size_t workers, size_t partitions) {
    staged.assign(workers == 0 ? 1 : workers,
                  std::vector<std::vector<Row>>(partitions == 0 ? 1
                                                                : partitions));
  }
  std::vector<std::vector<std::vector<Row>>> staged;
};

/// Everything the clones of one Gather share: the scheduler, per-scan
/// morsel dispensers, per-join shared build tables (with their build
/// pipelines), and the aggregation exchange. Owned by the GatherOp; the
/// clones hold raw pointers into it.
struct ParallelPlanContext {
  explicit ParallelPlanContext(size_t parallelism_)
      : parallelism(parallelism_ == 0 ? 1 : parallelism_),
        scheduler(parallelism == 0 ? 0 : parallelism - 1) {}

  size_t parallelism;
  TaskScheduler scheduler;

  struct ScanSource {
    const TableDef* table = nullptr;
    MorselSource morsels;
  };
  /// Keyed by the scan's optimizer Plan node (one dispenser per scan).
  std::map<const void*, std::unique_ptr<ScanSource>> scans;

  struct JoinBuild {
    SharedHashTable table;
    /// Build-side key columns (the inner slots of the join's equi keys).
    std::vector<size_t> key_slots;
    /// P clones of the join's inner subtree, drained morsel-driven to
    /// fill `table` before the probe phase opens.
    std::vector<OperatorPtr> build_clones;
  };
  /// Post-order (innermost joins first): builds run in list order, so a
  /// build pipeline may itself probe earlier entries.
  std::vector<std::unique_ptr<JoinBuild>> builds;
  std::map<const void*, JoinBuild*> builds_by_node;

  AggExchange exchange;  // agg mode only
};

/// Gather: runs P pipeline clones to completion on Open (shared-build
/// join phases first, then the probe/output phase), buffers their output,
/// and streams it single-threaded — everything above the Gather composes
/// unchanged.
OperatorPtr MakeGatherOp(std::unique_ptr<ParallelPlanContext> pctx,
                         std::vector<OperatorPtr> pipelines);

/// Aggregating Gather (partition exchange): phase A drains the P input
/// clones and routes each row by hash of its group key to a partition;
/// phase B runs one aggregation clone per partition (each reading its
/// partition through an exchange-source op) and buffers their output.
/// `partition_keys[w]` are clone w's compiled group-key expressions
/// (empty for a global aggregate, which must use a single agg clone).
OperatorPtr MakeGatherAggOp(
    std::unique_ptr<ParallelPlanContext> pctx,
    std::vector<OperatorPtr> input_clones,
    std::vector<std::vector<CompiledExprPtr>> partition_keys,
    std::vector<OperatorPtr> agg_clones);

/// Source feeding one aggregation clone: yields every worker's staged
/// rows for `partition`. Valid to open only after phase A completed.
OperatorPtr MakeExchangeSourceOp(const AggExchange* exchange,
                                 size_t partition);

}  // namespace starburst::exec::parallel

#endif  // STARBURST_EXEC_PARALLEL_GATHER_H_
