file(REMOVE_RECURSE
  "CMakeFiles/starburst_catalog.dir/catalog/catalog.cc.o"
  "CMakeFiles/starburst_catalog.dir/catalog/catalog.cc.o.d"
  "CMakeFiles/starburst_catalog.dir/catalog/function_registry.cc.o"
  "CMakeFiles/starburst_catalog.dir/catalog/function_registry.cc.o.d"
  "CMakeFiles/starburst_catalog.dir/catalog/schema.cc.o"
  "CMakeFiles/starburst_catalog.dir/catalog/schema.cc.o.d"
  "CMakeFiles/starburst_catalog.dir/catalog/statistics.cc.o"
  "CMakeFiles/starburst_catalog.dir/catalog/statistics.cc.o.d"
  "libstarburst_catalog.a"
  "libstarburst_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starburst_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
