#include "storage/rtree.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace starburst {

struct RTree::Node {
  bool leaf = true;
  Node* parent = nullptr;
  std::vector<Rect> rects;
  std::vector<Rid> rids;                         // leaf, parallel to rects
  std::vector<std::unique_ptr<Node>> children;   // internal, parallel to rects

  Rect Cover() const {
    Rect r = rects.empty() ? Rect{} : rects[0];
    for (size_t i = 1; i < rects.size(); ++i) r = r.Union(rects[i]);
    return r;
  }
};

RTree::RTree(size_t max_entries)
    : root_(std::make_unique<Node>()), max_entries_(max_entries) {
  assert(max_entries_ >= 4);
}

RTree::~RTree() = default;

RTree::Node* RTree::ChooseLeaf(const Rect& rect) {
  Node* node = root_.get();
  while (!node->leaf) {
    ++stats_.node_visits;
    size_t best = 0;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node->rects.size(); ++i) {
      double enlargement = node->rects[i].Enlargement(rect);
      double area = node->rects[i].Area();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = i;
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    node->rects[best] = node->rects[best].Union(rect);
    node = node->children[best].get();
  }
  ++stats_.node_visits;
  return node;
}

void RTree::SplitNode(Node* node) {
  ++stats_.splits;
  // Quadratic pick-seeds: the pair wasting the most area together.
  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node->rects.size(); ++i) {
    for (size_t j = i + 1; j < node->rects.size(); ++j) {
      double waste = node->rects[i].Union(node->rects[j]).Area() -
                     node->rects[i].Area() - node->rects[j].Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto take = [&](std::vector<size_t>* group, size_t idx) {
    group->push_back(idx);
  };
  std::vector<size_t> group_a, group_b;
  take(&group_a, seed_a);
  take(&group_b, seed_b);
  Rect cover_a = node->rects[seed_a];
  Rect cover_b = node->rects[seed_b];

  size_t min_fill = max_entries_ / 2;
  std::vector<bool> assigned(node->rects.size(), false);
  assigned[seed_a] = assigned[seed_b] = true;
  size_t remaining = node->rects.size() - 2;

  while (remaining > 0) {
    // Force-assign if one group must take everything left to reach min fill.
    if (group_a.size() + remaining == min_fill) {
      for (size_t i = 0; i < assigned.size(); ++i) {
        if (!assigned[i]) {
          take(&group_a, i);
          cover_a = cover_a.Union(node->rects[i]);
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }
    if (group_b.size() + remaining == min_fill) {
      for (size_t i = 0; i < assigned.size(); ++i) {
        if (!assigned[i]) {
          take(&group_b, i);
          cover_b = cover_b.Union(node->rects[i]);
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }
    // Pick-next: entry with the largest preference difference.
    size_t pick = 0;
    double best_diff = -1;
    for (size_t i = 0; i < assigned.size(); ++i) {
      if (assigned[i]) continue;
      double da = cover_a.Enlargement(node->rects[i]);
      double db = cover_b.Enlargement(node->rects[i]);
      double diff = da > db ? da - db : db - da;
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
      }
    }
    double da = cover_a.Enlargement(node->rects[pick]);
    double db = cover_b.Enlargement(node->rects[pick]);
    if (da < db || (da == db && group_a.size() <= group_b.size())) {
      take(&group_a, pick);
      cover_a = cover_a.Union(node->rects[pick]);
    } else {
      take(&group_b, pick);
      cover_b = cover_b.Union(node->rects[pick]);
    }
    assigned[pick] = true;
    --remaining;
  }

  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;

  auto extract = [&](const std::vector<size_t>& idxs, Node* dst) {
    for (size_t i : idxs) {
      dst->rects.push_back(node->rects[i]);
      if (node->leaf) {
        dst->rids.push_back(node->rids[i]);
      } else {
        node->children[i]->parent = dst;
        dst->children.push_back(std::move(node->children[i]));
      }
    }
  };

  Node scratch;
  scratch.leaf = node->leaf;
  extract(group_a, &scratch);
  extract(group_b, sibling.get());

  node->rects = std::move(scratch.rects);
  node->rids = std::move(scratch.rids);
  node->children = std::move(scratch.children);
  for (auto& c : node->children) c->parent = node;

  if (node->parent == nullptr) {
    // Grow a new root.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    Rect ra = node->Cover();
    Rect rb = sibling->Cover();
    node->parent = new_root.get();
    sibling->parent = new_root.get();
    new_root->rects = {ra, rb};
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(sibling));
    root_ = std::move(new_root);
    return;
  }

  Node* parent = node->parent;
  // Refresh this node's rect in the parent and add the sibling.
  for (size_t i = 0; i < parent->children.size(); ++i) {
    if (parent->children[i].get() == node) {
      parent->rects[i] = node->Cover();
      break;
    }
  }
  sibling->parent = parent;
  parent->rects.push_back(sibling->Cover());
  parent->children.push_back(std::move(sibling));
  if (parent->rects.size() > max_entries_) SplitNode(parent);
}

void RTree::AdjustUpward(Node* node) {
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    for (size_t i = 0; i < parent->children.size(); ++i) {
      if (parent->children[i].get() == node) {
        parent->rects[i] = node->Cover();
        break;
      }
    }
    node = parent;
  }
}

void RTree::Insert(const Rect& rect, Rid rid) {
  Node* leaf = ChooseLeaf(rect);
  leaf->rects.push_back(rect);
  leaf->rids.push_back(rid);
  ++entry_count_;
  if (leaf->rects.size() > max_entries_) {
    SplitNode(leaf);
  } else {
    AdjustUpward(leaf);
  }
}

Status RTree::Remove(const Rect& rect, Rid rid) {
  // Depth-first hunt for the exact entry.
  std::vector<Node*> stack = {root_.get()};
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    ++stats_.node_visits;
    if (node->leaf) {
      for (size_t i = 0; i < node->rects.size(); ++i) {
        if (node->rects[i] == rect && node->rids[i] == rid) {
          node->rects.erase(node->rects.begin() + i);
          node->rids.erase(node->rids.begin() + i);
          --entry_count_;
          AdjustUpward(node);
          return Status::OK();
        }
      }
    } else {
      for (size_t i = 0; i < node->rects.size(); ++i) {
        if (node->rects[i].Intersects(rect)) {
          stack.push_back(node->children[i].get());
        }
      }
    }
  }
  return Status::NotFound("entry not in R-tree");
}

std::vector<Rid> RTree::Search(const Rect& window) {
  std::vector<Rid> out;
  std::vector<Node*> stack = {root_.get()};
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    ++stats_.node_visits;
    if (node->leaf) {
      for (size_t i = 0; i < node->rects.size(); ++i) {
        if (window.Intersects(node->rects[i])) out.push_back(node->rids[i]);
      }
    } else {
      for (size_t i = 0; i < node->rects.size(); ++i) {
        if (window.Intersects(node->rects[i])) {
          stack.push_back(node->children[i].get());
        }
      }
    }
  }
  return out;
}

}  // namespace starburst
