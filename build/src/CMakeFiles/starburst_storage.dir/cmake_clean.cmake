file(REMOVE_RECURSE
  "CMakeFiles/starburst_storage.dir/storage/attachment.cc.o"
  "CMakeFiles/starburst_storage.dir/storage/attachment.cc.o.d"
  "CMakeFiles/starburst_storage.dir/storage/btree.cc.o"
  "CMakeFiles/starburst_storage.dir/storage/btree.cc.o.d"
  "CMakeFiles/starburst_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/starburst_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/starburst_storage.dir/storage/fixed_storage.cc.o"
  "CMakeFiles/starburst_storage.dir/storage/fixed_storage.cc.o.d"
  "CMakeFiles/starburst_storage.dir/storage/heap_storage.cc.o"
  "CMakeFiles/starburst_storage.dir/storage/heap_storage.cc.o.d"
  "CMakeFiles/starburst_storage.dir/storage/page.cc.o"
  "CMakeFiles/starburst_storage.dir/storage/page.cc.o.d"
  "CMakeFiles/starburst_storage.dir/storage/record_codec.cc.o"
  "CMakeFiles/starburst_storage.dir/storage/record_codec.cc.o.d"
  "CMakeFiles/starburst_storage.dir/storage/rtree.cc.o"
  "CMakeFiles/starburst_storage.dir/storage/rtree.cc.o.d"
  "CMakeFiles/starburst_storage.dir/storage/storage_engine.cc.o"
  "CMakeFiles/starburst_storage.dir/storage/storage_engine.cc.o.d"
  "CMakeFiles/starburst_storage.dir/storage/storage_manager.cc.o"
  "CMakeFiles/starburst_storage.dir/storage/storage_manager.cc.o.d"
  "libstarburst_storage.a"
  "libstarburst_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starburst_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
