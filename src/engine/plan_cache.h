#ifndef STARBURST_ENGINE_PLAN_CACHE_H_
#define STARBURST_ENGINE_PLAN_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "exec/stream.h"
#include "obs/op_stats.h"
#include "optimizer/optimizer.h"
#include "qgm/box.h"
#include "rewrite/rule_engine.h"

namespace starburst {

/// One compiled SELECT: the whole Figure-1 compile-time artifact (QGM,
/// chosen plan, refined operator tree) kept re-executable, the way
/// Starburst stored refined plans and re-ran them without re-compiling.
/// Owned via shared_ptr so a handle returned by Database::Prepare stays
/// valid even after the LRU evicts (or an invalidation drops) the cache
/// entry.
///
/// Member order is destruction order in reverse: the operator tree holds
/// pointers into the optimizer's per-box plans, which point into the
/// graph — so `root` must die before `optimizer`, which must die before
/// `graph` (members are destroyed bottom-up).
struct PreparedStatement {
  // -- identity --
  std::string sql;  // original statement text (for recompiles)
  size_t num_params = 0;

  // -- compile artifacts (see ordering note above) --
  std::unique_ptr<qgm::Graph> graph;
  std::unique_ptr<optimizer::Optimizer> optimizer;
  optimizer::PlanPtr plan;
  std::shared_ptr<obs::PlanStatsTree> stats_tree;  // null unless collecting
  exec::OperatorPtr root;

  // -- result shape --
  std::vector<std::string> column_names;  // visible columns only
  size_t visible_columns = 0;
  size_t hidden_order_columns = 0;
  size_t batch_size = 1;
  size_t reserve_hint = 0;
  /// Worker parallelism this plan was refined with — what an execution of
  /// this tree actually runs at, regardless of the session knob's current
  /// value (prepared handles survive knob changes uncompiled).
  int parallelism = 1;

  // -- optimizer annotations (metrics on cached executions) --
  double plan_cost = 0;
  double plan_cardinality = 0;

  // -- invalidation --
  /// Global catalog version at compile time: while the catalog still
  /// reports this version, the plan is trivially fresh.
  uint64_t catalog_version = 0;
  /// Per-object stamps for every table/view the binder resolved
  /// (transitively, through views). When the global version has moved,
  /// the plan is fresh iff every stamp still matches — so unrelated DDL
  /// does not invalidate.
  std::vector<std::pair<std::string, uint64_t>> dependencies;

  /// True while no referenced object changed since compilation.
  bool FreshAgainst(const Catalog& catalog) const;
};

using PreparedStatementPtr = std::shared_ptr<PreparedStatement>;

/// LRU cache of compiled SELECT statements, keyed on (normalized SQL,
/// session-knob fingerprint). Session knobs key-miss rather than
/// invalidate: two parallelism settings hold two entries side by side.
/// DDL and ANALYZE invalidate through the catalog version check at
/// lookup time — stale entries are dropped, never served.
///
/// All operations are internally serialized: concurrent sessions share
/// one cache, and lookups mutate LRU order. (The compiled trees handed
/// out are NOT made concurrently executable by this — two sessions must
/// not execute the same PreparedStatement at once.)
class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
    uint64_t evictions = 0;
  };

  explicit PlanCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  size_t capacity() const {
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
  }
  /// 0 disables caching and clears existing entries.
  void set_capacity(size_t n);
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  void Clear();

  /// The fresh entry under `key`, moved to the front of the LRU, or null.
  /// A stale entry (a dependency's catalog stamp moved) is dropped and
  /// counted as an invalidation; a fresh hit whose global version merely
  /// drifted (unrelated DDL) is re-stamped so later lookups take the
  /// cheap path. Absence is NOT counted here — the caller records a miss
  /// only when the statement turns out to be cacheable (see CountMiss).
  PreparedStatementPtr Lookup(const std::string& key, const Catalog& catalog);

  /// Inserts (or replaces) the entry under `key`, evicting the least
  /// recently used entry past capacity. No-op when disabled.
  void Insert(const std::string& key, PreparedStatementPtr stmt);

  /// LRU-ordered view (most recently used first) of the cached entries:
  /// (cache key, statement) pairs. Powers `sys.plan_cache`.
  std::vector<std::pair<std::string, PreparedStatementPtr>> Entries() const;

  void CountMiss() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
  }
  /// A plan reuse that bypassed Lookup (ExecutePrepared on a live
  /// handle); Lookup counts its own hits.
  void CountHit() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
  }
  void CountInvalidation() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.invalidations;
  }
  /// Snapshot by value: counters move concurrently.
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  struct Entry {
    std::string key;
    PreparedStatementPtr stmt;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
  Stats stats_;
};

/// Cache-key SQL normalization: collapses whitespace runs to one space,
/// uppercases outside single-quoted strings, trims, and drops a trailing
/// ';' — so `select * from t;` and `SELECT  *  FROM  t` share one plan.
std::string NormalizeSql(const std::string& sql);

}  // namespace starburst

#endif  // STARBURST_ENGINE_PLAN_CACHE_H_
