// E3 — §5's rule engine controls: sequential / priority / statistical
// control strategies, depth-first vs breadth-first QGM search, and the
// budget ("When the budget is exhausted, the processing stops at a
// consistent state (of QGM)").
//
// Workload: a tower of n nested table expressions, each a mergeable
// SELECT with a pushable predicate — every level gives the engine a merge
// and fold opportunity, so firings scale with n.

#include "bench_util.h"
#include "parser/parser.h"
#include "qgm/binder.h"
#include "rewrite/rule_engine.h"

using namespace starburst;
using namespace starburst::bench;
using rewrite::RuleEngine;

namespace {

std::string NestedQuery(int depth) {
  // SELECT k, v FROM (... (SELECT k, v FROM base WHERE v > 0) ...) WHERE ...
  std::string sql = "SELECT k, v FROM base WHERE v > 0";
  for (int level = 1; level < depth; ++level) {
    sql = "SELECT k, v FROM (" + sql + ") l" + std::to_string(level) +
          " WHERE v > " + std::to_string(level);
  }
  return sql;
}

}  // namespace

int main() {
  Catalog catalog;
  TableDef base;
  base.name = "base";
  base.schema =
      TableSchema({{"k", DataType::Int(), false}, {"v", DataType::Int(), true}});
  (void)catalog.CreateTable(base);
  RuleEngine engine = rewrite::MakeDefaultRuleEngine();

  auto bind = [&](int depth) {
    auto parsed = Parser::ParseQueryText(NestedQuery(depth));
    qgm::Binder binder(&catalog);
    auto graph = binder.BindQuery(**parsed);
    if (!graph.ok()) std::exit(1);
    return std::move(*graph);
  };

  std::printf("E3a: firings and time vs. nesting depth (sequential, DFS)\n");
  std::printf("%6s %8s %8s %12s %10s\n", "depth", "fired", "passes",
              "conditions", "time us");
  for (int depth : {2, 4, 8, 16, 32}) {
    auto graph = bind(depth);
    Timer t;
    auto stats = engine.Run(graph.get(), &catalog, RuleEngine::Options{});
    double us = t.ElapsedUs();
    if (!stats.ok()) return 1;
    std::printf("%6d %8d %8d %12d %10.0f\n", depth, stats->rules_fired,
                stats->passes, stats->conditions_evaluated, us);
  }

  std::printf("\nE3b: control strategies (depth 16) — same fixpoint, "
              "different rule-selection overhead\n");
  std::printf("%-12s %8s %12s %10s\n", "strategy", "fired", "conditions",
              "time us");
  struct {
    const char* name;
    RuleEngine::ControlStrategy control;
  } strategies[] = {
      {"sequential", RuleEngine::ControlStrategy::kSequential},
      {"priority", RuleEngine::ControlStrategy::kPriority},
      {"statistical", RuleEngine::ControlStrategy::kStatistical},
  };
  for (const auto& s : strategies) {
    auto graph = bind(16);
    RuleEngine::Options options;
    options.control = s.control;
    options.seed = 1234;
    Timer t;
    auto stats = engine.Run(graph.get(), &catalog, options);
    double us = t.ElapsedUs();
    if (!stats.ok()) return 1;
    std::printf("%-12s %8d %12d %10.0f\n", s.name, stats->rules_fired,
                stats->conditions_evaluated, us);
  }

  std::printf("\nE3c: search order (depth 16)\n");
  std::printf("%-14s %8s %8s\n", "search", "fired", "passes");
  for (auto [name, order] :
       {std::pair<const char*, RuleEngine::SearchOrder>{
            "depth-first", RuleEngine::SearchOrder::kDepthFirst},
        {"breadth-first", RuleEngine::SearchOrder::kBreadthFirst}}) {
    auto graph = bind(16);
    RuleEngine::Options options;
    options.search = order;
    auto stats = engine.Run(graph.get(), &catalog, options);
    if (!stats.ok()) return 1;
    std::printf("%-14s %8d %8d\n", name, stats->rules_fired, stats->passes);
  }

  std::printf("\nE3d: budget — partial rewriting, always consistent\n");
  std::printf("%8s %8s %11s %12s\n", "budget", "fired", "exhausted",
              "QGM valid");
  for (int budget : {0, 1, 2, 4, 8, 16, 64, -1}) {
    auto graph = bind(16);
    RuleEngine::Options options;
    options.budget = budget;
    auto stats = engine.Run(graph.get(), &catalog, options);
    if (!stats.ok()) return 1;
    std::printf("%8d %8d %11s %12s\n", budget, stats->rules_fired,
                stats->budget_exhausted ? "yes" : "no",
                graph->Validate().ok() ? "yes" : "NO");
  }
  std::printf("\nShape check: firings grow linearly with depth; all "
              "strategies reach the fixpoint; every budget cut-off leaves "
              "a consistent QGM.\n");
  return 0;
}
