#include "obs/op_stats.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace starburst::obs {

PlanStatsTree::Node* PlanStatsTree::AddNode(Node* parent, std::string name,
                                            double est_rows, double est_cost) {
  nodes_.emplace_back();
  Node* node = &nodes_.back();
  node->name = std::move(name);
  node->est_rows = est_rows;
  node->est_cost = est_cost;
  node->parent = parent;
  if (parent != nullptr) {
    parent->children.push_back(node);
  } else {
    roots_.push_back(node);
  }
  return node;
}

void PlanStatsTree::ResetActuals() {
  for (Node& node : nodes_) {
    node.actual.opens.store(0, std::memory_order_relaxed);
    node.actual.next_calls.store(0, std::memory_order_relaxed);
    node.actual.rows_out.store(0, std::memory_order_relaxed);
    node.actual.wall_us.store(0, std::memory_order_relaxed);
    node.actual.spill_runs.store(0, std::memory_order_relaxed);
    node.actual.spill_bytes.store(0, std::memory_order_relaxed);
    node.actual.peak_memory_bytes.store(0, std::memory_order_relaxed);
  }
}

PlanStatsTree::Node* PlanStatsTree::WrapRoot(std::string name,
                                             double est_rows,
                                             double est_cost) {
  nodes_.emplace_back();
  Node* node = &nodes_.back();
  node->name = std::move(name);
  node->est_rows = est_rows;
  node->est_cost = est_cost;
  for (Node* root : roots_) {
    root->parent = node;
    node->children.push_back(root);
  }
  roots_.clear();
  roots_.push_back(node);
  return node;
}

double PlanStatsTree::SelfUs(const Node& node) {
  double self = node.actual.wall_us;
  for (const Node* child : node.children) self -= child->actual.wall_us;
  return std::max(self, 0.0);
}

namespace {

void RenderNode(const PlanStatsTree::Node& node, int indent, bool with_actuals,
                std::ostringstream* out) {
  *out << std::string(static_cast<size_t>(indent) * 2, ' ') << node.name;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "  (est rows=%.6g cost=%.6g)",
                node.est_rows, node.est_cost);
  *out << buf;
  if (with_actuals && !node.synthetic) {
    if (node.actual.opens > 0) {
      std::snprintf(buf, sizeof(buf),
                    " (actual rows=%llu time=%.1fus loops=%llu)",
                    static_cast<unsigned long long>(node.actual.rows_out),
                    static_cast<double>(node.actual.wall_us),
                    static_cast<unsigned long long>(node.actual.opens));
      *out << buf;
      if (node.actual.peak_memory_bytes > 0 || node.actual.spill_runs > 0) {
        std::snprintf(
            buf, sizeof(buf),
            " (mem peak=%.1fKiB spill runs=%llu spilled=%.1fKiB)",
            static_cast<double>(node.actual.peak_memory_bytes) / 1024.0,
            static_cast<unsigned long long>(node.actual.spill_runs),
            static_cast<double>(node.actual.spill_bytes) / 1024.0);
        *out << buf;
      }
    } else {
      std::snprintf(buf, sizeof(buf), " (actual: never executed)");
      *out << buf;
    }
  }
  *out << "\n";
  for (const PlanStatsTree::Node* child : node.children) {
    RenderNode(*child, indent + 1, with_actuals, out);
  }
}

void CollectNodes(const PlanStatsTree::Node* node,
                  std::vector<const PlanStatsTree::Node*>* out) {
  out->push_back(node);
  for (const PlanStatsTree::Node* child : node->children) {
    CollectNodes(child, out);
  }
}

}  // namespace

std::string PlanStatsTree::Render(bool with_actuals) const {
  std::ostringstream out;
  for (const Node* root : roots_) {
    RenderNode(*root, 0, with_actuals, &out);
  }
  return out.str();
}

std::vector<const PlanStatsTree::Node*> PlanStatsTree::TopBySelfTime(
    size_t k) const {
  std::vector<const Node*> all;
  for (const Node* root : roots_) CollectNodes(root, &all);
  all.erase(std::remove_if(all.begin(), all.end(),
                           [](const Node* n) { return n->actual.opens == 0; }),
            all.end());
  std::stable_sort(all.begin(), all.end(), [](const Node* a, const Node* b) {
    return SelfUs(*a) > SelfUs(*b);
  });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace starburst::obs
