#include <gtest/gtest.h>

#include "parser/parser.h"
#include "qgm/binder.h"
#include "qgm/printer.h"

namespace starburst {
namespace {

using qgm::Box;
using qgm::BoxKind;
using qgm::QuantifierType;

class QgmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableDef quotations;
    quotations.name = "quotations";
    quotations.schema = TableSchema({{"partno", DataType::Int(), false},
                                     {"price", DataType::Double(), true},
                                     {"order_qty", DataType::Int(), true}});
    TableDef inventory;
    inventory.name = "inventory";
    inventory.schema = TableSchema({{"partno", DataType::Int(), false},
                                    {"onhand_qty", DataType::Int(), true},
                                    {"type", DataType::String(), true}});
    inventory.unique_keys = {{0}};
    ASSERT_TRUE(catalog_.CreateTable(quotations).ok());
    ASSERT_TRUE(catalog_.CreateTable(inventory).ok());
    ASSERT_TRUE(catalog_
                    .CreateView({"cpu_view",
                                 {},
                                 "SELECT partno, onhand_qty FROM inventory "
                                 "WHERE type = 'CPU'"})
                    .ok());
  }

  Result<std::unique_ptr<qgm::Graph>> Bind(const std::string& sql) {
    auto parsed = Parser::ParseQueryText(sql);
    if (!parsed.ok()) return parsed.status();
    qgm::Binder binder(&catalog_);
    return binder.BindQuery(**parsed);
  }

  std::unique_ptr<qgm::Graph> MustBind(const std::string& sql) {
    Result<std::unique_ptr<qgm::Graph>> g = Bind(sql);
    EXPECT_TRUE(g.ok()) << sql << " -> " << g.status().ToString();
    if (!g.ok()) return nullptr;
    return g.TakeValue();
  }

  Catalog catalog_;
};

TEST_F(QgmTest, PaperQueryShape) {
  // Figure 2(a): two SELECT boxes, an E quantifier linking them, and a
  // correlated qualifier edge into the upper box's Q1.
  auto graph = MustBind(
      "SELECT partno, price, order_qty FROM quotations Q1 "
      "WHERE Q1.partno IN (SELECT partno FROM inventory Q3 "
      "WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU')");
  ASSERT_NE(graph, nullptr);
  Box* root = graph->root();
  EXPECT_EQ(root->kind, BoxKind::kSelect);
  ASSERT_EQ(root->quantifiers.size(), 2u);
  EXPECT_EQ(root->quantifiers[0]->type, QuantifierType::kForEach);
  EXPECT_EQ(root->quantifiers[1]->type, QuantifierType::kExists);
  Box* sub = root->quantifiers[1]->input;
  EXPECT_EQ(sub->kind, BoxKind::kSelect);
  EXPECT_EQ(sub->predicates.size(), 2u);
  EXPECT_EQ(root->head.size(), 3u);
  EXPECT_TRUE(graph->Validate().ok());
}

TEST_F(QgmTest, ViewExpandsToSelectBox) {
  auto graph = MustBind("SELECT partno FROM cpu_view WHERE onhand_qty > 5");
  ASSERT_NE(graph, nullptr);
  Box* root = graph->root();
  ASSERT_EQ(root->quantifiers.size(), 1u);
  Box* view_box = root->quantifiers[0]->input;
  EXPECT_EQ(view_box->kind, BoxKind::kSelect);
  EXPECT_EQ(view_box->predicates.size(), 1u);  // type = 'CPU'
}

TEST_F(QgmTest, AggregationSandwich) {
  auto graph = MustBind(
      "SELECT type, COUNT(*), SUM(onhand_qty) FROM inventory "
      "GROUP BY type HAVING COUNT(*) > 1");
  ASSERT_NE(graph, nullptr);
  Box* upper = graph->root();
  EXPECT_EQ(upper->kind, BoxKind::kSelect);
  EXPECT_EQ(upper->predicates.size(), 1u);  // HAVING
  Box* gb = upper->quantifiers[0]->input;
  ASSERT_EQ(gb->kind, BoxKind::kGroupBy);
  EXPECT_EQ(gb->group_keys.size(), 1u);
  EXPECT_EQ(gb->aggregates.size(), 2u);
  Box* low = gb->quantifiers[0]->input;
  EXPECT_EQ(low->kind, BoxKind::kSelect);
}

TEST_F(QgmTest, AggregateDeduplication) {
  auto graph = MustBind(
      "SELECT SUM(onhand_qty), SUM(onhand_qty) + 1 FROM inventory");
  ASSERT_NE(graph, nullptr);
  Box* gb = graph->root()->quantifiers[0]->input;
  EXPECT_EQ(gb->aggregates.size(), 1u);  // shared, not recomputed
}

TEST_F(QgmTest, OuterJoinUsesPreservedForeach) {
  auto graph = MustBind(
      "SELECT q.partno FROM quotations q LEFT OUTER JOIN inventory i "
      "ON q.partno = i.partno");
  ASSERT_NE(graph, nullptr);
  Box* oj = graph->root()->quantifiers[0]->input;
  ASSERT_EQ(oj->quantifiers.size(), 2u);
  EXPECT_EQ(oj->quantifiers[0]->type, QuantifierType::kPreservedForEach);
  EXPECT_EQ(oj->quantifiers[1]->type, QuantifierType::kForEach);
  EXPECT_EQ(oj->predicates.size(), 1u);
}

TEST_F(QgmTest, NotInBindsAsUniversalQuantifier) {
  auto graph = MustBind(
      "SELECT partno FROM inventory WHERE partno NOT IN "
      "(SELECT partno FROM quotations)");
  Box* root = graph->root();
  ASSERT_EQ(root->quantifiers.size(), 2u);
  EXPECT_EQ(root->quantifiers[1]->type, QuantifierType::kAll);
  ASSERT_EQ(root->predicates.size(), 1u);
  EXPECT_EQ(root->predicates[0]->kind, qgm::Expr::Kind::kQuantCompare);
  EXPECT_EQ(root->predicates[0]->bop, ast::BinaryOp::kNe);
}

TEST_F(QgmTest, RecursionWiring) {
  auto graph = MustBind(
      "WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM r "
      "WHERE n < 3) SELECT n FROM r");
  Box* ru = graph->root()->quantifiers[0]->input;
  ASSERT_EQ(ru->kind, BoxKind::kRecursiveUnion);
  ASSERT_EQ(ru->quantifiers.size(), 2u);
  Box* step = ru->quantifiers[1]->input;
  Box* iter = step->quantifiers[0]->input;
  EXPECT_EQ(iter->kind, BoxKind::kIterationRef);
  EXPECT_EQ(iter->recursion, ru);
}

TEST_F(QgmTest, SemanticErrors) {
  EXPECT_FALSE(Bind("SELECT nosuch FROM inventory").ok());
  EXPECT_FALSE(Bind("SELECT partno FROM nosuch_table").ok());
  EXPECT_FALSE(Bind("SELECT partno FROM inventory, quotations").ok())
      << "ambiguous partno should be rejected";
  EXPECT_FALSE(Bind("SELECT type + 1 FROM inventory").ok());  // type error
  EXPECT_FALSE(Bind("SELECT type FROM inventory GROUP BY partno").ok());
  EXPECT_FALSE(Bind("SELECT SUM(type) FROM inventory").ok());
  EXPECT_FALSE(Bind("SELECT partno FROM inventory WHERE partno IN "
                    "(SELECT partno, type FROM inventory)").ok());
  EXPECT_FALSE(Bind("SELECT partno FROM inventory WHERE SUM(partno) > 1").ok());
  EXPECT_FALSE(
      Bind("SELECT partno FROM inventory UNION SELECT partno, type "
           "FROM inventory").ok());
}

TEST_F(QgmTest, ValidateCatchesForeignQuantifier) {
  auto graph = MustBind("SELECT partno FROM inventory");
  // Sabotage: make the head expression point at a quantifier in a box
  // that is neither this box nor an ancestor of it.
  qgm::Box* other = graph->NewBox(BoxKind::kSelect);
  qgm::Box* detached = graph->NewBox(BoxKind::kValues);
  auto q = graph->NewQuantifier(QuantifierType::kForEach, detached);
  qgm::Quantifier* foreign = other->AddQuantifier(std::move(q));
  graph->root()->head[0].expr = qgm::MakeColumnRef(foreign, 0, DataType::Int());
  EXPECT_FALSE(graph->Validate().ok());
}

TEST_F(QgmTest, PrinterRendersFigureTwoStyle) {
  auto graph = MustBind(
      "SELECT partno FROM inventory WHERE type = 'CPU'");
  std::string text = qgm::PrintGraph(*graph);
  EXPECT_NE(text.find("head:"), std::string::npos);
  EXPECT_NE(text.find("F over inventory"), std::string::npos);
  EXPECT_NE(text.find("pred:"), std::string::npos);
  EXPECT_NE(text.find("stored table via storage manager HEAP"),
            std::string::npos);
}

TEST_F(QgmTest, GarbageCollectDropsUnreachable) {
  auto graph = MustBind("SELECT partno FROM inventory");
  size_t before = graph->boxes().size();
  graph->NewBox(BoxKind::kSelect);  // orphan
  graph->GarbageCollect();
  EXPECT_EQ(graph->boxes().size(), before);
}

TEST_F(QgmTest, DuplicateFreeReasoning) {
  // inventory.partno is a unique key: projecting it keeps the output
  // duplicate-free; projecting type does not.
  auto g1 = MustBind("SELECT partno FROM inventory");
  EXPECT_TRUE(g1->root()->OutputIsDuplicateFree());
  auto g2 = MustBind("SELECT type FROM inventory");
  EXPECT_FALSE(g2->root()->OutputIsDuplicateFree());
  auto g3 = MustBind("SELECT DISTINCT type FROM inventory");
  EXPECT_TRUE(g3->root()->OutputIsDuplicateFree());
  auto g4 = MustBind("SELECT price FROM quotations");  // no key at all
  EXPECT_FALSE(g4->root()->OutputIsDuplicateFree());
}

TEST_F(QgmTest, ExprCloneIsDeep) {
  auto graph = MustBind("SELECT partno + 1 FROM inventory WHERE partno > 2");
  const qgm::ExprPtr& pred = graph->root()->predicates[0];
  qgm::ExprPtr clone = pred->Clone();
  EXPECT_EQ(clone->ToString(), pred->ToString());
  // Mutating the clone leaves the original untouched.
  clone->children[1]->literal = Value::Int(99);
  EXPECT_NE(clone->ToString(), pred->ToString());
}

TEST_F(QgmTest, ConjunctionSplitAndRebuild) {
  auto graph = MustBind(
      "SELECT partno FROM inventory WHERE partno > 1 AND onhand_qty < 5 "
      "AND type = 'CPU'");
  EXPECT_EQ(graph->root()->predicates.size(), 3u);
  // Rebuild a conjunction and re-split it.
  std::vector<qgm::ExprPtr> parts;
  for (auto& p : graph->root()->predicates) parts.push_back(p->Clone());
  qgm::ExprPtr all = qgm::ConjunctionOf(std::move(parts));
  std::vector<qgm::ExprPtr> again;
  qgm::SplitConjuncts(std::move(all), &again);
  EXPECT_EQ(again.size(), 3u);
}

TEST_F(QgmTest, RemapQuantifierWithColumnMap) {
  auto graph = MustBind("SELECT onhand_qty FROM inventory WHERE partno = 1");
  qgm::Box* root = graph->root();
  qgm::Quantifier* q = root->quantifiers[0].get();
  // Swap columns 0 and 1 in every reference.
  std::vector<size_t> map = {1, 0, 2};
  for (auto& p : root->predicates) p->RemapQuantifier(q, q, map);
  EXPECT_EQ(root->predicates[0]->ToString(), "(inventory.onhand_qty = 1)");
}

TEST_F(QgmTest, TableFunctionBindingErrors) {
  // Unknown table function.
  EXPECT_FALSE(Bind("SELECT x FROM NOSUCHFN(inventory, 3) t").ok());
}

TEST_F(QgmTest, UnknownSetPredicateRejected) {
  EXPECT_FALSE(Bind("SELECT partno FROM inventory WHERE partno = "
                    "PLURALITY (SELECT partno FROM quotations)").ok());
}

TEST_F(QgmTest, RecursiveArityMismatchRejected) {
  EXPECT_FALSE(Bind("WITH RECURSIVE r(a, b) AS (SELECT 1 UNION ALL "
                    "SELECT a + 1, 2 FROM r) SELECT a FROM r").ok());
}

TEST_F(QgmTest, PrinterShowsAggregatesAndSetOps) {
  auto g1 = MustBind("SELECT type, SUM(onhand_qty) FROM inventory GROUP BY type");
  std::string agg_text = qgm::PrintGraph(*g1);
  EXPECT_NE(agg_text.find("group key:"), std::string::npos);
  EXPECT_NE(agg_text.find("agg#0: SUM"), std::string::npos);

  auto g2 = MustBind("SELECT partno FROM inventory UNION ALL "
                     "SELECT partno FROM quotations");
  std::string setop_text = qgm::PrintGraph(*g2);
  EXPECT_NE(setop_text.find("UNION ALL"), std::string::npos);
}

TEST_F(QgmTest, TableMutationBind) {
  qgm::Binder binder(&catalog_);
  auto parsed = Parser::ParseQueryText("SELECT 1");
  ASSERT_TRUE(parsed.ok());
  const TableDef* table = *catalog_.GetTable("inventory");

  Parser where_parser("UPDATE inventory SET onhand_qty = onhand_qty + 1 "
                      "WHERE type = 'CPU'");
  Result<ast::StatementPtr> stmt = where_parser.ParseStatement();
  ASSERT_TRUE(stmt.ok());
  const auto& update = static_cast<const ast::UpdateStatement&>(**stmt);
  std::vector<std::pair<std::string, const ast::Expr*>> assignments;
  for (const auto& [name, expr] : update.assignments) {
    assignments.emplace_back(name, expr.get());
  }
  Result<qgm::Binder::TableMutationBind> bind =
      binder.BindTableMutation(*table, update.where.get(), &assignments);
  ASSERT_TRUE(bind.ok());
  EXPECT_NE(bind->predicate, nullptr);
  ASSERT_EQ(bind->assignments.size(), 1u);
  EXPECT_EQ(bind->assignments[0].first, 1u);  // onhand_qty position
}

// ---------------------------------------------------------------------------
// Graph invariant checker (the paranoid mode RuleEngine runs after each
// rule firing under sanitizer builds)
// ---------------------------------------------------------------------------

class QgmValidateTest : public QgmTest {
 protected:
  // First box owning a quantifier, searched root-down (boxes are stored in
  // creation order; the root select is created before its inputs' boxes).
  qgm::Box* FindBoxWithQuantifier(qgm::Graph* g) {
    for (const auto& b : g->boxes()) {
      if (!b->quantifiers.empty()) return b.get();
    }
    return nullptr;
  }
};

TEST_F(QgmValidateTest, AcceptsBoundGraphs) {
  auto graph = MustBind(
      "SELECT partno, price FROM quotations WHERE order_qty > 5");
  ASSERT_NE(graph, nullptr);
  EXPECT_TRUE(graph->Validate().ok());
}

TEST_F(QgmValidateTest, DetectsForeignRangeEdge) {
  auto graph = MustBind("SELECT partno FROM quotations");
  ASSERT_NE(graph, nullptr);
  qgm::Box* box = FindBoxWithQuantifier(graph.get());
  ASSERT_NE(box, nullptr);
  // Re-point a range edge at a box the graph does not own (as if a rule
  // freed the input and forgot to rewrite the edge).
  qgm::Box orphan;
  orphan.kind = BoxKind::kBaseTable;
  box->quantifiers[0]->input = &orphan;
  Status s = graph->Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("does not own"), std::string::npos)
      << s.ToString();
}

TEST_F(QgmValidateTest, DetectsDanglingQuantifierReference) {
  auto graph = MustBind("SELECT partno FROM quotations WHERE order_qty > 5");
  ASSERT_NE(graph, nullptr);
  qgm::Box* box = FindBoxWithQuantifier(graph.get());
  ASSERT_NE(box, nullptr);
  // Detach the quantifier from its owner but keep it alive: the box's
  // head/predicate expressions still reference it.
  std::unique_ptr<qgm::Quantifier> detached =
      box->RemoveQuantifier(box->quantifiers[0].get());
  ASSERT_NE(detached, nullptr);
  Status s = graph->Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("dangling"), std::string::npos) << s.ToString();
}

TEST_F(QgmValidateTest, DetectsColumnPastInputArity) {
  auto graph = MustBind("SELECT partno FROM quotations");
  ASSERT_NE(graph, nullptr);
  // Find any head column reference and push it past its input's arity.
  qgm::Expr* ref = nullptr;
  for (const auto& b : graph->boxes()) {
    for (const qgm::HeadColumn& h : b->head) {
      if (h.expr != nullptr && h.expr->kind == qgm::Expr::Kind::kColumnRef &&
          h.expr->quantifier != nullptr) {
        ref = h.expr.get();
        break;
      }
    }
    if (ref != nullptr) break;
  }
  ASSERT_NE(ref, nullptr);
  ref->column = 999;
  Status s = graph->Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("head arity"), std::string::npos)
      << s.ToString();
}

TEST_F(QgmValidateTest, DetectsBaseTableHeadArityMismatch) {
  auto graph = MustBind("SELECT partno FROM quotations");
  ASSERT_NE(graph, nullptr);
  qgm::Box* base = nullptr;
  for (const auto& b : graph->boxes()) {
    if (b->kind == BoxKind::kBaseTable && b->table != nullptr) {
      base = b.get();
      break;
    }
  }
  ASSERT_NE(base, nullptr);
  base->head.pop_back();
  Status s = graph->Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("arity"), std::string::npos) << s.ToString();
}

}  // namespace
}  // namespace starburst
