#ifndef STARBURST_EXEC_OPERATORS_H_
#define STARBURST_EXEC_OPERATORS_H_

#include <memory>
#include <vector>

#include "exec/expr_eval.h"
#include "exec/stream.h"
#include "optimizer/plan.h"

namespace starburst::exec {

namespace parallel {
class MorselSource;
class SharedHashTable;
}  // namespace parallel

// Factories for the QES's built-in operators. Each returns a re-openable
// lazy stream; §7's "details of obtaining a tuple from and handing a tuple
// to another operator" live behind the Operator interface.

OperatorPtr MakeScanOp(const TableDef* table, std::vector<size_t> columns,
                       std::vector<CompiledExprPtr> predicates);

/// Morsel-driven scan clone: instead of walking the whole table, claims
/// page ranges from the shared `morsels` dispenser until it is drained.
/// All clones sharing one MorselSource together cover each row exactly
/// once. `morsels` must outlive the operator and be Reset() by the
/// owning Gather before the clones open.
OperatorPtr MakeMorselScanOp(const TableDef* table,
                             std::vector<size_t> columns,
                             std::vector<CompiledExprPtr> predicates,
                             parallel::MorselSource* morsels);

/// `bound_op` relates the index key column to `bound` (already normalized
/// so the key column is on the left).
OperatorPtr MakeIndexScanOp(const TableDef* table, const IndexDef* index,
                            ast::BinaryOp bound_op, CompiledExprPtr bound,
                            std::vector<size_t> columns,
                            std::vector<CompiledExprPtr> predicates);

OperatorPtr MakeValuesOp(std::vector<Row> rows);

OperatorPtr MakeFilterOp(OperatorPtr input,
                         std::vector<CompiledExprPtr> predicates);

/// §7's OR operator: a tuple that fails one disjunct "must be handed over
/// ... for further consideration" — branches evaluate lazily in order, so
/// subquery branches only run for tuples the cheap branches rejected.
OperatorPtr MakeOrRouteOp(OperatorPtr input,
                          std::vector<std::vector<CompiledExprPtr>> branches);

/// Computing projection (box heads). Pass empty exprs for pure relabeling.
OperatorPtr MakeProjectOp(OperatorPtr input,
                          std::vector<CompiledExprPtr> exprs);

/// `memory_budget_bytes` caps the in-memory build (0 = unlimited): past
/// it, the sort writes stable-sorted runs to spill files and streams a
/// k-way merge back; the merge tie-breaks equal keys by run order, so
/// spilled output is byte-identical to the in-memory stable sort.
OperatorPtr MakeSortOp(OperatorPtr input,
                       std::vector<std::pair<size_t, bool>> keys,
                       uint64_t memory_budget_bytes = 0);

/// Past the budget the seen-set freezes and unseen rows grace-partition
/// to spill files, deduplicated per partition after the input drains.
OperatorPtr MakeDistinctOp(OperatorPtr input,
                           uint64_t memory_budget_bytes = 0);

OperatorPtr MakeTempOp(OperatorPtr input);
/// Shared materialization: all operators created with the same key read
/// one ExecContext-resident copy, built by whichever opens first.
OperatorPtr MakeSharedTempOp(OperatorPtr input, const void* shared_key);

OperatorPtr MakeShipOp(OperatorPtr input, double per_row_delay_us);

OperatorPtr MakeLimitOp(OperatorPtr input, int64_t limit);

struct JoinSpec {
  optimizer::JoinKind kind = optimizer::JoinKind::kRegular;
  /// Residual predicates over the concatenated (outer ++ inner) row.
  std::vector<CompiledExprPtr> predicates;
  /// Quantified compare: operand (over the outer row) `cmp_op` inner col 0.
  CompiledExprPtr quant_operand;  // null when not a quantified join
  ast::BinaryOp cmp_op = ast::BinaryOp::kEq;
  const SetPredicateFunctionDef* set_pred = nullptr;
  size_t inner_width = 0;  // for null padding (left outer, scalar)
  /// Dependent (correlated) inner: parameters drawn from the outer row.
  std::vector<SubqueryRuntime::ParamSource> inner_params;
};

OperatorPtr MakeNlJoinOp(OperatorPtr outer, OperatorPtr inner, JoinSpec spec);

OperatorPtr MakeHashJoinOp(OperatorPtr outer, OperatorPtr inner,
                           std::vector<std::pair<size_t, size_t>> keys,
                           JoinSpec spec);

OperatorPtr MakeMergeJoinOp(OperatorPtr outer, OperatorPtr inner,
                            std::vector<std::pair<size_t, size_t>> keys,
                            JoinSpec spec);

/// Probe-only hash join for parallel clones: `table` was built once by
/// the owning Gather (partitioned build) and is probed concurrently.
/// Same kind/NULL semantics as MakeHashJoinOp.
OperatorPtr MakeHashProbeOp(OperatorPtr outer,
                            const parallel::SharedHashTable* table,
                            std::vector<std::pair<size_t, size_t>> keys,
                            JoinSpec spec);

struct AggSpec {
  const AggregateFunctionDef* def = nullptr;
  CompiledExprPtr arg;  // null = COUNT(*)
  bool distinct = false;
};

/// `head` maps each output column to a group key (kKey) or aggregate
/// (kAgg) by index.
struct GroupHeadItem {
  enum class Source { kKey, kAgg };
  Source source = Source::kKey;
  size_t index = 0;
};

/// Past the budget the group table freezes: resident groups keep
/// absorbing rows, new keys grace-partition to spill files and are
/// aggregated partition-at-a-time after the input drains (partition key
/// sets are disjoint from the resident set, so no partial-state merge).
OperatorPtr MakeGroupAggOp(OperatorPtr input,
                           std::vector<CompiledExprPtr> group_keys,
                           std::vector<AggSpec> aggregates,
                           std::vector<GroupHeadItem> head,
                           uint64_t memory_budget_bytes = 0);

OperatorPtr MakeSetOpOp(OperatorPtr left, OperatorPtr right,
                        ast::SetOpKind op, bool all);

OperatorPtr MakeTableFuncOp(std::vector<OperatorPtr> inputs,
                            const TableFunctionDef* def,
                            std::vector<Value> scalar_args);

/// Recursive-union fixpoint. `iterref_count` > 1 forces naive iteration
/// (the step sees the full working table); 1 enables semi-naive deltas.
OperatorPtr MakeRecurseOp(OperatorPtr base, OperatorPtr step,
                          const qgm::Box* recursion_box, size_t iterref_count,
                          bool semi_naive = true);

OperatorPtr MakeIterRefOp(const qgm::Box* recursion_box);

}  // namespace starburst::exec

#endif  // STARBURST_EXEC_OPERATORS_H_
