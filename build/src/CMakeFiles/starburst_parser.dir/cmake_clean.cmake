file(REMOVE_RECURSE
  "CMakeFiles/starburst_parser.dir/parser/ast.cc.o"
  "CMakeFiles/starburst_parser.dir/parser/ast.cc.o.d"
  "CMakeFiles/starburst_parser.dir/parser/lexer.cc.o"
  "CMakeFiles/starburst_parser.dir/parser/lexer.cc.o.d"
  "CMakeFiles/starburst_parser.dir/parser/parser.cc.o"
  "CMakeFiles/starburst_parser.dir/parser/parser.cc.o.d"
  "libstarburst_parser.a"
  "libstarburst_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starburst_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
