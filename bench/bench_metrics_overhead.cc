// OBS — metrics tax: what does engine-wide statement bookkeeping cost,
// and is it under the 5% budget when the registry is compiled in but
// nobody is reading it?
//
// Every statement that leaves Database::Execute passes through
// FinishStatement: counters bump, the latency histogram gets one
// Observe, a QueryLogEntry lands in the ring, and the layer mirrors
// (plan cache, buffer pool, spill, scheduler) refresh. All of that is
// per-statement — never per-row — so on the batch-throughput
// filter+project scan it must be noise. This bench times the same scan
// mix in two configurations and enforces the budget itself:
//
//   off  SET METRICS off via set_metrics_enabled(false): one branch,
//        no bookkeeping — the floor
//   on   the default: registry + query log fed on every statement
//
// Exit status is the CI contract: nonzero when the enabled path costs
// more than 5% over the better of two disabled runs, so the workflow's
// overhead-guard leg fails without parsing the table.

#include "bench_util.h"

using namespace starburst;
using namespace starburst::bench;

namespace {

constexpr int kScanRows = 30000;
constexpr double kBudgetPct = 5.0;

double RunMix(Database* db, const std::vector<std::string>& queries,
              int reps) {
  return MedianUs(
      [&] {
        for (const std::string& sql : queries) {
          MustRows(db, sql);
        }
      },
      reps);
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json("metrics_overhead", argc, argv);

  Database db;
  // The batch-throughput bench's filter_project_scan table: k INT, v INT
  // with v uniform in [0, 1000).
  MustExec(&db, "CREATE TABLE t (k INT, v INT)");
  {
    std::mt19937 rng(11);
    for (int base = 0; base < kScanRows; base += 500) {
      std::string sql = "INSERT INTO t VALUES ";
      for (int i = base; i < base + 500; ++i) {
        if (i > base) sql += ", ";
        sql += "(" + std::to_string(i) + ", " +
               std::to_string(static_cast<int>(rng() % 1000)) + ")";
      }
      MustExec(&db, sql);
    }
  }
  MustExec(&db, "ANALYZE");
  MustExec(&db, "SET parallelism = 1");
  MustExec(&db, "SET BATCH_SIZE = 1024");
  // Bookkeeping cost is per statement; keep the compile half out of the
  // timed region so the scan dominates and the overhead reads as a
  // fraction of real execution, not of parse+optimize.
  MustExec(&db, "SET PLAN_CACHE_SIZE = 64");

  std::vector<std::string> queries = {
      "SELECT k, v FROM t WHERE v < 500",
      "SELECT k, v FROM t WHERE v < 250",
      "SELECT k FROM t WHERE v < 100",
  };

  const int reps = 9;
  // Warm the buffer pool and plan cache before timing anything.
  RunMix(&db, queries, 1);

  db.set_metrics_enabled(false);
  double off_us = RunMix(&db, queries, reps);

  db.set_metrics_enabled(true);
  double on_us = RunMix(&db, queries, reps);

  db.set_metrics_enabled(false);
  double off2_us = RunMix(&db, queries, reps);
  db.set_metrics_enabled(true);

  // Baseline = the better of the two disabled runs, which absorbs
  // one-sided warmup drift.
  double base_us = std::min(off_us, off2_us);
  double overhead_pct = 100.0 * (on_us - base_us) / base_us;
  double mix_rows = 3.0 * kScanRows;  // rows scanned per mix pass

  std::printf("OBS: metrics-registry overhead on the filter_project_scan "
              "mix (%d rows/table)\n", kScanRows);
  std::printf("%-12s %12s %10s\n", "config", "median(us)", "vs off");
  std::printf("%-12s %12.0f %9s\n", "off", base_us, "--");
  std::printf("%-12s %12.0f %+9.1f%%\n", "metrics", on_us, overhead_pct);

  double rerun_drift = 100.0 * (off2_us - off_us) / off_us;
  std::printf("\n(disabled-path drift between first and last 'off' runs: "
              "%+.1f%% — the noise floor for the <%.0f%% target)\n",
              rerun_drift, kBudgetPct);

  json.Add("metrics_off", {{"rows", mix_rows}}, base_us / 1e3,
           mix_rows / (base_us / 1e6));
  json.Add("metrics_on", {{"rows", mix_rows}}, on_us / 1e3,
           mix_rows / (on_us / 1e6));

  if (overhead_pct > kBudgetPct) {
    std::fprintf(stderr,
                 "FAIL: metrics bookkeeping costs %+.1f%% (> %.0f%% budget)\n",
                 overhead_pct, kBudgetPct);
    return 1;
  }
  std::printf("\nPASS: within the %.0f%% budget\n", kBudgetPct);
  return 0;
}
