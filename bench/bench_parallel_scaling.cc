// E11 — morsel-driven parallel execution: speedup vs worker count.
//
// The interesting claim is that the gather/morsel machinery converts
// per-tuple latency into throughput: N workers drain the morsel pool
// concurrently, so a scan whose predicate costs T per row finishes in
// ~rows*T/N. We make the per-row cost explicit (and machine-independent)
// with a registered scalar UDF that sleeps a fixed interval — on a
// single-core host CPU-bound work cannot scale, but latency-bound work
// shows the scheduler's overlap directly.

#include <thread>

#include "bench_util.h"

using namespace starburst;
using namespace starburst::bench;

namespace {

constexpr int kRows = 2000;
constexpr int kSleepUs = 100;  // per-row predicate latency

void RegisterSlowPass(Database* db) {
  Status s = db->catalog().functions().RegisterScalar(ScalarFunctionDef{
      "SLOW_PASS", 1,
      [](const std::vector<DataType>& args) -> Result<DataType> {
        if (!args[0].is_numeric() && args[0].id != TypeId::kNull) {
          return Status::TypeError("SLOW_PASS expects a number");
        }
        return DataType::Int();
      },
      [](const std::vector<Value>& args) -> Result<Value> {
        std::this_thread::sleep_for(std::chrono::microseconds(kSleepUs));
        return args[0];
      }});
  if (!s.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  Database db;
  RegisterSlowPass(&db);
  // Pad rows to ~120 bytes so the table spans enough pages for the
  // morsel dispenser (grain: 4 pages) to feed 8 workers.
  MustExec(&db, "CREATE TABLE t (id INT, grp INT, pad STRING)");
  std::string pad(100, 'x');
  for (int base = 0; base < kRows; base += 500) {
    std::string sql = "INSERT INTO t VALUES ";
    for (int i = base; i < base + 500; ++i) {
      if (i > base) sql += ", ";
      sql += "(" + std::to_string(i) + ", " + std::to_string(i % 7) + ", '" +
             pad + "')";
    }
    MustExec(&db, sql);
  }
  MustExec(&db, "ANALYZE");
  MustExec(&db, "SET parallel_min_rows = 0");

  const std::string query = "SELECT id, grp FROM t WHERE SLOW_PASS(id) >= 0";

  std::printf("E11: morsel-driven scan scaling, %d rows x %dus predicate\n",
              kRows, kSleepUs);
  std::printf("%7s | %10s | %8s | %6s\n", "workers", "us", "speedup", "rows");

  auto sorted_rows = [&](const std::string& sql) {
    Result<std::vector<Row>> r = db.Query(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    std::vector<Row> rows = r.TakeValue();
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.CompareTotal(b) < 0; });
    return rows;
  };

  MustExec(&db, "SET parallelism = 1");
  std::vector<Row> reference = sorted_rows(query);

  double serial_us = 0;
  double speedup_at_4 = 0;
  for (int workers : {1, 2, 4, 8}) {
    MustExec(&db, "SET parallelism = " + std::to_string(workers));
    bool identical = true;
    double us = MedianUs([&] {
      std::vector<Row> rows = sorted_rows(query);
      identical = identical && rows == reference;
    });
    if (!identical) {
      std::fprintf(stderr, "FATAL: parallel output differs at %d workers\n",
                   workers);
      return 1;
    }
    if (workers == 1) serial_us = us;
    double speedup = serial_us / us;
    if (workers == 4) speedup_at_4 = speedup;
    std::printf("%7d | %10.0f | %7.2fx | %6zu\n", workers, us, speedup,
                reference.size());
  }

  std::printf("\nShape check: rows are identical at every worker count; "
              "speedup at 4 workers = %.2fx (target >= 2.5x).\n",
              speedup_at_4);
  return speedup_at_4 >= 2.5 ? 0 : 1;
}
