# Empty dependencies file for bench_subquery_cache.
# This may be replaced when dependencies are built.
