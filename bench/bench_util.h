#ifndef STARBURST_BENCH_BENCH_UTIL_H_
#define STARBURST_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction harness. Each bench binary
// regenerates one artifact or quantified claim from the paper (see
// DESIGN.md's per-experiment index) and prints a small table whose
// *shape* — who wins, where the crossover falls — is the result.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "engine/database.h"

namespace starburst::bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Median wall time of `fn` over `reps` runs, in microseconds.
inline double MedianUs(const std::function<void()>& fn, int reps = 3) {
  std::vector<double> times;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    times.push_back(t.ElapsedUs());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

inline void Must(const Result<ResultSet>& r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what, r.status().ToString().c_str());
    std::exit(1);
  }
}

inline void MustExec(Database* db, const std::string& sql) {
  Result<ResultSet> r = db->Execute(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL: %s\n  in: %s\n", r.status().ToString().c_str(),
                 sql.c_str());
    std::exit(1);
  }
}

inline size_t MustRows(Database* db, const std::string& sql) {
  Result<std::vector<Row>> r = db->Query(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL: %s\n  in: %s\n", r.status().ToString().c_str(),
                 sql.c_str());
    std::exit(1);
  }
  return r->size();
}

/// The paper's quotations/inventory schema at a given scale factor:
/// |inventory| = 5·scale parts (unique partno), |quotations| = 5·scale
/// quotations referencing them.
inline std::unique_ptr<Database> MakePartsDb(int scale, uint32_t seed = 7) {
  auto db = std::make_unique<Database>();
  MustExec(db.get(),
           "CREATE TABLE quotations (partno INT, price DOUBLE, order_qty INT)");
  MustExec(db.get(),
           "CREATE TABLE inventory (partno INT PRIMARY KEY, onhand_qty INT, "
           "type STRING)");
  std::mt19937 rng(seed);
  const char* types[] = {"CPU", "DISK", "RAM", "TAPE"};
  int parts = 5 * scale;
  for (int base = 0; base < parts; base += 500) {
    std::string sql = "INSERT INTO inventory VALUES ";
    int hi = std::min(base + 500, parts);
    for (int i = base; i < hi; ++i) {
      if (i > base) sql += ", ";
      sql += "(" + std::to_string(i) + ", " +
             std::to_string(static_cast<int>(rng() % 200)) + ", '" +
             types[rng() % 4] + "')";
    }
    MustExec(db.get(), sql);
  }
  for (int base = 0; base < parts; base += 500) {
    std::string sql = "INSERT INTO quotations VALUES ";
    int hi = std::min(base + 500, parts);
    for (int i = base; i < hi; ++i) {
      if (i > base) sql += ", ";
      sql += "(" + std::to_string(static_cast<int>(rng() % parts)) + ", " +
             std::to_string(1.0 + (rng() % 10000) / 100.0) + ", " +
             std::to_string(static_cast<int>(rng() % 250)) + ")";
    }
    MustExec(db.get(), sql);
  }
  if (!db->AnalyzeAll().ok()) std::exit(1);
  return db;
}

/// A generic integer table `name(k INT, v INT, w STRING)` with `rows`
/// rows; k in [0, rows), v in [0, ndv_v).
inline void MakeIntTable(Database* db, const std::string& name, int rows,
                         int ndv_v, uint32_t seed = 11) {
  MustExec(db, "CREATE TABLE " + name + " (k INT, v INT, w STRING)");
  std::mt19937 rng(seed);
  for (int base = 0; base < rows; base += 500) {
    std::string sql = "INSERT INTO " + name + " VALUES ";
    int hi = std::min(base + 500, rows);
    for (int i = base; i < hi; ++i) {
      if (i > base) sql += ", ";
      sql += "(" + std::to_string(i) + ", " +
             std::to_string(static_cast<int>(rng() % ndv_v)) + ", 'w" +
             std::to_string(rng() % 100) + "')";
    }
    MustExec(db, sql);
  }
}

}  // namespace starburst::bench

#endif  // STARBURST_BENCH_BENCH_UTIL_H_
