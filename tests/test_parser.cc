#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "parser/parser.h"

namespace starburst {
namespace {

using ast::ExprKind;
using ast::StatementKind;

Result<std::unique_ptr<ast::Query>> Parse(const std::string& sql) {
  return Parser::ParseQueryText(sql);
}

ast::StatementPtr MustParseStatement(const std::string& sql) {
  Parser parser(sql);
  Result<ast::StatementPtr> r = parser.ParseStatement();
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  if (!r.ok()) return nullptr;
  return r.TakeValue();
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, TokenKinds) {
  Lexer lexer("SELECT x, 42 3.5 'str''ing' <> <= >= != || -- comment\n ;");
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  std::vector<TokenKind> expected = {
      TokenKind::kIdentifier, TokenKind::kIdentifier, TokenKind::kComma,
      TokenKind::kIntLiteral, TokenKind::kDoubleLiteral,
      TokenKind::kStringLiteral, TokenKind::kNe, TokenKind::kLe,
      TokenKind::kGe, TokenKind::kNe, TokenKind::kConcat,
      TokenKind::kSemicolon, TokenKind::kEof};
  EXPECT_EQ(kinds, expected);
  EXPECT_EQ((*tokens)[5].text, "str'ing");  // escaped quote
  EXPECT_EQ((*tokens)[3].int_value, 42);
  EXPECT_DOUBLE_EQ((*tokens)[4].double_value, 3.5);
}

TEST(LexerTest, ScientificNotationAndQuotedIdent) {
  Lexer lexer("1e3 2.5E-2 \"Quoted Name\"");
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ((*tokens)[0].double_value, 1000.0);
  EXPECT_DOUBLE_EQ((*tokens)[1].double_value, 0.025);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[2].text, "Quoted Name");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lexer("'unterminated").Tokenize().ok());
  EXPECT_FALSE(Lexer("a ! b").Tokenize().ok());
  EXPECT_FALSE(Lexer("#").Tokenize().ok());
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

TEST(ParserTest, BasicSelect) {
  auto q = Parse("SELECT a, b AS bee, t.* FROM t WHERE a > 1 "
                 "GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 5");
  ASSERT_TRUE(q.ok());
  const ast::SelectCore& core = *(*q)->body->select;
  ASSERT_EQ(core.items.size(), 3u);
  EXPECT_EQ(core.items[1].alias, "bee");
  EXPECT_TRUE(core.items[2].star);
  EXPECT_EQ(core.items[2].star_qualifier, "t");
  EXPECT_NE(core.where, nullptr);
  EXPECT_EQ(core.group_by.size(), 1u);
  EXPECT_NE(core.having, nullptr);
  EXPECT_EQ((*q)->order_by.size(), 1u);
  EXPECT_FALSE((*q)->order_by[0].ascending);
  EXPECT_EQ((*q)->limit, 5);
}

TEST(ParserTest, OperatorPrecedence) {
  auto q = Parse("SELECT 1 + 2 * 3 - 4 / 2");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->body->select->items[0].expr->ToString(),
            "((1 + (2 * 3)) - (4 / 2))");
  q = Parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(q.ok());
  // AND binds tighter than OR.
  EXPECT_EQ((*q)->body->select->where->ToString(),
            "((a = 1) OR ((b = 2) AND (c = 3)))");
}

TEST(ParserTest, SetOperationPrecedence) {
  auto q = Parse("SELECT a FROM t UNION SELECT a FROM u INTERSECT "
                 "SELECT a FROM v");
  ASSERT_TRUE(q.ok());
  // INTERSECT binds tighter: UNION(t, INTERSECT(u, v)).
  ASSERT_EQ((*q)->body->kind, ast::QueryBody::Kind::kSetOp);
  EXPECT_EQ((*q)->body->op, ast::SetOpKind::kUnion);
  EXPECT_EQ((*q)->body->right->op, ast::SetOpKind::kIntersect);
}

TEST(ParserTest, SubqueryForms) {
  auto q = Parse("SELECT a FROM t WHERE a IN (SELECT b FROM u) "
                 "AND EXISTS (SELECT 1 FROM v) "
                 "AND a > ALL (SELECT c FROM w) "
                 "AND a = (SELECT MAX(d) FROM x)");
  ASSERT_TRUE(q.ok());
  std::string s = (*q)->body->select->where->ToString();
  EXPECT_NE(s.find("IN (<subquery>)"), std::string::npos);
  EXPECT_NE(s.find("EXISTS"), std::string::npos);
  EXPECT_NE(s.find("> ALL"), std::string::npos);
}

TEST(ParserTest, CustomSetPredicateQuantifier) {
  auto q = Parse("SELECT a FROM t WHERE a = MAJORITY (SELECT b FROM u)");
  ASSERT_TRUE(q.ok());
  EXPECT_NE((*q)->body->select->where->ToString().find("MAJORITY"),
            std::string::npos);
}

TEST(ParserTest, TableExpressionAndRecursion) {
  auto q = Parse("WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL "
                 "SELECT n + 1 FROM r) SELECT n FROM r");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE((*q)->recursive);
  ASSERT_EQ((*q)->ctes.size(), 1u);
  EXPECT_EQ((*q)->ctes[0].name, "r");
  EXPECT_EQ((*q)->ctes[0].column_names.size(), 1u);
}

TEST(ParserTest, JoinsAndOuterJoins) {
  auto q = Parse("SELECT a FROM t JOIN u ON t.x = u.x "
                 "LEFT OUTER JOIN v ON u.y = v.y");
  ASSERT_TRUE(q.ok());
  const auto& from = (*q)->body->select->from;
  ASSERT_EQ(from.size(), 1u);
  EXPECT_EQ(from[0]->kind, ast::TableRef::Kind::kJoin);
  EXPECT_EQ(from[0]->join_kind, ast::JoinKind::kLeftOuter);
  EXPECT_EQ(from[0]->left->join_kind, ast::JoinKind::kInner);
}

TEST(ParserTest, TableFunctionWithBareTableArg) {
  auto q = Parse("SELECT a FROM SAMPLE(t, 10) s");
  ASSERT_TRUE(q.ok());
  const auto& ref = *(*q)->body->select->from[0];
  EXPECT_EQ(ref.kind, ast::TableRef::Kind::kTableFunction);
  EXPECT_EQ(ref.function_name, "SAMPLE");
  ASSERT_EQ(ref.func_args.size(), 2u);
  EXPECT_NE(ref.func_args[0].table, nullptr);   // bare name desugared
  EXPECT_NE(ref.func_args[1].scalar, nullptr);  // the literal 10
  EXPECT_EQ(ref.alias, "s");
}

TEST(ParserTest, BetweenLikeIsNullCase) {
  auto q = Parse("SELECT CASE WHEN a BETWEEN 1 AND 2 THEN 'x' ELSE 'y' END "
                 "FROM t WHERE s LIKE 'a%' AND b IS NOT NULL "
                 "AND c NOT IN (1, 2, 3)");
  ASSERT_TRUE(q.ok());
  std::string w = (*q)->body->select->where->ToString();
  EXPECT_NE(w.find("LIKE"), std::string::npos);
  EXPECT_NE(w.find("IS NOT NULL"), std::string::npos);
  EXPECT_NE(w.find("NOT IN"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

TEST(ParserTest, CreateTableForms) {
  auto stmt = MustParseStatement(
      "CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(20) NOT NULL, "
      "c DOUBLE, UNIQUE (b, c)) USING FIXED");
  ASSERT_NE(stmt, nullptr);
  const auto& ct = static_cast<const ast::CreateTableStatement&>(*stmt);
  EXPECT_EQ(ct.columns.size(), 3u);
  EXPECT_TRUE(ct.columns[1].not_null);
  ASSERT_EQ(ct.unique_constraints.size(), 2u);
  EXPECT_EQ(ct.unique_constraints[0], std::vector<std::string>{"a"});  // PK
  EXPECT_EQ(ct.storage_manager, "FIXED");
}

TEST(ParserTest, CreateIndexAndViews) {
  auto idx = MustParseStatement(
      "CREATE UNIQUE INDEX i ON t (a, b) USING RTREE");
  const auto& ci = static_cast<const ast::CreateIndexStatement&>(*idx);
  EXPECT_TRUE(ci.unique);
  EXPECT_EQ(ci.access_method, "RTREE");

  auto view = MustParseStatement(
      "CREATE VIEW v (x, y) AS SELECT a, b FROM t WHERE a > 0");
  const auto& cv = static_cast<const ast::CreateViewStatement&>(*view);
  EXPECT_EQ(cv.column_names.size(), 2u);
  EXPECT_NE(cv.body_text.find("SELECT a, b FROM t"), std::string::npos);
}

TEST(ParserTest, DmlStatements) {
  auto ins = MustParseStatement(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  const auto& is = static_cast<const ast::InsertStatement&>(*ins);
  EXPECT_EQ(is.columns.size(), 2u);
  EXPECT_EQ(is.rows.size(), 2u);

  auto ins2 = MustParseStatement("INSERT INTO t SELECT a, b FROM u");
  EXPECT_NE(static_cast<const ast::InsertStatement&>(*ins2).query, nullptr);

  auto upd = MustParseStatement("UPDATE t SET a = a + 1, b = 'z' WHERE a < 5");
  const auto& us = static_cast<const ast::UpdateStatement&>(*upd);
  EXPECT_EQ(us.assignments.size(), 2u);
  EXPECT_NE(us.where, nullptr);

  auto del = MustParseStatement("DELETE FROM t WHERE a = 1");
  EXPECT_NE(static_cast<const ast::DeleteStatement&>(*del).where, nullptr);
}

TEST(ParserTest, ExplainForms) {
  auto e1 = MustParseStatement("EXPLAIN SELECT 1");
  EXPECT_EQ(static_cast<const ast::ExplainStatement&>(*e1).what,
            ast::ExplainStatement::What::kPlan);
  auto e2 = MustParseStatement("EXPLAIN QGM BEFORE SELECT 1");
  const auto& ex = static_cast<const ast::ExplainStatement&>(*e2);
  EXPECT_EQ(ex.what, ast::ExplainStatement::What::kQgm);
  EXPECT_TRUE(ex.before_rewrite);
}

TEST(ParserTest, ScriptParsing) {
  Parser parser("SELECT 1; SELECT 2;; SELECT 3");
  Result<std::vector<ast::StatementPtr>> stmts = parser.ParseScript();
  ASSERT_TRUE(stmts.ok());
  EXPECT_EQ(stmts->size(), 3u);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT a FROM").ok());
  EXPECT_FALSE(Parse("SELECT a WHERE").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE a >").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t GROUP a").ok());
  Parser trailing("SELECT 1 extra junk tokens (");
  EXPECT_FALSE(trailing.ParseStatement().ok());
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto r = Parse("SELECT a\nFROM t\nWHERE a >");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

}  // namespace
}  // namespace starburst
