# Empty dependencies file for example_extensibility_tour.
# This may be replaced when dependencies are built.
