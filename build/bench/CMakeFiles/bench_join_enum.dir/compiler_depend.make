# Empty compiler generated dependencies file for bench_join_enum.
# This may be replaced when dependencies are built.
