#include "storage/storage_engine.h"

namespace starburst {

Status StorageEngine::CreateTable(const TableDef& def) {
  std::string key = IdentUpper(def.name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table storage '" + key + "' exists");
  }
  STARBURST_ASSIGN_OR_RETURN(StorageManager * manager,
                             managers_.Lookup(def.storage_manager));
  STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<TableStorage> storage,
                             manager->CreateTable(def, &pool_));
  tables_.emplace(key, std::move(storage));
  return Status::OK();
}

Status StorageEngine::DropTable(const std::string& name) {
  if (fail_next_drop_) {
    fail_next_drop_ = false;
    return Status::Internal("injected drop failure");
  }
  std::string key = IdentUpper(name);
  if (tables_.erase(key) == 0) {
    return Status::NotFound("table storage '" + key + "' does not exist");
  }
  for (auto it = index_table_.begin(); it != index_table_.end();) {
    if (it->second == key) {
      indexes_.erase(it->first);
      it = index_table_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

Status StorageEngine::CreateIndex(const IndexDef& def,
                                  const TableSchema& table_schema) {
  std::string key = IdentUpper(def.name);
  if (indexes_.count(key)) {
    return Status::AlreadyExists("index '" + key + "' exists");
  }
  STARBURST_ASSIGN_OR_RETURN(const AttachmentFactory* factory,
                             attachment_kinds_.Lookup(def.access_method));
  STARBURST_ASSIGN_OR_RETURN(std::unique_ptr<Attachment> attachment,
                             (*factory)(def, table_schema));
  STARBURST_ASSIGN_OR_RETURN(TableStorage * table, GetTable(def.table_name));

  // Backfill from existing rows.
  std::unique_ptr<TableScanIterator> scan = table->NewScan();
  Row row;
  Rid rid;
  while (true) {
    STARBURST_ASSIGN_OR_RETURN(bool more, scan->Next(&row, &rid));
    if (!more) break;
    STARBURST_RETURN_IF_ERROR(attachment->OnInsert(row, rid));
  }

  index_table_[key] = IdentUpper(def.table_name);
  indexes_.emplace(key, std::move(attachment));
  return Status::OK();
}

Status StorageEngine::DropIndex(const std::string& name) {
  if (fail_next_drop_) {
    fail_next_drop_ = false;
    return Status::Internal("injected drop failure");
  }
  std::string key = IdentUpper(name);
  if (indexes_.erase(key) == 0) {
    return Status::NotFound("index '" + key + "' does not exist");
  }
  index_table_.erase(key);
  return Status::OK();
}

Result<TableStorage*> StorageEngine::GetTable(const std::string& name) {
  auto it = tables_.find(IdentUpper(name));
  if (it == tables_.end()) {
    return Status::NotFound("table storage '" + IdentUpper(name) +
                            "' does not exist");
  }
  return it->second.get();
}

Result<Attachment*> StorageEngine::GetIndex(const std::string& name) {
  auto it = indexes_.find(IdentUpper(name));
  if (it == indexes_.end()) {
    return Status::NotFound("index '" + IdentUpper(name) + "' does not exist");
  }
  return it->second.get();
}

std::vector<Attachment*> StorageEngine::AttachmentsOn(
    const std::string& table_name) {
  std::string key = IdentUpper(table_name);
  std::vector<Attachment*> out;
  for (const auto& [index_name, table] : index_table_) {
    if (table == key) out.push_back(indexes_[index_name].get());
  }
  return out;
}

Result<Rid> StorageEngine::InsertRow(const std::string& table_name,
                                     const Row& row) {
  STARBURST_ASSIGN_OR_RETURN(TableStorage * table, GetTable(table_name));
  STARBURST_ASSIGN_OR_RETURN(Rid rid, table->Insert(row));
  for (Attachment* att : AttachmentsOn(table_name)) {
    Status st = att->OnInsert(row, rid);
    if (!st.ok()) {
      // Undo the base insert so a unique violation leaves no orphan row.
      (void)table->Delete(rid);
      return st;
    }
  }
  return rid;
}

Status StorageEngine::DeleteRow(const std::string& table_name, Rid rid) {
  STARBURST_ASSIGN_OR_RETURN(TableStorage * table, GetTable(table_name));
  STARBURST_ASSIGN_OR_RETURN(Row row, table->Fetch(rid));
  STARBURST_RETURN_IF_ERROR(table->Delete(rid));
  for (Attachment* att : AttachmentsOn(table_name)) {
    STARBURST_RETURN_IF_ERROR(att->OnDelete(row, rid));
  }
  return Status::OK();
}

Result<Rid> StorageEngine::UpdateRow(const std::string& table_name, Rid rid,
                                     const Row& row) {
  STARBURST_ASSIGN_OR_RETURN(TableStorage * table, GetTable(table_name));
  STARBURST_ASSIGN_OR_RETURN(Row old_row, table->Fetch(rid));
  STARBURST_ASSIGN_OR_RETURN(Rid new_rid, table->Update(rid, row));
  for (Attachment* att : AttachmentsOn(table_name)) {
    STARBURST_RETURN_IF_ERROR(att->OnDelete(old_row, rid));
    STARBURST_RETURN_IF_ERROR(att->OnInsert(row, new_rid));
  }
  return new_rid;
}

}  // namespace starburst
