#ifndef STARBURST_EXEC_PARALLEL_SHARED_HASH_TABLE_H_
#define STARBURST_EXEC_PARALLEL_SHARED_HASH_TABLE_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/row.h"

namespace starburst::exec::parallel {

/// A hash-join build table shared by every probe clone under one Gather.
///
/// Built in two scheduler phases: (1) each worker drains its morsel share
/// of the build side and stages rows into per-worker, per-partition
/// vectors (no locking); (2) one task per partition folds all workers'
/// staged rows for that partition into the partition's hash map. After
/// phase 2 the table is immutable and Probe() is safe from any thread.
///
/// Rows whose key contains a NULL are the *caller's* responsibility to
/// skip before Stage() — NULL keys never join (same rule as HashJoinOp's
/// local build).
class SharedHashTable {
 public:
  void Reset(size_t num_workers, size_t num_partitions) {
    partitions_.assign(num_partitions == 0 ? 1 : num_partitions, Table{});
    staged_.assign(num_workers == 0 ? 1 : num_workers,
                   std::vector<std::vector<Staged>>(partitions_.size()));
  }

  size_t num_partitions() const { return partitions_.size(); }

  /// Phase 1: worker `w` stages one build-side row (thread-safe across
  /// distinct workers).
  void Stage(size_t worker, Row key, Row row) {
    size_t p = RowHash{}(key) % partitions_.size();
    staged_[worker][p].push_back(Staged{std::move(key), std::move(row)});
  }

  /// Phase 2: folds every worker's staged rows for `partition` into the
  /// partition table (thread-safe across distinct partitions).
  void MergePartition(size_t partition) {
    Table& table = partitions_[partition];
    for (auto& per_worker : staged_) {
      for (Staged& s : per_worker[partition]) {
        table[std::move(s.key)].push_back(std::move(s.row));
      }
      per_worker[partition].clear();
      per_worker[partition].shrink_to_fit();
    }
  }

  /// Read-only probe; valid once every MergePartition() has returned.
  const std::vector<Row>* Probe(const Row& key) const {
    const Table& table = partitions_[RowHash{}(key) % partitions_.size()];
    auto it = table.find(key);
    return it == table.end() ? nullptr : &it->second;
  }

 private:
  using Table = std::unordered_map<Row, std::vector<Row>, RowHash>;
  struct Staged {
    Row key;
    Row row;
  };

  std::vector<Table> partitions_;
  std::vector<std::vector<std::vector<Staged>>> staged_;  // [worker][part]
};

}  // namespace starburst::exec::parallel

#endif  // STARBURST_EXEC_PARALLEL_SHARED_HASH_TABLE_H_
