#include "engine/result_set.h"

#include <algorithm>
#include <sstream>

namespace starburst {

std::string ResultSet::ToString() const {
  if (!message_.empty()) {
    std::string out = message_;
    if (affected_rows_ > 0) {
      out += " (" + std::to_string(affected_rows_) + " rows)";
    }
    return out + "\n";
  }
  // Column widths.
  std::vector<size_t> widths;
  for (const std::string& name : column_names_) widths.push_back(name.size());
  std::vector<std::vector<std::string>> rendered;
  for (const Row& row : rows_) {
    std::vector<std::string> cells;
    for (size_t i = 0; i < row.size(); ++i) {
      std::string cell = row[i].ToString();
      if (i >= widths.size()) widths.push_back(0);
      widths[i] = std::max(widths[i], cell.size());
      cells.push_back(std::move(cell));
    }
    rendered.push_back(std::move(cells));
  }

  std::ostringstream out;
  auto rule = [&]() {
    out << "+";
    for (size_t w : widths) out << std::string(w + 2, '-') << "+";
    out << "\n";
  };
  rule();
  out << "|";
  for (size_t i = 0; i < column_names_.size(); ++i) {
    out << " " << column_names_[i]
        << std::string(widths[i] - column_names_[i].size() + 1, ' ') << "|";
  }
  out << "\n";
  rule();
  for (const auto& cells : rendered) {
    out << "|";
    for (size_t i = 0; i < cells.size(); ++i) {
      out << " " << cells[i] << std::string(widths[i] - cells[i].size() + 1, ' ')
          << "|";
    }
    out << "\n";
  }
  rule();
  out << rows_.size() << " row(s)\n";
  return out.str();
}

}  // namespace starburst
