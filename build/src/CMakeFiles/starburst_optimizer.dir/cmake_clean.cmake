file(REMOVE_RECURSE
  "CMakeFiles/starburst_optimizer.dir/optimizer/cost_model.cc.o"
  "CMakeFiles/starburst_optimizer.dir/optimizer/cost_model.cc.o.d"
  "CMakeFiles/starburst_optimizer.dir/optimizer/join_enumerator.cc.o"
  "CMakeFiles/starburst_optimizer.dir/optimizer/join_enumerator.cc.o.d"
  "CMakeFiles/starburst_optimizer.dir/optimizer/optimizer.cc.o"
  "CMakeFiles/starburst_optimizer.dir/optimizer/optimizer.cc.o.d"
  "CMakeFiles/starburst_optimizer.dir/optimizer/plan.cc.o"
  "CMakeFiles/starburst_optimizer.dir/optimizer/plan.cc.o.d"
  "CMakeFiles/starburst_optimizer.dir/optimizer/star.cc.o"
  "CMakeFiles/starburst_optimizer.dir/optimizer/star.cc.o.d"
  "libstarburst_optimizer.a"
  "libstarburst_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starburst_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
