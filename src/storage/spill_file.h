#ifndef STARBURST_STORAGE_SPILL_FILE_H_
#define STARBURST_STORAGE_SPILL_FILE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/row.h"
#include "common/row_batch.h"

namespace starburst {

/// An append-only temporary file of encoded rows — the spill substrate
/// blocking operators (external sort runs, grace-partition buckets) write
/// batch-at-a-time and stream back sequentially. Rows are framed as
/// `u32 length + VarRecordCodec payload`.
///
/// Lifecycle: Create() makes a unique file in the spill directory
/// (`$STARBURST_SPILL_DIR`, else the system temp dir); the destructor
/// closes and unlinks it. Ownership therefore IS the cleanup contract:
/// operators hold their spill files in members, so Close()/destruction —
/// including the error and cancel paths — removes the bytes from disk.
/// live_count()/live_bytes() expose the outstanding file population for
/// leak regression tests.
class SpillFile {
 public:
  static Result<std::unique_ptr<SpillFile>> Create();

  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Spill files alive process-wide (created, not yet destroyed).
  static uint64_t live_count();
  /// Bytes written to files currently alive.
  static uint64_t live_bytes();
  /// Spill files ever created process-wide (monotonic; feeds metrics).
  static uint64_t total_count();
  /// Bytes ever spilled process-wide (monotonic). Deltas around a
  /// statement give that statement's spill volume.
  static uint64_t total_bytes();

  Status AppendRow(const Row& row);
  /// Appends every active row of `batch` (the batch-at-a-time write path).
  Status AppendBatch(const RowBatch& batch);

  uint64_t rows_written() const { return rows_written_; }
  uint64_t bytes_written() const { return bytes_written_; }

  /// Flushes buffered writes; call before opening readers. Appending
  /// after Finish is allowed (partition files interleave with reads of
  /// sibling partitions), but requires another Finish before new readers
  /// see the tail.
  Status Finish();

  /// Sequential scan over the rows of one spill file. Each reader owns an
  /// independent descriptor, so a k-way merge holds k readers over k run
  /// files concurrently. The parent SpillFile must outlive its readers.
  class Reader {
   public:
    ~Reader();
    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;

    /// False at end of file.
    Result<bool> NextRow(Row* row);
    /// Fills `batch` (cleared by the caller) up to its fill limit; false
    /// at end of file with no rows staged.
    Result<bool> NextBatch(RowBatch* batch);

   private:
    friend class SpillFile;
    explicit Reader(std::FILE* f) : file_(f) {}

    std::FILE* file_;
    std::string scratch_;  // payload buffer reused across rows
  };

  Result<std::unique_ptr<Reader>> OpenReader() const;

 private:
  SpillFile(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  std::FILE* file_;
  uint64_t rows_written_ = 0;
  uint64_t bytes_written_ = 0;
  std::string encode_scratch_;  // row encoding buffer reused across appends
};

}  // namespace starburst

#endif  // STARBURST_STORAGE_SPILL_FILE_H_
