#ifndef STARBURST_EXEC_STREAM_H_
#define STARBURST_EXEC_STREAM_H_

#include <atomic>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/memory_tracker.h"
#include "common/result.h"
#include "common/row.h"
#include "common/row_batch.h"
#include "obs/op_stats.h"
#include "qgm/box.h"
#include "storage/storage_engine.h"

namespace starburst::exec {

/// Runtime statistics the QES collects while interpreting a QEP.
/// Counters are atomic: parallel pipeline clones under a Gather share
/// the coordinator's ExecContext and bump these concurrently. Copying
/// (QueryMetrics keeps a snapshot) is defined field-wise, relaxed.
struct ExecStats {
  std::atomic<uint64_t> rows_emitted{0};
  std::atomic<uint64_t> subquery_evaluations{0};  // inner plan (re-)executions
  std::atomic<uint64_t> subquery_cache_hits{0};   // correlation unchanged
  std::atomic<uint64_t> shipped_rows{0};          // through SHIP operators
  std::atomic<uint64_t> recursion_iterations{0};
  std::atomic<uint64_t> shared_materializations{0};  // shared TEMPs built

  ExecStats() = default;
  ExecStats(const ExecStats& o) { *this = o; }
  ExecStats& operator=(const ExecStats& o) {
    rows_emitted = o.rows_emitted.load(std::memory_order_relaxed);
    subquery_evaluations =
        o.subquery_evaluations.load(std::memory_order_relaxed);
    subquery_cache_hits = o.subquery_cache_hits.load(std::memory_order_relaxed);
    shipped_rows = o.shipped_rows.load(std::memory_order_relaxed);
    recursion_iterations =
        o.recursion_iterations.load(std::memory_order_relaxed);
    shared_materializations =
        o.shared_materializations.load(std::memory_order_relaxed);
    return *this;
  }
};

/// Shared evaluation context for one query execution: Core access,
/// correlation parameter frames (evaluate-on-demand subqueries, dependent
/// joins), and the recursion working tables.
class ExecContext {
 public:
  ExecContext(StorageEngine* storage, const Catalog* catalog)
      : storage_(storage), catalog_(catalog), run_id_(NextRunId()) {}

  StorageEngine* storage() { return storage_; }
  const Catalog* catalog() const { return catalog_; }
  ExecStats& stats() { return stats_; }

  /// Unique execution epoch, distinct for every ExecContext in the
  /// process. Operator trees that outlive one execution (cached/prepared
  /// plans) compare this against the epoch they last saw to notice a new
  /// run and drop per-run memo state (e.g. subquery caches).
  uint64_t run_id() const { return run_id_; }

  /// Rows a batched operator stages per NextBatch call. 1 pins exact
  /// row-at-a-time behavior (`SET batch_size = 1`); set before Open —
  /// operators size their staging batches when opened.
  size_t batch_size() const { return batch_size_; }
  void set_batch_size(size_t n) { batch_size_ = n == 0 ? 1 : n; }

  /// Query-level memory governor: every blocking operator parents its own
  /// tracker here, so `SET query_memory` caps their *sum* — one operator
  /// over-consuming forces the others to spill. Budget 0 = unlimited
  /// (still counts, for observability). Set before Open.
  MemoryTracker* query_memory() { return &query_memory_; }
  void set_query_memory_budget(uint64_t bytes) {
    query_memory_.Configure(bytes, nullptr);
  }

  /// Cooperative cancellation. The engine attaches the statement's token
  /// before Open; operators call CheckCancel() at batch boundaries (block
  /// refills, spill waves, merge passes — never per row). Ungoverned
  /// contexts (no token) pay one null compare.
  void set_cancel_token(CancelToken* token) { cancel_ = token; }
  CancelToken* cancel_token() const { return cancel_; }
  Status CheckCancel() {
    if (cancel_ == nullptr) return Status::OK();
    return cancel_->Check();
  }

  /// Correlation frames. A dependent join or subquery invocation pushes a
  /// frame of (quantifier, column) -> value before (re)opening the inner
  /// stream; frames nest for multi-level correlation. A frame holds the
  /// handful of columns one correlation site binds, so it is a flat
  /// vector scanned linearly — LookupParam sits on the per-row hot path
  /// of every dependent join and must not chase red-black trees.
  using ParamKey = std::pair<const qgm::Quantifier*, size_t>;
  struct ParamFrame {
    std::vector<std::pair<ParamKey, Value>> values;

    void Clear() { values.clear(); }  // keeps capacity for the next rebind
    void Set(const qgm::Quantifier* q, size_t column, Value v) {
      for (auto& kv : values) {
        if (kv.first.first == q && kv.first.second == column) {
          kv.second = std::move(v);
          return;
        }
      }
      values.emplace_back(ParamKey{q, column}, std::move(v));
    }
    const Value* Find(const qgm::Quantifier* q, size_t column) const {
      for (const auto& kv : values) {
        if (kv.first.first == q && kv.first.second == column)
          return &kv.second;
      }
      return nullptr;
    }
  };
  void PushParams(const ParamFrame* frame) { param_stack_.push_back(frame); }
  void PopParams() { param_stack_.pop_back(); }
  /// Innermost binding wins.
  Result<Value> LookupParam(const qgm::Quantifier* q, size_t column) const;

  /// Recursion: the RECURSE operator publishes the table ITERREF reads,
  /// keyed by the recursive-union box.
  void SetIterationTable(const qgm::Box* recursion,
                         const std::vector<Row>* rows) {
    iteration_tables_[recursion] = rows;
  }
  const std::vector<Row>* IterationTable(const qgm::Box* recursion) const {
    auto it = iteration_tables_.find(recursion);
    return it == iteration_tables_.end() ? nullptr : it->second;
  }

  /// Shared table-expression materializations ("materialized once and
  /// used several times", §5), keyed by the optimizer's shared-TEMP plan
  /// node. All consumer operators read the same copy.
  const std::vector<Row>* SharedTable(const void* key) const {
    auto it = shared_tables_.find(key);
    return it == shared_tables_.end() ? nullptr : &it->second;
  }
  const std::vector<Row>* StoreSharedTable(const void* key,
                                           std::vector<Row> rows) {
    ++stats_.shared_materializations;
    return &(shared_tables_[key] = std::move(rows));
  }

 private:
  static uint64_t NextRunId() {
    static std::atomic<uint64_t> counter{0};
    return ++counter;
  }

  StorageEngine* storage_;
  const Catalog* catalog_;
  CancelToken* cancel_ = nullptr;
  uint64_t run_id_ = 0;
  size_t batch_size_ = RowBatch::kDefaultCapacity;
  std::vector<const ParamFrame*> param_stack_;
  std::unordered_map<const qgm::Box*, const std::vector<Row>*>
      iteration_tables_;
  std::unordered_map<const void*, std::vector<Row>> shared_tables_;
  MemoryTracker query_memory_;
  ExecStats stats_;
};

/// A QES operator (§7): "Each operator takes one or more streams of tuples
/// as input and produces one or more streams of tuples (usually one) as
/// output. We implement the concept of streams by lazy evaluation" — the
/// classic open/next/close protocol, extended batch-at-a-time: NextBatch
/// is the primary path and moves up to ExecContext::batch_size() tuples
/// per call. Operators are re-openable: a dependent join re-Opens its
/// inner stream per outer row under fresh parameters.
///
/// Every operator still implements the row protocol (NextImpl); batch-
/// native operators additionally override NextBatchImpl. The default
/// NextBatchImpl adapts row-at-a-time operators (subquery runtimes,
/// recursion, quantified compares) into a batched pipeline by looping
/// NextImpl — one-directional, so there is no shim recursion and no
/// operator ever prefetches rows it was not asked for (EXPLAIN ANALYZE
/// row counts stay exact at any batch size).
///
/// NextBatch contract: the shim clears `batch` before dispatch; the impl
/// stages up to batch->fill_limit() rows and the call returns true iff at
/// least one *active* row was produced. false means end of stream with an
/// empty batch; an impl must never return true with an empty batch (the
/// driving loops use emptiness to terminate).
///
/// The public Open/Next/NextBatch/Close entry points are non-virtual
/// shims: with no stats sink attached (the default) they forward straight
/// to the *Impl virtuals at the cost of one branch; with one attached
/// (EXPLAIN ANALYZE, SessionOptions::collect_op_stats) they also count
/// invocations, rows, and inclusive wall time. Batched calls amortize the
/// accounting: one timestamp pair and one next_calls tick per batch,
/// rows_out += the batch's row count. Subclasses implement OpenImpl/
/// NextImpl/CloseImpl (and optionally NextBatchImpl) and call their
/// children through the public protocol, so instrumentation composes
/// through the whole tree.
class Operator {
 public:
  virtual ~Operator() = default;

  Status Open(ExecContext* ctx) {
    if (stats_ == nullptr) return OpenImpl(ctx);
    return OpenTimed(ctx);
  }
  /// Produces the next tuple; false at end of stream.
  Result<bool> Next(Row* row) {
    if (stats_ == nullptr) return NextImpl(row);
    return NextTimed(row);
  }
  /// Produces the next batch of tuples; false at end of stream (with
  /// `batch` left empty). The batch is cleared on entry; its capacity and
  /// fill limit are the caller's to choose.
  Result<bool> NextBatch(RowBatch* batch) {
    batch->Clear();
    if (stats_ == nullptr) return NextBatchImpl(batch);
    return NextBatchTimed(batch);
  }
  void Close() {
    if (stats_ == nullptr) {
      CloseImpl();
    } else {
      CloseTimed();
    }
  }

  /// Attaches the counter block this operator accumulates into (null
  /// detaches). The block must outlive the operator's use.
  void set_stats(obs::OperatorStats* stats) { stats_ = stats; }

 protected:
  virtual Status OpenImpl(ExecContext* ctx) = 0;
  virtual Result<bool> NextImpl(Row* row) = 0;
  /// Row-compat adapter: fills `batch` by looping NextImpl. Batch-native
  /// operators override this; they must still implement NextImpl (used
  /// by row-at-a-time consumers like dependent nested-loop joins).
  virtual Result<bool> NextBatchImpl(RowBatch* batch);
  virtual void CloseImpl() = 0;

  /// Spill/memory accounting hooks for blocking operators; no-ops when no
  /// stats sink is attached, so governed operators call them
  /// unconditionally.
  void StatSpill(uint64_t runs, uint64_t bytes) {
    if (stats_ == nullptr) return;
    stats_->spill_runs.fetch_add(runs, std::memory_order_relaxed);
    stats_->spill_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  void StatPeakMemory(uint64_t bytes) {
    if (stats_ == nullptr) return;
    uint64_t prev = stats_->peak_memory_bytes.load(std::memory_order_relaxed);
    while (prev < bytes && !stats_->peak_memory_bytes.compare_exchange_weak(
                               prev, bytes, std::memory_order_relaxed)) {
    }
  }

 private:
  Status OpenTimed(ExecContext* ctx);
  Result<bool> NextTimed(Row* row);
  Result<bool> NextBatchTimed(RowBatch* batch);
  void CloseTimed();

  obs::OperatorStats* stats_ = nullptr;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Copies rows [*pos, rows.size()) into `batch` until it fills, advancing
/// *pos — the emit loop shared by every operator that batches out of a
/// materialized buffer (sort, temp, gather, aggregation results).
/// Returns true iff at least one row was staged.
inline bool FillBatchFromRows(const std::vector<Row>& rows, size_t* pos,
                              RowBatch* batch) {
  while (!batch->full() && *pos < rows.size()) {
    batch->Append(rows[(*pos)++]);
  }
  return !batch->empty();
}

/// Drains an operator into a vector (operator must be Open), pulling
/// `batch_size` rows per NextBatch call and moving them out of the batch.
/// `reserve_hint` (the plan's estimated cardinality, when known)
/// pre-reserves the output — clamped, so a wild misestimate cannot
/// balloon memory.
/// When `ctx` is supplied, the statement's cancel token (if any) is
/// checked before each NextBatch pull, so a KILL or deadline lands
/// within one batch boundary even while the operator itself is between
/// check sites.
Result<std::vector<Row>> DrainOperator(Operator* op, size_t batch_size,
                                       size_t reserve_hint = 0,
                                       ExecContext* ctx = nullptr);
/// Convenience overload: default batch size, no reserve hint.
Result<std::vector<Row>> DrainOperator(Operator* op);
/// Core drain loop: appends into `out`, staging through caller-owned
/// `scratch` (reused across calls by per-row drains like the subquery
/// runtime, which would otherwise rebuild a batch per outer row).
Status DrainOperatorInto(Operator* op, RowBatch* scratch,
                         std::vector<Row>* out, ExecContext* ctx = nullptr);

}  // namespace starburst::exec

#endif  // STARBURST_EXEC_STREAM_H_
