file(REMOVE_RECURSE
  "CMakeFiles/example_logic_rules.dir/logic_rules.cc.o"
  "CMakeFiles/example_logic_rules.dir/logic_rules.cc.o.d"
  "example_logic_rules"
  "example_logic_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_logic_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
