#ifndef STARBURST_ENGINE_STATEMENT_REGISTRY_H_
#define STARBURST_ENGINE_STATEMENT_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/memory_tracker.h"
#include "common/status.h"

namespace starburst {

/// One row of `sys.statements`: a statement currently executing, or one
/// of the most recently finished (ring-buffered history). Modeled on
/// qserv's wpublish per-query bookkeeping — the operator-facing answer
/// to "what is the engine doing right now, and what did it just do".
struct StatementSnapshot {
  int64_t id = 0;
  std::string sql;          // normalized, truncated
  std::string status;       // "running" | "ok" | "error" | "cancelled" |
                            // "timeout" | "rejected"
  std::string phase;        // live: "parse"/"compile"/"queued"/"execute";
                            // frozen at Finish for history rows
  int64_t start_ts_us = 0;  // wall-clock statement start
  int64_t total_us = 0;     // 0 while running
  uint64_t peak_memory_bytes = 0;
};

/// The engine's live-statement table: every statement registers at start
/// and moves into a bounded finished-history ring at end. `KILL <id>`
/// resolves its target here; `sys.statements` materializes from
/// Snapshot(). All methods are thread-safe — registration, phase
/// updates, kills, and snapshot scans arrive from different sessions.
class StatementRegistry {
 public:
  static constexpr size_t kDefaultHistoryCapacity = 128;
  static constexpr size_t kMaxSqlLength = 512;

  /// Admits a live statement. `token` must outlive the statement (it is
  /// the per-statement CancelToken owned by the session state); KILL
  /// flips it through this registry.
  void Register(int64_t id, std::string sql, int64_t start_ts_us,
                CancelToken* token);

  /// Updates the live phase label. `phase` must be a string literal (the
  /// registry stores the pointer). Unknown ids are ignored — compile
  /// paths that run outside a registered statement (Prepare) pass id 0.
  void SetPhase(int64_t id, const char* phase);

  /// Points the live entry at the executing query's memory tracker so
  /// snapshots report a live peak. Cleared (nullptr) by the executor
  /// before the tracker dies; tracker counters are atomic, so concurrent
  /// snapshot reads are safe.
  void SetMemoryTracker(int64_t id, const MemoryTracker* tracker);

  /// Retires a live statement into history with its final status
  /// ("ok"/"error"/"cancelled"/"timeout"/"rejected"). Unknown ids are
  /// ignored.
  void Finish(int64_t id, const std::string& status,
              uint64_t peak_memory_bytes, int64_t total_us);

  /// Trips the statement's cancel token. NotFound when `id` is not live
  /// (finished statements cannot be killed).
  Status Kill(int64_t id);

  /// Live statements (oldest first), then finished history (newest
  /// last) — the `sys.statements` relation.
  std::vector<StatementSnapshot> Snapshot() const;

  size_t live_count() const;
  void set_history_capacity(size_t n);

 private:
  struct Live {
    std::string sql;
    int64_t start_ts_us = 0;
    const char* phase = "parse";
    CancelToken* token = nullptr;
    const MemoryTracker* memory = nullptr;
  };

  mutable std::mutex mu_;
  std::map<int64_t, Live> live_;
  std::deque<StatementSnapshot> history_;
  size_t history_capacity_ = kDefaultHistoryCapacity;
};

}  // namespace starburst

#endif  // STARBURST_ENGINE_STATEMENT_REGISTRY_H_
