#include <algorithm>
#include <cstring>
#include <limits>

#include "storage/record_codec.h"
#include "storage/storage_manager.h"

namespace starburst {

namespace {

// Fixed-length page layout:
//   [0..2)  u16 occupied_count
//   [2..2+bitmap) occupancy bitmap (1 bit per slot)
//   then `capacity` record slots of `record_size` bytes each.
constexpr size_t kFixedHeader = 2;

size_t SlotsPerPage(size_t record_size) {
  size_t cap = (kPageSize - kFixedHeader) * 8 / (record_size * 8 + 1);
  while (kFixedHeader + (cap + 7) / 8 + cap * record_size > kPageSize) --cap;
  return cap;
}

class FixedTableStorage : public TableStorage {
 public:
  FixedTableStorage(BufferPool* pool, FileId file, FixedRecordCodec codec)
      : pool_(pool),
        file_(file),
        codec_(std::move(codec)),
        capacity_(SlotsPerPage(codec_.record_size())),
        bitmap_bytes_((capacity_ + 7) / 8) {}

  Result<Rid> Insert(const Row& row) override {
    size_t num_pages = pool_->pager()->PageCount(file_);
    PageNo target;
    if (num_pages > 0 &&
        pool_->pager()->RawPage(file_, static_cast<PageNo>(num_pages - 1))
                ->ReadU16(0) < capacity_) {
      target = static_cast<PageNo>(num_pages - 1);
    } else {
      target = FindPageWithSpace();
    }
    Page* page = pool_->GetMutablePage(file_, target);
    uint16_t slot = FindFreeSlot(*page);
    uint8_t* record = RecordPtr(page, slot);
    STARBURST_RETURN_IF_ERROR(codec_.Encode(row, record));
    SetOccupied(page, slot, true);
    page->WriteU16(0, static_cast<uint16_t>(page->ReadU16(0) + 1));
    ++row_count_;
    return Rid{target, slot};
  }

  Status Delete(Rid rid) override {
    STARBURST_RETURN_IF_ERROR(CheckRid(rid));
    Page* page = pool_->GetMutablePage(file_, rid.page);
    if (!Occupied(*page, rid.slot)) return Status::NotFound("rid already deleted");
    SetOccupied(page, rid.slot, false);
    page->WriteU16(0, static_cast<uint16_t>(page->ReadU16(0) - 1));
    --row_count_;
    return Status::OK();
  }

  Result<Row> Fetch(Rid rid) override {
    STARBURST_RETURN_IF_ERROR(CheckRid(rid));
    const Page* page = pool_->GetPage(file_, rid.page);
    if (!Occupied(*page, rid.slot)) return Status::NotFound("rid deleted");
    return codec_.Decode(page->data.data() + RecordOffset(rid.slot));
  }

  Result<Rid> Update(Rid rid, const Row& row) override {
    STARBURST_RETURN_IF_ERROR(CheckRid(rid));
    Page* page = pool_->GetMutablePage(file_, rid.page);
    if (!Occupied(*page, rid.slot)) return Status::NotFound("rid deleted");
    STARBURST_RETURN_IF_ERROR(codec_.Encode(row, RecordPtr(page, rid.slot)));
    return rid;  // fixed-length records always update in place
  }

  std::unique_ptr<TableScanIterator> NewScan() override;
  std::unique_ptr<TableScanIterator> NewRangeScan(PageNo begin_page,
                                                  PageNo end_page) override;

  uint64_t row_count() const override { return row_count_; }
  uint64_t page_count() const override {
    return pool_->pager()->PageCount(file_);
  }

  BufferPool* pool() { return pool_; }
  FileId file() const { return file_; }
  size_t capacity() const { return capacity_; }

  bool Occupied(const Page& page, uint16_t slot) const {
    return (page.data[kFixedHeader + slot / 8] >> (slot % 8)) & 1;
  }

  Result<Row> DecodeSlot(const Page& page, uint16_t slot) const {
    return codec_.Decode(page.data.data() + RecordOffset(slot));
  }

 private:
  size_t RecordOffset(uint16_t slot) const {
    return kFixedHeader + bitmap_bytes_ + slot * codec_.record_size();
  }
  uint8_t* RecordPtr(Page* page, uint16_t slot) const {
    return page->data.data() + RecordOffset(slot);
  }
  void SetOccupied(Page* page, uint16_t slot, bool on) const {
    uint8_t& byte = page->data[kFixedHeader + slot / 8];
    if (on) {
      byte |= static_cast<uint8_t>(1u << (slot % 8));
    } else {
      byte &= static_cast<uint8_t>(~(1u << (slot % 8)));
    }
  }
  uint16_t FindFreeSlot(const Page& page) const {
    for (uint16_t s = 0; s < capacity_; ++s) {
      if (!Occupied(page, s)) return s;
    }
    return 0;  // unreachable: caller guarantees space
  }
  PageNo FindPageWithSpace() {
    size_t num_pages = pool_->pager()->PageCount(file_);
    for (size_t p = 0; p < num_pages; ++p) {
      if (pool_->pager()->RawPage(file_, static_cast<PageNo>(p))->ReadU16(0) <
          capacity_) {
        return static_cast<PageNo>(p);
      }
    }
    return pool_->NewPage(file_);
  }
  Status CheckRid(Rid rid) const {
    if (rid.page >= pool_->pager()->PageCount(file_) || rid.slot >= capacity_) {
      return Status::OutOfRange("rid out of range");
    }
    return Status::OK();
  }

  BufferPool* pool_;
  FileId file_;
  FixedRecordCodec codec_;
  size_t capacity_;
  size_t bitmap_bytes_;
  uint64_t row_count_ = 0;
};

class FixedScanIterator : public TableScanIterator {
 public:
  /// Walks pages [begin_page, min(end_page, PageCount)).
  FixedScanIterator(FixedTableStorage* table, PageNo begin_page,
                    PageNo end_page)
      : table_(table), page_(begin_page), end_page_(end_page) {}

  Result<bool> Next(Row* row, Rid* rid) override {
    size_t num_pages = std::min<size_t>(
        table_->pool()->pager()->PageCount(table_->file()), end_page_);
    while (page_ < num_pages) {
      const Page* page = table_->pool()->GetPage(table_->file(),
                                                 static_cast<PageNo>(page_));
      while (slot_ < table_->capacity()) {
        uint16_t s = static_cast<uint16_t>(slot_++);
        if (!table_->Occupied(*page, s)) continue;
        STARBURST_ASSIGN_OR_RETURN(Row decoded, table_->DecodeSlot(*page, s));
        *row = std::move(decoded);
        *rid = Rid{static_cast<PageNo>(page_), s};
        return true;
      }
      ++page_;
      slot_ = 0;
    }
    return false;
  }

  /// Block fill: one page resolution per visited page.
  Result<size_t> NextBlock(Row* rows, Rid* rids, size_t max_rows) override {
    size_t n = 0;
    size_t num_pages = std::min<size_t>(
        table_->pool()->pager()->PageCount(table_->file()), end_page_);
    while (n < max_rows && page_ < num_pages) {
      const Page* page = table_->pool()->GetPage(table_->file(),
                                                 static_cast<PageNo>(page_));
      while (n < max_rows && slot_ < table_->capacity()) {
        uint16_t s = static_cast<uint16_t>(slot_++);
        if (!table_->Occupied(*page, s)) continue;
        STARBURST_ASSIGN_OR_RETURN(Row decoded, table_->DecodeSlot(*page, s));
        rows[n] = std::move(decoded);
        rids[n] = Rid{static_cast<PageNo>(page_), s};
        ++n;
      }
      if (slot_ >= table_->capacity()) {
        ++page_;
        slot_ = 0;
      }
    }
    return n;
  }

 private:
  FixedTableStorage* table_;
  size_t page_;
  size_t end_page_;
  size_t slot_ = 0;
};

std::unique_ptr<TableScanIterator> FixedTableStorage::NewScan() {
  return std::make_unique<FixedScanIterator>(
      this, 0, std::numeric_limits<PageNo>::max());
}

std::unique_ptr<TableScanIterator> FixedTableStorage::NewRangeScan(
    PageNo begin_page, PageNo end_page) {
  return std::make_unique<FixedScanIterator>(this, begin_page, end_page);
}

class FixedStorageManager : public StorageManager {
 public:
  const std::string& name() const override {
    static const std::string kName = "FIXED";
    return kName;
  }

  Status ValidateSchema(const TableSchema& schema) const override {
    return FixedRecordCodec::ForSchema(schema).status();
  }

  Result<std::unique_ptr<TableStorage>> CreateTable(
      const TableDef& def, BufferPool* pool) override {
    STARBURST_ASSIGN_OR_RETURN(FixedRecordCodec codec,
                               FixedRecordCodec::ForSchema(def.schema));
    FileId file = pool->pager()->CreateFile();
    return std::unique_ptr<TableStorage>(
        new FixedTableStorage(pool, file, std::move(codec)));
  }
};

}  // namespace

std::unique_ptr<StorageManager> MakeFixedStorageManager() {
  return std::make_unique<FixedStorageManager>();
}

}  // namespace starburst
