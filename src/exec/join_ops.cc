#include <unordered_map>

#include "exec/operators.h"
#include "exec/parallel/shared_hash_table.h"

namespace starburst::exec {

using optimizer::JoinKind;

namespace {

Row ConcatRows(const Row& a, const Row& b) { return a.Concat(b); }

Row NullPad(const Row& outer, size_t inner_width) {
  std::vector<Value> values = outer.values();
  for (size_t i = 0; i < inner_width; ++i) values.push_back(Value::Null());
  return Row(std::move(values));
}

/// Evaluates the join's residual predicates over outer ++ inner.
Result<bool> PredsPass(const JoinSpec& spec, const Row& joined,
                       ExecContext* ctx) {
  for (const CompiledExprPtr& p : spec.predicates) {
    STARBURST_ASSIGN_OR_RETURN(bool ok, p->EvalPredicate(joined, ctx));
    if (!ok) return false;
  }
  return true;
}

/// Nested-loop join: one control structure, every join kind (§7: "By
/// clearly separating the 'control structure' of the join, i.e., the join
/// method, from the function performed during the join, i.e., the join
/// kind, we provide an additional degree of flexibility").
class NlJoinOp : public Operator {
 public:
  NlJoinOp(OperatorPtr outer, OperatorPtr inner, JoinSpec spec)
      : outer_(std::move(outer)), inner_(std::move(inner)),
        spec_(std::move(spec)) {}

  Status OpenImpl(ExecContext* ctx) override {
    ctx_ = ctx;
    STARBURST_RETURN_IF_ERROR(outer_->Open(ctx));
    have_outer_ = false;
    inner_open_ = false;
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override {
    // Verdict-per-outer-row kinds buffer nothing: each outer row is fully
    // decided against the inner stream before the next is fetched.
    while (true) {
      if (!have_outer_) {
        STARBURST_ASSIGN_OR_RETURN(bool more, outer_->Next(&outer_row_));
        if (!more) return false;
        have_outer_ = true;
        STARBURST_RETURN_IF_ERROR(ReopenInner());
        switch (spec_.kind) {
          case JoinKind::kExists:
          case JoinKind::kAnti:
          case JoinKind::kOpAll:
          case JoinKind::kSetPred: {
            STARBURST_ASSIGN_OR_RETURN(bool verdict, DecideOuter());
            have_outer_ = false;
            if (verdict) {
              *row = outer_row_;
              return true;
            }
            continue;
          }
          case JoinKind::kScalar: {
            STARBURST_ASSIGN_OR_RETURN(Row out, ScalarJoinRow());
            have_outer_ = false;
            *row = std::move(out);
            return true;
          }
          default:
            matched_ = false;
            break;
        }
      }
      // kRegular / kLeftOuter: stream matches lazily.
      Row inner_row;
      while (true) {
        STARBURST_ASSIGN_OR_RETURN(bool more, inner_->Next(&inner_row));
        if (!more) break;
        Row joined = ConcatRows(outer_row_, inner_row);
        STARBURST_ASSIGN_OR_RETURN(bool pass, PredsPass(spec_, joined, ctx_));
        if (pass) {
          matched_ = true;
          *row = std::move(joined);
          return true;
        }
      }
      bool emit_unmatched = spec_.kind == JoinKind::kLeftOuter && !matched_;
      have_outer_ = false;
      if (emit_unmatched) {
        *row = NullPad(outer_row_, spec_.inner_width);
        return true;
      }
    }
  }

  void CloseImpl() override {
    if (inner_open_) {
      inner_->Close();
      inner_open_ = false;
    }
    if (params_pushed_) {
      ctx_->PopParams();
      params_pushed_ = false;
    }
    outer_->Close();
  }

 private:
  Status ReopenInner() {
    if (inner_open_) inner_->Close();
    if (params_pushed_) {
      ctx_->PopParams();
      params_pushed_ = false;
    }
    if (!spec_.inner_params.empty()) {
      frame_.Clear();
      for (const SubqueryRuntime::ParamSource& src : spec_.inner_params) {
        Value v;
        if (src.outer_slot >= 0) {
          v = outer_row_[static_cast<size_t>(src.outer_slot)];
        } else {
          STARBURST_ASSIGN_OR_RETURN(v, ctx_->LookupParam(src.q, src.column));
        }
        frame_.Set(src.q, src.column, std::move(v));
      }
      ctx_->PushParams(&frame_);
      params_pushed_ = true;
    }
    STARBURST_RETURN_IF_ERROR(inner_->Open(ctx_));
    inner_open_ = true;
    return Status::OK();
  }

  /// Exists / anti / op-ALL / set-predicate verdict for the current outer.
  Result<bool> DecideOuter() {
    std::unique_ptr<SetPredicateState> state;
    if (spec_.kind == JoinKind::kSetPred) state = spec_.set_pred->make_state();

    Value operand;
    if (spec_.quant_operand != nullptr) {
      STARBURST_ASSIGN_OR_RETURN(operand,
                                 spec_.quant_operand->Eval(outer_row_, ctx_));
    }
    bool any_true = false, any_false = false, any_unknown = false;
    Row inner_row;
    while (true) {
      STARBURST_ASSIGN_OR_RETURN(bool more, inner_->Next(&inner_row));
      if (!more) break;
      Row joined = ConcatRows(outer_row_, inner_row);
      STARBURST_ASSIGN_OR_RETURN(bool pass, PredsPass(spec_, joined, ctx_));
      if (!pass) continue;
      if (spec_.quant_operand == nullptr) {
        any_true = true;  // plain EXISTS semantics
        if (spec_.kind == JoinKind::kExists || spec_.kind == JoinKind::kAnti) {
          break;
        }
        continue;
      }
      STARBURST_ASSIGN_OR_RETURN(
          Value cmp, EvalBinaryValues(spec_.cmp_op, operand, inner_row[0]));
      bool truth = !cmp.is_null() && cmp.bool_value();
      if (cmp.is_null()) any_unknown = true;
      if (truth) any_true = true;
      if (!cmp.is_null() && !truth) any_false = true;
      if (state != nullptr) {
        state->Observe(truth);
        if (state->Decided()) break;
      } else if (spec_.kind == JoinKind::kExists && truth) {
        break;
      } else if (spec_.kind == JoinKind::kOpAll && any_false) {
        break;
      }
    }
    switch (spec_.kind) {
      case JoinKind::kExists:
        return any_true;  // UNKNOWN-only folds to reject
      case JoinKind::kAnti:
        return !any_true && !any_unknown;
      case JoinKind::kOpAll:
        return !any_false && !any_unknown;
      case JoinKind::kSetPred:
        return state->Verdict();
      default:
        return Status::Internal("DecideOuter on a streaming join kind");
    }
  }

  Result<Row> ScalarJoinRow() {
    Row inner_row, match;
    size_t matches = 0;
    while (true) {
      STARBURST_ASSIGN_OR_RETURN(bool more, inner_->Next(&inner_row));
      if (!more) break;
      Row joined = ConcatRows(outer_row_, inner_row);
      STARBURST_ASSIGN_OR_RETURN(bool pass, PredsPass(spec_, joined, ctx_));
      if (!pass) continue;
      if (++matches > 1) {
        return Status::InvalidArgument(
            "scalar subquery returned more than one row");
      }
      match = std::move(joined);
    }
    if (matches == 0) return NullPad(outer_row_, spec_.inner_width);
    return match;
  }

  OperatorPtr outer_, inner_;
  JoinSpec spec_;
  ExecContext* ctx_ = nullptr;
  Row outer_row_;
  bool have_outer_ = false;
  bool inner_open_ = false;
  bool matched_ = false;
  ExecContext::ParamFrame frame_;
  bool params_pushed_ = false;
};

/// Hash join: equality keys, kinds regular / exists / anti / left-outer.
/// Either builds its own table from `inner`, or (parallel probe mode)
/// probes a pre-built SharedHashTable and owns no inner at all.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr outer, OperatorPtr inner,
             std::vector<std::pair<size_t, size_t>> keys, JoinSpec spec)
      : outer_(std::move(outer)), inner_(std::move(inner)),
        keys_(std::move(keys)), spec_(std::move(spec)) {}

  HashJoinOp(OperatorPtr outer, const parallel::SharedHashTable* shared,
             std::vector<std::pair<size_t, size_t>> keys, JoinSpec spec)
      : outer_(std::move(outer)), keys_(std::move(keys)),
        spec_(std::move(spec)), shared_(shared) {}

  Status OpenImpl(ExecContext* ctx) override {
    ctx_ = ctx;
    // The hash probe answers only "is there an equal key": it cannot
    // express the three-valued verdict of x <op> ANY/ALL, and it has no
    // per-outer streaming pass for the remaining kinds. Fail loudly
    // rather than silently dropping UNKNOWNs (the optimizer's
    // HashJoinStar never emits such plans; this guards hand-built ones).
    if (spec_.quant_operand != nullptr) {
      return Status::Internal(
          "hash join cannot evaluate quantified compares (use NL join)");
    }
    switch (spec_.kind) {
      case JoinKind::kRegular:
      case JoinKind::kExists:
      case JoinKind::kAnti:
      case JoinKind::kLeftOuter:
        break;
      default:
        return Status::Internal("unsupported hash join kind");
    }
    table_.clear();
    if (shared_ == nullptr) {
      STARBURST_RETURN_IF_ERROR(inner_->Open(ctx));
      RowBatch build_batch(ctx->batch_size());
      while (true) {
        STARBURST_ASSIGN_OR_RETURN(bool more, inner_->NextBatch(&build_batch));
        if (!more) break;
        size_t n = build_batch.size();
        for (size_t i = 0; i < n; ++i) {
          Row& inner_row = build_batch.row(i);
          Row key = InnerKey(inner_row);
          bool has_null = false;
          for (const Value& v : key.values()) {
            if (v.is_null()) has_null = true;
          }
          if (has_null) continue;  // NULL keys never join
          table_[std::move(key)].push_back(std::move(inner_row));
        }
      }
      inner_->Close();
    }
    STARBURST_RETURN_IF_ERROR(outer_->Open(ctx));
    outer_batch_.Reset(ctx->batch_size());
    outer_pos_ = 0;
    have_outer_ = false;
    cur_outer_ = nullptr;
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override {
    while (true) {
      if (!have_outer_) {
        STARBURST_ASSIGN_OR_RETURN(bool more, outer_->Next(&outer_row_));
        if (!more) return false;
        have_outer_ = true;
        matched_ = false;
        bucket_ = nullptr;
        bucket_pos_ = 0;
        Row key = OuterKey(outer_row_);
        bool has_null = false;
        for (const Value& v : key.values()) {
          if (v.is_null()) has_null = true;
        }
        if (!has_null) {
          // A NULL outer key probes nothing: kRegular/kExists drop the
          // row, kLeftOuter null-pads it, and kAnti emits it (NOT EXISTS
          // never matches on NULL) via the bucket-exhausted path below.
          if (shared_ != nullptr) {
            bucket_ = shared_->Probe(key);
          } else {
            auto it = table_.find(key);
            if (it != table_.end()) bucket_ = &it->second;
          }
        }
      }
      // Walk the bucket.
      while (bucket_ != nullptr && bucket_pos_ < bucket_->size()) {
        Row joined = ConcatRows(outer_row_, (*bucket_)[bucket_pos_++]);
        STARBURST_ASSIGN_OR_RETURN(bool pass, PredsPass(spec_, joined, ctx_));
        if (!pass) continue;
        matched_ = true;
        switch (spec_.kind) {
          case JoinKind::kRegular:
          case JoinKind::kLeftOuter:
            *row = std::move(joined);
            return true;
          case JoinKind::kExists:
            have_outer_ = false;
            *row = outer_row_;
            return true;
          case JoinKind::kAnti:
            have_outer_ = false;  // matched: rejected
            goto next_outer;
          default:
            return Status::Internal("unsupported hash join kind");
        }
      }
      // Bucket exhausted.
      {
        bool was_matched = matched_;
        have_outer_ = false;
        if (spec_.kind == JoinKind::kLeftOuter && !was_matched) {
          *row = NullPad(outer_row_, spec_.inner_width);
          return true;
        }
        if (spec_.kind == JoinKind::kAnti && !was_matched) {
          *row = outer_row_;
          return true;
        }
      }
    next_outer:;
    }
  }

  /// Batch-native probe: consumes the outer side batch-at-a-time and
  /// stages joined rows into the caller's batch, suspending mid-bucket
  /// when it fills. A consumer drives either Next or NextBatch for the
  /// lifetime of one Open, never both, so the row- and batch-path cursors
  /// (outer_row_ vs outer_batch_/cur_outer_) cannot interleave.
  Result<bool> NextBatchImpl(RowBatch* out) override {
    ScopedParamFold fold;
    for (const CompiledExprPtr& p : spec_.predicates) {
      STARBURST_RETURN_IF_ERROR(fold.Add(p.get(), ctx_));
    }
    while (!out->full()) {
      if (!have_outer_) {
        if (outer_pos_ >= outer_batch_.size()) {
          STARBURST_ASSIGN_OR_RETURN(bool more,
                                     outer_->NextBatch(&outer_batch_));
          if (!more) break;
          outer_pos_ = 0;
        }
        cur_outer_ = &outer_batch_.row(outer_pos_++);
        have_outer_ = true;
        matched_ = false;
        bucket_ = nullptr;
        bucket_pos_ = 0;
        Row key = OuterKey(*cur_outer_);
        bool has_null = false;
        for (const Value& v : key.values()) {
          if (v.is_null()) has_null = true;
        }
        if (!has_null) {
          if (shared_ != nullptr) {
            bucket_ = shared_->Probe(key);
          } else {
            auto it = table_.find(key);
            if (it != table_.end()) bucket_ = &it->second;
          }
        }
      }
      // Walk the bucket (suspend if the output batch fills mid-bucket).
      bool suspended = false;
      while (bucket_ != nullptr && bucket_pos_ < bucket_->size()) {
        if (out->full()) {
          suspended = true;
          break;
        }
        Row joined = ConcatRows(*cur_outer_, (*bucket_)[bucket_pos_++]);
        STARBURST_ASSIGN_OR_RETURN(bool pass, PredsPass(spec_, joined, ctx_));
        if (!pass) continue;
        matched_ = true;
        if (spec_.kind == JoinKind::kRegular ||
            spec_.kind == JoinKind::kLeftOuter) {
          out->Append(std::move(joined));
          continue;
        }
        if (spec_.kind == JoinKind::kExists) {
          out->Append(*cur_outer_);
        }
        // kExists emitted; kAnti matched: rejected — either way, done
        // with this outer row and the rest of its bucket.
        have_outer_ = false;
        bucket_ = nullptr;
        break;
      }
      if (suspended) break;
      if (have_outer_) {
        // Bucket exhausted for a streaming kind (or never existed).
        if (spec_.kind == JoinKind::kLeftOuter && !matched_) {
          out->Append(NullPad(*cur_outer_, spec_.inner_width));
        } else if (spec_.kind == JoinKind::kAnti && !matched_) {
          out->Append(*cur_outer_);
        }
        have_outer_ = false;
      }
    }
    return !out->empty();
  }

  void CloseImpl() override {
    outer_->Close();
    table_.clear();
  }

 private:
  Row InnerKey(const Row& r) const {
    std::vector<Value> values;
    for (const auto& [o, i] : keys_) values.push_back(r[i]);
    return Row(std::move(values));
  }
  Row OuterKey(const Row& r) const {
    std::vector<Value> values;
    for (const auto& [o, i] : keys_) values.push_back(r[o]);
    return Row(std::move(values));
  }

  OperatorPtr outer_, inner_;
  std::vector<std::pair<size_t, size_t>> keys_;
  JoinSpec spec_;
  const parallel::SharedHashTable* shared_ = nullptr;
  ExecContext* ctx_ = nullptr;
  std::unordered_map<Row, std::vector<Row>, RowHash> table_;
  Row outer_row_;
  RowBatch outer_batch_;          // batch-path outer staging
  size_t outer_pos_ = 0;          // next unconsumed row in outer_batch_
  const Row* cur_outer_ = nullptr;  // into outer_batch_; stable until refill
  bool have_outer_ = false;
  bool matched_ = false;
  const std::vector<Row>* bucket_ = nullptr;
  size_t bucket_pos_ = 0;
};

/// Sort-merge join over pre-sorted inputs (the glue STARs arranged the
/// orders); kinds regular / exists / left-outer.
class MergeJoinOp : public Operator {
 public:
  MergeJoinOp(OperatorPtr outer, OperatorPtr inner,
              std::vector<std::pair<size_t, size_t>> keys, JoinSpec spec)
      : outer_(std::move(outer)), inner_(std::move(inner)),
        keys_(std::move(keys)), spec_(std::move(spec)) {}

  Status OpenImpl(ExecContext* ctx) override {
    ctx_ = ctx;
    // See HashJoinOp: quantified compares and the verdict kinds (kAnti
    // included — there is no unmatched-emit pass here) are NL-only.
    if (spec_.quant_operand != nullptr) {
      return Status::Internal(
          "merge join cannot evaluate quantified compares (use NL join)");
    }
    switch (spec_.kind) {
      case JoinKind::kRegular:
      case JoinKind::kExists:
      case JoinKind::kLeftOuter:
        break;
      default:
        return Status::Internal("unsupported merge join kind");
    }
    STARBURST_RETURN_IF_ERROR(inner_->Open(ctx));
    Result<std::vector<Row>> rows =
        DrainOperator(inner_.get(), ctx->batch_size(), 0, ctx);
    inner_->Close();
    if (!rows.ok()) return rows.status();
    inner_rows_ = rows.TakeValue();
    inner_base_ = 0;
    STARBURST_RETURN_IF_ERROR(outer_->Open(ctx));
    have_outer_ = false;
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override {
    while (true) {
      if (!have_outer_) {
        STARBURST_ASSIGN_OR_RETURN(bool more, outer_->Next(&outer_row_));
        if (!more) return false;
        have_outer_ = true;
        matched_ = false;
        AlignInner();
        group_pos_ = inner_base_;
      }
      while (group_pos_ < group_end_) {
        Row joined = ConcatRows(outer_row_, inner_rows_[group_pos_++]);
        STARBURST_ASSIGN_OR_RETURN(bool pass, PredsPass(spec_, joined, ctx_));
        if (!pass) continue;
        matched_ = true;
        if (spec_.kind == JoinKind::kExists) {
          have_outer_ = false;
          *row = outer_row_;
          return true;
        }
        *row = std::move(joined);
        return true;
      }
      bool was_matched = matched_;
      have_outer_ = false;
      if (spec_.kind == JoinKind::kLeftOuter && !was_matched) {
        *row = NullPad(outer_row_, spec_.inner_width);
        return true;
      }
    }
  }

  void CloseImpl() override {
    outer_->Close();
    inner_rows_.clear();
  }

 private:
  /// Advances inner_base_ to the first inner row with key >= outer key and
  /// computes the equal-key group [inner_base_, group_end_). Outer rows
  /// with NULL keys match nothing.
  void AlignInner() {
    group_end_ = inner_base_;
    for (const auto& [o, i] : keys_) {
      if (outer_row_[o].is_null()) return;
    }
    while (inner_base_ < inner_rows_.size() &&
           CompareKeys(inner_rows_[inner_base_], outer_row_) < 0) {
      ++inner_base_;
    }
    group_end_ = inner_base_;
    while (group_end_ < inner_rows_.size() &&
           CompareKeys(inner_rows_[group_end_], outer_row_) == 0) {
      bool inner_null = false;
      for (const auto& [o, i] : keys_) {
        if (inner_rows_[group_end_][i].is_null()) inner_null = true;
      }
      if (inner_null) {
        ++inner_base_;
        ++group_end_;
        continue;
      }
      ++group_end_;
    }
  }

  int CompareKeys(const Row& inner, const Row& outer) const {
    for (const auto& [o, i] : keys_) {
      int c = inner[i].CompareTotal(outer[o]);
      if (c != 0) return c;
    }
    return 0;
  }

  OperatorPtr outer_, inner_;
  std::vector<std::pair<size_t, size_t>> keys_;
  JoinSpec spec_;
  ExecContext* ctx_ = nullptr;
  std::vector<Row> inner_rows_;
  size_t inner_base_ = 0, group_pos_ = 0, group_end_ = 0;
  Row outer_row_;
  bool have_outer_ = false;
  bool matched_ = false;
};

}  // namespace

OperatorPtr MakeNlJoinOp(OperatorPtr outer, OperatorPtr inner, JoinSpec spec) {
  return std::make_unique<NlJoinOp>(std::move(outer), std::move(inner),
                                    std::move(spec));
}

OperatorPtr MakeHashJoinOp(OperatorPtr outer, OperatorPtr inner,
                           std::vector<std::pair<size_t, size_t>> keys,
                           JoinSpec spec) {
  return std::make_unique<HashJoinOp>(std::move(outer), std::move(inner),
                                      std::move(keys), std::move(spec));
}

OperatorPtr MakeMergeJoinOp(OperatorPtr outer, OperatorPtr inner,
                            std::vector<std::pair<size_t, size_t>> keys,
                            JoinSpec spec) {
  return std::make_unique<MergeJoinOp>(std::move(outer), std::move(inner),
                                       std::move(keys), std::move(spec));
}

OperatorPtr MakeHashProbeOp(OperatorPtr outer,
                            const parallel::SharedHashTable* table,
                            std::vector<std::pair<size_t, size_t>> keys,
                            JoinSpec spec) {
  return std::make_unique<HashJoinOp>(std::move(outer), table,
                                      std::move(keys), std::move(spec));
}

}  // namespace starburst::exec
