file(REMOVE_RECURSE
  "libstarburst_obs.a"
)
