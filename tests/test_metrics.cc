#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "obs/query_log.h"
#include "obs/trace.h"

namespace starburst {
namespace {

TEST(MetricsTest, CounterIncrementsAndMirrors) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Set(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(MetricsTest, GaugeSetAndRead) {
  obs::Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.Set(0);
  EXPECT_DOUBLE_EQ(g.value(), 0);
}

TEST(MetricsTest, HistogramBucketsAndQuantiles) {
  obs::Histogram h({10, 100, 1000});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0);  // empty

  for (int i = 0; i < 100; ++i) h.Observe(5);    // first bucket
  for (int i = 0; i < 100; ++i) h.Observe(50);   // second bucket
  EXPECT_EQ(h.count(), 200u);
  EXPECT_DOUBLE_EQ(h.sum(), 100 * 5.0 + 100 * 50.0);
  EXPECT_DOUBLE_EQ(h.max(), 50);

  // p50 lands exactly at the edge of the first bucket, p95 inside the
  // second (interpolated between 10 and 100).
  EXPECT_LE(h.Quantile(0.5), 10.0);
  double p95 = h.Quantile(0.95);
  EXPECT_GT(p95, 10.0);
  EXPECT_LE(p95, 100.0);
}

TEST(MetricsTest, HistogramOverflowReportsTrueMax) {
  obs::Histogram h({10});
  h.Observe(123456);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 123456);
  EXPECT_DOUBLE_EQ(h.max(), 123456);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  obs::MetricsRegistry r;
  obs::Counter* a = r.counter("a_total");
  obs::Counter* again = r.counter("a_total");
  EXPECT_EQ(a, again);
  a->Increment(3);

  std::vector<obs::MetricsRegistry::Sample> snap = r.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "a_total");
  EXPECT_EQ(snap[0].kind, "counter");
  EXPECT_DOUBLE_EQ(snap[0].value, 3);
}

TEST(MetricsTest, SnapshotFlattensHistograms) {
  obs::MetricsRegistry r;
  obs::Histogram* h = r.histogram("lat_us", {100, 1000});
  h->Observe(50);
  h->Observe(500);

  std::vector<std::string> names;
  for (const auto& s : r.Snapshot()) names.push_back(s.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "lat_us_count"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "lat_us_sum"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "lat_us_p50"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "lat_us_p95"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "lat_us_p99"), names.end());
}

TEST(MetricsTest, RenderTextIsPrometheusShaped) {
  obs::MetricsRegistry r;
  r.counter("queries_total")->Increment(5);
  r.gauge("entries")->Set(2);
  r.histogram("lat", {10})->Observe(3);

  std::string text = r.RenderText();
  EXPECT_NE(text.find("# TYPE queries_total counter"), std::string::npos);
  EXPECT_NE(text.find("queries_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE entries gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat summary"), std::string::npos);
  EXPECT_NE(text.find("lat{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("lat_count 1"), std::string::npos);
}

// Satellite: concurrent metric updates from 4 workers must lose nothing
// (run under tsan in sanitizer builds).
TEST(MetricsTest, ConcurrentUpdatesFromFourWorkers) {
  obs::MetricsRegistry r;
  obs::Counter* c = r.counter("hits_total");
  obs::Histogram* h = r.histogram("lat_us", obs::MetricsRegistry::LatencyBoundsUs());

  constexpr int kWorkers = 4;
  constexpr int kPerWorker = 25000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kPerWorker; ++i) {
        c->Increment();
        h->Observe(static_cast<double>((w * kPerWorker + i) % 2000));
      }
    });
  }
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(c->value(), static_cast<uint64_t>(kWorkers) * kPerWorker);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kWorkers) * kPerWorker);
  uint64_t bucket_total = 0;
  for (uint64_t b : h->BucketCounts()) bucket_total += b;
  EXPECT_EQ(bucket_total, h->count());
}

// Satellite: concurrent tracing with exact dropped-count accounting — the
// ring's retained events plus dropped() must equal everything recorded.
TEST(MetricsTest, ConcurrentTracingAccountsEveryEvent) {
  obs::Tracer tracer(64);
  tracer.set_enabled(true);

  constexpr int kWorkers = 4;
  constexpr int kPerWorker = 5000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kPerWorker; ++i) {
        tracer.RecordInstant("e" + std::to_string(w), "test", obs::NowUs());
      }
    });
  }
  for (std::thread& t : workers) t.join();

  std::vector<obs::TraceEvent> snap = tracer.Snapshot();
  EXPECT_EQ(snap.size(), 64u);
  EXPECT_EQ(snap.size() + tracer.dropped(),
            static_cast<uint64_t>(kWorkers) * kPerWorker);
  // Snapshot is oldest-first in recording order.
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].seq, snap[i].seq);
  }
}

TEST(MetricsTest, TracerSetCapacityShrinkDropsOldest) {
  obs::Tracer tracer(8);
  tracer.set_enabled(true);
  for (int i = 0; i < 8; ++i) {
    tracer.RecordInstant("e" + std::to_string(i), "test", obs::NowUs());
  }
  EXPECT_EQ(tracer.dropped(), 0u);

  tracer.set_capacity(3);
  EXPECT_EQ(tracer.capacity(), 3u);
  std::vector<obs::TraceEvent> snap = tracer.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // The newest three survive; the five discarded count as dropped.
  EXPECT_EQ(snap[0].name, "e5");
  EXPECT_EQ(snap[2].name, "e7");
  EXPECT_EQ(tracer.dropped(), 5u);

  // Recording continues seamlessly at the new capacity.
  tracer.RecordInstant("e8", "test", obs::NowUs());
  snap = tracer.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[2].name, "e8");
  EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(MetricsTest, TracerSetCapacityGrowKeepsEverything) {
  obs::Tracer tracer(2);
  tracer.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    tracer.RecordInstant("e" + std::to_string(i), "test", obs::NowUs());
  }
  EXPECT_EQ(tracer.dropped(), 3u);

  tracer.set_capacity(10);
  std::vector<obs::TraceEvent> before = tracer.Snapshot();
  ASSERT_EQ(before.size(), 2u);
  EXPECT_EQ(before[0].name, "e3");

  for (int i = 5; i < 10; ++i) {
    tracer.RecordInstant("e" + std::to_string(i), "test", obs::NowUs());
  }
  EXPECT_EQ(tracer.Snapshot().size(), 7u);
  EXPECT_EQ(tracer.dropped(), 3u);  // nothing new dropped after the grow
}

TEST(MetricsTest, QueryLogRingEvictsOldest) {
  obs::QueryLog log(3);
  for (int i = 0; i < 5; ++i) {
    obs::QueryLogEntry e;
    e.sql = "Q" + std::to_string(i);
    log.Append(std::move(e));
  }
  std::vector<obs::QueryLogEntry> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].sql, "Q2");
  EXPECT_EQ(snap[2].sql, "Q4");
  EXPECT_EQ(snap[0].id, 3u);  // ids stamp from 1 in append order
  EXPECT_EQ(log.total(), 5u);
  EXPECT_EQ(log.dropped(), 2u);
}

TEST(MetricsTest, QueryLogTruncatesLongSql) {
  obs::QueryLog log;
  obs::QueryLogEntry e;
  e.sql = std::string(obs::QueryLog::kMaxSqlLength + 100, 'x');
  log.Append(std::move(e));
  std::vector<obs::QueryLogEntry> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].sql.size(), obs::QueryLog::kMaxSqlLength);
  EXPECT_EQ(snap[0].sql.substr(snap[0].sql.size() - 3), "...");
}

}  // namespace
}  // namespace starburst
