#ifndef STARBURST_QGM_BOX_H_
#define STARBURST_QGM_BOX_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "qgm/expr.h"

namespace starburst::qgm {

struct Box;

/// Iterator types (§4). F is the built-in setformer; E/A/S are quantifier
/// types interpreted by SELECT; PF is the left-outer-join extension's
/// "Preserve Foreach"; kSetPredicate generalizes E/A to any registered
/// set-predicate function (the MAJORITY example); kAntiExists covers
/// NOT EXISTS / NOT IN.
enum class QuantifierType : uint8_t {
  kForEach,           // F  — contributes tuples to the output
  kPreservedForEach,  // PF — like F but tuples survive unmatched (outer join)
  kExists,            // E  — existential: IN / EXISTS / =ANY
  kAll,               // A  — universal: op ALL
  kAntiExists,        // ¬E — NOT EXISTS / NOT IN (null-aware)
  kScalar,            // S  — scalar subquery (errors if >1 row)
  kSetPredicate,      // generalized set predicate, named by set_function
};

const char* QuantifierTypeName(QuantifierType t);
/// F / PF / E / A / ¬E / S / SP — the Figure 2 glyphs.
const char* QuantifierTypeGlyph(QuantifierType t);

/// A vertex of the QGM: an iterator ranging over a stored or derived table
/// (its `input` box — the dotted "range edge" of Figure 2). Owned by the
/// box whose body it appears in.
struct Quantifier {
  int id = 0;                      // Q1, Q2, ... unique per graph
  QuantifierType type = QuantifierType::kForEach;
  Box* input = nullptr;            // ranged-over box
  Box* owner = nullptr;            // box whose body holds this vertex
  std::string alias;               // user-visible range-variable name

  /// kSetPredicate: the registered set-predicate function (ANY/ALL/...).
  std::string set_function;

  /// kAll / kSetPredicate: comparison relating the outer expression to the
  /// set elements is kept in the owner's predicates, marked by referencing
  /// this quantifier.

  std::string DisplayName() const;
  /// Column name i of the ranged-over table (from the input box head).
  std::string ColumnName(size_t i) const;
  DataType ColumnType(size_t i) const;
  size_t NumColumns() const;

  bool ContributesTuples() const {
    return type == QuantifierType::kForEach ||
           type == QuantifierType::kPreservedForEach;
  }
};

/// Box kinds: the high-level table operations of §4. New operations are
/// added either as new quantifier types inside SELECT (the outer-join
/// route the paper describes) or as kTableFunction / kExtension boxes.
enum class BoxKind : uint8_t {
  kBaseTable,       // leaf: a stored table
  kSelect,          // select-project-join + quantified predicates
  kGroupBy,         // grouping + aggregation
  kSetOp,           // UNION / INTERSECT / EXCEPT
  kValues,          // literal rows
  kTableFunction,   // DBC table function over input tables
  kChoose,          // rewrite-generated alternatives; optimizer picks one
  kRecursiveUnion,  // recursive table expression (base ∪ step fixpoint)
  kIterationRef,    // reference to the enclosing recursion's working table
};

const char* BoxKindName(BoxKind k);

/// One output column of a box head.
struct HeadColumn {
  std::string name;
  DataType type;
  /// Defining expression over the box's own quantifiers. Null for leaf
  /// boxes (base tables, values, iteration refs) whose output is storage-
  /// or iteration-defined.
  ExprPtr expr;
};

/// An aggregate computed by a GROUP BY box.
struct AggregateSpec {
  const AggregateFunctionDef* def = nullptr;
  std::string name;       // display: "SUM", "STDDEV", ...
  ExprPtr arg;            // null for COUNT(*)
  /// The argument as originally bound in the input box (dedup signature).
  std::string arg_source_text = "*";
  bool distinct = false;
  DataType result_type;
};

/// A box (operation) of the Query Graph Model: a head describing the
/// output table and a body of quantifiers and predicate conjuncts
/// (qualifier edges). One struct covers all kinds — rewrite rules are
/// written in the paper's "IF OP1.type = Select ..." style and need free
/// access to every attribute.
struct Box {
  int id = 0;
  BoxKind kind = BoxKind::kSelect;

  // ---- head ----
  std::vector<HeadColumn> head;
  /// The operation eliminates duplicates from its output
  /// (the paper's OP.eliminate-duplicate).
  bool distinct_enforced = false;

  // ---- body: kSelect / kGroupBy / kSetOp / kTableFunction / kChoose /
  //            kRecursiveUnion ----
  std::vector<std::unique_ptr<Quantifier>> quantifiers;
  /// Conjunctive predicates (each a qualifier edge over >= 1 quantifiers).
  std::vector<ExprPtr> predicates;

  // ---- kBaseTable ----
  const TableDef* table = nullptr;

  // ---- kGroupBy ----
  /// Group keys over the single input quantifier; head columns reference
  /// them positionally, aggregates via kAggRef.
  std::vector<ExprPtr> group_keys;
  std::vector<AggregateSpec> aggregates;

  // ---- kSetOp ----
  ast::SetOpKind setop = ast::SetOpKind::kUnion;
  bool setop_all = false;

  // ---- kValues ----
  std::vector<std::vector<Value>> rows;

  // ---- kTableFunction ----
  const TableFunctionDef* table_function = nullptr;
  std::string function_name;
  std::vector<Value> function_args;  // scalar args (constant-folded)

  // ---- kRecursiveUnion / kIterationRef ----
  std::string cte_name;
  Box* recursion = nullptr;  // kIterationRef: the owning kRecursiveUnion

  // -------------------------------------------------------------------

  size_t NumColumns() const { return head.size(); }

  Quantifier* AddQuantifier(std::unique_ptr<Quantifier> q);
  std::unique_ptr<Quantifier> RemoveQuantifier(Quantifier* q);
  Quantifier* FindQuantifier(int id) const;

  /// True if the box's output is guaranteed duplicate-free: enforced
  /// distinctness, grouping keys, or a preserved base-table unique key.
  /// With `ignore_own_enforcement`, asks whether the output would be
  /// duplicate-free even *without* this box's dedup — i.e. whether the
  /// dedup is a no-op (merge rules need this to know if dropping it is
  /// safe).
  bool OutputIsDuplicateFree(bool ignore_own_enforcement = false) const;

  /// For kSelect: head column positions that are plain references to
  /// quantifier `q`'s column c; `out[c]` = head position or npos.
  static constexpr size_t kNoColumn = static_cast<size_t>(-1);

  std::string Label() const;  // "OP3(SELECT)" / table name
};

/// A whole query's QGM: the box DAG (cyclic only through recursion), plus
/// query-level ORDER BY / LIMIT, which the paper leaves outside the box
/// algebra (they order/trim a table, they do not define one).
class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  Box* NewBox(BoxKind kind);
  std::unique_ptr<Quantifier> NewQuantifier(QuantifierType type, Box* input);

  Box* root() const { return root_; }
  void set_root(Box* box) { root_ = box; }

  const std::vector<std::unique_ptr<Box>>& boxes() const { return boxes_; }

  /// Boxes reachable from the root, leaves first (topological for DAGs;
  /// recursion back-edges are skipped).
  std::vector<Box*> BottomUpOrder() const;

  /// Drops boxes no longer reachable from the root (after merges).
  void GarbageCollect();

  /// Structural invariants: every predicate references only quantifiers
  /// of its own box, head columns type-resolved, etc. Returns the first
  /// violation. Rewrite rules must map consistent QGM to consistent QGM.
  Status Validate() const;

  // Query-level decoration.
  struct OrderKey {
    size_t head_column = 0;
    bool ascending = true;
  };
  std::vector<OrderKey> order_by;
  int64_t limit = -1;
  /// Trailing root head columns added only so ORDER BY can reference
  /// non-output columns; the engine strips them from the final result.
  size_t hidden_order_columns = 0;
  /// Number of `?` positional parameters the query contains (kParam
  /// expressions carry indexes in [0, num_params)). Execution must supply
  /// exactly this many values.
  size_t num_params = 0;

 private:
  std::vector<std::unique_ptr<Box>> boxes_;
  Box* root_ = nullptr;
  int next_box_id_ = 1;
  int next_quantifier_id_ = 1;
};

}  // namespace starburst::qgm

#endif  // STARBURST_QGM_BOX_H_
