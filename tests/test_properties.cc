#include <gtest/gtest.h>

#include <map>
#include <random>

#include "engine/database.h"
#include "ext/extensions.h"
#include "storage/btree.h"

namespace starburst {
namespace {

std::vector<Row> Sorted(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.CompareTotal(b) < 0; });
  return rows;
}

/// Builds a deterministic random database shared by the property sweeps.
void Populate(Database* db, int scale, uint32_t seed) {
  ASSERT_TRUE(db->Execute("CREATE TABLE orders (id INT PRIMARY KEY, "
                          "cust INT, amount DOUBLE, region STRING)").ok());
  ASSERT_TRUE(db->Execute("CREATE TABLE customers (id INT PRIMARY KEY, "
                          "name STRING, tier INT)").ok());
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> cust(0, scale / 4 + 1);
  std::uniform_real_distribution<double> amount(1, 1000);
  const char* regions[] = {"north", "south", "east", "west"};
  std::string orders = "INSERT INTO orders VALUES ";
  for (int i = 0; i < scale; ++i) {
    if (i > 0) orders += ", ";
    orders += "(" + std::to_string(i) + ", " + std::to_string(cust(rng)) +
              ", " + std::to_string(amount(rng)) + ", '" +
              regions[rng() % 4] + "')";
  }
  ASSERT_TRUE(db->Execute(orders).ok());
  std::string customers = "INSERT INTO customers VALUES ";
  for (int i = 0; i < scale / 4 + 2; ++i) {
    if (i > 0) customers += ", ";
    customers += "(" + std::to_string(i) + ", 'c" + std::to_string(i) +
                 "', " + std::to_string(static_cast<int>(rng() % 3)) + ")";
  }
  ASSERT_TRUE(db->Execute(customers).ok());
  ASSERT_TRUE(db->AnalyzeAll().ok());
}

/// The query family exercised by every equivalence sweep below: joins,
/// subqueries of each flavor, aggregation, set operations, outer joins,
/// recursion.
const char* kQueryFamily[] = {
    "SELECT id, amount FROM orders WHERE amount < 250",
    "SELECT o.id, c.name FROM orders o, customers c WHERE o.cust = c.id "
    "AND c.tier = 1",
    "SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region",
    "SELECT region, COUNT(*) FROM orders GROUP BY region "
    "HAVING COUNT(*) > 2",
    "SELECT id FROM orders WHERE cust IN (SELECT id FROM customers "
    "WHERE tier = 0)",
    "SELECT id FROM orders o WHERE EXISTS (SELECT 1 FROM customers c "
    "WHERE c.id = o.cust AND c.tier = 2)",
    "SELECT id FROM orders WHERE cust NOT IN (SELECT id FROM customers "
    "WHERE tier = 1)",
    "SELECT o.id, (SELECT name FROM customers c WHERE c.id = o.cust) "
    "FROM orders o WHERE o.amount > 900",
    "SELECT c.id, o.amount FROM customers c LEFT OUTER JOIN orders o "
    "ON c.id = o.cust AND o.amount > 990",
    "SELECT DISTINCT region FROM orders",
    "SELECT region FROM orders WHERE amount < 50 UNION "
    "SELECT region FROM orders WHERE amount > 950",
    "SELECT cust FROM orders INTERSECT SELECT id FROM customers",
    "SELECT id FROM orders WHERE amount > ALL (SELECT amount FROM orders "
    "WHERE region = 'north')",
    "SELECT r, n FROM (SELECT region r, COUNT(*) n FROM orders "
    "GROUP BY region) g WHERE n > 1",
    "WITH big(id, amount) AS (SELECT id, amount FROM orders "
    "WHERE amount > 500) SELECT COUNT(*) FROM big",
    "SELECT o.id FROM orders o WHERE o.amount < 100 OR o.cust = "
    "(SELECT MIN(id) FROM customers)",
    "SELECT a.id FROM orders a, orders b WHERE a.id = b.id "
    "AND b.region = 'east'",
    "WITH RECURSIVE seq(n) AS (SELECT 0 UNION ALL SELECT n + 1 FROM seq "
    "WHERE n < 20) SELECT SUM(n) FROM seq",
};

class QueryEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(QueryEquivalenceTest, RewriteOnOffAgree) {
  Database db;
  Populate(&db, 200, 42);
  Result<std::vector<Row>> on = db.Query(GetParam());
  ASSERT_TRUE(on.ok()) << GetParam() << " -> " << on.status().ToString();
  db.options().rewrite_enabled = false;
  Result<std::vector<Row>> off = db.Query(GetParam());
  ASSERT_TRUE(off.ok()) << GetParam() << " -> " << off.status().ToString();
  EXPECT_EQ(Sorted(*on), Sorted(*off)) << GetParam();
}

TEST_P(QueryEquivalenceTest, JoinEnumeratorTogglesAgree) {
  Database db;
  Populate(&db, 200, 43);
  Result<std::vector<Row>> reference = db.Query(GetParam());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  db.options().optimizer.join.allow_composite_inner = false;
  Result<std::vector<Row>> left_deep = db.Query(GetParam());
  ASSERT_TRUE(left_deep.ok()) << left_deep.status().ToString();
  EXPECT_EQ(Sorted(*reference), Sorted(*left_deep));

  db.options().optimizer.join.allow_cartesian = true;
  db.options().optimizer.join.allow_composite_inner = true;
  Result<std::vector<Row>> cartesian_ok = db.Query(GetParam());
  ASSERT_TRUE(cartesian_ok.ok());
  EXPECT_EQ(Sorted(*reference), Sorted(*cartesian_ok));
}

TEST_P(QueryEquivalenceTest, SubqueryCacheModesAgree) {
  Database db;
  Populate(&db, 120, 44);
  Result<std::vector<Row>> memo = db.Query(GetParam());
  ASSERT_TRUE(memo.ok()) << memo.status().ToString();
  db.options().exec.cache_mode = exec::SubqueryCacheMode::kNone;
  Result<std::vector<Row>> none = db.Query(GetParam());
  ASSERT_TRUE(none.ok()) << none.status().ToString();
  db.options().exec.cache_mode = exec::SubqueryCacheMode::kLastValue;
  Result<std::vector<Row>> last = db.Query(GetParam());
  ASSERT_TRUE(last.ok()) << last.status().ToString();
  EXPECT_EQ(Sorted(*memo), Sorted(*none));
  EXPECT_EQ(Sorted(*memo), Sorted(*last));
}

TEST_P(QueryEquivalenceTest, IndexesDoNotChangeAnswers) {
  Database db;
  Populate(&db, 200, 45);
  Result<std::vector<Row>> before = db.Query(GetParam());
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(db.Execute("CREATE INDEX o_cust ON orders (cust)").ok());
  ASSERT_TRUE(db.Execute("CREATE INDEX o_amount ON orders (amount)").ok());
  ASSERT_TRUE(db.AnalyzeAll().ok());
  Result<std::vector<Row>> after = db.Query(GetParam());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Sorted(*before), Sorted(*after)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(QueryFamily, QueryEquivalenceTest,
                         ::testing::ValuesIn(kQueryFamily));

// ---------------------------------------------------------------------------
// Storage round-trip properties
// ---------------------------------------------------------------------------

class StorageRoundTripTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(StorageRoundTripTest, RandomMutationsMatchModel) {
  // The heap storage + B-tree attachment must agree with a std::multimap
  // model under a random mutation workload.
  StorageEngine engine;
  TableDef def;
  def.name = "t";
  def.schema = TableSchema({{"k", DataType::Int(), true},
                            {"payload", DataType::String(), true}});
  ASSERT_TRUE(engine.CreateTable(def).ok());
  IndexDef index;
  index.name = "t_k";
  index.table_name = "t";
  index.key_columns = {"k"};
  ASSERT_TRUE(engine.CreateIndex(index, def.schema).ok());

  std::mt19937 rng(GetParam());
  std::map<int64_t, std::pair<Rid, std::string>> model;  // unique ids
  int64_t next_id = 0;

  for (int step = 0; step < 1500; ++step) {
    int action = rng() % 10;
    if (action < 6 || model.empty()) {
      int64_t key = rng() % 100;
      std::string payload(rng() % 40, 'a' + rng() % 26);
      Result<Rid> rid =
          engine.InsertRow("t", Row({Value::Int(key), Value::String(payload)}));
      ASSERT_TRUE(rid.ok());
      model[next_id++] = {*rid, payload};
      // Remember key for checks via payload? store key in payload map too:
      // encode key at front
      model[next_id - 1].second = std::to_string(key) + ":" + payload;
    } else if (action < 8) {
      auto it = model.begin();
      std::advance(it, rng() % model.size());
      ASSERT_TRUE(engine.DeleteRow("t", it->second.first).ok());
      model.erase(it);
    } else {
      auto it = model.begin();
      std::advance(it, rng() % model.size());
      int64_t key = rng() % 100;
      std::string payload(rng() % 40, 'x');
      Result<Rid> moved = engine.UpdateRow(
          "t", it->second.first, Row({Value::Int(key), Value::String(payload)}));
      ASSERT_TRUE(moved.ok());
      it->second = {*moved, std::to_string(key) + ":" + payload};
    }
  }

  // Scan count matches.
  TableStorage* storage = *engine.GetTable("t");
  EXPECT_EQ(storage->row_count(), model.size());
  // Index agrees with a full recount.
  auto* btree = dynamic_cast<BTreeAttachment*>(*engine.GetIndex("t_k"));
  EXPECT_EQ(btree->tree().size(), model.size());
  // Every modeled row is fetchable and intact.
  for (const auto& [id, entry] : model) {
    Result<Row> row = storage->Fetch(entry.first);
    ASSERT_TRUE(row.ok());
    std::string expect_key = entry.second.substr(0, entry.second.find(':'));
    EXPECT_EQ((*row)[0], Value::Int(std::stoll(expect_key)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageRoundTripTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ---------------------------------------------------------------------------
// B-tree vs. reference model
// ---------------------------------------------------------------------------

class BTreeModelTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BTreeModelTest, AgreesWithMultimap) {
  BTree tree;
  std::multimap<int64_t, Rid> model;
  std::mt19937 rng(GetParam());
  auto rid_less = [](Rid a, Rid b) { return a < b; };

  for (int step = 0; step < 4000; ++step) {
    int64_t key = rng() % 300;
    if (rng() % 3 != 0) {
      Rid rid{static_cast<PageNo>(rng() % 1000), static_cast<uint16_t>(step)};
      ASSERT_TRUE(tree.Insert({Value::Int(key)}, rid).ok());
      model.insert({key, rid});
    } else {
      auto range = model.equal_range(key);
      if (range.first != range.second) {
        Rid victim = range.first->second;
        ASSERT_TRUE(tree.Remove({Value::Int(key)}, victim).ok());
        model.erase(range.first);
      }
    }
  }
  EXPECT_EQ(tree.size(), model.size());
  // Point lookups.
  for (int64_t key = 0; key < 300; ++key) {
    std::vector<Rid> got = tree.Lookup({Value::Int(key)});
    auto range = model.equal_range(key);
    std::vector<Rid> want;
    for (auto it = range.first; it != range.second; ++it) {
      want.push_back(it->second);
    }
    std::sort(got.begin(), got.end(), rid_less);
    std::sort(want.begin(), want.end(), rid_less);
    EXPECT_EQ(got.size(), want.size()) << "key " << key;
  }
  // Range scan produces sorted keys matching the model's count.
  auto it = tree.Scan(nullptr, true, nullptr, true);
  BTreeKey key;
  Rid rid;
  size_t scanned = 0;
  int64_t last = -1;
  while (it->Next(&key, &rid)) {
    EXPECT_GE(key[0].int_value(), last);
    last = key[0].int_value();
    ++scanned;
  }
  EXPECT_EQ(scanned, model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeModelTest,
                         ::testing::Values(11u, 12u, 13u));

}  // namespace
}  // namespace starburst
