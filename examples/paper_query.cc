// The paper's running example, end to end: §4's quotations/inventory
// query, its QGM before rewrite (Figure 2a), the Rule 1 + Rule 2
// transformation (Figure 2b), the chosen plan, and the answer.

#include <cstdio>

#include "engine/database.h"

using starburst::Database;
using starburst::Result;
using starburst::ResultSet;

namespace {

const char* kPaperQuery =
    "SELECT partno, price, order_qty FROM quotations Q1 "
    "WHERE Q1.partno IN "
    "(SELECT partno FROM inventory Q3 "
    " WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU')";

void Show(Database& db, const std::string& sql, const char* title) {
  Result<ResultSet> result = db.Execute(sql);
  if (!result.ok()) {
    std::printf("ERROR: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("--- %s ---\n", title);
  if (!result->rows().empty() && result->column_names().size() == 1 &&
      result->column_names()[0] == "plan") {
    std::printf("%s\n", result->rows()[0][0].string_value().c_str());
  } else if (!result->rows().empty() && result->column_names().size() == 1 &&
             result->column_names()[0] == "EXPLAIN") {
    for (const starburst::Row& r : result->rows()) {
      std::printf("%s\n", r[0].string_value().c_str());
    }
  } else {
    std::printf("%s\n", result->ToString().c_str());
  }
}

}  // namespace

int main() {
  Database db;

  (void)db.Execute(
      "CREATE TABLE quotations (partno INT, price DOUBLE, order_qty INT)");
  (void)db.Execute(
      "CREATE TABLE inventory (partno INT PRIMARY KEY, onhand_qty INT, "
      "type STRING)");
  (void)db.Execute(
      "INSERT INTO inventory VALUES (1, 10, 'CPU'), (2, 100, 'CPU'), "
      "(3, 5, 'DISK'), (4, 0, 'CPU'), (5, 50, 'RAM')");
  (void)db.Execute(
      "INSERT INTO quotations VALUES (1, 99.5, 20), (1, 95.0, 5), "
      "(2, 40.0, 200), (3, 12.0, 10), (6, 7.0, 3)");

  std::printf("This query returns the part number, price and order amount\n"
              "corresponding to each quotation for a cpu part that is in\n"
              "inventory, and for which the supply on hand is low. (§4)\n\n"
              "%s\n\n", kPaperQuery);

  // Figure 2(a): the QGM as bound — two SELECT boxes, an E quantifier,
  // and a correlated qualifier edge between Q3's box and Q1.
  Show(db, std::string("EXPLAIN QGM BEFORE ") + kPaperQuery,
       "Figure 2(a): QGM before query rewrite");

  // Figure 2(b): Rule 1 (subquery to join: Q3 becomes type F) and Rule 2
  // (operation merging) leave a single SELECT box over both tables.
  Show(db, std::string("EXPLAIN QGM ") + kPaperQuery,
       "Figure 2(b): QGM after Rule 1 (subquery-to-join) + Rule 2 (merge)");

  Show(db, std::string("EXPLAIN PLAN ") + kPaperQuery,
       "Chosen query evaluation plan (LOLEPOPs)");

  // The observability surface: estimates beside actuals, with the rule
  // firings that produced Figure 2(b).
  Show(db, std::string("EXPLAIN ANALYZE ") + kPaperQuery,
       "EXPLAIN ANALYZE: rule firings + actual vs estimated rows/time");

  Show(db, kPaperQuery, "Result");
  return 0;
}
