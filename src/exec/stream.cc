#include "exec/stream.h"

#include <algorithm>

#include "exec/expr_eval.h"
#include "obs/trace.h"

namespace starburst::exec {

Status Operator::OpenTimed(ExecContext* ctx) {
  double start = obs::NowUs();
  Status st = OpenImpl(ctx);
  stats_->wall_us += obs::NowUs() - start;
  ++stats_->opens;
  return st;
}

Result<bool> Operator::NextTimed(Row* row) {
  double start = obs::NowUs();
  Result<bool> more = NextImpl(row);
  stats_->wall_us += obs::NowUs() - start;
  ++stats_->next_calls;
  if (more.ok() && *more) ++stats_->rows_out;
  return more;
}

Result<bool> Operator::NextBatchTimed(RowBatch* batch) {
  double start = obs::NowUs();
  Result<bool> more = NextBatchImpl(batch);
  stats_->wall_us += obs::NowUs() - start;
  ++stats_->next_calls;
  if (more.ok() && *more) stats_->rows_out += batch->size();
  return more;
}

void Operator::CloseTimed() {
  double start = obs::NowUs();
  CloseImpl();
  stats_->wall_us += obs::NowUs() - start;
}

Result<bool> Operator::NextBatchImpl(RowBatch* batch) {
  while (!batch->full()) {
    Row* slot = batch->AppendSlot();
    STARBURST_ASSIGN_OR_RETURN(bool more, NextImpl(slot));
    if (!more) {
      batch->PopLast();
      break;
    }
  }
  return !batch->empty();
}

Result<Value> ExecContext::LookupParam(const qgm::Quantifier* q,
                                       size_t column) const {
  for (auto it = param_stack_.rbegin(); it != param_stack_.rend(); ++it) {
    const Value* found = (*it)->Find(q, column);
    if (found != nullptr) return *found;
  }
  if (q == QueryParamQuantifier()) {
    return Status::InvalidArgument(
        "query parameter ?" + std::to_string(column + 1) +
        " has no bound value; prepare the statement and supply values "
        "through ExecutePrepared");
  }
  return Status::Internal("unbound correlation parameter " +
                          (q != nullptr ? q->DisplayName() : std::string("?")) +
                          "." + std::to_string(column));
}

Status DrainOperatorInto(Operator* op, RowBatch* scratch,
                         std::vector<Row>* out, ExecContext* ctx) {
  while (true) {
    if (ctx != nullptr) STARBURST_RETURN_IF_ERROR(ctx->CheckCancel());
    STARBURST_ASSIGN_OR_RETURN(bool more, op->NextBatch(scratch));
    if (!more) return Status::OK();
    scratch->MoveRowsTo(out);
  }
}

Result<std::vector<Row>> DrainOperator(Operator* op, size_t batch_size,
                                       size_t reserve_hint, ExecContext* ctx) {
  std::vector<Row> rows;
  // Cap the reserve: cardinality estimates can be wildly wrong, and an
  // over-reserve is pure wasted RSS.
  constexpr size_t kMaxReserve = size_t{1} << 20;
  if (reserve_hint > 0) rows.reserve(std::min(reserve_hint, kMaxReserve));
  RowBatch batch(batch_size);
  STARBURST_RETURN_IF_ERROR(DrainOperatorInto(op, &batch, &rows, ctx));
  return rows;
}

Result<std::vector<Row>> DrainOperator(Operator* op) {
  return DrainOperator(op, RowBatch::kDefaultCapacity);
}

}  // namespace starburst::exec
