#include <set>

#include "ext/extensions.h"
#include "rewrite/rule_engine.h"

namespace starburst::ext {

using qgm::Box;
using qgm::BoxKind;
using qgm::Expr;
using qgm::Quantifier;
using qgm::QuantifierType;

namespace {

/// Null-rejecting: evaluates to non-TRUE whenever the quantifier's columns
/// are NULL. Comparisons, LIKE, and IS NOT NULL qualify; conservatively
/// nothing else does.
bool IsNullRejecting(const Expr& p, const Quantifier* q) {
  if (!p.ReferencesQuantifier(q)) return false;
  switch (p.kind) {
    case Expr::Kind::kBinary:
      switch (p.bop) {
        case ast::BinaryOp::kEq:
        case ast::BinaryOp::kNe:
        case ast::BinaryOp::kLt:
        case ast::BinaryOp::kLe:
        case ast::BinaryOp::kGt:
        case ast::BinaryOp::kGe:
          return true;
        case ast::BinaryOp::kAnd:
          // AND rejects if either conjunct rejects.
          return IsNullRejecting(*p.children[0], q) ||
                 IsNullRejecting(*p.children[1], q);
        default:
          return false;
      }
    case Expr::Kind::kLike:
      return !p.negated;
    case Expr::Kind::kIsNull:
      return p.negated;  // IS NOT NULL
    case Expr::Kind::kInList:
      return !p.negated;
    default:
      return false;
  }
}

/// A simplification candidate: consumer box `upper` holds a null-rejecting
/// predicate over the null-producing side of the outer-join box below it.
struct OuterToInner {
  Quantifier* pf = nullptr;  // the PF setformer to demote
};

bool FindOuterToInner(const rewrite::RuleContext& ctx, OuterToInner* out) {
  Box* upper = ctx.box;
  if (upper->kind != BoxKind::kSelect) return false;
  for (const auto& q : upper->quantifiers) {
    if (q->type != QuantifierType::kForEach) continue;
    Box* oj = q->input;
    if (oj == nullptr || oj->kind != BoxKind::kSelect) continue;
    Quantifier* pf = nullptr;
    Quantifier* null_side = nullptr;
    for (const auto& lq : oj->quantifiers) {
      if (lq->type == QuantifierType::kPreservedForEach) pf = lq.get();
      if (lq->type == QuantifierType::kForEach) null_side = lq.get();
    }
    if (pf == nullptr || null_side == nullptr) continue;
    if (rewrite::CountReferences(*ctx.graph, oj) != 1) continue;
    // Which upper columns (through q) come from the null-producing side?
    for (const auto& p : upper->predicates) {
      // Inline the predicate into OJ terms and check what it touches.
      std::unique_ptr<Expr> probe = p->Clone();
      std::vector<const Expr*> replacements;
      for (const auto& h : oj->head) replacements.push_back(h.expr.get());
      qgm::ExprPtr holder = std::move(probe);
      if (!holder->ReferencesQuantifier(q.get())) continue;
      qgm::InlineIntoExpr(&holder, q.get(), replacements);
      if (IsNullRejecting(*holder, null_side)) {
        out->pf = pf;
        return true;
      }
    }
  }
  return false;
}

}  // namespace

/// The rewrite rule a DBC adding LEFT OUTER JOIN supplies (§5 sketches the
/// PF interaction; [ROSE84] gives the theory): a null-rejecting predicate
/// above the join discards exactly the null-padded rows, so preservation
/// is a no-op — demote PF to F and let the merge rules flatten the join.
Status RegisterOuterJoinRules(Database* db) {
  return db->rule_engine().AddRule(rewrite::RewriteRule{
      "outer_join_simplification", "outer_join", /*priority=*/25,
      /*weight=*/1.0,
      [](const rewrite::RuleContext& ctx) {
        OuterToInner c;
        return FindOuterToInner(ctx, &c);
      },
      [](rewrite::RuleContext& ctx) -> Status {
        OuterToInner c;
        if (!FindOuterToInner(ctx, &c)) {
          return Status::Internal("outer-join simplification: candidate vanished");
        }
        c.pf->type = QuantifierType::kForEach;
        return Status::OK();
      }});
}

}  // namespace starburst::ext
