#include <algorithm>

#include "exec/operators.h"
#include "exec/parallel/morsel.h"
#include "storage/attachment.h"

namespace starburst::exec {

namespace {

/// With a MorselSource attached the scan is a parallel clone: instead of
/// one full walk it claims page-range morsels until the shared dispenser
/// runs dry, so sibling clones cover the table together.
class ScanOp : public Operator {
 public:
  ScanOp(const TableDef* table, std::vector<size_t> columns,
         std::vector<CompiledExprPtr> predicates,
         parallel::MorselSource* morsels = nullptr)
      : table_(table), columns_(std::move(columns)),
        predicates_(std::move(predicates)), morsels_(morsels) {
    identity_prefix_ = true;
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i] != i) {
        identity_prefix_ = false;
        break;
      }
    }
    // Whole-row identity projection: batched refills may then decode pages
    // straight into the batch's slots with no staging block at all.
    direct_fill_ = identity_prefix_ &&
                   columns_.size() == table_->schema.num_columns();
  }

  Status OpenImpl(ExecContext* ctx) override {
    ctx_ = ctx;
    STARBURST_ASSIGN_OR_RETURN(TableStorage * storage,
                               ctx->storage()->GetTable(table_->name));
    storage_ = storage;
    scan_ = morsels_ == nullptr ? storage->NewScan() : nullptr;
    block_pos_ = 0;
    block_n_ = 0;
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override {
    Row full;
    Rid rid;
    while (true) {
      if (scan_ == nullptr) {
        PageNo begin, end;
        if (morsels_ == nullptr || !morsels_->Claim(&begin, &end)) {
          return false;
        }
        scan_ = storage_->NewRangeScan(begin, end);
      }
      STARBURST_ASSIGN_OR_RETURN(bool more, scan_->Next(&full, &rid));
      if (!more) {
        if (morsels_ != nullptr) {
          scan_.reset();  // morsel drained; claim the next one
          continue;
        }
        return false;
      }
      bool pass = true;
      // Predicates run against the *projected* row (slots follow
      // scan_columns), per §2: functions are invoked "at low levels of
      // the system" — here, inside the scan's predicate evaluator.
      Row projected = Project(full);
      for (const CompiledExprPtr& p : predicates_) {
        STARBURST_ASSIGN_OR_RETURN(bool ok, p->EvalPredicate(projected, ctx_));
        if (!ok) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      *row = std::move(projected);
      ++ctx_->stats().rows_emitted;
      return true;
    }
  }

  /// Batch-native path: refills a block of full rows straight from the
  /// page scan (one page resolution per page, decode into reused row
  /// storage), then projects into the batch's slots and evaluates
  /// predicates with correlation params folded once per batch.
  Result<bool> NextBatchImpl(RowBatch* batch) override {
    ScopedParamFold fold;
    for (const CompiledExprPtr& p : predicates_) {
      STARBURST_RETURN_IF_ERROR(fold.Add(p.get(), ctx_));
    }
    prepared_.clear();
    for (const CompiledExprPtr& p : predicates_) {
      prepared_.push_back(PreparedPredicate::For(p.get()));
    }
    if (direct_fill_) return FillBatchDirect(batch);
    if (block_.empty()) {
      size_t target = std::min<size_t>(ctx_->batch_size(), kMaxBlock);
      block_.resize(target);
      block_rids_.resize(target);
    }
    size_t emitted = 0;
    while (!batch->full()) {
      if (block_pos_ >= block_n_) {
        STARBURST_RETURN_IF_ERROR(ctx_->CheckCancel());
        if (scan_ == nullptr) {
          PageNo begin, end;
          if (morsels_ == nullptr || !morsels_->Claim(&begin, &end)) break;
          scan_ = storage_->NewRangeScan(begin, end);
        }
        STARBURST_ASSIGN_OR_RETURN(
            block_n_,
            scan_->NextBlock(block_.data(), block_rids_.data(), block_.size()));
        block_pos_ = 0;
        if (block_n_ == 0) {
          if (morsels_ != nullptr) {
            scan_.reset();  // morsel drained; claim the next one
            continue;
          }
          break;
        }
      }
      Row& full = block_[block_pos_++];
      Row* slot = batch->AppendSlot();
      if (identity_prefix_ && full.size() == columns_.size()) {
        // Whole-row projection: trade buffers with the block row so both
        // sides keep reusable storage (no copies, no allocation).
        slot->values().swap(full.values());
      } else {
        ProjectInto(full, slot);
      }
      bool pass = true;
      for (const PreparedPredicate& p : prepared_) {
        STARBURST_ASSIGN_OR_RETURN(bool ok, p.Test(*slot, ctx_));
        if (!ok) {
          pass = false;
          break;
        }
      }
      if (!pass) {
        batch->PopLast();
        continue;
      }
      ++emitted;
    }
    ctx_->stats().rows_emitted += emitted;
    return !batch->empty();
  }

  void CloseImpl() override { scan_.reset(); }

 private:
  /// Whole-row scans bypass the staging block: pages decode directly into
  /// the batch's physical slots, and predicates mark survivors in a
  /// selection vector instead of popping rejected slots one by one. The
  /// batch must arrive cleared (it does: this is a leaf, and every caller
  /// drains or clears between refills).
  Result<bool> FillBatchDirect(RowBatch* batch) {
    if (block_rids_.size() < batch->capacity()) {
      block_rids_.resize(batch->capacity());
    }
    while (true) {
      bool exhausted = false;
      STARBURST_RETURN_IF_ERROR(ctx_->CheckCancel());
      while (!batch->full()) {
        if (scan_ == nullptr) {
          PageNo begin, end;
          if (morsels_ == nullptr || !morsels_->Claim(&begin, &end)) {
            exhausted = true;
            break;
          }
          scan_ = storage_->NewRangeScan(begin, end);
        }
        STARBURST_ASSIGN_OR_RETURN(
            size_t got,
            scan_->NextBlock(batch->raw_slots() + batch->physical_size(),
                             block_rids_.data(), batch->remaining()));
        if (got == 0) {
          if (morsels_ != nullptr) {
            scan_.reset();  // morsel drained; claim the next one
            continue;
          }
          exhausted = true;
          break;
        }
        batch->AdvanceFilled(got);
      }
      if (!prepared_.empty() && batch->physical_size() > 0) {
        sel_.clear();
        for (size_t i = 0; i < batch->physical_size(); ++i) {
          bool pass = true;
          for (const PreparedPredicate& p : prepared_) {
            STARBURST_ASSIGN_OR_RETURN(bool ok,
                                       p.Test(batch->physical_row(i), ctx_));
            if (!ok) {
              pass = false;
              break;
            }
          }
          if (pass) sel_.push_back(static_cast<uint32_t>(i));
        }
        batch->SetSelection(std::move(sel_));
        sel_.clear();
      }
      if (!batch->empty()) {
        ctx_->stats().rows_emitted += batch->size();
        return true;
      }
      if (exhausted) return false;
      batch->Clear();  // every staged row was rejected; refill
    }
  }

  Row Project(const Row& full) const {
    std::vector<Value> values;
    values.reserve(columns_.size());
    for (size_t c : columns_) values.push_back(full[c]);
    return Row(std::move(values));
  }

  /// Projection into a batch slot, reusing the slot's Value storage.
  void ProjectInto(const Row& full, Row* out) const {
    std::vector<Value>& v = out->values();
    v.clear();
    v.reserve(columns_.size());
    for (size_t c : columns_) v.push_back(full[c]);
  }

  /// Upper bound on the refill block so a huge SET batch_size cannot
  /// balloon the per-scan row buffer.
  static constexpr size_t kMaxBlock = 1024;

  const TableDef* table_;
  std::vector<size_t> columns_;
  std::vector<CompiledExprPtr> predicates_;
  parallel::MorselSource* morsels_;
  /// True when columns_ is 0,1,2,...: projecting a full row is then a
  /// buffer swap instead of a value-by-value copy.
  bool identity_prefix_ = false;
  /// True when the projection is the whole row: batched refills decode
  /// pages directly into batch slots (see FillBatchDirect).
  bool direct_fill_ = false;
  ExecContext* ctx_ = nullptr;
  TableStorage* storage_ = nullptr;
  std::unique_ptr<TableScanIterator> scan_;
  /// Batched path's refill block: full rows decoded in place, consumed
  /// through [block_pos_, block_n_).
  std::vector<Row> block_;
  std::vector<Rid> block_rids_;
  size_t block_pos_ = 0;
  size_t block_n_ = 0;
  /// Per-batch prepared predicates (valid only inside one NextBatchImpl
  /// call, while the param fold is active); member to reuse capacity.
  std::vector<PreparedPredicate> prepared_;
  /// Selection scratch for FillBatchDirect.
  std::vector<uint32_t> sel_;
};

class IndexScanOp : public Operator {
 public:
  IndexScanOp(const TableDef* table, const IndexDef* index,
              ast::BinaryOp bound_op, CompiledExprPtr bound,
              std::vector<size_t> columns,
              std::vector<CompiledExprPtr> predicates)
      : table_(table), index_(index), bound_op_(bound_op),
        bound_(std::move(bound)), columns_(std::move(columns)),
        predicates_(std::move(predicates)) {}

  Status OpenImpl(ExecContext* ctx) override {
    ctx_ = ctx;
    STARBURST_ASSIGN_OR_RETURN(storage_, ctx->storage()->GetTable(table_->name));
    STARBURST_ASSIGN_OR_RETURN(Attachment * attachment,
                               ctx->storage()->GetIndex(index_->name));
    auto* btree = dynamic_cast<BTreeAttachment*>(attachment);
    if (btree == nullptr) {
      return Status::Internal("index '" + index_->name + "' is not a B-tree");
    }
    if (bound_ == nullptr) {
      // Unbounded: walk the whole index in key order.
      exhausted_ = false;
      iter_ = btree->tree().Scan(nullptr, true, nullptr, true);
      return Status::OK();
    }
    // The bound may be parameterized by correlation values — evaluated at
    // every (re)open, which is what makes index-driven dependent joins
    // possible.
    Row empty;
    STARBURST_ASSIGN_OR_RETURN(Value key, bound_->Eval(empty, ctx));
    if (key.is_null()) {
      iter_.reset();
      exhausted_ = true;  // NULL never matches an index bound
      return Status::OK();
    }
    exhausted_ = false;
    BTreeKey lo{key}, hi{key};
    switch (bound_op_) {
      case ast::BinaryOp::kEq:
        iter_ = btree->tree().Scan(&lo, true, &hi, true);
        break;
      case ast::BinaryOp::kLt:
        iter_ = btree->tree().Scan(nullptr, true, &hi, false);
        break;
      case ast::BinaryOp::kLe:
        iter_ = btree->tree().Scan(nullptr, true, &hi, true);
        break;
      case ast::BinaryOp::kGt:
        iter_ = btree->tree().Scan(&lo, false, nullptr, true);
        break;
      case ast::BinaryOp::kGe:
        iter_ = btree->tree().Scan(&lo, true, nullptr, true);
        break;
      default:
        return Status::Internal("bad index bound operator");
    }
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override {
    if (exhausted_ || iter_ == nullptr) return false;
    BTreeKey key;
    Rid rid;
    while (iter_->Next(&key, &rid)) {
      // NULL keys sort first but never satisfy a bound comparison; an
      // unbounded (order-providing) scan must keep them.
      if (bound_ != nullptr && !key.empty() && key[0].is_null()) continue;
      STARBURST_ASSIGN_OR_RETURN(Row full, storage_->Fetch(rid));
      std::vector<Value> values;
      values.reserve(columns_.size());
      for (size_t c : columns_) values.push_back(full[c]);
      Row projected(std::move(values));
      bool pass = true;
      for (const CompiledExprPtr& p : predicates_) {
        STARBURST_ASSIGN_OR_RETURN(bool ok, p->EvalPredicate(projected, ctx_));
        if (!ok) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      *row = std::move(projected);
      ++ctx_->stats().rows_emitted;
      return true;
    }
    return false;
  }

  void CloseImpl() override { iter_.reset(); }

 private:
  const TableDef* table_;
  const IndexDef* index_;
  ast::BinaryOp bound_op_;
  CompiledExprPtr bound_;
  std::vector<size_t> columns_;
  std::vector<CompiledExprPtr> predicates_;
  ExecContext* ctx_ = nullptr;
  TableStorage* storage_ = nullptr;
  std::unique_ptr<BTree::Iterator> iter_;
  bool exhausted_ = false;
};

class ValuesOp : public Operator {
 public:
  explicit ValuesOp(std::vector<Row> rows) : rows_(std::move(rows)) {}

  Status OpenImpl(ExecContext* ctx) override {
    ctx_ = ctx;
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> NextImpl(Row* row) override {
    if (pos_ >= rows_.size()) return false;
    *row = rows_[pos_++];
    ++ctx_->stats().rows_emitted;
    return true;
  }
  Result<bool> NextBatchImpl(RowBatch* batch) override {
    size_t before = pos_;
    bool any = FillBatchFromRows(rows_, &pos_, batch);
    ctx_->stats().rows_emitted += pos_ - before;
    return any;
  }
  void CloseImpl() override {}

 private:
  std::vector<Row> rows_;
  size_t pos_ = 0;
  ExecContext* ctx_ = nullptr;
};

class IterRefOp : public Operator {
 public:
  explicit IterRefOp(const qgm::Box* recursion) : recursion_(recursion) {}

  Status OpenImpl(ExecContext* ctx) override {
    rows_ = ctx->IterationTable(recursion_);
    if (rows_ == nullptr) {
      return Status::Internal("iteration reference outside recursion");
    }
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> NextImpl(Row* row) override {
    if (pos_ >= rows_->size()) return false;
    *row = (*rows_)[pos_++];
    return true;
  }
  Result<bool> NextBatchImpl(RowBatch* batch) override {
    return FillBatchFromRows(*rows_, &pos_, batch);
  }
  void CloseImpl() override { rows_ = nullptr; }

 private:
  const qgm::Box* recursion_;
  const std::vector<Row>* rows_ = nullptr;
  size_t pos_ = 0;
};

}  // namespace

OperatorPtr MakeScanOp(const TableDef* table, std::vector<size_t> columns,
                       std::vector<CompiledExprPtr> predicates) {
  return std::make_unique<ScanOp>(table, std::move(columns),
                                  std::move(predicates));
}

OperatorPtr MakeMorselScanOp(const TableDef* table,
                             std::vector<size_t> columns,
                             std::vector<CompiledExprPtr> predicates,
                             parallel::MorselSource* morsels) {
  return std::make_unique<ScanOp>(table, std::move(columns),
                                  std::move(predicates), morsels);
}

OperatorPtr MakeIndexScanOp(const TableDef* table, const IndexDef* index,
                            ast::BinaryOp bound_op, CompiledExprPtr bound,
                            std::vector<size_t> columns,
                            std::vector<CompiledExprPtr> predicates) {
  return std::make_unique<IndexScanOp>(table, index, bound_op,
                                       std::move(bound), std::move(columns),
                                       std::move(predicates));
}

OperatorPtr MakeValuesOp(std::vector<Row> rows) {
  return std::make_unique<ValuesOp>(std::move(rows));
}

OperatorPtr MakeIterRefOp(const qgm::Box* recursion_box) {
  return std::make_unique<IterRefOp>(recursion_box);
}

}  // namespace starburst::exec
