#include <gtest/gtest.h>

#include "common/datatype.h"
#include "common/result.h"
#include "common/row.h"
#include "common/status.h"
#include "common/value.h"

namespace starburst {
namespace {

TEST(StatusTest, OkAndErrors) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "Ok");

  Status err = Status::SyntaxError("bad token");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kSyntaxError);
  EXPECT_EQ(err.ToString(), "SyntaxError: bad token");
}

TEST(StatusTest, MacroPropagates) {
  auto inner = []() -> Status { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    STARBURST_RETURN_IF_ERROR(inner());
    return Status::Internal("unreachable");
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueAndError) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);

  Result<int> bad = Status::InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturn) {
  auto f = [](bool fail) -> Result<int> {
    if (fail) return Status::NotFound("gone");
    return 7;
  };
  auto g = [&](bool fail) -> Result<int> {
    STARBURST_ASSIGN_OR_RETURN(int v, f(fail));
    return v + 1;
  };
  EXPECT_EQ(*g(false), 8);
  EXPECT_EQ(g(true).status().code(), StatusCode::kNotFound);
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Int(5).int_value(), 5);
  EXPECT_EQ(Value::Double(1.5).double_value(), 1.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_EQ(Value::Int(5).type_id(), TypeId::kInt);
}

TEST(ValueTest, NumericCrossComparison) {
  EXPECT_EQ(*Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(*Value::Int(1).Compare(Value::Double(1.5)), 0);
  EXPECT_GT(*Value::Double(3.5).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, IncompatibleComparisonFails) {
  EXPECT_FALSE(Value::Int(1).Compare(Value::String("1")).ok());
  EXPECT_FALSE(Value::Null().Compare(Value::Int(1)).ok());
}

TEST(ValueTest, TotalOrderPutsNullsFirst) {
  EXPECT_LT(Value::Null().CompareTotal(Value::Int(-100)), 0);
  EXPECT_EQ(Value::Null().CompareTotal(Value::Null()), 0);
  EXPECT_GT(Value::Int(1).CompareTotal(Value::Null()), 0);
}

TEST(ValueTest, HashAgreesAcrossNumericTypes) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(false).ToString(), "FALSE");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::String("a").ToString(), "'a'");
}

TEST(TypeRegistryTest, RegisterAndLookup) {
  TypeRegistry registry;
  ExtensionTypeDef def;
  def.name = "TESTTYPE";
  def.compare = [](const std::string& a, const std::string& b) {
    return a.compare(b);
  };
  def.to_string = [](const std::string& p) { return "T<" + p + ">"; };
  ASSERT_TRUE(registry.Register(def).ok());
  EXPECT_TRUE(registry.Contains("TESTTYPE"));
  EXPECT_FALSE(registry.Contains("OTHER"));
  // Duplicate registration rejected.
  EXPECT_EQ(registry.Register(def).code(), StatusCode::kAlreadyExists);
  // Missing callbacks rejected.
  ExtensionTypeDef incomplete;
  incomplete.name = "BAD";
  EXPECT_EQ(registry.Register(incomplete).code(), StatusCode::kInvalidArgument);
}

TEST(RowTest, ConcatAndEquality) {
  Row a({Value::Int(1), Value::String("x")});
  Row b({Value::Null()});
  Row c = a.Concat(b);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(c[2].is_null());
  EXPECT_EQ(a, Row({Value::Int(1), Value::String("x")}));
  EXPECT_NE(a, b);
}

TEST(RowTest, TotalOrderLexicographic) {
  Row a({Value::Int(1), Value::Int(2)});
  Row b({Value::Int(1), Value::Int(3)});
  Row shorter({Value::Int(1)});
  EXPECT_LT(a.CompareTotal(b), 0);
  EXPECT_LT(shorter.CompareTotal(a), 0);
  EXPECT_EQ(a.CompareTotal(a), 0);
}

TEST(RowTest, HashStability) {
  Row a({Value::Int(1), Value::String("x")});
  Row b({Value::Int(1), Value::String("x")});
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(DataTypeTest, Names) {
  EXPECT_EQ(DataType::Int().ToString(), "INT");
  EXPECT_EQ(DataType::Extension("POINT").ToString(), "POINT");
  EXPECT_TRUE(DataType::Double().is_numeric());
  EXPECT_FALSE(DataType::String().is_numeric());
  EXPECT_EQ(DataType::Int(), DataType::Int());
  EXPECT_NE(DataType::Extension("A"), DataType::Extension("B"));
}

}  // namespace
}  // namespace starburst
