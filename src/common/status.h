#ifndef STARBURST_COMMON_STATUS_H_
#define STARBURST_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace starburst {

/// Error categories used across the engine. Corona/Core code paths never
/// throw; every fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kNotImplemented,
  kSyntaxError,
  kSemanticError,
  kTypeError,
  kOutOfRange,
  kAborted,
  kInternal,
  kCancelled,
  kTimeout,
};

/// Returns a human-readable name for `code` ("Ok", "SyntaxError", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value. The OK status carries no
/// message and no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status SyntaxError(std::string msg) {
    return Status(StatusCode::kSyntaxError, std::move(msg));
  }
  static Status SemanticError(std::string msg) {
    return Status(StatusCode::kSemanticError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "SyntaxError: unexpected token" — or "Ok".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status from the enclosing function.
#define STARBURST_RETURN_IF_ERROR(expr)                 \
  do {                                                  \
    ::starburst::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                          \
  } while (0)

}  // namespace starburst

#endif  // STARBURST_COMMON_STATUS_H_
