#ifndef STARBURST_QGM_PRINTER_H_
#define STARBURST_QGM_PRINTER_H_

#include <string>

#include "qgm/box.h"

namespace starburst::qgm {

/// Renders a QGM graph in the textual analogue of the paper's Figure 2:
/// one block per box, its head (output columns), and its body — vertices
/// (quantifiers with their types and range edges) and qualifier edges
/// (predicate conjuncts).
std::string PrintGraph(const Graph& graph);

/// One box only.
std::string PrintBox(const Box& box);

}  // namespace starburst::qgm

#endif  // STARBURST_QGM_PRINTER_H_
