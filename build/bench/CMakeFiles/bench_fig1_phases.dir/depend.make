# Empty dependencies file for bench_fig1_phases.
# This may be replaced when dependencies are built.
